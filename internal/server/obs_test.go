package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"codepack/internal/obs"
	"codepack/internal/trace"
)

// lintExposition parses a full /metrics body and enforces the rules a
// real scraper depends on: every family declares HELP then TYPE exactly
// once, samples sit under their family (no interleaving), series are
// unique, values parse, exemplars appear only on OpenMetrics bucket
// lines, and OpenMetrics bodies end with # EOF. It returns the exemplar
// trace IDs it saw.
func lintExposition(body string, om bool) ([]string, error) {
	lines := strings.Split(body, "\n")
	families := map[string]bool{}
	series := map[string]bool{}
	var exIDs []string
	curFam, curTyp, helpFam := "", "", ""
	sawEOF := false
	for i, line := range lines {
		lno := i + 1
		if line == "" {
			if i != len(lines)-1 {
				return nil, fmt.Errorf("line %d: blank line inside exposition", lno)
			}
			continue
		}
		if sawEOF {
			return nil, fmt.Errorf("line %d: content after # EOF", lno)
		}
		if strings.HasPrefix(line, "#") {
			switch {
			case line == "# EOF":
				if !om {
					return nil, fmt.Errorf("line %d: # EOF in classic format", lno)
				}
				sawEOF = true
			case strings.HasPrefix(line, "# HELP "):
				fam, help, ok := strings.Cut(line[len("# HELP "):], " ")
				if !ok || fam == "" || help == "" {
					return nil, fmt.Errorf("line %d: malformed HELP", lno)
				}
				if helpFam != "" {
					return nil, fmt.Errorf("line %d: HELP %s while HELP %s awaits its TYPE", lno, fam, helpFam)
				}
				helpFam = fam
			case strings.HasPrefix(line, "# TYPE "):
				parts := strings.Fields(line[len("# TYPE "):])
				if len(parts) != 2 {
					return nil, fmt.Errorf("line %d: malformed TYPE", lno)
				}
				fam, typ := parts[0], parts[1]
				switch typ {
				case "counter", "gauge", "histogram":
				default:
					return nil, fmt.Errorf("line %d: unknown type %q", lno, typ)
				}
				if helpFam != fam {
					return nil, fmt.Errorf("line %d: TYPE %s not preceded by its HELP", lno, fam)
				}
				helpFam = ""
				if families[fam] {
					return nil, fmt.Errorf("line %d: duplicate family %s", lno, fam)
				}
				families[fam] = true
				curFam, curTyp = fam, typ
			default:
				return nil, fmt.Errorf("line %d: unexpected comment %q", lno, line)
			}
			continue
		}
		if helpFam != "" {
			return nil, fmt.Errorf("line %d: sample while HELP %s awaits its TYPE", lno, helpFam)
		}
		if curFam == "" {
			return nil, fmt.Errorf("line %d: sample before any family declaration", lno)
		}
		rest, exPart := line, ""
		if j := strings.Index(line, " # "); j >= 0 {
			rest, exPart = line[:j], line[j+3:]
		}
		var name, labels, value string
		if k := strings.IndexByte(rest, '{'); k >= 0 {
			end := strings.LastIndexByte(rest, '}')
			if end < k {
				return nil, fmt.Errorf("line %d: unterminated label set", lno)
			}
			name, labels, value = rest[:k], rest[k+1:end], strings.TrimSpace(rest[end+1:])
		} else {
			var ok bool
			name, value, ok = strings.Cut(rest, " ")
			if !ok {
				return nil, fmt.Errorf("line %d: sample without value", lno)
			}
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			return nil, fmt.Errorf("line %d: bad sample value %q: %v", lno, value, err)
		}
		inFam := false
		switch curTyp {
		case "histogram":
			inFam = name == curFam+"_bucket" || name == curFam+"_sum" || name == curFam+"_count"
		case "counter":
			if om {
				inFam = name == curFam+"_total"
			} else {
				inFam = name == curFam
			}
		default:
			inFam = name == curFam
		}
		if !inFam {
			return nil, fmt.Errorf("line %d: sample %s outside family %s (interleaved or stray)", lno, name, curFam)
		}
		key := name + "{" + labels + "}"
		if series[key] {
			return nil, fmt.Errorf("line %d: duplicate series %s", lno, key)
		}
		series[key] = true
		if exPart != "" {
			if !om {
				return nil, fmt.Errorf("line %d: exemplar in classic format", lno)
			}
			if !strings.HasSuffix(name, "_bucket") {
				return nil, fmt.Errorf("line %d: exemplar on non-bucket sample %s", lno, name)
			}
			id, err := parseExemplar(exPart)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", lno, err)
			}
			exIDs = append(exIDs, id)
		}
	}
	if om && !sawEOF {
		return nil, fmt.Errorf("missing # EOF terminator")
	}
	if helpFam != "" {
		return nil, fmt.Errorf("trailing HELP %s without TYPE", helpFam)
	}
	return exIDs, nil
}

// parseExemplar checks `{trace_id="<id>"} <value> <ts>` and returns the id.
func parseExemplar(s string) (string, error) {
	const pre = `{trace_id="`
	if !strings.HasPrefix(s, pre) {
		return "", fmt.Errorf("malformed exemplar %q", s)
	}
	rest := s[len(pre):]
	end := strings.Index(rest, `"}`)
	if end <= 0 {
		return "", fmt.Errorf("malformed exemplar label set %q", s)
	}
	id := rest[:end]
	fields := strings.Fields(rest[end+2:])
	if len(fields) != 2 {
		return "", fmt.Errorf("exemplar %q: want value and timestamp", s)
	}
	for _, f := range fields {
		if _, err := strconv.ParseFloat(f, 64); err != nil {
			return "", fmt.Errorf("exemplar %q: bad number %q", s, f)
		}
	}
	return id, nil
}

// getBody fetches url with the given Accept header and returns the body.
func getBody(t *testing.T, url, accept string) (string, *http.Response) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b), resp
}

// testSLOEngine builds a fast-ticking engine so burn-rate transitions
// land within test timescales instead of operational ones.
func testSLOEngine(t *testing.T, src string) *obs.Engine {
	t.Helper()
	snap, err := obs.ParseConfig(src, "test-slos")
	if err != nil {
		t.Fatal(err)
	}
	return obs.NewEngine(snap, obs.EngineConfig{
		EvalInterval: 25 * time.Millisecond,
		BucketWidth:  250 * time.Millisecond,
		FastShort:    2 * time.Second,
		FastLong:     10 * time.Second,
		SlowShort:    5 * time.Second,
		SlowLong:     20 * time.Second,
		Logger:       quietLogger(),
	})
}

// TestMetricsExpositionLint scrapes a busy server in both formats and
// runs the full lint: families well-formed and unique, samples grouped,
// exemplars only where OpenMetrics allows them.
func TestMetricsExpositionLint(t *testing.T) {
	cfg := Config{
		SLO:     testSLOEngine(t, "slo api target=99 latency=10s\n"),
		Profile: &obs.ProfilerConfig{Dir: t.TempDir(), Logger: quietLogger()},
	}
	_, ts := newTestServer(t, cfg)
	for i := 0; i < 3; i++ {
		resp := postJSON(t, ts.URL+"/v1/compress", CompressRequest{ProgramRef: ProgramRef{Asm: testAsm}})
		resp.Body.Close()
	}

	prom, resp := getBody(t, ts.URL+"/metrics", "")
	if got := resp.Header.Get("Content-Type"); !strings.HasPrefix(got, "text/plain") {
		t.Errorf("classic content type = %q", got)
	}
	ids, err := lintExposition(prom, false)
	if err != nil {
		t.Fatalf("classic exposition: %v", err)
	}
	if len(ids) != 0 {
		t.Errorf("classic exposition carried %d exemplars", len(ids))
	}

	om, resp := getBody(t, ts.URL+"/metrics", "application/openmetrics-text; version=1.0.0")
	if got := resp.Header.Get("Content-Type"); !strings.HasPrefix(got, "application/openmetrics-text") {
		t.Errorf("openmetrics content type = %q", got)
	}
	ids, err = lintExposition(om, true)
	if err != nil {
		t.Fatalf("openmetrics exposition: %v", err)
	}
	if len(ids) == 0 {
		t.Error("openmetrics exposition carried no exemplars after traced requests")
	}
	for _, fam := range []string{"cpackd_slo_state", "cpackd_profile_retained", "cpackd_go_goroutines", "cpackd_trace_ring_capacity"} {
		if !strings.Contains(om, fam) {
			t.Errorf("exposition missing family %s", fam)
		}
	}
}

// TestLintRejectsMalformed is the linter's own contract: the failure
// modes the exposition test guards against must actually be caught.
func TestLintRejectsMalformed(t *testing.T) {
	cases := []struct {
		name, body string
		om         bool
		wantErr    string
	}{
		{"duplicate family", "# HELP a x\n# TYPE a gauge\na 1\n# HELP a x\n# TYPE a gauge\n", false, "duplicate family"},
		{"interleaved sample", "# HELP a x\n# TYPE a gauge\na 1\nb 2\n", false, "outside family"},
		{"duplicate series", "# HELP a x\n# TYPE a gauge\na{l=\"1\"} 1\na{l=\"1\"} 2\n", false, "duplicate series"},
		{"bad value", "# HELP a x\n# TYPE a gauge\na one\n", false, "bad sample value"},
		{"missing eof", "# HELP a x\n# TYPE a gauge\na 1\n", true, "missing # EOF"},
		{"exemplar in classic", "# HELP a x\n# TYPE a histogram\na_bucket{le=\"+Inf\"} 1 # {trace_id=\"t\"} 1 1\n", false, "exemplar in classic"},
		{"help without type", "# HELP a x\na 1\n", false, "awaits its TYPE"},
		{"counter sample name in om", "# HELP a x\n# TYPE a counter\na 1\n# EOF\n", true, "outside family"},
	}
	for _, tc := range cases {
		if _, err := lintExposition(tc.body, tc.om); err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestExemplarResolvesInTraceRing asserts the end-to-end link: an
// exemplar trace ID scraped from /metrics must identify a trace the
// ring at /debug/trace/recent can still serve.
func TestExemplarResolvesInTraceRing(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for i := 0; i < 3; i++ {
		resp := postJSON(t, ts.URL+"/v1/compress", CompressRequest{ProgramRef: ProgramRef{Asm: testAsm}})
		resp.Body.Close()
	}
	om, _ := getBody(t, ts.URL+"/metrics", "application/openmetrics-text")
	ids, err := lintExposition(om, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) == 0 {
		t.Fatal("no exemplars exposed")
	}
	body, _ := getBody(t, ts.URL+"/debug/trace/recent", "")
	var rec traceRecentResponse
	if err := json.Unmarshal([]byte(body), &rec); err != nil {
		t.Fatal(err)
	}
	ring := map[string]bool{}
	for _, tr := range rec.Traces {
		ring[tr.TraceID] = true
	}
	resolved := 0
	for _, id := range ids {
		if ring[id] {
			resolved++
		}
	}
	if resolved == 0 {
		t.Fatalf("none of %d exemplar trace IDs resolve among %d ring traces", len(ids), len(rec.Traces))
	}
}

// TestHistogramAtomicConsistency hammers the lock-free histogram from
// many goroutines while snapshots run concurrently (run under -race),
// then checks the final snapshot adds up exactly.
func TestHistogramAtomicConsistency(t *testing.T) {
	var h histogram
	const goroutines, each = 8, 5000
	stop := make(chan struct{})
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		var lastN uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := h.snapshot()
			var total uint64
			for _, c := range snap.Counts {
				total += c
			}
			if total > goroutines*each {
				t.Errorf("snapshot bucket total %d exceeds writes", total)
				return
			}
			if snap.N < lastN {
				t.Errorf("snapshot count went backwards: %d -> %d", lastN, snap.N)
				return
			}
			lastN = snap.N
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				// 1.0 is exactly representable, so the sharded sum must come
				// out exact no matter how the CAS races interleave.
				h.observeTraced(1.0, fmt.Sprintf("trace-%d-%d", g, i))
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	snapWG.Wait()

	snap := h.snapshot()
	if snap.N != goroutines*each {
		t.Errorf("count = %d, want %d", snap.N, goroutines*each)
	}
	var total uint64
	for _, c := range snap.Counts {
		total += c
	}
	if total != goroutines*each {
		t.Errorf("bucket total = %d, want %d", total, goroutines*each)
	}
	if snap.Sum != float64(goroutines*each) {
		t.Errorf("sum = %g, want %d", snap.Sum, goroutines*each)
	}
	ex := h.exemplarView()
	found := false
	for _, e := range ex {
		if e != nil && strings.HasPrefix(e.TraceID, "trace-") {
			found = true
		}
	}
	if !found {
		t.Error("no exemplar retained after traced observations")
	}
}

// waitUntil polls cond until it holds or the deadline lapses.
func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestSLOSmoke is the full observability path on a two-member signed
// cluster: injected latency flips a tight SLO to page within the
// evaluation cadence, the page triggers a CPU profile into the on-disk
// ring, /metrics carries an exemplar that resolves in the trace ring,
// and /debug/cluster on either member aggregates both members' burn.
func TestSLOSmoke(t *testing.T) {
	const sloSrc = "slo api_latency target=99 latency=1ms window=1m\n"
	profDir := t.TempDir()
	cfgA := Config{
		Tenants: signedRegistry("smoke-key"),
		SLO:     testSLOEngine(t, sloSrc),
		Profile: &obs.ProfilerConfig{
			Dir:         profDir,
			CPUDuration: 50 * time.Millisecond,
			Cooldown:    time.Millisecond,
			Logger:      quietLogger(),
		},
	}
	cfgB := Config{
		Tenants: signedRegistry("smoke-key"),
		SLO:     testSLOEngine(t, sloSrc),
	}
	sa, _, urlA, urlB := startPair(t, cfgA, cfgB)

	// Every pooled job stalls 5ms — an order of magnitude over the 1ms
	// objective, so each request burns budget at 100x (>> the 14x page
	// threshold).
	sa.testHook = func(op string) { time.Sleep(5 * time.Millisecond) }
	for i := 0; i < 20; i++ {
		resp := postJSON(t, urlA+"/v1/compress", CompressRequest{ProgramRef: ProgramRef{Asm: testAsm}})
		resp.Body.Close()
	}

	// The fast-burn alert must flip within the evaluation cadence.
	waitUntil(t, 5*time.Second, "SLO page state", func() bool {
		return sa.slo.WorstState() == obs.StatePage
	})
	body, _ := getBody(t, urlA+"/debug/slo", "")
	var slo sloDebugResponse
	if err := json.Unmarshal([]byte(body), &slo); err != nil {
		t.Fatal(err)
	}
	if slo.State != "page" {
		t.Errorf("/debug/slo state = %q, want page", slo.State)
	}
	if len(slo.Objectives) != 1 || slo.Objectives[0].Name != "api_latency" {
		t.Fatalf("/debug/slo objectives = %+v", slo.Objectives)
	}
	if slo.Objectives[0].Bad == 0 {
		t.Error("objective recorded no bad requests")
	}

	// The page triggers a profile capture set into the on-disk ring.
	waitUntil(t, 5*time.Second, "profile capture", func() bool {
		return sa.profiler.Stats().Captured >= 1
	})
	cpuProfiles, err := filepath.Glob(filepath.Join(profDir, "*.cpu.pprof"))
	if err != nil {
		t.Fatal(err)
	}
	if len(cpuProfiles) == 0 {
		t.Fatal("no CPU profile landed in the ring directory")
	}
	if fi, err := os.Stat(cpuProfiles[0]); err != nil || fi.Size() == 0 {
		t.Errorf("CPU profile unreadable or empty: %v", err)
	}

	// The OpenMetrics scrape must carry an exemplar that resolves in the
	// trace ring.
	om, _ := getBody(t, urlA+"/metrics", "application/openmetrics-text")
	ids, err := lintExposition(om, true)
	if err != nil {
		t.Fatalf("openmetrics exposition: %v", err)
	}
	if len(ids) == 0 {
		t.Fatal("no exemplars exposed")
	}
	recBody, _ := getBody(t, urlA+"/debug/trace/recent", "")
	var rec traceRecentResponse
	if err := json.Unmarshal([]byte(recBody), &rec); err != nil {
		t.Fatal(err)
	}
	ring := map[string]bool{}
	for _, tr := range rec.Traces {
		ring[tr.TraceID] = true
	}
	resolved := false
	for _, id := range ids {
		if ring[id] {
			resolved = true
		}
	}
	if !resolved {
		t.Error("no exemplar trace ID resolves in /debug/trace/recent")
	}
	if !strings.Contains(om, `cpackd_slo_state{slo="api_latency"} 2`) {
		t.Error("cpackd_slo_state gauge does not report page")
	}

	// /debug/cluster merges both members' signed health summaries.
	clBody, _ := getBody(t, urlA+"/debug/cluster", "")
	var cl clusterReport
	if err := json.Unmarshal([]byte(clBody), &cl); err != nil {
		t.Fatal(err)
	}
	if cl.Total != 2 || cl.Reachable != 2 {
		t.Fatalf("/debug/cluster total=%d reachable=%d, want 2/2: %s", cl.Total, cl.Reachable, clBody)
	}
	if cl.WorstState != "page" {
		t.Errorf("/debug/cluster worst_state = %q, want page", cl.WorstState)
	}
	withSLO := 0
	for _, n := range cl.Nodes {
		if n.Summary == nil {
			t.Errorf("member %s has no summary (err=%q)", n.URL, n.Err)
			continue
		}
		if len(n.Summary.Objectives) > 0 {
			withSLO++
		}
	}
	if withSLO != 2 {
		t.Errorf("%d members reported SLO burn, want 2", withSLO)
	}
	for _, u := range []string{urlA, urlB} {
		if !strings.Contains(clBody, u) {
			t.Errorf("/debug/cluster missing member %s", u)
		}
	}

	// The trace ring flag surface: /debug/vars reports the capacity and
	// eviction counter.
	varsBody, _ := getBody(t, urlA+"/debug/vars", "")
	var vars struct {
		Cpackd struct {
			TraceRingCap  int    `json:"trace_ring_capacity"`
			TracesEvicted uint64 `json:"traces_evicted"`
			SLOState      string `json:"slo_state"`
		} `json:"cpackd"`
	}
	if err := json.Unmarshal([]byte(varsBody), &vars); err != nil {
		t.Fatal(err)
	}
	if vars.Cpackd.TraceRingCap != trace.DefaultCapacity {
		t.Errorf("trace_ring_capacity = %d, want %d", vars.Cpackd.TraceRingCap, trace.DefaultCapacity)
	}
	if vars.Cpackd.SLOState != "page" {
		t.Errorf("vars slo_state = %q, want page", vars.Cpackd.SLOState)
	}
}
