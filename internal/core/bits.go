// Package core implements the CodePack code-compression algorithm evaluated
// by the paper: two-dictionary variable-length encoding of 16-bit
// instruction halves, 16-instruction compression blocks grouped in pairs,
// and an index table mapping native miss addresses into the compressed
// address space.
package core

// bitWriter emits an MSB-first bitstream.
type bitWriter struct {
	buf  []byte
	nbit uint // bits written so far
}

// writeBits appends the low n bits of v, most significant first.
func (w *bitWriter) writeBits(v uint32, n uint) {
	for i := int(n) - 1; i >= 0; i-- {
		if w.nbit%8 == 0 {
			w.buf = append(w.buf, 0)
		}
		if v>>uint(i)&1 != 0 {
			w.buf[w.nbit/8] |= 0x80 >> (w.nbit % 8)
		}
		w.nbit++
	}
}

// align pads with zero bits to the next byte boundary and returns the number
// of pad bits added.
func (w *bitWriter) align() uint {
	pad := (8 - w.nbit%8) % 8
	w.nbit += pad
	return pad
}

// bytes returns the byte-aligned buffer.
func (w *bitWriter) bytes() []byte { return w.buf }

// bitReader consumes an MSB-first bitstream.
type bitReader struct {
	buf []byte
	pos uint // bit position
}

// readBits reads n bits MSB-first. Reading past the end returns zero bits;
// callers detect truncation via Remaining.
func (r *bitReader) readBits(n uint) uint32 {
	var v uint32
	for i := uint(0); i < n; i++ {
		v <<= 1
		if r.pos < uint(len(r.buf))*8 {
			if r.buf[r.pos/8]&(0x80>>(r.pos%8)) != 0 {
				v |= 1
			}
		}
		r.pos++
	}
	return v
}

// remaining returns the number of unread bits.
func (r *bitReader) remaining() int { return len(r.buf)*8 - int(r.pos) }
