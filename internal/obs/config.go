// Package obs is cpackd's service-level-objective subsystem: declared
// latency and availability objectives tracked with multi-window
// burn-rate math over sliding error-budget rings, an ok→warn→page alert
// state machine, and a triggered continuous profiler that snapshots
// CPU/heap/goroutine profiles into a bounded on-disk ring whenever an
// alert fires — so the evidence for a tail-latency regression exists
// before anyone attaches a debugger.
//
// Like the rest of cpackd it is dependency-free: the config format is a
// hand-rolled line grammar (hot-reloadable on SIGHUP, exactly like the
// tenants file), the rings are plain bucketed counters, and the engine
// exposes snapshots for /debug/slo and the cpackd_slo_* metrics.
package obs

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Default burn-rate thresholds. The fast pair (5m/1h windows) pages:
// at 14x burn a 1h-window budget is gone in ~4 minutes. The slow pair
// (30m/6h) warns: a 6x burn exhausts the budget well before the window
// rolls over but leaves time to react.
const (
	DefaultFastBurn = 14.0
	DefaultSlowBurn = 6.0
	// DefaultWindow is the error-budget accounting window when the
	// config does not name one. Production SLOs usually run 30d; a
	// compression service that redeploys daily gets more signal from a
	// tighter default.
	DefaultWindow = time.Hour
)

// Objective is one declared SLO: a target fraction of good requests
// over a budget window, scoped to an endpoint and/or tenant, judged as
// a latency objective (Latency > 0: a request slower than Latency is
// bad) or an availability objective (Latency == 0: a 5xx is bad). A
// slow 5xx is bad under either reading.
type Objective struct {
	// Name identifies the objective in metrics, /debug/slo and alerts.
	Name string
	// Endpoint restricts the objective to one public endpoint name
	// ("compress", "simulate", ...); empty matches every endpoint.
	Endpoint string
	// Tenant restricts the objective to one tenant ID; empty matches
	// every tenant.
	Tenant string
	// Target is the good-request fraction the objective promises,
	// exclusive on both ends (0 < Target < 1). The error budget is
	// 1 - Target.
	Target float64
	// Latency, when positive, makes this a latency objective: requests
	// slower than it burn budget. Zero makes it an availability
	// objective (only 5xx burns budget).
	Latency time.Duration
	// Window is the error-budget accounting window (0 = DefaultWindow).
	Window time.Duration
	// FastBurn and SlowBurn override the page/warn burn-rate thresholds
	// (0 = defaults).
	FastBurn float64
	SlowBurn float64
}

// budgetFraction is the objective's error budget as a fraction of
// traffic.
func (o Objective) budgetFraction() float64 { return 1 - o.Target }

// sameShape reports whether a reloaded objective can inherit this
// one's ring and alert state: the identity and accounting parameters
// match (thresholds may change freely — they only affect evaluation).
func (o Objective) sameShape(p Objective) bool {
	return o.Name == p.Name && o.Endpoint == p.Endpoint && o.Tenant == p.Tenant &&
		o.Target == p.Target && o.Latency == p.Latency && o.Window == p.Window
}

// Snapshot is one immutable parsed SLO config.
type Snapshot struct {
	Objectives []Objective
	// Source names where the snapshot came from, for logs.
	Source string
}

// ParseConfig parses the SLO config format. It is line-based so it
// diffs and hot-edits well:
//
//	# comments and blank lines are ignored
//	slo <name> target=<percent> [endpoint=<ep>] [tenant=<id>] \
//	           [latency=<dur>] [window=<dur>] [fast-burn=<x>] [slow-burn=<x>]
//
// target is a percentage (99.9 means 99.9% of requests good); latency
// present makes a latency objective (requests slower than the duration
// burn budget), absent an availability objective (5xx burns budget).
// Errors name the offending line. The parser never panics on any input
// (see FuzzSLOConfig).
func ParseConfig(src, name string) (*Snapshot, error) {
	snap := &Snapshot{Source: name}
	seen := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(src))
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		errf := func(format string, args ...any) error {
			return fmt.Errorf("%s:%d: %s", name, lineNo, fmt.Sprintf(format, args...))
		}
		if fields[0] != "slo" {
			return nil, errf("unknown directive %q (want slo)", fields[0])
		}
		if len(fields) < 2 {
			return nil, errf("slo needs a name")
		}
		id := fields[1]
		if !validName(id) {
			return nil, errf("invalid slo name %q (want [a-z0-9_-], 1..48 bytes)", id)
		}
		if seen[id] {
			return nil, errf("duplicate slo %q", id)
		}
		o := Objective{Name: id}
		if err := parseObjectiveAttrs(&o, fields[2:]); err != nil {
			return nil, errf("slo %s: %v", id, err)
		}
		if o.Target == 0 {
			return nil, errf("slo %s: missing target=", id)
		}
		seen[id] = true
		snap.Objectives = append(snap.Objectives, o)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return snap, nil
}

func parseObjectiveAttrs(o *Objective, attrs []string) error {
	for _, a := range attrs {
		k, v, ok := strings.Cut(a, "=")
		if !ok || v == "" {
			return fmt.Errorf("malformed attribute %q (want key=value)", a)
		}
		switch k {
		case "target":
			pct, err := strconv.ParseFloat(v, 64)
			if err != nil || pct <= 0 || pct >= 100 {
				return fmt.Errorf("target must be a percent in (0,100), got %q", v)
			}
			o.Target = pct / 100
		case "endpoint":
			if !validName(v) {
				return fmt.Errorf("invalid endpoint %q", v)
			}
			o.Endpoint = v
		case "tenant":
			if !validName(v) {
				return fmt.Errorf("invalid tenant %q", v)
			}
			o.Tenant = v
		case "latency":
			d, err := time.ParseDuration(v)
			if err != nil || d <= 0 || d > 24*time.Hour {
				return fmt.Errorf("latency must be a positive duration up to 24h, got %q", v)
			}
			o.Latency = d
		case "window":
			d, err := time.ParseDuration(v)
			if err != nil || d < time.Minute || d > 30*24*time.Hour {
				return fmt.Errorf("window must be a duration in [1m,720h], got %q", v)
			}
			o.Window = d
		case "fast-burn":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || f <= 0 || f > 1e6 {
				return fmt.Errorf("fast-burn must be in (0,1e6], got %q", v)
			}
			o.FastBurn = f
		case "slow-burn":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || f <= 0 || f > 1e6 {
				return fmt.Errorf("slow-burn must be in (0,1e6], got %q", v)
			}
			o.SlowBurn = f
		default:
			return fmt.Errorf("unknown attribute %q", k)
		}
	}
	return nil
}

// validName bounds the names that land in metric labels, so a hostile
// config cannot bloat or corrupt the exposition.
func validName(s string) bool {
	if len(s) == 0 || len(s) > 48 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '_' || c == '-') {
			return false
		}
	}
	return true
}

// LoadFile reads and parses an SLO config file.
func LoadFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseConfig(string(data), path)
}
