// Command sim runs one timing simulation: a benchmark on an architecture
// with a chosen instruction-fetch model.
//
// Usage:
//
//	sim -bench cc1 -arch 4 -model optimized -max 2000000
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"codepack/internal/cpu"
	"codepack/internal/harness"
)

func main() {
	bench := flag.String("bench", "cc1", "benchmark: cc1 go mpeg2enc pegwit perl vortex")
	arch := flag.Int("arch", 4, "issue width: 1, 4 or 8")
	model := flag.String("model", "native", "fetch model: native, codepack, optimized, software")
	maxInstr := flag.Uint64("max", harness.DefaultMaxInstr, "committed instruction cap")
	icacheKB := flag.Int("icache", 0, "override I-cache size (KB)")
	busBits := flag.Int("bus", 0, "override memory bus width (bits)")
	firstLat := flag.Int("memlat", 0, "override first-access memory latency")
	decoders := flag.Int("decoders", 0, "override decompressors per cycle")
	idxLines := flag.Int("idxlines", 0, "override index cache lines")
	idxEntries := flag.Int("idxentries", 0, "override index entries per line")
	perfect := flag.Bool("perfectindex", false, "use a perfect index cache")
	noPrefetch := flag.Bool("noprefetch", false, "disable the output-buffer prefetch")
	noCWF := flag.Bool("nocwf", false, "disable native critical-word-first")
	pipeTrace := flag.Int("pipetrace", 0, "print pipeline timestamps for the first N instructions")
	asJSON := flag.Bool("json", false, "emit the result as JSON")
	wrongPath := flag.Bool("wrongpath", false, "model speculative wrong-path fetch")
	flag.Parse()

	var cfg cpu.Config
	switch *arch {
	case 1:
		cfg = cpu.OneIssue()
	case 4:
		cfg = cpu.FourIssue()
	case 8:
		cfg = cpu.EightIssue()
	default:
		fail("arch must be 1, 4 or 8")
	}
	if *icacheKB > 0 {
		cfg.ICache.SizeBytes = *icacheKB * 1024
	}
	if *busBits > 0 {
		cfg.Mem.WidthBytes = *busBits / 8
	}
	if *firstLat > 0 {
		cfg.Mem.FirstLatency = *firstLat
	}
	cfg.ModelWrongPath = *wrongPath

	var fm cpu.FetchModel
	switch *model {
	case "native":
		fm = cpu.NativeModel()
		fm.NoCriticalWordFirst = *noCWF
	case "codepack":
		fm = cpu.BaselineModel()
	case "optimized":
		fm = cpu.OptimizedModel()
	case "software":
		fm = cpu.SoftwareModel()
	default:
		fail("model must be native, codepack, optimized or software")
	}
	if fm.Kind == cpu.FetchCodePack {
		if *decoders > 0 {
			fm.CodePack.DecodeRate = *decoders
		}
		if *idxLines > 0 {
			fm.CodePack.IndexCacheLines = *idxLines
		}
		if *idxEntries > 0 {
			fm.CodePack.IndexEntriesPerLine = *idxEntries
		}
		fm.CodePack.PerfectIndex = *perfect
		fm.CodePack.DisablePrefetch = *noPrefetch
	}

	s := harness.NewSuite(*maxInstr)
	b, err := s.Bench(*bench)
	if err != nil {
		fail(err.Error())
	}
	var r cpu.Result
	if *pipeTrace > 0 {
		if fm.Kind == cpu.FetchCodePack && fm.Comp == nil {
			fm.Comp = b.Comp
		}
		left := *pipeTrace
		fmt.Printf("%-10s %-8s %8s %8s %8s %8s %8s\n",
			"pc", "op", "fetch", "dispatch", "issue", "complete", "commit")
		r, err = cpu.SimulateObserved(b.Image, cfg, fm, *maxInstr, func(ts cpu.Timestamps) {
			if left <= 0 {
				return
			}
			left--
			fmt.Printf("%-10x %-8v %8d %8d %8d %8d %8d\n",
				ts.PC, ts.Op, ts.Fetch, ts.Dispatch, ts.Issue, ts.Complete, ts.Commit)
		})
	} else {
		r, err = s.Run(b, cfg, fm)
	}
	if err != nil {
		fail(err.Error())
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(r); err != nil {
			fail(err.Error())
		}
		return
	}
	printResult(r, fm)
}

func printResult(r cpu.Result, fm cpu.FetchModel) {
	fmt.Printf("program        %s on %s\n", r.Program, r.Arch)
	fmt.Printf("instructions   %d\n", r.Instructions)
	fmt.Printf("cycles         %d\n", r.Cycles)
	fmt.Printf("IPC            %.3f\n", r.IPC())
	fmt.Printf("I-cache        %d misses, %.2f%% per instruction\n",
		r.ICache.Misses, 100*r.IMissRate())
	fmt.Printf("D-cache        %d accesses, %.2f%% miss rate\n",
		r.DCache.Accesses, 100*r.DCache.MissRate())
	fmt.Printf("mix            %.1f%% loads, %.1f%% stores, %.1f%% branches\n",
		100*float64(r.Loads)/float64(max(r.Instructions, 1)),
		100*float64(r.Stores)/float64(max(r.Instructions, 1)),
		100*float64(r.Branches)/float64(max(r.Instructions, 1)))
	fmt.Printf("branches       %d (%d mispredicted, %.2f%%)\n",
		r.Branches, r.Mispredicts,
		100*float64(r.Mispredicts)/float64(max(r.Branches, 1)))
	fmt.Printf("bus            %d bursts, %d beats\n", r.Bus.Bursts, r.Bus.Beats)
	if r.CodePack != nil {
		s := r.CodePack
		fmt.Printf("compression    %.1f%% ratio\n", 100*r.Ratio)
		fmt.Printf("decompressor   %d misses: %d buffer hits (%.1f%%), %d block reads\n",
			s.Misses, s.BufferHits,
			100*float64(s.BufferHits)/float64(max(s.Misses, 1)), s.BlockReads)
		fmt.Printf("index cache    %d lookups, %d misses (%.1f%%)\n",
			s.IndexLookups, s.IndexMisses, 100*s.IndexMissRate())
	}
	_ = fm
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, "sim:", msg)
	os.Exit(2)
}
