package loadgen

import (
	"bytes"
	"encoding/json"
	"testing"
)

// take collects the first n requests of a stream.
func take(s Scenario, seed int64, n int) []Request {
	out := make([]Request, 0, n)
	for r := range s.Requests(seed) {
		out = append(out, r)
		if len(out) == n {
			break
		}
	}
	return out
}

// TestScenarioCatalogue pins the eight required scenarios.
func TestScenarioCatalogue(t *testing.T) {
	want := []string{"churn", "coldstart", "flashcrowd", "mixed", "tenants", "thrash", "uniform", "zipfian"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("scenario names = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scenario names = %v, want %v", got, want)
		}
	}
	for _, name := range want {
		s, ok := ByName(name)
		if !ok || s.Name() != name {
			t.Fatalf("ByName(%q) = %v, %v", name, s, ok)
		}
		if s.Describe() == "" {
			t.Errorf("scenario %q has no description", name)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName accepted an unknown scenario")
	}
}

// TestScenarioDeterminism: same seed ⇒ byte-identical request stream, for
// every scenario; a different seed must change the stream.
func TestScenarioDeterminism(t *testing.T) {
	const n = 40
	for _, s := range Scenarios() {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			t.Parallel()
			a := take(s, 7, n)
			b := take(s, 7, n)
			if len(a) != n || len(b) != n {
				t.Fatalf("stream ended early: %d / %d of %d", len(a), len(b), n)
			}
			for i := range a {
				if a[i].Op != b[i].Op || a[i].Key != b[i].Key || !bytes.Equal(a[i].Body, b[i].Body) {
					t.Fatalf("request %d differs across identical seeds:\n%+v\n%+v", i, a[i], b[i])
				}
			}
			c := take(s, 8, n)
			same := true
			for i := range a {
				if !bytes.Equal(a[i].Body, c[i].Body) {
					same = false
					break
				}
			}
			if same {
				t.Fatal("seed change did not change the stream")
			}
			for i, r := range a {
				if !json.Valid(r.Body) {
					t.Fatalf("request %d body is not valid JSON: %s", i, r.Body)
				}
				switch r.Op {
				case "compress", "decompress", "verify", "simulate":
				default:
					t.Fatalf("request %d has unknown op %q", i, r.Op)
				}
			}
		})
	}
}

// TestThrashUniqueKeys: the adversarial scenario never repeats a digest.
func TestThrashUniqueKeys(t *testing.T) {
	s, _ := ByName("thrash")
	seen := make(map[string]bool)
	bodies := make(map[string]bool)
	for _, r := range take(s, 3, 64) {
		if seen[r.Key] {
			t.Fatalf("thrash repeated key %s", r.Key)
		}
		seen[r.Key] = true
		if bodies[string(r.Body)] {
			t.Fatalf("thrash repeated body for key %s", r.Key)
		}
		bodies[string(r.Body)] = true
	}
}

// TestColdstartStormFront: the opening corpus walk hits every program
// exactly once before any repeats.
func TestColdstartStormFront(t *testing.T) {
	s, _ := ByName("coldstart")
	cs := s.(coldstart)
	reqs := take(s, 5, cs.corpus+16)
	seen := make(map[string]bool)
	for i := 0; i < cs.corpus; i++ {
		if seen[reqs[i].Key] {
			t.Fatalf("coldstart repeated key %s inside the storm front (i=%d)", reqs[i].Key, i)
		}
		seen[reqs[i].Key] = true
	}
	if len(seen) != cs.corpus {
		t.Fatalf("storm front covered %d of %d programs", len(seen), cs.corpus)
	}
	for _, r := range reqs[cs.corpus:] {
		if !seen[r.Key] {
			t.Fatalf("steady state drew unknown key %s", r.Key)
		}
	}
}

// TestChurnWarmPass: the churn scenario opens with every working-set
// program exactly once, then repeats only known keys — the property the
// cluster warm-hit-floor assertion relies on.
func TestChurnWarmPass(t *testing.T) {
	s, _ := ByName("churn")
	cs := s.(churn)
	reqs := take(s, 21, cs.corpus+32)
	seen := make(map[string]bool)
	for i := 0; i < cs.corpus; i++ {
		if reqs[i].Op != "compress" {
			t.Fatalf("churn request %d has op %q, want compress", i, reqs[i].Op)
		}
		if seen[reqs[i].Key] {
			t.Fatalf("churn repeated key %s inside the warm pass (i=%d)", reqs[i].Key, i)
		}
		seen[reqs[i].Key] = true
	}
	if len(seen) != cs.corpus {
		t.Fatalf("warm pass covered %d of %d programs", len(seen), cs.corpus)
	}
	for _, r := range reqs[cs.corpus:] {
		if !seen[r.Key] {
			t.Fatalf("steady state drew unknown key %s", r.Key)
		}
	}
}

// TestZipfianHotSetMass: the hottest tenth of the corpus must draw a
// clear majority of requests, within tolerance — the distribution sanity
// check behind the cache-friendliness claim.
func TestZipfianHotSetMass(t *testing.T) {
	s, _ := ByName("zipfian")
	z := s.(zipfian)
	const draws = 5000
	counts := make(map[string]int)
	for _, r := range take(s, 11, draws) {
		counts[r.Key]++
	}
	// Ranks are assigned hottest-first, so the hot set is ids 0..k-1.
	hot := z.corpus / 10
	var hotMass int
	for id := 0; id < hot; id++ {
		hotMass += counts[progKey(id)]
	}
	frac := float64(hotMass) / draws
	if frac < 0.60 || frac > 0.999 {
		t.Fatalf("hot set (top %d of %d) drew %.1f%% of %d draws, want 60%%..99.9%%",
			hot, z.corpus, 100*frac, draws)
	}
	if len(counts) < z.corpus/4 {
		t.Fatalf("tail too thin: only %d distinct keys drawn", len(counts))
	}
}

// TestFlashcrowdHotDominates: one key takes ~95% of traffic.
func TestFlashcrowdHotDominates(t *testing.T) {
	s, _ := ByName("flashcrowd")
	const draws = 2000
	hot := 0
	for _, r := range take(s, 13, draws) {
		if r.Key == "hot" {
			hot++
		}
	}
	if frac := float64(hot) / draws; frac < 0.90 || frac > 0.99 {
		t.Fatalf("hot key drew %.1f%% of traffic, want 90%%..99%%", 100*frac)
	}
}

// TestTenantsScenarioShape: every request is labelled and keyed, the
// offered-load skew is ~10:1, and the specs the runner normalizes
// fairness with cover exactly the labels the stream emits.
func TestTenantsScenarioShape(t *testing.T) {
	s, _ := ByName("tenants")
	ts := s.(TenantScenario)
	specs := ts.Tenants()
	if len(specs) != 2 {
		t.Fatalf("tenants scenario declares %d tenants, want 2", len(specs))
	}
	counts := make(map[string]int)
	for _, r := range take(s, 19, 2200) {
		sp, ok := specs[r.Tenant]
		if !ok {
			t.Fatalf("request labelled with undeclared tenant %q", r.Tenant)
		}
		if got := r.Header["Authorization"]; got != "Bearer "+sp.Key {
			t.Fatalf("tenant %s request carries Authorization %q, want its declared key", r.Tenant, got)
		}
		counts[r.Tenant]++
	}
	heavy, light := counts[BenchTenantHeavy], counts[BenchTenantLight]
	if light == 0 {
		t.Fatal("light tenant sent nothing")
	}
	if ratio := float64(heavy) / float64(light); ratio < 6 || ratio > 16 {
		t.Fatalf("heavy:light offered-load ratio %.1f, want ~10", ratio)
	}
}

// TestMixedOpBlend: all four endpoint ops appear.
func TestMixedOpBlend(t *testing.T) {
	s, _ := ByName("mixed")
	ops := make(map[string]int)
	for _, r := range take(s, 17, 100) {
		ops[r.Op]++
	}
	for _, op := range []string{"compress", "verify", "decompress", "simulate"} {
		if ops[op] == 0 {
			t.Fatalf("mixed blend missing op %q (got %v)", op, ops)
		}
	}
	if ops["compress"] <= ops["simulate"] {
		t.Fatalf("compress should dominate the blend: %v", ops)
	}
}
