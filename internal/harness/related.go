package harness

import (
	"fmt"

	"codepack/internal/ccrp"
	"codepack/internal/core"
	"codepack/internal/cpu"
	"codepack/internal/lefurgy"
	"codepack/internal/workload"
)

// RelatedWork compares CodePack's compression ratio against the two
// related-work schemes the paper discusses in section 2: CCRP's
// byte-Huffman lines (Wolfe/Chanin, ~73% on MIPS) and the Lefurgy'97
// whole-instruction dictionary (ratios similar to CodePack, but with a
// several-thousand-entry dictionary).
func (s *Suite) RelatedWork() (*Table, error) {
	t := newTable("related", "Compression ratio: CodePack vs related work",
		"bench", "codepack", "ccrp huffman", "instr dictionary", "dict entries")
	benches, err := s.All()
	if err != nil {
		return nil, err
	}
	for _, b := range benches {
		cp := b.Comp.Stats().Ratio()
		hc, err := ccrp.Compress(b.Image.TextBase, b.Image.Text)
		if err != nil {
			return nil, err
		}
		lc, err := lefurgy.Compress(b.Image.TextBase, b.Image.Text)
		if err != nil {
			return nil, err
		}
		t.addRow(b.Profile.Name, pct(cp), pct(hc.Ratio()), pct(lc.Ratio()),
			itoa(len(lc.Dict)))
		t.set(b.Profile.Name, "codepack", cp)
		t.set(b.Profile.Name, "ccrp", hc.Ratio())
		t.set(b.Profile.Name, "lefurgy", lc.Ratio())
	}
	return t, nil
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

// DictTransfer measures how much CodePack's load-time dictionary
// adaptation buys: each benchmark is compressed with its own dictionaries
// and with dictionaries trained on a different program.
func (s *Suite) DictTransfer() (*Table, error) {
	t := newTable("dicttransfer", "Compression ratio with transplanted dictionaries",
		"bench", "own dicts", "cc1 dicts", "mpeg2enc dicts")
	benches, err := s.All()
	if err != nil {
		return nil, err
	}
	donors := map[string]*Bench{}
	for _, d := range []string{"cc1", "mpeg2enc"} {
		b, err := s.Bench(d)
		if err != nil {
			return nil, err
		}
		donors[d] = b
	}
	for _, b := range benches {
		own := b.Comp.Stats().Ratio()
		t.addRow(b.Profile.Name, pct(own), "", "")
		row := t.Rows[len(t.Rows)-1]
		t.set(b.Profile.Name, "own", own)
		for i, d := range []string{"cc1", "mpeg2enc"} {
			c, err := core.CompressWordsWith(b.Profile.Name, b.Image.TextBase,
				b.Image.Text, core.Options{
					FixedHigh: donors[d].Comp.High,
					FixedLow:  donors[d].Comp.Low,
				})
			if err != nil {
				return nil, err
			}
			row[2+i] = pct(c.Stats().Ratio())
			t.set(b.Profile.Name, d, c.Stats().Ratio())
		}
	}
	return t, nil
}

// SeedStability regenerates one benchmark with different random seeds and
// reports how stable the headline metrics are — evidence that the
// reproduction's conclusions are not an artifact of a particular synthetic
// program instance.
func (s *Suite) SeedStability() (*Table, error) {
	t := newTable("seeds", "cc1 metric stability across generator seeds",
		"seed", "ratio", "I-miss (native)", "codepack speedup", "optimized speedup")
	base, ok := workload.ByName("cc1")
	if !ok {
		return nil, fmt.Errorf("harness: cc1 profile missing")
	}
	for _, seed := range []int64{base.Seed, base.Seed + 100, base.Seed + 200} {
		p := base
		p.Seed = seed
		im, err := workload.Generate(p)
		if err != nil {
			return nil, err
		}
		comp, err := core.Compress(im)
		if err != nil {
			return nil, err
		}
		cfg := cpu.FourIssue()
		native, err := cpu.Simulate(im, cfg, cpu.NativeModel(), s.MaxInstr)
		if err != nil {
			return nil, err
		}
		model := cpu.BaselineModel()
		model.Comp = comp
		cp, err := cpu.Simulate(im, cfg, model, s.MaxInstr)
		if err != nil {
			return nil, err
		}
		model = cpu.OptimizedModel()
		model.Comp = comp
		opt, err := cpu.Simulate(im, cfg, model, s.MaxInstr)
		if err != nil {
			return nil, err
		}
		row := fmt.Sprint(seed)
		t.addRow(row, pct(comp.Stats().Ratio()), pct(native.IMissRate()),
			f2(cp.SpeedupOver(native)), f2(opt.SpeedupOver(native)))
		t.set(row, "ratio", comp.Stats().Ratio())
		t.set(row, "imiss", native.IMissRate())
		t.set(row, "codepack", cp.SpeedupOver(native))
		t.set(row, "optimized", opt.SpeedupOver(native))
	}
	return t, nil
}
