package ccrp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"codepack/internal/isa"
)

func synth(rng *rand.Rand, n int) []isa.Word {
	common := []isa.Word{0x24420004, 0x8FBF001C, 0x00851021, 0xAFBF001C}
	text := make([]isa.Word, n)
	for i := range text {
		if rng.Intn(4) == 0 {
			text[i] = isa.Word(rng.Uint32())
		} else {
			text[i] = common[rng.Intn(len(common))]
		}
	}
	return text
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 7, 8, 9, 64, 1000} {
		text := synth(rng, n)
		c, err := Compress(isa.TextBase, text)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		out, err := c.Decompress()
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(out) != n {
			t.Fatalf("n=%d: got %d words", n, len(out))
		}
		for i := range out {
			if out[i] != text[i] {
				t.Fatalf("n=%d: word %d corrupted", n, i)
			}
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz)%500 + 1
		text := synth(rand.New(rand.NewSource(seed)), n)
		c, err := Compress(isa.TextBase, text)
		if err != nil {
			return false
		}
		out, err := c.Decompress()
		if err != nil || len(out) != n {
			return false
		}
		for i := range out {
			if out[i] != text[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLineRandomAccess(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	text := synth(rng, 256)
	c, err := Compress(isa.TextBase, text)
	if err != nil {
		t.Fatal(err)
	}
	line, err := c.DecompressLine(isa.TextBase + 3*LineBytes)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < LineBytes/4; i++ {
		w := uint32(line[i*4])<<24 | uint32(line[i*4+1])<<16 |
			uint32(line[i*4+2])<<8 | uint32(line[i*4+3])
		if w != text[24+i] {
			t.Fatalf("line word %d = %#x, want %#x", i, w, text[24+i])
		}
	}
	if _, err := c.DecompressLine(isa.TextBase + 1<<20); err == nil {
		t.Error("out-of-range line accepted")
	}
}

func TestSkewedTextCompresses(t *testing.T) {
	text := make([]isa.Word, 4096)
	for i := range text {
		text[i] = 0x24420004
	}
	c, err := Compress(isa.TextBase, text)
	if err != nil {
		t.Fatal(err)
	}
	// Huffman gets ~2 bits/byte here, but the per-line LAT adds a fixed
	// 12.5%, so the floor is about 0.38.
	if r := c.Ratio(); r > 0.45 {
		t.Fatalf("uniform text ratio %.2f, want < 0.45", r)
	}
}

func TestUniformBytesBarelyCompress(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	text := make([]isa.Word, 2048)
	for i := range text {
		text[i] = isa.Word(rng.Uint32())
	}
	c, err := Compress(isa.TextBase, text)
	if err != nil {
		t.Fatal(err)
	}
	if r := c.Ratio(); r < 0.95 {
		t.Fatalf("random text ratio %.2f, expected near 1", r)
	}
	out, err := c.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if out[i] != text[i] {
			t.Fatalf("word %d corrupted", i)
		}
	}
}

func TestCodeIsPrefixFree(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c, err := Compress(isa.TextBase, synth(rng, 2000))
	if err != nil {
		t.Fatal(err)
	}
	type cw struct {
		code uint32
		l    uint8
	}
	var codes []cw
	for s := 0; s < 256; s++ {
		if c.Lengths[s] > 0 {
			codes = append(codes, cw{c.codes[s], c.Lengths[s]})
		}
	}
	for i := range codes {
		for j := range codes {
			if i == j {
				continue
			}
			a, b := codes[i], codes[j]
			if a.l <= b.l && b.code>>(b.l-a.l) == a.code {
				t.Fatalf("code %b/%d is a prefix of %b/%d", a.code, a.l, b.code, b.l)
			}
		}
	}
}

func TestEmptyRejected(t *testing.T) {
	if _, err := Compress(isa.TextBase, nil); err == nil {
		t.Fatal("empty text accepted")
	}
}
