package program

import (
	"testing"
	"testing/quick"

	"codepack/internal/isa"
)

func sample() *Image {
	return &Image{
		Name:     "sample",
		Entry:    isa.TextBase + 8,
		TextBase: isa.TextBase,
		Text:     []isa.Word{0x24080001, 0x00000000, 0x0000000C, 0xDEADBEEF},
		DataBase: isa.DataBase,
		Data:     []byte{1, 2, 3, 4, 5},
		Symbols:  map[string]uint32{"main": isa.TextBase + 8, "a": isa.TextBase},
	}
}

func TestValidate(t *testing.T) {
	im := sample()
	if err := im.Validate(); err != nil {
		t.Fatalf("valid image rejected: %v", err)
	}
	bad := sample()
	bad.Text = nil
	if bad.Validate() == nil {
		t.Error("empty text accepted")
	}
	bad = sample()
	bad.Entry = isa.TextBase + 100
	if bad.Validate() == nil {
		t.Error("out-of-range entry accepted")
	}
	bad = sample()
	bad.TextBase = 2
	if bad.Validate() == nil {
		t.Error("unaligned text base accepted")
	}
}

func TestAddressing(t *testing.T) {
	im := sample()
	if im.TextBytes() != 16 || im.TextEnd() != isa.TextBase+16 {
		t.Fatalf("extent wrong: %d bytes, end %#x", im.TextBytes(), im.TextEnd())
	}
	if !im.InText(isa.TextBase) || !im.InText(isa.TextBase+12) {
		t.Error("InText false negatives")
	}
	if im.InText(isa.TextBase+16) || im.InText(isa.TextBase-4) {
		t.Error("InText false positives")
	}
	w, err := im.WordAt(isa.TextBase + 12)
	if err != nil || w != 0xDEADBEEF {
		t.Fatalf("WordAt = %#x, %v", w, err)
	}
	if _, err := im.WordAt(isa.TextBase + 2); err == nil {
		t.Error("unaligned WordAt accepted")
	}
	if _, err := im.WordAt(isa.TextBase + 16); err == nil {
		t.Error("out-of-range WordAt accepted")
	}
}

func TestSymbols(t *testing.T) {
	im := sample()
	if a, ok := im.Symbol("main"); !ok || a != isa.TextBase+8 {
		t.Fatalf("Symbol(main) = %#x, %v", a, ok)
	}
	if _, ok := im.Symbol("nope"); ok {
		t.Error("missing symbol found")
	}
	names := im.SymbolNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "main" {
		t.Fatalf("SymbolNames = %v (want address order)", names)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	im := sample()
	out, err := Unmarshal(im.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if out.Entry != im.Entry || out.TextBase != im.TextBase || out.DataBase != im.DataBase {
		t.Fatal("header fields lost")
	}
	if len(out.Text) != len(im.Text) {
		t.Fatalf("text length %d, want %d", len(out.Text), len(im.Text))
	}
	for i := range im.Text {
		if out.Text[i] != im.Text[i] {
			t.Fatalf("text[%d] = %#x", i, out.Text[i])
		}
	}
	if string(out.Data) != string(im.Data) {
		t.Fatal("data lost")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},
		make([]byte, 24),              // wrong magic
		sample().Marshal()[:30],       // truncated
		append(sample().Marshal(), 9), // trailing bytes
	}
	for i, b := range cases {
		if _, err := Unmarshal(b); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestMarshalPropertyRoundTrip(t *testing.T) {
	f := func(words []uint32, data []byte) bool {
		if len(words) == 0 {
			return true
		}
		im := &Image{
			Name:     "q",
			Entry:    isa.TextBase,
			TextBase: isa.TextBase,
			Text:     words,
			DataBase: isa.DataBase,
			Data:     data,
		}
		out, err := Unmarshal(im.Marshal())
		if err != nil || len(out.Text) != len(words) || len(out.Data) != len(data) {
			return false
		}
		for i := range words {
			if out.Text[i] != words[i] {
				return false
			}
		}
		for i := range data {
			if out.Data[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
