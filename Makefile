GO ?= go
FUZZTIME ?= 10s

.PHONY: build test race vet bench bench-smoke bench-json fuzz golden serve cluster-smoke sim-smoke obs-smoke clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

# Load-harness smoke: a short cpackbench scenario against an in-process
# cpackd must achieve nonzero throughput, zero 5xx and valid JSON, and the
# flashcrowd scenario must demonstrate singleflight coalescing.
bench-smoke:
	$(GO) test -race -count=1 -run 'TestBenchSmoke|TestFlashcrowdCoalesces' ./cmd/cpackbench

# Regenerate the benchmark trajectory document for this PR: every load
# scenario (open-loop, coordinated-omission-aware) plus the codec
# microbenchmarks (ns/op, MB/s, allocs/op for encode/decode and the
# served path cold+warm). Commit the result as BENCH_$(BENCH_N).json.
BENCH_N ?= 6
bench-json:
	$(GO) run ./cmd/cpackbench -trajectory $(BENCH_N) \
		-qps 300 -duration 5s -warmup 1s -c 32 \
		-out BENCH_$(BENCH_N).json
	@echo wrote BENCH_$(BENCH_N).json

# Short fuzz pass over every fuzz target (FUZZTIME=10s per target).
fuzz:
	$(GO) test -run xxx -fuzz 'FuzzAssemble$$' -fuzztime $(FUZZTIME) ./internal/asm
	$(GO) test -run xxx -fuzz 'FuzzExecute$$' -fuzztime $(FUZZTIME) ./internal/asm
	$(GO) test -run xxx -fuzz 'FuzzUnmarshalCompressed$$' -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run xxx -fuzz 'FuzzDecodeCorruptRegion$$' -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run xxx -fuzz 'FuzzBitStream$$' -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run xxx -fuzz 'FuzzLoadCacheLog$$' -fuzztime $(FUZZTIME) ./internal/server
	$(GO) test -run xxx -fuzz 'FuzzRecoverCacheDir$$' -fuzztime $(FUZZTIME) ./internal/server
	$(GO) test -run xxx -fuzz 'FuzzMembershipMessage$$' -fuzztime $(FUZZTIME) ./internal/peer

# Regenerate the pinned experiment tables after an intentional change.
golden:
	$(GO) test ./internal/harness -run TestGolden -update-golden

# Run the compression service locally (ctrl-C drains gracefully);
# the cache persists across restarts in ./.cpackd-cache.
serve:
	$(GO) run ./cmd/cpackd -addr :8321 -cache-dir .cpackd-cache

# Boot two real cpackd processes as a warm-cache cluster and assert the
# tier serves cross-instance with zero recompression, then degrades
# cleanly when one instance is killed.
cluster-smoke:
	$(GO) test -race -count=1 -run 'TestTwoInstanceCluster|TestDynamicJoinAndLeave' ./cmd/cpackd
	$(GO) test -race -count=1 -run 'TestPeer' ./internal/server

# Replay the pinned deterministic fault schedules — partition,
# crash/restart, message duplication — against the real membership and
# ring code in virtual time, plus the impostor and determinism checks.
sim-smoke:
	$(GO) test -race -count=1 ./internal/peer/sim

# Observability smoke: a real cpackd process serves pprof and the trace
# ring on -debug-addr only, and the span/stage instrumentation holds its
# golden tree, cross-node stitching and histogram labels under -race.
obs-smoke:
	$(GO) test -race -count=1 -run 'TestDebugListenerServesDiagnostics' ./cmd/cpackd
	$(GO) test -race -count=1 -run 'TestCompressMissSpanTree|TestSpanPropagatesAcrossPeerFetch|TestStageHistogramsRendered|TestSlowTraceLogged' ./internal/server

clean:
	$(GO) clean ./...
