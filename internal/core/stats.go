package core

import (
	"fmt"
	"strings"
)

// Stats describes the composition of a compressed program, mirroring the
// columns of the paper's Tables 3 and 4.
type Stats struct {
	// Bit-level composition of the compressed region.
	TagBits      int // tags of dictionary-encoded halfwords ("Compressed tags")
	IndexBits    int // dictionary index bits ("Dictionary indices")
	RawTagBits   int // 3-bit tags marking raw halfwords ("Raw tags")
	RawBits      int // escaped halfword payloads and whole raw blocks ("Raw bits")
	PadBits      int // byte-alignment padding of blocks ("Pad")
	ClassCounts  [numClasses]int
	RawHalfwords int
	// RawBlockInstrs counts instructions stored in whole uncompressed blocks.
	RawBlockInstrs int

	// Byte-level sizes.
	IndexTableBytes int
	DictBytes       int
	RegionBytes     int
	OriginalBytes   int
	PaddedInstrs    int
}

func (c *Compressed) finishStats(paddedInstrs int) {
	c.stats.IndexTableBytes = len(c.Index) * IndexEntryBytes
	c.stats.DictBytes = c.High.Bytes() + c.Low.Bytes()
	c.stats.RegionBytes = len(c.Region)
	c.stats.OriginalBytes = c.NumInstr * 4
	c.stats.PaddedInstrs = paddedInstrs
}

// Stats returns the composition statistics gathered during compression.
func (c *Compressed) Stats() Stats { return c.stats }

// CompressedBytes is the total size of the compressed program: region plus
// index table plus dictionaries.
func (s Stats) CompressedBytes() int {
	return s.RegionBytes + s.IndexTableBytes + s.DictBytes
}

// Ratio is the paper's Equation 1: compressed size / original size
// (smaller is better).
func (s Stats) Ratio() float64 {
	if s.OriginalBytes == 0 {
		return 0
	}
	return float64(s.CompressedBytes()) / float64(s.OriginalBytes)
}

// Composition is the per-category share of the total compressed size, as in
// Table 4 of the paper. The shares sum to 1.
type Composition struct {
	IndexTable  float64
	Dictionary  float64
	Tags        float64
	DictIndices float64
	RawTags     float64
	RawBits     float64
	Pad         float64
	TotalBytes  int
}

// Composition computes the Table 4 breakdown.
func (s Stats) Composition() Composition {
	total := float64(s.CompressedBytes()) * 8
	if total == 0 {
		return Composition{}
	}
	return Composition{
		IndexTable:  float64(s.IndexTableBytes*8) / total,
		Dictionary:  float64(s.DictBytes*8) / total,
		Tags:        float64(s.TagBits) / total,
		DictIndices: float64(s.IndexBits) / total,
		RawTags:     float64(s.RawTagBits) / total,
		RawBits:     float64(s.RawBits) / total,
		Pad:         float64(s.PadBits) / total,
		TotalBytes:  s.CompressedBytes(),
	}
}

// String renders the composition like a row of Table 4.
func (comp Composition) String() string {
	var b strings.Builder
	f := func(name string, v float64) {
		fmt.Fprintf(&b, "%s %.1f%%  ", name, v*100)
	}
	f("index", comp.IndexTable)
	f("dict", comp.Dictionary)
	f("tags", comp.Tags)
	f("indices", comp.DictIndices)
	f("rawtags", comp.RawTags)
	f("rawbits", comp.RawBits)
	f("pad", comp.Pad)
	fmt.Fprintf(&b, "total %d bytes", comp.TotalBytes)
	return b.String()
}
