// Prefetch/timeline demo: reconstructs the paper's Figure 2 cycle by
// cycle. It builds a compressed stream whose first block matches the
// figure's beat pattern (64-bit beats carrying 2,3,3,3,3,2 instructions)
// and prints when every instruction of the missed line reaches the core
// under the three fetch models, plus the output-buffer prefetch effect.
package main

import (
	"fmt"
	"log"

	"codepack"
	"codepack/internal/decomp"
	"codepack/internal/isa"
	"codepack/internal/mem"
)

func main() {
	comp := figureProgram()

	newBus := func() *mem.Bus {
		b, err := mem.NewBus(mem.Baseline())
		if err != nil {
			log.Fatal(err)
		}
		return b
	}

	fmt.Println("L1 miss at t=0; critical instruction = 5th of the line (paper Figure 2)")
	fmt.Println()

	show := func(name string, fill decomp.LineFill) {
		fmt.Printf("%-22s", name)
		for _, t := range fill.Ready {
			fmt.Printf(" %3d", t)
		}
		fmt.Printf("   critical@%d\n", fill.Ready[4])
	}
	fmt.Printf("%-22s", "model \\ instruction")
	for i := 0; i < decomp.LineInstrs; i++ {
		fmt.Printf(" %3d", i)
	}
	fmt.Println()

	native := &decomp.Native{Bus: newBus(), CriticalWordFirst: true}
	show("native (CWF)", native.FetchLine(0, isa.TextBase, 4))

	nocwf := &decomp.Native{Bus: newBus()}
	show("native (no CWF)", nocwf.FetchLine(0, isa.TextBase, 4))

	base, err := decomp.NewCodePack(comp, newBus(), decomp.BaselineCodePack())
	if err != nil {
		log.Fatal(err)
	}
	baseFill := base.FetchLine(0, isa.TextBase, 4)
	show("codepack baseline", baseFill)

	cfg := decomp.OptimizedCodePack()
	cfg.PerfectIndex = true // the figure assumes the index is cached
	opt, err := decomp.NewCodePack(comp, newBus(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	show("codepack optimized", opt.FetchLine(0, isa.TextBase, 4))

	// The prefetch effect: the second line of the block is already in the
	// decompressor's output buffer.
	second := base.FetchLine(baseFill.Done+1, isa.TextBase+32, 0)
	fmt.Println()
	fmt.Printf("next line (t=%d): served from the 16-instruction output buffer\n",
		baseFill.Done+1)
	fmt.Printf("%-22s", "codepack prefetch")
	for _, t := range second.Ready {
		fmt.Printf(" %3d", t)
	}
	fmt.Println()
	s := base.Stats()
	fmt.Printf("\nengine stats: %d misses, %d buffer hits, %d block reads\n",
		s.Misses, s.BufferHits, s.BlockReads)
	fmt.Println("\npaper check: native t=10, baseline t=25, optimized t=14")
}

// figureProgram makes every instruction of block 0 cost exactly 3
// compressed bytes: a raw high halfword (19 bits) plus a class-1 low
// halfword (5 bits).
func figureProgram() *codepack.Compressed {
	text := make([]uint32, 1024)
	for i := range text {
		hi := uint32(0x4000 + i)
		if i < 16 {
			hi = uint32(0xF000 + i)
		}
		text[i] = hi<<16 | uint32(0x0010+i%8)
	}
	comp, err := codepack.CompressWords("figure2", isa.TextBase, text)
	if err != nil {
		log.Fatal(err)
	}
	return comp
}
