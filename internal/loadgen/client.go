package loadgen

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Executor performs one generated request and reports the HTTP status it
// drew. Transport failures return err; non-2xx statuses are not errors —
// the runner counts them per code.
type Executor interface {
	Do(ctx context.Context, req Request) (status int, err error)
}

// MetricsSource snapshots the server-side counters a report diffs across
// a run. Implementations that cannot scrape return an error; the runner
// then omits the server section rather than failing the run.
type MetricsSource interface {
	ServerStats(ctx context.Context) (ServerStats, error)
}

// ServerStats are the /metrics counters the harness tracks. All values
// are cumulative totals; reports publish after-minus-before deltas.
type ServerStats struct {
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	Shed        uint64 `json:"shed"`
	Coalesced   uint64 `json:"coalesced"`
	PeerHits    uint64 `json:"peer_hits"`
	PeerMisses  uint64 `json:"peer_misses"`
	// SLOWorstState is the worst cpackd_slo_state gauge across all
	// objectives at scrape time: 0 ok, 1 warn, 2 page. Stays 0 when the
	// server has no SLO config loaded.
	SLOWorstState uint64 `json:"slo_worst_state"`
}

// HTTPClient is the Executor and MetricsSource for a live cpackd.
type HTTPClient struct {
	// Base is the server's base URL, e.g. "http://127.0.0.1:8321".
	Base string
	// Client is the underlying HTTP client (nil = a pooled default).
	Client *http.Client
}

// NewHTTPClient returns a client sized for high-concurrency load
// generation against base (connection pool >= any sane -c).
func NewHTTPClient(base string) *HTTPClient {
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConns = 512
	tr.MaxIdleConnsPerHost = 512
	return &HTTPClient{
		Base:   strings.TrimRight(base, "/"),
		Client: &http.Client{Transport: tr, Timeout: 60 * time.Second},
	}
}

func (c *HTTPClient) httpClient() *http.Client {
	if c.Client != nil {
		return c.Client
	}
	return http.DefaultClient
}

// Do posts req to its endpoint and drains the response.
func (c *HTTPClient) Do(ctx context.Context, req Request) (int, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.Base+"/v1/"+req.Op, bytes.NewReader(req.Body))
	if err != nil {
		return 0, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	for k, v := range req.Header {
		hreq.Header.Set(k, v)
	}
	resp, err := c.httpClient().Do(hreq)
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

// ServerStats scrapes GET /metrics for the counters the report tracks.
func (c *HTTPClient) ServerStats(ctx context.Context) (ServerStats, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/metrics", nil)
	if err != nil {
		return ServerStats{}, err
	}
	resp, err := c.httpClient().Do(hreq)
	if err != nil {
		return ServerStats{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return ServerStats{}, fmt.Errorf("loadgen: GET /metrics: status %d", resp.StatusCode)
	}
	return parseServerStats(resp.Body)
}

// parseServerStats extracts the tracked counters from a Prometheus text
// exposition. Unknown series are ignored; absent series stay zero (a
// standalone instance exports no peer counters).
func parseServerStats(r io.Reader) (ServerStats, error) {
	var st ServerStats
	targets := map[string]*uint64{
		"cpackd_cache_hits_total":         &st.CacheHits,
		"cpackd_cache_misses_total":       &st.CacheMisses,
		"cpackd_requests_shed_total":      &st.Shed,
		"cpackd_compress_coalesced_total": &st.Coalesced,
		"cpackd_peer_hits_total":          &st.PeerHits,
		"cpackd_peer_misses_total":        &st.PeerMisses,
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, value, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		// cpackd_slo_state is a labelled per-objective gauge; track the
		// worst value seen so a run's report says whether the server was
		// burning budget while under load.
		if strings.HasPrefix(name, "cpackd_slo_state{") || name == "cpackd_slo_state" {
			if v, err := strconv.ParseFloat(strings.TrimSpace(value), 64); err == nil && v >= 0 && uint64(v) > st.SLOWorstState {
				st.SLOWorstState = uint64(v)
			}
			continue
		}
		dst, ok := targets[name]
		if !ok {
			continue
		}
		// Counters render as integers; tolerate a float just in case.
		if v, err := strconv.ParseFloat(strings.TrimSpace(value), 64); err == nil && v >= 0 {
			*dst = uint64(v)
		}
	}
	return st, sc.Err()
}
