GO ?= go
FUZZTIME ?= 10s

.PHONY: build test race vet bench bench-smoke bench-json bench-compare fuzz golden serve cluster-smoke sim-smoke obs-smoke tenant-smoke slo-smoke clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

# Load-harness smoke: a short cpackbench scenario against an in-process
# cpackd must achieve nonzero throughput, zero 5xx and valid JSON, the
# flashcrowd scenario must demonstrate singleflight coalescing, and a
# three-process replicated cluster must hold the warm-hit floor while
# members crash and rejoin mid-run.
bench-smoke:
	$(GO) test -race -count=1 -run 'TestBenchSmoke|TestFlashcrowdCoalesces|TestChurnClusterWarmFloor' ./cmd/cpackbench

# Regenerate the benchmark trajectory document for this PR: every load
# scenario (open-loop, coordinated-omission-aware) against a single
# instance, one churn run against a real 3-process R=2 cluster losing a
# member every second, plus the codec microbenchmarks (ns/op, MB/s,
# allocs/op for encode/decode and the served path cold+warm). Commit the
# result as BENCH_$(BENCH_N).json.
BENCH_N ?= 9
bench-json:
	$(GO) run ./cmd/cpackbench -trajectory $(BENCH_N) \
		-qps 300 -duration 5s -warmup 1s -c 32 \
		-cluster 3 -cluster-replicas 2 -churn-interval 1s \
		-out BENCH_$(BENCH_N).json
	@echo wrote BENCH_$(BENCH_N).json

# Guard the codec microbenchmarks against regression: re-run them and
# fail if any shared benchmark is >20% slower than the committed
# trajectory after anchor normalization (see cmd/benchcompare).
bench-compare:
	$(GO) run ./cmd/benchcompare

# Short fuzz pass over every fuzz target (FUZZTIME=10s per target).
fuzz:
	$(GO) test -run xxx -fuzz 'FuzzAssemble$$' -fuzztime $(FUZZTIME) ./internal/asm
	$(GO) test -run xxx -fuzz 'FuzzExecute$$' -fuzztime $(FUZZTIME) ./internal/asm
	$(GO) test -run xxx -fuzz 'FuzzUnmarshalCompressed$$' -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run xxx -fuzz 'FuzzDecodeCorruptRegion$$' -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run xxx -fuzz 'FuzzDecodeEquivalence$$' -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run xxx -fuzz 'FuzzBitStream$$' -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run xxx -fuzz 'FuzzLoadCacheLog$$' -fuzztime $(FUZZTIME) ./internal/server
	$(GO) test -run xxx -fuzz 'FuzzRecoverCacheDir$$' -fuzztime $(FUZZTIME) ./internal/server
	$(GO) test -run xxx -fuzz 'FuzzMembershipMessage$$' -fuzztime $(FUZZTIME) ./internal/peer
	$(GO) test -run xxx -fuzz 'FuzzHandoffRecord$$' -fuzztime $(FUZZTIME) ./internal/peer
	$(GO) test -run xxx -fuzz 'FuzzTenantConfig$$' -fuzztime $(FUZZTIME) ./internal/tenant
	$(GO) test -run xxx -fuzz 'FuzzSLOConfig$$' -fuzztime $(FUZZTIME) ./internal/obs

# Regenerate the pinned experiment tables after an intentional change.
golden:
	$(GO) test ./internal/harness -run TestGolden -update-golden

# Run the compression service locally (ctrl-C drains gracefully);
# the cache persists across restarts in ./.cpackd-cache.
serve:
	$(GO) run ./cmd/cpackd -addr :8321 -cache-dir .cpackd-cache

# Boot real cpackd processes as a warm-cache cluster and assert the
# tier serves cross-instance with zero recompression, degrades cleanly
# when one instance is killed, and — at -replicas 2 — survives a primary
# crash via replica fallthrough, buffers hinted handoff, and read-repairs
# a lagging replica.
cluster-smoke:
	$(GO) test -race -count=1 -run 'TestTwoInstanceCluster|TestDynamicJoinAndLeave|TestReplicatedClusterCrashFailoverAndReadRepair' ./cmd/cpackd
	$(GO) test -race -count=1 -run 'TestPeer' ./internal/server

# Replay the pinned deterministic fault schedules — partition,
# crash/restart, message duplication, and the R=2 replication set
# (primary crash with zero recompressions, partition staleness bounds,
# hinted-handoff drain and reassign) — against the real membership and
# ring code in virtual time, plus the impostor check and the
# same-seed ⇒ byte-identical event-log determinism guard.
sim-smoke:
	$(GO) test -race -count=1 ./internal/peer/sim

# Multi-tenant isolation smoke: fair admission must keep a light
# tenant's p99 under the pinned bound while a 10x-heavier tenant sheds
# via its own 429s; signed peer traffic must warm-hit while unsigned
# internal requests are rejected; hot reload must not race admission.
tenant-smoke:
	$(GO) test -race -count=1 -run 'TestTenantFairnessSmoke' ./cmd/cpackbench
	$(GO) test -race -count=1 -run 'TestPeerSignedClusterWarmHit|TestTenantAdmissionReloadStress' ./internal/server
	$(GO) test -race -count=1 -run 'TestSighupReloadsTenants' ./cmd/cpackd

# Observability smoke: a real cpackd process serves pprof and the trace
# ring on -debug-addr only, and the span/stage instrumentation holds its
# golden tree, cross-node stitching and histogram labels under -race.
obs-smoke:
	$(GO) test -race -count=1 -run 'TestDebugListenerServesDiagnostics' ./cmd/cpackd
	$(GO) test -race -count=1 -run 'TestCompressMissSpanTree|TestSpanPropagatesAcrossPeerFetch|TestStageHistogramsRendered|TestSlowTraceLogged' ./internal/server

# SLO smoke: on a two-member signed cluster, injected latency must flip
# the fast-burn alert to page within one evaluation tick, the page must
# land a CPU profile in the on-disk ring, the OpenMetrics scrape must
# carry an exemplar that resolves in /debug/trace/recent, and
# /debug/cluster must aggregate SLO burn from both members. Also lints
# the full /metrics exposition in both formats and checks the lock-free
# histogram under -race.
slo-smoke:
	$(GO) test -race -count=1 -run 'TestSLOSmoke|TestMetricsExpositionLint|TestLintRejectsMalformed|TestExemplarResolvesInTraceRing|TestHistogramAtomicConsistency' ./internal/server
	$(GO) test -race -count=1 ./internal/obs

clean:
	$(GO) clean ./...
