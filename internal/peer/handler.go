package peer

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
)

// Source is the local cache as the peer protocol sees it; implemented
// by internal/server over its content-addressed compression cache.
type Source interface {
	// Payload returns the marshalled compressed bytes cached under
	// digest, or false if the entry is not held locally.
	Payload(digest string) ([]byte, bool)
	// Accept stores a payload replicated from a peer. Implementations
	// must treat it as untrusted: structurally validated on arrival and
	// verified against the requested program before it is ever served
	// to a client.
	Accept(digest string, payload []byte) error
	// Missing filters digests down to those not held locally — the
	// subset this instance wants pushed during anti-entropy.
	Missing(digests []string) []string
}

// maxOfferDigests bounds one anti-entropy offer request.
const maxOfferDigests = 4096

type offerRequest struct {
	Digests []string `json:"digests"`
}

type offerResponse struct {
	Want []string `json:"want"`
}

// Handler serves the peer protocol over a Source. The owning server
// mounts its methods (they are plain http.HandlerFuncs, so they compose
// with whatever instrumentation the server already applies):
//
//	GET  /internal/v1/cache/{digest}  -> payload + X-Cpackd-Sum
//	PUT  /internal/v1/cache/{digest}  <- replicated payload
//	POST /internal/v1/cache/offer     <- {"digests":[...]} -> {"want":[...]}
type Handler struct {
	src Source
	log *slog.Logger
}

// NewHandler builds a Handler over src (nil logger = slog.Default()).
func NewHandler(src Source, logger *slog.Logger) *Handler {
	if logger == nil {
		logger = slog.Default()
	}
	return &Handler{src: src, log: logger}
}

// Get serves GET /internal/v1/cache/{digest}: the raw payload with its
// SHA-256 in the sum header, or 404.
func (h *Handler) Get(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	if !validDigest(digest) {
		http.Error(w, "bad digest", http.StatusBadRequest)
		return
	}
	payload, ok := h.src.Payload(digest)
	if !ok {
		http.Error(w, "not cached", http.StatusNotFound)
		return
	}
	sum := sha256.Sum256(payload)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(SumHeader, hex.EncodeToString(sum[:]))
	w.Write(payload)
}

// Put serves PUT /internal/v1/cache/{digest}: a replication push. The
// body must match the sum header byte for byte and parse as a
// compressed program (Accept checks); it is still quarantined as
// unverified until a local request proves it decompresses to the
// program the digest names.
func (h *Handler) Put(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	if !validDigest(digest) {
		http.Error(w, "bad digest", http.StatusBadRequest)
		return
	}
	payload, err := io.ReadAll(io.LimitReader(r.Body, maxPayloadBytes+1))
	if err != nil {
		http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(payload) > maxPayloadBytes {
		http.Error(w, "payload too large", http.StatusRequestEntityTooLarge)
		return
	}
	sum := sha256.Sum256(payload)
	if got := r.Header.Get(SumHeader); got != hex.EncodeToString(sum[:]) {
		http.Error(w, "payload checksum mismatch", http.StatusBadRequest)
		return
	}
	if err := h.src.Accept(digest, payload); err != nil {
		h.log.Warn("rejected replicated payload", "digest", digest, "err", err)
		http.Error(w, "rejected: "+err.Error(), http.StatusUnprocessableEntity)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// Offer serves POST /internal/v1/cache/offer: given a peer's digest
// list, answer with the subset this instance is missing and wants
// pushed.
func (h *Handler) Offer(w http.ResponseWriter, r *http.Request) {
	var req offerRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		http.Error(w, "malformed offer: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Digests) > maxOfferDigests {
		http.Error(w, "too many digests", http.StatusBadRequest)
		return
	}
	valid := req.Digests[:0]
	for _, d := range req.Digests {
		if validDigest(d) {
			valid = append(valid, d)
		}
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	json.NewEncoder(w).Encode(offerResponse{Want: h.src.Missing(valid)})
}

// validDigest reports whether s is a well-formed cache key: 64
// lowercase hex characters (an SHA-256).
func validDigest(s string) bool {
	if len(s) != 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
