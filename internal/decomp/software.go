package decomp

import (
	"fmt"

	"codepack/internal/core"
	"codepack/internal/mem"
)

// SoftwareConfig parameterizes software-managed decompression, the option
// the paper's conclusion raises for resource-limited systems: an L1 miss
// traps to a handler that walks the index table and decodes the block in
// software instead of dedicated hardware.
type SoftwareConfig struct {
	// TrapOverhead is the fixed cost of entering and leaving the miss
	// handler (pipeline flush, save/restore).
	TrapOverhead int
	// CyclesPerInstr is the software decode cost per instruction
	// (dictionary lookups, shifts and masks dominate).
	CyclesPerInstr int
	// DecodeWholeBlock mirrors the hardware's always-fill-the-buffer
	// behaviour; when false the handler stops at the end of the
	// requested line, trading prefetch for lower miss latency.
	DecodeWholeBlock bool
}

// DefaultSoftware returns a plausible software decompressor: a 30-cycle
// trap and 6 cycles per decoded instruction.
func DefaultSoftware() SoftwareConfig {
	return SoftwareConfig{TrapOverhead: 30, CyclesPerInstr: 6, DecodeWholeBlock: true}
}

// Validate checks the configuration.
func (c SoftwareConfig) Validate() error {
	if c.TrapOverhead < 0 || c.CyclesPerInstr < 1 {
		return fmt.Errorf("decomp: bad software decompressor %+v", c)
	}
	return nil
}

// Software services misses with a software handler. The compressed bytes
// still stream from memory over the shared bus; decoding overlaps the
// fetch at CyclesPerInstr, and a software-maintained one-entry index
// register stands in for the hardware index cache.
type Software struct {
	comp *core.Compressed
	bus  *mem.Bus
	cfg  SoftwareConfig

	indexBase  uint32
	regionBase uint32
	lastGroup  int

	bufBlock int
	bufReady [core.BlockInstrs]uint64
	bufValid bool

	stats CodePackStats
}

// NewSoftware builds a software decompression engine for comp over bus.
func NewSoftware(comp *core.Compressed, bus *mem.Bus, cfg SoftwareConfig) (*Software, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &Software{
		comp:      comp,
		bus:       bus,
		cfg:       cfg,
		indexBase: comp.TextBase + 0x0100_0000,
		lastGroup: -1,
		bufBlock:  -1,
	}
	e.regionBase = e.indexBase + uint32(len(comp.Index)*core.IndexEntryBytes)
	return e, nil
}

// Stats returns the event counters (index statistics reflect the software
// index register).
func (e *Software) Stats() CodePackStats { return e.stats }

// FetchLine implements Engine.
func (e *Software) FetchLine(now uint64, lineAddr uint32, critical int) LineFill {
	e.stats.Misses++
	instr := int(lineAddr-e.comp.TextBase) / 4
	block := instr / core.BlockInstrs
	lineOff := instr % core.BlockInstrs

	var fill LineFill
	if e.bufValid && e.bufBlock == block {
		e.stats.BufferHits++
		for i := 0; i < LineInstrs; i++ {
			fill.Ready[i] = maxU64(now+1, e.bufReady[lineOff+i])
			fill.Done = maxU64(fill.Done, fill.Ready[i])
		}
		return fill
	}

	// Trap into the handler.
	t := now + uint64(e.cfg.TrapOverhead)

	// Index lookup: software keeps the last group's entry in a register;
	// otherwise it loads the entry (one bus access, data-cache bypassed).
	group := block / core.GroupBlocks
	e.stats.IndexLookups++
	if group != e.lastGroup {
		e.stats.IndexMisses++
		burst := e.bus.Request(t, e.indexBase+uint32(group*core.IndexEntryBytes),
			core.IndexEntryBytes)
		t = burst.BeatTime(0)
		e.lastGroup = group
	}

	start, size, _, err := e.comp.BlockExtent(block)
	if err != nil {
		fill.Done = t
		return fill
	}
	e.stats.BlockReads++

	limit := core.BlockInstrs
	if !e.cfg.DecodeWholeBlock {
		limit = lineOff + LineInstrs
	}
	fetchBytes := int(size)
	if !e.cfg.DecodeWholeBlock {
		fetchBytes = e.comp.InstrReadyBytes(block, limit-1)
	}
	addr := e.regionBase + start
	burst := e.bus.Request(t, addr, fetchBytes)
	w := e.bus.Config().WidthBytes
	slack := int(addr % uint32(w))

	// Software decode: strictly serial at CyclesPerInstr, gated by byte
	// arrival like the hardware.
	var done [core.BlockInstrs]uint64
	prev := t
	for i := 0; i < limit; i++ {
		need := e.comp.InstrReadyBytes(block, i)
		beat := (slack + need + w - 1) / w
		arrive := burst.BeatTime(beat - 1)
		c := maxU64(arrive, prev) + uint64(e.cfg.CyclesPerInstr)
		done[i] = c
		prev = c
	}
	ret := prev + uint64(e.cfg.TrapOverhead)/2 // return-from-trap

	if e.cfg.DecodeWholeBlock {
		e.bufBlock = block
		e.bufReady = done
		e.bufValid = true
	} else {
		e.bufValid = false
	}
	for i := 0; i < LineInstrs; i++ {
		idx := lineOff + i
		if idx < limit {
			fill.Ready[i] = maxU64(done[idx], ret)
		} else {
			fill.Ready[i] = ret
		}
		fill.Done = maxU64(fill.Done, fill.Ready[i])
	}
	return fill
}
