package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"codepack/internal/loadgen"
)

// TestBenchSmoke is the `make bench-smoke` entrypoint: a short zipfian
// run against an in-process cpackd must achieve nonzero throughput, draw
// zero 5xx responses and zero transport errors, and emit valid
// schema-tagged JSON with live server-side cache deltas.
func TestBenchSmoke(t *testing.T) {
	var out, errs bytes.Buffer
	err := run([]string{
		"-scenario", "zipfian",
		"-qps", "150", "-duration", "2s", "-warmup", "250ms",
		"-seed", "42", "-json",
	}, &out, &errs)
	if err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, errs.String())
	}
	var rep loadgen.Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if rep.Schema != loadgen.ReportSchema {
		t.Fatalf("schema = %q, want %q", rep.Schema, loadgen.ReportSchema)
	}
	if rep.Scenario != "zipfian" || rep.Seed != 42 {
		t.Fatalf("report identity wrong: %+v", rep)
	}
	if rep.Completed == 0 || rep.ThroughputRPS <= 0 {
		t.Fatalf("no throughput: completed=%d rps=%.1f", rep.Completed, rep.ThroughputRPS)
	}
	if rep.TransportErrors != 0 {
		t.Fatalf("%d transport errors against in-process server", rep.TransportErrors)
	}
	if n := rep.Status5xx(); n != 0 {
		t.Fatalf("%d 5xx responses: %v", n, rep.ByOp)
	}
	if rep.Server == nil {
		t.Fatal("server metrics deltas missing")
	}
	if rep.Server.CacheHits+rep.Server.CacheMisses == 0 {
		t.Fatalf("no cache activity recorded: %+v", rep.Server)
	}
	// Zipfian traffic is cache-friendly: repeats must dominate once the
	// hot set is resident.
	if rep.Server.HitRate < 0.5 {
		t.Fatalf("zipfian hit rate %.2f, want >= 0.5", rep.Server.HitRate)
	}
	if rep.Latency.N == 0 || rep.Latency.P50 <= 0 || rep.Latency.Max < rep.Latency.P50 {
		t.Fatalf("implausible latency stats: %+v", rep.Latency)
	}
}

// TestFlashcrowdCoalesces: the opening burst on one large uncached digest
// must ride a single in-flight fill — the cpackd_compress_coalesced_total
// delta in the report is the proof the scenario exists to produce.
func TestFlashcrowdCoalesces(t *testing.T) {
	var out, errs bytes.Buffer
	err := run([]string{
		"-scenario", "flashcrowd",
		"-qps", "300", "-duration", "1500ms", "-warmup", "0s",
		"-c", "32", "-seed", "7", "-json",
	}, &out, &errs)
	if err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, errs.String())
	}
	var rep loadgen.Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if rep.Server == nil {
		t.Fatal("server metrics deltas missing")
	}
	if rep.Server.Coalesced == 0 {
		t.Fatalf("flashcrowd produced no singleflight coalescing: %+v", rep.Server)
	}
	if n := rep.Status5xx(); n != 0 {
		t.Fatalf("%d 5xx responses: %v", n, rep.ByOp)
	}
}

// TestTenantFairnessSmoke is the `make tenant-smoke` entrypoint: the
// tenants scenario floods an in-process cpackd with a 10:1 heavy:light
// offered-load skew. Weighted-fair admission must keep the light
// tenant's p99 under a pinned bound and its 429 rate near zero — the
// heavy tenant's overload may only shed onto the heavy tenant itself.
func TestTenantFairnessSmoke(t *testing.T) {
	var out, errs bytes.Buffer
	err := run([]string{
		"-scenario", "tenants",
		"-qps", "400", "-duration", "3s", "-warmup", "500ms",
		"-c", "64", "-seed", "11", "-json",
	}, &out, &errs)
	if err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, errs.String())
	}
	var rep loadgen.Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if rep.TransportErrors != 0 {
		t.Fatalf("%d transport errors against in-process server", rep.TransportErrors)
	}
	light := rep.Tenants[loadgen.BenchTenantLight]
	heavy := rep.Tenants[loadgen.BenchTenantHeavy]
	if light == nil || heavy == nil {
		t.Fatalf("report missing tenant sections: %v", rep.Tenants)
	}
	if light.Requests == 0 || heavy.Requests < 5*light.Requests {
		t.Fatalf("offered-load skew not reproduced: heavy=%d light=%d requests",
			heavy.Requests, light.Requests)
	}
	// The pinned isolation bound: generous enough for CI noise, far below
	// the multi-second queueing delay the heavy tenant's backlog would
	// impose on a shared global queue.
	const lightP99BoundMs = 1500.0
	if light.Latency.P99 > lightP99BoundMs {
		t.Errorf("light tenant p99 = %.1fms, want <= %.0fms despite heavy overload",
			light.Latency.P99, lightP99BoundMs)
	}
	if frac := float64(light.Status429()) / float64(light.Requests); frac > 0.03 {
		t.Errorf("light tenant shed %.1f%% of its requests (%d of %d), want < 3%%",
			100*frac, light.Status429(), light.Requests)
	}
	if rep.Fairness <= 0 || rep.Fairness > 1.0001 {
		t.Errorf("fairness index %.3f outside (0, 1]", rep.Fairness)
	}
	if n := rep.Status5xx(); n != 0 {
		t.Fatalf("%d 5xx responses: %v", n, rep.ByOp)
	}
}

// TestListScenarios: -list names all eight scenarios.
func TestListScenarios(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"uniform", "zipfian", "thrash", "coldstart", "flashcrowd", "mixed", "churn", "tenants"} {
		if !strings.Contains(out.String(), name) {
			t.Fatalf("-list output missing %q:\n%s", name, out.String())
		}
	}
}

func TestUnknownScenarioIsUsageError(t *testing.T) {
	err := run([]string{"-scenario", "bogus", "-duration", "1s"}, io.Discard, io.Discard)
	var uerr usageError
	if err == nil || !strings.Contains(err.Error(), "unknown scenario") {
		t.Fatalf("err = %v, want unknown-scenario usage error", err)
	}
	if !errorsAsUsage(err, &uerr) {
		t.Fatalf("err %T is not a usageError", err)
	}
}

func errorsAsUsage(err error, target *usageError) bool {
	u, ok := err.(usageError)
	if ok {
		*target = u
	}
	return ok
}

// TestTrajectoryDocument: -trajectory runs the whole catalogue and emits
// a schema-stable BENCH_<n>.json document (microbench disabled here to
// keep the test self-contained).
func TestTrajectoryDocument(t *testing.T) {
	if testing.Short() {
		t.Skip("trajectory run takes a few seconds")
	}
	out := filepath.Join(t.TempDir(), "BENCH_test.json")
	var errs bytes.Buffer
	err := run([]string{
		"-trajectory", "99", "-microbench=false",
		"-qps", "120", "-duration", "500ms", "-warmup", "100ms",
		"-out", out,
	}, io.Discard, &errs)
	if err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, errs.String())
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc loadgen.Trajectory
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trajectory is not valid JSON: %v", err)
	}
	if doc.Schema != loadgen.TrajectorySchema || doc.PR != 99 {
		t.Fatalf("document header wrong: schema=%q pr=%d", doc.Schema, doc.PR)
	}
	if len(doc.Scenarios) != 8 {
		t.Fatalf("trajectory holds %d scenario reports, want 8", len(doc.Scenarios))
	}
	seen := map[string]bool{}
	for _, rep := range doc.Scenarios {
		if rep.Schema != loadgen.ReportSchema {
			t.Fatalf("scenario %s schema = %q", rep.Scenario, rep.Schema)
		}
		if rep.Completed == 0 {
			t.Fatalf("scenario %s completed nothing", rep.Scenario)
		}
		seen[rep.Scenario] = true
	}
	if len(seen) != 8 {
		t.Fatalf("duplicate scenarios in trajectory: %v", seen)
	}
}
