package server

import (
	"context"
	"errors"
	"sync"
)

// errSaturated reports a full queue: the caller sheds the request (429)
// instead of queueing unboundedly.
var errSaturated = errors.New("server: worker pool saturated")

// errClosed reports a pool that has begun draining for shutdown.
var errClosed = errors.New("server: worker pool closed")

// job is one unit of pooled work. fn runs on a worker goroutine unless the
// submitter's context was already cancelled by the time a worker picks the
// job up (a queued job whose client gave up is skipped, not executed).
type job struct {
	ctx  context.Context
	fn   func()
	done chan struct{}
}

// tenantQueue is one tenant's FIFO backlog plus its virtual-time tag.
// vt is the start tag the queue's next job will be served at: serving a
// job advances vt by 1/weight, so a weight-3 tenant's tags advance a
// third as fast and it drains three jobs for every one a weight-1
// tenant drains when both are backlogged.
type tenantQueue struct {
	id     string
	weight int
	jobs   []*job
	vt     float64
}

// pool is a bounded worker pool with weighted-fair admission: a fixed
// number of workers serve per-tenant FIFO queues in start-time
// fair-queuing (SFQ) order. Each tenant gets its own bounded queue, so
// saturation is per tenant — one tenant's storm fills only its own
// queue and backpressures only itself — and dequeue picks the eligible
// queue with the smallest virtual start time, so service under
// contention is proportional to configured weights. Two pools (light
// codec work, heavy simulations) keep one class of traffic from
// starving the other; the fair scheduler keeps one tenant from
// starving the rest within a pool.
type pool struct {
	name     string
	workers  int
	queueCap int // per-tenant queue capacity (0 = admit only if a worker is idle)

	mu     sync.Mutex
	cond   *sync.Cond
	queues map[string]*tenantQueue
	vtime  float64 // virtual time: start tag of the most recently served job
	queued int     // jobs admitted but not yet picked up, across all queues
	idle   int     // workers currently waiting for work
	closed bool
	wg     sync.WaitGroup
}

// newPool starts workers goroutines serving per-tenant queues of
// capacity queueLen each (0 = no queue: a job is admitted only if a
// worker is free right now). A single-tenant workload sees exactly the
// old global-queue behaviour, since only one queue exists.
func newPool(name string, workers, queueLen int) *pool {
	if workers < 1 {
		workers = 1
	}
	if queueLen < 0 {
		queueLen = 0
	}
	p := &pool{
		name:     name,
		workers:  workers,
		queueCap: queueLen,
		queues:   map[string]*tenantQueue{},
	}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *pool) worker() {
	defer p.wg.Done()
	p.mu.Lock()
	for {
		for p.queued == 0 && !p.closed {
			p.idle++
			p.cond.Wait()
			p.idle--
		}
		if p.queued == 0 {
			// closed and drained
			p.mu.Unlock()
			return
		}
		j := p.dequeueLocked()
		p.mu.Unlock()
		if j.ctx.Err() == nil {
			j.fn()
		}
		close(j.done)
		p.mu.Lock()
	}
}

// dequeueLocked pops the head of the non-empty queue with the smallest
// virtual start time and advances virtual time. O(tenants) per dequeue;
// tenant count is bounded by the config file, so a heap isn't worth its
// constant factor here.
func (p *pool) dequeueLocked() *job {
	var best *tenantQueue
	for _, q := range p.queues {
		if len(q.jobs) == 0 {
			continue
		}
		if best == nil || q.vt < best.vt {
			best = q
		}
	}
	j := best.jobs[0]
	best.jobs[0] = nil // release the reference for GC
	best.jobs = best.jobs[1:]
	if len(best.jobs) == 0 && cap(best.jobs) == 0 {
		best.jobs = nil
	}
	p.vtime = best.vt
	best.vt += 1 / float64(max(best.weight, 1))
	p.queued--
	return j
}

// doAs submits fn on behalf of tenant id with the given scheduling
// weight and waits for it to finish or for ctx to end. It never blocks
// on admission: a full per-tenant queue returns errSaturated
// immediately (other tenants' queues are unaffected). If ctx ends while
// the job is queued or running, doAs returns ctx's error; the job
// itself is skipped if still queued (a running fn is responsible for
// honouring ctx, which the simulation path does).
func (p *pool) doAs(ctx context.Context, id string, weight int, fn func()) error {
	j := &job{ctx: ctx, fn: fn, done: make(chan struct{})}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return errClosed
	}
	q := p.queues[id]
	if q == nil {
		q = &tenantQueue{id: id, weight: max(weight, 1)}
		p.queues[id] = q
	}
	q.weight = max(weight, 1) // track live config across reloads
	if p.queueCap == 0 {
		// No queueing: admit only while idle workers outnumber jobs
		// they haven't picked up yet.
		if p.queued >= p.idle {
			p.mu.Unlock()
			return errSaturated
		}
	} else if len(q.jobs) >= p.queueCap {
		p.mu.Unlock()
		return errSaturated
	}
	if len(q.jobs) == 0 && q.vt < p.vtime {
		// A queue going from idle to backlogged starts at current
		// virtual time: it competes fairly from now on but cannot
		// claim credit for the time it was idle.
		q.vt = p.vtime
	}
	q.jobs = append(q.jobs, j)
	p.queued++
	p.mu.Unlock()
	p.cond.Signal()

	select {
	case <-j.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// do submits fn with no tenant attribution: a single anonymous queue at
// weight 1. Internal callers and pre-tenancy tests use this.
func (p *pool) do(ctx context.Context, fn func()) error {
	return p.doAs(ctx, "anon", 1, fn)
}

// depth returns the number of admitted jobs not yet picked up by a
// worker, across all tenant queues.
func (p *pool) depth() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.queued
}

// depthFor returns one tenant's queued-job count (for metrics).
func (p *pool) depthFor(id string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if q := p.queues[id]; q != nil {
		return len(q.jobs)
	}
	return 0
}

// tenantDepths snapshots per-tenant backlog for metric gauges.
func (p *pool) tenantDepths() map[string]int {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]int, len(p.queues))
	for id, q := range p.queues {
		if len(q.jobs) > 0 {
			out[id] = len(q.jobs)
		}
	}
	return out
}

// retryAfterFor is the Retry-After value for a shed request from tenant
// id, derived from that tenant's own backlog and fair share rather than
// global queue depth: the tenant's queue drains at roughly its weighted
// share of the workers per unit time, so the wait is its own backlog
// divided by its own share. An idle or lightly-loaded tenant is never
// penalised for someone else's storm. Clamped so a pathological backlog
// never tells clients to go away for minutes.
func (p *pool) retryAfterFor(id string) int {
	p.mu.Lock()
	q := p.queues[id]
	backlog := 0
	totalWeight := 0
	weight := 1
	for _, tq := range p.queues {
		if len(tq.jobs) > 0 {
			totalWeight += max(tq.weight, 1)
		}
	}
	if q != nil {
		backlog = len(q.jobs)
		weight = max(q.weight, 1)
		if backlog == 0 {
			totalWeight += weight // about to contend
		}
	} else {
		totalWeight += 1
	}
	p.mu.Unlock()
	if totalWeight < 1 {
		totalWeight = 1
	}
	// Fair share of workers, floored at a fraction of one worker.
	share := float64(p.workers) * float64(weight) / float64(totalWeight)
	if share <= 0 {
		share = 1
	}
	secs := 1 + int(float64(backlog)/share)
	if secs > 30 {
		secs = 30
	}
	return secs
}

// close drains the pool: no new jobs are admitted, already-admitted jobs
// run to completion, and close returns once every worker has exited.
func (p *pool) close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
}
