// Package asm implements a small two-pass assembler for SS32.
//
// The syntax is classic MIPS assembler: optional "label:" prefixes,
// "#"-comments, ".text"/".data" sections, the data directives .word, .byte,
// .half, .asciiz, .space and .align, and the usual pseudo-instructions
// (li, la, move, b, not, neg, blt, bgt, ble, bge, beqz, bnez).
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"codepack/internal/isa"
	"codepack/internal/program"
)

// Assemble translates source into a program image. The entry point is the
// "main" symbol if defined, otherwise the start of the text section.
func Assemble(name, source string) (*program.Image, error) {
	a := &assembler{
		im: &program.Image{
			Name:     name,
			TextBase: isa.TextBase,
			DataBase: isa.DataBase,
			Symbols:  make(map[string]uint32),
		},
	}
	lines := strings.Split(source, "\n")
	if err := a.pass(lines, 1); err != nil {
		return nil, err
	}
	if err := a.pass(lines, 2); err != nil {
		return nil, err
	}
	if entry, ok := a.im.Symbols["main"]; ok {
		a.im.Entry = entry
	} else {
		a.im.Entry = a.im.TextBase
	}
	return a.im, a.im.Validate()
}

type assembler struct {
	im       *program.Image
	pass2    bool
	inData   bool
	textAddr uint32
	dataAddr uint32
}

func (a *assembler) pass(lines []string, n int) error {
	a.pass2 = n == 2
	a.inData = false
	a.textAddr = a.im.TextBase
	a.dataAddr = a.im.DataBase
	for i, raw := range lines {
		if err := a.line(raw); err != nil {
			return fmt.Errorf("asm: line %d: %w (%q)", i+1, err, strings.TrimSpace(raw))
		}
	}
	return nil
}

func (a *assembler) here() uint32 {
	if a.inData {
		return a.dataAddr
	}
	return a.textAddr
}

func (a *assembler) line(raw string) error {
	s := raw
	if i := strings.IndexByte(s, '#'); i >= 0 {
		// Keep '#' inside string literals.
		if q := strings.IndexByte(s, '"'); q < 0 || i < q {
			s = s[:i]
		}
	}
	s = strings.TrimSpace(s)
	for {
		i := strings.IndexByte(s, ':')
		if i < 0 || strings.ContainsAny(s[:i], " \t\"") {
			break
		}
		label := s[:i]
		if !a.pass2 {
			if _, dup := a.im.Symbols[label]; dup {
				return fmt.Errorf("duplicate label %q", label)
			}
			a.im.Symbols[label] = a.here()
		}
		s = strings.TrimSpace(s[i+1:])
	}
	if s == "" {
		return nil
	}
	mnemonic, rest, _ := strings.Cut(s, " ")
	if t, r, ok := strings.Cut(s, "\t"); ok && len(t) < len(mnemonic) {
		mnemonic, rest = t, r
	}
	mnemonic = strings.ToLower(strings.TrimSpace(mnemonic))
	rest = strings.TrimSpace(rest)
	if strings.HasPrefix(mnemonic, ".") {
		return a.directive(mnemonic, rest)
	}
	if a.inData {
		return fmt.Errorf("instruction in data section")
	}
	return a.instruction(mnemonic, rest)
}

func (a *assembler) directive(d, rest string) error {
	switch d {
	case ".text":
		a.inData = false
	case ".data":
		a.inData = true
	case ".globl", ".global", ".ent", ".end":
		// Accepted and ignored.
	case ".align":
		n, err := strconv.Atoi(rest)
		if err != nil || n < 0 || n > 12 {
			return fmt.Errorf("bad .align %q", rest)
		}
		a.alignTo(1 << n)
	case ".space":
		n, err := strconv.Atoi(rest)
		if err != nil || n < 0 {
			return fmt.Errorf("bad .space %q", rest)
		}
		a.emitBytes(make([]byte, n))
	case ".word":
		for _, f := range splitOperands(rest) {
			v, err := a.value(f)
			if err != nil {
				return err
			}
			if a.inData {
				a.emitBytes([]byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)})
			} else {
				a.emitWord(isa.Word(v))
			}
		}
	case ".half":
		for _, f := range splitOperands(rest) {
			v, err := a.value(f)
			if err != nil {
				return err
			}
			a.emitBytes([]byte{byte(v), byte(v >> 8)})
		}
	case ".byte":
		for _, f := range splitOperands(rest) {
			v, err := a.value(f)
			if err != nil {
				return err
			}
			a.emitBytes([]byte{byte(v)})
		}
	case ".asciiz", ".ascii":
		str, err := strconv.Unquote(strings.TrimSpace(rest))
		if err != nil {
			return fmt.Errorf("bad string %q", rest)
		}
		b := []byte(str)
		if d == ".asciiz" {
			b = append(b, 0)
		}
		a.emitBytes(b)
	default:
		return fmt.Errorf("unknown directive %q", d)
	}
	return nil
}

func (a *assembler) alignTo(n uint32) {
	for a.here()%n != 0 {
		if a.inData {
			a.emitBytes([]byte{0})
		} else {
			a.emitWord(0) // nop
		}
	}
}

func (a *assembler) emitWord(w isa.Word) {
	if a.pass2 {
		a.im.Text = append(a.im.Text, w)
	}
	a.textAddr += 4
}

func (a *assembler) emitBytes(b []byte) {
	if a.inData {
		if a.pass2 {
			a.im.Data = append(a.im.Data, b...)
		}
		a.dataAddr += uint32(len(b))
		return
	}
	// Bytes in text must stay word-aligned.
	for len(b)%4 != 0 {
		b = append(b, 0)
	}
	for i := 0; i < len(b); i += 4 {
		a.emitWord(isa.Word(b[i]) | isa.Word(b[i+1])<<8 | isa.Word(b[i+2])<<16 | isa.Word(b[i+3])<<24)
	}
}

// value evaluates an integer literal, character literal or label reference.
// During pass 1 unresolved labels evaluate to zero.
func (a *assembler) value(f string) (int64, error) {
	f = strings.TrimSpace(f)
	if f == "" {
		return 0, fmt.Errorf("empty operand")
	}
	if f[0] == '\'' {
		r, err := strconv.Unquote(f)
		if err != nil || len(r) == 0 {
			return 0, fmt.Errorf("bad char literal %q", f)
		}
		return int64(r[0]), nil
	}
	if v, err := strconv.ParseInt(f, 0, 64); err == nil {
		return v, nil
	}
	if addr, ok := a.im.Symbols[f]; ok {
		return int64(addr), nil
	}
	if !a.pass2 {
		return 0, nil
	}
	return 0, fmt.Errorf("undefined symbol %q", f)
}

// splitOperands splits on commas that are outside quotes and parentheses.
func splitOperands(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	var out []string
	depth, start, inStr := 0, 0, false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inStr = !inStr
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 && !inStr {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	return append(out, strings.TrimSpace(s[start:]))
}
