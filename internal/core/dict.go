package core

import (
	"fmt"
	"sort"
)

// Dict is one CodePack dictionary: an ordered table of 16-bit halfword
// values where slot position determines codeword class (slot 0 is the 2-bit
// class, slots 1-8 the 5-bit class, and so on).
type Dict struct {
	entries []uint16
	slot    map[uint16]int // value -> slot
}

// NewDict builds a dictionary from explicit entries (slot order). Used when
// loading a serialized dictionary; BuildDict constructs one from a program.
func NewDict(entries []uint16) (*Dict, error) {
	if len(entries) > DictCapacity {
		return nil, fmt.Errorf("core: dictionary has %d entries, capacity %d",
			len(entries), DictCapacity)
	}
	d := &Dict{
		entries: append([]uint16(nil), entries...),
		slot:    make(map[uint16]int, len(entries)),
	}
	for i, v := range entries {
		if _, dup := d.slot[v]; dup {
			return nil, fmt.Errorf("core: duplicate dictionary entry %#04x", v)
		}
		d.slot[v] = i
	}
	return d, nil
}

// Len returns the number of populated entries.
func (d *Dict) Len() int { return len(d.entries) }

// Entries returns the dictionary contents in slot order.
func (d *Dict) Entries() []uint16 { return append([]uint16(nil), d.entries...) }

// Lookup returns the slot for value v, or -1 when v is not in the
// dictionary (and must be escaped as raw bits).
func (d *Dict) Lookup(v uint16) int {
	if s, ok := d.slot[v]; ok {
		return s
	}
	return -1
}

// Value returns the halfword stored at slot s.
func (d *Dict) Value(s int) (uint16, error) {
	if s < 0 || s >= len(d.entries) {
		return 0, fmt.Errorf("core: dictionary slot %d out of range (%d entries)",
			s, len(d.entries))
	}
	return d.entries[s], nil
}

// Bytes returns the storage footprint of the dictionary contents: two bytes
// per entry (this is the "Dictionary" column of the paper's Table 4).
func (d *Dict) Bytes() int { return 2 * len(d.entries) }

// BuildDictOptions tunes dictionary construction.
type BuildDictOptions struct {
	// ForceZeroSlot0 pins the value 0x0000 to the 2-bit class. CodePack
	// does this for the low-halfword dictionary because zero is by far
	// the most common immediate.
	ForceZeroSlot0 bool
	// MinClass3Count excludes halfwords from the largest (11-bit) class
	// unless they occur at least this often: a singleton entry saves
	// 19-11=8 bits of stream but costs 16 bits of dictionary storage.
	// Zero means 2 (the break-even point).
	MinClass3Count int
}

// BuildDict constructs a frequency-ranked dictionary from halfword counts.
// The most frequent values take the shortest codewords, per the paper.
func BuildDict(counts map[uint16]int, opts BuildDictOptions) *Dict {
	minC3 := opts.MinClass3Count
	if minC3 == 0 {
		minC3 = 2
	}
	type hw struct {
		v uint16
		n int
	}
	ranked := make([]hw, 0, len(counts))
	for v, n := range counts {
		if n <= 0 {
			continue
		}
		if opts.ForceZeroSlot0 && v == 0 {
			continue
		}
		ranked = append(ranked, hw{v, n})
	}
	// Rank by frequency, ties broken by value for determinism.
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].n != ranked[j].n {
			return ranked[i].n > ranked[j].n
		}
		return ranked[i].v < ranked[j].v
	})
	d := &Dict{slot: make(map[uint16]int)}
	add := func(v uint16) {
		d.slot[v] = len(d.entries)
		d.entries = append(d.entries, v)
	}
	if opts.ForceZeroSlot0 {
		add(0) // reserved even if zero never appears, keeping the encoding uniform
	}
	for _, e := range ranked {
		if len(d.entries) >= DictCapacity {
			break
		}
		c, _ := classOfSlot(len(d.entries))
		if c == class3 && e.n < minC3 {
			continue // not worth a dictionary slot
		}
		add(e.v)
	}
	return d
}

// CountHalfwords tallies high and low halfword frequencies over text.
func CountHalfwords(text []uint32) (high, low map[uint16]int) {
	high = make(map[uint16]int)
	low = make(map[uint16]int)
	for _, w := range text {
		high[uint16(w>>16)]++
		low[uint16(w)]++
	}
	return high, low
}
