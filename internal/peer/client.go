package peer

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"time"

	"codepack/internal/tenant"
	"codepack/internal/trace"
)

// Peer-protocol wire details, shared by client and Handler.
const (
	// CachePathPrefix is the internal cache endpoint; the digest is the
	// final path element.
	CachePathPrefix = "/internal/v1/cache/"
	// OfferPath is the anti-entropy offer endpoint.
	OfferPath = "/internal/v1/cache/offer"
	// SumHeader carries the hex SHA-256 of the payload end to end — the
	// same per-record sum the durable store keeps — so a corrupted or
	// substituted body is rejected before it is even parsed.
	SumHeader = "X-Cpackd-Sum"
	// HealthPath is the signed per-node health summary endpoint;
	// /debug/cluster pulls it from every live member and merges the
	// answers into one fleet view.
	HealthPath = "/internal/v1/health"
)

// maxHealthBytes bounds a peer's health summary response.
const maxHealthBytes = 1 << 20

// FetchHealth GETs one member's signed health summary, returning the
// raw JSON document for the caller to decode (the server owns the
// schema; the peer layer only moves the bytes). Breaker-gated like
// every other peer call, one attempt — /debug/cluster reports an
// unreachable member rather than waiting on retries.
func (c *Cluster) FetchHealth(ctx context.Context, member string) ([]byte, error) {
	b := c.breakerFor(member)
	if !b.allow() {
		c.stats.breakerSkips.Add(1)
		return nil, fmt.Errorf("peer: breaker open for %s", member)
	}
	actx, cancel := context.WithTimeout(ctx, c.cfg.FetchTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodGet, member+HealthPath, nil)
	if err != nil {
		return nil, err
	}
	c.setTraceHeader(req, ctx)
	c.signRequest(req, nil)
	resp, err := c.client.Do(req)
	if err != nil {
		c.noteFailure(member, b)
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		if resp.StatusCode >= 500 {
			c.noteFailure(member, b)
		} else {
			c.noteSuccess(member, b)
		}
		return nil, fmt.Errorf("peer: health returned %d", resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxHealthBytes))
	if err != nil {
		c.noteFailure(member, b)
		return nil, err
	}
	c.noteSuccess(member, b)
	return body, nil
}

// FetchOutcome classifies one warm-tier lookup.
type FetchOutcome int

const (
	// FetchSelf: this instance owns the digest; there is no one to ask.
	FetchSelf FetchOutcome = iota
	// FetchHit: the owner returned a payload whose transport checksum
	// verified. (The caller still verifies it against the program.)
	FetchHit
	// FetchMiss: the owner answered definitively that it does not hold
	// the digest.
	FetchMiss
	// FetchUnavailable: the owner could not be asked — breaker open, or
	// every attempt failed.
	FetchUnavailable
)

// Fetch asks digest's replica set for its cached payload, walking the
// successor list in placement order: a replica whose breaker is open is
// skipped outright, a replica that cannot be reached, answers 404 or
// serves a payload failing the caller's verify falls through to the
// next. verify (nil = accept) must be a pure check — Fetch itself
// charges a failed verification to the replica's breaker.
//
// On a verified hit, Fetch read-repairs: every replica that answered a
// definitive 404 during the walk is re-offered the entry through the
// replication queue. It returns the payload (FetchHit only), the
// serving replica's URL, and the outcome; FetchSelf means the replica
// set holds no one but this instance. When this instance is itself one
// of the replicas, a hit also counts one read-repair for the local
// install the caller performs.
func (c *Cluster) Fetch(ctx context.Context, digest string, verify func(owner string, payload []byte) bool) ([]byte, string, FetchOutcome) {
	owners := c.Owners(digest)
	selfOwner := false
	remote := make([]string, 0, len(owners))
	for _, o := range owners {
		if o == c.self {
			selfOwner = true
		} else {
			remote = append(remote, o)
		}
	}
	if len(remote) == 0 {
		return nil, "", FetchSelf
	}
	ctx, fs := trace.Start(ctx, "peer-fetch",
		trace.String("owner", remote[0]),
		trace.String("digest", shortDigest(digest)),
		trace.Int("replicas", len(remote)))
	defer fs.End()

	var missed []string // replicas that answered a clean 404
	for ri, owner := range remote {
		b := c.breakerFor(owner)
		rctx, rs := trace.Start(ctx, "peer-replica",
			trace.String("owner", owner),
			trace.Int("replica", ri+1),
			trace.String("breaker", b.snapshot().State))
		payload, found, outcome := c.fetchReplica(rctx, owner, digest, b)
		if outcome == "hit" && verify != nil && !verify(owner, payload) {
			// The replica served bytes that are not the program the digest
			// names: charge its breaker like any other failure and try the
			// next replica.
			c.noteFailure(owner, b)
			c.stats.fetchErrors.Add(1)
			outcome = "verify-failed"
			payload, found = nil, false
		}
		rs.SetAttr("outcome", outcome)
		rs.End()
		if found {
			c.stats.fetchHits.Add(1)
			if ri > 0 {
				c.stats.replicaFallthroughs.Add(1)
			}
			fs.SetAttr("outcome", "hit")
			c.readRepair(ctx, digest, payload, missed, selfOwner)
			return payload, owner, FetchHit
		}
		if outcome == "miss" {
			missed = append(missed, owner)
		}
		if outcome == "canceled" {
			fs.SetAttr("outcome", "canceled")
			return nil, owner, FetchUnavailable
		}
	}
	if len(missed) > 0 {
		// Every reachable replica answered definitively: the entry is not
		// in the warm tier. (Unreachable replicas may still hold it, but
		// the caller should compress rather than wait for them.)
		fs.SetAttr("outcome", "miss")
		return nil, missed[0], FetchMiss
	}
	fs.SetAttr("outcome", "unavailable")
	return nil, remote[0], FetchUnavailable
}

// fetchReplica runs the retry loop against one replica. outcome is one
// of "hit", "miss", "breaker-skip", "canceled", "unavailable"; found is
// true only for a hit.
func (c *Cluster) fetchReplica(ctx context.Context, owner, digest string, b *breaker) (payload []byte, found bool, outcome string) {
	if !b.allow() {
		c.stats.breakerSkips.Add(1)
		return nil, false, "breaker-skip"
	}
	attempts := 1 + c.cfg.Retries
	for i := 0; i < attempts; i++ {
		if i > 0 {
			if !sleepCtx(ctx, backoff(c.cfg.BackoffBase, i-1)) {
				c.stats.fetchErrors.Add(1)
				return nil, false, "canceled"
			}
			// Re-check the breaker between attempts: another request's
			// failures may have tripped it while we were backing off.
			if !b.allow() {
				c.stats.breakerSkips.Add(1)
				return nil, false, "breaker-skip"
			}
		}
		actx, as := trace.Start(ctx, "peer-attempt",
			trace.Int("attempt", i+1),
			trace.String("breaker", b.snapshot().State))
		payload, ok, err := c.fetchOnce(actx, owner, digest)
		if err != nil {
			as.SetAttr("err", err.Error())
			as.End()
			c.noteFailure(owner, b)
			c.stats.fetchErrors.Add(1)
			c.log.Debug("peer fetch attempt failed",
				"peer", owner, "digest", digest, "attempt", i+1, "err", err)
			continue
		}
		as.End()
		c.noteSuccess(owner, b)
		if !ok {
			c.stats.fetchMisses.Add(1)
			return nil, false, "miss"
		}
		return payload, true, "hit"
	}
	return nil, false, "unavailable"
}

// readRepair re-offers a verified entry to the replicas that missed it
// during a fetch walk, through the replication queue pinned to each
// lagging member — convergence without waiting for an anti-entropy
// pass. selfInstall additionally counts the caller's own install when
// this instance is part of the replica set.
func (c *Cluster) readRepair(ctx context.Context, digest string, payload []byte, missed []string, selfInstall bool) {
	if selfInstall {
		c.stats.readRepairs.Add(1)
	}
	if len(missed) == 0 {
		return
	}
	for _, owner := range missed {
		j := replJob{
			digest:     digest,
			payload:    payload,
			targets:    []string{owner},
			traceID:    trace.ID(ctx),
			parentSpan: trace.SpanFromContext(ctx).SpanID(),
			enqueued:   time.Now(),
		}
		if c.tryEnqueue(j) {
			c.stats.readRepairs.Add(1)
			c.stats.replEnqueued.Add(1)
		} else {
			c.stats.replDropped.Add(1)
		}
	}
}

// fetchOnce is one GET against the owner. found=false reports a clean
// 404 (the peer is healthy, it just lacks the entry).
func (c *Cluster) fetchOnce(ctx context.Context, owner, digest string) (payload []byte, found bool, err error) {
	actx, cancel := context.WithTimeout(ctx, c.cfg.FetchTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodGet, owner+CachePathPrefix+digest, nil)
	if err != nil {
		return nil, false, err
	}
	c.setTraceHeader(req, ctx)
	c.signRequest(req, nil)
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("peer: owner returned %d", resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxPayloadBytes+1))
	if err != nil {
		return nil, false, err
	}
	if len(body) > maxPayloadBytes {
		return nil, false, fmt.Errorf("peer: payload exceeds %d bytes", maxPayloadBytes)
	}
	sum := sha256.Sum256(body)
	if got := resp.Header.Get(SumHeader); got != hex.EncodeToString(sum[:]) {
		return nil, false, fmt.Errorf("peer: payload checksum mismatch (header %q)", got)
	}
	return body, true, nil
}

// Replicate enqueues an async best-effort push of a newly compressed
// entry to its replica set. Digests whose only owner is this instance
// stay local; a full queue drops the job (anti-entropy repairs the gap
// later) so the request path never blocks on replication.
//
// The owners are resolved when the push is sent, not here: a job that
// waits out a membership change drains to the owners of the ring as it
// is then, so the queue never feeds departed members.
func (c *Cluster) Replicate(ctx context.Context, digest string, payload []byte) {
	_, es := trace.Start(ctx, "repl-enqueue", trace.String("digest", shortDigest(digest)))
	defer es.End()
	hasRemote := false
	for _, o := range c.Owners(digest) {
		if o != c.self {
			hasRemote = true
			break
		}
	}
	if !hasRemote {
		es.SetAttr("outcome", "self")
		return
	}
	j := replJob{
		digest:     digest,
		payload:    payload,
		traceID:    trace.ID(ctx),
		parentSpan: trace.SpanFromContext(ctx).SpanID(),
		enqueued:   time.Now(),
	}
	if c.tryEnqueue(j) {
		c.stats.replEnqueued.Add(1)
		es.SetAttr("outcome", "enqueued")
	} else {
		c.stats.replDropped.Add(1)
		es.SetAttr("outcome", "dropped")
	}
}

func (c *Cluster) replWorker() {
	defer c.replWG.Done()
	for j := range c.replCh {
		c.qmu.Lock()
		if len(c.qtimes) > 0 {
			c.qtimes = append(c.qtimes[:0], c.qtimes[1:]...)
		}
		c.qmu.Unlock()
		targets := j.targets
		if targets == nil {
			// A ring-resolved job: push to every remote member of the
			// digest's current replica set.
			for _, o := range c.Owners(j.digest) {
				if o != c.self {
					targets = append(targets, o)
				}
			}
		}
		if len(targets) == 0 {
			continue // ownership moved entirely to us while the job was queued
		}
		// The push runs long after the originating request returned, so
		// it gets its own background trace — same trace ID, root
		// parented on the enqueuing span — that /debug/trace/recent can
		// stitch back to the request that caused it.
		ctx := context.Background()
		var root *trace.Span
		if c.cfg.Tracer != nil {
			id := j.traceID
			if id == "" {
				id = trace.NewID()
			}
			ctx = trace.WithID(ctx, id)
			ctx, root = c.cfg.Tracer.StartTrace(ctx, id, j.parentSpan, "replicate", "replicate",
				trace.String("digest", shortDigest(j.digest)),
				trace.Int("targets", len(targets)))
			root.SetAttr("queue_wait_ms", float64(time.Since(j.enqueued))/float64(time.Millisecond))
		}
		for _, owner := range targets {
			if err := c.push(ctx, owner, j.digest, j.payload); err != nil {
				c.stats.replErrors.Add(1)
				root.SetAttr("err", err.Error())
				c.log.Debug("replication push failed",
					"peer", owner, "digest", j.digest, "err", err)
				c.maybeHint(j, owner)
			} else {
				c.stats.replSent.Add(1)
				if j.fromHint {
					c.stats.handoffDrained.Add(1)
				}
			}
		}
		root.End()
	}
}

// maybeHint buffers a failed push as a handoff hint when the target is
// still in the ring (alive but flaky, or suspect): the entry will be
// re-pushed when the member proves healthy. A target already declared
// dead or left gets no hint — reassignment handles its backlog — and a
// failed drain re-buffers without recounting.
func (c *Cluster) maybeHint(j replJob, owner string) {
	st, known := c.members.State(owner)
	if !known || !st.inRing() {
		return
	}
	evicted := c.hints.add(HandoffRecord{Target: owner, Digest: j.digest, Payload: j.payload})
	if evicted > 0 {
		c.stats.handoffDropped.Add(uint64(evicted))
	}
	if !j.fromHint {
		c.stats.handoffHinted.Add(1)
	}
}

// push PUTs one payload to owner, breaker-gated, one attempt.
func (c *Cluster) push(ctx context.Context, owner, digest string, payload []byte) (err error) {
	ctx, ps := trace.Start(ctx, "peer-put",
		trace.String("owner", owner),
		trace.String("digest", shortDigest(digest)),
		trace.Int("bytes", len(payload)))
	defer func() {
		if err != nil {
			ps.SetAttr("err", err.Error())
		}
		ps.End()
	}()
	b := c.breakerFor(owner)
	if !b.allow() {
		c.stats.breakerSkips.Add(1)
		return fmt.Errorf("peer: breaker open for %s", owner)
	}
	actx, cancel := context.WithTimeout(ctx, c.cfg.FetchTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPut,
		owner+CachePathPrefix+digest, bytes.NewReader(payload))
	if err != nil {
		c.noteFailure(owner, b)
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	sum := sha256.Sum256(payload)
	req.Header.Set(SumHeader, hex.EncodeToString(sum[:]))
	c.setTraceHeader(req, ctx)
	c.signRequest(req, payload)
	resp, err := c.client.Do(req)
	if err != nil {
		c.noteFailure(owner, b)
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		// The peer answered, so it is alive; only 5xx counts against it.
		if resp.StatusCode >= 500 {
			c.noteFailure(owner, b)
		} else {
			c.noteSuccess(owner, b)
		}
		return fmt.Errorf("peer: replication target returned %d", resp.StatusCode)
	}
	c.noteSuccess(owner, b)
	return nil
}

// AntiEntropy offers every locally held digest to each member of its
// replica set and pushes the ones each owner asks for; payload resolves
// a digest to its marshalled bytes at push time (an entry evicted
// meanwhile is skipped). Run it in a goroutine at startup and after
// every ring change: it is synchronous, breaker-gated and abandons a
// peer on the first error rather than retrying — the next ring change,
// restart, or normal write-replication closes any remaining gap.
func (c *Cluster) AntiEntropy(ctx context.Context, digests []string, payload func(string) ([]byte, bool)) {
	c.antiEntropyRing(ctx, c.ring.Load(), digests, payload)
}

// antiEntropyRing is AntiEntropy against an explicit ring — Leave hands
// off over the ring that excludes self.
func (c *Cluster) antiEntropyRing(ctx context.Context, ring *Ring, digests []string, payload func(string) ([]byte, bool)) {
	byOwner := make(map[string][]string)
	for _, d := range digests {
		for _, owner := range ring.Owners(d, c.cfg.ReplicationFactor) {
			if owner != "" && owner != c.self {
				byOwner[owner] = append(byOwner[owner], d)
			}
		}
	}
	for owner, ds := range byOwner {
		for len(ds) > 0 && ctx.Err() == nil {
			batch := ds
			if len(batch) > c.cfg.OfferBatch {
				batch = batch[:c.cfg.OfferBatch]
			}
			ds = ds[len(batch):]
			want, err := c.offer(ctx, owner, batch)
			if err != nil {
				c.stats.offerErrors.Add(1)
				c.log.Debug("anti-entropy offer failed", "peer", owner, "err", err)
				break
			}
			c.stats.offeredDigests.Add(uint64(len(batch)))
			for _, d := range want {
				p, ok := payload(d)
				if !ok {
					continue
				}
				if err := c.push(ctx, owner, d, p); err != nil {
					c.stats.replErrors.Add(1)
				} else {
					c.stats.replSent.Add(1)
				}
			}
		}
	}
}

// offer POSTs a digest batch to owner and returns the subset it wants.
func (c *Cluster) offer(ctx context.Context, owner string, digests []string) (want []string, err error) {
	ctx, os := trace.Start(ctx, "peer-offer",
		trace.String("owner", owner),
		trace.Int("digests", len(digests)))
	defer func() {
		if err != nil {
			os.SetAttr("err", err.Error())
		} else {
			os.SetAttr("want", len(want))
		}
		os.End()
	}()
	b := c.breakerFor(owner)
	if !b.allow() {
		c.stats.breakerSkips.Add(1)
		return nil, fmt.Errorf("peer: breaker open for %s", owner)
	}
	body, err := json.Marshal(offerRequest{Digests: digests})
	if err != nil {
		return nil, err
	}
	actx, cancel := context.WithTimeout(ctx, c.cfg.FetchTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost, owner+OfferPath, bytes.NewReader(body))
	if err != nil {
		c.noteFailure(owner, b)
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	c.setTraceHeader(req, ctx)
	c.signRequest(req, body)
	resp, err := c.client.Do(req)
	if err != nil {
		c.noteFailure(owner, b)
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		if resp.StatusCode >= 500 {
			c.noteFailure(owner, b)
		} else {
			c.noteSuccess(owner, b)
		}
		return nil, fmt.Errorf("peer: offer returned %d", resp.StatusCode)
	}
	var or offerResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&or); err != nil {
		c.noteFailure(owner, b)
		return nil, err
	}
	c.noteSuccess(owner, b)
	return or.Want, nil
}

// setTraceHeader forwards the originating request's trace ID (minting
// one for background work) so one logical request logs the same ID on
// every instance it touches, and the calling span's ID so the receiving
// node's trace parents onto ours.
func (c *Cluster) setTraceHeader(req *http.Request, ctx context.Context) {
	id := trace.ID(ctx)
	if id == "" {
		id = trace.NewID()
	}
	req.Header.Set(trace.Header, id)
	if sid := trace.SpanFromContext(ctx).SpanID(); sid != "" {
		req.Header.Set(trace.SpanHeader, sid)
	}
}

// signRequest stamps an outbound internal request with the cluster's
// HMAC signature. A no-op when the cluster runs in unsigned open mode
// (no AuthKey configured). The key func is consulted per request so a
// SIGHUP key rotation takes effect without rebuilding the client.
func (c *Cluster) signRequest(req *http.Request, body []byte) {
	if c.cfg.AuthKey == nil {
		return
	}
	key := c.cfg.AuthKey()
	if len(key) == 0 {
		return
	}
	req.Header.Set(tenant.InternalHeader,
		tenant.SignInternal(key, req.Method, req.URL.Path, body, time.Now()))
}

// shortDigest truncates a content digest for span attributes — enough
// to correlate, not enough to bloat every trace.
func shortDigest(d string) string {
	if len(d) > 12 {
		return d[:12]
	}
	return d
}

// backoff returns the nth retry delay: base doubled per step with up to
// 50% added jitter, so synchronized retry storms de-correlate.
func backoff(base time.Duration, n int) time.Duration {
	d := base << uint(n)
	return d + time.Duration(rand.Int63n(int64(d)/2+1))
}

// sleepCtx sleeps for d or until ctx ends; it reports whether the full
// sleep completed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
