package peer

import (
	"sync"
	"time"
)

// Breaker states. The zero value (closed) is the healthy state.
const (
	breakerClosed int = iota
	breakerHalfOpen
	breakerOpen
)

func stateName(s int) string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "open"
	}
}

// breaker is a per-peer circuit breaker. Consecutive failures past the
// threshold open it: requests to that peer are skipped outright (the
// caller falls straight back to local compression) instead of eating a
// timeout each. After the cooldown one probe request is let through
// (half-open); success closes the breaker, failure re-opens it for
// another cooldown.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable clock for tests

	mu        sync.Mutex
	state     int
	fails     int // consecutive failures while closed
	openUntil time.Time
	probing   bool   // a half-open probe is in flight
	opens     uint64 // lifetime closed/half-open -> open transitions
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// allow reports whether a request to the peer may proceed. While open
// it returns false until the cooldown elapses, then admits exactly one
// probe at a time (half-open).
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Before(b.openUntil) {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// success records a request that completed against the peer (any
// well-formed HTTP response, including 404: the peer is alive).
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.fails = 0
	b.probing = false
}

// failure records a transport failure, timeout, or a response the
// caller rejected (bad checksum, payload that failed verification). It
// reports whether this failure opened the breaker — the signal the
// membership failure detector listens to.
func (b *breaker) failure() (opened bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.trip()
		return true
	case breakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.trip()
			return true
		}
	}
	return false
}

// trip opens the breaker; callers hold b.mu.
func (b *breaker) trip() {
	b.state = breakerOpen
	b.openUntil = b.now().Add(b.cooldown)
	b.probing = false
	b.fails = 0
	b.opens++
}

// breakerSnap is a point-in-time view for metrics.
type breakerSnap struct {
	State string `json:"state"`
	Fails int    `json:"consecutive_failures"`
	Opens uint64 `json:"opens"`
}

func (b *breaker) snapshot() breakerSnap {
	b.mu.Lock()
	defer b.mu.Unlock()
	return breakerSnap{State: stateName(b.state), Fails: b.fails, Opens: b.opens}
}
