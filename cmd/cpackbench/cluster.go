package main

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"codepack/internal/loadgen"
)

// clusterOptions parameterize a multi-process cluster run.
type clusterOptions struct {
	n        int           // member count
	replicas int           // -replicas per digest
	churn    time.Duration // crash/stop one member this often (0 = steady)
}

func (o clusterOptions) label() string {
	l := fmt.Sprintf("cluster(n=%d,r=%d", o.n, o.replicas)
	if o.churn > 0 {
		l += fmt.Sprintf(",churn=%s", o.churn)
	}
	return l + ")"
}

// clusterHarness boots N real cpackd processes as a replicated warm-cache
// cluster, drives them round-robin as a loadgen Executor, sums their
// /metrics as a MetricsSource, and (optionally) churns membership by
// stopping and restarting one member at a time mid-run.
//
// Counter handling across restarts: a member's in-memory counters die
// with it, so before every stop the harness scrapes the victim and folds
// the totals into a retired baseline. ServerStats then reports baseline +
// live sums, which stays monotonic across any number of churn rounds —
// only the few requests between the final scrape and the kill are lost.
type clusterHarness struct {
	opts    clusterOptions
	stderr  io.Writer
	bin     string // built cpackd binary
	binDir  string
	members []*clusterMember

	rr atomic.Uint64 // round-robin cursor

	retiredMu sync.Mutex
	retired   loadgen.ServerStats

	churnStop chan struct{}
	churnDone chan struct{}
	// ChurnRounds counts completed stop+restart cycles.
	ChurnRounds atomic.Uint64
}

type clusterMember struct {
	idx    int
	addr   string // host:port the member listens on
	url    string // advertised base URL
	args   []string
	client *loadgen.HTTPClient

	mu   sync.Mutex
	cmd  *exec.Cmd
	out  *bytes.Buffer // combined stdout+stderr of the current incarnation
	down bool
}

func (m *clusterMember) isDown() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.down
}

func (m *clusterMember) setDown(v bool) {
	m.mu.Lock()
	m.down = v
	m.mu.Unlock()
}

// startCluster builds cpackd and boots opts.n members with fast
// membership timings, returning once every member sees the full ring.
func startCluster(ctx context.Context, opts clusterOptions, stderr io.Writer) (*clusterHarness, error) {
	if opts.n < 2 {
		return nil, fmt.Errorf("cluster needs at least 2 members, got %d", opts.n)
	}
	if opts.replicas < 1 {
		opts.replicas = 2
	}
	root, err := moduleRoot(ctx)
	if err != nil {
		return nil, err
	}
	binDir, err := os.MkdirTemp("", "cpackbench-cluster-")
	if err != nil {
		return nil, err
	}
	bin := filepath.Join(binDir, "cpackd")
	fmt.Fprintf(stderr, "cpackbench: building cpackd for the cluster harness\n")
	build := exec.CommandContext(ctx, "go", "build", "-o", bin, "./cmd/cpackd")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		os.RemoveAll(binDir)
		return nil, fmt.Errorf("go build ./cmd/cpackd: %w\n%s", err, out)
	}

	h := &clusterHarness{opts: opts, stderr: stderr, bin: bin, binDir: binDir}

	// Reserve one loopback port per member up front so every member can
	// be told the full peer list before any of them boots.
	urls := make([]string, opts.n)
	addrs := make([]string, opts.n)
	for i := range urls {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			h.Close()
			return nil, err
		}
		addrs[i] = ln.Addr().String()
		urls[i] = "http://" + addrs[i]
		ln.Close()
	}
	for i := 0; i < opts.n; i++ {
		var seeds []string
		for j, u := range urls {
			if j != i {
				seeds = append(seeds, u)
			}
		}
		m := &clusterMember{
			idx:    i,
			addr:   addrs[i],
			url:    urls[i],
			client: loadgen.NewHTTPClient(urls[i]),
			args: []string{
				"-addr", addrs[i],
				"-peer-self", urls[i],
				"-peers", strings.Join(seeds, ","),
				"-replicas", strconv.Itoa(opts.replicas),
				"-peer-timeout", "250ms",
				"-peer-heartbeat", "100ms",
				"-peer-suspect-after", "500ms",
				"-peer-dead-after", "5s",
				"-drain-timeout", "2s",
				"-light-workers", "8",
				"-log-level", "warn",
			},
		}
		h.members = append(h.members, m)
		if err := h.startMember(ctx, m); err != nil {
			h.Close()
			return nil, err
		}
	}
	for _, m := range h.members {
		if err := h.waitMembers(ctx, m, opts.n); err != nil {
			h.Close()
			return nil, err
		}
	}
	fmt.Fprintf(stderr, "cpackbench: %s up, all members converged\n", opts.label())
	return h, nil
}

// moduleRoot locates the repo root via the go toolchain, so the harness
// works from any working directory.
func moduleRoot(ctx context.Context) (string, error) {
	out, err := exec.CommandContext(ctx, "go", "env", "GOMOD").Output()
	if err != nil {
		return "", fmt.Errorf("go env GOMOD: %w", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("not inside a Go module (go env GOMOD = %q)", gomod)
	}
	return filepath.Dir(gomod), nil
}

// startMember launches one cpackd process and waits until it serves
// /metrics.
func (h *clusterHarness) startMember(ctx context.Context, m *clusterMember) error {
	cmd := exec.Command(h.bin, m.args...)
	out := &bytes.Buffer{}
	cmd.Stdout = out
	cmd.Stderr = out
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("start member %d: %w", m.idx, err)
	}
	m.mu.Lock()
	m.cmd = cmd
	m.out = out
	m.mu.Unlock()

	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) && ctx.Err() == nil {
		if _, err := m.client.ServerStats(ctx); err == nil {
			return nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	return fmt.Errorf("member %d (%s) never became ready; output:\n%s", m.idx, m.url, out.String())
}

// waitMembers blocks until the member's ring holds want members.
func (h *clusterHarness) waitMembers(ctx context.Context, m *clusterMember, want int) error {
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) && ctx.Err() == nil {
		if n, err := scrapeGauge(ctx, m.url, "cpackd_peer_members"); err == nil && int(n) == want {
			return nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	return fmt.Errorf("member %d (%s) never saw %d ring members", m.idx, m.url, want)
}

// scrapeGauge reads one metric value from a member's /metrics.
func scrapeGauge(ctx context.Context, base, name string) (float64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return 0, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return 0, fmt.Errorf("GET /metrics: status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			return strconv.ParseFloat(strings.TrimSpace(rest), 64)
		}
	}
	return 0, fmt.Errorf("metric %s not exposed", name)
}

// Do implements loadgen.Executor: round-robin across live members. A
// member mid-restart is skipped, so only requests already in flight when
// a member dies surface as transport errors.
func (h *clusterHarness) Do(ctx context.Context, req loadgen.Request) (int, error) {
	start := int(h.rr.Add(1))
	for i := 0; i < len(h.members); i++ {
		m := h.members[(start+i)%len(h.members)]
		if m.isDown() {
			continue
		}
		return m.client.Do(ctx, req)
	}
	return 0, fmt.Errorf("all %d cluster members are down", len(h.members))
}

// ServerStats implements loadgen.MetricsSource: the retired baseline plus
// every live member's current counters.
func (h *clusterHarness) ServerStats(ctx context.Context) (loadgen.ServerStats, error) {
	h.retiredMu.Lock()
	sum := h.retired
	h.retiredMu.Unlock()
	scraped := 0
	for _, m := range h.members {
		if m.isDown() {
			continue
		}
		st, err := m.client.ServerStats(ctx)
		if err != nil {
			continue // racing a kill; its totals live in the baseline
		}
		addStats(&sum, st)
		scraped++
	}
	if scraped == 0 {
		return loadgen.ServerStats{}, fmt.Errorf("no cluster member was scrapeable")
	}
	return sum, nil
}

func addStats(dst *loadgen.ServerStats, s loadgen.ServerStats) {
	dst.CacheHits += s.CacheHits
	dst.CacheMisses += s.CacheMisses
	dst.Shed += s.Shed
	dst.Coalesced += s.Coalesced
	dst.PeerHits += s.PeerHits
	dst.PeerMisses += s.PeerMisses
}

// StartChurn begins the member churn loop: every interval it retires one
// member — alternating a crash (SIGKILL) with a graceful leave (SIGTERM)
// — waits for it to exit, restarts it, and waits for the rejoin before
// picking the next victim. One member at a time, so an R>=2 cluster
// always keeps a live replica of every digest.
func (h *clusterHarness) StartChurn(interval time.Duration) {
	if interval <= 0 || h.churnStop != nil {
		return
	}
	h.churnStop = make(chan struct{})
	h.churnDone = make(chan struct{})
	go func() {
		defer close(h.churnDone)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for round := 0; ; round++ {
			select {
			case <-h.churnStop:
				return
			case <-tick.C:
			}
			victim := h.members[round%len(h.members)]
			graceful := round%2 == 1
			h.churnMember(victim, graceful)
		}
	}()
}

// churnMember stops and restarts one member, folding its final counters
// into the retired baseline first.
func (h *clusterHarness) churnMember(m *clusterMember, graceful bool) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	if st, err := m.client.ServerStats(ctx); err == nil {
		h.retiredMu.Lock()
		addStats(&h.retired, st)
		h.retiredMu.Unlock()
	}
	m.setDown(true)
	m.mu.Lock()
	cmd := m.cmd
	m.mu.Unlock()
	sig, how := syscall.SIGKILL, "crash"
	if graceful {
		sig, how = syscall.SIGTERM, "leave"
	}
	if cmd != nil && cmd.Process != nil {
		cmd.Process.Signal(sig)
		cmd.Wait()
	}
	fmt.Fprintf(h.stderr, "cpackbench: churn: member %d %s, restarting\n", m.idx, how)
	if err := h.startMember(ctx, m); err != nil {
		fmt.Fprintf(h.stderr, "cpackbench: churn: member %d failed to restart: %v\n", m.idx, err)
		return // stays down; later rounds skip it in Do
	}
	// Only hand traffic back once the member has rejoined the full ring,
	// so its first requests can reach every replica.
	if err := h.waitMembers(ctx, m, len(h.members)); err != nil {
		fmt.Fprintf(h.stderr, "cpackbench: churn: %v\n", err)
	}
	m.setDown(false)
	h.ChurnRounds.Add(1)
}

// StopChurn halts the churn loop, waiting for an in-progress restart to
// finish so the cluster is whole again.
func (h *clusterHarness) StopChurn() {
	if h.churnStop == nil {
		return
	}
	close(h.churnStop)
	<-h.churnDone
	h.churnStop, h.churnDone = nil, nil
}

// Close tears the cluster down.
func (h *clusterHarness) Close() {
	h.StopChurn()
	for _, m := range h.members {
		m.mu.Lock()
		if m.cmd != nil && m.cmd.Process != nil {
			m.cmd.Process.Kill()
			m.cmd.Wait()
		}
		m.mu.Unlock()
	}
	if h.binDir != "" {
		os.RemoveAll(h.binDir)
	}
}

// runCluster boots a cluster, runs each scenario against it (churning
// membership mid-run when opts.churn > 0), and tears it down.
func runCluster(ctx context.Context, scenarios []loadgen.Scenario, opts clusterOptions,
	lo loadgen.Options, stderr io.Writer) ([]*loadgen.Report, error) {
	h, err := startCluster(ctx, opts, stderr)
	if err != nil {
		return nil, fmt.Errorf("start cluster: %w", err)
	}
	defer h.Close()

	var reports []*loadgen.Report
	for _, sc := range scenarios {
		fmt.Fprintf(stderr, "cpackbench: running %s against %s (%.0f req/s for %v + %v warmup)\n",
			sc.Name(), opts.label(), lo.QPS, lo.Duration, lo.Warmup)
		h.StartChurn(opts.churn)
		o := lo
		o.Scenario = sc
		o.Executor = h
		o.Metrics = h
		o.Target = opts.label()
		rep, err := loadgen.Run(ctx, o)
		h.StopChurn()
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", sc.Name(), err)
		}
		if opts.churn > 0 {
			fmt.Fprintf(stderr, "cpackbench: churn: %d stop/restart rounds completed\n", h.ChurnRounds.Load())
		}
		reports = append(reports, rep)
	}
	return reports, nil
}
