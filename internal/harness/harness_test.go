package harness

import (
	"strings"
	"testing"

	"codepack/internal/cpu"
)

// suite is shared across tests: benchmark generation and compression are
// the expensive parts and are cached inside.
var suite = NewSuite(400_000)

func value(t *testing.T, tb *Table, row, col string) float64 {
	t.Helper()
	v, ok := tb.Value(row, col)
	if !ok {
		t.Fatalf("%s: missing value %s/%s", tb.ID, row, col)
	}
	return v
}

func TestSuiteBenchCaching(t *testing.T) {
	a, err := suite.Bench("pegwit")
	if err != nil {
		t.Fatal(err)
	}
	b, err := suite.Bench("pegwit")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("bench not cached")
	}
	if _, err := suite.Bench("quake"); err == nil {
		t.Fatal("unknown bench accepted")
	}
}

func TestTableRendering(t *testing.T) {
	tb := newTable("t", "demo", "a", "b")
	tb.addRow("x", "1.00")
	tb.set("x", "v", 1.0)
	s := tb.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "1.00") {
		t.Fatalf("rendering broken:\n%s", s)
	}
	if v, ok := tb.Value("x", "v"); !ok || v != 1.0 {
		t.Fatal("value store broken")
	}
}

func TestTable2Static(t *testing.T) {
	tb := Table2()
	if len(tb.Rows) < 10 {
		t.Fatalf("table2 has %d rows", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if len(row) != 4 {
			t.Fatalf("row %v has %d cells", row, len(row))
		}
	}
}

func TestTable3RatiosInPaperBand(t *testing.T) {
	tb, err := suite.Table3()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []string{"cc1", "go", "mpeg2enc", "pegwit", "perl", "vortex"} {
		r := value(t, tb, b, "ratio")
		if r < 0.50 || r > 0.67 {
			t.Errorf("%s ratio %.3f outside paper band", b, r)
		}
	}
}

func TestTable4CompositionShape(t *testing.T) {
	tb, err := suite.Table4()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []string{"cc1", "vortex"} {
		idx := value(t, tb, b, "index")
		if idx < 0.03 || idx > 0.07 {
			t.Errorf("%s index share %.3f, paper ~0.05", b, idx)
		}
		if value(t, tb, b, "indices") < value(t, tb, b, "tags") {
			t.Errorf("%s: dictionary indices should dominate tags", b)
		}
	}
}

// TestTable5Shape: baseline CodePack loses against native on the I-miss
// heavy benchmarks, the optimized model is close to or better than native,
// and media benchmarks are insensitive (the paper's core Table 5 claims).
func TestTable5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full IPC matrix")
	}
	tb, err := suite.Table5()
	if err != nil {
		t.Fatal(err)
	}
	for _, arch := range []string{"1-issue", "4-issue", "8-issue"} {
		for _, b := range []string{"cc1", "go", "perl", "vortex"} {
			nat := value(t, tb, b, arch+"/native")
			cp := value(t, tb, b, arch+"/codepack")
			opt := value(t, tb, b, arch+"/optimized")
			if cp >= nat {
				t.Errorf("%s/%s: baseline codepack (%.2f) not slower than native (%.2f)",
					arch, b, cp, nat)
			}
			// Paper: performance loss under 14%/18%/13% for 1/4/8-issue.
			if cp < nat*0.70 {
				t.Errorf("%s/%s: codepack loss too large (%.2f vs %.2f)", arch, b, cp, nat)
			}
			if opt < nat*0.90 || opt > nat*1.25 {
				t.Errorf("%s/%s: optimized (%.2f) not near native (%.2f)", arch, b, opt, nat)
			}
		}
		for _, b := range []string{"mpeg2enc", "pegwit"} {
			nat := value(t, tb, b, arch+"/native")
			cp := value(t, tb, b, arch+"/codepack")
			if cp < nat*0.97 {
				t.Errorf("%s/%s: media bench should be insensitive (%.2f vs %.2f)",
					arch, b, cp, nat)
			}
		}
	}
	// IPC grows with issue width for every benchmark under native fetch.
	for _, b := range []string{"cc1", "mpeg2enc", "pegwit"} {
		if !(value(t, tb, b, "1-issue/native") < value(t, tb, b, "4-issue/native")) {
			t.Errorf("%s: 4-issue not faster than 1-issue", b)
		}
	}
}

// TestTable6Shape: index-cache miss ratio falls with both more lines and
// more entries per line.
func TestTable6Shape(t *testing.T) {
	tb, err := suite.Table6()
	if err != nil {
		t.Fatal(err)
	}
	lines := []string{"4", "16", "64", "256"}
	entries := []string{"1", "2", "4", "8"}
	for i, l := range lines {
		for j, e := range entries {
			v := value(t, tb, l, e)
			if j > 0 && v > value(t, tb, l, entries[j-1])+0.02 {
				t.Errorf("%s lines: miss ratio rose with line size (%s: %.3f)", l, e, v)
			}
			if i > 0 && v > value(t, tb, lines[i-1], e)+0.02 {
				t.Errorf("%s entries: miss ratio rose with more lines (%s: %.3f)", e, l, v)
			}
		}
	}
	// The paper's chosen organization (64x4) must be a large improvement
	// over the baseline register (well under 50% misses).
	if v := value(t, tb, "64", "4"); v > 0.35 {
		t.Errorf("64x4 index cache misses %.1f%%, expected sizeable hit rate", v*100)
	}
}

// TestTable7Shape: perfect index >= real index cache >= baseline.
func TestTable7Shape(t *testing.T) {
	tb, err := suite.Table7()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []string{"cc1", "go", "perl", "vortex"} {
		base := value(t, tb, b, "codepack")
		idx := value(t, tb, b, "index cache")
		perf := value(t, tb, b, "perfect")
		if !(base <= idx+0.01 && idx <= perf+0.01) {
			t.Errorf("%s: ordering broken: %.2f, %.2f, %.2f", b, base, idx, perf)
		}
		if idx-base < 0.02 {
			t.Errorf("%s: index cache gained only %.3f", b, idx-base)
		}
	}
}

// TestTable8Shape: the paper's finding that 2 decompressors capture most of
// the available decode-rate benefit.
func TestTable8Shape(t *testing.T) {
	tb, err := suite.Table8()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []string{"cc1", "go", "perl", "vortex"} {
		one := value(t, tb, b, "codepack")
		two := value(t, tb, b, "2 decoders")
		sixteen := value(t, tb, b, "16 decoders")
		if two < one || sixteen < two-0.01 {
			t.Errorf("%s: decode-rate ordering broken: %.2f %.2f %.2f", b, one, two, sixteen)
		}
		if sixteen-one > 0 && (two-one)/(sixteen-one) < 0.6 {
			t.Errorf("%s: 2 decoders captured only %.0f%% of the benefit",
				b, 100*(two-one)/(sixteen-one))
		}
	}
}

// TestTable9Shape: both optimizations individually help; combined they are
// best and reach parity or slight speedup (the paper's Table 9).
func TestTable9Shape(t *testing.T) {
	tb, err := suite.Table9()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []string{"cc1", "go", "perl", "vortex"} {
		base := value(t, tb, b, "codepack")
		idx := value(t, tb, b, "index")
		dec := value(t, tb, b, "decompress")
		all := value(t, tb, b, "all")
		if idx <= base || dec <= base {
			t.Errorf("%s: an optimization did not help (%.2f %.2f vs %.2f)", b, idx, dec, base)
		}
		if all < idx-0.01 || all < dec-0.01 {
			t.Errorf("%s: combined (%.2f) worse than individual (%.2f, %.2f)", b, all, idx, dec)
		}
		if all < 0.92 || all > 1.15 {
			t.Errorf("%s: combined speedup %.2f not near parity", b, all)
		}
	}
}

// TestTable10Shape: small caches amplify CodePack's effects; with a big
// cache everything converges to native performance.
func TestTable10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("cache sweep")
	}
	tb, err := suite.Table10()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []string{"cc1", "go", "vortex"} {
		opt1 := value(t, tb, b, "1KB/optimized")
		opt64 := value(t, tb, b, "64KB/optimized")
		if opt1 <= opt64 {
			t.Errorf("%s: optimized gains (%.2f @1KB) should exceed @64KB (%.2f)", b, opt1, opt64)
		}
		if opt1 < 1.0 {
			t.Errorf("%s: paper says optimized beats native at small caches, got %.2f", b, opt1)
		}
		cp64 := value(t, tb, b, "64KB/codepack")
		cp16 := value(t, tb, b, "16KB/codepack")
		if cp64 < cp16-0.05 {
			t.Errorf("%s: baseline should not degrade with larger caches (%.2f @64KB vs %.2f @16KB)",
				b, cp64, cp16)
		}
	}
}

// TestTable11Shape: CodePack wins on narrow buses and loses on wide ones;
// the optimized model degrades gracefully (the paper's Table 11).
func TestTable11Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("bus sweep")
	}
	tb, err := suite.Table11()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []string{"cc1", "go", "perl", "vortex"} {
		narrow := value(t, tb, b, "16/optimized")
		wide := value(t, tb, b, "128/optimized")
		if narrow <= wide {
			t.Errorf("%s: optimized should prefer narrow buses (%.2f vs %.2f)", b, narrow, wide)
		}
		if narrow < 1.0 {
			t.Errorf("%s: optimized on a 16-bit bus should beat native, got %.2f", b, narrow)
		}
		if value(t, tb, b, "128/codepack") >= 1.0 {
			t.Errorf("%s: baseline should lose on a wide bus", b)
		}
		if wide >= value(t, tb, b, "128/codepack")+0.5 || wide < 0.8 {
			t.Errorf("%s: optimized at 128 bits degrades too much: %.2f", b, wide)
		}
	}
}

// TestTable12Shape: slower memory favours compression (fewer accesses).
func TestTable12Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("latency sweep")
	}
	tb, err := suite.Table12()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []string{"cc1", "go", "perl", "vortex"} {
		fast := value(t, tb, b, "0.5x/optimized")
		slow := value(t, tb, b, "8x/optimized")
		if slow <= fast {
			t.Errorf("%s: optimized should gain with memory latency (%.2f vs %.2f)", b, fast, slow)
		}
		if slow < 1.0 {
			t.Errorf("%s: optimized at 8x latency should beat native, got %.2f", b, slow)
		}
	}
}

// TestFigure2PaperNumbers: the worked example must match the paper exactly.
func TestFigure2PaperNumbers(t *testing.T) {
	tb, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if v := value(t, tb, "native", "critical"); v != 10 {
		t.Errorf("native critical at t=%v, paper says 10", v)
	}
	if v := value(t, tb, "codepack", "critical"); v != 25 {
		t.Errorf("baseline critical at t=%v, paper says 25", v)
	}
	if v := value(t, tb, "optimized", "critical"); v != 14 {
		t.Errorf("optimized critical at t=%v, paper says 14", v)
	}
}

// TestTable1MissRates: dynamic calibration against the paper's Table 1.
func TestTable1MissRates(t *testing.T) {
	tb, err := suite.Table1()
	if err != nil {
		t.Fatal(err)
	}
	band := map[string][2]float64{ // paper value +/- tolerance
		"cc1":      {0.050, 0.085},
		"go":       {0.045, 0.080},
		"mpeg2enc": {0.000, 0.005},
		"pegwit":   {0.000, 0.008},
		"perl":     {0.030, 0.060},
		"vortex":   {0.045, 0.085},
	}
	for b, lim := range band {
		v := value(t, tb, b, "imiss")
		if v < lim[0] || v > lim[1] {
			t.Errorf("%s: I-miss rate %.3f outside calibration band [%.3f, %.3f]",
				b, v, lim[0], lim[1])
		}
	}
}

func TestRunReusesCompressedImage(t *testing.T) {
	b, err := suite.Bench("pegwit")
	if err != nil {
		t.Fatal(err)
	}
	r, err := suite.Run(b, cpu.FourIssue(), cpu.BaselineModel())
	if err != nil {
		t.Fatal(err)
	}
	if r.Ratio != b.Comp.Stats().Ratio() {
		t.Fatal("run did not reuse the cached compressed image")
	}
}

// TestRelatedWorkOrdering reproduces the paper's section 2 comparison:
// whole-instruction dictionary compression lands near CodePack, while
// byte-granularity Huffman (CCRP) is clearly worse.
func TestRelatedWorkOrdering(t *testing.T) {
	tb, err := suite.RelatedWork()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []string{"cc1", "go", "perl", "vortex"} {
		cp := value(t, tb, b, "codepack")
		hc := value(t, tb, b, "ccrp")
		lf := value(t, tb, b, "lefurgy")
		if hc <= cp+0.10 {
			t.Errorf("%s: CCRP (%.2f) should be clearly worse than CodePack (%.2f)", b, hc, cp)
		}
		if lf > cp+0.06 || lf < cp-0.10 {
			t.Errorf("%s: dictionary ratio %.2f not similar to CodePack %.2f", b, lf, cp)
		}
	}
}

// TestDictTransferCostsRatio: transplanted dictionaries must still round
// trip but compress worse than program-specific ones.
func TestDictTransferCostsRatio(t *testing.T) {
	tb, err := suite.DictTransfer()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []string{"go", "perl", "vortex", "pegwit"} {
		own := value(t, tb, b, "own")
		foreign := value(t, tb, b, "mpeg2enc")
		if foreign <= own {
			t.Errorf("%s: foreign dictionaries (%.3f) not worse than own (%.3f)",
				b, foreign, own)
		}
	}
	// Self-transfer is identity.
	if own, cc1 := mustVal(t, tb, "cc1", "own"), mustVal(t, tb, "cc1", "cc1"); own != cc1 {
		t.Errorf("cc1 with its own dictionaries: %.4f vs %.4f", own, cc1)
	}
}

func mustVal(t *testing.T, tb *Table, row, col string) float64 {
	t.Helper()
	return value(t, tb, row, col)
}

func TestTableMarkdownAndCSV(t *testing.T) {
	tb := newTable("tx", "demo", "bench", "value")
	tb.addRow("cc1", "0.80")
	tb.addRow("weird,name", `says "hi"`)
	md := tb.Markdown()
	if !strings.Contains(md, "| cc1 | 0.80 |") || !strings.Contains(md, "|---|---|") {
		t.Fatalf("markdown broken:\n%s", md)
	}
	csv := tb.CSV()
	if !strings.Contains(csv, "bench,value\n") || !strings.Contains(csv, "cc1,0.80\n") {
		t.Fatalf("csv broken:\n%s", csv)
	}
	if !strings.Contains(csv, `"weird,name","says ""hi"""`) {
		t.Fatalf("csv quoting broken:\n%s", csv)
	}
}

// TestInstructionMixRealistic: the synthetic benchmarks must carry a
// compiled-code-like dynamic instruction mix.
func TestInstructionMixRealistic(t *testing.T) {
	for _, name := range []string{"cc1", "vortex", "mpeg2enc"} {
		b, err := suite.Bench(name)
		if err != nil {
			t.Fatal(err)
		}
		r, err := suite.Run(b, cpu.FourIssue(), cpu.NativeModel())
		if err != nil {
			t.Fatal(err)
		}
		n := float64(r.Instructions)
		loads := float64(r.Loads) / n
		stores := float64(r.Stores) / n
		branches := float64(r.Branches) / n
		if loads < 0.08 || loads > 0.35 {
			t.Errorf("%s: load fraction %.2f unrealistic", name, loads)
		}
		if stores < 0.04 || stores > 0.20 {
			t.Errorf("%s: store fraction %.2f unrealistic", name, stores)
		}
		if branches < 0.05 || branches > 0.25 {
			t.Errorf("%s: branch fraction %.2f unrealistic", name, branches)
		}
	}
}

// TestSeedStability: headline metrics must be robust to the generator seed.
func TestSeedStability(t *testing.T) {
	tb, err := suite.SeedStability()
	if err != nil {
		t.Fatal(err)
	}
	var ratios, speedups []float64
	for _, seed := range []string{"101", "201", "301"} {
		ratios = append(ratios, mustVal(t, tb, seed, "ratio"))
		speedups = append(speedups, mustVal(t, tb, seed, "codepack"))
	}
	spread := func(v []float64) float64 {
		lo, hi := v[0], v[0]
		for _, x := range v {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		return hi - lo
	}
	if spread(ratios) > 0.02 {
		t.Errorf("ratio spread %.3f across seeds", spread(ratios))
	}
	if spread(speedups) > 0.06 {
		t.Errorf("speedup spread %.3f across seeds", spread(speedups))
	}
}
