package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"codepack/internal/loadgen"
)

// TestChurnClusterWarmFloor is the replication tier's load-level proof:
// three real cpackd processes at -replicas 2 serve the churn scenario
// while the harness crashes and gracefully stops members mid-run, and the
// warm-hit ratio — lookups served from a local or replica cache instead
// of a fresh compression — must stay above a floor. With one member down
// at a time and R=2, every digest keeps a live replica, so only the
// handful of entries written in a kill window may ever be recompressed.
func TestChurnClusterWarmFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process cluster run takes ~10s")
	}
	var out, errs bytes.Buffer
	err := run([]string{
		"-cluster", "3", "-cluster-replicas", "2", "-churn-interval", "900ms",
		"-scenario", "churn",
		"-qps", "120", "-duration", "4s", "-warmup", "1s",
		"-seed", "21", "-json",
	}, &out, &errs)
	if err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, errs.String())
	}
	var rep loadgen.Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if rep.Scenario != "churn" || !strings.HasPrefix(rep.Config.Target, "cluster(") {
		t.Fatalf("report identity wrong: scenario=%q target=%q", rep.Scenario, rep.Config.Target)
	}
	if rep.Completed == 0 {
		t.Fatalf("no completed requests\nstderr:\n%s", errs.String())
	}
	// At least one member must actually have been stopped mid-run —
	// without churn the floor proves nothing.
	if !strings.Contains(errs.String(), "churn: member") {
		t.Fatalf("no churn rounds ran:\n%s", errs.String())
	}
	// In-flight requests to a dying member may fail at the transport
	// level; routing skips downed members, so failures must stay rare.
	if rep.TransportErrors*10 > rep.Completed {
		t.Fatalf("%d transport errors vs %d completed — churn routing is broken",
			rep.TransportErrors, rep.Completed)
	}
	if n := rep.Status5xx(); n != 0 {
		t.Fatalf("%d 5xx responses: %v", n, rep.ByOp)
	}
	if rep.Server == nil {
		t.Fatal("summed cluster metrics missing")
	}
	if rep.Server.CacheHits+rep.Server.CacheMisses == 0 {
		t.Fatalf("no cache activity recorded: %+v", rep.Server)
	}
	// The warm floor: after one pass over the 48-program working set,
	// repeats must be served warm even though members keep dying. A
	// single-node cache wiped this often could not hold this floor; the
	// replica walk and read-repair are what keep it up.
	if rep.Server.WarmRate < 0.5 {
		t.Fatalf("warm-hit ratio %.2f through churn, want >= 0.5: %+v\nstderr:\n%s",
			rep.Server.WarmRate, rep.Server, errs.String())
	}
	// Round-robin routing sends most requests to non-owners, so the warm
	// serving must include real cross-member traffic.
	if rep.Server.PeerHits == 0 {
		t.Fatalf("no peer-tier hits — the cluster never served cross-member: %+v", rep.Server)
	}
}
