package loadgen

import (
	"context"
	"fmt"
	"iter"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// stubScenario yields tiny constant requests without touching the corpus
// generator, keeping runner tests fast.
type stubScenario struct{ op string }

func (stubScenario) Name() string     { return "stub" }
func (stubScenario) Describe() string { return "constant stream for tests" }

func (s stubScenario) Requests(seed int64) iter.Seq[Request] {
	return func(yield func(Request) bool) {
		for i := 0; ; i++ {
			if !yield(Request{Op: s.op, Key: fmt.Sprintf("k%d", i%4), Body: []byte(`{}`)}) {
				return
			}
		}
	}
}

// stallExec services the first call slowly and the rest instantly, the
// canonical coordinated-omission trap: a closed-loop, measured-from-send
// harness would report near-zero latency for everything but request one.
type stallExec struct {
	stall time.Duration
	calls atomic.Int64
}

func (e *stallExec) Do(ctx context.Context, req Request) (int, error) {
	if e.calls.Add(1) == 1 {
		time.Sleep(e.stall)
	}
	return 200, nil
}

// TestRunCoordinatedOmission: with one worker and a 100ms server stall,
// requests scheduled during the stall must be charged their queueing
// delay from intended send time. ~20 arrivals land inside the stall at
// 5ms spacing, so the median measured latency must be tens of ms even
// though every post-stall request is serviced instantly.
func TestRunCoordinatedOmission(t *testing.T) {
	const stall = 100 * time.Millisecond
	exec := &stallExec{stall: stall}
	rep, err := Run(context.Background(), Options{
		Scenario:    stubScenario{op: "compress"},
		Executor:    exec,
		QPS:         200,
		Duration:    250 * time.Millisecond,
		Concurrency: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed == 0 {
		t.Fatal("no requests completed")
	}
	lat := rep.Latency
	if lat.Max < float64(stall/time.Millisecond)*0.9 {
		t.Fatalf("max latency %.1fms does not reflect the %.0fms stall",
			lat.Max, float64(stall/time.Millisecond))
	}
	// At least a third of the schedule fell inside the stall window, each
	// charged its decaying share of it; the p90 of measured-from-intended
	// latencies must therefore be far above per-request service time (~0).
	if lat.P90 < 10 {
		t.Fatalf("p90 %.3fms too low: queueing delay was coordinated-omitted", lat.P90)
	}
}

// TestRunOpenLoopSchedule: the arrival count follows QPS*duration, not
// server speed, and warmup requests stay out of the measured stats.
func TestRunOpenLoopSchedule(t *testing.T) {
	var served atomic.Int64
	exec := execFunc(func(ctx context.Context, req Request) (int, error) {
		served.Add(1)
		return 200, nil
	})
	rep, err := Run(context.Background(), Options{
		Scenario:    stubScenario{op: "compress"},
		Executor:    exec,
		QPS:         500,
		Duration:    200 * time.Millisecond,
		Warmup:      100 * time.Millisecond,
		Concurrency: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 150 // (0.1s + 0.2s) * 500
	if rep.Sent < want*8/10 || rep.Sent > want {
		t.Fatalf("sent %d requests, want ~%d", rep.Sent, want)
	}
	if rep.WarmupRequests == 0 {
		t.Fatal("no requests attributed to warmup")
	}
	if got := rep.WarmupRequests + rep.Completed + rep.TransportErrors; got != uint64(rep.Sent) {
		t.Fatalf("request accounting leaks: %d warmup + %d completed + %d errors != %d sent",
			rep.WarmupRequests, rep.Completed, rep.TransportErrors, rep.Sent)
	}
	if rep.Latency.N != rep.Completed+rep.TransportErrors {
		t.Fatalf("latency samples %d != measured requests %d", rep.Latency.N, rep.Completed)
	}
	if rep.ThroughputRPS <= 0 {
		t.Fatal("no throughput reported")
	}
	if rep.ByOp["compress"]["200"] != rep.Completed {
		t.Fatalf("by_op accounting: %v", rep.ByOp)
	}
}

type execFunc func(ctx context.Context, req Request) (int, error)

func (f execFunc) Do(ctx context.Context, req Request) (int, error) { return f(ctx, req) }

// TestRunRecordsErrorsAndStatuses: non-2xx statuses and transport errors
// are partitioned correctly.
func TestRunRecordsErrorsAndStatuses(t *testing.T) {
	var n atomic.Int64
	exec := execFunc(func(ctx context.Context, req Request) (int, error) {
		switch n.Add(1) % 3 {
		case 0:
			return 0, fmt.Errorf("conn refused")
		case 1:
			return 429, nil
		default:
			return 200, nil
		}
	})
	rep, err := Run(context.Background(), Options{
		Scenario:    stubScenario{op: "compress"},
		Executor:    exec,
		QPS:         300,
		Duration:    150 * time.Millisecond,
		Concurrency: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TransportErrors == 0 {
		t.Fatal("transport errors not counted")
	}
	codes := rep.ByOp["compress"]
	if codes["429"] == 0 || codes["200"] == 0 || codes["error"] == 0 {
		t.Fatalf("status partition incomplete: %v", codes)
	}
}

// fakeMetrics serves canned cumulative stats.
type fakeMetrics struct {
	mu    sync.Mutex
	stats []ServerStats
}

func (f *fakeMetrics) ServerStats(ctx context.Context) (ServerStats, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := f.stats[0]
	if len(f.stats) > 1 {
		f.stats = f.stats[1:]
	}
	return st, nil
}

func TestRunServerDeltas(t *testing.T) {
	exec := execFunc(func(ctx context.Context, req Request) (int, error) { return 200, nil })
	rep, err := Run(context.Background(), Options{
		Scenario: stubScenario{op: "compress"},
		Executor: exec,
		Metrics: &fakeMetrics{stats: []ServerStats{
			{CacheHits: 10, CacheMisses: 5, Coalesced: 1},
			{CacheHits: 110, CacheMisses: 30, Coalesced: 4, Shed: 2},
		}},
		QPS:      200,
		Duration: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Server
	if s == nil {
		t.Fatal("server delta missing")
	}
	if s.CacheHits != 100 || s.CacheMisses != 25 || s.Coalesced != 3 || s.Shed != 2 {
		t.Fatalf("bad deltas: %+v", s)
	}
	if want := 100.0 / 125.0; s.HitRate < want-1e-9 || s.HitRate > want+1e-9 {
		t.Fatalf("hit rate %.3f, want %.3f", s.HitRate, want)
	}
}

func TestRunValidates(t *testing.T) {
	exec := execFunc(func(ctx context.Context, req Request) (int, error) { return 200, nil })
	bad := []Options{
		{Executor: exec, QPS: 100, Duration: time.Second},                               // no scenario
		{Scenario: stubScenario{}, QPS: 100, Duration: time.Second},                     // no executor
		{Scenario: stubScenario{}, Executor: exec, Duration: time.Second},               // no qps
		{Scenario: stubScenario{}, Executor: exec, QPS: 100},                            // no duration
		{Scenario: stubScenario{}, Executor: exec, QPS: 100, Duration: -1},              // negative
		{Scenario: stubScenario{}, Executor: exec, QPS: 100, Duration: 1, Warmup: -1},   // negative
		{Scenario: stubScenario{}, Executor: exec, QPS: 100, Duration: 1, Concurrency: -1},
	}
	for i, o := range bad {
		if _, err := Run(context.Background(), o); err == nil {
			t.Fatalf("options %d accepted: %+v", i, o)
		}
	}
}

func TestParseServerStats(t *testing.T) {
	text := `# HELP cpackd_cache_hits_total Content-addressed cache hits.
# TYPE cpackd_cache_hits_total counter
cpackd_cache_hits_total 42
cpackd_cache_misses_total 7
cpackd_requests_total{endpoint="compress",code="200"} 49
cpackd_requests_shed_total 3
cpackd_compress_coalesced_total 5
cpackd_peer_hits_total 2
cpackd_peer_misses_total 1
`
	st, err := parseServerStats(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	want := ServerStats{CacheHits: 42, CacheMisses: 7, Shed: 3, Coalesced: 5, PeerHits: 2, PeerMisses: 1}
	if st != want {
		t.Fatalf("parsed %+v, want %+v", st, want)
	}
}

func TestParseGoBench(t *testing.T) {
	out := `goos: linux
goarch: amd64
BenchmarkCompressThroughput-8        100     1234567 ns/op      98.76 MB/s     4096 B/op       12 allocs/op
BenchmarkServerCompress/hit-8       2000      654321 ns/op
some unrelated line
PASS
`
	got, err := ParseGoBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d results, want 2: %+v", len(got), got)
	}
	a := got[0]
	if a.Name != "BenchmarkCompressThroughput" || a.NsPerOp != 1234567 ||
		a.MBPerSec != 98.76 || a.BytesPerOp != 4096 || a.AllocsPerOp != 12 || a.Iterations != 100 {
		t.Fatalf("bad parse: %+v", a)
	}
	if got[1].Name != "BenchmarkServerCompress/hit" || got[1].NsPerOp != 654321 {
		t.Fatalf("bad parse: %+v", got[1])
	}
}
