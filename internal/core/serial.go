package core

import (
	"encoding/binary"
	"fmt"
)

// On-disk format of a compressed program (the cpack utility's output):
// magic, text base, native instruction count, the two dictionaries, the
// packed index table, and the compressed region.
const compMagic = 0x43504B31 // "CPK1"

// Marshal serializes the compressed program.
func (c *Compressed) Marshal() []byte {
	var b []byte
	put := func(v uint32) { b = binary.LittleEndian.AppendUint32(b, v) }
	put(compMagic)
	put(c.TextBase)
	put(uint32(c.NumInstr))
	put(uint32(c.High.Len()))
	put(uint32(c.Low.Len()))
	put(uint32(len(c.Index)))
	put(uint32(len(c.Region)))
	for _, v := range c.High.Entries() {
		b = binary.LittleEndian.AppendUint16(b, v)
	}
	for _, v := range c.Low.Entries() {
		b = binary.LittleEndian.AppendUint16(b, v)
	}
	for _, e := range c.Index {
		put(e.Pack())
	}
	return append(b, c.Region...)
}

// UnmarshalCompressed parses a serialized compressed program and
// reconstructs the per-block metadata (byte-arrival tables) by re-scanning
// the codeword stream, so the result is usable both for decompression and
// for timing simulation.
func UnmarshalCompressed(name string, b []byte) (*Compressed, error) {
	if len(b) < 28 || binary.LittleEndian.Uint32(b) != compMagic {
		return nil, fmt.Errorf("core: bad compressed image header")
	}
	get := func(i int) uint32 { return binary.LittleEndian.Uint32(b[i*4:]) }
	c := &Compressed{
		Name:     name,
		TextBase: get(1),
		NumInstr: int(get(2)),
	}
	nHigh, nLow, nIdx, nRegion := int(get(3)), int(get(4)), int(get(5)), int(get(6))
	need := 28 + 2*(nHigh+nLow) + 4*nIdx + nRegion
	if len(b) != need {
		return nil, fmt.Errorf("core: compressed image is %d bytes, header implies %d",
			len(b), need)
	}
	off := 28
	readDict := func(n int) (*Dict, error) {
		entries := make([]uint16, n)
		for i := range entries {
			entries[i] = binary.LittleEndian.Uint16(b[off:])
			off += 2
		}
		return NewDict(entries)
	}
	var err error
	if c.High, err = readDict(nHigh); err != nil {
		return nil, fmt.Errorf("core: high dictionary: %w", err)
	}
	if c.Low, err = readDict(nLow); err != nil {
		return nil, fmt.Errorf("core: low dictionary: %w", err)
	}
	c.Index = make([]IndexEntry, nIdx)
	for i := range c.Index {
		c.Index[i] = UnpackIndexEntry(binary.LittleEndian.Uint32(b[off:]))
		off += 4
	}
	c.Region = append([]byte(nil), b[off:]...)
	if err := c.rebuildBlockMeta(); err != nil {
		return nil, err
	}
	c.rebuildStats()
	return c, nil
}

// rebuildBlockMeta re-derives block extents and per-instruction cumulative
// bit counts from the index table and the codeword stream.
func (c *Compressed) rebuildBlockMeta() error {
	nBlocks := len(c.Index) * GroupBlocks
	c.blocks = make([]blockMeta, nBlocks)
	for blk := 0; blk < nBlocks; blk++ {
		start, raw, err := c.LookupBlock(blk)
		if err != nil {
			return err
		}
		m := &c.blocks[blk]
		m.start = start
		m.raw = raw
		if raw {
			if int(start)+BlockNativeBytes > len(c.Region) {
				return fmt.Errorf("core: raw block %d extends past region", blk)
			}
			m.size = BlockNativeBytes
			for i := 0; i < BlockInstrs; i++ {
				m.cumBits[i] = uint16((i + 1) * 32)
			}
			continue
		}
		end := len(c.Region)
		if e := c.Index[blk/GroupBlocks]; blk%GroupBlocks == 0 {
			end = int(e.Block0Start + e.Block0Len)
		} else if blk/GroupBlocks+1 < len(c.Index) {
			end = int(c.Index[blk/GroupBlocks+1].Block0Start)
		}
		if end > len(c.Region) || int(start) > end {
			return fmt.Errorf("core: block %d extent [%d,%d) invalid", blk, start, end)
		}
		r := bitReader{buf: c.Region[start:end]}
		for i := 0; i < BlockInstrs; i++ {
			if _, err := decodeHalf(&r, c.High); err != nil {
				return fmt.Errorf("core: rescan block %d: %w", blk, err)
			}
			if _, err := decodeHalf(&r, c.Low); err != nil {
				return fmt.Errorf("core: rescan block %d: %w", blk, err)
			}
			m.cumBits[i] = uint16(r.pos)
		}
		m.size = uint16((r.pos + 7) / 8)
	}
	return nil
}

// rebuildStats recomputes size statistics (composition counters other than
// sizes are rebuilt from a decode pass).
func (c *Compressed) rebuildStats() {
	c.stats = Stats{}
	for blk := range c.blocks {
		m := &c.blocks[blk]
		if m.raw {
			c.stats.RawBlockInstrs += BlockInstrs
			c.stats.RawBits += BlockInstrs * 32
			continue
		}
		c.stats.PadBits += int(m.size)*8 - int(m.cumBits[BlockInstrs-1])
	}
	c.finishStats(len(c.blocks) * BlockInstrs)
}
