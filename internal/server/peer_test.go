package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"slices"
	"strings"
	"sync"
	"testing"
	"time"

	"codepack"
	"codepack/internal/peer"
	"codepack/internal/trace"
)

// reserveURL grabs a loopback listener so a member's base URL is known
// before its server exists (the ring needs every URL up front).
func reserveURL(t *testing.T) (net.Listener, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return ln, "http://" + ln.Addr().String()
}

// fastPeerConfig keeps cluster tests snappy: tight timeouts, one retry,
// a two-failure breaker with a short cooldown. The membership loop is
// made quiescent (hour-scale heartbeats and timeouts) so these tests
// exercise the static seed topology; dynamic membership has its own
// tests.
func fastPeerConfig(self string, peers ...string) *peer.Config {
	return &peer.Config{
		Self:              self,
		Peers:             peers,
		FetchTimeout:      500 * time.Millisecond,
		Retries:           -1,
		BackoffBase:       time.Millisecond,
		BreakerThreshold:  2,
		BreakerCooldown:   50 * time.Millisecond,
		HeartbeatInterval: time.Hour,
		SuspectAfter:      time.Hour,
		DeadAfter:         2 * time.Hour,
	}
}

// startOn serves an already-built Server on a reserved listener.
func startOn(t *testing.T, s *Server, ln net.Listener) *httptest.Server {
	t.Helper()
	ts := httptest.NewUnstartedServer(s.Handler())
	ts.Listener.Close()
	ts.Listener = ln
	ts.Start()
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts
}

// startPair boots two clustered instances on pre-reserved ports and
// returns them plus their base URLs.
func startPair(t *testing.T, cfgA, cfgB Config) (sa, sb *Server, urlA, urlB string) {
	t.Helper()
	lnA, urlA := reserveURL(t)
	lnB, urlB := reserveURL(t)
	cfgA.Peer = fastPeerConfig(urlA, urlB)
	cfgB.Peer = fastPeerConfig(urlB, urlA)
	if cfgA.Logger == nil {
		cfgA.Logger = quietLogger()
	}
	if cfgB.Logger == nil {
		cfgB.Logger = quietLogger()
	}
	sa, err := New(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	startOn(t, sa, lnA)
	sb, err = New(cfgB)
	if err != nil {
		sa.Close()
		t.Fatal(err)
	}
	startOn(t, sb, lnB)
	return sa, sb, urlA, urlB
}

// imageOwnedBy assembles program variants until one's digest lands on
// the wanted ring member, so tests can steer a digest to either side.
func imageOwnedBy(t *testing.T, ring *peer.Ring, owner string) *codepack.Image {
	t.Helper()
	for i := 0; i < 10_000; i++ {
		im, err := codepack.Assemble(fmt.Sprintf("prog%d", i),
			strings.Replace(testAsm, "li   $s0, 50", fmt.Sprintf("li   $s0, %d", 50+i), 1))
		if err != nil {
			t.Fatal(err)
		}
		if ring.Owner(codepack.ImageDigest(im)) == owner {
			return im
		}
	}
	t.Fatalf("no generated program hashed to owner %s", owner)
	return nil
}

func compressImageOn(t *testing.T, url string, im *codepack.Image) CompressResponse {
	t.Helper()
	b64 := base64.StdEncoding.EncodeToString(im.Marshal())
	return decodeBody[CompressResponse](t, postJSON(t, url+"/v1/compress",
		CompressRequest{ProgramRef: ProgramRef{ImageB64: b64}}), http.StatusOK)
}

// TestPeerWarmTierHit is the headline warm-tier path: a digest
// compressed on its ring owner is served by the other instance as a
// peer hit with zero recompression.
func TestPeerWarmTierHit(t *testing.T) {
	_, _, urlA, urlB := startPair(t, Config{}, Config{})
	ring := peer.NewRing([]string{urlA, urlB}, peer.DefaultReplicas)
	im := imageOwnedBy(t, ring, urlA)

	first := compressImageOn(t, urlA, im)
	if first.Cached {
		t.Fatal("first compression on the owner reported cached")
	}
	second := compressImageOn(t, urlB, im)
	if !second.Cached {
		t.Error("peer-served compression did not report cached")
	}
	if second.Digest != first.Digest {
		t.Errorf("digest mismatch across instances: %s vs %s", second.Digest, first.Digest)
	}
	if got := metricValue(t, scrapeURL(t, urlB), "cpackd_peer_hits_total"); got != 1 {
		t.Errorf("cpackd_peer_hits_total on B = %v, want 1", got)
	}
}

// TestPeerReplication: an entry compressed away from its owner is
// replicated to the owner asynchronously, quarantined there, and then
// served locally (verified at use) without a peer fetch.
func TestPeerReplication(t *testing.T) {
	_, sb, urlA, urlB := startPair(t, Config{}, Config{})
	ring := peer.NewRing([]string{urlA, urlB}, peer.DefaultReplicas)
	im := imageOwnedBy(t, ring, urlB) // owned by B, compressed on A

	if resp := compressImageOn(t, urlA, im); resp.Cached {
		t.Fatal("first compression reported cached")
	}
	// Replication is async best-effort: wait for the entry to land on B.
	waitFor(t, func() bool { return sb.cache.stats().Entries == 1 })
	if got := sb.cache.stats().Unverified; got != 1 {
		t.Fatalf("replicated entry not quarantined: unverified = %d", got)
	}

	resp := compressImageOn(t, urlB, im)
	if !resp.Cached {
		t.Error("replicated entry was not served from cache")
	}
	if got := metricValue(t, scrapeURL(t, urlB), "cpackd_peer_hits_total"); got != 0 {
		t.Errorf("cpackd_peer_hits_total on B = %v, want 0 (local quarantine hit)", got)
	}
	if got := sb.cache.stats().Unverified; got != 0 {
		t.Errorf("entry still unverified after being served: %d", got)
	}
}

// TestPeerDownDegrades: with its peer dead, an instance keeps serving —
// every request succeeds via local compression, and the breaker opens
// so later misses skip the dead peer.
func TestPeerDownDegrades(t *testing.T) {
	lnDead, urlDead := reserveURL(t)
	lnB, urlB := reserveURL(t)
	lnDead.Close() // nothing ever listens here

	cfg := Config{Logger: quietLogger(), Peer: fastPeerConfig(urlB, urlDead)}
	sb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	startOn(t, sb, lnB)

	// Several distinct misses owned by the dead member: enough to trip
	// the two-failure breaker, with every request still succeeding.
	ring := peer.NewRing([]string{urlDead, urlB}, peer.DefaultReplicas)
	seen := 0
	for i := 0; seen < 4 && i < 10_000; i++ {
		im, err := codepack.Assemble(fmt.Sprintf("down%d", i),
			strings.Replace(testAsm, "li   $s1, 0", fmt.Sprintf("li   $s1, %d", i), 1))
		if err != nil {
			t.Fatal(err)
		}
		if ring.Owner(codepack.ImageDigest(im)) != urlDead {
			continue
		}
		seen++
		if resp := compressImageOn(t, urlB, im); resp.Cached {
			t.Errorf("miss %d reported cached with a dead peer", seen)
		}
	}

	body := scrapeURL(t, urlB)
	if got := metricValue(t, body, "cpackd_peer_errors_total"); got < 1 {
		t.Errorf("cpackd_peer_errors_total = %v, want >= 1", got)
	}
	opens := fmt.Sprintf("cpackd_peer_breaker_opens_total{peer=%q}", urlDead)
	if got := metricValue(t, body, opens); got < 1 {
		t.Errorf("%s = %v, want >= 1", opens, got)
	}
}

// TestPeerPoisonRejected: a malicious owner serving a well-formed but
// wrong payload (correct transport checksum) cannot poison the cache —
// the instance detects the mismatch, compresses locally, and answers
// correctly.
func TestPeerPoisonRejected(t *testing.T) {
	// The wrong program, compressed for real: parses fine, checksums
	// fine, decompresses to the wrong text.
	wrongIm, err := codepack.Assemble("wrong", strings.Replace(testAsm, "li   $s0, 50", "li   $s0, 99", 1))
	if err != nil {
		t.Fatal(err)
	}
	wrongComp, err := codepack.Compress(wrongIm)
	if err != nil {
		t.Fatal(err)
	}
	payload := wrongComp.Marshal()
	sum := sha256.Sum256(payload)

	evil := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, peer.CachePathPrefix) {
			http.NotFound(w, r)
			return
		}
		w.Header().Set(peer.SumHeader, hex.EncodeToString(sum[:]))
		w.Write(payload)
	}))
	defer evil.Close()

	lnB, urlB := reserveURL(t)
	sb, err := New(Config{Logger: quietLogger(), Peer: fastPeerConfig(urlB, evil.URL)})
	if err != nil {
		t.Fatal(err)
	}
	startOn(t, sb, lnB)

	ring := peer.NewRing([]string{evil.URL, urlB}, peer.DefaultReplicas)
	im := imageOwnedBy(t, ring, evil.URL)
	resp := compressImageOn(t, urlB, im)
	if resp.Cached {
		t.Error("poisoned fetch reported cached; should have compressed locally")
	}
	if got := metricValue(t, scrapeURL(t, urlB), "cpackd_peer_errors_total"); got < 1 {
		t.Errorf("cpackd_peer_errors_total = %v, want >= 1", got)
	}

	// The locally compressed (correct) entry must be what is cached:
	// decompressing the response payload yields the requested program.
	raw, err := base64.StdEncoding.DecodeString(resp.CompressedB64)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := codepack.UnmarshalCompressed(im.Name, raw)
	if err != nil {
		t.Fatal(err)
	}
	if !compMatchesImage(comp, im) {
		t.Error("response payload does not decompress to the requested program")
	}
}

// TestPeerQuarantineVerifyAtUse: a replica PUT directly into the cache
// under the wrong digest survives in quarantine but is dropped the
// moment a request proves it false — it is never served.
func TestPeerQuarantineVerifyAtUse(t *testing.T) {
	_, sb, urlA, urlB := startPair(t, Config{}, Config{})
	ring := peer.NewRing([]string{urlA, urlB}, peer.DefaultReplicas)
	im := imageOwnedBy(t, ring, urlB)
	digest := codepack.ImageDigest(im)

	wrongIm, err := codepack.Assemble("wrong", strings.Replace(testAsm, "li   $s0, 50", "li   $s0, 77", 1))
	if err != nil {
		t.Fatal(err)
	}
	wrongComp, err := codepack.Compress(wrongIm)
	if err != nil {
		t.Fatal(err)
	}
	payload := wrongComp.Marshal()
	sum := sha256.Sum256(payload)

	req, err := http.NewRequest(http.MethodPut,
		urlB+peer.CachePathPrefix+digest, bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(peer.SumHeader, hex.EncodeToString(sum[:]))
	putResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, putResp.Body)
	putResp.Body.Close()
	if putResp.StatusCode != http.StatusNoContent {
		t.Fatalf("replica PUT returned %d, want 204", putResp.StatusCode)
	}
	if got := sb.cache.stats().Unverified; got != 1 {
		t.Fatalf("unverified entries = %d, want 1", got)
	}

	// Compressing the real program must not trust the lying replica.
	resp := compressImageOn(t, urlB, im)
	if resp.Cached {
		t.Error("wrong replica was served as a cache hit")
	}
	raw, err := base64.StdEncoding.DecodeString(resp.CompressedB64)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := codepack.UnmarshalCompressed(im.Name, raw)
	if err != nil {
		t.Fatal(err)
	}
	if !compMatchesImage(comp, im) {
		t.Error("response payload does not decompress to the requested program")
	}
}

// TestPeerAntiEntropy: entries persisted before clustering are offered
// to their ring owners on startup, warming the owner without a request.
func TestPeerAntiEntropy(t *testing.T) {
	dir := t.TempDir()
	lnA, urlA := reserveURL(t)
	lnB, urlB := reserveURL(t)
	ring := peer.NewRing([]string{urlA, urlB}, peer.DefaultReplicas)
	im := imageOwnedBy(t, ring, urlB)

	// First life: A standalone with a durable cache; the entry lands on
	// disk. (Any port will do; ring placement only matters later.)
	sa1, err := New(Config{Logger: quietLogger(), CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(sa1.Handler())
	if resp := compressImageOn(t, ts1.URL, im); resp.Cached {
		t.Fatal("first compression reported cached")
	}
	ts1.Close()
	sa1.Close()

	// Second life: A reboots into a two-member ring. Startup
	// anti-entropy offers the persisted digest to its owner B.
	sb, err := New(Config{Logger: quietLogger(), Peer: fastPeerConfig(urlB, urlA)})
	if err != nil {
		t.Fatal(err)
	}
	startOn(t, sb, lnB)
	sa2, err := New(Config{Logger: quietLogger(), CacheDir: dir, Peer: fastPeerConfig(urlA, urlB)})
	if err != nil {
		t.Fatal(err)
	}
	startOn(t, sa2, lnA)

	waitFor(t, func() bool { return sb.cache.stats().Entries == 1 })
	resp := compressImageOn(t, urlB, im)
	if !resp.Cached {
		t.Error("anti-entropy warmed entry was not served from cache")
	}
	if got := metricValue(t, scrapeURL(t, urlB), "cpackd_peer_hits_total"); got != 0 {
		t.Errorf("cpackd_peer_hits_total on B = %v, want 0 (entry arrived via anti-entropy)", got)
	}
}

// TestPeerConcurrentStress hammers both instances of a pair with
// overlapping programs — concurrent peer fetches, local compressions,
// replications and scrapes. Run under -race this is the load-bearing
// check on the warm tier's locking.
func TestPeerConcurrentStress(t *testing.T) {
	_, _, urlA, urlB := startPair(t, Config{}, Config{})

	images := make([]string, 6)
	for i := range images {
		im, err := codepack.Assemble(fmt.Sprintf("stress%d", i),
			strings.Replace(testAsm, "li   $s0, 50", fmt.Sprintf("li   $s0, %d", 200+i), 1))
		if err != nil {
			t.Fatal(err)
		}
		images[i] = base64.StdEncoding.EncodeToString(im.Marshal())
	}

	urls := []string{urlA, urlB}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				url := urls[(g+i)%2]
				if (g+i)%5 == 4 {
					if resp, err := http.Get(url + "/metrics"); err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
					continue
				}
				code := postCode(url+"/v1/compress",
					CompressRequest{ProgramRef: ProgramRef{ImageB64: images[(g*3+i)%len(images)]}})
				if code != http.StatusOK && code != http.StatusTooManyRequests {
					t.Errorf("compress on %s returned %d", url, code)
				}
			}
		}(g)
	}
	wg.Wait()
}

// imageWithOwners assembles program variants until one's digest has
// exactly the wanted replica placement, in successor-list order, so
// replication tests can steer which members own a digest and in what
// order the fetch walk visits them. base keeps separate searches in
// disjoint program ranges — the program name is not part of the digest,
// so two searches with the same placement condition would otherwise
// land on the same program.
func imageWithOwners(t *testing.T, ring *peer.Ring, tag string, base int, want ...string) *codepack.Image {
	t.Helper()
	for i := base; i < base+5_000; i++ {
		im, err := codepack.Assemble(fmt.Sprintf("%s%d", tag, i),
			strings.Replace(testAsm, "li   $s0, 50", fmt.Sprintf("li   $s0, %d", 50+i), 1))
		if err != nil {
			t.Fatal(err)
		}
		if slices.Equal(ring.Owners(codepack.ImageDigest(im), len(want)), want) {
			return im
		}
	}
	t.Fatalf("no generated program placed its replicas on %v in order", want)
	return nil
}

// waitRingQuiet blocks until every server's ring epoch has stopped
// moving: the boot-time membership joins each bump the epoch and fire a
// ring-change anti-entropy pass, so a test that seeds a cache by hand
// must wait them out or a late pass will replicate the seed on its own.
func waitRingQuiet(t *testing.T, servers ...*Server) {
	t.Helper()
	var last []uint64
	stable := 0
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		cur := make([]uint64, len(servers))
		for i, s := range servers {
			cur[i] = s.cluster.RingEpoch()
		}
		if !slices.Equal(cur, last) {
			last, stable = cur, 0
		} else if stable++; stable >= 20 { // ~100ms of unchanged epochs
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("ring epochs never settled within 5s")
}

// replicatedConfig is fastPeerConfig at R=2 with a one-failure breaker
// that stays open for the whole test, so a single failed contact pins a
// replica as skipped.
func replicatedConfig(self string, peers ...string) *peer.Config {
	pc := fastPeerConfig(self, peers...)
	pc.ReplicationFactor = 2
	pc.BreakerThreshold = 1
	pc.BreakerCooldown = time.Hour
	return pc
}

// replicaOutcomes indexes a trace's peer-replica spans by their replica
// position, mapping each to its outcome attr.
func replicaOutcomes(t *testing.T, tr trace.Trace) map[int]string {
	t.Helper()
	out := make(map[int]string)
	for _, sp := range tr.Spans {
		if sp.Name != "peer-replica" {
			continue
		}
		ri, ok := sp.Attrs["replica"].(int)
		if !ok {
			t.Fatalf("peer-replica span without replica attr: %v", sp.Attrs)
		}
		out[ri], _ = sp.Attrs["outcome"].(string)
	}
	return out
}

// TestPeerReplicaFallthroughOnBreakerOpen: with R=2 and the primary
// replica down, a fetch serves from replica 2 — first by failing the
// contact (recorded on the peer-fetch span tree), then, once the
// breaker is open, by skipping the dead primary outright.
func TestPeerReplicaFallthroughOnBreakerOpen(t *testing.T) {
	lnDead, urlDead := reserveURL(t)
	lnDead.Close() // the primary replica: nothing ever listens here
	lnA, urlA := reserveURL(t)
	lnB, urlB := reserveURL(t)

	sa, err := New(Config{Logger: quietLogger(), Peer: replicatedConfig(urlA, urlDead, urlB)})
	if err != nil {
		t.Fatal(err)
	}
	startOn(t, sa, lnA)
	sb, err := New(Config{Logger: quietLogger(), Peer: replicatedConfig(urlB, urlDead, urlA)})
	if err != nil {
		t.Fatal(err)
	}
	startOn(t, sb, lnB)

	ring := peer.NewRing([]string{urlDead, urlA, urlB}, peer.DefaultReplicas)
	im1 := imageWithOwners(t, ring, "ft-a", 0, urlDead, urlA)
	im2 := imageWithOwners(t, ring, "ft-b", 5_000, urlDead, urlA)

	// Warm the surviving replica: A owns both digests second and caches
	// the compression locally.
	compressImageOn(t, urlA, im1)
	compressImageOn(t, urlA, im2)

	// First fetch on B: the dead primary fails the contact, the walk
	// falls through to A, and the request is still a warm hit.
	if resp := compressImageOn(t, urlB, im1); !resp.Cached {
		t.Error("fallthrough fetch did not report cached")
	}
	tr := lastTrace(t, sb, "compress")
	oc := replicaOutcomes(t, tr)
	if oc[1] != "unavailable" || oc[2] != "hit" {
		t.Errorf("first walk outcomes = %v, want replica 1 unavailable, replica 2 hit:\n%s", oc, tr.Tree())
	}

	// Second fetch: the one failure opened the dead primary's breaker,
	// so the walk skips it without paying a connection attempt.
	if resp := compressImageOn(t, urlB, im2); !resp.Cached {
		t.Error("breaker-skip fetch did not report cached")
	}
	waitFor(t, func() bool { return len(sb.tracer.Recent(0, "compress", 2)) >= 2 })
	tr = sb.tracer.Recent(0, "compress", 2)[0]
	oc = replicaOutcomes(t, tr)
	if oc[1] != "breaker-skip" || oc[2] != "hit" {
		t.Errorf("second walk outcomes = %v, want replica 1 breaker-skip, replica 2 hit:\n%s", oc, tr.Tree())
	}

	body := scrapeURL(t, urlB)
	if got := metricValue(t, body, "cpackd_peer_replica_fallthroughs_total"); got != 2 {
		t.Errorf("cpackd_peer_replica_fallthroughs_total = %v, want 2", got)
	}
	if got := metricValue(t, body, "cpackd_peer_hits_total"); got != 2 {
		t.Errorf("cpackd_peer_hits_total = %v, want 2", got)
	}
	if got := metricValue(t, body, "cpackd_peer_replica_factor"); got != 2 {
		t.Errorf("cpackd_peer_replica_factor = %v, want 2", got)
	}
}

// TestPeerReadRepairConvergesLaggingReplica: a replica that answers a
// clean 404 during a fetch walk receives the verified entry through
// read-repair — convergence without waiting for an anti-entropy pass
// (membership here is quiescent, so no pass ever runs after startup).
func TestPeerReadRepairConvergesLaggingReplica(t *testing.T) {
	lnA, urlA := reserveURL(t)
	lnB, urlB := reserveURL(t)
	lnC, urlC := reserveURL(t)

	boot := func(self string, peers ...string) *Server {
		s, err := New(Config{Logger: quietLogger(), Peer: replicatedConfig(self, peers...)})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	sa := boot(urlA, urlB, urlC)
	startOn(t, sa, lnA)
	sb := boot(urlB, urlA, urlC)
	startOn(t, sb, lnB)
	sc := boot(urlC, urlA, urlB)
	startOn(t, sc, lnC)

	// Let the boot-time joins and their anti-entropy passes finish before
	// seeding, so the only mechanism left that can move the entry to A is
	// read-repair.
	waitRingQuiet(t, sa, sb, sc)

	// A digest owned by [A, B]: seed only B, so the primary replica A
	// lags behind its successor.
	ring := peer.NewRing([]string{urlA, urlB, urlC}, peer.DefaultReplicas)
	im := imageWithOwners(t, ring, "rr", 0, urlA, urlB)
	comp, err := codepack.Compress(im)
	if err != nil {
		t.Fatal(err)
	}
	sb.cache.put(codepack.ImageDigest(im), comp)
	if got := sa.cache.stats().Entries; got != 0 {
		t.Fatalf("primary replica already holds %d entries before the fetch", got)
	}

	// C's fetch walks A (404) then B (hit): a warm response, plus a
	// read-repair push that re-offers the entry to A.
	if resp := compressImageOn(t, urlC, im); !resp.Cached {
		t.Error("fetch through the lagging replica did not report cached")
	}
	waitFor(t, func() bool { return sa.cache.stats().Entries == 1 })
	if got := sa.cache.stats().Unverified; got != 1 {
		t.Errorf("repaired entry on A not quarantined: unverified = %d", got)
	}
	body := scrapeURL(t, urlC)
	if got := metricValue(t, body, "cpackd_peer_readrepair_total"); got != 1 {
		t.Errorf("cpackd_peer_readrepair_total = %v, want 1", got)
	}
	if got := metricValue(t, body, "cpackd_peer_replica_fallthroughs_total"); got != 1 {
		t.Errorf("cpackd_peer_replica_fallthroughs_total = %v, want 1", got)
	}
}

// scrapeURL is scrape for servers not wrapped in an httptest.Server.
func scrapeURL(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
