package workload

import (
	"testing"

	"codepack/internal/asm"
	"codepack/internal/program"
)

func TestCorpusDeterministicAndDistinct(t *testing.T) {
	const n = 64
	a := CorpusSources(7, n)
	b := CorpusSources(7, n)
	digests := make(map[string]int, n)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("corpus id %d not deterministic", i)
		}
		im, err := asm.Assemble("corpus", a[i])
		if err != nil {
			t.Fatalf("corpus id %d does not assemble: %v", i, err)
		}
		d := digestOf(t, im)
		if prev, dup := digests[d]; dup {
			t.Fatalf("corpus ids %d and %d share digest %s", prev, i, d)
		}
		digests[d] = i
	}
	// A different seed is a different family.
	if CorpusSource(8, 0) == CorpusSource(7, 0) {
		t.Fatal("corpus seed does not change the program")
	}
}

func TestCorpusSizedGrowsBody(t *testing.T) {
	small, err := asm.Assemble("s", CorpusSourceSized(1, 0, 32))
	if err != nil {
		t.Fatal(err)
	}
	big, err := asm.Assemble("b", CorpusSourceSized(1, 0, 4096))
	if err != nil {
		t.Fatal(err)
	}
	if len(big.Text) <= len(small.Text) {
		t.Fatalf("sized body did not grow text: %d <= %d", len(big.Text), len(small.Text))
	}
}

func digestOf(t *testing.T, im *program.Image) string {
	t.Helper()
	return string(im.Marshal())
}
