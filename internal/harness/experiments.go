package harness

import (
	"context"
	"fmt"

	"codepack/internal/core"
	"codepack/internal/cpu"
	"codepack/internal/decomp"
	"codepack/internal/isa"
	"codepack/internal/mem"
)

// Table1 characterizes the benchmarks on the 4-issue model: dynamic
// instruction count and L1 I-cache miss rate (paper Table 1).
func (s *Suite) Table1() (*Table, error) { return s.Table1Context(context.Background()) }

// Table1Context is Table1 with cancellation.
func (s *Suite) Table1Context(ctx context.Context) (*Table, error) {
	t := newTable("table1", "Benchmarks (4-issue, native)",
		"bench", "instructions (M)", "text KB", "L1 I-miss rate")
	benches, err := s.AllContext(ctx)
	if err != nil {
		return nil, err
	}
	for _, b := range benches {
		r, err := s.RunContext(ctx, b, cpu.FourIssue(), cpu.NativeModel())
		if err != nil {
			return nil, err
		}
		miss := r.IMissRate()
		t.addRow(b.Profile.Name,
			fmt.Sprintf("%.1f", float64(r.Instructions)/1e6),
			fmt.Sprintf("%d", b.Image.TextBytes()/1024),
			pct(miss))
		t.set(b.Profile.Name, "imiss", miss)
		t.set(b.Profile.Name, "instr", float64(r.Instructions))
	}
	return t, nil
}

// Table2 lists the simulated architectures (paper Table 2; static).
func Table2() *Table {
	t := newTable("table2", "Simulated architectures",
		"parameter", "1-issue", "4-issue", "8-issue")
	cfgs := cpu.Presets()
	row := func(name string, f func(cpu.Config) string) {
		cells := []string{name}
		for _, c := range cfgs {
			cells = append(cells, f(c))
		}
		t.addRow(cells...)
	}
	row("issue", func(c cpu.Config) string {
		ord := "out-of-order"
		if c.InOrder {
			ord = "in-order"
		}
		return fmt.Sprintf("%d %s", c.IssueWidth, ord)
	})
	row("fetch queue", func(c cpu.Config) string { return fmt.Sprint(c.FetchQueue) })
	row("decode width", func(c cpu.Config) string { return fmt.Sprint(c.DecodeWidth) })
	row("commit width", func(c cpu.Config) string { return fmt.Sprint(c.CommitWidth) })
	row("RUU entries", func(c cpu.Config) string { return fmt.Sprint(c.RUUSize) })
	row("LSQ entries", func(c cpu.Config) string { return fmt.Sprint(c.LSQSize) })
	row("function units", func(c cpu.Config) string {
		return fmt.Sprintf("alu:%d mult:%d mem:%d fpalu:%d fpmult:%d",
			c.IntALU, c.IntMult, c.MemPorts, c.FPALU, c.FPMult)
	})
	row("branch pred", func(c cpu.Config) string { return c.Pred.String() })
	row("L1 I-cache", func(c cpu.Config) string { return c.ICache.String() })
	row("L1 D-cache", func(c cpu.Config) string { return c.DCache.String() })
	row("memory", func(c cpu.Config) string { return c.Mem.String() })
	return t
}

// Table3 reports the compression ratio of each benchmark's text section.
func (s *Suite) Table3() (*Table, error) { return s.Table3Context(context.Background()) }

// Table3Context is Table3 with cancellation.
func (s *Suite) Table3Context(ctx context.Context) (*Table, error) {
	t := newTable("table3", "Compression ratio of .text section",
		"bench", "original (bytes)", "compressed (bytes)", "ratio")
	benches, err := s.AllContext(ctx)
	if err != nil {
		return nil, err
	}
	for _, b := range benches {
		st := b.Comp.Stats()
		t.addRow(b.Profile.Name,
			fmt.Sprint(st.OriginalBytes), fmt.Sprint(st.CompressedBytes()),
			pct(st.Ratio()))
		t.set(b.Profile.Name, "ratio", st.Ratio())
	}
	return t, nil
}

// Table4 reports the composition of the compressed region.
func (s *Suite) Table4() (*Table, error) { return s.Table4Context(context.Background()) }

// Table4Context is Table4 with cancellation.
func (s *Suite) Table4Context(ctx context.Context) (*Table, error) {
	t := newTable("table4", "Composition of compressed region",
		"bench", "index", "dict", "tags", "indices", "raw tags", "raw bits", "pad", "total (bytes)")
	benches, err := s.AllContext(ctx)
	if err != nil {
		return nil, err
	}
	for _, b := range benches {
		c := b.Comp.Stats().Composition()
		t.addRow(b.Profile.Name, pct(c.IndexTable), pct(c.Dictionary), pct(c.Tags),
			pct(c.DictIndices), pct(c.RawTags), pct(c.RawBits), pct(c.Pad),
			fmt.Sprint(c.TotalBytes))
		t.set(b.Profile.Name, "index", c.IndexTable)
		t.set(b.Profile.Name, "dict", c.Dictionary)
		t.set(b.Profile.Name, "tags", c.Tags)
		t.set(b.Profile.Name, "indices", c.DictIndices)
		t.set(b.Profile.Name, "rawtags", c.RawTags)
		t.set(b.Profile.Name, "rawbits", c.RawBits)
		t.set(b.Profile.Name, "pad", c.Pad)
	}
	return t, nil
}

// Table5 reports IPC for native, baseline CodePack and optimized CodePack
// on all three architectures.
func (s *Suite) Table5() (*Table, error) { return s.Table5Context(context.Background()) }

// Table5Context is Table5 with cancellation.
func (s *Suite) Table5Context(ctx context.Context) (*Table, error) {
	t := newTable("table5", "Instructions per cycle",
		"bench",
		"1i native", "1i codepack", "1i optimized",
		"4i native", "4i codepack", "4i optimized",
		"8i native", "8i codepack", "8i optimized")
	benches, err := s.AllContext(ctx)
	if err != nil {
		return nil, err
	}
	for _, b := range benches {
		cells := []string{b.Profile.Name}
		for _, cfg := range cpu.Presets() {
			for _, m := range []struct {
				name  string
				model cpu.FetchModel
			}{
				{"native", cpu.NativeModel()},
				{"codepack", cpu.BaselineModel()},
				{"optimized", cpu.OptimizedModel()},
			} {
				r, err := s.RunContext(ctx, b, cfg, m.model)
				if err != nil {
					return nil, err
				}
				cells = append(cells, f2(r.IPC()))
				t.set(b.Profile.Name, cfg.Name+"/"+m.name, r.IPC())
			}
		}
		t.addRow(cells...)
	}
	return t, nil
}

// Table6 sweeps index-cache geometry for cc1 on the 4-issue model and
// reports the index-cache miss ratio during L1 misses.
func (s *Suite) Table6() (*Table, error) { return s.Table6Context(context.Background()) }

// Table6Context is Table6 with cancellation.
func (s *Suite) Table6Context(ctx context.Context) (*Table, error) {
	lineSizes := []int{1, 2, 4, 8}
	lineCounts := []int{4, 16, 64, 256}
	cols := []string{"lines"}
	for _, e := range lineSizes {
		cols = append(cols, fmt.Sprintf("%d entries/line", e))
	}
	t := newTable("table6", "Index cache miss ratio for cc1 (4-issue)", cols...)
	b, err := s.BenchContext(ctx, "cc1")
	if err != nil {
		return nil, err
	}
	for _, lines := range lineCounts {
		cells := []string{fmt.Sprint(lines)}
		for _, entries := range lineSizes {
			model := cpu.BaselineModel()
			model.CodePack.IndexCacheLines = lines
			model.CodePack.IndexEntriesPerLine = entries
			r, err := s.RunContext(ctx, b, cpu.FourIssue(), model)
			if err != nil {
				return nil, err
			}
			miss := r.CodePack.IndexMissRate()
			cells = append(cells, pct(miss))
			t.set(fmt.Sprint(lines), fmt.Sprint(entries), miss)
		}
		t.addRow(cells...)
	}
	return t, nil
}

// Table7 reports speedup over native due to the index cache: baseline
// CodePack, CodePack with the 64x4 index cache, and a perfect index cache.
func (s *Suite) Table7() (*Table, error) { return s.Table7Context(context.Background()) }

// Table7Context is Table7 with cancellation.
func (s *Suite) Table7Context(ctx context.Context) (*Table, error) {
	t := newTable("table7", "Speedup due to index cache (4-issue)",
		"bench", "codepack", "index cache", "perfect")
	withIdx := cpu.BaselineModel()
	withIdx.CodePack.IndexCacheLines = 64
	withIdx.CodePack.IndexEntriesPerLine = 4
	perfect := cpu.BaselineModel()
	perfect.CodePack.PerfectIndex = true
	return s.speedupTable(ctx, t, cpu.FourIssue(), []namedModel{
		{"codepack", cpu.BaselineModel()},
		{"index cache", withIdx},
		{"perfect", perfect},
	})
}

// Table8 reports speedup over native due to decompression width.
func (s *Suite) Table8() (*Table, error) { return s.Table8Context(context.Background()) }

// Table8Context is Table8 with cancellation.
func (s *Suite) Table8Context(ctx context.Context) (*Table, error) {
	t := newTable("table8", "Speedup due to decompression rate (4-issue)",
		"bench", "codepack", "2 decoders", "16 decoders")
	two := cpu.BaselineModel()
	two.CodePack.DecodeRate = 2
	sixteen := cpu.BaselineModel()
	sixteen.CodePack.DecodeRate = 16
	return s.speedupTable(ctx, t, cpu.FourIssue(), []namedModel{
		{"codepack", cpu.BaselineModel()},
		{"2 decoders", two},
		{"16 decoders", sixteen},
	})
}

// Table9 compares the optimizations individually and together.
func (s *Suite) Table9() (*Table, error) { return s.Table9Context(context.Background()) }

// Table9Context is Table9 with cancellation.
func (s *Suite) Table9Context(ctx context.Context) (*Table, error) {
	t := newTable("table9", "Comparison of optimizations (4-issue)",
		"bench", "codepack", "index", "decompress", "all")
	idx := cpu.BaselineModel()
	idx.CodePack.IndexCacheLines = 64
	idx.CodePack.IndexEntriesPerLine = 4
	dec := cpu.BaselineModel()
	dec.CodePack.DecodeRate = 2
	return s.speedupTable(ctx, t, cpu.FourIssue(), []namedModel{
		{"codepack", cpu.BaselineModel()},
		{"index", idx},
		{"decompress", dec},
		{"all", cpu.OptimizedModel()},
	})
}

// Table10 sweeps the I-cache size.
func (s *Suite) Table10() (*Table, error) { return s.Table10Context(context.Background()) }

// Table10Context is Table10 with cancellation.
func (s *Suite) Table10Context(ctx context.Context) (*Table, error) {
	sizes := []int{1, 4, 16, 64}
	cols := []string{"bench"}
	for _, kb := range sizes {
		cols = append(cols, fmt.Sprintf("%dKB codepack", kb), fmt.Sprintf("%dKB optimized", kb))
	}
	t := newTable("table10", "Speedup over native vs I-cache size (4-issue)", cols...)
	benches, err := s.AllContext(ctx)
	if err != nil {
		return nil, err
	}
	for _, b := range benches {
		cells := []string{b.Profile.Name}
		for _, kb := range sizes {
			cfg := cpu.FourIssue()
			cfg.ICache.SizeBytes = kb * 1024
			for _, m := range []namedModel{
				{"codepack", cpu.BaselineModel()},
				{"optimized", cpu.OptimizedModel()},
			} {
				native, comp, err := s.runPairContext(ctx, b, cfg, m.model)
				if err != nil {
					return nil, err
				}
				sp := comp.SpeedupOver(native)
				cells = append(cells, f2(sp))
				t.set(b.Profile.Name, fmt.Sprintf("%dKB/%s", kb, m.name), sp)
			}
		}
		t.addRow(cells...)
	}
	return t, nil
}

// Table11 sweeps main-memory bus width.
func (s *Suite) Table11() (*Table, error) { return s.Table11Context(context.Background()) }

// Table11Context is Table11 with cancellation.
func (s *Suite) Table11Context(ctx context.Context) (*Table, error) {
	widths := []int{16, 32, 64, 128}
	cols := []string{"bench"}
	for _, w := range widths {
		cols = append(cols, fmt.Sprintf("%db codepack", w), fmt.Sprintf("%db optimized", w))
	}
	t := newTable("table11", "Speedup over native vs memory bus width (4-issue)", cols...)
	benches, err := s.AllContext(ctx)
	if err != nil {
		return nil, err
	}
	for _, b := range benches {
		cells := []string{b.Profile.Name}
		for _, w := range widths {
			cfg := cpu.FourIssue()
			cfg.Mem.WidthBytes = w / 8
			for _, m := range []namedModel{
				{"codepack", cpu.BaselineModel()},
				{"optimized", cpu.OptimizedModel()},
			} {
				native, comp, err := s.runPairContext(ctx, b, cfg, m.model)
				if err != nil {
					return nil, err
				}
				sp := comp.SpeedupOver(native)
				cells = append(cells, f2(sp))
				t.set(b.Profile.Name, fmt.Sprintf("%d/%s", w, m.name), sp)
			}
		}
		t.addRow(cells...)
	}
	return t, nil
}

// Table12 sweeps main-memory latency as a multiple of the baseline.
func (s *Suite) Table12() (*Table, error) { return s.Table12Context(context.Background()) }

// Table12Context is Table12 with cancellation.
func (s *Suite) Table12Context(ctx context.Context) (*Table, error) {
	mults := []float64{0.5, 1, 2, 4, 8}
	cols := []string{"bench"}
	for _, m := range mults {
		cols = append(cols, fmt.Sprintf("%gx codepack", m), fmt.Sprintf("%gx optimized", m))
	}
	t := newTable("table12", "Speedup over native vs memory latency (4-issue)", cols...)
	benches, err := s.AllContext(ctx)
	if err != nil {
		return nil, err
	}
	for _, b := range benches {
		cells := []string{b.Profile.Name}
		for _, mult := range mults {
			cfg := cpu.FourIssue()
			cfg.Mem.FirstLatency = scaleLatency(cfg.Mem.FirstLatency, mult)
			cfg.Mem.BeatLatency = scaleLatency(cfg.Mem.BeatLatency, mult)
			for _, m := range []namedModel{
				{"codepack", cpu.BaselineModel()},
				{"optimized", cpu.OptimizedModel()},
			} {
				native, comp, err := s.runPairContext(ctx, b, cfg, m.model)
				if err != nil {
					return nil, err
				}
				sp := comp.SpeedupOver(native)
				cells = append(cells, f2(sp))
				t.set(b.Profile.Name, fmt.Sprintf("%gx/%s", mult, m.name), sp)
			}
		}
		t.addRow(cells...)
	}
	return t, nil
}

func scaleLatency(base int, mult float64) int {
	v := int(float64(base) * mult)
	if v < 1 {
		v = 1
	}
	return v
}

type namedModel struct {
	name  string
	model cpu.FetchModel
}

// speedupTable fills t with one speedup column per model for every bench.
func (s *Suite) speedupTable(ctx context.Context, t *Table, cfg cpu.Config, models []namedModel) (*Table, error) {
	benches, err := s.AllContext(ctx)
	if err != nil {
		return nil, err
	}
	for _, b := range benches {
		native, err := s.RunContext(ctx, b, cfg, cpu.NativeModel())
		if err != nil {
			return nil, err
		}
		cells := []string{b.Profile.Name}
		for _, m := range models {
			r, err := s.RunContext(ctx, b, cfg, m.model)
			if err != nil {
				return nil, err
			}
			sp := r.SpeedupOver(native)
			cells = append(cells, f2(sp))
			t.set(b.Profile.Name, m.name, sp)
		}
		t.addRow(cells...)
	}
	return t, nil
}

// Figure2 reproduces the paper's worked L1-miss timelines: critical
// instruction availability for native code (t=10), baseline CodePack
// (t=25) and the optimized decompressor (t=14).
func Figure2() (*Table, error) {
	comp, err := figure2Program()
	if err != nil {
		return nil, err
	}
	t := newTable("figure2", "L1 miss timeline (critical = 5th instruction of line)",
		"model", "critical ready", "line complete")

	newBus := func() *mem.Bus {
		b, err := mem.NewBus(mem.Baseline())
		if err != nil {
			panic(err)
		}
		return b
	}
	native := &decomp.Native{Bus: newBus(), CriticalWordFirst: true}
	nf := native.FetchLine(0, isa.TextBase, 4)
	t.addRow("native", fmt.Sprint(nf.Ready[4]), fmt.Sprint(nf.Done))
	t.set("native", "critical", float64(nf.Ready[4]))

	base, err := decomp.NewCodePack(comp, newBus(), decomp.BaselineCodePack())
	if err != nil {
		return nil, err
	}
	bf := base.FetchLine(0, isa.TextBase, 4)
	t.addRow("codepack", fmt.Sprint(bf.Ready[4]), fmt.Sprint(bf.Done))
	t.set("codepack", "critical", float64(bf.Ready[4]))

	optCfg := decomp.OptimizedCodePack()
	optCfg.PerfectIndex = true // the figure assumes an index-cache hit
	opt, err := decomp.NewCodePack(comp, newBus(), optCfg)
	if err != nil {
		return nil, err
	}
	of := opt.FetchLine(0, isa.TextBase, 4)
	t.addRow("optimized", fmt.Sprint(of.Ready[4]), fmt.Sprint(of.Done))
	t.set("optimized", "critical", float64(of.Ready[4]))
	return t, nil
}

// figure2Program builds a compressed stream whose first block matches the
// figure's beat pattern (2,3,3,3,3,2 instructions per 64-bit beat), i.e.
// every instruction costs exactly 3 compressed bytes.
func figure2Program() (*core.Compressed, error) {
	text := make([]isa.Word, 1024)
	for i := range text {
		hi := uint32(0x4000 + i)
		if i < core.BlockInstrs {
			hi = uint32(0xF000 + i) // singletons: escape as 19-bit raw
		}
		lo := uint32(0x0010 + i%8) // frequent: 5-bit class-1 codewords
		text[i] = hi<<16 | lo
	}
	return core.CompressWords("figure2", isa.TextBase, text)
}
