package tenant

import (
	"strings"
	"testing"
	"time"
)

func TestSignVerifyRoundTrip(t *testing.T) {
	key := []byte("cluster-secret-1")
	now := time.Unix(10_000, 0)
	body := []byte(`{"digest":"abc"}`)
	h := SignInternal(key, "PUT", "/internal/v1/cache/abc", body, now)
	if !strings.HasPrefix(h, "v1:10000:") {
		t.Fatalf("header = %q", h)
	}
	if err := VerifyInternal(key, h, "PUT", "/internal/v1/cache/abc", body, now); err != nil {
		t.Fatalf("verify: %v", err)
	}
	// Within the skew window either direction.
	if err := VerifyInternal(key, h, "PUT", "/internal/v1/cache/abc", body, now.Add(MaxClockSkew-time.Second)); err != nil {
		t.Fatalf("verify near skew edge: %v", err)
	}
}

func TestVerifyRejects(t *testing.T) {
	key := []byte("cluster-secret-1")
	now := time.Unix(10_000, 0)
	body := []byte("payload")
	h := SignInternal(key, "GET", "/internal/v1/cache/abc", body, now)

	cases := []struct {
		name   string
		header string
		method string
		path   string
		body   []byte
		key    []byte
		at     time.Time
	}{
		{"wrong key", h, "GET", "/internal/v1/cache/abc", body, []byte("other-key-000000"), now},
		{"tampered body", h, "GET", "/internal/v1/cache/abc", []byte("evil"), key, now},
		{"wrong path", h, "GET", "/internal/v1/cache/zzz", body, key, now},
		{"wrong method", h, "PUT", "/internal/v1/cache/abc", body, key, now},
		{"stale", h, "GET", "/internal/v1/cache/abc", body, key, now.Add(MaxClockSkew + time.Minute)},
		{"future", h, "GET", "/internal/v1/cache/abc", body, key, now.Add(-MaxClockSkew - time.Minute)},
		{"empty header", "", "GET", "/internal/v1/cache/abc", body, key, now},
		{"garbage header", "v1:nope", "GET", "/internal/v1/cache/abc", body, key, now},
		{"bad version", "v2:10000:abcd", "GET", "/internal/v1/cache/abc", body, key, now},
		{"bad ts", "v1:notanum:abcd", "GET", "/internal/v1/cache/abc", body, key, now},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := VerifyInternal(tc.key, tc.header, tc.method, tc.path, tc.body, tc.at); err == nil {
				t.Fatal("verified, want rejection")
			}
		})
	}
}

func TestSignEmptyBody(t *testing.T) {
	key := []byte("cluster-secret-1")
	now := time.Unix(99, 0)
	h := SignInternal(key, "GET", "/internal/v1/cache/abc", nil, now)
	if err := VerifyInternal(key, h, "GET", "/internal/v1/cache/abc", nil, now); err != nil {
		t.Fatalf("nil body verify: %v", err)
	}
	// nil and empty body sign identically (both hash to sha256("")).
	if err := VerifyInternal(key, h, "GET", "/internal/v1/cache/abc", []byte{}, now); err != nil {
		t.Fatalf("empty body verify: %v", err)
	}
}
