package core

// Table-driven block decoder: the serve path's fast alternative to the
// bit-at-a-time tag walker in compress.go.
//
// The CodePack geometry makes a one-byte dispatch table sufficient for the
// dominant codewords: every class-0/1/2 codeword (2, 5 and 8 bits) fits
// entirely within the leading byte of the remaining bitstream, so a
// 256-entry table indexed by that byte resolves the tag class, the
// codeword length AND the decoded halfword value in a single lookup — no
// per-bit loop, no tag branch, no dictionary map probe. Only the two
// 3-bit-tag escapes fall through to a short tail: class 3 (tag 110) pulls
// its 8 index bits from a flattened slot array, and raw (tag 111) takes
// its 16 literal bits straight from the peeked window.
//
// The tables are dictionary-dependent (the same leading byte decodes to
// different halfwords under different dictionaries), so each Compressed
// lazily builds one table per dictionary on first decode and caches them
// behind an atomic pointer; concurrent first decodes may both build, which
// is harmless because the build is deterministic.
//
// The reference walker stays in compress.go as the correctness oracle:
// FuzzDecodeEquivalence and the golden corpus hold the two implementations
// word-for-word identical, and rebuildBlockMeta still rescans unmarshaled
// images with the walker so every accepted image has been validated by
// both geometries. See DESIGN.md "Two-decoder architecture".

import (
	"fmt"
	"sync/atomic"

	"codepack/internal/isa"
)

// DecodeMode selects which decoder implementation serves DecodeBlock,
// Decompress, AppendDecompress and DecodeAt.
type DecodeMode int32

const (
	// DecodeFast is the default: batched table-driven decoding.
	DecodeFast DecodeMode = iota
	// DecodeReference forces the bit-at-a-time tag walker everywhere —
	// the escape hatch for diffing a suspect fast-path result in
	// production, and the oracle half of the differential tests.
	DecodeReference
)

// decodeMode is the process-wide decoder selection. It exists as an
// escape hatch, not a tuning knob, so it is deliberately global rather
// than threaded through every call site.
var decodeMode atomic.Int32

// SetDecodeMode selects the decoder implementation behind the public
// decode entry points and returns the previous mode.
func SetDecodeMode(m DecodeMode) DecodeMode {
	return DecodeMode(decodeMode.Swap(int32(m)))
}

// CurrentDecodeMode reports the decoder implementation currently serving
// the public decode entry points.
func CurrentDecodeMode() DecodeMode { return DecodeMode(decodeMode.Load()) }

// fastEntry kinds. fastVal is the branch-predictable common case: the
// leading byte alone determined the decoded halfword.
const (
	fastVal  = iota // class 0/1/2: value resolved, e.bits consumed
	fastC3          // class 3: 8 index bits straddle the leading byte
	fastRaw         // raw escape: 16 literal bits follow the 3-bit tag
	fastMiss        // class 0/1/2 slot beyond the dictionary population
)

// fastEntry is one dispatch-table slot: what the leading byte of the
// remaining bitstream says about the next codeword.
type fastEntry struct {
	val  uint16 // decoded halfword (fastVal only)
	bits uint8  // total codeword length in bits
	kind uint8
}

// fastTab is the decode table for one dictionary: the 256-entry leading-
// byte dispatch table plus the dictionary flattened into slot order for
// the class-3 tail (a slice index instead of a bounds-checked method
// call and map-backed Dict probe).
type fastTab struct {
	entry [256]fastEntry
	vals  []uint16
}

// fastTabs pairs the high- and low-halfword tables; Compressed caches one
// behind an atomic pointer.
type fastTabs struct {
	high, low fastTab
}

// buildFastTab precomputes the dispatch table for dictionary d.
func buildFastTab(t *fastTab, d *Dict) {
	t.vals = d.Entries()
	for b := 0; b < 256; b++ {
		e := &t.entry[b]
		var cl, idx int
		switch {
		case b>>6 == 0b00:
			cl, idx = class0, 0
		case b>>6 == 0b01:
			cl, idx = class1, b>>3&7
		case b>>6 == 0b10:
			cl, idx = class2, b&0x3F
		case b>>5 == 0b110:
			e.kind, e.bits = fastC3, uint8(codewordBits(class3))
			continue
		default:
			e.kind, e.bits = fastRaw, RawCodewordBits
			continue
		}
		e.bits = uint8(codewordBits(cl))
		if slot := classBase[cl] + idx; slot < len(t.vals) {
			e.kind, e.val = fastVal, t.vals[slot]
		} else {
			e.kind = fastMiss
		}
	}
}

// fastTables returns the cached dispatch tables, building them on first
// use. A racing duplicate build produces an identical table, so a plain
// compare-and-swap (no lock, no once) is enough.
func (c *Compressed) fastTables() *fastTabs {
	if t := c.fast.Load(); t != nil {
		return t
	}
	t := new(fastTabs)
	buildFastTab(&t.high, c.High)
	buildFastTab(&t.low, c.Low)
	c.fast.CompareAndSwap(nil, t)
	return c.fast.Load()
}

// DecodeBlockFast decompresses block b with the table-driven decoder,
// regardless of the current DecodeMode.
func (c *Compressed) DecodeBlockFast(b int, out *[BlockInstrs]isa.Word) error {
	return c.fastDecode(b, out, nil)
}

// DecodeBlockPositions is DecodeBlockFast, additionally reporting the
// cumulative bit position consumed after each instruction's codeword
// pair. Positions must agree with the encoder-recorded cumBits behind
// InstrReadyBytes — the byte-arrival contract the decomp timing model
// builds its fetch/decode overlap on; the property tests hold the fast
// decoder to it.
func (c *Compressed) DecodeBlockPositions(b int, out *[BlockInstrs]isa.Word, pos *[BlockInstrs]uint16) error {
	return c.fastDecode(b, out, pos)
}

// fastDecode is the hot path: one pass over the block's codeword stream
// with a 64-bit accumulator, dispatching each halfword through the
// leading-byte table. It allocates nothing.
func (c *Compressed) fastDecode(b int, out *[BlockInstrs]isa.Word, pos *[BlockInstrs]uint16) error {
	start, raw, err := c.LookupBlock(b)
	if err != nil {
		return err
	}
	if raw {
		if int(start)+BlockNativeBytes > len(c.Region) {
			return fmt.Errorf("core: raw block %d extends past region", b)
		}
		for i := range out {
			o := int(start) + i*4
			out[i] = uint32(c.Region[o])<<24 | uint32(c.Region[o+1])<<16 |
				uint32(c.Region[o+2])<<8 | uint32(c.Region[o+3])
			if pos != nil {
				pos[i] = uint16((i + 1) * 32)
			}
		}
		return nil
	}
	end := int(start) + int(c.blocks[b].size)
	if end > len(c.Region) {
		return fmt.Errorf("core: block %d extends past region", b)
	}
	buf := c.Region[start:end]
	tabs := c.fastTables()

	var (
		acc      uint64 // next stream bits in the low accBits bits, MSB first
		accBits  uint
		p        int // next byte of buf to load
		consumed uint
		total    = uint(len(buf)) * 8
	)
	for i := 0; i < BlockInstrs; i++ {
		var word uint32
		tab := &tabs.high
		for half := 0; half < 2; half++ {
			for accBits <= 56 && p < len(buf) {
				acc = acc<<8 | uint64(buf[p])
				p++
				accBits += 8
			}
			left := total - consumed
			if left < 2 {
				return fastDecodeErr(b, i, half, "truncated codeword")
			}
			// Peek the longest possible codeword (19 bits), zero-padded
			// past the end of the block like the reference reader.
			var peek uint32
			if accBits >= RawCodewordBits {
				peek = uint32(acc>>(accBits-RawCodewordBits)) & (1<<RawCodewordBits - 1)
			} else {
				peek = uint32(acc<<(RawCodewordBits-accBits)) & (1<<RawCodewordBits - 1)
			}
			e := &tab.entry[peek>>(RawCodewordBits-8)]
			n := uint(e.bits)
			if left < n {
				return fastDecodeErr(b, i, half, "truncated codeword")
			}
			v := e.val
			switch e.kind {
			case fastC3:
				slot := classBase[class3] + int(peek>>8&0xFF)
				if slot >= len(tab.vals) {
					return fastDecodeErr(b, i, half, "dictionary miss")
				}
				v = tab.vals[slot]
			case fastRaw:
				v = uint16(peek)
			case fastMiss:
				return fastDecodeErr(b, i, half, "dictionary miss")
			}
			accBits -= n
			consumed += n
			word = word<<16 | uint32(v)
			tab = &tabs.low
		}
		out[i] = word
		if pos != nil {
			pos[i] = uint16(consumed)
		}
	}
	return nil
}

// fastDecodeErr formats decode failures like the reference walker's
// block/instr/half wrapping so operators see the same shape from either
// decoder.
func fastDecodeErr(b, i, half int, msg string) error {
	side := "high"
	if half == 1 {
		side = "low"
	}
	return fmt.Errorf("core: block %d instr %d %s: %s", b, i, side, msg)
}

// AppendDecompress decodes the full text section (without padding) into
// dst, growing it at most once, and returns the extended slice. With a
// pre-sized dst it performs zero allocations, which is what the serve
// path's buffer pool relies on for steady-state decode.
func (c *Compressed) AppendDecompress(dst []isa.Word) ([]isa.Word, error) {
	n := len(dst)
	need := n + len(c.blocks)*BlockInstrs
	if cap(dst) < need {
		grown := make([]isa.Word, n, need)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:need]
	ref := CurrentDecodeMode() == DecodeReference
	for b := range c.blocks {
		out := (*[BlockInstrs]isa.Word)(dst[n+b*BlockInstrs:])
		var err error
		if ref {
			err = c.DecodeBlockReference(b, out)
		} else {
			err = c.fastDecode(b, out, nil)
		}
		if err != nil {
			return nil, err
		}
	}
	return dst[:n+c.NumInstr], nil
}
