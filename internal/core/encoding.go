package core

// CodePack-style codeword encoding.
//
// Each 32-bit instruction splits into a high and a low 16-bit halfword, each
// encoded independently against its own dictionary. A codeword is a 2- or
// 3-bit tag followed by a dictionary index (or 16 raw bits):
//
//	tag 00  + 0-bit index  ->  2 bits  (1 entry: low half = the value zero,
//	                                    high half = most frequent halfword)
//	tag 01  + 3-bit index  ->  5 bits  (8 entries)
//	tag 10  + 6-bit index  ->  8 bits  (64 entries)
//	tag 110 + 8-bit index  -> 11 bits  (256 entries)
//	tag 111 + 16 raw bits  -> 19 bits  (halfword not in the dictionary)
//
// This matches every property the paper states for CodePack: codewords of
// 2..11 bits, 2-or-3-bit size tags, two dictionaries of fewer than 512
// entries (329 here), the low halfword zero in 2 bits, and a 3-bit tag
// marking raw halfwords. IBM's exact bit numbering is not public in the
// paper; this file is the single place where the concrete geometry lives.
//
// Sixteen instructions form a compression block, padded to a byte boundary.
// A block whose encoding would reach the native 64 bytes is stored raw.
// Two blocks form a compression group (32 instructions = four 8-instruction
// cache lines); one 32-bit index-table entry per group locates both blocks:
//
//	bit 31     block 0 stored raw
//	bit 30     block 1 stored raw
//	bits 29..7 byte offset of block 0 within the compressed region (23 bits)
//	bits 6..0  byte length of block 0, i.e. the delta to block 1 (7 bits)

// Geometry constants.
const (
	// BlockInstrs is the number of instructions per compression block.
	BlockInstrs = 16
	// GroupBlocks is the number of blocks per compression group.
	GroupBlocks = 2
	// GroupInstrs is the number of instructions per compression group.
	GroupInstrs = BlockInstrs * GroupBlocks
	// BlockNativeBytes is the size of an uncompressed block.
	BlockNativeBytes = BlockInstrs * 4
	// IndexEntryBytes is the size of one index-table entry.
	IndexEntryBytes = 4
	// MaxCodewordBits is the longest non-raw codeword.
	MaxCodewordBits = 11
	// RawCodewordBits is the encoded size of an escaped halfword.
	RawCodewordBits = 3 + 16
)

// Tag classes. class 0..3 are dictionary classes; classRaw escapes.
const (
	class0   = iota // tag 00, 0 index bits
	class1          // tag 01, 3 index bits
	class2          // tag 10, 6 index bits
	class3          // tag 110, 8 index bits
	classRaw        // tag 111, 16 raw bits
	numClasses
)

// classSize[c] is the number of dictionary entries in class c.
var classSize = [numClasses]int{1, 8, 64, 256, 0}

// classIndexBits[c] is the number of index bits following the tag.
var classIndexBits = [numClasses]uint{0, 3, 6, 8, 16}

// classTagBits[c] is the tag length in bits.
var classTagBits = [numClasses]uint{2, 2, 2, 3, 3}

// classTag[c] is the tag value (in classTagBits[c] bits).
var classTag = [numClasses]uint32{0b00, 0b01, 0b10, 0b110, 0b111}

// DictCapacity is the total number of entries a dictionary can hold.
const DictCapacity = 1 + 8 + 64 + 256

// classBase[c] is the dictionary slot at which class c starts.
var classBase = [numClasses]int{0, 1, 9, 73, 0}

// codewordBits returns the total encoded size for class c.
func codewordBits(c int) uint { return classTagBits[c] + classIndexBits[c] }

// classOfSlot returns the class holding dictionary slot s and the index
// within that class.
func classOfSlot(s int) (class, index int) {
	switch {
	case s < 1:
		return class0, s
	case s < 9:
		return class1, s - 1
	case s < 73:
		return class2, s - 9
	default:
		return class3, s - 73
	}
}

// IndexEntry is a decoded index-table entry for one compression group.
type IndexEntry struct {
	Block0Start uint32 // byte offset of block 0 in the compressed region
	Block0Len   uint32 // byte length of block 0 (delta to block 1)
	Raw0        bool   // block 0 stored as 64 raw bytes
	Raw1        bool   // block 1 stored as 64 raw bytes
}

// Limits imposed by the packed 32-bit entry format.
const (
	maxBlock0Start = 1<<23 - 1
	maxBlock0Len   = 1<<7 - 1
)

// Pack encodes the entry into its 32-bit table format.
func (e IndexEntry) Pack() uint32 {
	v := e.Block0Start<<7 | e.Block0Len&maxBlock0Len
	if e.Raw0 {
		v |= 1 << 31
	}
	if e.Raw1 {
		v |= 1 << 30
	}
	return v
}

// UnpackIndexEntry decodes a 32-bit index-table entry.
func UnpackIndexEntry(v uint32) IndexEntry {
	return IndexEntry{
		Block0Start: v >> 7 & maxBlock0Start,
		Block0Len:   v & maxBlock0Len,
		Raw0:        v&(1<<31) != 0,
		Raw1:        v&(1<<30) != 0,
	}
}
