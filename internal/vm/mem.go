package vm

import "fmt"

// pagedMem is a sparse byte-addressed memory built from 4KB pages allocated
// on first touch. It backs the data segment, heap and stack; the text
// segment lives in the program image and is read-only.
type pagedMem struct {
	pages map[uint32]*page
	// last is a one-entry translation cache; workloads have strong
	// locality so this removes most map lookups.
	lastNum  uint32
	lastPage *page
}

type page [pageSize]byte

const (
	pageSize = 4096
	pageMask = pageSize - 1
)

func (m *pagedMem) init() {
	m.pages = make(map[uint32]*page)
	m.lastNum = ^uint32(0)
}

func (m *pagedMem) page(addr uint32) *page {
	num := addr / pageSize
	if num == m.lastNum {
		return m.lastPage
	}
	p := m.pages[num]
	if p == nil {
		p = new(page)
		m.pages[num] = p
	}
	m.lastNum, m.lastPage = num, p
	return p
}

// write copies b into memory starting at addr (used for program load).
func (m *pagedMem) write(addr uint32, b []byte) {
	for len(b) > 0 {
		p := m.page(addr)
		off := addr & pageMask
		n := copy(p[off:], b)
		b = b[n:]
		addr += uint32(n)
	}
}

func (m *pagedMem) load32(addr uint32) (uint32, error) {
	if addr&3 != 0 {
		return 0, fmt.Errorf("vm: unaligned word load at 0x%x", addr)
	}
	p := m.page(addr)
	off := addr & pageMask
	return uint32(p[off]) | uint32(p[off+1])<<8 | uint32(p[off+2])<<16 | uint32(p[off+3])<<24, nil
}

func (m *pagedMem) storeBytes(addr uint32, n int, v uint32) error {
	p := m.page(addr)
	off := addr & pageMask
	if int(off)+n > pageSize {
		return fmt.Errorf("vm: store spans page boundary at 0x%x", addr)
	}
	for i := 0; i < n; i++ {
		p[off+uint32(i)] = byte(v >> (8 * i))
	}
	return nil
}
