// Command cpackd serves the CodePack codec and the paper's timing
// simulator over HTTP: compress, decompress, verify and simulate requests
// plus the six calibrated benchmark workloads, with a content-addressed
// compression cache, bounded worker pools and /metrics observability.
//
// Usage:
//
//	cpackd [-addr :8321] [-cache-dir /var/lib/cpackd] [-light-workers N] ...
//
// With -cache-dir set the compression cache is durable: entries persist
// to a crash-safe log + snapshot pair and are reloaded on boot, so a
// restart keeps its warm cache. The daemon drains gracefully on
// SIGINT/SIGTERM: the listener stops, in-flight requests and their pooled
// work complete (up to -drain-timeout), the cache is flushed, then the
// process exits. See docs/SERVER.md for the API contract.
//
// With -peers and -peer-self set, instances form a shared warm cache
// tier: a consistent-hash ring assigns each content digest -replicas
// owning instances (successor-list placement; default 1), cache misses
// walk the replica set in order before compressing locally, and new
// entries replicate asynchronously to every owner. Fetches fall through
// to the next replica when one is down or serves a bad payload, pushes
// to unreachable members are buffered as hinted handoff and drained
// when the member returns, and a replica that missed an entry is
// repaired from the verified copy on the next read. -peers is a seed
// list, not a frozen topology: membership is gossiped, instances can
// join a running cluster, failed members age out of the ring, and a
// graceful shutdown hands its entries to their new owners. Peer
// failures degrade to local compression (circuit breaker, never a
// failed request); peer-served bytes are re-verified before trusted.
//
// With -tenants set, every public endpoint authenticates a per-tenant
// API key, enforces per-tenant rate limits and rolling byte quotas, and
// admits work into the worker pools through weighted-fair per-tenant
// queues, so one overloaded tenant backpressures only itself. The file's
// cluster-key (or the -cluster-key flag) additionally signs node-to-node
// /internal/v1/* traffic with an HMAC, closing the open-peer-port gap.
// SIGHUP reloads the tenants file without a restart.
//
// With -debug-addr set a second, private listener serves the
// diagnostics surface: net/http/pprof, the span-trace ring
// (/debug/trace/recent, sized by -trace-ring), /metrics, /debug/vars,
// /debug/slo, /debug/cluster and /debug/profiles/. The public port
// never exposes pprof. Requests slower than -trace-slow log their full
// span tree.
//
// With -slos set, every public request is graded against burn-rate
// SLOs (multi-window: 5m/1h fast, 30m/6h slow) and the alert state is
// served at /debug/slo and as cpackd_slo_* metrics; SIGHUP reloads the
// file. With -profile-dir set, a paging objective or a slow trace
// snapshots CPU/heap/goroutine profiles into a bounded on-disk ring
// served at /debug/profiles/. /debug/cluster merges every member's
// signed /internal/v1/health into one fleet view.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"codepack/internal/obs"
	"codepack/internal/peer"
	"codepack/internal/server"
	"codepack/internal/tenant"
	"codepack/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cpackd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cpackd", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8321", "listen address")
		debugAddr    = fs.String("debug-addr", "", "private diagnostics listener (pprof, trace ring); empty = disabled")
		traceSlow    = fs.Duration("trace-slow", server.DefaultTraceSlow, "log the full span tree of requests slower than this (0 disables)")
		lightWorkers = fs.Int("light-workers", 0, "codec worker goroutines (0 = auto)")
		lightQueue   = fs.Int("light-queue", 0, "codec queue capacity (0 = default, <0 none)")
		heavyWorkers = fs.Int("heavy-workers", 0, "simulation worker goroutines (0 = auto)")
		heavyQueue   = fs.Int("heavy-queue", 0, "simulation queue capacity (0 = default, <0 none)")
		cacheEntries = fs.Int("cache", 0, "compression cache entries (0 = default, <0 disable)")
		cacheDir     = fs.String("cache-dir", "", "persist the compression cache here (empty = memory only)")
		maxInstr     = fs.Uint64("max-instr", 0, "per-request instruction budget cap (0 = default)")
		timeout      = fs.Duration("timeout", 0, "per-request deadline (0 = default)")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "shutdown drain deadline")
		logJSON      = fs.Bool("log-json", false, "emit JSON logs instead of text")
		logLevel     = fs.String("log-level", "info", "log level: debug, info, warn, error")
		peers        = fs.String("peers", "", "comma-separated seed peer base URLs for the warm-cache cluster")
		peerSelf     = fs.String("peer-self", "", "this instance's advertised base URL (required with -peers)")
		peerTimeout  = fs.Duration("peer-timeout", 0, "per-attempt peer fetch timeout (0 = default)")
		peerHB       = fs.Duration("peer-heartbeat", 0, "membership heartbeat interval (0 = default)")
		peerSuspect  = fs.Duration("peer-suspect-after", 0, "silence before a member is suspected (0 = default)")
		peerDead     = fs.Duration("peer-dead-after", 0, "silence before a suspect is declared dead (0 = default)")
		replicas     = fs.Int("replicas", 0, "cluster replicas per digest (0 = default of 1)")
		tenantsFile  = fs.String("tenants", "", "tenant config file (API keys, weights, quotas); SIGHUP reloads it")
		clusterKey   = fs.String("cluster-key", "", "HMAC key signing internal peer traffic (overrides the tenants file's cluster-key)")
		slosFile     = fs.String("slos", "", "SLO config file (burn-rate objectives); SIGHUP reloads it")
		traceRing    = fs.Int("trace-ring", trace.DefaultCapacity, "completed-trace ring capacity at /debug/trace/recent (<=0 disables tracing)")
		profileDir   = fs.String("profile-dir", "", "capture triggered CPU/heap/goroutine profiles into this directory (bounded ring; empty = disabled)")
		profileKeep  = fs.Int("profile-keep", 0, "triggered profile sets retained in -profile-dir (0 = default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		return fmt.Errorf("bad -log-level: %w", err)
	}
	opts := &slog.HandlerOptions{Level: level}
	var handler slog.Handler = slog.NewTextHandler(os.Stderr, opts)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, opts)
	}
	log := slog.New(handler)

	cfg := server.Config{
		LightWorkers:   *lightWorkers,
		LightQueue:     *lightQueue,
		HeavyWorkers:   *heavyWorkers,
		HeavyQueue:     *heavyQueue,
		CacheEntries:   *cacheEntries,
		CacheDir:       *cacheDir,
		MaxInstr:       *maxInstr,
		RequestTimeout: *timeout,
		TraceSlow:      *traceSlow,
		TraceCapacity:  *traceRing,
		Logger:         log,
	}
	if *traceSlow == 0 {
		cfg.TraceSlow = -1 // the user asked for no slow-trace logging
	}
	if *traceRing <= 0 {
		cfg.TraceCapacity = -1 // the user asked for no tracing
	}

	// SLOs and triggered profiling: -slos declares burn-rate objectives
	// the server grades every public request against; -profile-dir makes
	// a page-level breach (or a slow trace) snapshot the process into a
	// bounded on-disk profile ring.
	var sloEng *obs.Engine
	if *slosFile != "" {
		snap, err := obs.LoadFile(*slosFile)
		if err != nil {
			return fmt.Errorf("load -slos: %w", err)
		}
		sloEng = obs.NewEngine(snap, obs.EngineConfig{Logger: log})
		cfg.SLO = sloEng
		log.Info("slo config loaded", "source", snap.Source, "objectives", len(snap.Objectives))
	}
	if *profileDir != "" {
		cfg.Profile = &obs.ProfilerConfig{
			Dir:         *profileDir,
			MaxCaptures: *profileKeep,
			Logger:      log,
		}
	}

	// Tenant isolation: -tenants declares API keys, weights and quotas;
	// -cluster-key turns on signed peer traffic even without a tenants
	// file. Either flag builds a registry; neither keeps open mode.
	loadTenants := func() (*tenant.Snapshot, error) {
		snap := tenant.OpenSnapshot()
		if *tenantsFile != "" {
			var err error
			if snap, err = tenant.LoadFile(*tenantsFile); err != nil {
				return nil, err
			}
		}
		if *clusterKey != "" {
			snap.ClusterKey = []byte(*clusterKey)
		}
		return snap, nil
	}
	var reg *tenant.Registry
	if *tenantsFile != "" || *clusterKey != "" {
		snap, err := loadTenants()
		if err != nil {
			return fmt.Errorf("load -tenants: %w", err)
		}
		reg = tenant.NewRegistry(snap)
		cfg.Tenants = reg
		log.Info("tenant config loaded", "source", snap.Source,
			"tenants", len(snap.ByID), "signed_peers", len(snap.ClusterKey) > 0)
	}
	if *peers != "" || *peerSelf != "" {
		if *peers == "" || *peerSelf == "" {
			return errors.New("-peers and -peer-self must be set together")
		}
		var members []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				members = append(members, p)
			}
		}
		cfg.Peer = &peer.Config{
			Self:              *peerSelf,
			Peers:             members,
			FetchTimeout:      *peerTimeout,
			HeartbeatInterval: *peerHB,
			SuspectAfter:      *peerSuspect,
			DeadAfter:         *peerDead,
			ReplicationFactor: *replicas,
		}
	}
	s, err := server.New(cfg)
	if err != nil {
		return err
	}

	// Listen explicitly so ":0" reports the kernel-assigned port in the
	// startup log (the restart tests depend on it).
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// The diagnostics listener (pprof, the trace ring, metrics) is a
	// separate server on a separate address — typically loopback — so
	// profiling never rides the public port.
	var debugSrv *http.Server
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			ln.Close()
			return fmt.Errorf("debug listener: %w", err)
		}
		debugSrv = &http.Server{
			Handler:           s.DebugHandler(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			log.Info("cpackd debug listening", "addr", dln.Addr().String())
			if err := debugSrv.Serve(dln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Warn("debug listener failed", "err", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// SIGHUP hot-reloads the tenants and SLO files: new keys, weights,
	// quotas and objectives apply to the next request; objectives whose
	// shape is unchanged keep their accrued error-budget history; a parse
	// error in either file keeps that file's old config serving.
	if (reg != nil && *tenantsFile != "") || sloEng != nil {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		defer signal.Stop(hup)
		go func() {
			for range hup {
				if reg != nil && *tenantsFile != "" {
					snap, err := loadTenants()
					if err != nil {
						log.Warn("tenant config reload failed; keeping previous config", "err", err)
					} else {
						reg.Reload(snap)
						log.Info("tenant config reloaded", "source", snap.Source, "tenants", len(snap.ByID))
					}
				}
				if sloEng != nil {
					snap, err := obs.LoadFile(*slosFile)
					if err != nil {
						log.Warn("slo config reload failed; keeping previous config", "err", err)
					} else {
						sloEng.Reload(snap)
						log.Info("slo config reloaded", "source", snap.Source, "objectives", len(snap.Objectives))
					}
				}
			}
		}()
	}

	errCh := make(chan error, 1)
	go func() {
		log.Info("cpackd listening", "addr", ln.Addr().String())
		errCh <- httpSrv.Serve(ln)
	}()

	select {
	case err := <-errCh:
		return err // listener failed before any signal
	case <-ctx.Done():
	}

	log.Info("shutting down: draining in-flight requests", "timeout", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Warn("shutdown incomplete", "err", err)
	}
	if debugSrv != nil {
		debugSrv.Close()
	}
	// HTTP requests are done (or abandoned); now drain the worker pools
	// and flush the persistent cache.
	s.Close()
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Info("cpackd stopped")
	return nil
}
