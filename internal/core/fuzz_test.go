package core

import (
	"math/rand"
	"testing"

	"codepack/internal/isa"
)

// FuzzUnmarshalCompressed feeds arbitrary bytes to the compressed-image
// parser: it must reject or accept them without panicking, and anything it
// accepts must decompress without panicking.
func FuzzUnmarshalCompressed(f *testing.F) {
	rng := rand.New(rand.NewSource(5))
	good, err := CompressWords("seed", isa.TextBase, synthText(rng, 128))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good.Marshal())
	f.Add([]byte{})
	f.Add(make([]byte, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := UnmarshalCompressed("fuzz", data)
		if err != nil {
			return
		}
		_, _ = c.Decompress()
	})
}

// FuzzDecodeCorruptRegion corrupts the compressed region of a valid image:
// the decoder must fail cleanly or produce bounded output, never panic or
// loop.
func FuzzDecodeCorruptRegion(f *testing.F) {
	rng := rand.New(rand.NewSource(6))
	base, err := CompressWords("seed", isa.TextBase, synthText(rng, 256))
	if err != nil {
		f.Fatal(err)
	}
	blob := base.Marshal()
	f.Add(uint16(0), byte(0xFF))
	f.Add(uint16(100), byte(0x01))
	f.Fuzz(func(t *testing.T, pos uint16, xor byte) {
		mut := append([]byte(nil), blob...)
		if len(mut) == 0 || xor == 0 {
			return
		}
		mut[int(pos)%len(mut)] ^= xor
		c, err := UnmarshalCompressed("fuzz", mut)
		if err != nil {
			return
		}
		var out, ref [BlockInstrs]isa.Word
		for b := 0; b < c.NumBlocks(); b++ {
			// Both decoders must survive corruption; when both accept a
			// block they must still agree word for word.
			errFast := c.DecodeBlockFast(b, &out)
			errRef := c.DecodeBlockReference(b, &ref)
			if errFast == nil && errRef == nil && out != ref {
				t.Fatalf("block %d of corrupted image: fast %x, reference %x", b, out, ref)
			}
		}
	})
}

// FuzzDecodeEquivalence compresses arbitrary programs and asserts the
// fast table-driven decoder is word-for-word identical to the reference
// tag walker across every decode entry point: whole-image Decompress,
// per-block DecodeBlock (including raw and padded tail blocks), and
// address-wise DecodeAt. This is the CI-enforced invariant that lets the
// serve path run the fast decoder by default.
func FuzzDecodeEquivalence(f *testing.F) {
	rng := rand.New(rand.NewSource(13))
	seed := func(text []isa.Word) {
		raw := make([]byte, 4*len(text))
		for i, w := range text {
			raw[4*i] = byte(w >> 24)
			raw[4*i+1] = byte(w >> 16)
			raw[4*i+2] = byte(w >> 8)
			raw[4*i+3] = byte(w)
		}
		f.Add(raw, uint8(0))
	}
	seed(synthText(rng, 96))
	seed(make([]isa.Word, 40))   // all-zero: maximally compressible
	seed([]isa.Word{0xDEADBEEF}) // single instruction, padded tail
	f.Add([]byte{0x01, 0x02, 0x03}, uint8(5))
	f.Fuzz(func(t *testing.T, data []byte, trim uint8) {
		// Reassemble the bytes into an instruction stream; trim varies
		// the length mod the group size so padded tails are exercised.
		// The word cap bounds per-exec cost: the engine replays the body
		// thousands of times when minimizing an interesting input, so a
		// cheap body is what keeps the CI fuzz budget productive. Six
		// blocks still span multiple groups, raw blocks and padded tails.
		n := (len(data) + 3) / 4
		if n == 0 {
			n = 1
		}
		if n > 6*BlockInstrs {
			n = 6 * BlockInstrs
		}
		if cut := int(trim) % GroupInstrs; n > cut {
			n -= cut
		}
		text := make([]isa.Word, n)
		for i := range text {
			var w uint32
			for j := 0; j < 4; j++ {
				w <<= 8
				if o := 4*i + j; o < len(data) {
					w |= uint32(data[o])
				}
			}
			text[i] = w
		}
		c, err := CompressWords("fuzz", isa.TextBase, text)
		if err != nil {
			t.Fatalf("compress: %v", err)
		}

		// Whole image: both decoders must succeed and agree.
		fast, err := c.Decompress()
		if err != nil {
			t.Fatalf("fast decompress: %v", err)
		}
		if len(fast) != n {
			t.Fatalf("fast decoded %d words, want %d", len(fast), n)
		}
		var refBlk, fastBlk [BlockInstrs]isa.Word
		var pos [BlockInstrs]uint16
		for b := 0; b < c.NumBlocks(); b++ {
			if err := c.DecodeBlockReference(b, &refBlk); err != nil {
				t.Fatalf("reference block %d: %v", b, err)
			}
			// The positions variant IS the fast path, plus the
			// byte-arrival contract: consumed bits == encoder cumBits.
			if err := c.DecodeBlockPositions(b, &fastBlk, &pos); err != nil {
				t.Fatalf("fast block %d: %v", b, err)
			}
			if refBlk != fastBlk {
				t.Fatalf("block %d: fast %x, reference %x", b, fastBlk, refBlk)
			}
			for i := 0; i < BlockInstrs; i++ {
				if want := c.InstrReadyBytes(b, i); int(pos[i]+7)/8 != want {
					t.Fatalf("block %d instr %d: fast consumes %d bits (%d bytes), InstrReadyBytes %d",
						b, i, pos[i], int(pos[i]+7)/8, want)
				}
			}
			for i := 0; i < BlockInstrs; i++ {
				idx := b*BlockInstrs + i
				if idx >= n {
					break
				}
				if fastBlk[i] != text[idx] {
					t.Fatalf("word %d: decoded %#x, original %#x", idx, fastBlk[i], text[idx])
				}
			}
		}
		// Address-wise: DecodeAt under both modes on a sample of addresses.
		prev := SetDecodeMode(DecodeReference)
		defer SetDecodeMode(prev)
		for _, idx := range []int{0, n / 2, n - 1} {
			addr := isa.TextBase + uint32(4*idx)
			wRef, err := c.DecodeAt(addr)
			if err != nil {
				t.Fatalf("reference DecodeAt %#x: %v", addr, err)
			}
			if wRef != text[idx] {
				t.Fatalf("reference DecodeAt %#x = %#x, want %#x", addr, wRef, text[idx])
			}
		}
		SetDecodeMode(DecodeFast)
		for _, idx := range []int{0, n / 2, n - 1} {
			addr := isa.TextBase + uint32(4*idx)
			wFast, err := c.DecodeAt(addr)
			if err != nil {
				t.Fatalf("fast DecodeAt %#x: %v", addr, err)
			}
			if wFast != text[idx] {
				t.Fatalf("fast DecodeAt %#x = %#x, want %#x", addr, wFast, text[idx])
			}
		}
	})
}

// FuzzBitStream checks writer/reader agreement on arbitrary field layouts.
func FuzzBitStream(f *testing.F) {
	f.Add(uint32(0xDEADBEEF), uint8(7), uint32(0x1234), uint8(13))
	f.Fuzz(func(t *testing.T, v1 uint32, n1 uint8, v2 uint32, n2 uint8) {
		a, b := uint(n1)%32+1, uint(n2)%32+1
		var w bitWriter
		w.writeBits(v1, a)
		w.writeBits(v2, b)
		w.align()
		r := bitReader{buf: w.bytes()}
		m1 := uint32(1)<<a - 1
		if a == 32 {
			m1 = ^uint32(0)
		}
		m2 := uint32(1)<<b - 1
		if b == 32 {
			m2 = ^uint32(0)
		}
		if got := r.readBits(a); got != v1&m1 {
			t.Fatalf("field1 %#x, want %#x", got, v1&m1)
		}
		if got := r.readBits(b); got != v2&m2 {
			t.Fatalf("field2 %#x, want %#x", got, v2&m2)
		}
	})
}
