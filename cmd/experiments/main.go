// Command experiments regenerates every table and figure of the paper's
// evaluation section.
//
// Usage:
//
//	experiments [-max N] [-only table5,table10]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"codepack/internal/harness"
)

func main() {
	maxInstr := flag.Uint64("max", harness.DefaultMaxInstr,
		"committed instructions per simulation")
	only := flag.String("only", "", "comma-separated table ids (e.g. table3,figure2)")
	format := flag.String("format", "text", "output format: text, markdown or csv")
	flag.Parse()

	s := harness.NewSuite(*maxInstr)
	type exp struct {
		id  string
		run func() (*harness.Table, error)
	}
	experiments := []exp{
		{"table1", s.Table1},
		{"table2", func() (*harness.Table, error) { return harness.Table2(), nil }},
		{"table3", s.Table3},
		{"table4", s.Table4},
		{"table5", s.Table5},
		{"table6", s.Table6},
		{"table7", s.Table7},
		{"table8", s.Table8},
		{"table9", s.Table9},
		{"table10", s.Table10},
		{"table11", s.Table11},
		{"table12", s.Table12},
		{"figure2", func() (*harness.Table, error) { return harness.Figure2() }},
		{"related", s.RelatedWork},
		{"dicttransfer", s.DictTransfer},
		{"seeds", s.SeedStability},
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id != "" {
			want[strings.TrimSpace(id)] = true
		}
	}
	for _, e := range experiments {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		start := time.Now()
		t, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.id, err)
			os.Exit(1)
		}
		switch *format {
		case "markdown":
			fmt.Println(t.Markdown())
		case "csv":
			fmt.Println(t.CSV())
		default:
			fmt.Println(t)
			fmt.Printf("(%s in %.1fs)\n\n", e.id, time.Since(start).Seconds())
		}
	}
}
