// Package trace is cpackd's dependency-free request-tracing subsystem.
//
// Two layers build on each other:
//
//   - A per-request ID (Header, NewID, WithID/ID) that ties one
//     request's access-log lines together across instances. The ID
//     arrives on (or is minted for) every inbound request, rides the
//     request context through handlers and worker pools, and is
//     forwarded on outbound peer calls.
//
//   - Spans (Span, Start, Tracer): every pipeline stage a request
//     passes through — HTTP handling, queue wait, cache lookups, peer
//     fetches, compression phases, replication, anti-entropy — opens a
//     span carrying a name, start/end times, attributes and a parent
//     link. Completed traces land in a bounded ring buffer (Tracer)
//     served at GET /debug/trace/recent, and the calling span's ID is
//     forwarded on peer hops (SpanHeader) so one logical request can be
//     stitched together from every node it touched.
//
// Tracing is nil-safe by construction: with no Tracer configured, Start
// returns a nil *Span and every Span method is a no-op, so call sites
// never branch on whether tracing is on.
package trace

import (
	"context"
	"crypto/rand"
	"encoding/hex"
)

// Header is the HTTP header the request ID travels in, both inbound
// (client- or peer-supplied) and outbound (echoed on every response,
// forwarded on every peer call).
const Header = "X-Request-ID"

// maxIDLen bounds accepted IDs so a hostile client cannot bloat logs.
const maxIDLen = 64

type ctxKey struct{}

// NewID returns a fresh 16-hex-character request ID.
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; a fixed
		// fallback keeps tracing non-fatal by construction.
		return "rand-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// WithID returns ctx carrying the request ID.
func WithID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxKey{}, id)
}

// ID returns the request ID carried by ctx, or "" if there is none.
func ID(ctx context.Context) string {
	id, _ := ctx.Value(ctxKey{}).(string)
	return id
}

// Sanitize validates a client-supplied ID: printable ASCII minus
// whitespace and quotes, at most maxIDLen characters. Anything else
// returns "" and the caller mints a fresh ID instead — a malformed
// header must never be able to corrupt a log line.
func Sanitize(id string) string {
	if id == "" || len(id) > maxIDLen {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c <= ' ' || c > '~' || c == '"' || c == '\\' {
			return ""
		}
	}
	return id
}
