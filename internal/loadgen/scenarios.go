package loadgen

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"iter"
	"math/rand"

	"codepack"
	"codepack/internal/workload"
)

// Wire bodies. Marshalled with encoding/json over structs, so the byte
// stream is deterministic (field order is fixed by declaration).
type compressBody struct {
	Asm string `json:"asm"`
}

type verifyBody struct {
	Asm string `json:"asm"`
}

type simulateBody struct {
	Asm      string `json:"asm"`
	Model    string `json:"model"`
	MaxInstr uint64 `json:"max_instr"`
}

type decompressBody struct {
	CompressedB64 string `json:"compressed_b64"`
}

type benchBody struct {
	Benchmark string `json:"benchmark"`
}

func mustBody(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("loadgen: marshal request body: %v", err))
	}
	return b
}

// compressBodies pre-marshals one compress body per corpus program.
func compressBodies(seed int64, n int) [][]byte {
	out := make([][]byte, n)
	for i, src := range workload.CorpusSources(seed, n) {
		out[i] = mustBody(compressBody{Asm: src})
	}
	return out
}

// simulateBudget keeps generated simulate requests heavy enough to occupy
// the heavy pool but far below the server's default budget cap.
const simulateBudget = 50_000

// --- uniform -------------------------------------------------------------

type uniform struct{ corpus int }

func newUniform() uniform { return uniform{corpus: 128} }

func (uniform) Name() string { return "uniform" }

func (s uniform) Describe() string {
	return fmt.Sprintf("compress requests spread uniformly over %d distinct programs: "+
		"every digest equally popular, the cache's steady state", s.corpus)
}

func (s uniform) Requests(seed int64) iter.Seq[Request] {
	return func(yield func(Request) bool) {
		bodies := compressBodies(seed, s.corpus)
		rng := rand.New(rand.NewSource(seed))
		for {
			id := rng.Intn(s.corpus)
			if !yield(Request{Op: "compress", Key: progKey(id), Body: bodies[id]}) {
				return
			}
		}
	}
}

// --- zipfian -------------------------------------------------------------

type zipfian struct {
	corpus int
	s, v   float64
}

// newZipfian picks a skew where the hottest ~10% of programs draw the
// large majority of requests — the cache-friendly hot-set shape real
// content-addressed traffic shows.
func newZipfian() zipfian { return zipfian{corpus: 256, s: 1.2, v: 1} }

func (zipfian) Name() string { return "zipfian" }

func (s zipfian) Describe() string {
	return fmt.Sprintf("compress requests over %d programs with zipf(s=%.1f) popularity: "+
		"a hot set dominates, repeats ride the content-addressed cache", s.corpus, s.s)
}

func (s zipfian) Requests(seed int64) iter.Seq[Request] {
	return func(yield func(Request) bool) {
		bodies := compressBodies(seed, s.corpus)
		rng := rand.New(rand.NewSource(seed))
		z := rand.NewZipf(rng, s.s, s.v, uint64(s.corpus-1))
		for {
			id := int(z.Uint64()) // rank 0 is the hottest program
			if !yield(Request{Op: "compress", Key: progKey(id), Body: bodies[id]}) {
				return
			}
		}
	}
}

// --- thrash --------------------------------------------------------------

type thrash struct{}

func newThrash() thrash { return thrash{} }

func (thrash) Name() string { return "thrash" }

func (thrash) Describe() string {
	return "every request compresses a never-seen program (unique digest): " +
		"zero cache reuse, maximum eviction pressure, adversarial to the LRU"
}

func (thrash) Requests(seed int64) iter.Seq[Request] {
	return func(yield func(Request) bool) {
		for id := 0; ; id++ {
			body := mustBody(compressBody{Asm: workload.CorpusSource(seed, id)})
			if !yield(Request{Op: "compress", Key: progKey(id), Body: body}) {
				return
			}
		}
	}
}

// --- coldstart -----------------------------------------------------------

type coldstart struct{ corpus int }

func newColdstart() coldstart { return coldstart{corpus: 192} }

func (coldstart) Name() string { return "coldstart" }

func (s coldstart) Describe() string {
	return fmt.Sprintf("an all-miss storm: the first %d requests each hit a distinct program "+
		"(a restarted instance's empty cache), then traffic settles into uniform repeats", s.corpus)
}

func (s coldstart) Requests(seed int64) iter.Seq[Request] {
	return func(yield func(Request) bool) {
		bodies := compressBodies(seed, s.corpus)
		rng := rand.New(rand.NewSource(seed))
		// The storm front: every program exactly once, shuffled.
		for _, id := range rng.Perm(s.corpus) {
			if !yield(Request{Op: "compress", Key: progKey(id), Body: bodies[id]}) {
				return
			}
		}
		for {
			id := rng.Intn(s.corpus)
			if !yield(Request{Op: "compress", Key: progKey(id), Body: bodies[id]}) {
				return
			}
		}
	}
}

// --- flashcrowd ----------------------------------------------------------

type flashcrowd struct {
	corpus   int
	hotFrac  float64
	hotBench string // suite benchmark name the crowd hammers
}

// newFlashcrowd hammers one digest with 95% of traffic. The hot request
// names a suite benchmark — the largest Table 1 stand-in — so the body
// stays a few bytes on the wire while the server's first fill is a full
// generate-and-compress of a ~484KB image: the opening burst piles onto
// one in-flight fill, which is exactly the singleflight coalescing (and,
// in a cluster, the peer stampede) the scenario exists to expose.
func newFlashcrowd() flashcrowd {
	return flashcrowd{corpus: 64, hotFrac: 0.95, hotBench: "vortex"}
}

func (flashcrowd) Name() string { return "flashcrowd" }

func (s flashcrowd) Describe() string {
	return fmt.Sprintf("%.0f%% of requests hammer one large benchmark (%s), the rest spread over %d "+
		"small programs: stresses singleflight miss coalescing and the warm tier's stampede behaviour",
		100*s.hotFrac, s.hotBench, s.corpus)
}

func (s flashcrowd) Requests(seed int64) iter.Seq[Request] {
	return func(yield func(Request) bool) {
		hot := mustBody(benchBody{Benchmark: s.hotBench})
		bodies := compressBodies(seed, s.corpus)
		rng := rand.New(rand.NewSource(seed))
		for {
			var req Request
			if rng.Float64() < s.hotFrac {
				req = Request{Op: "compress", Key: "hot", Body: hot}
			} else {
				id := rng.Intn(s.corpus)
				req = Request{Op: "compress", Key: progKey(id), Body: bodies[id]}
			}
			if !yield(req) {
				return
			}
		}
	}
}

// --- churn ---------------------------------------------------------------

type churn struct{ corpus int }

// newChurn keeps the working set small so a replicated cluster holds every
// digest on R members after one pass: from then on each request should be
// served warm — locally or by a surviving replica — even while members
// crash and rejoin underneath the load.
func newChurn() churn { return churn{corpus: 48} }

func (churn) Name() string { return "churn" }

func (s churn) Describe() string {
	return fmt.Sprintf("one warm pass over a %d-program working set, then uniform repeats: "+
		"against a replicated cluster under member churn, the warm-hit ratio is the proof "+
		"that failover, handoff and read-repair keep the tier serving without recompression", s.corpus)
}

func (s churn) Requests(seed int64) iter.Seq[Request] {
	return func(yield func(Request) bool) {
		bodies := compressBodies(seed, s.corpus)
		rng := rand.New(rand.NewSource(seed))
		// Warm pass: every program exactly once (shuffled), so the tier
		// holds the full working set before churn starts killing members.
		for _, id := range rng.Perm(s.corpus) {
			if !yield(Request{Op: "compress", Key: progKey(id), Body: bodies[id]}) {
				return
			}
		}
		for {
			id := rng.Intn(s.corpus)
			if !yield(Request{Op: "compress", Key: progKey(id), Body: bodies[id]}) {
				return
			}
		}
	}
}

// --- mixed ---------------------------------------------------------------

type mixed struct{ corpus int }

func newMixed() mixed { return mixed{corpus: 96} }

func (mixed) Name() string { return "mixed" }

func (s mixed) Describe() string {
	return fmt.Sprintf("a production blend over %d programs: 40%% compress, 20%% verify, "+
		"20%% decompress, 20%% simulate — exercises both worker pools and the shed path", s.corpus)
}

func (s mixed) Requests(seed int64) iter.Seq[Request] {
	return func(yield func(Request) bool) {
		srcs := workload.CorpusSources(seed, s.corpus)
		compress := make([][]byte, len(srcs))
		verify := make([][]byte, len(srcs))
		simulate := make([][]byte, len(srcs))
		for i, src := range srcs {
			compress[i] = mustBody(compressBody{Asm: src})
			verify[i] = mustBody(verifyBody{Asm: src})
			simulate[i] = mustBody(simulateBody{Asm: src, Model: "codepack", MaxInstr: simulateBudget})
		}
		// Decompress bodies carry real compressed payloads; a handful is
		// enough (the endpoint has no cache to vary).
		const nDecomp = 8
		decompress := make([][]byte, 0, nDecomp)
		for i := 0; i < nDecomp && i < len(srcs); i++ {
			im, err := codepack.Assemble(progKey(i), srcs[i])
			if err != nil {
				panic(fmt.Sprintf("loadgen: corpus program does not assemble: %v", err))
			}
			comp, err := codepack.Compress(im)
			if err != nil {
				panic(fmt.Sprintf("loadgen: corpus program does not compress: %v", err))
			}
			decompress = append(decompress, mustBody(decompressBody{
				CompressedB64: base64.StdEncoding.EncodeToString(comp.Marshal()),
			}))
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; ; i++ {
			id := rng.Intn(s.corpus)
			var req Request
			switch i % 5 {
			case 0, 1:
				req = Request{Op: "compress", Key: progKey(id), Body: compress[id]}
			case 2:
				req = Request{Op: "verify", Key: progKey(id), Body: verify[id]}
			case 3:
				d := rng.Intn(len(decompress))
				req = Request{Op: "decompress", Key: progKey(d), Body: decompress[d]}
			default:
				req = Request{Op: "simulate", Key: progKey(id), Body: simulate[id]}
			}
			if !yield(req) {
				return
			}
		}
	}
}
