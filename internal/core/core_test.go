package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"codepack/internal/isa"
)

func TestBitStreamRoundTrip(t *testing.T) {
	f := func(vals []uint16, widths []uint8) bool {
		if len(vals) == 0 {
			return true
		}
		var w bitWriter
		var want []uint32
		var ns []uint
		for i, v := range vals {
			n := uint(1)
			if i < len(widths) {
				n = uint(widths[i])%16 + 1
			}
			w.writeBits(uint32(v), n)
			want = append(want, uint32(v)&(1<<n-1))
			ns = append(ns, n)
		}
		w.align()
		r := bitReader{buf: w.bytes()}
		for i, n := range ns {
			if got := r.readBits(n); got != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestIndexEntryPackUnpack(t *testing.T) {
	f := func(start, length uint32, r0, r1 bool) bool {
		e := IndexEntry{
			Block0Start: start & maxBlock0Start,
			Block0Len:   length & maxBlock0Len,
			Raw0:        r0,
			Raw1:        r1,
		}
		return UnpackIndexEntry(e.Pack()) == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClassGeometry(t *testing.T) {
	// Codewords must span 2..11 bits with 2-or-3-bit tags (paper §3.1).
	if codewordBits(class0) != 2 {
		t.Errorf("class0 = %d bits, want 2", codewordBits(class0))
	}
	if codewordBits(class3) != MaxCodewordBits {
		t.Errorf("class3 = %d bits, want %d", codewordBits(class3), MaxCodewordBits)
	}
	if RawCodewordBits != 19 {
		t.Errorf("raw = %d bits, want 19", RawCodewordBits)
	}
	total := 0
	for c := class0; c <= class3; c++ {
		total += classSize[c]
	}
	if total != DictCapacity {
		t.Errorf("class sizes sum to %d, want %d", total, DictCapacity)
	}
	if DictCapacity >= 512 {
		t.Errorf("dictionary capacity %d, paper requires < 512", DictCapacity)
	}
	// Slot<->class mapping must be mutually consistent.
	for s := 0; s < DictCapacity; s++ {
		c, idx := classOfSlot(s)
		if classBase[c]+idx != s {
			t.Fatalf("slot %d maps to class %d idx %d which maps back to %d",
				s, c, idx, classBase[c]+idx)
		}
		if idx < 0 || idx >= classSize[c] {
			t.Fatalf("slot %d: index %d out of class %d", s, idx, c)
		}
	}
}

func TestDictBuildRanking(t *testing.T) {
	counts := map[uint16]int{
		0x1111: 100, 0x2222: 90, 0x3333: 80, 0x4444: 1,
	}
	d := BuildDict(counts, BuildDictOptions{})
	if d.Lookup(0x1111) != 0 {
		t.Errorf("most frequent value not in slot 0: %d", d.Lookup(0x1111))
	}
	// With few values, even a singleton gets one of the small-class
	// slots (only class 3 applies the break-even exclusion).
	if s := d.Lookup(0x4444); s < 1 || s > 8 {
		t.Errorf("singleton in slot %d, want a class-1 slot", s)
	}
}

func TestDictBuildSingletonPolicy(t *testing.T) {
	// Fill classes 0-2 (73 slots) with frequent values, then check that
	// singletons do not get class-3 slots but doubletons do.
	counts := make(map[uint16]int)
	for i := 0; i < 73; i++ {
		counts[uint16(i)] = 1000 - i
	}
	counts[0x8001] = 1 // singleton: excluded
	counts[0x8002] = 2 // break-even: included
	d := BuildDict(counts, BuildDictOptions{})
	if d.Lookup(0x8001) != -1 {
		t.Error("singleton got a class-3 slot")
	}
	if d.Lookup(0x8002) == -1 {
		t.Error("doubleton should get a class-3 slot")
	}
}

func TestDictZeroSlot(t *testing.T) {
	counts := map[uint16]int{0x0000: 5, 0xAAAA: 500}
	d := BuildDict(counts, BuildDictOptions{ForceZeroSlot0: true})
	if d.Lookup(0) != 0 {
		t.Fatalf("zero not pinned to slot 0: %d", d.Lookup(0))
	}
	if d.Lookup(0xAAAA) != 1 {
		t.Fatalf("most frequent nonzero not in slot 1: %d", d.Lookup(0xAAAA))
	}
}

func TestNewDictRejectsBad(t *testing.T) {
	if _, err := NewDict(make([]uint16, DictCapacity+1)); err == nil {
		t.Error("oversized dictionary accepted")
	}
	if _, err := NewDict([]uint16{7, 7}); err == nil {
		t.Error("duplicate entries accepted")
	}
}

// synthText builds a skewed instruction stream like compiled code.
func synthText(rng *rand.Rand, n int) []isa.Word {
	common := []isa.Word{0x24420004, 0x8FBF001C, 0x00851021, 0x3C040040, 0xAFBF001C}
	text := make([]isa.Word, n)
	for i := range text {
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			text[i] = common[rng.Intn(len(common))]
		case 4, 5, 6:
			text[i] = common[rng.Intn(len(common))]&0xFFFF0000 | isa.Word(rng.Intn(64)*4)
		case 7, 8:
			text[i] = isa.Word(rng.Intn(1<<16)) << 16 // low half zero
		default:
			text[i] = isa.Word(rng.Uint32()) // incompressible
		}
	}
	return text
}

func TestCompressRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 15, 16, 17, 32, 33, 100, 1000, 4096} {
		text := synthText(rng, n)
		c, err := CompressWords("t", isa.TextBase, text)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		out, err := c.Decompress()
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(out) != n {
			t.Fatalf("n=%d: decompressed %d words", n, len(out))
		}
		for i := range out {
			if out[i] != text[i] {
				t.Fatalf("n=%d: word %d: got %#x want %#x", n, i, out[i], text[i])
			}
		}
	}
}

func TestCompressRoundTripProperty(t *testing.T) {
	f := func(seed int64, sz uint16) bool {
		n := int(sz)%2000 + 1
		text := synthText(rand.New(rand.NewSource(seed)), n)
		c, err := CompressWords("q", isa.TextBase, text)
		if err != nil {
			return false
		}
		out, err := c.Decompress()
		if err != nil || len(out) != n {
			return false
		}
		for i := range out {
			if out[i] != text[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeAt(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	text := synthText(rng, 500)
	c, err := CompressWords("t", isa.TextBase, text)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 1, 15, 16, 31, 32, 255, 499} {
		w, err := c.DecodeAt(isa.TextBase + uint32(i*4))
		if err != nil {
			t.Fatalf("i=%d: %v", i, err)
		}
		if w != text[i] {
			t.Fatalf("i=%d: got %#x want %#x", i, w, text[i])
		}
	}
	if _, err := c.DecodeAt(isa.TextBase + 500*4); err == nil {
		t.Error("address past end accepted")
	}
	if _, err := c.DecodeAt(isa.TextBase + 2); err == nil {
		t.Error("unaligned address accepted")
	}
}

func TestRandomDataStoredRaw(t *testing.T) {
	// Fully random words are incompressible: most blocks should be raw
	// and the ratio should stay >= ~1 net of overheads being bounded.
	rng := rand.New(rand.NewSource(3))
	text := make([]isa.Word, 2048)
	for i := range text {
		text[i] = isa.Word(rng.Uint32())
	}
	c, err := CompressWords("rand", isa.TextBase, text)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if out[i] != text[i] {
			t.Fatalf("word %d mismatch", i)
		}
	}
	s := c.Stats()
	if s.RawBlockInstrs == 0 {
		t.Error("expected some raw blocks for random input")
	}
	if r := s.Ratio(); r < 0.95 {
		t.Errorf("random data compressed to %.2f, expected near/above 1", r)
	}
}

func TestHighlyRegularCompressesWell(t *testing.T) {
	text := make([]isa.Word, 4096)
	for i := range text {
		text[i] = 0x24420000 // addiu v0,v0,0 everywhere
	}
	c, err := CompressWords("reg", isa.TextBase, text)
	if err != nil {
		t.Fatal(err)
	}
	if r := c.Stats().Ratio(); r > 0.25 {
		t.Errorf("uniform text ratio %.2f, want < 0.25", r)
	}
}

func TestIndexTableConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	text := synthText(rng, 3000)
	c, err := CompressWords("idx", isa.TextBase, text)
	if err != nil {
		t.Fatal(err)
	}
	// LookupBlock must agree with BlockExtent for every block, and the
	// region must tile exactly.
	var next uint32
	for b := 0; b < c.NumBlocks(); b++ {
		start, size, raw, err := c.BlockExtent(b)
		if err != nil {
			t.Fatal(err)
		}
		ls, lraw, err := c.LookupBlock(b)
		if err != nil {
			t.Fatal(err)
		}
		if ls != start || lraw != raw {
			t.Fatalf("block %d: index table says %d/%v, extent says %d/%v",
				b, ls, lraw, start, raw)
		}
		if start != next {
			t.Fatalf("block %d starts at %d, expected %d (no gaps)", b, start, next)
		}
		next = start + size
	}
	if int(next) != len(c.Region) {
		t.Fatalf("blocks cover %d bytes, region is %d", next, len(c.Region))
	}
}

func TestInstrReadyBytesMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	text := synthText(rng, 640)
	c, err := CompressWords("mono", isa.TextBase, text)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < c.NumBlocks(); b++ {
		_, size, _, _ := c.BlockExtent(b)
		prev := 0
		for i := 0; i < BlockInstrs; i++ {
			rb := c.InstrReadyBytes(b, i)
			if rb < prev {
				t.Fatalf("block %d: ready bytes not monotone at %d", b, i)
			}
			if rb < 1 || rb > int(size) {
				t.Fatalf("block %d instr %d: ready bytes %d outside (0,%d]",
					b, i, rb, size)
			}
			prev = rb
		}
	}
}

func TestCompositionSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	text := synthText(rng, 5000)
	c, err := CompressWords("comp", isa.TextBase, text)
	if err != nil {
		t.Fatal(err)
	}
	comp := c.Stats().Composition()
	sum := comp.IndexTable + comp.Dictionary + comp.Tags + comp.DictIndices +
		comp.RawTags + comp.RawBits + comp.Pad
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("composition sums to %.4f, want 1", sum)
	}
	if len(comp.String()) == 0 {
		t.Error("empty composition string")
	}
}

func TestEmptyTextRejected(t *testing.T) {
	if _, err := CompressWords("empty", isa.TextBase, nil); err == nil {
		t.Fatal("empty text accepted")
	}
}

func TestCompressWithForeignDictsRoundTrips(t *testing.T) {
	rngA := rand.New(rand.NewSource(31))
	rngB := rand.New(rand.NewSource(77))
	donor, err := CompressWords("donor", isa.TextBase, synthText(rngA, 1024))
	if err != nil {
		t.Fatal(err)
	}
	text := synthText(rngB, 512)
	c, err := CompressWordsWith("host", isa.TextBase, text, Options{
		FixedHigh: donor.High,
		FixedLow:  donor.Low,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if out[i] != text[i] {
			t.Fatalf("word %d corrupted with foreign dictionaries", i)
		}
	}
	// Foreign dictionaries should compress no better than native ones.
	own, err := CompressWords("own", isa.TextBase, text)
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats().Ratio() < own.Stats().Ratio()-0.001 {
		t.Errorf("foreign dicts ratio %.4f beat own %.4f",
			c.Stats().Ratio(), own.Stats().Ratio())
	}
}
