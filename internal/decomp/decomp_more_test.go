package decomp

import (
	"math/rand"
	"testing"

	"codepack/internal/core"
	"codepack/internal/isa"
	"codepack/internal/mem"
)

// randComp builds a compressed image with mixed compressible and raw
// content for engine stress tests.
func randComp(t *testing.T, seed int64, n int) *core.Compressed {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	common := []isa.Word{0x24420004, 0x8FBF001C, 0x00851021}
	text := make([]isa.Word, n)
	for i := range text {
		if rng.Intn(3) == 0 {
			text[i] = isa.Word(rng.Uint32())
		} else {
			text[i] = common[rng.Intn(len(common))]
		}
	}
	c, err := core.CompressWords("rand", isa.TextBase, text)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestCodePackNarrowBus: the engine must work on a 16-bit bus, and the
// critical path must be slower than on the 64-bit bus.
func TestCodePackNarrowBus(t *testing.T) {
	c := paperComp(t)
	wide, err := NewCodePack(c, newBus(t, mem.Baseline()), BaselineCodePack())
	if err != nil {
		t.Fatal(err)
	}
	narrowBus := newBus(t, mem.Config{WidthBytes: 2, FirstLatency: 10, BeatLatency: 2})
	narrow, err := NewCodePack(c, narrowBus, BaselineCodePack())
	if err != nil {
		t.Fatal(err)
	}
	wf := wide.FetchLine(0, isa.TextBase, 4)
	nf := narrow.FetchLine(0, isa.TextBase, 4)
	if nf.Ready[4] <= wf.Ready[4] {
		t.Fatalf("narrow bus critical %d not slower than wide %d", nf.Ready[4], wf.Ready[4])
	}
	// On a 2-byte bus, a 3-byte instruction needs 2 beats; decode still
	// keeps up at 1/cycle, so the stream is arrival-bound.
	for i := 1; i < LineInstrs; i++ {
		if nf.Ready[i] < nf.Ready[i-1] {
			t.Fatal("per-instruction readiness must be monotone in block order")
		}
	}
}

// TestRawBlockTiming: raw blocks carry 4 bytes/instruction and skip
// dictionary decode but still flow through the same engine path.
func TestRawBlockTiming(t *testing.T) {
	// All-random text: every block stored raw.
	rng := rand.New(rand.NewSource(9))
	text := make([]isa.Word, 64)
	for i := range text {
		text[i] = isa.Word(rng.Uint32())
	}
	c, err := core.CompressWords("raw", isa.TextBase, text)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, raw, _ := c.BlockExtent(0); !raw {
		t.Skip("block 0 unexpectedly compressed")
	}
	eng, err := NewCodePack(c, newBus(t, mem.Baseline()), BaselineCodePack())
	if err != nil {
		t.Fatal(err)
	}
	fill := eng.FetchLine(0, isa.TextBase, 0)
	// 64-byte raw block on an 8-byte bus: beats at 20..34 (after the
	// 10-cycle index fetch); instr 0 needs 4 bytes -> beat 0 -> decode 21.
	if fill.Ready[0] != 21 {
		t.Fatalf("raw block first instruction at %d, want 21", fill.Ready[0])
	}
	if fill.Done < fill.Ready[0] {
		t.Fatal("done before first ready")
	}
}

// TestEngineManyMissesConsistent drives thousands of random misses and
// checks global invariants: readiness monotone per fill, never before the
// request cycle, and stats that add up.
func TestEngineManyMissesConsistent(t *testing.T) {
	c := randComp(t, 10, 4096)
	for _, cfg := range []CodePackConfig{
		BaselineCodePack(), OptimizedCodePack(),
		{DecodeRate: 16, PerfectIndex: true},
		{DecodeRate: 4, IndexCacheLines: 16, IndexEntriesPerLine: 2},
	} {
		eng, err := NewCodePack(c, newBus(t, mem.Baseline()), cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(11))
		now := uint64(0)
		nLines := 4096 / LineInstrs
		for i := 0; i < 3000; i++ {
			line := uint32(rng.Intn(nLines)) * LineBytes
			fill := eng.FetchLine(now, isa.TextBase+line, rng.Intn(LineInstrs))
			for j, r := range fill.Ready {
				if r <= now {
					t.Fatalf("cfg %+v: instr %d ready at %d, miss at %d", cfg, j, r, now)
				}
				if r > fill.Done {
					t.Fatalf("cfg %+v: ready %d after done %d", cfg, r, fill.Done)
				}
			}
			now = fill.Done + uint64(rng.Intn(20))
		}
		s := eng.Stats()
		if s.Misses != 3000 {
			t.Fatalf("misses %d, want 3000", s.Misses)
		}
		if s.BufferHits+s.BlockReads != s.Misses {
			t.Fatalf("buffer hits %d + block reads %d != misses %d",
				s.BufferHits, s.BlockReads, s.Misses)
		}
		if !cfg.PerfectIndex && s.IndexLookups != s.BlockReads {
			t.Fatalf("index lookups %d != block reads %d", s.IndexLookups, s.BlockReads)
		}
	}
}

// TestWiderDecodeNeverSlowerAcrossBlocks: property over many random blocks
// and critical offsets.
func TestWiderDecodeNeverSlowerAcrossBlocks(t *testing.T) {
	c := randComp(t, 12, 2048)
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		line := uint32(rng.Intn(2048/LineInstrs)) * LineBytes
		crit := rng.Intn(LineInstrs)
		var prev LineFill
		for i, rate := range []int{1, 2, 4, 16} {
			cfg := CodePackConfig{DecodeRate: rate, PerfectIndex: true}
			eng, err := NewCodePack(c, newBus(t, mem.Baseline()), cfg)
			if err != nil {
				t.Fatal(err)
			}
			fill := eng.FetchLine(0, isa.TextBase+line, crit)
			if i > 0 {
				for j := range fill.Ready {
					if fill.Ready[j] > prev.Ready[j] {
						t.Fatalf("rate %d slower at instr %d (%d > %d)",
							rate, j, fill.Ready[j], prev.Ready[j])
					}
				}
			}
			prev = fill
		}
	}
}
