package isa

import "fmt"

// Disasm renders the instruction word at pc as assembler text in the same
// syntax accepted by package asm.
func Disasm(pc uint32, w Word) string {
	in := Decode(w)
	rs, rt, rd := RegName(int(in.Rs)), RegName(int(in.Rt)), RegName(int(in.Rd))
	switch in.Op {
	case OpInvalid:
		return fmt.Sprintf(".word 0x%08x", w)
	case OpSLL:
		if w == 0 {
			return "nop"
		}
		fallthrough
	case OpSRL, OpSRA:
		return fmt.Sprintf("%v %s, %s, %d", in.Op, rd, rt, in.Shamt)
	case OpSLLV, OpSRLV, OpSRAV:
		return fmt.Sprintf("%v %s, %s, %s", in.Op, rd, rt, rs)
	case OpJR:
		return fmt.Sprintf("jr %s", rs)
	case OpJALR:
		return fmt.Sprintf("jalr %s, %s", rd, rs)
	case OpSYSCALL:
		return "syscall"
	case OpMFHI, OpMFLO:
		return fmt.Sprintf("%v %s", in.Op, rd)
	case OpMULT, OpMULTU, OpDIV, OpDIVU:
		return fmt.Sprintf("%v %s, %s", in.Op, rs, rt)
	case OpADD, OpADDU, OpSUB, OpSUBU, OpAND, OpOR, OpXOR, OpNOR, OpSLT, OpSLTU:
		return fmt.Sprintf("%v %s, %s, %s", in.Op, rd, rs, rt)
	case OpBLTZ, OpBGEZ, OpBLEZ, OpBGTZ:
		return fmt.Sprintf("%v %s, 0x%x", in.Op, rs, BranchTarget(pc, in))
	case OpBEQ, OpBNE:
		return fmt.Sprintf("%v %s, %s, 0x%x", in.Op, rs, rt, BranchTarget(pc, in))
	case OpJ, OpJAL:
		return fmt.Sprintf("%v 0x%x", in.Op, in.Target)
	case OpADDI, OpADDIU, OpSLTI, OpSLTIU:
		return fmt.Sprintf("%v %s, %s, %d", in.Op, rt, rs, in.Imm)
	case OpANDI, OpORI, OpXORI:
		return fmt.Sprintf("%v %s, %s, 0x%x", in.Op, rt, rs, in.UImm)
	case OpLUI:
		return fmt.Sprintf("lui %s, 0x%x", rt, in.UImm)
	case OpLB, OpLH, OpLW, OpLBU, OpLHU, OpSB, OpSH, OpSW:
		return fmt.Sprintf("%v %s, %d(%s)", in.Op, rt, in.Imm, rs)
	case OpLWC1, OpSWC1:
		return fmt.Sprintf("%v $f%d, %d(%s)", in.Op, in.Rt, in.Imm, rs)
	case OpFADD, OpFSUB, OpFMUL, OpFDIV:
		return fmt.Sprintf("%v $f%d, $f%d, $f%d", in.Op, in.Rd, in.Rs, in.Rt)
	case OpFMOV, OpFNEG:
		return fmt.Sprintf("%v $f%d, $f%d", in.Op, in.Rd, in.Rs)
	}
	return fmt.Sprintf(".word 0x%08x", w)
}
