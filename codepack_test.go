package codepack_test

import (
	"fmt"
	"testing"

	"codepack"
)

const testProgram = `
main:
	li   $s0, 50
	li   $s1, 0
loop:
	addu $s1, $s1, $s0
	addiu $s0, $s0, -1
	bgtz $s0, loop
	move $a0, $s1
	li   $v0, 1
	syscall
	li   $v0, 10
	syscall
`

func TestPublicAPIEndToEnd(t *testing.T) {
	im, err := codepack.Assemble("api", testProgram)
	if err != nil {
		t.Fatal(err)
	}

	// Functional execution.
	m := codepack.NewMachine(im)
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if !m.Halted() {
		t.Fatal("program did not halt")
	}
	if m.Output() != "1275" { // sum 1..50
		t.Fatalf("output %q, want 1275", m.Output())
	}

	// Compression round trip.
	comp, err := codepack.Compress(im)
	if err != nil {
		t.Fatal(err)
	}
	words, err := comp.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	for i := range words {
		if words[i] != im.Text[i] {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}

	// Serialization round trip.
	comp2, err := codepack.UnmarshalCompressed("api", comp.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if comp2.Stats().Ratio() != comp.Stats().Ratio() {
		t.Fatal("ratio changed across serialization")
	}

	// Simulation under all fetch models on all architectures.
	for _, cfg := range []codepack.ArchConfig{
		codepack.OneIssue(), codepack.FourIssue(), codepack.EightIssue(),
	} {
		for _, model := range []codepack.FetchModel{
			codepack.NativeModel(), codepack.BaselineModel(), codepack.OptimizedModel(),
		} {
			r, err := codepack.Simulate(im, cfg, model, 0)
			if err != nil {
				t.Fatalf("%s: %v", cfg.Name, err)
			}
			if r.Cycles == 0 || r.Instructions == 0 {
				t.Fatalf("%s: empty result", cfg.Name)
			}
		}
	}
}

func TestPublicBenchmarkAccessors(t *testing.T) {
	if len(codepack.Benchmarks()) != 6 {
		t.Fatal("expected the paper's six benchmarks")
	}
	p, ok := codepack.Benchmark("pegwit")
	if !ok {
		t.Fatal("pegwit missing")
	}
	p.TargetDynamic = 50_000
	im, err := codepack.GenerateBenchmark(p)
	if err != nil {
		t.Fatal(err)
	}
	if im.TextBytes() < 60_000 {
		t.Fatalf("pegwit text only %d bytes", im.TextBytes())
	}
	if _, ok := codepack.Benchmark("crafty"); ok {
		t.Fatal("unknown benchmark accepted")
	}
}

// Example demonstrates the three-line happy path: assemble, compress,
// simulate.
func Example() {
	im, _ := codepack.Assemble("example", `
main:
	li $t0, 10
spin:
	addiu $t0, $t0, -1
	bgtz $t0, spin
	li $v0, 10
	syscall
`)
	comp, _ := codepack.Compress(im)
	fmt.Printf("instructions: %d\n", len(im.Text))
	fmt.Printf("round trips: %v\n", func() bool {
		out, _ := comp.Decompress()
		for i := range out {
			if out[i] != im.Text[i] {
				return false
			}
		}
		return true
	}())
	// Output:
	// instructions: 5
	// round trips: true
}

// ExampleSimulate compares fetch models on one machine.
func ExampleSimulate() {
	im, _ := codepack.Assemble("example", `
main:
	li $t0, 2000
spin:
	addiu $t0, $t0, -1
	bgtz $t0, spin
	li $v0, 10
	syscall
`)
	native, _ := codepack.Simulate(im, codepack.FourIssue(), codepack.NativeModel(), 0)
	cp, _ := codepack.Simulate(im, codepack.FourIssue(), codepack.BaselineModel(), 0)
	fmt.Printf("same instructions: %v\n", native.Instructions == cp.Instructions)
	fmt.Printf("codepack at least as many cycles: %v\n", cp.Cycles >= native.Cycles)
	// Output:
	// same instructions: true
	// codepack at least as many cycles: true
}

// TestFullProductPipeline drives the complete product surface the tools
// expose: benchmark generation -> image serialization -> compression ->
// compressed serialization -> timing simulation of both programs.
func TestFullProductPipeline(t *testing.T) {
	p, _ := codepack.Benchmark("pegwit")
	p.TargetDynamic = 120_000
	im, err := codepack.GenerateBenchmark(p)
	if err != nil {
		t.Fatal(err)
	}

	// Image serialization round trip (what genbench -bin | cpack use).
	im2, err := reloadImage(im)
	if err != nil {
		t.Fatal(err)
	}

	// Compression + compressed serialization round trip.
	comp, err := codepack.Compress(im2)
	if err != nil {
		t.Fatal(err)
	}
	comp2, err := codepack.UnmarshalCompressed(im2.Name, comp.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	words, err := comp2.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	for i := range words {
		if words[i] != im.Text[i] {
			t.Fatalf("pipeline corrupted word %d", i)
		}
	}

	// Simulate with the reloaded compressed image plugged in explicitly.
	model := codepack.OptimizedModel()
	model.Comp = comp2
	r, err := codepack.Simulate(im2, codepack.FourIssue(), model, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	native, err := codepack.Simulate(im2, codepack.FourIssue(), codepack.NativeModel(), 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Instructions != native.Instructions {
		t.Fatal("fetch model changed the executed program")
	}
	if r.Ratio == 0 {
		t.Fatal("ratio missing from compressed run")
	}
}

func reloadImage(im *codepack.Image) (*codepack.Image, error) {
	return codepack.UnmarshalImage(im.Marshal())
}
