// Package harness wires workloads, architectures and fetch models into the
// paper's experiments: one function per table or figure, each returning a
// rendered Table plus the raw values tests assert against.
//
// Every simulation entry point has a Context variant (BenchContext,
// RunContext, Table5Context, ...) that aborts promptly on cancellation;
// the context-free methods are thin wrappers over context.Background() so
// existing callers don't churn.
package harness

import (
	"context"
	"fmt"
	"sync"

	"codepack/internal/core"
	"codepack/internal/cpu"
	"codepack/internal/program"
	"codepack/internal/workload"
)

// DefaultMaxInstr is the committed-instruction budget per simulation. The
// paper runs each benchmark past 10^9 instructions; every reported metric
// is a rate, so a few million instructions reach the same steady state
// (see EXPERIMENTS.md).
const DefaultMaxInstr = 2_000_000

// Bench is a generated benchmark with its compressed form.
type Bench struct {
	Profile workload.Profile
	Image   *program.Image
	Comp    *core.Compressed
}

// benchEntry is one lazily-built benchmark slot. The per-entry once lets
// distinct benchmarks generate concurrently (the server fans requests over
// the suite) while each is still built exactly once.
type benchEntry struct {
	once sync.Once
	b    *Bench
	err  error
}

// Suite caches generated benchmarks and runs simulations. It is safe for
// concurrent use.
type Suite struct {
	// MaxInstr caps committed instructions per run (0 = DefaultMaxInstr).
	MaxInstr uint64

	mu      sync.Mutex
	benches map[string]*benchEntry
}

// NewSuite creates a suite with the given per-run instruction budget
// (0 uses DefaultMaxInstr).
func NewSuite(maxInstr uint64) *Suite {
	if maxInstr == 0 {
		maxInstr = DefaultMaxInstr
	}
	return &Suite{MaxInstr: maxInstr, benches: make(map[string]*benchEntry)}
}

// Bench returns the named benchmark, generating and compressing it on first
// use.
func (s *Suite) Bench(name string) (*Bench, error) {
	return s.BenchContext(context.Background(), name)
}

// BenchContext is Bench with cancellation. Generation itself is bounded
// work and runs to completion once started; the context gates entry so a
// cancelled request never kicks off a build it won't use.
func (s *Suite) BenchContext(ctx context.Context, name string) (*Bench, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	e, ok := s.benches[name]
	if !ok {
		e = &benchEntry{}
		s.benches[name] = e
	}
	s.mu.Unlock()
	e.once.Do(func() { e.b, e.err = buildBench(name) })
	return e.b, e.err
}

func buildBench(name string) (*Bench, error) {
	p, ok := workload.ByName(name)
	if !ok {
		return nil, fmt.Errorf("harness: unknown benchmark %q", name)
	}
	im, err := workload.Generate(p)
	if err != nil {
		return nil, fmt.Errorf("harness: generate %s: %w", name, err)
	}
	comp, err := core.Compress(im)
	if err != nil {
		return nil, fmt.Errorf("harness: compress %s: %w", name, err)
	}
	return &Bench{Profile: p, Image: im, Comp: comp}, nil
}

// All returns every benchmark in paper order.
func (s *Suite) All() ([]*Bench, error) {
	return s.AllContext(context.Background())
}

// AllContext is All with cancellation.
func (s *Suite) AllContext(ctx context.Context) ([]*Bench, error) {
	var out []*Bench
	for _, p := range workload.Profiles() {
		b, err := s.BenchContext(ctx, p.Name)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

// Run simulates bench on cfg with the given fetch model, reusing the cached
// compressed image.
func (s *Suite) Run(b *Bench, cfg cpu.Config, model cpu.FetchModel) (cpu.Result, error) {
	return s.RunContext(context.Background(), b, cfg, model)
}

// RunContext is Run with cancellation: a long simulation aborts at the
// simulator's next cancellation checkpoint instead of finishing its
// instruction budget.
func (s *Suite) RunContext(ctx context.Context, b *Bench, cfg cpu.Config, model cpu.FetchModel) (cpu.Result, error) {
	if model.Kind == cpu.FetchCodePack && model.Comp == nil {
		model.Comp = b.Comp
	}
	return cpu.SimulateContext(ctx, b.Image, cfg, model, s.MaxInstr)
}

// runPairContext runs native and one compressed model and returns both
// results.
func (s *Suite) runPairContext(ctx context.Context, b *Bench, cfg cpu.Config, model cpu.FetchModel) (native, comp cpu.Result, err error) {
	native, err = s.RunContext(ctx, b, cfg, cpu.NativeModel())
	if err != nil {
		return
	}
	comp, err = s.RunContext(ctx, b, cfg, model)
	return
}
