// Command benchcompare guards the codec microbenchmarks against
// regressions: it compares a fresh `go test -bench` run (or a captured
// output file) against the microbenchmark section of a committed
// BENCH_<n>.json trajectory and fails when any shared benchmark got more
// than -threshold times slower.
//
// Raw ns/op is not comparable across machines, so the comparison is
// anchor-normalized: one benchmark present in both runs (the reference
// decoder by default) estimates the machine-speed ratio, and every other
// benchmark's ns/op is judged against baseline × that ratio. A uniform
// slowdown (slower CI host) cancels out; a real regression in one
// benchmark does not.
//
//	benchcompare                  # baseline = highest BENCH_*.json, run benchmarks
//	benchcompare -against BENCH_8.json -input bench.out
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"codepack/internal/loadgen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "benchcompare:", err)
		var uerr usageError
		if errors.As(err, &uerr) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

type usageError string

func (e usageError) Error() string { return string(e) }

// errRegression distinguishes "benchmarks got slower" (exit 1, report
// already printed) from operational failures.
var errRegression = errors.New("benchmark regression against baseline")

// benchPattern matches the microbenchmarks a trajectory folds in; the
// compare runs the same set so the name intersection is maximal.
const benchPattern = "CompressThroughput|DecompressThroughput|DecodeThroughput|DecodePooled|ServerCompress"

// anchors are tried in order as the machine-speed normalizer. The
// reference decoder is first: single-threaded, allocation-free, and by
// construction untouched by fast-path work, so it moves only when the
// machine does.
var anchors = []string{
	"BenchmarkDecodeThroughput/reference",
	"BenchmarkDecompressThroughput",
	"BenchmarkCompressThroughput",
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchcompare", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		against   = fs.String("against", "", "baseline BENCH_<n>.json (default: highest-numbered in -dir)")
		dir       = fs.String("dir", ".", "directory searched for the default baseline")
		input     = fs.String("input", "", "read `go test -bench` output from this file instead of running benchmarks")
		threshold = fs.Float64("threshold", 1.20, "fail when normalized ns/op exceeds baseline by this factor")
		benchtime = fs.String("benchtime", "20x", "-benchtime when running benchmarks")
	)
	if err := fs.Parse(args); err != nil {
		return usageError(err.Error())
	}
	if *threshold <= 1 {
		return usageError("-threshold must be > 1")
	}

	path := *against
	if path == "" {
		var err error
		if path, err = latestTrajectory(*dir); err != nil {
			return err
		}
	}
	base, err := loadBaseline(path)
	if err != nil {
		return err
	}

	var cur []loadgen.MicroBench
	if *input != "" {
		f, err := os.Open(*input)
		if err != nil {
			return err
		}
		defer f.Close()
		if cur, err = loadgen.ParseGoBench(f); err != nil {
			return err
		}
	} else {
		if cur, err = runBenchmarks(stderr, *benchtime); err != nil {
			return err
		}
	}
	if len(cur) == 0 {
		return fmt.Errorf("no benchmark results in the current run")
	}

	rep, regressed := compare(base, cur, *threshold)
	fmt.Fprintf(stdout, "baseline %s (%d benchmarks), current run (%d benchmarks)\n",
		path, len(base), len(cur))
	fmt.Fprint(stdout, rep)
	if regressed {
		return errRegression
	}
	return nil
}

// latestTrajectory picks the highest-numbered BENCH_<n>.json in dir.
func latestTrajectory(dir string) (string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	re := regexp.MustCompile(`^BENCH_(\d+)\.json$`)
	best, bestN := "", -1
	for _, e := range ents {
		m := re.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		if n, _ := strconv.Atoi(m[1]); n > bestN {
			best, bestN = filepath.Join(dir, e.Name()), n
		}
	}
	if best == "" {
		return "", fmt.Errorf("no BENCH_<n>.json baseline in %s", dir)
	}
	return best, nil
}

// loadBaseline reads the microbenchmark section of a trajectory document.
func loadBaseline(path string) (map[string]loadgen.MicroBench, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var tr loadgen.Trajectory
	if err := json.Unmarshal(raw, &tr); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(tr.Micro) == 0 {
		return nil, fmt.Errorf("%s has no microbenchmark section", path)
	}
	out := make(map[string]loadgen.MicroBench, len(tr.Micro))
	for _, mb := range tr.Micro {
		out[mb.Name] = mb
	}
	return out, nil
}

// runBenchmarks executes the microbenchmark set in the current tree.
func runBenchmarks(stderr io.Writer, benchtime string) ([]loadgen.MicroBench, error) {
	cmd := exec.Command("go", "test", "-run", "xxx",
		"-bench", benchPattern, "-benchmem", "-benchtime", benchtime, ".")
	cmd.Stderr = stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go test -bench: %w", err)
	}
	return loadgen.ParseGoBench(strings.NewReader(string(out)))
}

// compare renders the per-benchmark verdicts and reports whether any
// shared benchmark regressed past the threshold.
func compare(base map[string]loadgen.MicroBench, cur []loadgen.MicroBench, threshold float64) (string, bool) {
	scale, anchor := 1.0, ""
	for _, a := range anchors {
		if b, ok := base[a]; ok {
			for _, c := range cur {
				if c.Name == a && b.NsPerOp > 0 {
					scale, anchor = c.NsPerOp/b.NsPerOp, a
					break
				}
			}
		}
		if anchor != "" {
			break
		}
	}

	var sb strings.Builder
	if anchor == "" {
		fmt.Fprintf(&sb, "no shared anchor benchmark; comparing raw ns/op\n")
	} else {
		fmt.Fprintf(&sb, "anchor %s: machine-speed ratio %.3f\n", anchor, scale)
	}
	sort.Slice(cur, func(i, j int) bool { return cur[i].Name < cur[j].Name })
	regressed := false
	shared := 0
	for _, c := range cur {
		b, ok := base[c.Name]
		if !ok || c.Name == anchor {
			continue
		}
		shared++
		allowed := b.NsPerOp * scale * threshold
		ratio := c.NsPerOp / (b.NsPerOp * scale)
		verdict := "ok"
		if c.NsPerOp > allowed {
			verdict = "REGRESSED"
			regressed = true
		}
		fmt.Fprintf(&sb, "  %-45s %12.0f -> %12.0f ns/op  x%.2f  %s\n",
			c.Name, b.NsPerOp*scale, c.NsPerOp, ratio, verdict)
	}
	if shared == 0 {
		fmt.Fprintf(&sb, "  no benchmarks shared with the baseline\n")
	}
	return sb.String(), regressed
}
