package isa

import (
	"testing"
	"testing/quick"
)

// validOps lists every encodable operation.
func validOps() []Op {
	var ops []Op
	for op := OpSLL; op < numOps; op++ {
		ops = append(ops, op)
	}
	return ops
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	// Property: Decode(Encode(in)) == canonical(in) for every op, across
	// randomized fields.
	f := func(rs, rt, rd, sh uint8, imm int16, uimm uint16, tgt uint32, opSel uint16) bool {
		ops := validOps()
		op := ops[int(opSel)%len(ops)]
		in := Inst{
			Op: op, Rs: rs & 31, Rt: rt & 31, Rd: rd & 31, Shamt: sh & 31,
			Imm: int32(imm), UImm: uint32(uimm), Target: tgt & 0x0FFF_FFFC,
		}
		w, err := Encode(in)
		if err != nil {
			return false
		}
		out := Decode(w)
		if out.Op != op {
			return false
		}
		// Re-encoding the decoded form must be a fixed point.
		w2, err := Encode(out)
		return err == nil && w2 == w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeFields(t *testing.T) {
	tests := []struct {
		name string
		in   Inst
		want Inst
	}{
		{"add", Inst{Op: OpADD, Rd: 3, Rs: 1, Rt: 2}, Inst{Op: OpADD, Rd: 3, Rs: 1, Rt: 2}},
		{"addiu-neg", Inst{Op: OpADDIU, Rt: 4, Rs: 29, Imm: -32}, Inst{Op: OpADDIU, Rt: 4, Rs: 29, Imm: -32}},
		{"lui", Inst{Op: OpLUI, Rt: 5, UImm: 0xBEEF}, Inst{Op: OpLUI, Rt: 5, UImm: 0xBEEF}},
		{"jal", Inst{Op: OpJAL, Target: 0x0040_0040}, Inst{Op: OpJAL, Target: 0x0040_0040}},
		{"sll", Inst{Op: OpSLL, Rd: 7, Rt: 8, Shamt: 12}, Inst{Op: OpSLL, Rd: 7, Rt: 8, Shamt: 12}},
	}
	for _, tt := range tests {
		w, err := Encode(tt.in)
		if err != nil {
			t.Fatalf("%s: %v", tt.name, err)
		}
		got := Decode(w)
		if got.Op != tt.want.Op || got.Rs != tt.want.Rs || got.Rt != tt.want.Rt ||
			got.Rd != tt.want.Rd || got.Shamt != tt.want.Shamt {
			t.Errorf("%s: got %+v want %+v", tt.name, got, tt.want)
		}
		switch tt.in.Op {
		case OpADDIU:
			if got.Imm != tt.want.Imm {
				t.Errorf("%s: imm %d want %d", tt.name, got.Imm, tt.want.Imm)
			}
		case OpLUI:
			if got.UImm != tt.want.UImm {
				t.Errorf("%s: uimm %x want %x", tt.name, got.UImm, tt.want.UImm)
			}
		case OpJAL:
			if got.Target != tt.want.Target {
				t.Errorf("%s: target %x want %x", tt.name, got.Target, tt.want.Target)
			}
		}
	}
}

func TestNopIsZeroWord(t *testing.T) {
	if w := MustEncode(Inst{Op: OpSLL}); w != 0 {
		t.Fatalf("nop encodes to %#x, want 0", w)
	}
	if in := Decode(0); in.Op != OpSLL {
		t.Fatalf("word 0 decodes to %v, want sll", in.Op)
	}
}

func TestInvalidDecodes(t *testing.T) {
	// An unused primary opcode must decode to OpInvalid, not panic.
	if in := Decode(0x3F << 26); in.Op != OpInvalid {
		t.Fatalf("got %v, want invalid", in.Op)
	}
	if _, err := Encode(Inst{Op: OpInvalid}); err == nil {
		t.Fatal("encoding OpInvalid should fail")
	}
}

func TestClassAndLatency(t *testing.T) {
	cases := map[Op]Class{
		OpADD: ClassIntALU, OpMULT: ClassIntMult, OpDIV: ClassIntDiv,
		OpLW: ClassLoad, OpSW: ClassStore, OpBEQ: ClassBranch,
		OpJAL: ClassJump, OpJR: ClassJump, OpSYSCALL: ClassSyscall,
		OpFADD: ClassFPALU, OpFMUL: ClassFPMult, OpLWC1: ClassLoad,
		OpSWC1: ClassStore,
	}
	for op, want := range cases {
		if got := ClassOf(op); got != want {
			t.Errorf("ClassOf(%v) = %v, want %v", op, got, want)
		}
	}
	for _, op := range validOps() {
		if Latency(op) < 1 {
			t.Errorf("Latency(%v) < 1", op)
		}
	}
	if Latency(OpDIV) <= Latency(OpMULT) {
		t.Error("divide should be slower than multiply")
	}
}

func TestBranchTarget(t *testing.T) {
	in := Inst{Op: OpBEQ, Imm: -2}
	if got := BranchTarget(0x400010, in); got != 0x40000C {
		t.Fatalf("backward target %#x, want 0x40000c", got)
	}
	in.Imm = 3
	if got := BranchTarget(0x400010, in); got != 0x400020 {
		t.Fatalf("forward target %#x, want 0x400020", got)
	}
}

func TestRegNames(t *testing.T) {
	if RegName(RegSP) != "$sp" || RegName(RegRA) != "$ra" || RegName(0) != "$zero" {
		t.Fatal("ABI names wrong")
	}
	for i := 0; i < 32; i++ {
		if got := RegNumber(RegName(i)[1:]); got != i {
			t.Errorf("RegNumber(RegName(%d)) = %d", i, got)
		}
	}
	for name, want := range map[string]int{"0": 0, "31": 31, "t0": 8, "sp": 29, "bogus": -1, "32": -1, "": -1} {
		if got := RegNumber(name); got != want {
			t.Errorf("RegNumber(%q) = %d, want %d", name, got, want)
		}
	}
}

func TestDisasmRoundTripSpot(t *testing.T) {
	// Disassembly output should contain the mnemonic for each op.
	for _, in := range []Inst{
		{Op: OpADDU, Rd: 2, Rs: 4, Rt: 5},
		{Op: OpLW, Rt: 8, Rs: 29, Imm: 16},
		{Op: OpBNE, Rs: 8, Rt: 0, Imm: -1},
		{Op: OpJAL, Target: 0x400000},
		{Op: OpFMUL, Rd: 2, Rs: 4, Rt: 6},
	} {
		s := Disasm(0x400000, MustEncode(in))
		if len(s) == 0 || s[0] == '.' {
			t.Errorf("disasm of %v produced %q", in.Op, s)
		}
	}
	if s := Disasm(0, 0); s != "nop" {
		t.Errorf("Disasm(0) = %q, want nop", s)
	}
}

func TestIsControl(t *testing.T) {
	if !IsControl(OpBEQ) || !IsControl(OpJ) || !IsControl(OpJR) {
		t.Fatal("branches and jumps are control")
	}
	if IsControl(OpADD) || IsControl(OpLW) {
		t.Fatal("alu/mem are not control")
	}
	if !IsCondBranch(OpBNE) || IsCondBranch(OpJAL) {
		t.Fatal("IsCondBranch wrong")
	}
}
