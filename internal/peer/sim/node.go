package sim

import (
	"bytes"
	"sort"

	"codepack/internal/peer"
)

// entry is one cached payload; unverified entries are quarantined
// replicas, exactly as in internal/server's compCache.
type entry struct {
	payload  []byte
	verified bool
}

// node is one simulated cpackd instance: the real membership state
// machine on the world's virtual clock, the real ring over its live
// view, and a two-tier cache (volatile map + durable store of verified
// entries that survives a crash, the -cache-dir analogue).
type node struct {
	w     *World
	url   string
	seeds []string

	up      bool
	incarn  int // bumped per start; stale timers and callbacks check it
	mem     *peer.Membership
	ring    *peer.Ring
	ringVer uint64
	cache   map[string]entry
	durable map[string][]byte
	hints   map[string]map[string][]byte // target -> digest -> payload

	stats NodeStats
}

// NodeStats are one node's lifetime event counters — per-node
// observability mirroring the live cluster's Stats, so schedules can
// assert where activity happened, not just that it happened. They
// survive crashes and restarts (a restart is the same process in the
// real daemon's analogue of a reboot loop).
type NodeStats struct {
	// HeartbeatsSent counts gossip exchanges initiated (join bursts,
	// heartbeat fan-out and reconnection probes included).
	HeartbeatsSent int
	// AEPasses counts anti-entropy offer/want passes started.
	AEPasses int
	// ReplicationsSent counts payload pushes initiated (async
	// replication and AE pushes).
	ReplicationsSent int
	// Quarantines counts replicated payloads accepted into quarantine.
	Quarantines int
	// ReplicaFallthroughs counts fetches served by a replica after an
	// earlier one in placement order failed or missed.
	ReplicaFallthroughs int
	// ReadRepairs counts repair pushes to replicas that answered a
	// clean miss while a later replica held the verified entry.
	ReadRepairs int
	// HandoffHinted / HandoffDrained / HandoffReassigned count hinted-
	// handoff records buffered for an unreachable member, delivered to
	// it, and re-replicated after it was declared dead.
	HandoffHinted     int
	HandoffDrained    int
	HandoffReassigned int
}

// gossipMsg mirrors peer.MembershipMsg for the in-memory transport.
type gossipMsg struct {
	From    peer.MemberInfo
	Members []peer.MemberInfo
}

func stateInRing(s peer.MemberState) bool {
	return s == peer.StateAlive || s == peer.StateSuspect
}

// start boots (or reboots) the node: fresh membership at generation 1,
// cache reloaded from the durable store, join burst to the seeds, then
// the heartbeat timer chain.
func (n *node) start() {
	n.w.logf("start %s", n.url)
	n.up = true
	n.incarn++
	n.mem = peer.NewMembership(n.url, peer.MembershipConfig{
		SuspectAfter: n.w.cfg.SuspectAfter,
		DeadAfter:    n.w.cfg.DeadAfter,
		Now:          n.w.clock,
	})
	for _, s := range n.seeds {
		n.mem.AddSeed(s)
	}
	n.ringVer = 0
	n.hints = make(map[string]map[string][]byte)
	n.cache = make(map[string]entry, len(n.durable))
	for d, p := range n.durable {
		n.cache[d] = entry{payload: p, verified: true}
	}
	n.checkRing() // builds the first ring and schedules the startup AE pass
	for _, s := range n.seeds {
		n.gossipTo(s)
	}
	n.scheduleTick()
}

// crash stops the node hard: volatile cache and membership are gone
// (the durable store stays), and every pending timer or callback is
// orphaned by the incarnation bump.
func (n *node) crash() {
	n.up = false
	n.incarn++
	n.cache = nil
	n.hints = nil
}

func (n *node) scheduleTick() {
	incarn := n.incarn
	n.w.schedule(n.w.cfg.HeartbeatInterval, func() {
		if !n.up || n.incarn != incarn {
			return
		}
		n.tick()
		n.scheduleTick()
	})
}

// tick is one heartbeat round, mirroring Cluster.heartbeatRound:
// advance the failure detector, gossip to a random fan-out of live
// peers, probe one member outside the ring so healed partitions and
// restarted nodes are rediscovered.
func (n *node) tick() {
	n.mem.Tick()
	n.checkRing()
	n.tickHints()
	var peers []string
	for _, m := range n.mem.Live() {
		if m != n.url {
			peers = append(peers, m)
		}
	}
	n.w.rng.Shuffle(len(peers), func(i, j int) { peers[i], peers[j] = peers[j], peers[i] })
	if len(peers) > n.w.cfg.GossipFanout {
		peers = peers[:n.w.cfg.GossipFanout]
	}
	for _, p := range peers {
		n.gossipTo(p)
	}
	candidates := n.mem.NonRing()
	for _, s := range n.seeds {
		if _, known := n.mem.State(s); !known {
			candidates = append(candidates, s)
		}
	}
	if len(candidates) > 0 {
		n.gossipTo(candidates[n.w.rng.Intn(len(candidates))])
	}
}

// gossipTo is one view exchange with target over the faulty transport,
// mirroring Cluster.exchange + handleMembership.
func (n *node) gossipTo(target string) {
	n.stats.HeartbeatsSent++
	req := gossipMsg{From: n.mem.SelfInfo(), Members: n.mem.Snapshot()}
	incarn := n.incarn
	n.w.rpc(n.url, target,
		func(tn *node) any { return tn.handleGossip(req) },
		func(resp any, ok bool) {
			if !ok || !n.up || n.incarn != incarn {
				return
			}
			r := resp.(gossipMsg)
			n.mem.Merge(append(r.Members, r.From))
			if r.From.URL == target && stateInRing(r.From.State) {
				n.mem.ObserveAlive(target)
			}
			n.checkRing()
		})
}

// handleGossip is the receiving side of a view exchange.
func (n *node) handleGossip(msg gossipMsg) gossipMsg {
	n.mem.Merge(append(msg.Members, msg.From))
	if stateInRing(msg.From.State) {
		n.mem.ObserveAlive(msg.From.URL)
	}
	n.checkRing()
	return gossipMsg{From: n.mem.SelfInfo(), Members: n.mem.Snapshot()}
}

// checkRing rebuilds the ring when the membership version moved and
// schedules an anti-entropy pass for the new ring — the sim analogue of
// Cluster.refreshRing firing the server's OnRingChange trigger.
func (n *node) checkRing() {
	v := n.mem.Version()
	if v == n.ringVer {
		return
	}
	n.ringVer = v
	n.ring = peer.NewRing(n.mem.Live(), n.w.cfg.Replicas)
	n.w.stats.RingChanges++
	n.w.logf("ring %s %v", n.url, n.mem.Live())
	incarn := n.incarn
	n.w.schedule(n.w.cfg.MinDelay, func() {
		if n.up && n.incarn == incarn && n.ringVer == v {
			n.runAE()
		}
	})
}

// runAE is one offer/want/push pass: every locally held digest is
// offered to its current ring owner, which asks for the ones it lacks.
// Pushes travel the faulty transport and land in the owner's
// quarantine.
func (n *node) runAE() {
	n.stats.AEPasses++
	byOwner := make(map[string][]string)
	var digests []string
	for d := range n.cache {
		digests = append(digests, d)
	}
	sort.Strings(digests)
	for _, d := range digests {
		for _, o := range n.ring.Owners(d, n.w.cfg.ReplicationFactor) {
			if o != "" && o != n.url {
				byOwner[o] = append(byOwner[o], d)
			}
		}
	}
	owners := make([]string, 0, len(byOwner))
	for o := range byOwner {
		owners = append(owners, o)
	}
	sort.Strings(owners)
	for _, owner := range owners {
		ds := byOwner[owner]
		incarn := n.incarn
		target := owner
		n.w.rpc(n.url, target,
			func(tn *node) any { return tn.handleOffer(ds) },
			func(resp any, ok bool) {
				if !ok || !n.up || n.incarn != incarn {
					return
				}
				for _, d := range resp.([]string) {
					if e, held := n.cache[d]; held {
						n.sendPut(target, d, e.payload, nil)
					}
				}
			})
	}
}

// handleOffer returns the subset of offered digests the node lacks.
func (n *node) handleOffer(digests []string) []string {
	var want []string
	for _, d := range digests {
		if _, ok := n.cache[d]; !ok {
			want = append(want, d)
		}
	}
	return want
}

// sendPut replicates one payload over the faulty transport (async
// best-effort, like the replication queue). onDone, if non-nil, fires
// with whether a response made it back.
func (n *node) sendPut(target, digest string, payload []byte, onDone func(ok bool)) {
	n.stats.ReplicationsSent++
	incarn := n.incarn
	n.w.rpc(n.url, target,
		func(tn *node) any { tn.handlePut(digest, payload); return true },
		func(_ any, ok bool) {
			if onDone != nil && n.up && n.incarn == incarn {
				onDone(ok)
			}
		})
}

// replicate pushes one payload to target and buffers a hint when the
// push goes unanswered, mirroring the replication queue's maybeHint.
func (n *node) replicate(target, digest string, payload []byte) {
	n.sendPut(target, digest, payload, func(ok bool) {
		if !ok {
			n.addHint(target, digest, payload, true)
		}
	})
}

// addHint buffers a payload for an unreachable member that is still in
// the ring (alive or suspect); pushes to members already declared dead
// are not worth buffering — the ring has moved on. count is false when
// re-buffering a failed drain, so a record is only counted hinted once.
func (n *node) addHint(target, digest string, payload []byte, count bool) {
	if s, ok := n.mem.State(target); !ok || !stateInRing(s) {
		return
	}
	if n.hints[target] == nil {
		n.hints[target] = make(map[string][]byte)
	}
	if _, dup := n.hints[target][digest]; !dup && count {
		n.stats.HandoffHinted++
		n.w.logf("hint %s -> %s %s", n.url, target, digest)
	}
	n.hints[target][digest] = payload
}

// tickHints is the per-heartbeat hint maintenance, mirroring the live
// cluster: buffered records drain to targets currently alive, and
// records for members declared dead (or departed) are reassigned to the
// digest's current replica set.
func (n *node) tickHints() {
	targets := make([]string, 0, len(n.hints))
	for tgt := range n.hints {
		targets = append(targets, tgt)
	}
	sort.Strings(targets)
	for _, tgt := range targets {
		st, known := n.mem.State(tgt)
		recs := n.hints[tgt]
		var digests []string
		for d := range recs {
			digests = append(digests, d)
		}
		sort.Strings(digests)
		switch {
		case known && st == peer.StateAlive:
			delete(n.hints, tgt)
			for _, d := range digests {
				d, payload, target := d, recs[d], tgt
				n.sendPut(target, d, payload, func(ok bool) {
					if !ok {
						n.addHint(target, d, payload, false)
						return
					}
					n.stats.HandoffDrained++
					n.w.logf("drain %s -> %s %s", n.url, target, d)
				})
			}
		case !known || !stateInRing(st):
			delete(n.hints, tgt)
			for _, d := range digests {
				n.stats.HandoffReassigned++
				n.w.logf("reassign %s %s (was %s)", n.url, d, tgt)
				for _, o := range n.ring.Owners(d, n.w.cfg.ReplicationFactor) {
					if o != n.url && o != tgt {
						n.replicate(o, d, recs[d])
					}
				}
			}
		}
		// Suspect targets: hold the hints until refutation or death.
	}
}

// handlePut quarantines a replicated payload: stored unverified, and
// never replacing an entry already held — putMem's no-downgrade rule.
func (n *node) handlePut(digest string, payload []byte) {
	if _, ok := n.cache[digest]; ok {
		return
	}
	n.stats.Quarantines++
	n.cache[digest] = entry{payload: payload}
}

// compress is the client-facing tiered lookup, mirroring
// Server.compressImage/fillMiss: verified local entry, quarantined
// entry proven against the program (confirm or drop), then a walk of
// the digest's replica set in placement order with verify-before-trust
// and read-repair, then local compression + async replication to every
// remote owner.
func (n *node) compress(digest string) {
	truth := canonical(digest)
	if e, ok := n.cache[digest]; ok {
		if e.verified {
			n.serve(digest, e)
			return
		}
		if bytes.Equal(e.payload, truth) {
			e.verified = true
			n.cache[digest] = e
			n.durable[digest] = e.payload
			n.serve(digest, e)
			return
		}
		delete(n.cache, digest) // quarantined replica failed verification
	}
	var remote []string
	for _, o := range n.ring.Owners(digest, n.w.cfg.ReplicationFactor) {
		if o != "" && o != n.url {
			remote = append(remote, o)
		}
	}
	var missed []string
	for ri, o := range remote {
		payload, found, reachable := n.w.syncFetch(n.url, o, digest)
		if !reachable {
			continue // down, partitioned or dropped: walk on
		}
		if !found {
			missed = append(missed, o) // clean miss: a read-repair target
			continue
		}
		if !bytes.Equal(payload, truth) {
			continue // wrong payload: never trusted, walk on
		}
		if ri > 0 {
			n.stats.ReplicaFallthroughs++
			n.w.logf("fallthrough %s %s ri=%d", n.url, digest, ri)
		}
		e := entry{payload: payload, verified: true}
		n.cache[digest] = e
		n.durable[digest] = payload
		n.serve(digest, e)
		// Read-repair: re-offer the verified entry to every replica that
		// answered a clean miss (the fetcher's own install covers itself
		// when it is in the replica set).
		for _, m := range missed {
			n.stats.ReadRepairs++
			n.w.logf("readrepair %s -> %s %s", n.url, m, digest)
			n.replicate(m, digest, payload)
		}
		return
	}
	n.w.stats.Recompressions++
	n.w.logf("recompress %s %s", n.url, digest)
	e := entry{payload: truth, verified: true}
	n.cache[digest] = e
	n.durable[digest] = truth
	n.serve(digest, e)
	for _, o := range remote {
		n.replicate(o, digest, truth)
	}
}

// serve records what a client was answered with and checks the
// invariants: only verified, only correct.
func (n *node) serve(digest string, e entry) {
	if !e.verified {
		n.w.stats.UnverifiedServed++
	}
	if !bytes.Equal(e.payload, canonical(digest)) {
		n.w.stats.WrongServed++
	}
}

// syncFetch models the synchronous replica GET on the request path.
// reachable is false when the replica is down, partitioned away, or a
// drop is rolled; found distinguishes a clean 404 (a read-repair
// candidate) from a served payload. A replica serves whatever it holds,
// verified or not — the fetcher's verification is the trust boundary,
// as in the real handler.
func (w *World) syncFetch(from, to, digest string) (payload []byte, found, reachable bool) {
	tn := w.nodes[to]
	if tn == nil || !tn.up || w.blocked(from, to) || w.rng.Float64() < w.cfg.DropProb {
		return nil, false, false
	}
	e, ok := tn.cache[digest]
	if !ok {
		return nil, false, true
	}
	return e.payload, true, true
}
