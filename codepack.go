// Package codepack is a library reproduction of IBM's CodePack instruction
// compression and of the evaluation methodology in Lefurgy, Piccininni and
// Mudge, "Evaluation of a High Performance Code Compression Method"
// (MICRO-32, 1999).
//
// It bundles three layers:
//
//   - A complete CodePack codec: two-dictionary variable-length compression
//     of 32-bit instructions into 16-instruction blocks with a per-group
//     index table (Compress, Decompress).
//
//   - An SS32 toolchain substrate: a MIPS-IV-style 32-bit instruction set
//     with an assembler (Assemble), functional emulator and program images,
//     standing in for the paper's re-encoded SimpleScalar ISA.
//
//   - The paper's timing evaluation: trace-driven 1/4/8-issue machine
//     models with native and CodePack instruction-fetch paths (Simulate),
//     plus the six calibrated benchmark generators (Benchmarks).
//
// Quick start:
//
//	im, _ := codepack.Assemble("demo", src)
//	comp, _ := codepack.Compress(im)
//	fmt.Printf("ratio %.1f%%\n", 100*comp.Stats().Ratio())
//	r, _ := codepack.Simulate(im, codepack.FourIssue(), codepack.OptimizedModel(), 0)
//	fmt.Printf("IPC %.2f\n", r.IPC())
package codepack

import (
	"context"
	"crypto/sha256"
	"encoding/hex"

	"codepack/internal/asm"
	"codepack/internal/core"
	"codepack/internal/cpu"
	"codepack/internal/decomp"
	"codepack/internal/program"
	"codepack/internal/trace"
	"codepack/internal/vm"
	"codepack/internal/workload"
)

// Core codec types.
type (
	// Compressed is a CodePack-compressed program: region, index table,
	// dictionaries and per-block metadata.
	Compressed = core.Compressed
	// Dict is one CodePack dictionary of 16-bit halfwords.
	Dict = core.Dict
	// Stats is the size/composition breakdown of a compressed program.
	Stats = core.Stats
	// Composition is the paper's Table 4 percentage breakdown.
	Composition = core.Composition
	// IndexEntry is one decoded index-table entry.
	IndexEntry = core.IndexEntry
)

// Substrate types.
type (
	// Image is a loadable SS32 program.
	Image = program.Image
	// Machine is the SS32 functional emulator.
	Machine = vm.Machine
)

// Simulation types.
type (
	// ArchConfig describes a simulated machine (Table 2 of the paper).
	ArchConfig = cpu.Config
	// FetchModel selects the instruction-miss path (native or CodePack).
	FetchModel = cpu.FetchModel
	// DecompressorConfig tunes the CodePack decompression engine.
	DecompressorConfig = decomp.CodePackConfig
	// Result carries the metrics of one simulation.
	Result = cpu.Result
	// Profile parameterizes a synthetic benchmark generator.
	Profile = workload.Profile
)

// Assemble translates SS32 assembly source into a program image.
func Assemble(name, source string) (*Image, error) {
	return asm.Assemble(name, source)
}

// Compress encodes the text section of im with CodePack.
func Compress(im *Image) (*Compressed, error) {
	return core.Compress(im)
}

// CompressWords encodes a raw 32-bit instruction stream.
func CompressWords(name string, textBase uint32, text []uint32) (*Compressed, error) {
	return core.CompressWords(name, textBase, text)
}

// CompressContext is Compress with stage tracing: when ctx carries an
// active trace span (internal/trace, as threaded by cpackd), each
// compression phase — dictionary build, block encoding, index assembly
// — is recorded as a child span. With no active span it behaves exactly
// like Compress.
func CompressContext(ctx context.Context, im *Image) (*Compressed, error) {
	if trace.SpanFromContext(ctx) == nil {
		return core.Compress(im)
	}
	return core.CompressWordsHooked(im.Name, im.TextBase, im.Text, core.DefaultOptions(),
		func(phase string) func() {
			_, sp := trace.Start(ctx, phase)
			return sp.End
		})
}

// UnmarshalCompressed parses the serialized form produced by
// (*Compressed).Marshal.
func UnmarshalCompressed(name string, b []byte) (*Compressed, error) {
	return core.UnmarshalCompressed(name, b)
}

// UnmarshalImage parses the serialized form produced by (*Image).Marshal.
func UnmarshalImage(b []byte) (*Image, error) {
	return program.Unmarshal(b)
}

// Digest returns the lowercase-hex SHA-256 of b: the content address used
// by caching layers (cpackd keys its compressed-image cache on it).
func Digest(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// ImageDigest returns the content address of an image: the Digest of its
// canonical serialized form, (*Image).Marshal. Two images with identical
// text, data and entry point share a digest regardless of Name or symbols
// (neither is serialized).
func ImageDigest(im *Image) string { return Digest(im.Marshal()) }

// NewMachine creates a functional emulator with im loaded.
func NewMachine(im *Image) *Machine { return vm.New(im) }

// Simulate runs im on the architecture cfg under the given fetch model,
// committing at most maxInstr instructions (0 = to completion).
func Simulate(im *Image, cfg ArchConfig, model FetchModel, maxInstr uint64) (Result, error) {
	return cpu.Simulate(im, cfg, model, maxInstr)
}

// SimulateContext is Simulate with cancellation: a run aborts with the
// context's error at the simulator's next cancellation checkpoint instead
// of finishing its instruction budget.
func SimulateContext(ctx context.Context, im *Image, cfg ArchConfig, model FetchModel, maxInstr uint64) (Result, error) {
	return cpu.SimulateContext(ctx, im, cfg, model, maxInstr)
}

// Architecture presets from the paper's Table 2.
func OneIssue() ArchConfig   { return cpu.OneIssue() }
func FourIssue() ArchConfig  { return cpu.FourIssue() }
func EightIssue() ArchConfig { return cpu.EightIssue() }

// Fetch models evaluated by the paper, plus the software-managed
// decompression of its future-work discussion.
func NativeModel() FetchModel    { return cpu.NativeModel() }
func BaselineModel() FetchModel  { return cpu.BaselineModel() }
func OptimizedModel() FetchModel { return cpu.OptimizedModel() }
func SoftwareModel() FetchModel  { return cpu.SoftwareModel() }

// Benchmarks returns the six calibrated benchmark profiles standing in for
// the paper's SPEC CINT95 and MediaBench workloads.
func Benchmarks() []Profile { return workload.Profiles() }

// Benchmark returns the named benchmark profile.
func Benchmark(name string) (Profile, bool) { return workload.ByName(name) }

// GenerateBenchmark builds and assembles the synthetic program for p.
func GenerateBenchmark(p Profile) (*Image, error) { return workload.Generate(p) }
