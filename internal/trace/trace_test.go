package trace

import (
	"context"
	"strings"
	"testing"
)

func TestNewIDShapeAndUniqueness(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 64; i++ {
		id := NewID()
		if len(id) != 16 {
			t.Fatalf("NewID() = %q, want 16 hex chars", id)
		}
		if Sanitize(id) != id {
			t.Fatalf("NewID() = %q does not survive Sanitize", id)
		}
		if seen[id] {
			t.Fatalf("NewID() repeated %q", id)
		}
		seen[id] = true
	}
}

func TestContextRoundTrip(t *testing.T) {
	ctx := context.Background()
	if got := ID(ctx); got != "" {
		t.Errorf("ID(empty ctx) = %q, want \"\"", got)
	}
	ctx = WithID(ctx, "abc-123")
	if got := ID(ctx); got != "abc-123" {
		t.Errorf("ID = %q, want abc-123", got)
	}
}

func TestSanitize(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"", ""},
		{"abc-123_X.z", "abc-123_X.z"},
		{"has space", ""},
		{"new\nline", ""},
		{"quo\"te", ""},
		{"back\\slash", ""},
		{"ünïcode", ""},
		{strings.Repeat("a", 64), strings.Repeat("a", 64)},
		{strings.Repeat("a", 65), ""},
	} {
		if got := Sanitize(tc.in); got != tc.want {
			t.Errorf("Sanitize(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
