// Package bpred implements the branch predictors of the paper's Table 2:
// a 2048-entry bimodal predictor (1-issue), gshare with 14-bit history
// (4-issue), and a hybrid with a 1024-entry meta chooser (8-issue), plus a
// return-address stack and a small BTB for indirect jumps.
package bpred

// Predictor predicts conditional branch directions.
type Predictor interface {
	// Predict returns the predicted direction for the branch at pc.
	Predict(pc uint32) bool
	// Update trains the predictor with the resolved outcome.
	Update(pc uint32, taken bool)
}

// counter is a 2-bit saturating counter; taken when >= 2.
type counter uint8

func (c counter) taken() bool { return c >= 2 }

func (c counter) train(taken bool) counter {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// Bimodal is a PC-indexed table of 2-bit counters.
type Bimodal struct {
	table []counter
	mask  uint32
}

// NewBimodal creates a bimodal predictor with the given power-of-two size.
func NewBimodal(entries int) *Bimodal {
	t := make([]counter, entries)
	for i := range t {
		t[i] = 1 // weakly not-taken: cold branches are mostly guards
	}
	return &Bimodal{table: t, mask: uint32(entries - 1)}
}

func (b *Bimodal) index(pc uint32) uint32 { return pc >> 2 & b.mask }

// Predict implements Predictor.
func (b *Bimodal) Predict(pc uint32) bool { return b.table[b.index(pc)].taken() }

// Update implements Predictor.
func (b *Bimodal) Update(pc uint32, taken bool) {
	i := b.index(pc)
	b.table[i] = b.table[i].train(taken)
}

// Gshare XORs a global history register into the table index.
type Gshare struct {
	table    []counter
	history  uint32
	histBits uint
	mask     uint32
}

// NewGshare creates a gshare predictor with 2^histBits counters.
func NewGshare(histBits uint) *Gshare {
	t := make([]counter, 1<<histBits)
	for i := range t {
		t[i] = 1 // weakly not-taken (see NewBimodal)
	}
	return &Gshare{table: t, histBits: histBits, mask: uint32(len(t) - 1)}
}

func (g *Gshare) index(pc uint32) uint32 { return (pc>>2 ^ g.history) & g.mask }

// Predict implements Predictor.
func (g *Gshare) Predict(pc uint32) bool { return g.table[g.index(pc)].taken() }

// Update implements Predictor. History is updated at resolution (the
// trace-driven models resolve branches in program order).
func (g *Gshare) Update(pc uint32, taken bool) {
	i := g.index(pc)
	g.table[i] = g.table[i].train(taken)
	g.history = g.history << 1 & g.mask
	if taken {
		g.history |= 1
	}
}

// Hybrid combines two predictors with a meta chooser, as in the paper's
// 8-issue configuration.
type Hybrid struct {
	meta []counter // >=2 selects p1 (gshare), else p0 (bimodal)
	mask uint32
	p0   Predictor
	p1   Predictor
}

// NewHybrid builds a hybrid predictor over p0 and p1 with a metaEntries-
// entry chooser table.
func NewHybrid(metaEntries int, p0, p1 Predictor) *Hybrid {
	t := make([]counter, metaEntries)
	for i := range t {
		t[i] = 2
	}
	return &Hybrid{meta: t, mask: uint32(metaEntries - 1), p0: p0, p1: p1}
}

// Predict implements Predictor.
func (h *Hybrid) Predict(pc uint32) bool {
	if h.meta[pc>>2&h.mask].taken() {
		return h.p1.Predict(pc)
	}
	return h.p0.Predict(pc)
}

// Update implements Predictor, training both components and steering the
// chooser toward whichever was right.
func (h *Hybrid) Update(pc uint32, taken bool) {
	c0 := h.p0.Predict(pc) == taken
	c1 := h.p1.Predict(pc) == taken
	i := pc >> 2 & h.mask
	if c0 != c1 {
		h.meta[i] = h.meta[i].train(c1)
	}
	h.p0.Update(pc, taken)
	h.p1.Update(pc, taken)
}

// RAS is a return-address stack predicting jr-$ra targets.
type RAS struct {
	stack []uint32
	top   int
	size  int
}

// NewRAS creates a return-address stack with the given depth.
func NewRAS(depth int) *RAS {
	return &RAS{stack: make([]uint32, depth), size: depth}
}

// Push records a return address at a call.
func (r *RAS) Push(addr uint32) {
	r.stack[r.top%r.size] = addr
	r.top++
}

// Pop predicts the target of a return.
func (r *RAS) Pop() (uint32, bool) {
	if r.top == 0 {
		return 0, false
	}
	r.top--
	return r.stack[r.top%r.size], true
}

// BTB is a direct-mapped branch target buffer for indirect jumps.
type BTB struct {
	tags    []uint32
	targets []uint32
	mask    uint32
}

// NewBTB creates a BTB with the given power-of-two entry count.
func NewBTB(entries int) *BTB {
	return &BTB{
		tags:    make([]uint32, entries),
		targets: make([]uint32, entries),
		mask:    uint32(entries - 1),
	}
}

// Lookup predicts the target for the indirect jump at pc.
func (b *BTB) Lookup(pc uint32) (uint32, bool) {
	i := pc >> 2 & b.mask
	if b.tags[i] == pc {
		return b.targets[i], true
	}
	return 0, false
}

// Update records the resolved target.
func (b *BTB) Update(pc, target uint32) {
	i := pc >> 2 & b.mask
	b.tags[i] = pc
	b.targets[i] = target
}
