// Package cache models set-associative write-back caches with LRU
// replacement, matching the L1 organizations in Table 2 of the paper.
package cache

import "fmt"

// Config describes one cache.
type Config struct {
	SizeBytes int
	LineBytes int
	Assoc     int
}

// Lines returns the total number of lines.
func (c Config) Lines() int { return c.SizeBytes / c.LineBytes }

// Sets returns the number of sets.
func (c Config) Sets() int { return c.Lines() / c.Assoc }

// Validate checks that the geometry is a realizable power-of-two design.
func (c Config) Validate() error {
	switch {
	case c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Assoc <= 0:
		return fmt.Errorf("cache: non-positive geometry %+v", c)
	case c.SizeBytes%(c.LineBytes*c.Assoc) != 0:
		return fmt.Errorf("cache: size %d not divisible by line*assoc", c.SizeBytes)
	case c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("cache: line size %d not a power of two", c.LineBytes)
	case c.Sets()&(c.Sets()-1) != 0:
		return fmt.Errorf("cache: %d sets not a power of two", c.Sets())
	}
	return nil
}

// String renders the geometry like the paper ("16KB, 32B lines, 2-assoc").
func (c Config) String() string {
	return fmt.Sprintf("%dKB, %dB lines, %d-assoc", c.SizeBytes/1024, c.LineBytes, c.Assoc)
}

// Stats counts cache events.
type Stats struct {
	Accesses   uint64
	Misses     uint64
	Writebacks uint64
}

// MissRate returns misses per access.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is a set-associative LRU cache.
type Cache struct {
	cfg     Config
	shift   uint // log2(line bytes)
	setMask uint32
	assoc   int
	tags    []uint32 // sets*assoc; tag = line address (addr >> shift)
	valid   []bool
	dirty   []bool
	stamp   []uint64 // LRU timestamps
	clock   uint64
	stats   Stats
}

// New builds a cache; the config must validate.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	shift := uint(0)
	for 1<<shift < cfg.LineBytes {
		shift++
	}
	n := cfg.Lines()
	return &Cache{
		cfg:     cfg,
		shift:   shift,
		setMask: uint32(cfg.Sets() - 1),
		assoc:   cfg.Assoc,
		tags:    make([]uint32, n),
		valid:   make([]bool, n),
		dirty:   make([]bool, n),
		stamp:   make([]uint64, n),
	}, nil
}

// MustNew is New, panicking on bad config (for presets known valid).
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// LineAddr returns the line-aligned address containing addr.
func (c *Cache) LineAddr(addr uint32) uint32 { return addr &^ (uint32(c.cfg.LineBytes) - 1) }

// Result reports the outcome of an access.
type Result struct {
	Hit            bool
	WritebackDirty bool // a dirty victim must be written back
}

// Access looks up addr, allocating the line on a miss (write-allocate) and
// marking it dirty on writes.
func (c *Cache) Access(addr uint32, write bool) Result {
	c.clock++
	c.stats.Accesses++
	line := addr >> c.shift
	set := line & c.setMask
	base := int(set) * c.assoc
	for i := base; i < base+c.assoc; i++ {
		if c.valid[i] && c.tags[i] == line {
			c.stamp[i] = c.clock
			if write {
				c.dirty[i] = true
			}
			return Result{Hit: true}
		}
	}
	c.stats.Misses++
	// Choose victim: an invalid way, else LRU.
	victim := base
	for i := base; i < base+c.assoc; i++ {
		if !c.valid[i] {
			victim = i
			break
		}
		if c.stamp[i] < c.stamp[victim] {
			victim = i
		}
	}
	res := Result{}
	if c.valid[victim] && c.dirty[victim] {
		res.WritebackDirty = true
		c.stats.Writebacks++
	}
	c.tags[victim] = line
	c.valid[victim] = true
	c.dirty[victim] = write
	c.stamp[victim] = c.clock
	return res
}

// Contains reports whether addr currently hits, without updating LRU state.
func (c *Cache) Contains(addr uint32) bool {
	line := addr >> c.shift
	base := int(line&c.setMask) * c.assoc
	for i := base; i < base+c.assoc; i++ {
		if c.valid[i] && c.tags[i] == line {
			return true
		}
	}
	return false
}

// Reset invalidates all lines and clears statistics.
func (c *Cache) Reset() {
	for i := range c.valid {
		c.valid[i] = false
		c.dirty[i] = false
		c.stamp[i] = 0
	}
	c.clock = 0
	c.stats = Stats{}
}
