package server

import (
	"crypto/sha256"
	"os"
	"path/filepath"
	"testing"
)

// fuzzSeedLog builds a valid cache log holding n records, returned as raw
// bytes, so the fuzzer starts from well-formed corpora.
func fuzzSeedLog(f *testing.F, n int) []byte {
	f.Helper()
	dir := f.TempDir()
	st, _, err := openStore(dir, quietLogger())
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < n; i++ {
		payload := make([]byte, 16+i*7)
		for j := range payload {
			payload[j] = byte(i*31 + j)
		}
		if err := st.append(string(rune('a'+i))+"-key", payload); err != nil {
			f.Fatal(err)
		}
	}
	if err := st.close(); err != nil {
		f.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, logFileName))
	if err != nil {
		f.Fatal(err)
	}
	return raw
}

// FuzzLoadCacheLog feeds arbitrary bytes to the shared log/snapshot
// decoder: it must never panic, never report a good offset beyond the
// input, and never yield an entry whose payload fails its recorded
// SHA-256 or whose key is out of bounds. Seeds cover the corruption
// shapes the recovery path exists for — truncation, bit flips and
// duplicated records.
func FuzzLoadCacheLog(f *testing.F) {
	good := fuzzSeedLog(f, 4)
	f.Add(good)
	f.Add(good[:len(good)-5])                         // torn tail
	f.Add(append(append([]byte{}, good...), good...)) // duplicated stream (magic repeats mid-file)
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)/2] ^= 0x40 // bit flip in a record body
	f.Add(flipped)
	f.Add([]byte(storeMagic))
	f.Add([]byte{})
	f.Add(make([]byte, 256))

	f.Fuzz(func(t *testing.T, data []byte) {
		st := &diskStore{log: quietLogger()}
		var entries []storedEntry
		good := st.replay(data, "fuzz", func(e storedEntry) { entries = append(entries, e) })
		if good < 0 || good > int64(len(data)) {
			t.Fatalf("good offset %d outside input of %d bytes", good, len(data))
		}
		for _, e := range entries {
			if sha256.Sum256(e.payload) != e.sum {
				t.Fatalf("recovered entry %q fails payload verification", e.key)
			}
			if len(e.key) == 0 || len(e.key) > maxRecordKey {
				t.Fatalf("recovered entry with illegal key length %d", len(e.key))
			}
		}

		// Replaying only the good prefix must reproduce exactly the same
		// entries: truncation at `good` is what recovery persists.
		st2 := &diskStore{log: quietLogger()}
		var again []storedEntry
		good2 := st2.replay(data[:good], "fuzz-prefix", func(e storedEntry) { again = append(again, e) })
		if good2 != good {
			t.Fatalf("good prefix shrank on re-replay: %d then %d", good, good2)
		}
		if len(again) != len(entries) {
			t.Fatalf("prefix replay yielded %d entries, full replay %d", len(again), len(entries))
		}
	})
}

// FuzzRecoverCacheDir drives full filesystem recovery on fuzzed log
// bytes: openStore must not panic or error, a torn tail must leave the
// log appendable, and an appended record must survive a reopen. Slower
// than FuzzLoadCacheLog (real files), so it keeps a minimal corpus.
func FuzzRecoverCacheDir(f *testing.F) {
	good := fuzzSeedLog(f, 2)
	f.Add(good)
	f.Add(good[:len(good)-3])
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, logFileName), data, 0o644); err != nil {
			t.Fatal(err)
		}
		st, _, err := openStore(dir, quietLogger())
		if err != nil {
			t.Fatalf("openStore failed on corrupt input: %v", err)
		}
		if err := st.append("post-recovery", []byte("fresh")); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if err := st.close(); err != nil {
			t.Fatalf("close after recovery: %v", err)
		}
		st2, entries, err := openStore(dir, quietLogger())
		if err != nil {
			t.Fatalf("reopen after recovery: %v", err)
		}
		defer st2.close()
		found := false
		for _, e := range entries {
			if e.key == "post-recovery" && string(e.payload) == "fresh" {
				found = true
			}
		}
		if !found {
			t.Fatal("record appended after recovery did not survive a reopen")
		}
	})
}
