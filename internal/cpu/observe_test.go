package cpu

import (
	"testing"

	"codepack/internal/isa"
)

// TestPipelineInvariants checks, for every committed instruction under all
// three fetch models, that the pipeline milestones are ordered:
// fetch <= dispatch < issue < complete <= commit, commits are monotone and
// respect the commit width, and the issue stage never exceeds its width.
func TestPipelineInvariants(t *testing.T) {
	im := loopProgram(t, 3000, `
	lw $t0, 0($gp)
	addu $t1, $t0, $s0
	andi $t2, $t1, 3
	beqz $t2, skipx
	sw $t1, 4($gp)
skipx:
	mult $t1, $s0
	mflo $t3
`)
	for _, model := range []FetchModel{NativeModel(), BaselineModel(), OptimizedModel(), SoftwareModel()} {
		for _, cfg := range Presets() {
			var prevCommit uint64
			commitInCycle := map[uint64]int{}
			issueInCycle := map[uint64]int{}
			n := 0
			_, err := SimulateObserved(im, cfg, model, 0, func(ts Timestamps) {
				n++
				if ts.Dispatch < ts.Fetch {
					t.Fatalf("%s: dispatch %d before fetch %d at pc %#x",
						cfg.Name, ts.Dispatch, ts.Fetch, ts.PC)
				}
				if ts.Issue <= ts.Dispatch {
					t.Fatalf("%s: issue %d not after dispatch %d", cfg.Name, ts.Issue, ts.Dispatch)
				}
				if ts.Complete <= ts.Issue {
					t.Fatalf("%s: complete %d not after issue %d", cfg.Name, ts.Complete, ts.Issue)
				}
				if ts.Commit <= ts.Complete {
					t.Fatalf("%s: commit %d not after complete %d", cfg.Name, ts.Commit, ts.Complete)
				}
				if ts.Commit < prevCommit {
					t.Fatalf("%s: commit went backwards (%d after %d)", cfg.Name, ts.Commit, prevCommit)
				}
				prevCommit = ts.Commit
				commitInCycle[ts.Commit]++
				issueInCycle[ts.Issue]++
			})
			if err != nil {
				t.Fatalf("%s: %v", cfg.Name, err)
			}
			if n == 0 {
				t.Fatalf("%s: observer never called", cfg.Name)
			}
			for cyc, c := range commitInCycle {
				if c > cfg.CommitWidth {
					t.Fatalf("%s: %d commits in cycle %d (width %d)", cfg.Name, c, cyc, cfg.CommitWidth)
				}
			}
			for cyc, c := range issueInCycle {
				if c > cfg.IssueWidth {
					t.Fatalf("%s: %d issues in cycle %d (width %d)", cfg.Name, c, cyc, cfg.IssueWidth)
				}
			}
		}
	}
}

// TestInOrderIssueIsProgramOrder: the 1-issue model must issue strictly in
// program order.
func TestInOrderIssueIsProgramOrder(t *testing.T) {
	im := loopProgram(t, 500, "\tlw $t0, 0($gp)\n\taddu $t1, $t0, $s0\n\taddu $t2, $t2, $s0")
	var last uint64
	_, err := SimulateObserved(im, OneIssue(), NativeModel(), 0, func(ts Timestamps) {
		if ts.Issue <= last {
			t.Fatalf("issue %d not after previous %d at pc %#x", ts.Issue, last, ts.PC)
		}
		last = ts.Issue
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestLoadLatencyVisible: a dependent consumer issues at least two cycles
// after the load issues (address generation + cache access).
func TestLoadLatencyVisible(t *testing.T) {
	im := loopProgram(t, 200, "\tlw $t0, 0($gp)\n\taddu $t1, $t0, $s0")
	var loadComplete uint64
	_, err := SimulateObserved(im, FourIssue(), NativeModel(), 0, func(ts Timestamps) {
		switch ts.Op {
		case isa.OpLW:
			loadComplete = ts.Complete
		case isa.OpADDU:
			if loadComplete > 0 && ts.Issue < loadComplete {
				t.Fatalf("consumer issued at %d before load completed at %d", ts.Issue, loadComplete)
			}
			loadComplete = 0
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCommitCyclesMatchResult: the last observed commit equals the
// reported cycle count.
func TestCommitCyclesMatchResult(t *testing.T) {
	im := loopProgram(t, 1000, "\taddu $t0, $t0, $s0")
	var last uint64
	r, err := SimulateObserved(im, FourIssue(), OptimizedModel(), 0, func(ts Timestamps) {
		last = ts.Commit
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles != last {
		t.Fatalf("result cycles %d, last commit %d", r.Cycles, last)
	}
}
