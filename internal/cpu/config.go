// Package cpu contains the trace-driven timing simulators that stand in for
// the paper's SimpleScalar models: a 1-issue in-order 5-stage pipeline and
// RUU-style out-of-order 4- and 8-issue machines (Table 2).
package cpu

import (
	"fmt"

	"codepack/internal/bpred"
	"codepack/internal/cache"
	"codepack/internal/mem"
)

// PredKind selects the branch predictor of Table 2.
type PredKind int

// Predictor kinds.
const (
	PredBimodal PredKind = iota // bimode, 2048 entries (1-issue)
	PredGshare                  // gshare, 14-bit history (4-issue)
	PredHybrid                  // hybrid with 1024-entry meta table (8-issue)
)

func (k PredKind) String() string {
	switch k {
	case PredBimodal:
		return "bimodal-2048"
	case PredGshare:
		return "gshare-14"
	case PredHybrid:
		return "hybrid-1024"
	}
	return "unknown"
}

func (k PredKind) build() bpred.Predictor {
	switch k {
	case PredGshare:
		return bpred.NewGshare(14)
	case PredHybrid:
		return bpred.NewHybrid(1024, bpred.NewBimodal(4096), bpred.NewGshare(14))
	default:
		return bpred.NewBimodal(2048)
	}
}

// Config describes one simulated architecture (a row of Table 2).
type Config struct {
	Name        string
	InOrder     bool
	FetchQueue  int // fetch-queue entries decoupling fetch from dispatch
	DecodeWidth int // fetch/dispatch bandwidth per cycle
	IssueWidth  int
	CommitWidth int
	RUUSize     int // register update unit (instruction window)
	LSQSize     int // load/store queue

	IntALU   int // function unit counts
	IntMult  int
	MemPorts int
	FPALU    int
	FPMult   int

	Pred PredKind

	ICache cache.Config
	DCache cache.Config
	Mem    mem.Config

	// FrontLatency is the fetch-to-dispatch depth in cycles;
	// RedirectPenalty is added after a mispredicted branch resolves
	// before fetch restarts.
	FrontLatency    int
	RedirectPenalty int

	// ModelWrongPath simulates speculative fetch down the mispredicted
	// direction of conditional branches while the branch resolves:
	// wrong-path lines pollute the I-cache, occupy the bus, and clobber
	// the decompressor's output buffer. Off by default (the calibrated
	// configuration); enable to bound the trace-driven simplification.
	ModelWrongPath bool
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.DecodeWidth < 1 || c.IssueWidth < 1 || c.CommitWidth < 1 {
		return fmt.Errorf("cpu: non-positive width in %q", c.Name)
	}
	if c.RUUSize < 1 || c.LSQSize < 1 || c.FetchQueue < 1 {
		return fmt.Errorf("cpu: non-positive queue size in %q", c.Name)
	}
	if c.IntALU < 1 || c.MemPorts < 1 {
		return fmt.Errorf("cpu: missing function units in %q", c.Name)
	}
	if err := c.ICache.Validate(); err != nil {
		return err
	}
	if err := c.DCache.Validate(); err != nil {
		return err
	}
	return c.Mem.Validate()
}

// OneIssue is the paper's low-end embedded model: single-issue, in-order,
// 5-stage, 8KB caches, bimodal predictor.
func OneIssue() Config {
	return Config{
		Name:        "1-issue",
		InOrder:     true,
		FetchQueue:  4,
		DecodeWidth: 1,
		IssueWidth:  1,
		CommitWidth: 1,
		RUUSize:     8,
		LSQSize:     4,
		IntALU:      1, IntMult: 1, MemPorts: 1, FPALU: 1, FPMult: 1,
		Pred:            PredBimodal,
		ICache:          cache.Config{SizeBytes: 8 * 1024, LineBytes: 32, Assoc: 2},
		DCache:          cache.Config{SizeBytes: 8 * 1024, LineBytes: 16, Assoc: 2},
		Mem:             mem.Baseline(),
		FrontLatency:    1,
		RedirectPenalty: 1,
	}
}

// FourIssue is the paper's baseline for most experiments: 4-wide
// out-of-order, 16KB caches, gshare.
func FourIssue() Config {
	return Config{
		Name:        "4-issue",
		FetchQueue:  16,
		DecodeWidth: 4,
		IssueWidth:  4,
		CommitWidth: 4,
		RUUSize:     64,
		LSQSize:     32,
		IntALU:      4, IntMult: 1, MemPorts: 2, FPALU: 4, FPMult: 1,
		Pred:            PredGshare,
		ICache:          cache.Config{SizeBytes: 16 * 1024, LineBytes: 32, Assoc: 2},
		DCache:          cache.Config{SizeBytes: 16 * 1024, LineBytes: 16, Assoc: 2},
		Mem:             mem.Baseline(),
		FrontLatency:    2,
		RedirectPenalty: 2,
	}
}

// EightIssue is the paper's high-performance model: 8-wide out-of-order,
// 32KB caches, hybrid predictor.
func EightIssue() Config {
	return Config{
		Name:        "8-issue",
		FetchQueue:  32,
		DecodeWidth: 8,
		IssueWidth:  8,
		CommitWidth: 8,
		RUUSize:     128,
		LSQSize:     64,
		IntALU:      8, IntMult: 1, MemPorts: 2, FPALU: 8, FPMult: 1,
		Pred:            PredHybrid,
		ICache:          cache.Config{SizeBytes: 32 * 1024, LineBytes: 32, Assoc: 2},
		DCache:          cache.Config{SizeBytes: 32 * 1024, LineBytes: 16, Assoc: 2},
		Mem:             mem.Baseline(),
		FrontLatency:    2,
		RedirectPenalty: 2,
	}
}

// Presets returns the three Table 2 architectures in paper order.
func Presets() []Config {
	return []Config{OneIssue(), FourIssue(), EightIssue()}
}
