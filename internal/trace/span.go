package trace

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// SpanHeader is the HTTP header that carries the calling span's ID on
// peer hops (GET/PUT/offer), so a cluster-wide request can be stitched
// back together from each node's /debug/trace/recent output: the
// receiving node's root span records the sender's span as its parent.
const SpanHeader = "X-Cpackd-Span"

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value any
}

// String, Int and Bool build span attributes without the caller
// spelling out the struct.
func String(k, v string) Attr  { return Attr{k, v} }
func Int(k string, v int) Attr { return Attr{k, v} }
func Bool(k string, v bool) Attr {
	return Attr{k, v}
}

// Span is one timed stage of a trace: a name, start/end, attributes and
// a parent link. Spans are created with Start (or Tracer.StartTrace for
// roots), annotated with SetAttr, and closed with End. All methods are
// safe on a nil *Span, so call sites need no "is tracing on" branches:
// with no active trace in the context, Start returns nil and every
// subsequent call is a no-op.
type Span struct {
	at     *activeTrace
	seq    int
	id     string
	parent string
	name   string
	start  time.Time

	mu    sync.Mutex
	attrs []Attr
	ended bool
}

// SpanID returns the span's ID ("" for a nil span) — the value
// forwarded in SpanHeader on outbound peer calls.
func (s *Span) SpanID() string {
	if s == nil {
		return ""
	}
	return s.id
}

// SetAttr annotates the span. Later values for the same key win when
// the trace is serialized.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.attrs = append(s.attrs, Attr{key, value})
	}
	s.mu.Unlock()
}

// End closes the span, recording it on its trace. Idempotent: only the
// first End counts. Ending the trace's root span completes the trace —
// it is finalized, pushed into the tracer's ring buffer and reported to
// the OnTraceDone hook; spans still open at that point are dropped.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()
	s.at.finish(s, time.Since(s.start), attrs)
}

type spanCtxKey struct{}

// ContextWithSpan returns ctx carrying s as the current span.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the current span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// Start begins a child of the context's current span and returns a
// context carrying the child. With no active span in ctx it returns
// (ctx, nil): tracing disabled costs one context lookup and nothing
// else.
func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil || parent.at == nil {
		return ctx, nil
	}
	s := parent.at.newSpan(name, parent.id, attrs)
	return ContextWithSpan(ctx, s), s
}

// newSpanID returns an 8-hex-character span ID, unique enough to stitch
// traces across a cluster's ring buffers.
func newSpanID() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "rand-na"
	}
	return hex.EncodeToString(b[:])
}
