// Package peer turns independent cpackd instances into a cooperative
// compression cache cluster — a shared warm tier over the service's
// content-addressed cache.
//
// Members agree on one owner per content digest through a
// consistent-hash Ring over the live membership. Membership is dynamic:
// the configured peer list is only a seed list. Instances announce
// themselves to a seed on startup (join), then keep exchanging
// heartbeats that gossip the full member view — each member carries a
// generation (incarnation) number so verdicts about it are totally
// ordered and a rejoining member supersedes its own tombstone. A member
// that goes silent is suspected after SuspectAfter (it keeps its ring
// arcs — probably a blip, and the circuit breaker already shields
// callers), declared dead after DeadAfter (its arcs redistribute), and
// rediscovered by reconnection probes if it ever comes back. On any
// ring change the Cluster re-runs the anti-entropy offer/want pass so
// entries whose owner moved flow to the new owner.
//
// On a local cache miss an instance first asks the digest's owner over
// HTTP (GET /internal/v1/cache/{digest}) before paying for a
// compression; when it does compress something new, it replicates the
// entry to the owner asynchronously, off the request path — the owner
// is resolved when the push is sent, so queued replications drain to
// the owners of the ring as it is then.
//
// Failure handling is local and bounded: per-attempt timeouts, a small
// number of retries with jittered backoff, and a per-peer circuit
// breaker that opens after consecutive failures (requests then skip the
// peer entirely and fall back to local compression) and probes the peer
// back to health after a cooldown. A breaker opening also feeds the
// failure detector: the peer is marked suspect immediately rather than
// waiting out the full silence window.
//
// Trust: the transport checks an end-to-end SHA-256 of every payload
// (the same per-record sum the durable store uses), and the caller in
// internal/server decompresses each peer-served payload and compares it
// word-for-word against the program it is about to answer for — so a
// misbehaving, rejoining or impostor peer can waste work but can never
// poison a cache.
package peer

import (
	"context"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"codepack/internal/trace"
)

// Defaults for Config zero values.
const (
	DefaultFetchTimeout       = 2 * time.Second
	DefaultRetries            = 1
	DefaultBackoffBase        = 25 * time.Millisecond
	DefaultBreakerThreshold   = 3
	DefaultBreakerCooldown    = 5 * time.Second
	DefaultReplicationQueue   = 256
	DefaultReplicationWorkers = 2
	DefaultOfferBatch         = 256
)

// maxPayloadBytes caps a peer-served payload read; it matches the
// durable store's per-record sanity cap.
const maxPayloadBytes = 64 << 20

// Config parameterizes a Cluster. Self and Peers are required; zero
// values elsewhere pick the defaults above.
type Config struct {
	// Self is this instance's advertised base URL (scheme://host:port),
	// the identity under which it appears in the ring.
	Self string
	// Peers seeds the membership: the other members' base URLs this
	// instance announces itself to on startup. Unlike a static
	// topology, the lists need not match across instances — membership
	// gossip converges the fleet onto the union of whoever actually
	// joined. It may also include Self.
	Peers []string

	// Replicas is the virtual-node count per member (0 = DefaultReplicas).
	Replicas int

	// ReplicationFactor is how many distinct members own each digest
	// (successor-list placement on the ring). 0 or 1 keeps the classic
	// single-owner behaviour; higher values replicate writes to every
	// owner and let fetches fall through to the next replica when one is
	// unreachable or serves a payload that fails verification. A factor
	// above the live member count degrades gracefully to all members.
	ReplicationFactor int

	// FetchTimeout bounds one fetch, replication or membership attempt.
	FetchTimeout time.Duration
	// Retries is the number of extra attempts after the first for an
	// owner fetch (negative = none).
	Retries int
	// BackoffBase is the first retry's backoff; it doubles per attempt
	// with up to 50% added jitter.
	BackoffBase time.Duration

	// BreakerThreshold is the consecutive-failure count that opens a
	// peer's circuit breaker; BreakerCooldown how long it stays open
	// before a probe.
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// ReplicationQueue and ReplicationWorkers size the async
	// write-replication stage; a full queue drops (replication is
	// best-effort — anti-entropy repairs the gaps).
	ReplicationQueue   int
	ReplicationWorkers int

	// OfferBatch caps the digests per anti-entropy offer request.
	OfferBatch int

	// HeartbeatInterval paces the gossip rounds
	// (0 = DefaultHeartbeatInterval).
	HeartbeatInterval time.Duration
	// SuspectAfter is how long a member may go unheard before it is
	// suspected; DeadAfter before a suspect is declared dead and leaves
	// the ring; ReapAfter before a dead/left tombstone is forgotten.
	// Zero values pick the membership defaults.
	SuspectAfter time.Duration
	DeadAfter    time.Duration
	ReapAfter    time.Duration
	// GossipFanout is how many live peers each heartbeat round
	// exchanges views with (0 = DefaultGossipFanout).
	GossipFanout int

	// OnRingChange, when non-nil, runs after every ring rebuild with
	// the new ring epoch and member list. It is called from membership
	// goroutines and HTTP handlers and must not block.
	OnRingChange func(epoch uint64, members []string)

	// AuthKey, when non-nil, returns the cluster signing key for
	// outbound node-to-node requests (nil or empty result = unsigned,
	// the open trusted-network mode). It is a func, not a value, so a
	// hot config reload rotates the key without rebuilding the cluster;
	// it is called once per outbound request and must be cheap.
	AuthKey func() []byte

	// Logger receives peer-traffic warnings (nil = slog.Default()).
	Logger *slog.Logger
	// Transport overrides the HTTP transport (tests).
	Transport http.RoundTripper

	// Tracer, when non-nil, records spans for peer traffic: request-path
	// fetches join the caller's trace via context, and background work
	// (replication pushes) opens its own trace here, stitched to the
	// originating request by trace ID and parent span.
	Tracer *trace.Tracer
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = DefaultReplicas
	}
	if c.ReplicationFactor <= 0 {
		c.ReplicationFactor = 1
	}
	if c.FetchTimeout <= 0 {
		c.FetchTimeout = DefaultFetchTimeout
	}
	if c.Retries == 0 {
		c.Retries = DefaultRetries
	} else if c.Retries < 0 {
		c.Retries = 0
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = DefaultBackoffBase
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = DefaultBreakerThreshold
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = DefaultBreakerCooldown
	}
	if c.ReplicationQueue <= 0 {
		c.ReplicationQueue = DefaultReplicationQueue
	}
	if c.ReplicationWorkers <= 0 {
		c.ReplicationWorkers = DefaultReplicationWorkers
	}
	if c.OfferBatch <= 0 {
		c.OfferBatch = DefaultOfferBatch
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = DefaultHeartbeatInterval
	}
	if c.GossipFanout <= 0 {
		c.GossipFanout = DefaultGossipFanout
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// Cluster is one instance's view of the warm tier: the membership state
// machine, the ring built over its live members, one breaker and HTTP
// client per peer, and the async replication stage.
type Cluster struct {
	cfg     Config
	self    string
	seeds   []string
	members *Membership
	client  *http.Client
	log     *slog.Logger

	ringMu sync.Mutex // serializes ring rebuilds (reads are lock-free)
	ring   atomic.Pointer[Ring]

	bmu      sync.Mutex
	breakers map[string]*breaker // keyed by peer URL; created on demand

	replCh    chan replJob
	replWG    sync.WaitGroup
	stopCh    chan struct{}
	memDone   chan struct{}
	closeOnce sync.Once

	// sendMu fences the replication queue: enqueues hold it shared,
	// Close takes it exclusively to mark the queue closed before closing
	// the channel — membership callbacks (hint drains) can fire from
	// in-flight worker pushes even while Close drains the queue.
	sendMu sync.RWMutex
	closed bool

	hints *hintBuffer

	// qmu guards qtimes, a FIFO of enqueue timestamps mirroring replCh;
	// its head is the age of the oldest job still waiting for a worker.
	qmu    sync.Mutex
	qtimes []time.Time

	stats clusterStats
}

type replJob struct {
	digest  string
	payload []byte

	// targets pins the job to explicit members (hint drains and
	// read-repair re-offers). nil means "the digest's remote owners,
	// resolved at dequeue" — the normal write-replication path, which
	// honors ring changes that happen while the job is queued.
	targets []string
	// fromHint marks a drained handoff hint: a successful push counts as
	// a drain, a failed one re-buffers without recounting.
	fromHint bool

	// Trace lineage of the originating request, so the async push can
	// open a background trace stitched to it.
	traceID    string
	parentSpan string
	enqueued   time.Time
}

// clusterStats are the Cluster's lifetime counters; read via Stats.
type clusterStats struct {
	fetchHits    atomic.Uint64
	fetchMisses  atomic.Uint64
	fetchErrors  atomic.Uint64
	breakerSkips atomic.Uint64

	replEnqueued atomic.Uint64
	replSent     atomic.Uint64
	replDropped  atomic.Uint64
	replErrors   atomic.Uint64

	offeredDigests atomic.Uint64
	offerErrors    atomic.Uint64

	ringChanges    atomic.Uint64
	heartbeats     atomic.Uint64
	heartbeatFails atomic.Uint64

	replicaFallthroughs atomic.Uint64
	readRepairs         atomic.Uint64
	handoffHinted       atomic.Uint64
	handoffDrained      atomic.Uint64
	handoffReassigned   atomic.Uint64
	handoffDropped      atomic.Uint64
}

// Stats is a point-in-time snapshot of the cluster counters.
type Stats struct {
	FetchHits    uint64 `json:"fetch_hits"`
	FetchMisses  uint64 `json:"fetch_misses"`
	FetchErrors  uint64 `json:"fetch_errors"`
	BreakerSkips uint64 `json:"breaker_skips"`

	ReplicationsEnqueued uint64 `json:"replications_enqueued"`
	ReplicationsSent     uint64 `json:"replications_sent"`
	ReplicationsDropped  uint64 `json:"replications_dropped"`
	ReplicationErrors    uint64 `json:"replication_errors"`

	OfferedDigests uint64 `json:"offered_digests"`
	OfferErrors    uint64 `json:"offer_errors"`

	RingChanges       uint64 `json:"ring_changes"`
	Heartbeats        uint64 `json:"heartbeats"`
	HeartbeatFailures uint64 `json:"heartbeat_failures"`

	ReplicaFallthroughs uint64 `json:"replica_fallthroughs"`
	ReadRepairs         uint64 `json:"read_repairs"`
	HandoffHinted       uint64 `json:"handoff_hinted"`
	HandoffDrained      uint64 `json:"handoff_drained"`
	HandoffReassigned   uint64 `json:"handoff_reassigned"`
	HandoffDropped      uint64 `json:"handoff_dropped"`
	HandoffPending      int    `json:"handoff_pending"`
	HandoffPendingBytes int    `json:"handoff_pending_bytes"`
}

// NewCluster validates the seed list, builds the initial ring over it
// and starts the replication workers and the membership gossip loop.
func NewCluster(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if cfg.Self == "" {
		return nil, fmt.Errorf("peer: Self is required")
	}
	if err := validMemberURL(cfg.Self); err != nil {
		return nil, fmt.Errorf("peer: %w", err)
	}
	var seeds []string
	for _, m := range cfg.Peers {
		if err := validMemberURL(m); err != nil {
			return nil, fmt.Errorf("peer: %w", err)
		}
		if m != cfg.Self {
			seeds = append(seeds, m)
		}
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("peer: need at least one seed peer besides Self")
	}
	var c *Cluster
	members := NewMembership(cfg.Self, MembershipConfig{
		SuspectAfter: cfg.SuspectAfter,
		DeadAfter:    cfg.DeadAfter,
		ReapAfter:    cfg.ReapAfter,
		// The callback captures c before it is assigned; membership only
		// fires transitions from gossip and ticks, which start below.
		OnStateChange: func(url string, to MemberState) {
			c.onMemberStateChange(url, to)
		},
	})
	for _, s := range seeds {
		members.AddSeed(s)
	}
	c = &Cluster{
		cfg:      cfg,
		self:     cfg.Self,
		seeds:    seeds,
		members:  members,
		client:   &http.Client{Transport: cfg.Transport},
		log:      cfg.Logger,
		breakers: make(map[string]*breaker),
		replCh:   make(chan replJob, cfg.ReplicationQueue),
		stopCh:   make(chan struct{}),
		memDone:  make(chan struct{}),
		hints:    newHintBuffer(defaultHandoffMaxRecords, defaultHandoffMaxBytes),
	}
	c.ring.Store(NewRing(members.Live(), cfg.Replicas))
	c.replWG.Add(cfg.ReplicationWorkers)
	for i := 0; i < cfg.ReplicationWorkers; i++ {
		go c.replWorker()
	}
	go c.membershipLoop()
	return c, nil
}

// Self returns this instance's ring identity.
func (c *Cluster) Self() string { return c.self }

// Owner returns the current primary ring owner of digest.
func (c *Cluster) Owner(digest string) string { return c.ring.Load().Owner(digest) }

// Owners returns digest's current replica set: the first
// ReplicationFactor distinct members on the ring's successor list.
func (c *Cluster) Owners(digest string) []string {
	return c.ring.Load().Owners(digest, c.cfg.ReplicationFactor)
}

// ReplicationFactor returns the configured replica count per digest.
func (c *Cluster) ReplicationFactor() int { return c.cfg.ReplicationFactor }

// Members returns the current ring member list (including Self).
func (c *Cluster) Members() []string { return c.ring.Load().Members() }

// RingEpoch returns the membership version the current ring reflects;
// it increments exactly when ring membership changes.
func (c *Cluster) RingEpoch() uint64 { return c.members.Version() }

// MembershipView returns the full member view including tombstones,
// sorted by URL — the /debug/vars and metrics surface.
func (c *Cluster) MembershipView() []MemberInfo { return c.members.Snapshot() }

// breakerFor returns (creating on demand) the breaker guarding url.
// Breakers are per-URL and survive membership churn: a member that
// flaps back in meets the same breaker state it earned.
func (c *Cluster) breakerFor(url string) *breaker {
	c.bmu.Lock()
	defer c.bmu.Unlock()
	b, ok := c.breakers[url]
	if !ok {
		b = newBreaker(c.cfg.BreakerThreshold, c.cfg.BreakerCooldown)
		c.breakers[url] = b
	}
	return b
}

// noteSuccess records a completed exchange with a peer on its breaker
// and the failure detector.
func (c *Cluster) noteSuccess(url string, b *breaker) {
	b.success()
	c.members.ObserveAlive(url)
}

// noteFailure records a failed exchange; a breaker that opens marks the
// peer suspect immediately instead of waiting out the silence window.
func (c *Cluster) noteFailure(url string, b *breaker) {
	if b.failure() {
		c.members.ObserveSuspect(url)
	}
}

// onMemberStateChange reacts to membership transitions for the hinted
// handoff buffer: a member back alive (refuted suspicion or rejoined)
// gets its buffered hints drained; one declared dead or left has them
// reassigned to the digests' surviving owners. Fired outside the
// membership lock.
func (c *Cluster) onMemberStateChange(url string, to MemberState) {
	if c == nil || url == c.self {
		return
	}
	switch to {
	case StateAlive:
		c.drainHints(url)
	case StateDead, StateLeft:
		c.reassignHints(url)
	}
}

// tryEnqueue is the single entry into the replication queue: a
// non-blocking send, refused once Close has begun so late membership
// callbacks can never hit a closed channel.
func (c *Cluster) tryEnqueue(j replJob) bool {
	c.sendMu.RLock()
	defer c.sendMu.RUnlock()
	if c.closed {
		return false
	}
	select {
	case c.replCh <- j:
		c.qmu.Lock()
		c.qtimes = append(c.qtimes, j.enqueued)
		c.qmu.Unlock()
		return true
	default:
		return false
	}
}

// drainHints re-enqueues every hint buffered for target as a pinned
// replication job. Called when the target transitions back to alive and
// opportunistically each heartbeat round while it stays healthy; a hint
// that cannot be enqueued (full queue, shutdown) goes back in the
// buffer for the next round.
func (c *Cluster) drainHints(target string) {
	recs := c.hints.take(target)
	if len(recs) == 0 {
		return
	}
	requeued := 0
	for _, rec := range recs {
		j := replJob{
			digest:   rec.Digest,
			payload:  rec.Payload,
			targets:  []string{rec.Target},
			fromHint: true,
			enqueued: time.Now(),
		}
		if c.tryEnqueue(j) {
			requeued++
		} else {
			c.hints.add(rec)
		}
	}
	if requeued > 0 {
		c.log.Info("draining handoff hints", "target", target, "hints", requeued)
	}
}

// reassignHints redirects the hints of a dead or departed member to the
// digests' current owners: the pinned target is dropped and the job
// re-resolves its owner set at dequeue, exactly like a fresh write.
func (c *Cluster) reassignHints(target string) {
	recs := c.hints.take(target)
	for _, rec := range recs {
		j := replJob{
			digest:   rec.Digest,
			payload:  rec.Payload,
			enqueued: time.Now(),
		}
		if c.tryEnqueue(j) {
			c.stats.handoffReassigned.Add(1)
		} else {
			c.stats.handoffDropped.Add(1)
		}
	}
	if len(recs) > 0 {
		c.log.Info("reassigned handoff hints from departed member",
			"target", target, "hints", len(recs))
	}
}

// refreshRing rebuilds the ring if the live membership no longer
// matches it, firing OnRingChange. Cheap when nothing changed; safe
// from any goroutine.
func (c *Cluster) refreshRing() {
	c.ringMu.Lock()
	live := c.members.Live()
	if sameMembers(c.ring.Load().Members(), live) {
		c.ringMu.Unlock()
		return
	}
	c.ring.Store(NewRing(live, c.cfg.Replicas))
	epoch := c.members.Version()
	c.stats.ringChanges.Add(1)
	c.ringMu.Unlock()
	c.log.Info("ring membership changed", "epoch", epoch, "members", len(live))
	if cb := c.cfg.OnRingChange; cb != nil {
		cb(epoch, live)
	}
}

func sameMembers(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// membershipLoop is the gossip driver: an initial join burst to the
// seeds, then heartbeat rounds every HeartbeatInterval until Close.
func (c *Cluster) membershipLoop() {
	defer close(c.memDone)
	ctx := context.Background()
	for _, s := range c.seeds {
		if changed, err := c.exchange(ctx, s, JoinPath); err != nil {
			c.log.Debug("join attempt failed", "seed", s, "err", err)
		} else if changed {
			c.log.Info("joined via seed", "seed", s)
		}
	}
	c.refreshRing()
	t := time.NewTicker(c.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stopCh:
			return
		case <-t.C:
		}
		c.heartbeatRound(ctx)
	}
}

// heartbeatRound advances the failure detector, gossips the view to a
// random fan-out of live peers, and sends one reconnection probe to a
// member outside the ring so healed partitions and restarted seeds are
// rediscovered.
func (c *Cluster) heartbeatRound(ctx context.Context) {
	c.members.Tick()
	var peers []string
	for _, m := range c.members.Live() {
		if m != c.self {
			peers = append(peers, m)
		}
	}
	rand.Shuffle(len(peers), func(i, j int) { peers[i], peers[j] = peers[j], peers[i] })
	if len(peers) > c.cfg.GossipFanout {
		peers = peers[:c.cfg.GossipFanout]
	}
	for _, p := range peers {
		if _, err := c.exchange(ctx, p, HeartbeatPath); err != nil {
			c.stats.heartbeatFails.Add(1)
			c.log.Debug("heartbeat failed", "peer", p, "err", err)
		} else {
			c.stats.heartbeats.Add(1)
		}
	}
	if probe := c.pickProbe(); probe != "" {
		// Best-effort: a dead member that answers will refute its
		// tombstone in the exchanged views and rejoin the ring.
		if _, err := c.exchange(ctx, probe, HeartbeatPath); err != nil {
			c.log.Debug("reconnection probe failed", "peer", probe, "err", err)
		}
	}
	// Opportunistic hint drain: a hinted target that is alive with a
	// closed breaker takes its buffered hints even without a state
	// transition (covers hints buffered on transient push failures and
	// drains the transition round could not enqueue).
	for _, target := range c.hints.targets() {
		if st, ok := c.members.State(target); ok && st == StateAlive &&
			c.breakerFor(target).snapshot().State == "closed" {
			c.drainHints(target)
		}
	}
	c.refreshRing()
}

// pickProbe returns a random known member outside the ring, or a seed
// that has been reaped from the member list entirely ("" if neither).
func (c *Cluster) pickProbe() string {
	candidates := c.members.NonRing()
	for _, s := range c.seeds {
		if _, known := c.members.State(s); !known {
			candidates = append(candidates, s)
		}
	}
	if len(candidates) == 0 {
		return ""
	}
	return candidates[rand.Intn(len(candidates))]
}

// Leave performs a graceful departure: self is marked left (the ring
// drops its arcs), every locally held digest is offered to its
// post-departure owner so warm state survives the exit, and the
// departure is announced to live peers. Call before Close; requests
// arriving during the drain keep working against the reduced ring.
func (c *Cluster) Leave(ctx context.Context, digests []string, payload func(string) ([]byte, bool)) {
	view := c.members.Leave()
	c.refreshRing()
	c.antiEntropyRing(ctx, c.ring.Load(), digests, payload)
	c.announceLeave(ctx, view)
	c.log.Info("left the cluster", "handed_off_digests", len(digests))
}

// Close stops the membership loop and the replication workers; queued
// jobs are drained (each is one bounded HTTP attempt, breaker-gated, so
// this terminates quickly even with dead peers).
func (c *Cluster) Close() {
	c.closeOnce.Do(func() {
		close(c.stopCh)
		<-c.memDone
		c.sendMu.Lock()
		c.closed = true
		c.sendMu.Unlock()
		close(c.replCh)
		c.replWG.Wait()
	})
}

// Stats returns a snapshot of the cluster counters.
func (c *Cluster) Stats() Stats {
	pending, pendingBytes := c.hints.pending()
	return Stats{
		ReplicaFallthroughs: c.stats.replicaFallthroughs.Load(),
		ReadRepairs:         c.stats.readRepairs.Load(),
		HandoffHinted:       c.stats.handoffHinted.Load(),
		HandoffDrained:      c.stats.handoffDrained.Load(),
		HandoffReassigned:   c.stats.handoffReassigned.Load(),
		HandoffDropped:      c.stats.handoffDropped.Load(),
		HandoffPending:      pending,
		HandoffPendingBytes: pendingBytes,

		FetchHits:            c.stats.fetchHits.Load(),
		FetchMisses:          c.stats.fetchMisses.Load(),
		FetchErrors:          c.stats.fetchErrors.Load(),
		BreakerSkips:         c.stats.breakerSkips.Load(),
		ReplicationsEnqueued: c.stats.replEnqueued.Load(),
		ReplicationsSent:     c.stats.replSent.Load(),
		ReplicationsDropped:  c.stats.replDropped.Load(),
		ReplicationErrors:    c.stats.replErrors.Load(),
		OfferedDigests:       c.stats.offeredDigests.Load(),
		OfferErrors:          c.stats.offerErrors.Load(),
		RingChanges:          c.stats.ringChanges.Load(),
		Heartbeats:           c.stats.heartbeats.Load(),
		HeartbeatFailures:    c.stats.heartbeatFails.Load(),
	}
}

// PeerHealth is one peer's breaker and membership view for metrics.
type PeerHealth struct {
	URL    string `json:"url"`
	State  string `json:"state"`
	Member string `json:"member_state"`
	Fails  int    `json:"consecutive_failures"`
	Opens  uint64 `json:"opens"`
}

// Health returns the breaker state of every known peer, sorted by URL.
func (c *Cluster) Health() []PeerHealth {
	out := make([]PeerHealth, 0)
	for _, mi := range c.members.Snapshot() {
		if mi.URL == c.self {
			continue
		}
		snap := c.breakerFor(mi.URL).snapshot()
		out = append(out, PeerHealth{
			URL:    mi.URL,
			State:  snap.State,
			Member: mi.State.String(),
			Fails:  snap.Fails,
			Opens:  snap.Opens,
		})
	}
	return out
}

// ReplQueueDepth returns the number of replication jobs waiting for a
// worker.
func (c *Cluster) ReplQueueDepth() int { return len(c.replCh) }

// ReplQueueOldestAge returns how long the oldest still-queued
// replication job has been waiting (0 with an empty queue). Jobs a
// worker has already picked up no longer count.
func (c *Cluster) ReplQueueOldestAge() time.Duration {
	c.qmu.Lock()
	defer c.qmu.Unlock()
	if len(c.qtimes) == 0 {
		return 0
	}
	return time.Since(c.qtimes[0])
}

// ReportBadPayload records that owner served a payload that failed the
// caller's verification — it counts as a breaker failure exactly like a
// transport error, so a peer serving garbage gets cut off.
func (c *Cluster) ReportBadPayload(owner string) {
	c.noteFailure(owner, c.breakerFor(owner))
	c.stats.fetchErrors.Add(1)
}
