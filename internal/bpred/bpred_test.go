package bpred

import (
	"math/rand"
	"testing"
)

func TestCounterSaturation(t *testing.T) {
	c := counter(0)
	for i := 0; i < 10; i++ {
		c = c.train(true)
	}
	if c != 3 {
		t.Fatalf("counter = %d, want saturated 3", c)
	}
	for i := 0; i < 10; i++ {
		c = c.train(false)
	}
	if c != 0 {
		t.Fatalf("counter = %d, want saturated 0", c)
	}
}

func TestBimodalLearnsBias(t *testing.T) {
	b := NewBimodal(2048)
	pc := uint32(0x400100)
	for i := 0; i < 4; i++ {
		b.Update(pc, true)
	}
	if !b.Predict(pc) {
		t.Fatal("did not learn taken bias")
	}
	for i := 0; i < 4; i++ {
		b.Update(pc, false)
	}
	if b.Predict(pc) {
		t.Fatal("did not learn not-taken bias")
	}
}

func TestBimodalHysteresis(t *testing.T) {
	b := NewBimodal(2048)
	pc := uint32(0x400100)
	for i := 0; i < 4; i++ {
		b.Update(pc, true)
	}
	b.Update(pc, false) // one anomaly must not flip a saturated counter
	if !b.Predict(pc) {
		t.Fatal("single not-taken flipped a strongly-taken counter")
	}
}

func TestBimodalIndexingSeparatesBranches(t *testing.T) {
	b := NewBimodal(2048)
	for i := 0; i < 4; i++ {
		b.Update(0x400000, true)
		b.Update(0x400004, false)
	}
	if !b.Predict(0x400000) || b.Predict(0x400004) {
		t.Fatal("adjacent branches alias")
	}
}

func TestGshareLearnsAlternation(t *testing.T) {
	// A strictly alternating branch is invisible to bimodal but
	// learnable by gshare via its history.
	g := NewGshare(14)
	pc := uint32(0x400200)
	taken := false
	correct := 0
	for i := 0; i < 200; i++ {
		if g.Predict(pc) == taken && i >= 100 {
			correct++
		}
		g.Update(pc, taken)
		taken = !taken
	}
	if correct < 95 {
		t.Fatalf("gshare got %d/100 on alternating pattern after warmup", correct)
	}
}

func TestGshareLearnsLoopExit(t *testing.T) {
	// Pattern T,T,T,N repeating (a 4-iteration loop): gshare should
	// approach perfect accuracy, bimodal caps around 75%.
	g := NewGshare(14)
	b := NewBimodal(2048)
	pc := uint32(0x400300)
	gOK, bOK := 0, 0
	for i := 0; i < 400; i++ {
		taken := i%4 != 3
		if i >= 200 {
			if g.Predict(pc) == taken {
				gOK++
			}
			if b.Predict(pc) == taken {
				bOK++
			}
		}
		g.Update(pc, taken)
		b.Update(pc, taken)
	}
	if gOK < 190 {
		t.Fatalf("gshare %d/200 on loop pattern", gOK)
	}
	if bOK > gOK {
		t.Fatalf("bimodal (%d) beat gshare (%d) on a history pattern", bOK, gOK)
	}
}

func TestHybridPicksBetterComponent(t *testing.T) {
	h := NewHybrid(1024, NewBimodal(4096), NewGshare(14))
	pc := uint32(0x400400)
	// Alternating pattern: the chooser should migrate to gshare.
	taken := false
	correct := 0
	for i := 0; i < 400; i++ {
		if h.Predict(pc) == taken && i >= 300 {
			correct++
		}
		h.Update(pc, taken)
		taken = !taken
	}
	if correct < 95 {
		t.Fatalf("hybrid got %d/100 on alternating pattern", correct)
	}
}

func TestRASPairsCallsAndReturns(t *testing.T) {
	r := NewRAS(8)
	r.Push(100)
	r.Push(200)
	if v, ok := r.Pop(); !ok || v != 200 {
		t.Fatalf("pop = %d,%v", v, ok)
	}
	if v, ok := r.Pop(); !ok || v != 100 {
		t.Fatalf("pop = %d,%v", v, ok)
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("empty stack returned a value")
	}
}

func TestRASOverflowWraps(t *testing.T) {
	r := NewRAS(4)
	for i := 1; i <= 6; i++ {
		r.Push(uint32(i * 10))
	}
	// Deepest entries were overwritten; the newest survive.
	if v, _ := r.Pop(); v != 60 {
		t.Fatalf("pop = %d, want 60", v)
	}
	if v, _ := r.Pop(); v != 50 {
		t.Fatalf("pop = %d, want 50", v)
	}
}

func TestBTB(t *testing.T) {
	b := NewBTB(512)
	if _, ok := b.Lookup(0x400500); ok {
		t.Fatal("cold BTB hit")
	}
	b.Update(0x400500, 0x400800)
	if tgt, ok := b.Lookup(0x400500); !ok || tgt != 0x400800 {
		t.Fatalf("lookup = %#x,%v", tgt, ok)
	}
	// A conflicting pc overwrites the direct-mapped entry.
	b.Update(0x400500+512*4, 0x999000)
	if _, ok := b.Lookup(0x400500); ok {
		t.Fatal("evicted entry still hits")
	}
}

// TestAccuracyOnBiasedStream: all predictors should exceed 90% on a
// 95%-taken branch after warmup.
func TestAccuracyOnBiasedStream(t *testing.T) {
	preds := map[string]Predictor{
		"bimodal": NewBimodal(2048),
		"gshare":  NewGshare(14),
		"hybrid":  NewHybrid(1024, NewBimodal(4096), NewGshare(14)),
	}
	rng := rand.New(rand.NewSource(7))
	for name, p := range preds {
		correct, total := 0, 0
		for i := 0; i < 2000; i++ {
			pc := uint32(0x400000 + (i%8)*4)
			taken := rng.Float64() < 0.95
			if i >= 500 {
				total++
				if p.Predict(pc) == taken {
					correct++
				}
			}
			p.Update(pc, taken)
		}
		// Gshare spreads a random-outcome branch across many history-
		// indexed entries, so it trains slower than bimodal here.
		floor := 0.90
		if name == "gshare" {
			floor = 0.85
		}
		if float64(correct)/float64(total) < floor {
			t.Errorf("%s: %d/%d on 95%%-biased stream", name, correct, total)
		}
	}
}
