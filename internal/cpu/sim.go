package cpu

import (
	"context"
	"fmt"

	"codepack/internal/bpred"
	"codepack/internal/cache"
	"codepack/internal/core"
	"codepack/internal/decomp"
	"codepack/internal/isa"
	"codepack/internal/mem"
	"codepack/internal/program"
	"codepack/internal/vm"
)

// FetchKind selects how instruction-cache misses are serviced.
type FetchKind int

// Fetch models.
const (
	// FetchNative fills lines from uncompressed memory with
	// critical-word-first, the paper's native-code baseline.
	FetchNative FetchKind = iota
	// FetchCodePack decompresses lines through the CodePack engine.
	FetchCodePack
	// FetchSoftware decompresses lines with a software miss handler
	// (the paper's future-work suggestion).
	FetchSoftware
)

// FetchModel describes the instruction-miss path for one simulation.
type FetchModel struct {
	Kind     FetchKind
	CodePack decomp.CodePackConfig
	Software decomp.SoftwareConfig
	// Comp supplies a pre-compressed image so sweeps don't recompress;
	// nil means Simulate compresses the program itself.
	Comp *core.Compressed
	// NoCriticalWordFirst disables the native wrap-around fill (ablation).
	NoCriticalWordFirst bool
}

// NativeModel returns the native-code fetch model.
func NativeModel() FetchModel { return FetchModel{Kind: FetchNative} }

// BaselineModel returns the unoptimized CodePack fetch model.
func BaselineModel() FetchModel {
	return FetchModel{Kind: FetchCodePack, CodePack: decomp.BaselineCodePack()}
}

// OptimizedModel returns the paper's optimized CodePack fetch model
// (64x4 index cache, 2 decompressors per cycle).
func OptimizedModel() FetchModel {
	return FetchModel{Kind: FetchCodePack, CodePack: decomp.OptimizedCodePack()}
}

// SoftwareModel returns the software-managed decompression model from the
// paper's future-work discussion.
func SoftwareModel() FetchModel {
	return FetchModel{Kind: FetchSoftware, Software: decomp.DefaultSoftware()}
}

// Result holds the metrics of one simulation run.
type Result struct {
	Arch         string
	Program      string
	Instructions uint64
	Cycles       uint64
	ICache       cache.Stats
	DCache       cache.Stats
	Bus          mem.Stats
	Branches     uint64
	Mispredicts  uint64
	Loads        uint64
	Stores       uint64
	// CodePack is non-nil for compressed runs.
	CodePack *decomp.CodePackStats
	// Ratio is the compression ratio for compressed runs (0 for native).
	Ratio float64
}

// IPC returns committed instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// IMissRate returns I-cache misses per committed instruction, the paper's
// Table 1 metric (the timing model looks the cache up once per line, so
// per-access rates would overstate misses).
func (r Result) IMissRate() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.ICache.Misses) / float64(r.Instructions)
}

// SpeedupOver returns this run's speedup relative to base (>1 is faster),
// comparing cycles for the same committed instruction count.
func (r Result) SpeedupOver(base Result) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(base.Cycles) / float64(r.Cycles)
}

// Timestamps records when one instruction passed each pipeline milestone;
// see SimulateObserved.
type Timestamps struct {
	PC       uint32
	Op       isa.Op
	Fetch    uint64
	Dispatch uint64
	Issue    uint64
	Complete uint64
	Commit   uint64
}

// Observer receives per-instruction pipeline timestamps.
type Observer func(Timestamps)

// Simulate runs im on the architecture cfg with the given fetch model,
// committing at most maxInstr instructions (0 = run to completion).
func Simulate(im *program.Image, cfg Config, model FetchModel, maxInstr uint64) (Result, error) {
	return SimulateObservedContext(context.Background(), im, cfg, model, maxInstr, nil)
}

// SimulateContext is Simulate with cancellation: the run aborts with the
// context's error at the next cancellation checkpoint (every few thousand
// committed instructions) instead of finishing its instruction budget.
func SimulateContext(ctx context.Context, im *program.Image, cfg Config, model FetchModel, maxInstr uint64) (Result, error) {
	return SimulateObservedContext(ctx, im, cfg, model, maxInstr, nil)
}

// SimulateObserved is Simulate with a per-instruction observer for
// pipeline-level inspection (nil behaves like Simulate).
func SimulateObserved(im *program.Image, cfg Config, model FetchModel, maxInstr uint64, obs Observer) (Result, error) {
	return SimulateObservedContext(context.Background(), im, cfg, model, maxInstr, obs)
}

// cancelCheckMask sets how often the simulation loop polls the context:
// every cancelCheckMask+1 committed instructions (a power of two so the
// check compiles to a mask, keeping the hot loop allocation- and
// branch-cheap between checkpoints).
const cancelCheckMask = 8192 - 1

// SimulateObservedContext is the full-control entry point: cancellable via
// ctx and observable via obs (both optional; context.Background() and nil
// recover Simulate).
func SimulateObservedContext(ctx context.Context, im *program.Image, cfg Config, model FetchModel, maxInstr uint64, obs Observer) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	bus, err := mem.NewBus(cfg.Mem)
	if err != nil {
		return Result{}, err
	}
	icache, err := cache.New(cfg.ICache)
	if err != nil {
		return Result{}, err
	}
	dcache, err := cache.New(cfg.DCache)
	if err != nil {
		return Result{}, err
	}
	if cfg.ICache.LineBytes != decomp.LineBytes {
		return Result{}, fmt.Errorf("cpu: I-cache line must be %d bytes", decomp.LineBytes)
	}

	var engine decomp.Engine
	var cp *decomp.CodePack
	var sw *decomp.Software
	res := Result{Arch: cfg.Name, Program: im.Name}
	switch model.Kind {
	case FetchNative:
		engine = &decomp.Native{Bus: bus, CriticalWordFirst: !model.NoCriticalWordFirst}
	case FetchCodePack, FetchSoftware:
		comp := model.Comp
		if comp == nil {
			comp, err = core.Compress(im)
			if err != nil {
				return Result{}, err
			}
		}
		if model.Kind == FetchCodePack {
			cp, err = decomp.NewCodePack(comp, bus, model.CodePack)
			engine = cp
		} else {
			sw, err = decomp.NewSoftware(comp, bus, model.Software)
			engine = sw
		}
		if err != nil {
			return Result{}, err
		}
		res.Ratio = comp.Stats().Ratio()
	default:
		return Result{}, fmt.Errorf("cpu: unknown fetch kind %d", model.Kind)
	}

	t := newTiming(cfg, engine, icache, dcache, bus)
	t.obs = obs
	machine := vm.New(im)
	var rec vm.Rec
	done := ctx.Done() // nil for context.Background(): no per-step polling
	for !machine.Halted() && (maxInstr == 0 || machine.Executed() < maxInstr) {
		if done != nil && machine.Executed()&cancelCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				return Result{}, fmt.Errorf("cpu: %s on %s aborted after %d instructions: %w",
					im.Name, cfg.Name, machine.Executed(), err)
			}
		}
		if err := machine.Step(&rec); err != nil {
			return Result{}, err
		}
		t.instruction(&rec)
	}

	if cp != nil {
		s := cp.Stats()
		res.CodePack = &s
	}
	if sw != nil {
		s := sw.Stats()
		res.CodePack = &s
	}
	res.Instructions = machine.Executed()
	res.Cycles = t.lastCommit
	res.ICache = icache.Stats()
	res.DCache = dcache.Stats()
	res.Bus = bus.Stats()
	res.Branches = t.branches
	res.Mispredicts = t.mispredicts
	res.Loads = t.loads
	res.Stores = t.stores
	return res, nil
}

// timing is the one-pass trace-driven machine model. For every committed
// instruction it computes fetch, dispatch, issue, completion and commit
// cycles under the configured widths, queues, function units and memory
// hierarchy, in a single pass with no allocation.
type timing struct {
	cfg    Config
	engine decomp.Engine
	icache *cache.Cache
	dcache *cache.Cache
	bus    *mem.Bus
	pred   bpred.Predictor
	ras    *bpred.RAS
	btb    *bpred.BTB

	i uint64 // instruction index
	m uint64 // memory-op index

	fetchCycle uint64
	fetchedNow int
	curLine    uint32
	haveLine   bool
	fill       decomp.LineFill
	fillAddr   uint32
	fillValid  bool
	redirect   uint64

	regReady [66]uint64
	dispRing []uint64 // dispatch time of i-FetchQueue (frees a queue slot)
	winRing  []uint64 // commit time of i-RUUSize (frees a window slot)
	lsqRing  []uint64 // completion of m-LSQSize (frees an LSQ slot)
	issueBW  []uint64
	commitBW []uint64

	fuIntALU []uint64 // per-unit busy-until
	fuIntMul []uint64
	fuMem    []uint64
	fuFPALU  []uint64
	fuFPMul  []uint64

	lastCommit  uint64
	branches    uint64
	mispredicts uint64
	loads       uint64
	stores      uint64
	// stallUntil blocks issue on the in-order core while a D-miss is
	// outstanding (a 5-stage pipeline has blocking loads).
	stallUntil uint64
	obs        Observer
}

func newTiming(cfg Config, e decomp.Engine, ic, dc *cache.Cache, bus *mem.Bus) *timing {
	return &timing{
		cfg:      cfg,
		engine:   e,
		icache:   ic,
		dcache:   dc,
		bus:      bus,
		pred:     cfg.Pred.build(),
		ras:      bpred.NewRAS(16),
		btb:      bpred.NewBTB(512),
		dispRing: make([]uint64, cfg.FetchQueue),
		winRing:  make([]uint64, cfg.RUUSize),
		lsqRing:  make([]uint64, cfg.LSQSize),
		issueBW:  make([]uint64, cfg.IssueWidth),
		commitBW: make([]uint64, cfg.CommitWidth),
		fuIntALU: make([]uint64, cfg.IntALU),
		fuIntMul: make([]uint64, cfg.IntMult),
		fuMem:    make([]uint64, cfg.MemPorts),
		fuFPALU:  make([]uint64, cfg.FPALU),
		fuFPMul:  make([]uint64, cfg.FPMult),
	}
}

func (t *timing) instruction(r *vm.Rec) {
	// ---- Fetch ----
	if t.redirect > 0 {
		if t.redirect > t.fetchCycle {
			t.fetchCycle = t.redirect
			t.fetchedNow = 0
		}
		t.haveLine = false
		t.redirect = 0
	}
	line := r.PC &^ (decomp.LineBytes - 1)
	idx := int(r.PC>>2) & (decomp.LineInstrs - 1)
	if !t.haveLine || line != t.curLine {
		if t.fetchedNow > 0 {
			t.fetchCycle++
			t.fetchedNow = 0
		}
		t.curLine = line
		t.haveLine = true
		t.fillValid = false
		if !t.icache.Access(line, false).Hit {
			t.fill = t.engine.FetchLine(t.fetchCycle, line, idx)
			t.fillAddr = line
			t.fillValid = true
		}
	}
	ft := t.fetchCycle
	if t.fillValid && line == t.fillAddr {
		// Instruction forwarding: each word of the missed line becomes
		// fetchable as it arrives from the fill engine.
		if rdy := t.fill.Ready[idx]; rdy > ft {
			ft = rdy
		}
	}
	// The fetch queue blocks fetch until instruction i-FQ has dispatched.
	if q := t.dispRing[t.i%uint64(t.cfg.FetchQueue)]; q > ft {
		ft = q
	}
	if ft > t.fetchCycle {
		t.fetchCycle = ft
		t.fetchedNow = 0
	}
	t.fetchedNow++
	if t.fetchedNow >= t.cfg.DecodeWidth {
		t.fetchCycle++
		t.fetchedNow = 0
	}

	// ---- Dispatch (decode/rename into the window) ----
	dt := ft + uint64(t.cfg.FrontLatency)
	if w := t.winRing[t.i%uint64(t.cfg.RUUSize)]; w > dt {
		dt = w
	}
	t.dispRing[t.i%uint64(t.cfg.FetchQueue)] = dt

	// ---- Issue ----
	rt := dt + 1
	if r.Src1 != vm.NoReg && t.regReady[r.Src1] > rt {
		rt = t.regReady[r.Src1]
	}
	if r.Src2 != vm.NoReg && t.regReady[r.Src2] > rt {
		rt = t.regReady[r.Src2]
	}
	it := rt
	if bw := t.issueBW[t.i%uint64(t.cfg.IssueWidth)] + 1; bw > it {
		it = bw
	}
	if t.cfg.InOrder && t.stallUntil > it {
		it = t.stallUntil
	}
	isMem := r.Class == isa.ClassLoad || r.Class == isa.ClassStore
	if isMem {
		if l := t.lsqRing[t.m%uint64(t.cfg.LSQSize)]; l > it {
			it = l
		}
	}
	fu, occ := t.unitFor(r)
	best := 0
	for u := 1; u < len(fu); u++ {
		if fu[u] < fu[best] {
			best = u
		}
	}
	if fu[best] > it {
		it = fu[best]
	}
	fu[best] = it + occ
	t.issueBW[t.i%uint64(t.cfg.IssueWidth)] = it

	// ---- Execute / complete ----
	var ct uint64
	switch r.Class {
	case isa.ClassLoad:
		t.loads++
		res := t.dcache.Access(r.MemAddr, false)
		if res.Hit {
			ct = it + 2 // address generation + cache access
		} else {
			lineAddr := t.dcache.LineAddr(r.MemAddr)
			burst := t.bus.Request(it+1, lineAddr, t.cfg.DCache.LineBytes)
			ct = burst.Done() + 1
			if res.WritebackDirty {
				t.bus.Request(burst.Done(), lineAddr, t.cfg.DCache.LineBytes)
			}
			if t.cfg.InOrder {
				t.stallUntil = ct // blocking load on the 5-stage core
			}
		}
	case isa.ClassStore:
		t.stores++
		res := t.dcache.Access(r.MemAddr, true)
		if !res.Hit {
			lineAddr := t.dcache.LineAddr(r.MemAddr)
			burst := t.bus.Request(it+1, lineAddr, t.cfg.DCache.LineBytes)
			if res.WritebackDirty {
				t.bus.Request(burst.Done(), lineAddr, t.cfg.DCache.LineBytes)
			}
		}
		ct = it + 1 // retires through the store buffer
	default:
		ct = it + uint64(isa.Latency(r.Op))
	}
	if isMem {
		t.lsqRing[t.m%uint64(t.cfg.LSQSize)] = ct
		t.m++
	}
	if r.Dest != vm.NoReg {
		t.regReady[r.Dest] = ct
	}

	// ---- Control flow ----
	switch r.Class {
	case isa.ClassBranch:
		t.branches++
		pred := t.pred.Predict(r.PC)
		t.pred.Update(r.PC, r.Taken)
		if pred != r.Taken {
			t.mispredicts++
			t.redirect = ct + uint64(t.cfg.RedirectPenalty)
			if t.cfg.ModelWrongPath && r.AltPC != 0 {
				t.fetchWrongPath(r.AltPC, ft+1, t.redirect)
			}
		} else if r.Taken {
			t.endFetchGroup()
		}
	case isa.ClassJump:
		switch r.Op {
		case isa.OpJAL:
			t.ras.Push(r.PC + 4)
			t.endFetchGroup()
		case isa.OpJ:
			t.endFetchGroup()
		case isa.OpJR:
			tgt, ok := t.ras.Pop()
			if ok && tgt == r.NextPC {
				t.endFetchGroup()
			} else {
				t.mispredicts++
				t.redirect = ct + uint64(t.cfg.RedirectPenalty)
			}
		case isa.OpJALR:
			t.ras.Push(r.PC + 4)
			tgt, ok := t.btb.Lookup(r.PC)
			t.btb.Update(r.PC, r.NextPC)
			if ok && tgt == r.NextPC {
				t.endFetchGroup()
			} else {
				t.mispredicts++
				t.redirect = ct + uint64(t.cfg.RedirectPenalty)
			}
		}
	case isa.ClassSyscall:
		// Serializing: later instructions refetch after it completes.
		t.redirect = ct + 1
	}

	// ---- Commit ----
	cm := ct + 1
	if cm < t.lastCommit {
		cm = t.lastCommit
	}
	if bw := t.commitBW[t.i%uint64(t.cfg.CommitWidth)] + 1; bw > cm {
		cm = bw
	}
	t.commitBW[t.i%uint64(t.cfg.CommitWidth)] = cm
	t.winRing[t.i%uint64(t.cfg.RUUSize)] = cm
	t.lastCommit = cm
	t.i++

	if t.obs != nil {
		t.obs(Timestamps{
			PC: r.PC, Op: r.Op,
			Fetch: ft, Dispatch: dt, Issue: it, Complete: ct, Commit: cm,
		})
	}
}

func (t *timing) endFetchGroup() {
	t.fetchCycle++
	t.fetchedNow = 0
}

// fetchWrongPath models speculative fetch down the wrong direction of a
// mispredicted branch: sequential lines from alt are pulled through the
// I-cache and miss engine until the branch resolves at deadline. The side
// effects — cache pollution, bus occupancy, output-buffer clobbering — are
// what an execution-driven simulator would see.
func (t *timing) fetchWrongPath(alt uint32, start, deadline uint64) {
	now := start
	line := alt &^ (decomp.LineBytes - 1)
	for i := 0; i < 8 && now < deadline; i++ {
		if !t.icache.Access(line, false).Hit {
			fill := t.engine.FetchLine(now, line, int(alt>>2)&(decomp.LineInstrs-1))
			now = fill.Done
		} else {
			// A resident line feeds the wrong-path fetch for a couple
			// of cycles before the next line is needed.
			now += uint64(decomp.LineInstrs / t.cfg.DecodeWidth)
			if t.cfg.DecodeWidth >= decomp.LineInstrs {
				now++
			}
		}
		line += decomp.LineBytes
		alt = line
	}
	// The fetch engine state (current line) is stale after speculation.
	t.haveLine = false
}

// unitFor returns the function-unit pool and occupancy for r.
func (t *timing) unitFor(r *vm.Rec) ([]uint64, uint64) {
	switch r.Class {
	case isa.ClassIntMult:
		return t.fuIntMul, 1
	case isa.ClassIntDiv:
		return t.fuIntMul, 20 // unpipelined divider shares the multiplier
	case isa.ClassLoad, isa.ClassStore:
		return t.fuMem, 1
	case isa.ClassFPALU:
		return t.fuFPALU, 1
	case isa.ClassFPMult:
		if r.Op == isa.OpFDIV {
			return t.fuFPMul, 12
		}
		return t.fuFPMul, 1
	default:
		return t.fuIntALU, 1
	}
}
