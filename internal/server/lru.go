package server

import (
	"sync"

	"codepack"
)

// compCache is the content-addressed compression cache: SHA-256 digest of
// the marshalled program image -> its compressed form, so repeat
// compressions of the same image are served from memory. Eviction reuses
// the timestamp-scan LRU idiom of internal/cache: every entry carries the
// clock value of its last touch and the victim scan picks the minimum.
// The scan is O(entries) per eviction, which at service cache sizes
// (hundreds of entries, each worth a full dictionary build) is noise next
// to a compression, and keeps the structure a flat map with no list links.
type compCache struct {
	mu      sync.Mutex
	cap     int
	clock   uint64
	entries map[string]*compEntry

	hits, misses, evictions uint64
	bytes                   int64
}

type compEntry struct {
	comp  *codepack.Compressed
	stamp uint64
	bytes int64
}

// cacheStats is a point-in-time view of the cache counters.
type cacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
}

// newCompCache builds a cache holding at most capEntries compressed
// programs; capEntries <= 0 disables caching (every get is a miss).
func newCompCache(capEntries int) *compCache {
	c := &compCache{cap: capEntries}
	if capEntries > 0 {
		c.entries = make(map[string]*compEntry, capEntries)
	}
	return c
}

func (c *compCache) get(key string) (*codepack.Compressed, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.clock++
	e.stamp = c.clock
	return e.comp, true
}

func (c *compCache) put(key string, comp *codepack.Compressed) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cap <= 0 {
		return
	}
	if e, ok := c.entries[key]; ok {
		c.clock++
		e.stamp = c.clock
		return
	}
	if len(c.entries) >= c.cap {
		var victim string
		var oldest uint64
		first := true
		for k, e := range c.entries {
			if first || e.stamp < oldest {
				victim, oldest, first = k, e.stamp, false
			}
		}
		c.bytes -= c.entries[victim].bytes
		delete(c.entries, victim)
		c.evictions++
	}
	c.clock++
	bytes := int64(comp.Stats().CompressedBytes())
	c.entries[key] = &compEntry{comp: comp, stamp: c.clock, bytes: bytes}
	c.bytes += bytes
}

func (c *compCache) stats() cacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return cacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   len(c.entries),
		Bytes:     c.bytes,
	}
}
