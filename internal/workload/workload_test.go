package workload

import (
	"testing"

	"codepack/internal/core"
	"codepack/internal/vm"
)

func TestProfilesComplete(t *testing.T) {
	ps := Profiles()
	if len(ps) != 6 {
		t.Fatalf("%d profiles, want 6", len(ps))
	}
	want := []string{"cc1", "go", "mpeg2enc", "pegwit", "perl", "vortex"}
	for i, p := range ps {
		if p.Name != want[i] {
			t.Errorf("profile %d is %q, want %q", i, p.Name, want[i])
		}
		if _, ok := ByName(p.Name); !ok {
			t.Errorf("ByName(%q) failed", p.Name)
		}
	}
	if _, ok := ByName("doom"); ok {
		t.Error("ByName accepted unknown benchmark")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Source(Pegwit())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Source(Pegwit())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("generation is not deterministic")
	}
}

// TestTextSizesMatchPaper checks every profile's static text lands within
// 10% of the paper's Table 3 sizes.
func TestTextSizesMatchPaper(t *testing.T) {
	paper := map[string]int{ // bytes, Table 3 "Original size"
		"cc1":      1_083_168,
		"go":       310_632,
		"mpeg2enc": 118_416,
		"pegwit":   88_560,
		"perl":     267_568,
		"vortex":   495_484,
	}
	for _, p := range Profiles() {
		im, err := Generate(p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		got, want := im.TextBytes(), paper[p.Name]
		ratio := float64(got) / float64(want)
		if ratio < 0.90 || ratio > 1.10 {
			t.Errorf("%s: text %d bytes, paper %d (ratio %.2f)", p.Name, got, want, ratio)
		}
	}
}

// TestProgramsExecute runs each generated program for a while and checks it
// behaves (no faults, reasonable mix).
func TestProgramsExecute(t *testing.T) {
	for _, p := range Profiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			im, err := Generate(p)
			if err != nil {
				t.Fatal(err)
			}
			m := vm.New(im)
			n, err := m.Run(300_000)
			if err != nil {
				t.Fatalf("execution fault: %v", err)
			}
			if n < 300_000 && !m.Halted() {
				t.Fatalf("stopped after %d instructions without halting", n)
			}
		})
	}
}

// TestProgramsRunToCompletion verifies the driver loop terminates near its
// dynamic target (scaled-down profile for test speed).
func TestProgramsRunToCompletion(t *testing.T) {
	p := Pegwit()
	p.TargetDynamic = 400_000
	im, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	m := vm.New(im)
	n, err := m.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Halted() {
		t.Fatal("program did not halt")
	}
	if n < 300_000 || n > 1_200_000 {
		t.Fatalf("executed %d instructions, target 400k", n)
	}
}

// TestCompressionRatioBand checks each benchmark compresses into the
// paper's band (Table 3: 55-63%; we allow 55-67%).
func TestCompressionRatioBand(t *testing.T) {
	for _, p := range Profiles() {
		im, err := Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		c, err := core.Compress(im)
		if err != nil {
			t.Fatal(err)
		}
		r := c.Stats().Ratio()
		if r < 0.50 || r > 0.67 {
			t.Errorf("%s: ratio %.3f outside [0.50, 0.67]", p.Name, r)
		}
	}
}

// TestCompositionShape checks the Table 4 shape: dictionary indices are the
// biggest component, index table ~5%, and a real raw-bits tail exists.
func TestCompositionShape(t *testing.T) {
	im, err := Generate(Go())
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.Compress(im)
	if err != nil {
		t.Fatal(err)
	}
	comp := c.Stats().Composition()
	if comp.IndexTable < 0.03 || comp.IndexTable > 0.07 {
		t.Errorf("index table share %.3f, paper ~0.05", comp.IndexTable)
	}
	if comp.DictIndices < comp.Tags {
		t.Error("indices should outweigh tags")
	}
	if comp.RawBits < 0.10 || comp.RawBits > 0.30 {
		t.Errorf("raw bits share %.3f, paper 0.14-0.21", comp.RawBits)
	}
}

func TestRoundTripThroughCodec(t *testing.T) {
	im, err := Generate(Pegwit())
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.Compress(im)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if out[i] != im.Text[i] {
			t.Fatalf("word %d corrupted by codec", i)
		}
	}
}

func TestDegenerateProfilesRejected(t *testing.T) {
	bad := Pegwit()
	bad.TextKB = 1
	if _, err := Source(bad); err == nil {
		t.Error("tiny text accepted")
	}
	bad = Pegwit()
	bad.WalkEvery = 3
	if _, err := Source(bad); err == nil {
		t.Error("non-power-of-two WalkEvery accepted")
	}
	bad = Pegwit()
	bad.InnerLoop = 0
	if _, err := Source(bad); err == nil {
		t.Error("zero inner loop accepted")
	}
}
