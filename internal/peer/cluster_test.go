package peer

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"codepack/internal/trace"
)

func quiet() *slog.Logger { return slog.New(slog.NewTextHandler(io.Discard, nil)) }

// memSource is an in-memory Source for handler tests.
type memSource struct {
	mu        sync.Mutex
	m         map[string][]byte
	rejectPut error
}

func newMemSource() *memSource { return &memSource{m: make(map[string][]byte)} }

func (s *memSource) Payload(d string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.m[d]
	return p, ok
}

func (s *memSource) Accept(d string, payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.rejectPut != nil {
		return s.rejectPut
	}
	s.m[d] = append([]byte(nil), payload...)
	return nil
}

func (s *memSource) Missing(ds []string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for _, d := range ds {
		if _, ok := s.m[d]; !ok {
			out = append(out, d)
		}
	}
	return out
}

// mountHandler wires a Handler onto a mux the way internal/server does.
func mountHandler(h *Handler) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /internal/v1/cache/{digest}", h.Get)
	mux.HandleFunc("PUT /internal/v1/cache/{digest}", h.Put)
	mux.HandleFunc("POST /internal/v1/cache/offer", h.Offer)
	return mux
}

func testDigestOf(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// newTestCluster builds a 2-member cluster whose only peer is the given
// URL; self is a URL that is never dialed. The membership loop is made
// quiescent (hour-scale heartbeats and timeouts) so these tests see the
// static seed topology; membership dynamics have their own tests.
func newTestCluster(t *testing.T, peerURL string, tweak func(*Config)) *Cluster {
	t.Helper()
	cfg := Config{
		Self:              "http://self.invalid:1",
		Peers:             []string{peerURL},
		FetchTimeout:      2 * time.Second,
		Retries:           1,
		BackoffBase:       time.Millisecond,
		BreakerThreshold:  2,
		BreakerCooldown:   50 * time.Millisecond,
		HeartbeatInterval: time.Hour,
		SuspectAfter:      time.Hour,
		DeadAfter:         2 * time.Hour,
		Logger:            quiet(),
	}
	if tweak != nil {
		tweak(&cfg)
	}
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// peerOwnedDigest returns a digest-shaped key that c's ring assigns to
// the (single) peer rather than to self.
func peerOwnedDigest(t *testing.T, c *Cluster, tag string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		d := testDigestOf([]byte(fmt.Sprintf("%s-%d", tag, i)))
		if owner := c.Owner(d); owner != c.Self() {
			return d
		}
	}
	t.Fatal("no peer-owned digest found")
	return ""
}

func selfOwnedDigest(t *testing.T, c *Cluster, tag string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		d := testDigestOf([]byte(fmt.Sprintf("%s-%d", tag, i)))
		if c.Owner(d) == c.Self() {
			return d
		}
	}
	t.Fatal("no self-owned digest found")
	return ""
}

func TestNewClusterValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"no self", Config{Peers: []string{"http://a:1"}}},
		{"no peers", Config{Self: "http://a:1"}},
		{"self is only member", Config{Self: "http://a:1", Peers: []string{"http://a:1"}}},
		{"bad url", Config{Self: "http://a:1", Peers: []string{"not a url"}}},
		{"relative url", Config{Self: "http://a:1", Peers: []string{"b:1"}}},
	} {
		if _, err := NewCluster(tc.cfg); err == nil {
			t.Errorf("%s: NewCluster accepted invalid config", tc.name)
		}
	}
}

func TestFetchHitMissAndSelf(t *testing.T) {
	src := newMemSource()
	ts := httptest.NewServer(mountHandler(NewHandler(src, quiet())))
	defer ts.Close()
	c := newTestCluster(t, ts.URL, nil)

	payload := []byte("payload-bytes")
	hitD := peerOwnedDigest(t, c, "hit")
	src.Accept(hitD, payload)

	got, owner, out := c.Fetch(context.Background(), hitD, nil)
	if out != FetchHit || !bytes.Equal(got, payload) || owner != ts.URL {
		t.Fatalf("Fetch = (%q, %q, %d), want hit of %q from %s", got, owner, out, payload, ts.URL)
	}

	missD := peerOwnedDigest(t, c, "miss")
	if _, _, out := c.Fetch(context.Background(), missD, nil); out != FetchMiss {
		t.Fatalf("Fetch(absent) outcome = %d, want FetchMiss", out)
	}

	selfD := selfOwnedDigest(t, c, "self")
	if _, _, out := c.Fetch(context.Background(), selfD, nil); out != FetchSelf {
		t.Fatalf("Fetch(self-owned) outcome = %d, want FetchSelf", out)
	}

	st := c.Stats()
	if st.FetchHits != 1 || st.FetchMisses != 1 || st.FetchErrors != 0 {
		t.Errorf("stats %+v, want 1 hit / 1 miss / 0 errors", st)
	}
}

func TestFetchRetriesThenSucceeds(t *testing.T) {
	src := newMemSource()
	inner := mountHandler(NewHandler(src, quiet()))
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, MembershipPathPrefix) {
			http.NotFound(w, r) // startup join burst; not under test here
			return
		}
		if calls.Add(1) == 1 {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()
	c := newTestCluster(t, ts.URL, nil)

	d := peerOwnedDigest(t, c, "retry")
	src.Accept(d, []byte("v"))
	if _, _, out := c.Fetch(context.Background(), d, nil); out != FetchHit {
		t.Fatalf("outcome = %d, want FetchHit on second attempt", out)
	}
	if calls.Load() != 2 {
		t.Errorf("owner saw %d calls, want 2 (one failure, one retry)", calls.Load())
	}
	if st := c.Stats(); st.FetchErrors != 1 || st.FetchHits != 1 {
		t.Errorf("stats %+v, want 1 error + 1 hit", st)
	}
}

func TestFetchRejectsChecksumMismatch(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(SumHeader, testDigestOf([]byte("something else")))
		w.Write([]byte("actual body"))
	}))
	defer ts.Close()
	c := newTestCluster(t, ts.URL, func(cfg *Config) { cfg.Retries = -1 })

	d := peerOwnedDigest(t, c, "sum")
	if _, _, out := c.Fetch(context.Background(), d, nil); out != FetchUnavailable {
		t.Fatalf("outcome = %d, want FetchUnavailable on checksum mismatch", out)
	}
	if st := c.Stats(); st.FetchErrors == 0 {
		t.Error("checksum mismatch not counted as a fetch error")
	}
}

// TestBreakerCutsOffDeadPeerAndRecovers drives the full lifecycle
// against a peer that dies and comes back.
func TestBreakerCutsOffDeadPeerAndRecovers(t *testing.T) {
	src := newMemSource()
	inner := mountHandler(NewHandler(src, quiet()))
	var down atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			conn, _, err := w.(http.Hijacker).Hijack()
			if err == nil {
				conn.Close() // slam the connection: a transport-level failure
			}
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()
	c := newTestCluster(t, ts.URL, func(cfg *Config) {
		cfg.Retries = -1
		cfg.BreakerThreshold = 2
		cfg.BreakerCooldown = 30 * time.Millisecond
	})
	d := peerOwnedDigest(t, c, "life")
	src.Accept(d, []byte("v"))

	if _, _, out := c.Fetch(context.Background(), d, nil); out != FetchHit {
		t.Fatal("healthy peer did not serve a hit")
	}

	down.Store(true)
	for i := 0; i < 2; i++ { // threshold failures trip the breaker
		if _, _, out := c.Fetch(context.Background(), d, nil); out != FetchUnavailable {
			t.Fatalf("failure %d: outcome not FetchUnavailable", i)
		}
	}
	health := c.Health()
	if len(health) != 1 || health[0].State != "open" || health[0].Opens != 1 {
		t.Fatalf("health after failures = %+v, want open with 1 open", health)
	}
	// While open, fetches are skipped without touching the network.
	before := c.Stats().BreakerSkips
	if _, _, out := c.Fetch(context.Background(), d, nil); out != FetchUnavailable {
		t.Fatal("open breaker did not report unavailable")
	}
	if c.Stats().BreakerSkips != before+1 {
		t.Error("open-breaker fetch was not counted as a skip")
	}

	down.Store(false)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, _, out := c.Fetch(context.Background(), d, nil); out == FetchHit {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("breaker never recovered after the peer came back")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if h := c.Health(); h[0].State != "closed" {
		t.Errorf("breaker state after recovery = %s, want closed", h[0].State)
	}
}

func TestReplicateDeliversToOwner(t *testing.T) {
	src := newMemSource()
	ts := httptest.NewServer(mountHandler(NewHandler(src, quiet())))
	defer ts.Close()
	c := newTestCluster(t, ts.URL, nil)

	payload := []byte("replicated-payload")
	d := peerOwnedDigest(t, c, "repl")
	c.Replicate(context.Background(), d, payload)

	deadline := time.Now().Add(5 * time.Second)
	for {
		if got, ok := src.Payload(d); ok {
			if !bytes.Equal(got, payload) {
				t.Fatal("replicated payload corrupted")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("replication never arrived")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Self-owned digests are not replicated anywhere.
	c.Replicate(context.Background(), selfOwnedDigest(t, c, "replself"), payload)
	if st := c.Stats(); st.ReplicationsEnqueued != 1 {
		t.Errorf("enqueued = %d, want 1 (self-owned push must not enqueue)", st.ReplicationsEnqueued)
	}
}

func TestAntiEntropyWarmsOwner(t *testing.T) {
	src := newMemSource()
	ts := httptest.NewServer(mountHandler(NewHandler(src, quiet())))
	defer ts.Close()
	c := newTestCluster(t, ts.URL, func(cfg *Config) { cfg.OfferBatch = 2 })

	// Five peer-owned entries locally, one of which the owner already
	// has; plus one self-owned entry that must not be offered.
	local := make(map[string][]byte)
	var digests []string
	for i := 0; i < 5; i++ {
		d := peerOwnedDigest(t, c, fmt.Sprintf("ae-%d", i))
		local[d] = []byte("payload-" + d[:8])
		digests = append(digests, d)
	}
	src.Accept(digests[0], local[digests[0]])
	selfD := selfOwnedDigest(t, c, "ae-self")
	local[selfD] = []byte("self-payload")
	digests = append(digests, selfD)

	c.AntiEntropy(context.Background(), digests, func(d string) ([]byte, bool) {
		p, ok := local[d]
		return p, ok
	})

	for _, d := range digests[:5] {
		got, ok := src.Payload(d)
		if !ok || !bytes.Equal(got, local[d]) {
			t.Fatalf("owner missing anti-entropy digest %s", d[:8])
		}
	}
	if _, ok := src.Payload(selfD); ok {
		t.Error("self-owned digest was pushed to a peer")
	}
	st := c.Stats()
	if st.OfferedDigests != 5 {
		t.Errorf("offered %d digests, want 5", st.OfferedDigests)
	}
	if st.ReplicationsSent != 4 {
		t.Errorf("pushed %d entries, want 4 (owner already had one)", st.ReplicationsSent)
	}
}

func TestHandlerRejectsBadRequests(t *testing.T) {
	src := newMemSource()
	ts := httptest.NewServer(mountHandler(NewHandler(src, quiet())))
	defer ts.Close()
	client := ts.Client()

	good := testDigestOf([]byte("x"))

	// Malformed digests.
	for _, path := range []string{
		CachePathPrefix + "nothex",
		CachePathPrefix + good[:40],
	} {
		resp, err := client.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s = %d, want 400", path, resp.StatusCode)
		}
	}

	// PUT with a checksum that does not match the body.
	req, _ := http.NewRequest(http.MethodPut, ts.URL+CachePathPrefix+good,
		bytes.NewReader([]byte("body")))
	req.Header.Set(SumHeader, testDigestOf([]byte("different")))
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("PUT with bad sum = %d, want 400", resp.StatusCode)
	}
	if _, ok := src.Payload(good); ok {
		t.Error("corrupt PUT was stored")
	}

	// PUT whose payload the source rejects (does not parse).
	src.rejectPut = fmt.Errorf("does not parse")
	body := []byte("garbage")
	req, _ = http.NewRequest(http.MethodPut, ts.URL+CachePathPrefix+good, bytes.NewReader(body))
	req.Header.Set(SumHeader, testDigestOf(body))
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("rejected PUT = %d, want 422", resp.StatusCode)
	}

	// Oversized offer.
	many := offerRequest{Digests: make([]string, maxOfferDigests+1)}
	raw, _ := json.Marshal(many)
	resp, err = client.Post(ts.URL+OfferPath, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized offer = %d, want 400", resp.StatusCode)
	}
}

// newReplicatedCluster builds a 3-member view (self plus two httptest
// peers) at ReplicationFactor 2, membership quiescent.
func newReplicatedCluster(t *testing.T, urlA, urlB string, tweak func(*Config)) *Cluster {
	t.Helper()
	cfg := Config{
		Self:              "http://self.invalid:1",
		Peers:             []string{urlA, urlB},
		ReplicationFactor: 2,
		FetchTimeout:      2 * time.Second,
		Retries:           -1,
		BackoffBase:       time.Millisecond,
		BreakerThreshold:  2,
		BreakerCooldown:   50 * time.Millisecond,
		HeartbeatInterval: time.Hour,
		SuspectAfter:      time.Hour,
		DeadAfter:         2 * time.Hour,
		Logger:            quiet(),
	}
	if tweak != nil {
		tweak(&cfg)
	}
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// digestOwnedByBoth finds a digest whose R=2 replica set is exactly
// [a, b] in that successor order (a is the primary).
func digestOwnedByBoth(t *testing.T, c *Cluster, a, b, tag string) string {
	t.Helper()
	for i := 0; i < 50000; i++ {
		d := testDigestOf([]byte(fmt.Sprintf("%s-%d", tag, i)))
		owners := c.Owners(d)
		if len(owners) == 2 && owners[0] == a && owners[1] == b {
			return d
		}
	}
	t.Fatalf("no digest found with owners [%s, %s]", a, b)
	return ""
}

// TestReplicateFansOutToAllReplicas: at R=2 a write lands on both
// remote owners, not just the primary.
func TestReplicateFansOutToAllReplicas(t *testing.T) {
	srcA, srcB := newMemSource(), newMemSource()
	tsA := httptest.NewServer(mountHandler(NewHandler(srcA, quiet())))
	defer tsA.Close()
	tsB := httptest.NewServer(mountHandler(NewHandler(srcB, quiet())))
	defer tsB.Close()
	c := newReplicatedCluster(t, tsA.URL, tsB.URL, nil)

	payload := []byte("fan-out-payload")
	d := digestOwnedByBoth(t, c, tsA.URL, tsB.URL, "fanout")
	c.Replicate(context.Background(), d, payload)

	deadline := time.Now().Add(5 * time.Second)
	for {
		pa, oka := srcA.Payload(d)
		pb, okb := srcB.Payload(d)
		if oka && okb {
			if !bytes.Equal(pa, payload) || !bytes.Equal(pb, payload) {
				t.Fatal("replicated payload corrupted")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replication incomplete: A=%v B=%v", oka, okb)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := c.Stats(); st.ReplicationsSent != 2 {
		t.Errorf("sent = %d, want 2 (one push per replica)", st.ReplicationsSent)
	}
}

// TestFetchFallsThroughToSecondReplica: replica 1 lacks the entry,
// replica 2 serves it; the walk counts a fallthrough and read-repairs
// the lagging replica without an anti-entropy pass.
func TestFetchFallsThroughToSecondReplica(t *testing.T) {
	srcA, srcB := newMemSource(), newMemSource()
	tsA := httptest.NewServer(mountHandler(NewHandler(srcA, quiet())))
	defer tsA.Close()
	tsB := httptest.NewServer(mountHandler(NewHandler(srcB, quiet())))
	defer tsB.Close()
	c := newReplicatedCluster(t, tsA.URL, tsB.URL, nil)

	payload := []byte("replica-2-payload")
	d := digestOwnedByBoth(t, c, tsA.URL, tsB.URL, "fall")
	primary, secondary := srcA, srcB
	secondary.Accept(d, payload)

	got, _, out := c.Fetch(context.Background(), d, nil)
	if out != FetchHit || !bytes.Equal(got, payload) {
		t.Fatalf("Fetch = (%q, %d), want hit from the second replica", got, out)
	}
	st := c.Stats()
	if st.ReplicaFallthroughs != 1 {
		t.Errorf("fallthroughs = %d, want 1", st.ReplicaFallthroughs)
	}
	if st.ReadRepairs != 1 {
		t.Errorf("read repairs = %d, want 1", st.ReadRepairs)
	}
	// The lagging primary converges via the repair push.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if p, ok := primary.Payload(d); ok {
			if !bytes.Equal(p, payload) {
				t.Fatal("read-repaired payload corrupted")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("read repair never reached the lagging replica")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFetchVerifyFailureFallsThrough: a replica serving bytes that fail
// the caller's verification is charged and skipped; the next replica's
// verified payload is returned.
func TestFetchVerifyFailureFallsThrough(t *testing.T) {
	good := []byte("good-payload")
	evil := []byte("evil-payload")
	srcB := newMemSource()
	tsB := httptest.NewServer(mountHandler(NewHandler(srcB, quiet())))
	defer tsB.Close()
	// tsA always serves the evil payload with a correct transport sum.
	tsA := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, CachePathPrefix) {
			http.NotFound(w, r)
			return
		}
		w.Header().Set(SumHeader, testDigestOf(evil))
		w.Write(evil)
	}))
	defer tsA.Close()
	c := newReplicatedCluster(t, tsA.URL, tsB.URL, nil)

	d := digestOwnedByBoth(t, c, tsA.URL, tsB.URL, "verify")
	srcB.Accept(d, good)

	verify := func(owner string, payload []byte) bool { return bytes.Equal(payload, good) }
	got, owner, out := c.Fetch(context.Background(), d, verify)
	if out != FetchHit || !bytes.Equal(got, good) || owner != tsB.URL {
		t.Fatalf("Fetch = (%q, %s, %d), want verified hit from B", got, owner, out)
	}
	st := c.Stats()
	if st.FetchErrors == 0 {
		t.Error("verification failure not counted as a fetch error")
	}
	if st.ReplicaFallthroughs != 1 {
		t.Errorf("fallthroughs = %d, want 1", st.ReplicaFallthroughs)
	}
}

// TestHandoffHintAndDrain drives the full hint lifecycle: pushes to a
// downed replica are buffered as hints (the member is suspect, not
// dead), and when the member proves alive again the hints drain and the
// entry is delivered.
func TestHandoffHintAndDrain(t *testing.T) {
	srcA, srcB := newMemSource(), newMemSource()
	innerA := mountHandler(NewHandler(srcA, quiet()))
	var downA atomic.Bool
	tsA := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if downA.Load() {
			conn, _, err := w.(http.Hijacker).Hijack()
			if err == nil {
				conn.Close()
			}
			return
		}
		innerA.ServeHTTP(w, r)
	}))
	defer tsA.Close()
	tsB := httptest.NewServer(mountHandler(NewHandler(srcB, quiet())))
	defer tsB.Close()
	c := newReplicatedCluster(t, tsA.URL, tsB.URL, func(cfg *Config) {
		cfg.BreakerThreshold = 1
		cfg.BreakerCooldown = 20 * time.Millisecond
	})

	payload := []byte("hinted-payload")
	d := digestOwnedByBoth(t, c, tsA.URL, tsB.URL, "hint")

	downA.Store(true)
	c.Replicate(context.Background(), d, payload)

	// B gets its copy; A's push fails and is hinted (the breaker opening
	// marked A suspect, so it is still in the ring).
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := c.Stats()
		if _, ok := srcB.Payload(d); ok && st.HandoffHinted >= 1 && st.HandoffPending >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("hint never buffered: stats %+v", c.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st, _ := c.members.State(tsA.URL); st != StateSuspect {
		t.Fatalf("downed replica state = %v, want suspect", st)
	}

	// A comes back; a successful exchange flips it suspect -> alive,
	// which fires the drain.
	downA.Store(false)
	deadline = time.Now().Add(10 * time.Second)
	for {
		// Any successful contact (here: a fetch walk that reaches A once
		// the breaker cools down) re-observes it alive.
		c.Fetch(context.Background(), d, nil)
		if p, ok := srcA.Payload(d); ok {
			if !bytes.Equal(p, payload) {
				t.Fatal("drained payload corrupted")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("hint never drained: stats %+v", c.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
	deadline = time.Now().Add(5 * time.Second)
	for c.Stats().HandoffDrained == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("drain not counted: stats %+v", c.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if n, _ := c.hints.pending(); n != 0 {
		t.Errorf("hints still pending after drain: %d", n)
	}
}

// TestFetchForwardsTraceID pins request-ID propagation: the ID on the
// inbound request context must ride the outbound peer call.
func TestFetchForwardsTraceID(t *testing.T) {
	var gotID atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, CachePathPrefix) {
			gotID.Store(r.Header.Get(trace.Header))
		}
		http.Error(w, "not cached", http.StatusNotFound)
	}))
	defer ts.Close()
	c := newTestCluster(t, ts.URL, nil)

	ctx := trace.WithID(context.Background(), "req-abc-123")
	c.Fetch(ctx, peerOwnedDigest(t, c, "trace"), nil)
	if got, _ := gotID.Load().(string); got != "req-abc-123" {
		t.Errorf("peer saw request ID %q, want req-abc-123", got)
	}
}
