package peer

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// DefaultReplicas is the number of virtual nodes each member contributes
// to the ring. 128 points per node keeps the ownership split within a
// few percent of even for small static clusters while the ring stays a
// few KB.
const DefaultReplicas = 128

// Ring is a consistent-hash ring over a static member list. Every
// member contributes `replicas` virtual points; a key is owned by the
// member whose point follows the key's hash clockwise. Adding or
// removing one member therefore moves only the keys that member owned
// (or now owns) — the rest of the fleet's warm entries stay put.
//
// Membership is value state: a Ring is immutable after NewRing, so
// lookups need no locking.
type Ring struct {
	nodes  []string
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	node int // index into nodes
}

// NewRing builds a ring over the given members (duplicates are
// dropped; order does not matter — two instances configured with the
// same member set agree on every owner). replicas <= 0 uses
// DefaultReplicas. An empty member list yields a ring that owns
// nothing.
func NewRing(members []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	seen := make(map[string]bool, len(members))
	nodes := make([]string, 0, len(members))
	for _, m := range members {
		if m != "" && !seen[m] {
			seen[m] = true
			nodes = append(nodes, m)
		}
	}
	sort.Strings(nodes)
	r := &Ring{nodes: nodes, points: make([]ringPoint, 0, len(nodes)*replicas)}
	for ni, n := range nodes {
		for i := 0; i < replicas; i++ {
			r.points = append(r.points, ringPoint{ringHash(n + "#" + strconv.Itoa(i)), ni})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// Ties (vanishingly rare) break deterministically by node order
		// so every instance still agrees.
		return a.node < b.node
	})
	return r
}

// Owner returns the member that owns key ("" on an empty ring).
func (r *Ring) Owner(key string) string {
	owners := r.Owners(key, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// Owners returns the key's successor list: the first n distinct members
// whose points follow the key's hash clockwise, vnodes of
// already-chosen members skipped. Owners(key, 1)[0] is Owner(key), and
// removing a member that is not in the list never changes it — its
// points are only reached after the list is already full. n larger than
// the member count degrades gracefully to every member, in successor
// order. n <= 0 is treated as 1.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.points) == 0 {
		return nil
	}
	if n <= 0 {
		n = 1
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if start == len(r.points) {
		start = 0 // wrap: the lowest point owns the top arc
	}
	owners := make([]string, 0, n)
	chosen := make([]bool, len(r.nodes))
	for i := 0; i < len(r.points) && len(owners) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if chosen[p.node] {
			continue
		}
		chosen[p.node] = true
		owners = append(owners, r.nodes[p.node])
	}
	return owners
}

// Members returns the deduplicated, sorted member list.
func (r *Ring) Members() []string {
	out := make([]string, len(r.nodes))
	copy(out, r.nodes)
	return out
}

// ringHash maps a string to a point on the ring. SHA-256 (truncated to
// 64 bits) rather than a fast non-cryptographic hash: ring placement
// must be identical on every instance forever, so it is pinned to a
// primitive whose output can never drift between Go releases.
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}
