module codepack

go 1.23
