// Package vm is the SS32 functional emulator. It executes a program image
// architecturally and emits one trace record per committed instruction; the
// timing simulators in internal/cpu replay that stream against their
// machine models.
package vm

import (
	"fmt"

	"codepack/internal/isa"
	"codepack/internal/program"
)

// Register identifiers used in trace records. Integer registers are 0..31,
// floating-point registers 32..63, and HI/LO are RegHI/RegLO.
const (
	RegHI = 64
	RegLO = 65
	// NoReg marks an unused source or destination slot.
	NoReg = 255
)

// Rec describes one committed instruction for the timing models.
type Rec struct {
	PC      uint32
	NextPC  uint32 // architectural successor (branch targets resolved)
	AltPC   uint32 // the direction NOT taken (conditional branches only)
	MemAddr uint32 // effective address for loads/stores
	Op      isa.Op
	Class   isa.Class
	Src1    uint8 // trace register IDs; NoReg when absent
	Src2    uint8
	Dest    uint8
	Taken   bool // for conditional branches
}

// Machine is an SS32 architectural machine.
type Machine struct {
	im   *program.Image
	dec  []isa.Inst // pre-decoded text
	pc   uint32
	reg  [32]uint32
	freg [32]float64
	hi   uint32
	lo   uint32
	mem  pagedMem

	halted bool
	count  uint64
	out    []byte
}

// New creates a machine with im loaded and architectural state initialized
// (stack pointer, globals pointer, entry PC).
func New(im *program.Image) *Machine {
	m := &Machine{
		im:  im,
		dec: make([]isa.Inst, len(im.Text)),
		pc:  im.Entry,
	}
	for i, w := range im.Text {
		m.dec[i] = isa.Decode(w)
	}
	m.reg[isa.RegSP] = isa.StackTop
	m.reg[isa.RegGP] = isa.GlobalBase
	m.mem.init()
	m.mem.write(im.DataBase, im.Data)
	return m
}

// Halted reports whether the program has exited.
func (m *Machine) Halted() bool { return m.halted }

// Executed returns the number of committed instructions so far.
func (m *Machine) Executed() uint64 { return m.count }

// PC returns the current program counter.
func (m *Machine) PC() uint32 { return m.pc }

// Output returns everything the program printed via syscalls.
func (m *Machine) Output() string { return string(m.out) }

// Reg returns the value of integer register r.
func (m *Machine) Reg(r int) uint32 { return m.reg[r&31] }

// Run executes until the program halts, an error occurs, or max instructions
// have committed (max <= 0 means unlimited). It returns the number of
// instructions committed by this call.
func (m *Machine) Run(max uint64) (uint64, error) {
	var rec Rec
	var n uint64
	for !m.halted && (max <= 0 || n < max) {
		if err := m.Step(&rec); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// Step executes one instruction, filling rec with its trace record.
func (m *Machine) Step(rec *Rec) error {
	if m.halted {
		return fmt.Errorf("vm: machine halted")
	}
	idx := (m.pc - m.im.TextBase) / 4
	if int(idx) >= len(m.dec) || m.pc < m.im.TextBase {
		return fmt.Errorf("vm: pc 0x%x outside text after %d instructions", m.pc, m.count)
	}
	in := &m.dec[idx]
	pc := m.pc
	next := pc + 4
	*rec = Rec{PC: pc, Op: in.Op, Class: isa.ClassOf(in.Op), Src1: NoReg, Src2: NoReg, Dest: NoReg}

	rs := m.reg[in.Rs]
	rt := m.reg[in.Rt]
	setD := func(r uint8, v uint32) {
		if r != 0 {
			m.reg[r] = v
		}
		rec.Dest = r
	}
	src := func(r uint8) uint8 { return r } // int trace ID == reg number

	switch in.Op {
	case isa.OpSLL:
		rec.Src1 = src(in.Rt)
		setD(in.Rd, rt<<in.Shamt)
		if in.Rd == 0 && in.Rt == 0 && in.Shamt == 0 {
			rec.Class = isa.ClassNop
		}
	case isa.OpSRL:
		rec.Src1 = src(in.Rt)
		setD(in.Rd, rt>>in.Shamt)
	case isa.OpSRA:
		rec.Src1 = src(in.Rt)
		setD(in.Rd, uint32(int32(rt)>>in.Shamt))
	case isa.OpSLLV:
		rec.Src1, rec.Src2 = src(in.Rt), src(in.Rs)
		setD(in.Rd, rt<<(rs&31))
	case isa.OpSRLV:
		rec.Src1, rec.Src2 = src(in.Rt), src(in.Rs)
		setD(in.Rd, rt>>(rs&31))
	case isa.OpSRAV:
		rec.Src1, rec.Src2 = src(in.Rt), src(in.Rs)
		setD(in.Rd, uint32(int32(rt)>>(rs&31)))
	case isa.OpADD, isa.OpADDU:
		rec.Src1, rec.Src2 = src(in.Rs), src(in.Rt)
		setD(in.Rd, rs+rt)
	case isa.OpSUB, isa.OpSUBU:
		rec.Src1, rec.Src2 = src(in.Rs), src(in.Rt)
		setD(in.Rd, rs-rt)
	case isa.OpAND:
		rec.Src1, rec.Src2 = src(in.Rs), src(in.Rt)
		setD(in.Rd, rs&rt)
	case isa.OpOR:
		rec.Src1, rec.Src2 = src(in.Rs), src(in.Rt)
		setD(in.Rd, rs|rt)
	case isa.OpXOR:
		rec.Src1, rec.Src2 = src(in.Rs), src(in.Rt)
		setD(in.Rd, rs^rt)
	case isa.OpNOR:
		rec.Src1, rec.Src2 = src(in.Rs), src(in.Rt)
		setD(in.Rd, ^(rs | rt))
	case isa.OpSLT:
		rec.Src1, rec.Src2 = src(in.Rs), src(in.Rt)
		setD(in.Rd, b2u(int32(rs) < int32(rt)))
	case isa.OpSLTU:
		rec.Src1, rec.Src2 = src(in.Rs), src(in.Rt)
		setD(in.Rd, b2u(rs < rt))
	case isa.OpMULT:
		rec.Src1, rec.Src2 = src(in.Rs), src(in.Rt)
		p := int64(int32(rs)) * int64(int32(rt))
		m.hi, m.lo = uint32(uint64(p)>>32), uint32(p)
		rec.Dest = RegLO
	case isa.OpMULTU:
		rec.Src1, rec.Src2 = src(in.Rs), src(in.Rt)
		p := uint64(rs) * uint64(rt)
		m.hi, m.lo = uint32(p>>32), uint32(p)
		rec.Dest = RegLO
	case isa.OpDIV:
		rec.Src1, rec.Src2 = src(in.Rs), src(in.Rt)
		if rt != 0 {
			m.lo = uint32(int32(rs) / int32(rt))
			m.hi = uint32(int32(rs) % int32(rt))
		}
		rec.Dest = RegLO
	case isa.OpDIVU:
		rec.Src1, rec.Src2 = src(in.Rs), src(in.Rt)
		if rt != 0 {
			m.lo, m.hi = rs/rt, rs%rt
		}
		rec.Dest = RegLO
	case isa.OpMFHI:
		rec.Src1 = RegHI
		setD(in.Rd, m.hi)
	case isa.OpMFLO:
		rec.Src1 = RegLO
		setD(in.Rd, m.lo)
	case isa.OpJR:
		rec.Src1 = src(in.Rs)
		next = rs
		rec.Taken = true
	case isa.OpJALR:
		rec.Src1 = src(in.Rs)
		setD(in.Rd, pc+4)
		next = rs
		rec.Taken = true
	case isa.OpJ:
		next = in.Target
		rec.Taken = true
	case isa.OpJAL:
		setD(isa.RegRA, pc+4)
		next = in.Target
		rec.Taken = true
	case isa.OpBEQ:
		rec.Src1, rec.Src2 = src(in.Rs), src(in.Rt)
		rec.AltPC = isa.BranchTarget(pc, *in)
		if rs == rt {
			next = isa.BranchTarget(pc, *in)
			rec.Taken = true
		}
	case isa.OpBNE:
		rec.Src1, rec.Src2 = src(in.Rs), src(in.Rt)
		rec.AltPC = isa.BranchTarget(pc, *in)
		if rs != rt {
			next = isa.BranchTarget(pc, *in)
			rec.Taken = true
		}
	case isa.OpBLEZ:
		rec.Src1 = src(in.Rs)
		rec.AltPC = isa.BranchTarget(pc, *in)
		if int32(rs) <= 0 {
			next = isa.BranchTarget(pc, *in)
			rec.Taken = true
		}
	case isa.OpBGTZ:
		rec.Src1 = src(in.Rs)
		rec.AltPC = isa.BranchTarget(pc, *in)
		if int32(rs) > 0 {
			next = isa.BranchTarget(pc, *in)
			rec.Taken = true
		}
	case isa.OpBLTZ:
		rec.Src1 = src(in.Rs)
		rec.AltPC = isa.BranchTarget(pc, *in)
		if int32(rs) < 0 {
			next = isa.BranchTarget(pc, *in)
			rec.Taken = true
		}
	case isa.OpBGEZ:
		rec.Src1 = src(in.Rs)
		rec.AltPC = isa.BranchTarget(pc, *in)
		if int32(rs) >= 0 {
			next = isa.BranchTarget(pc, *in)
			rec.Taken = true
		}
	case isa.OpADDI, isa.OpADDIU:
		rec.Src1 = src(in.Rs)
		setD(in.Rt, rs+uint32(in.Imm))
	case isa.OpSLTI:
		rec.Src1 = src(in.Rs)
		setD(in.Rt, b2u(int32(rs) < in.Imm))
	case isa.OpSLTIU:
		rec.Src1 = src(in.Rs)
		setD(in.Rt, b2u(rs < uint32(in.Imm)))
	case isa.OpANDI:
		rec.Src1 = src(in.Rs)
		setD(in.Rt, rs&in.UImm)
	case isa.OpORI:
		rec.Src1 = src(in.Rs)
		setD(in.Rt, rs|in.UImm)
	case isa.OpXORI:
		rec.Src1 = src(in.Rs)
		setD(in.Rt, rs^in.UImm)
	case isa.OpLUI:
		setD(in.Rt, in.UImm<<16)
	case isa.OpLB, isa.OpLH, isa.OpLW, isa.OpLBU, isa.OpLHU:
		rec.Src1 = src(in.Rs)
		addr := rs + uint32(in.Imm)
		rec.MemAddr = addr
		v, err := m.load(in.Op, addr)
		if err != nil {
			return err
		}
		setD(in.Rt, v)
	case isa.OpSB, isa.OpSH, isa.OpSW:
		rec.Src1, rec.Src2 = src(in.Rs), src(in.Rt)
		addr := rs + uint32(in.Imm)
		rec.MemAddr = addr
		if err := m.store(in.Op, addr, rt); err != nil {
			return err
		}
	case isa.OpLWC1:
		rec.Src1 = src(in.Rs)
		addr := rs + uint32(in.Imm)
		rec.MemAddr = addr
		v, err := m.load(isa.OpLW, addr)
		if err != nil {
			return err
		}
		m.freg[in.Rt] = float64(int32(v))
		rec.Dest = 32 + in.Rt
	case isa.OpSWC1:
		rec.Src1 = src(in.Rs)
		rec.Src2 = 32 + in.Rt
		addr := rs + uint32(in.Imm)
		rec.MemAddr = addr
		if err := m.store(isa.OpSW, addr, uint32(int32(m.freg[in.Rt]))); err != nil {
			return err
		}
	case isa.OpFADD:
		rec.Src1, rec.Src2 = 32+in.Rs, 32+in.Rt
		m.freg[in.Rd] = m.freg[in.Rs] + m.freg[in.Rt]
		rec.Dest = 32 + in.Rd
	case isa.OpFSUB:
		rec.Src1, rec.Src2 = 32+in.Rs, 32+in.Rt
		m.freg[in.Rd] = m.freg[in.Rs] - m.freg[in.Rt]
		rec.Dest = 32 + in.Rd
	case isa.OpFMUL:
		rec.Src1, rec.Src2 = 32+in.Rs, 32+in.Rt
		m.freg[in.Rd] = m.freg[in.Rs] * m.freg[in.Rt]
		rec.Dest = 32 + in.Rd
	case isa.OpFDIV:
		rec.Src1, rec.Src2 = 32+in.Rs, 32+in.Rt
		if m.freg[in.Rt] != 0 {
			m.freg[in.Rd] = m.freg[in.Rs] / m.freg[in.Rt]
		}
		rec.Dest = 32 + in.Rd
	case isa.OpFMOV:
		rec.Src1 = 32 + in.Rs
		m.freg[in.Rd] = m.freg[in.Rs]
		rec.Dest = 32 + in.Rd
	case isa.OpFNEG:
		rec.Src1 = 32 + in.Rs
		m.freg[in.Rd] = -m.freg[in.Rs]
		rec.Dest = 32 + in.Rd
	case isa.OpSYSCALL:
		m.syscall()
	default:
		return fmt.Errorf("vm: invalid instruction 0x%08x at pc 0x%x",
			m.im.Text[idx], pc)
	}
	// r0 is hardwired to zero and never a real dependence.
	m.reg[0] = 0
	if rec.Src1 == 0 {
		rec.Src1 = NoReg
	}
	if rec.Src2 == 0 {
		rec.Src2 = NoReg
	}
	if rec.Dest == 0 {
		rec.Dest = NoReg
	}
	if rec.Class == isa.ClassBranch && rec.Taken {
		rec.AltPC = pc + 4 // the not-followed direction is the fall-through
	}
	rec.NextPC = next
	m.pc = next
	m.count++
	return nil
}

func (m *Machine) syscall() {
	switch m.reg[isa.RegV0] {
	case isa.SysExit:
		m.halted = true
	case isa.SysPrintInt:
		m.out = fmt.Appendf(m.out, "%d", int32(m.reg[isa.RegA0]))
	case isa.SysPrintChar:
		m.out = append(m.out, byte(m.reg[isa.RegA0]))
	case isa.SysPrintString:
		addr := m.reg[isa.RegA0]
		for i := 0; i < 4096; i++ {
			b, err := m.load(isa.OpLBU, addr)
			if err != nil || b == 0 {
				break
			}
			m.out = append(m.out, byte(b))
			addr++
		}
	}
}

func (m *Machine) load(op isa.Op, addr uint32) (uint32, error) {
	if m.im.InText(addr &^ 3) {
		w, _ := m.im.WordAt(addr &^ 3)
		return extract(op, w, addr), nil
	}
	w, err := m.mem.load32(addr &^ 3)
	if err != nil {
		return 0, err
	}
	return extract(op, w, addr), nil
}

func extract(op isa.Op, w uint32, addr uint32) uint32 {
	sh := (addr & 3) * 8
	switch op {
	case isa.OpLB:
		return uint32(int32(int8(w >> sh)))
	case isa.OpLBU:
		return w >> sh & 0xFF
	case isa.OpLH:
		return uint32(int32(int16(w >> (sh &^ 8))))
	case isa.OpLHU:
		return w >> (sh &^ 8) & 0xFFFF
	default:
		return w
	}
}

func (m *Machine) store(op isa.Op, addr uint32, v uint32) error {
	switch op {
	case isa.OpSB:
		return m.mem.storeBytes(addr, 1, v)
	case isa.OpSH:
		return m.mem.storeBytes(addr&^1, 2, v)
	default:
		return m.mem.storeBytes(addr&^3, 4, v)
	}
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
