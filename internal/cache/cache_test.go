package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	good := Config{SizeBytes: 16 * 1024, LineBytes: 32, Assoc: 2}
	if err := good.Validate(); err != nil {
		t.Fatalf("baseline config rejected: %v", err)
	}
	bad := []Config{
		{SizeBytes: 0, LineBytes: 32, Assoc: 2},
		{SizeBytes: 1024, LineBytes: 0, Assoc: 2},
		{SizeBytes: 1024, LineBytes: 32, Assoc: 0},
		{SizeBytes: 1000, LineBytes: 32, Assoc: 2},     // not divisible
		{SizeBytes: 1024, LineBytes: 24, Assoc: 2},     // line not power of 2
		{SizeBytes: 3 * 1024, LineBytes: 32, Assoc: 2}, // sets not power of 2
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	if good.Lines() != 512 || good.Sets() != 256 {
		t.Errorf("geometry: %d lines %d sets", good.Lines(), good.Sets())
	}
	if s := good.String(); s != "16KB, 32B lines, 2-assoc" {
		t.Errorf("String() = %q", s)
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := mustNew(t, Config{SizeBytes: 1024, LineBytes: 32, Assoc: 2})
	if c.Access(0x1000, false).Hit {
		t.Fatal("cold access hit")
	}
	if !c.Access(0x1000, false).Hit {
		t.Fatal("second access missed")
	}
	if !c.Access(0x101C, false).Hit {
		t.Fatal("same line, different offset missed")
	}
	if c.Access(0x1020, false).Hit {
		t.Fatal("adjacent line hit")
	}
	st := c.Stats()
	if st.Accesses != 4 || st.Misses != 2 {
		t.Fatalf("stats %+v, want 4 accesses 2 misses", st)
	}
}

func TestLRUWithinSet(t *testing.T) {
	// 2-way: lines mapping to the same set evict in LRU order.
	c := mustNew(t, Config{SizeBytes: 1024, LineBytes: 32, Assoc: 2})
	setStride := uint32(1024 / 2) // sets * lineBytes
	a, b, x := uint32(0), setStride, 2*setStride
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // a is MRU
	c.Access(x, false) // evicts b
	if !c.Access(a, false).Hit {
		t.Fatal("a should survive")
	}
	if c.Access(b, false).Hit {
		t.Fatal("b should have been evicted")
	}
}

func TestWritebackDirty(t *testing.T) {
	c := mustNew(t, Config{SizeBytes: 64, LineBytes: 32, Assoc: 1})
	c.Access(0, true) // dirty
	res := c.Access(64, false)
	if !res.WritebackDirty {
		t.Fatal("evicting a dirty line must write back")
	}
	c.Access(128, false)
	if res := c.Access(192, false); res.WritebackDirty {
		t.Fatal("clean eviction should not write back")
	}
	if c.Stats().Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", c.Stats().Writebacks)
	}
}

func TestWriteAllocateMarksDirty(t *testing.T) {
	c := mustNew(t, Config{SizeBytes: 64, LineBytes: 32, Assoc: 1})
	c.Access(0, false)
	c.Access(0, true) // hit-write dirties the line
	if !c.Access(64, false).WritebackDirty {
		t.Fatal("write hit did not dirty the line")
	}
}

func TestContainsDoesNotTouchLRU(t *testing.T) {
	c := mustNew(t, Config{SizeBytes: 64, LineBytes: 32, Assoc: 2})
	c.Access(0, false)
	c.Access(1024, false)
	// Probe line 0 without promoting it; a new line must still evict it.
	if !c.Contains(0) {
		t.Fatal("line 0 resident")
	}
	if c.Contains(4096) {
		t.Fatal("absent line reported present")
	}
}

func TestReset(t *testing.T) {
	c := mustNew(t, Config{SizeBytes: 64, LineBytes: 32, Assoc: 1})
	c.Access(0, true)
	c.Reset()
	if c.Contains(0) {
		t.Fatal("line survived reset")
	}
	if c.Stats() != (Stats{}) {
		t.Fatal("stats survived reset")
	}
}

func TestLineAddr(t *testing.T) {
	c := mustNew(t, Config{SizeBytes: 1024, LineBytes: 32, Assoc: 2})
	if got := c.LineAddr(0x1234567B); got != 0x12345660 {
		t.Fatalf("LineAddr = %#x", got)
	}
}

func TestMissRateMath(t *testing.T) {
	s := Stats{Accesses: 200, Misses: 25}
	if s.MissRate() != 0.125 {
		t.Fatalf("miss rate %f", s.MissRate())
	}
	if (Stats{}).MissRate() != 0 {
		t.Fatal("zero-access miss rate should be 0")
	}
}

// TestFullyAssocMatchesReference cross-checks the cache against a simple
// LRU-list reference model on a random trace.
func TestFullyAssocMatchesReference(t *testing.T) {
	const lines = 16
	c := mustNew(t, Config{SizeBytes: lines * 32, LineBytes: 32, Assoc: lines})
	var ref []uint32 // MRU-first list of line addresses
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		addr := uint32(rng.Intn(64)) * 32
		hit := c.Access(addr, false).Hit
		refHit := false
		for j, a := range ref {
			if a == addr {
				refHit = true
				ref = append(ref[:j], ref[j+1:]...)
				break
			}
		}
		ref = append([]uint32{addr}, ref...)
		if len(ref) > lines {
			ref = ref[:lines]
		}
		if hit != refHit {
			t.Fatalf("access %d (addr %#x): cache hit=%v, reference hit=%v", i, addr, hit, refHit)
		}
	}
}

// TestInclusionProperty: a cache twice the size (same assoc scaled) never
// misses more than the smaller one on the same trace.
func TestInclusionProperty(t *testing.T) {
	f := func(seed int64) bool {
		small := mustNew(t, Config{SizeBytes: 2 * 1024, LineBytes: 32, Assoc: 64})
		big := mustNew(t, Config{SizeBytes: 4 * 1024, LineBytes: 32, Assoc: 128})
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 5000; i++ {
			addr := uint32(rng.Intn(256)) * 32
			small.Access(addr, false)
			big.Access(addr, false)
		}
		return big.Stats().Misses <= small.Stats().Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAccessHit(b *testing.B) {
	c := MustNew(Config{SizeBytes: 16 * 1024, LineBytes: 32, Assoc: 2})
	c.Access(0x1000, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(0x1000, false)
	}
}

func BenchmarkAccessMissStream(b *testing.B) {
	c := MustNew(Config{SizeBytes: 16 * 1024, LineBytes: 32, Assoc: 2})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint32(i)*32, false)
	}
}
