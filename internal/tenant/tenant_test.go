package tenant

import (
	"strings"
	"sync"
	"testing"
	"time"
)

const validCfg = `
# production tenants
cluster-key s3cret-cluster-key
tenant acme key=acme-key-123 weight=3 rate=100 burst=20 quota=10MiB
tenant zenith key=zenith-key-456
anon weight=1 rate=5
`

func TestParseConfigValid(t *testing.T) {
	snap, err := ParseConfig(validCfg, "test")
	if err != nil {
		t.Fatalf("ParseConfig: %v", err)
	}
	if string(snap.ClusterKey) != "s3cret-cluster-key" {
		t.Errorf("cluster key = %q", snap.ClusterKey)
	}
	acme := snap.ByKey["acme-key-123"]
	if acme == nil || acme.ID != "acme" || acme.Weight != 3 || acme.RateRPS != 100 || acme.Burst != 20 {
		t.Errorf("acme = %+v", acme)
	}
	if acme.QuotaBytes != 10<<20 {
		t.Errorf("acme quota = %d, want %d", acme.QuotaBytes, 10<<20)
	}
	z := snap.ByID["zenith"]
	if z == nil || z.Weight != 1 || z.RateRPS != 0 || z.QuotaBytes != 0 {
		t.Errorf("zenith defaults = %+v", z)
	}
	if snap.Anon == nil || snap.Anon.RateRPS != 5 || snap.Anon.Burst != 5 {
		t.Errorf("anon = %+v", snap.Anon)
	}
}

func TestParseConfigErrors(t *testing.T) {
	cases := []struct {
		name, cfg, wantErr string
	}{
		{"dup id", "tenant a key=aaaaaaaa\ntenant a key=bbbbbbbb", "duplicate tenant id"},
		{"dup key", "tenant a key=samekey1\ntenant b key=samekey1", "reuses the key"},
		{"zero weight", "tenant a key=aaaaaaaa weight=0", "weight must be"},
		{"negative weight", "tenant a key=aaaaaaaa weight=-3", "weight must be"},
		{"short key", "tenant a key=short", "8..128 bytes"},
		{"bad id", "tenant Not-Valid key=aaaaaaaa", "invalid tenant id"},
		{"reserved anon", "tenant anon key=aaaaaaaa", "reserved"},
		{"reserved internal", "tenant internal key=aaaaaaaa", "reserved"},
		{"missing key", "tenant a weight=2", "missing key="},
		{"unknown directive", "frobnicate x", "unknown directive"},
		{"unknown attr", "tenant a key=aaaaaaaa color=red", "unknown attribute"},
		{"dup cluster key", "cluster-key aaaaaaaa\ncluster-key bbbbbbbb", "duplicate cluster-key"},
		{"dup anon", "anon\nanon", "duplicate anon"},
		{"anon with key", "anon key=aaaaaaaa", "anon takes no key"},
		{"bad quota", "tenant a key=aaaaaaaa quota=lots", "quota"},
		{"negative rate", "tenant a key=aaaaaaaa rate=-1", "rate must be"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseConfig(tc.cfg, "t")
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestLookup(t *testing.T) {
	snap, err := ParseConfig(validCfg, "test")
	if err != nil {
		t.Fatal(err)
	}
	r := NewRegistry(snap)
	if tn, ok := r.Lookup("acme-key-123"); !ok || tn.ID != "acme" {
		t.Errorf("Lookup(acme key) = %v, %v", tn, ok)
	}
	if _, ok := r.Lookup("no-such-key"); ok {
		t.Error("unknown key admitted")
	}
	if tn, ok := r.Lookup(""); !ok || tn.ID != AnonID {
		t.Errorf("Lookup(empty) = %v, %v; want anon", tn, ok)
	}

	// Without an anon line, unauthenticated lookups are rejected.
	snap2, err := ParseConfig("tenant a key=aaaaaaaa", "test")
	if err != nil {
		t.Fatal(err)
	}
	r2 := NewRegistry(snap2)
	if _, ok := r2.Lookup(""); ok {
		t.Error("anon admitted without an anon line")
	}
}

func TestRateLimitAdmitAndRetryAfter(t *testing.T) {
	snap, _ := ParseConfig("tenant a key=aaaaaaaa rate=2 burst=2", "test")
	r := NewRegistry(snap)
	tn := snap.ByID["a"]
	now := time.Unix(1000, 0)

	for i := 0; i < 2; i++ {
		if d := r.Admit(tn, now); !d.OK {
			t.Fatalf("request %d denied: %+v", i, d)
		}
	}
	d := r.Admit(tn, now)
	if d.OK || d.Reason != "rate" {
		t.Fatalf("third request = %+v, want rate denial", d)
	}
	// At 2 rps, one token takes 0.5s -> Retry-After floors at 1s.
	if d.RetryAfter != time.Second {
		t.Errorf("RetryAfter = %v, want 1s", d.RetryAfter)
	}
	// After refill, admitted again.
	if d := r.Admit(tn, now.Add(time.Second)); !d.OK {
		t.Errorf("post-refill denied: %+v", d)
	}
}

func TestRetryAfterScalesWithDebt(t *testing.T) {
	snap, _ := ParseConfig("tenant slow key=aaaaaaaa rate=0.1 burst=1", "test")
	r := NewRegistry(snap)
	tn := snap.ByID["slow"]
	now := time.Unix(1000, 0)
	if d := r.Admit(tn, now); !d.OK {
		t.Fatal("first denied")
	}
	d := r.Admit(tn, now)
	// Empty bucket at 0.1 rps: ten seconds until the next token.
	if d.OK || d.RetryAfter != 10*time.Second {
		t.Fatalf("decision = %+v, want 10s retry", d)
	}
}

func TestByteQuota(t *testing.T) {
	snap, _ := ParseConfig("tenant a key=aaaaaaaa quota=1000", "test")
	r := NewRegistry(snap)
	tn := snap.ByID["a"]
	now := time.Unix(5000, 0)

	if d := r.Admit(tn, now); !d.OK {
		t.Fatalf("under quota denied: %+v", d)
	}
	r.AccountBytes("a", 1500, now)
	d := r.Admit(tn, now.Add(time.Second))
	if d.OK || d.Reason != "quota" {
		t.Fatalf("over quota = %+v, want quota denial", d)
	}
	if d.RetryAfter < time.Second {
		t.Errorf("RetryAfter = %v, want >= 1s", d.RetryAfter)
	}
	// After the window rolls past the spend, admitted again.
	if d := r.Admit(tn, now.Add(QuotaWindow+2*time.Second)); !d.OK {
		t.Fatalf("post-window denied: %+v", d)
	}
}

func TestReloadKeepsDebt(t *testing.T) {
	snap, _ := ParseConfig("tenant a key=aaaaaaaa quota=1000", "test")
	r := NewRegistry(snap)
	now := time.Unix(5000, 0)
	r.AccountBytes("a", 5000, now)

	// Reload with the same tenant: the spend survives.
	snap2, _ := ParseConfig("tenant a key=aaaaaaaa quota=1000\ntenant b key=bbbbbbbb", "test")
	r.Reload(snap2)
	if d := r.Admit(snap2.ByID["a"], now.Add(time.Second)); d.OK {
		t.Fatal("quota debt forgiven by reload")
	}
	if got := r.WindowBytes("a", now.Add(time.Second)); got != 5000 {
		t.Errorf("WindowBytes = %d, want 5000", got)
	}

	// Reload dropping the tenant: its state is garbage-collected.
	snap3, _ := ParseConfig("tenant b key=bbbbbbbb", "test")
	r.Reload(snap3)
	if got := r.WindowBytes("a", now); got != 0 {
		t.Errorf("dropped tenant WindowBytes = %d, want 0", got)
	}
}

func TestUnlimitedTenantSkipsState(t *testing.T) {
	snap, _ := ParseConfig("tenant free key=aaaaaaaa", "test")
	r := NewRegistry(snap)
	tn := snap.ByID["free"]
	now := time.Unix(0, 0)
	for i := 0; i < 1000; i++ {
		if d := r.Admit(tn, now); !d.OK {
			t.Fatalf("unlimited tenant denied at %d", i)
		}
	}
	r.AccountBytes("free", 1<<40, now)
	if d := r.Admit(tn, now); !d.OK {
		t.Fatal("unlimited tenant denied after bytes")
	}
}

func TestRegistryConcurrentAdmitReload(t *testing.T) {
	snapA, _ := ParseConfig("tenant a key=aaaaaaaa rate=1000 quota=1MiB\ntenant b key=bbbbbbbb", "test")
	snapB, _ := ParseConfig("tenant a key=aaaaaaaa rate=10 quota=1000\nanon", "test")
	r := NewRegistry(snapA)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			now := time.Unix(100, 0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := r.Snapshot()
				for _, id := range snap.TenantIDs() {
					tn := snap.ByID[id]
					r.Admit(tn, now)
					r.AccountBytes(id, 100, now)
					r.WindowBytes(id, now)
				}
				now = now.Add(time.Millisecond)
			}
		}()
	}
	for i := 0; i < 200; i++ {
		if i%2 == 0 {
			r.Reload(snapB)
		} else {
			r.Reload(snapA)
		}
		r.ClusterKey()
	}
	close(stop)
	wg.Wait()
}

func TestValidID(t *testing.T) {
	for _, ok := range []string{"a", "acme", "acme-prod_2", strings.Repeat("x", 32)} {
		if !ValidID(ok) {
			t.Errorf("ValidID(%q) = false", ok)
		}
	}
	for _, bad := range []string{"", "Acme", "-lead", "has space", strings.Repeat("x", 33), "é"} {
		if ValidID(bad) {
			t.Errorf("ValidID(%q) = true", bad)
		}
	}
}

func TestOpenSnapshot(t *testing.T) {
	r := NewRegistry(nil)
	tn, ok := r.Lookup("")
	if !ok || tn.ID != AnonID {
		t.Fatalf("open-mode anon lookup = %v, %v", tn, ok)
	}
	if d := r.Admit(tn, time.Now()); !d.OK {
		t.Fatal("open-mode anon denied")
	}
	if r.ClusterKey() != nil {
		t.Fatal("open mode has a cluster key")
	}
}
