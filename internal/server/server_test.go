package server

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"codepack"
)

const testAsm = `
main:
	li   $s0, 50
	li   $s1, 0
loop:
	addu $s1, $s1, $s0
	addiu $s0, $s0, -1
	bgtz $s0, loop
	li   $v0, 10
	syscall
`

// quietLogger keeps test output readable.
func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = quietLogger()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// postCode is postJSON for goroutines: no t.Fatal, returns the status
// code (-1 on transport error) and drains the body.
func postCode(url string, body any) int {
	b, err := json.Marshal(body)
	if err != nil {
		return -1
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		return -1
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

func decodeBody[T any](t *testing.T, resp *http.Response, wantCode int) T {
	t.Helper()
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantCode {
		t.Fatalf("status %d, want %d (body: %s)", resp.StatusCode, wantCode, raw)
	}
	var v T
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("decode %T: %v (body: %s)", v, err, raw)
	}
	return v
}

func testImageB64(t *testing.T) string {
	t.Helper()
	im, err := codepack.Assemble("test", testAsm)
	if err != nil {
		t.Fatal(err)
	}
	return base64.StdEncoding.EncodeToString(im.Marshal())
}

func TestCompressDecompressRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	imgB64 := testImageB64(t)

	cResp := decodeBody[CompressResponse](t, postJSON(t, ts.URL+"/v1/compress",
		CompressRequest{ProgramRef: ProgramRef{ImageB64: imgB64}}), http.StatusOK)
	if cResp.Cached {
		t.Error("first compression reported cached")
	}
	// A toy program is dictionary-dominated, so the ratio can exceed 1;
	// it just has to be a sane positive number.
	if cResp.Ratio <= 0 || cResp.Ratio >= 5 {
		t.Errorf("implausible ratio %v", cResp.Ratio)
	}
	if len(cResp.Digest) != 64 {
		t.Errorf("bad digest %q", cResp.Digest)
	}

	dResp := decodeBody[DecompressResponse](t, postJSON(t, ts.URL+"/v1/decompress",
		DecompressRequest{CompressedB64: cResp.CompressedB64}), http.StatusOK)

	raw, err := base64.StdEncoding.DecodeString(dResp.ImageB64)
	if err != nil {
		t.Fatal(err)
	}
	got, err := codepack.UnmarshalImage(raw)
	if err != nil {
		t.Fatal(err)
	}
	origRaw, _ := base64.StdEncoding.DecodeString(imgB64)
	orig, err := codepack.UnmarshalImage(origRaw)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Text) != len(orig.Text) {
		t.Fatalf("round trip text length %d, want %d", len(got.Text), len(orig.Text))
	}
	for i := range got.Text {
		if got.Text[i] != orig.Text[i] {
			t.Fatalf("round trip mismatch at instruction %d", i)
		}
	}
}

func TestCompressCacheHit(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	req := CompressRequest{ProgramRef: ProgramRef{ImageB64: testImageB64(t)}}

	first := decodeBody[CompressResponse](t, postJSON(t, ts.URL+"/v1/compress", req), http.StatusOK)
	second := decodeBody[CompressResponse](t, postJSON(t, ts.URL+"/v1/compress", req), http.StatusOK)
	if first.Cached {
		t.Error("first request reported cached")
	}
	if !second.Cached {
		t.Error("repeat request not served from cache")
	}
	if first.Digest != second.Digest {
		t.Errorf("digest changed across requests: %q vs %q", first.Digest, second.Digest)
	}
	cs := s.cache.stats()
	if cs.Hits != 1 || cs.Misses != 1 {
		t.Errorf("cache stats hits=%d misses=%d, want 1/1", cs.Hits, cs.Misses)
	}

	// The hit must be visible in /metrics too (acceptance criterion).
	if got := scrapeMetric(t, ts, "cpackd_cache_hits_total"); got != 1 {
		t.Errorf("cpackd_cache_hits_total = %v, want 1", got)
	}
}

func TestVerifyEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := decodeBody[VerifyResponse](t, postJSON(t, ts.URL+"/v1/verify",
		VerifyRequest{ProgramRef: ProgramRef{Asm: testAsm}}), http.StatusOK)
	if !resp.OK {
		t.Error("verify reported not OK")
	}
	if resp.Instructions == 0 {
		t.Error("verify reported zero instructions")
	}
}

func TestSimulateEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{BenchMaxInstr: 50_000})
	resp := decodeBody[SimulateResponse](t, postJSON(t, ts.URL+"/v1/simulate",
		SimulateRequest{
			ProgramRef: ProgramRef{Benchmark: "pegwit"},
			Arch:       "4-issue",
			Model:      "optimized",
			MaxInstr:   50_000,
		}), http.StatusOK)
	if resp.Instructions == 0 || resp.Cycles == 0 {
		t.Fatalf("empty simulation result: %+v", resp)
	}
	if resp.IPC <= 0 {
		t.Errorf("IPC %v, want > 0", resp.IPC)
	}
	if resp.Ratio <= 0 {
		t.Errorf("compressed run should report a ratio, got %v", resp.Ratio)
	}
}

func TestBenchEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{BenchMaxInstr: 50_000})

	list := decodeBody[BenchListResponse](t, mustGet(t, ts.URL+"/v1/bench"), http.StatusOK)
	if len(list.Benchmarks) != 6 {
		t.Fatalf("got %d benchmarks, want 6", len(list.Benchmarks))
	}

	info := decodeBody[BenchResponse](t, mustGet(t, ts.URL+"/v1/bench/pegwit"), http.StatusOK)
	if info.Name != "pegwit" || info.TextBytes == 0 || info.Ratio <= 0 {
		t.Errorf("implausible bench info: %+v", info)
	}

	decodeBody[map[string]string](t, mustGet(t, ts.URL+"/v1/bench/nosuch"), http.StatusNotFound)
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		path string
		body string
		want int
	}{
		{"malformed json", "/v1/compress", "{", http.StatusBadRequest},
		{"no program", "/v1/compress", "{}", http.StatusBadRequest},
		{"two programs", "/v1/compress", `{"benchmark":"cc1","asm":"x"}`, http.StatusBadRequest},
		{"bad base64", "/v1/decompress", `{"compressed_b64":"!!!"}`, http.StatusBadRequest},
		{"bad arch", "/v1/simulate", `{"asm":"main:\n\tsyscall\n","arch":"9-issue"}`, http.StatusBadRequest},
		{"bad model", "/v1/simulate", `{"asm":"main:\n\tsyscall\n","model":"warp"}`, http.StatusBadRequest},
		{"bad asm", "/v1/compress", `{"asm":"not an instruction"}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.want {
				body, _ := io.ReadAll(resp.Body)
				t.Errorf("status %d, want %d (body: %s)", resp.StatusCode, tc.want, body)
			}
		})
	}
}

// TestSaturatedPoolSheds verifies the load-shedding contract: with one
// heavy worker and a queue of one, a third concurrent simulate gets 429
// with Retry-After rather than queueing — while light traffic still flows.
func TestSaturatedPoolSheds(t *testing.T) {
	s, ts := newTestServer(t, Config{HeavyWorkers: 1, HeavyQueue: 1, BenchMaxInstr: 10_000})

	block := make(chan struct{})
	var once sync.Once
	unblock := func() { once.Do(func() { close(block) }) }
	t.Cleanup(unblock) // runs before the server cleanup (LIFO)

	started := make(chan struct{}, 8)
	s.testHook = func(op string) {
		if op == "simulate" {
			started <- struct{}{}
			<-block
		}
	}

	simBody := SimulateRequest{ProgramRef: ProgramRef{Asm: testAsm}, MaxInstr: 1000}
	codes := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() { codes <- postCode(ts.URL+"/v1/simulate", simBody) }()
	}
	// Wait until one job runs on the single worker; the other then
	// occupies the queue slot of capacity 1.
	<-started
	waitFor(t, func() bool { return s.heavy.depth() == 1 })

	resp := postJSON(t, ts.URL+"/v1/simulate", simBody)
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated pool returned %d, want 429 (body: %s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}

	// Light traffic must still flow while the heavy pool is wedged.
	cResp := decodeBody[CompressResponse](t, postJSON(t, ts.URL+"/v1/compress",
		CompressRequest{ProgramRef: ProgramRef{Asm: testAsm}}), http.StatusOK)
	if cResp.Digest == "" {
		t.Error("compress failed during heavy saturation")
	}

	unblock()
	for i := 0; i < 2; i++ {
		if code := <-codes; code != http.StatusOK {
			t.Errorf("blocked request finished with %d, want 200", code)
		}
	}
	if got := scrapeMetric(t, ts, "cpackd_requests_shed_total"); got < 1 {
		t.Errorf("cpackd_requests_shed_total = %v, want >= 1", got)
	}
}

// debugVars is the subset of /debug/vars the tests assert on.
type debugVars struct {
	Cpackd struct {
		Endpoints map[string]struct {
			ByCode map[string]uint64 `json:"requests_by_code"`
		} `json:"endpoints"`
		Cache cacheStats `json:"cache"`
	} `json:"cpackd"`
}

// TestMetricsAdvance verifies request counters and histograms move.
func TestMetricsAdvance(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := CompressRequest{ProgramRef: ProgramRef{Asm: testAsm}}
	for i := 0; i < 3; i++ {
		postJSON(t, ts.URL+"/v1/compress", req).Body.Close()
	}
	body := scrape(t, ts)
	if got := metricValue(t, body, `cpackd_requests_total{endpoint="compress",code="200"}`); got != 3 {
		t.Errorf("compress 200s = %v, want 3", got)
	}
	if got := metricValue(t, body, `cpackd_request_duration_seconds_count{endpoint="compress"}`); got != 3 {
		t.Errorf("latency observations = %v, want 3", got)
	}
	if got := metricValue(t, body, `cpackd_cache_misses_total`); got != 1 {
		t.Errorf("cache misses = %v, want 1", got)
	}
	if got := metricValue(t, body, `cpackd_cache_hits_total`); got != 2 {
		t.Errorf("cache hits = %v, want 2", got)
	}

	vars := decodeBody[debugVars](t, mustGet(t, ts.URL+"/debug/vars"), http.StatusOK)
	if vars.Cpackd.Endpoints["compress"].ByCode["200"] != 3 {
		t.Errorf("debug/vars compress 200s = %d, want 3",
			vars.Cpackd.Endpoints["compress"].ByCode["200"])
	}
	if vars.Cpackd.Cache.Hits != 2 {
		t.Errorf("debug/vars cache hits = %d, want 2", vars.Cpackd.Cache.Hits)
	}
}

// TestGracefulShutdownDrains verifies Close waits for admitted work: a
// request blocked inside a worker completes with 200 while Close is
// underway, and Close returns only after it finishes.
func TestGracefulShutdownDrains(t *testing.T) {
	s, err := New(Config{Logger: quietLogger(), BenchMaxInstr: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	block := make(chan struct{})
	var once sync.Once
	unblock := func() { once.Do(func() { close(block) }) }
	defer unblock()

	started := make(chan struct{}, 1)
	s.testHook = func(op string) {
		if op == "compress" {
			started <- struct{}{}
			<-block
		}
	}

	codeCh := make(chan int, 1)
	go func() {
		codeCh <- postCode(ts.URL+"/v1/compress",
			CompressRequest{ProgramRef: ProgramRef{Asm: testAsm}})
	}()
	<-started // the job is on a worker

	closed := make(chan struct{})
	go func() {
		s.Close()
		close(closed)
	}()
	select {
	case <-closed:
		t.Fatal("Close returned while a job was still running")
	case <-time.After(50 * time.Millisecond):
	}

	unblock()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return after the in-flight job finished")
	}
	if code := <-codeCh; code != http.StatusOK {
		t.Errorf("in-flight request finished with %d, want 200", code)
	}

	// New work after drain is refused, not queued.
	if code := postCode(ts.URL+"/v1/compress",
		CompressRequest{ProgramRef: ProgramRef{Asm: testAsm}}); code != http.StatusServiceUnavailable {
		t.Errorf("post-drain request got %d, want 503", code)
	}
}

// TestConcurrentClients hammers every endpoint from many goroutines; run
// under -race this is the load-bearing check on the pool, cache and
// metrics locking.
func TestConcurrentClients(t *testing.T) {
	_, ts := newTestServer(t, Config{BenchMaxInstr: 20_000})
	imgB64 := testImageB64(t)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				switch (g + i) % 4 {
				case 0:
					postCode(ts.URL+"/v1/compress",
						CompressRequest{ProgramRef: ProgramRef{ImageB64: imgB64}})
				case 1:
					postCode(ts.URL+"/v1/verify",
						VerifyRequest{ProgramRef: ProgramRef{Asm: testAsm}})
				case 2:
					postCode(ts.URL+"/v1/simulate",
						SimulateRequest{ProgramRef: ProgramRef{Asm: testAsm}, MaxInstr: 2000})
				default:
					if resp, err := http.Get(ts.URL + "/metrics"); err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// Every admitted request must have been accounted: 200s or 429s only.
	body := scrape(t, ts)
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "cpackd_requests_total{") &&
			!strings.Contains(line, `code="200"`) && !strings.Contains(line, `code="429"`) {
			t.Errorf("unexpected status in metrics: %s", line)
		}
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := mustGet(t, ts.URL+"/healthz")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
}

// --- helpers -------------------------------------------------------------

func mustGet(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}

func scrape(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp := mustGet(t, ts.URL+"/metrics")
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func scrapeMetric(t *testing.T, ts *httptest.Server, name string) float64 {
	t.Helper()
	return metricValue(t, scrape(t, ts), name)
}

func metricValue(t *testing.T, body, name string) float64 {
	t.Helper()
	re := regexp.MustCompile("(?m)^" + regexp.QuoteMeta(name) + ` ([0-9.e+-]+)$`)
	m := re.FindStringSubmatch(body)
	if m == nil {
		t.Fatalf("metric %q not found in scrape:\n%s", name, body)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("metric %q: %v", name, err)
	}
	return v
}
