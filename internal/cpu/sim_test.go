package cpu

import (
	"strings"
	"testing"

	"codepack/internal/asm"
	"codepack/internal/program"
)

func compile(t *testing.T, src string) *program.Image {
	t.Helper()
	im, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	return im
}

// loopProgram builds a simple counted loop with the given body.
func loopProgram(t *testing.T, iters int, body string) *program.Image {
	t.Helper()
	return compile(t, `
main:
	li $s0, `+itoa(iters)+`
loop:
`+body+`
	addiu $s0, $s0, -1
	bgtz $s0, loop
	li $v0, 10
	syscall
`)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func run(t *testing.T, im *program.Image, cfg Config, model FetchModel) Result {
	t.Helper()
	r, err := Simulate(im, cfg, model, 0)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestPresetsValidate(t *testing.T) {
	for _, cfg := range Presets() {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
	if !OneIssue().InOrder || FourIssue().InOrder || EightIssue().InOrder {
		t.Error("ordering flags wrong")
	}
	if FourIssue().ICache.SizeBytes != 16*1024 || EightIssue().ICache.SizeBytes != 32*1024 {
		t.Error("cache scaling wrong")
	}
}

func TestConfigRejectsBad(t *testing.T) {
	cfg := FourIssue()
	cfg.IssueWidth = 0
	if cfg.Validate() == nil {
		t.Error("zero issue width accepted")
	}
	cfg = FourIssue()
	cfg.RUUSize = 0
	if cfg.Validate() == nil {
		t.Error("zero RUU accepted")
	}
	cfg = FourIssue()
	cfg.IntALU = 0
	if cfg.Validate() == nil {
		t.Error("no ALUs accepted")
	}
	cfg = FourIssue()
	cfg.ICache.LineBytes = 24
	if cfg.Validate() == nil {
		t.Error("bad cache accepted")
	}
}

func TestSimpleLoopCycles(t *testing.T) {
	im := loopProgram(t, 1000, "\taddu $t0, $t0, $s0")
	r := run(t, im, OneIssue(), NativeModel())
	if r.Instructions != 3003 {
		t.Fatalf("committed %d instructions", r.Instructions)
	}
	// A 1-issue machine runs a 3-instruction loop in >= 3 cycles/iter.
	if r.Cycles < 3000 {
		t.Fatalf("cycles %d implausibly low", r.Cycles)
	}
	if r.IPC() > 1.0 {
		t.Fatalf("1-issue IPC %.2f > 1", r.IPC())
	}
}

func TestWiderIssueIsFaster(t *testing.T) {
	// Independent work: wider machines must do strictly better.
	body := `
	addu $t0, $t0, $s0
	addu $t1, $t1, $s0
	addu $t2, $t2, $s0
	addu $t3, $t3, $s0
	addu $t4, $t4, $s0
	addu $t5, $t5, $s0
`
	im := loopProgram(t, 2000, body)
	one := run(t, im, OneIssue(), NativeModel())
	four := run(t, im, FourIssue(), NativeModel())
	eight := run(t, im, EightIssue(), NativeModel())
	if !(one.IPC() < four.IPC() && four.IPC() <= eight.IPC()) {
		t.Fatalf("IPC ordering broken: %.2f, %.2f, %.2f",
			one.IPC(), four.IPC(), eight.IPC())
	}
	if four.IPC() < 1.2 {
		t.Fatalf("4-issue IPC %.2f on independent work, want > 1.2", four.IPC())
	}
}

func TestDependenceChainLimitsILP(t *testing.T) {
	chain := strings.Repeat("\taddu $t0, $t0, $s0\n", 6)
	indep := `
	addu $t0, $t0, $s0
	addu $t1, $t1, $s0
	addu $t2, $t2, $s0
	addu $t3, $t3, $s0
	addu $t4, $t4, $s0
	addu $t5, $t5, $s0
`
	c := run(t, loopProgram(t, 2000, chain), FourIssue(), NativeModel())
	i := run(t, loopProgram(t, 2000, indep), FourIssue(), NativeModel())
	if c.IPC() >= i.IPC() {
		t.Fatalf("serial chain IPC %.2f not below independent %.2f", c.IPC(), i.IPC())
	}
}

func TestLoadUseLatency(t *testing.T) {
	// Loads on the critical path must cost more than ALU ops.
	// The consumer directly follows the load, exposing the load-use slot.
	loads := "\tlw $t0, 0($gp)\n\taddu $t1, $t0, $s0\n"
	alus := "\taddu $t0, $t0, $s0\n\taddu $t1, $t0, $s0\n"
	l := run(t, loopProgram(t, 2000, loads), OneIssue(), NativeModel())
	a := run(t, loopProgram(t, 2000, alus), OneIssue(), NativeModel())
	if l.Cycles <= a.Cycles {
		t.Fatalf("load loop (%d cycles) not slower than alu loop (%d)", l.Cycles, a.Cycles)
	}
}

func TestBranchMispredictsCounted(t *testing.T) {
	// A data-dependent alternating branch mispredicts; a biased loop
	// branch trains. The alternating version must be slower.
	body := `
	andi $t1, $s0, 1
	beqz $t1, skip
	addu $t2, $t2, $s0
skip:
`
	r := run(t, loopProgram(t, 4000, body), FourIssue(), NativeModel())
	if r.Branches == 0 || r.Mispredicts == 0 {
		t.Fatalf("branch stats empty: %+v", r)
	}
	if r.Mispredicts >= r.Branches {
		t.Fatal("everything mispredicted")
	}
}

func TestDCacheMissesCostCycles(t *testing.T) {
	// Stride through 64KB of data: misses in a 8KB D-cache.
	miss := `
	addu $t1, $gp, $t2
	lw $t0, -32000($t1)
	addiu $t2, $t2, 64
	andi $t2, $t2, 0xFFFF
`
	hit := `
	addu $t1, $gp, $zero
	lw $t0, -32000($t1)
	addiu $t2, $t2, 64
	andi $t2, $t2, 0xFFFF
`
	m := run(t, loopProgram(t, 3000, miss), OneIssue(), NativeModel())
	h := run(t, loopProgram(t, 3000, hit), OneIssue(), NativeModel())
	if m.DCache.Misses <= h.DCache.Misses {
		t.Fatalf("stride loop missed %d, hit loop %d", m.DCache.Misses, h.DCache.Misses)
	}
	if m.Cycles <= h.Cycles {
		t.Fatal("D-misses did not cost cycles")
	}
}

func TestCodePackModelRuns(t *testing.T) {
	im := loopProgram(t, 3000, "\taddu $t0, $t0, $s0")
	n := run(t, im, FourIssue(), NativeModel())
	c := run(t, im, FourIssue(), BaselineModel())
	o := run(t, im, FourIssue(), OptimizedModel())
	if c.CodePack == nil || o.CodePack == nil {
		t.Fatal("codepack stats missing")
	}
	if n.CodePack != nil {
		t.Fatal("native run has codepack stats")
	}
	// Tiny programs carry large fixed overheads (dictionary, index
	// table), so the ratio can exceed 1; it just has to be sane.
	if c.Ratio <= 0 || c.Ratio >= 4 {
		t.Fatalf("ratio %.2f implausible", c.Ratio)
	}
	if n.Instructions != c.Instructions || n.Instructions != o.Instructions {
		t.Fatal("fetch model changed architectural behaviour")
	}
}

func TestTinyLoopInsensitiveToFetchModel(t *testing.T) {
	// A cache-resident loop misses only during warmup; CodePack's
	// penalty must be negligible (the paper's mpeg2enc behaviour).
	im := loopProgram(t, 20000, "\taddu $t0, $t0, $s0\n\taddu $t1, $t1, $s0")
	n := run(t, im, FourIssue(), NativeModel())
	c := run(t, im, FourIssue(), BaselineModel())
	delta := float64(c.Cycles)/float64(n.Cycles) - 1
	if delta > 0.02 || delta < -0.02 {
		t.Fatalf("cache-resident loop: codepack delta %.3f, want ~0", delta)
	}
}

func TestSpeedupMath(t *testing.T) {
	a := Result{Cycles: 200, Instructions: 100}
	b := Result{Cycles: 100, Instructions: 100}
	if b.SpeedupOver(a) != 2.0 {
		t.Fatalf("speedup %.2f", b.SpeedupOver(a))
	}
	if a.IPC() != 0.5 {
		t.Fatalf("ipc %.2f", a.IPC())
	}
	if a.IMissRate() != 0 {
		t.Fatal("zero-miss rate wrong")
	}
}

func TestMaxInstrCap(t *testing.T) {
	im := loopProgram(t, 1_000_000, "\taddu $t0, $t0, $s0")
	r, err := Simulate(im, OneIssue(), NativeModel(), 5000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Instructions != 5000 {
		t.Fatalf("cap ignored: %d", r.Instructions)
	}
}

func TestSimulateRejectsBadConfig(t *testing.T) {
	im := loopProgram(t, 10, "\tnop")
	cfg := FourIssue()
	cfg.ICache.LineBytes = 64 // decomp engines require 32-byte lines
	if _, err := Simulate(im, cfg, NativeModel(), 0); err == nil {
		t.Fatal("64-byte I-line accepted")
	}
	cfg = FourIssue()
	cfg.IssueWidth = -1
	if _, err := Simulate(im, cfg, NativeModel(), 0); err == nil {
		t.Fatal("negative width accepted")
	}
}

func TestDeterminism(t *testing.T) {
	im := loopProgram(t, 5000, "\tlw $t0, 4($gp)\n\taddu $t1, $t1, $t0")
	a := run(t, im, FourIssue(), OptimizedModel())
	b := run(t, im, FourIssue(), OptimizedModel())
	if a.Cycles != b.Cycles || a.ICache != b.ICache {
		t.Fatal("simulation is not deterministic")
	}
}

// TestBusContentionBetweenIAndD: a loop with both I-misses and D-misses
// must be slower than the sum suggests less than fully overlapped engines,
// i.e. the shared bus serializes them.
func TestBusContentionBetweenIAndD(t *testing.T) {
	// D-striding loop that also walks a large code footprint: unrolled
	// bodies across many labels, revisited round robin.
	var sb strings.Builder
	sb.WriteString("main:\n\tli $s0, 400\nloop:\n")
	for f := 0; f < 64; f++ {
		sb.WriteString("\tjal f")
		sb.WriteString(itoa(f))
		sb.WriteString("\n")
	}
	sb.WriteString("\taddiu $s0, $s0, -1\n\tbgtz $s0, loop\n\tli $v0, 10\n\tsyscall\n")
	for f := 0; f < 64; f++ {
		sb.WriteString("f" + itoa(f) + ":\n")
		for k := 0; k < 60; k++ {
			sb.WriteString("\taddu $t0, $t0, $s0\n")
		}
		sb.WriteString("\taddu $t1, $gp, $t2\n\tlw $t3, -32000($t1)\n")
		sb.WriteString("\taddiu $t2, $t2, 64\n\tandi $t2, $t2, 0xFFFF\n\tjr $ra\n")
	}
	im := compile(t, sb.String())
	cfg := FourIssue()
	cfg.ICache.SizeBytes = 1024 // force I-misses on the 16KB+ code walk
	r, err := Simulate(im, cfg, NativeModel(), 600_000)
	if err != nil {
		t.Fatal(err)
	}
	if r.ICache.Misses == 0 || r.DCache.Misses == 0 {
		t.Fatalf("need both miss kinds: I=%d D=%d", r.ICache.Misses, r.DCache.Misses)
	}
	// The bus sees both streams.
	if r.Bus.Bursts < r.ICache.Misses {
		t.Fatalf("bursts %d < I misses %d", r.Bus.Bursts, r.ICache.Misses)
	}
}

// TestSyscallSerializes: a syscall acts as a barrier, so a syscall-dense
// loop runs at well under a fraction of peak width.
func TestSyscallSerializes(t *testing.T) {
	im := loopProgram(t, 2000, "\tli $v0, 1\n\tli $a0, 0\n\tsyscall")
	r := run(t, im, EightIssue(), NativeModel())
	if r.IPC() > 2.0 {
		t.Fatalf("syscall loop IPC %.2f, expected serialization", r.IPC())
	}
}

// TestOutOfOrderHidesLatency: with independent loads, the 4-issue OoO
// window overlaps D-miss latency better than the in-order core, so its
// absolute cycle cost per miss must be smaller.
func TestOutOfOrderHidesLatency(t *testing.T) {
	miss := `
	addu $t1, $gp, $t2
	lw $t3, -32000($t1)
	addu $t4, $gp, $t5
	lw $t6, -16000($t4)
	addiu $t2, $t2, 64
	andi $t2, $t2, 0xFFFF
	addiu $t5, $t5, 64
	andi $t5, $t5, 0x7FFF
`
	hit := `
	addu $t1, $gp, $zero
	lw $t3, -32000($t1)
	addu $t4, $gp, $zero
	lw $t6, -16000($t4)
	addiu $t2, $t2, 64
	andi $t2, $t2, 0xFFFF
	addiu $t5, $t5, 64
	andi $t5, $t5, 0x7FFF
`
	costPerMiss := func(cfg Config) float64 {
		m := run(t, loopProgram(t, 3000, miss), cfg, NativeModel())
		h := run(t, loopProgram(t, 3000, hit), cfg, NativeModel())
		if m.DCache.Misses == 0 {
			t.Fatal("no misses in the striding loop")
		}
		return float64(m.Cycles-h.Cycles) / float64(m.DCache.Misses)
	}
	inorder := costPerMiss(OneIssue())
	ooo := costPerMiss(FourIssue())
	if ooo >= inorder {
		t.Fatalf("OoO pays %.1f cycles/miss, in-order %.1f; expected overlap", ooo, inorder)
	}
}

// TestFPUnitsExercised: FP work flows through the FP ALU and multiplier
// pools; an FP-divide-heavy loop must be slower than an FP-add loop.
func TestFPUnitsExercised(t *testing.T) {
	adds := `
	lwc1 $f0, 0($gp)
	add.d $f2, $f0, $f2
	add.d $f4, $f0, $f4
	swc1 $f2, 8($gp)
`
	divs := `
	lwc1 $f0, 0($gp)
	div.d $f2, $f2, $f0
	div.d $f4, $f4, $f0
	swc1 $f2, 8($gp)
`
	a := run(t, loopProgram(t, 2000, adds), FourIssue(), NativeModel())
	d := run(t, loopProgram(t, 2000, divs), FourIssue(), NativeModel())
	if d.Cycles <= a.Cycles {
		t.Fatalf("fp divide loop (%d cycles) not slower than add loop (%d)",
			d.Cycles, a.Cycles)
	}
}

// TestMultiplierContention: with one multiplier (Table 2), a mult-saturated
// loop on the 4-issue machine is bound by the single unit.
func TestMultiplierContention(t *testing.T) {
	body := `
	mult $t0, $s0
	mflo $t1
	mult $t2, $s0
	mflo $t3
	mult $t4, $s0
	mflo $t5
`
	r := run(t, loopProgram(t, 2000, body), FourIssue(), NativeModel())
	// 3 multiplies per 8 instructions with 1 unit: IPC is bounded well
	// under the 4-wide peak.
	if r.IPC() > 3.0 {
		t.Fatalf("mult-bound loop IPC %.2f, expected unit contention", r.IPC())
	}
	wide := FourIssue()
	wide.IntMult = 4
	r4, err := Simulate(loopProgram(t, 2000, body), wide, NativeModel(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if r4.Cycles >= r.Cycles {
		t.Fatal("adding multipliers did not help a mult-bound loop")
	}
}

// TestRUUSizeLimitsOverlap: shrinking the window must not speed anything
// up, and a tiny window slows a miss-overlapping workload.
func TestRUUSizeLimitsOverlap(t *testing.T) {
	body := `
	addu $t1, $gp, $t2
	lw $t3, -32000($t1)
	addiu $t2, $t2, 64
	andi $t2, $t2, 0xFFFF
	addu $t4, $t4, $s0
	addu $t5, $t5, $s0
`
	big := run(t, loopProgram(t, 3000, body), FourIssue(), NativeModel())
	small := FourIssue()
	small.RUUSize = 4
	rs, err := Simulate(loopProgram(t, 3000, body), small, NativeModel(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Cycles < big.Cycles {
		t.Fatalf("smaller window was faster (%d < %d)", rs.Cycles, big.Cycles)
	}
}

// TestWrongPathModeling: enabling speculative wrong-path fetch can only
// add work — cycles must not decrease, and the I-cache must see extra
// accesses. The CodePack model suffers at least as much as native (its
// output buffer gets clobbered by speculation).
func TestWrongPathModeling(t *testing.T) {
	// A data-dependent branch over a large code footprint.
	var sb strings.Builder
	sb.WriteString("main:\n\tli $s0, 300\nloop:\n")
	for f := 0; f < 48; f++ {
		sb.WriteString("\tjal f" + itoa(f) + "\n")
	}
	sb.WriteString("\taddiu $s0, $s0, -1\n\tbgtz $s0, loop\n\tli $v0, 10\n\tsyscall\n")
	for f := 0; f < 48; f++ {
		sb.WriteString("f" + itoa(f) + ":\n")
		sb.WriteString("\tandi $t8, $t0, 7\n\tbnez $t8, s" + itoa(f) + "\n")
		for k := 0; k < 40; k++ {
			sb.WriteString("\taddu $t0, $t0, $s0\n")
		}
		sb.WriteString("s" + itoa(f) + ":\n")
		for k := 0; k < 20; k++ {
			sb.WriteString("\taddu $t1, $t1, $s0\n")
		}
		sb.WriteString("\tjr $ra\n")
	}
	im := compile(t, sb.String())
	cfg := FourIssue()
	cfg.ICache.SizeBytes = 2048
	for _, model := range []FetchModel{NativeModel(), OptimizedModel()} {
		off, err := Simulate(im, cfg, model, 400_000)
		if err != nil {
			t.Fatal(err)
		}
		cfgWP := cfg
		cfgWP.ModelWrongPath = true
		on, err := Simulate(im, cfgWP, model, 400_000)
		if err != nil {
			t.Fatal(err)
		}
		// Wrong-path fetch is pollution on average but can act as a
		// prefetch when the wrong path is the fall-through that soon
		// executes anyway, so the cycle delta may have either sign —
		// it just has to stay modest for this workload.
		delta := float64(on.Cycles)/float64(off.Cycles) - 1
		if delta < -0.10 || delta > 0.25 {
			t.Fatalf("wrong-path modeling moved cycles by %.1f%%", 100*delta)
		}
		if on.ICache.Accesses <= off.ICache.Accesses {
			t.Fatal("wrong-path fetch generated no extra cache accesses")
		}
		if on.Mispredicts == 0 {
			t.Fatal("workload produced no mispredicts")
		}
	}
}
