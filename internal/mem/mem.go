// Package mem models the main-memory bus of the paper's Table 2: a shared
// port with a long first-access latency, a per-beat burst rate, and a
// configurable width (the axis varied by Tables 11 and 12).
package mem

import "fmt"

// Config describes the memory system.
type Config struct {
	WidthBytes   int // bus width (paper baseline: 8 bytes = 64 bits)
	FirstLatency int // cycles until the first beat of a burst arrives
	BeatLatency  int // cycles between subsequent beats
}

// Baseline returns the paper's baseline memory: 64-bit bus, 10-cycle
// latency, 2-cycle rate.
func Baseline() Config {
	return Config{WidthBytes: 8, FirstLatency: 10, BeatLatency: 2}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.WidthBytes <= 0 || c.FirstLatency <= 0 || c.BeatLatency <= 0 {
		return fmt.Errorf("mem: non-positive parameter in %+v", c)
	}
	return nil
}

// String renders the configuration.
func (c Config) String() string {
	return fmt.Sprintf("%d-bit bus, %d cycle latency, %d cycle rate",
		c.WidthBytes*8, c.FirstLatency, c.BeatLatency)
}

// Stats counts memory traffic.
type Stats struct {
	Bursts uint64
	Beats  uint64
}

// Bus is the single shared memory port. Requests occupy it back to back;
// a request issued while the bus is busy waits for the earlier burst.
type Bus struct {
	cfg       Config
	busyUntil uint64
	stats     Stats
}

// NewBus creates a bus; the config must validate.
func NewBus(cfg Config) (*Bus, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Bus{cfg: cfg}, nil
}

// Config returns the bus parameters.
func (b *Bus) Config() Config { return b.cfg }

// Stats returns traffic counters.
func (b *Bus) Stats() Stats { return b.stats }

// Burst describes one scheduled burst read or write.
type Burst struct {
	Start uint64 // cycle the request won the bus
	First uint64 // cycle beat 0 arrives
	Beat  uint64 // cycles between beats
	Beats int    // number of beats
}

// BeatTime returns the arrival cycle of beat i (0-based).
func (p Burst) BeatTime(i int) uint64 { return p.First + uint64(i)*p.Beat }

// Done returns the arrival cycle of the last beat.
func (p Burst) Done() uint64 { return p.BeatTime(p.Beats - 1) }

// Request schedules a burst transferring n bytes starting at byte address
// addr. The transfer begins at the bus-width-aligned address containing
// addr, so alignment slack adds beats exactly as it would on hardware.
func (b *Bus) Request(now uint64, addr uint32, n int) Burst {
	w := uint32(b.cfg.WidthBytes)
	slack := int(addr % w)
	beats := (slack + n + b.cfg.WidthBytes - 1) / b.cfg.WidthBytes
	if beats < 1 {
		beats = 1
	}
	start := now
	if b.busyUntil > start {
		start = b.busyUntil
	}
	p := Burst{
		Start: start,
		First: start + uint64(b.cfg.FirstLatency),
		Beat:  uint64(b.cfg.BeatLatency),
		Beats: beats,
	}
	b.busyUntil = p.Done()
	b.stats.Bursts++
	b.stats.Beats += uint64(beats)
	return p
}

// BytesBy returns how many bytes of a burst starting at addr have arrived
// strictly by cycle t, honouring the alignment slack of the first beat.
func (b *Bus) BytesBy(p Burst, addr uint32, t uint64) int {
	if t < p.First {
		return 0
	}
	arrived := int((t-p.First)/p.Beat) + 1
	if arrived > p.Beats {
		arrived = p.Beats
	}
	slack := int(addr % uint32(b.cfg.WidthBytes))
	n := arrived*b.cfg.WidthBytes - slack
	if n < 0 {
		n = 0
	}
	return n
}

// Reset clears occupancy and statistics.
func (b *Bus) Reset() {
	b.busyUntil = 0
	b.stats = Stats{}
}
