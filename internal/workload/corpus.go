package workload

import (
	"fmt"
	"math/rand"
	"strings"
)

// Corpus helpers generate scenario-grade program populations for the load
// harness (internal/loadgen): many small, mutually distinct programs that
// assemble quickly and compress in well under a millisecond, so a load
// generator can hold thousands of distinct content digests without the
// per-request cost dominating the measurement. They are intentionally much
// smaller than the six calibrated Table 1 stand-ins (Profiles); use those
// when the compression ratio itself is under test.

// corpusIters bounds the driver loop of a corpus program so a simulate
// request over one stays cheap.
const corpusIters = 16

// CorpusSource returns a small self-contained SS32 program. The text is
// deterministic for a given (seed, id) pair and distinct across ids: the
// program bakes id into a lui/ori constant pair, so distinct ids always
// produce distinct content digests even if the random body collides.
func CorpusSource(seed int64, id int) string {
	return CorpusSourceSized(seed, id, 0)
}

// CorpusSourceSized is CorpusSource with an explicit body size in
// instructions (0 picks a small size in [24,64) from the stream). Larger
// bodies make compression proportionally more expensive, which load
// scenarios use to widen the window in which concurrent misses on one
// digest coalesce.
func CorpusSourceSized(seed int64, id int, body int) string {
	// Mix id into the seed so every program draws an independent stream;
	// the LCG multiplier keeps adjacent ids decorrelated.
	rng := rand.New(rand.NewSource(seed ^ (int64(id)+1)*0x5851F42D4C957F2D))
	if body <= 0 {
		body = 24 + rng.Intn(40)
	}
	var b strings.Builder
	line := func(format string, args ...any) {
		fmt.Fprintf(&b, format+"\n", args...)
	}
	line("main:")
	line("\tli $s0, %d", corpusIters)
	line("\tli $s1, 0")
	// Identity watermark: the program's id (and a seed-derived constant)
	// as raw halfwords, guaranteeing digest uniqueness per id.
	line("\tlui $t7, %d", (id>>16)&0xffff)
	line("\tori $t7, $t7, %d", id&0xffff)
	line("\tori $t6, $t7, %d", rng.Intn(1<<16))
	regs := []string{"$t0", "$t1", "$t2", "$t3", "$t4", "$t5", "$v1"}
	reg := func() string { return regs[rng.Intn(len(regs))] }
	// Bodies larger than the ISA's 16-bit branch reach are split into
	// sequential bounded loops, one label per chunk, so every back-branch
	// stays in range no matter how big the program grows.
	const chunkMax = 8192
	for chunk := 0; body > 0; chunk++ {
		n := body
		if n > chunkMax {
			n = chunkMax
		}
		body -= n
		line("\tli $s0, %d", corpusIters)
		line("loop%d:", chunk)
		for i := 0; i < n; i++ {
			switch rng.Intn(6) {
			case 0:
				line("\taddu %s, %s, %s", reg(), reg(), reg())
			case 1:
				line("\taddiu %s, %s, %d", reg(), reg(), rng.Intn(64)-16)
			case 2:
				line("\tsll %s, %s, %d", reg(), reg(), rng.Intn(8))
			case 3:
				line("\txor %s, %s, %s", reg(), reg(), reg())
			case 4:
				line("\tori %s, %s, %d", reg(), reg(), rng.Intn(1<<12))
			default:
				line("\tsrl %s, %s, %d", reg(), reg(), rng.Intn(8))
			}
		}
		line("\taddiu $s1, $s1, 1")
		line("\taddiu $s0, $s0, -1")
		line("\tbgtz $s0, loop%d", chunk)
	}
	line("\tli $v0, 10")
	line("\tsyscall")
	return b.String()
}

// CorpusSources returns n distinct programs drawn from the (seed, id)
// family, ids 0..n-1.
func CorpusSources(seed int64, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = CorpusSource(seed, i)
	}
	return out
}
