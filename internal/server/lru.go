package server

import (
	"crypto/sha256"
	"log/slog"
	"sort"
	"sync"

	"codepack"
)

// compCache is the content-addressed compression cache: SHA-256 digest of
// the marshalled program image -> its compressed form, so repeat
// compressions of the same image are served from memory. Eviction reuses
// the timestamp-scan LRU idiom of internal/cache: every entry carries the
// clock value of its last touch and the victim scan picks the minimum.
// The scan is O(entries) per eviction, which at service cache sizes
// (hundreds of entries, each worth a full dictionary build) is noise next
// to a compression, and keeps the structure a flat map with no list links.
//
// With a diskStore attached the cache is durable: every newly inserted
// entry is appended to the store's log (outside the cache lock, so disk
// latency never blocks readers), a background goroutine cuts compacted
// snapshots when the log outgrows them, and close flushes a final
// snapshot. Lock order is always cache.mu before store.mu is NOT allowed:
// the cache lock is released before any store call, and compaction's
// collect callback is the one place the store holds its own lock while
// briefly taking the cache lock.
type compCache struct {
	mu      sync.Mutex
	cap     int
	clock   uint64
	entries map[string]*compEntry

	hits, misses, evictions uint64
	bytes                   int64

	// Persistence (nil store = memory only).
	store     *diskStore
	log       *slog.Logger
	compactCh chan struct{}
	stopCh    chan struct{}
	loopDone  chan struct{}
	closeOnce sync.Once
}

type compEntry struct {
	comp  *codepack.Compressed
	stamp uint64
	bytes int64

	// verified marks entries whose payload is known to decompress to
	// the program their digest names: everything compressed locally or
	// restored from the durable store. Entries replicated from peers
	// arrive unverified (quarantined): they are served to peers — who
	// verify for themselves — but a local request must prove the entry
	// against its own program (confirm) before trusting it, and only
	// verified entries are ever persisted.
	verified bool
}

// cacheStats is a point-in-time view of the cache counters.
type cacheStats struct {
	Hits       uint64 `json:"hits"`
	Misses     uint64 `json:"misses"`
	Evictions  uint64 `json:"evictions"`
	Entries    int    `json:"entries"`
	Bytes      int64  `json:"bytes"`
	Unverified int    `json:"unverified"`
}

// newCompCache builds a cache holding at most capEntries compressed
// programs; capEntries <= 0 disables caching (every get is a miss).
func newCompCache(capEntries int) *compCache {
	c := &compCache{cap: capEntries, log: slog.Default()}
	if capEntries > 0 {
		c.entries = make(map[string]*compEntry, capEntries)
	}
	return c
}

// attachStore makes the cache durable: recovered entries are loaded in
// replay order (so their relative recency survives the restart) and the
// background compactor starts. Returns the number of entries actually
// restored into the cache; entries whose payloads no longer parse are
// skipped, and entries beyond the cache capacity evict oldest-first.
func (c *compCache) attachStore(st *diskStore, recovered []storedEntry, logger *slog.Logger) int {
	if c.cap <= 0 || st == nil {
		return 0
	}
	if logger != nil {
		c.log = logger
	}
	restored := 0
	for _, e := range recovered {
		comp, err := codepack.UnmarshalCompressed("cached", e.payload)
		if err != nil {
			c.log.Warn("restored cache record does not parse, skipping",
				"key", e.key, "err", err)
			st.mu.Lock()
			st.stats.RecordsSkipped++
			st.stats.RestoredEntries--
			st.mu.Unlock()
			continue
		}
		// Only verified entries are persisted, so restored entries are
		// trusted as verified.
		c.putMem(e.key, comp, true)
		restored++
	}
	c.store = st
	c.compactCh = make(chan struct{}, 1)
	c.stopCh = make(chan struct{})
	c.loopDone = make(chan struct{})
	go c.compactLoop()
	return restored
}

func (c *compCache) get(key string) (*codepack.Compressed, bool) {
	comp, _, ok := c.getEntry(key)
	return comp, ok
}

// getEntry is get plus the entry's verification state; callers holding
// the program the digest names use it to prove quarantined replicas
// before trusting them.
func (c *compCache) getEntry(key string) (comp *codepack.Compressed, verified, ok bool) {
	return c.lookup(key, true)
}

// recheck is getEntry without the miss accounting: the singleflight
// leader re-probes the cache after acquiring the flight key, and that
// probe must not count the same request's miss twice. A hit still
// counts (the fill was satisfied from memory after all).
func (c *compCache) recheck(key string) (comp *codepack.Compressed, verified, ok bool) {
	return c.lookup(key, false)
}

func (c *compCache) lookup(key string, countMiss bool) (comp *codepack.Compressed, verified, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		if countMiss {
			c.misses++
		}
		return nil, false, false
	}
	c.hits++
	c.clock++
	e.stamp = c.clock
	return e.comp, e.verified, true
}

func (c *compCache) put(key string, comp *codepack.Compressed) {
	if !c.putMem(key, comp, true) {
		return
	}
	c.persist(key, comp)
}

// putReplicated quarantines an entry pushed by a peer: resident and
// servable to other peers, but unverified — never persisted and never
// trusted by a local request until confirm proves it.
func (c *compCache) putReplicated(key string, comp *codepack.Compressed) {
	c.putMem(key, comp, false)
}

// confirm marks a quarantined entry as verified (the caller has proved
// its payload against the program) and persists it.
func (c *compCache) confirm(key string) {
	c.mu.Lock()
	var comp *codepack.Compressed
	if e, ok := c.entries[key]; ok && !e.verified {
		e.verified = true
		comp = e.comp
	}
	c.mu.Unlock()
	if comp != nil {
		c.persist(key, comp)
	}
}

// drop removes an entry outright (a quarantined replica that failed
// verification).
func (c *compCache) drop(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		c.bytes -= e.bytes
		delete(c.entries, key)
	}
}

// persist appends one verified entry to the durable store, outside the
// cache lock: a slow disk must not block gets.
func (c *compCache) persist(key string, comp *codepack.Compressed) {
	if c.store == nil {
		return
	}
	if err := c.store.append(key, comp.Marshal()); err != nil {
		c.log.Warn("cache persist failed", "key", key, "err", err)
		return
	}
	if c.store.needCompact() {
		select {
		case c.compactCh <- struct{}{}:
		default: // a compaction signal is already pending
		}
	}
}

// putMem inserts into the in-memory map and reports whether key was newly
// added (false for refreshes of a resident entry and for a disabled cache).
// Refreshing an entry never downgrades it: a verified entry stays verified
// even if a peer replicates the same digest again.
func (c *compCache) putMem(key string, comp *codepack.Compressed, verified bool) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cap <= 0 {
		return false
	}
	if e, ok := c.entries[key]; ok {
		c.clock++
		e.stamp = c.clock
		e.verified = e.verified || verified
		return false
	}
	if len(c.entries) >= c.cap {
		var victim string
		var oldest uint64
		first := true
		for k, e := range c.entries {
			if first || e.stamp < oldest {
				victim, oldest, first = k, e.stamp, false
			}
		}
		c.bytes -= c.entries[victim].bytes
		delete(c.entries, victim)
		c.evictions++
	}
	c.clock++
	bytes := int64(comp.Stats().CompressedBytes())
	c.entries[key] = &compEntry{comp: comp, stamp: c.clock, bytes: bytes, verified: verified}
	c.bytes += bytes
	return true
}

// payload returns the marshalled bytes cached under key for the peer
// protocol — quarantined entries included, since the requesting peer
// verifies payloads against its own program. It refreshes recency but
// does not count toward hit/miss rates (peer traffic would skew them).
func (c *compCache) payload(key string) ([]byte, bool) {
	c.mu.Lock()
	e, ok := c.entries[key]
	var comp *codepack.Compressed
	if ok {
		c.clock++
		e.stamp = c.clock
		comp = e.comp
	}
	c.mu.Unlock()
	if comp == nil {
		return nil, false
	}
	// Marshal outside the lock: payloads can be large.
	return comp.Marshal(), true
}

// has reports residency with no side effects (anti-entropy offers).
func (c *compCache) has(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[key]
	return ok
}

// keys snapshots the resident digests (the startup anti-entropy pass).
func (c *compCache) keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.entries))
	for k := range c.entries {
		out = append(out, k)
	}
	return out
}

// compactLoop runs snapshot compactions off the request path.
func (c *compCache) compactLoop() {
	defer close(c.loopDone)
	for {
		select {
		case <-c.compactCh:
			if err := c.compactNow(); err != nil {
				c.log.Warn("cache compaction failed", "err", err)
			}
		case <-c.stopCh:
			return
		}
	}
}

// compactNow cuts a snapshot of the live entries, oldest first so replay
// order preserves recency on the next boot.
func (c *compCache) compactNow() error {
	return c.store.compact(func() []storedEntry {
		c.mu.Lock()
		defer c.mu.Unlock()
		out := make([]storedEntry, 0, len(c.entries))
		type aged struct {
			key   string
			stamp uint64
		}
		order := make([]aged, 0, len(c.entries))
		for k, e := range c.entries {
			order = append(order, aged{k, e.stamp})
		}
		sort.Slice(order, func(i, j int) bool { return order[i].stamp < order[j].stamp })
		for _, a := range order {
			payload := c.entries[a.key].comp.Marshal()
			out = append(out, storedEntry{
				key:     a.key,
				payload: payload,
				sum:     sha256.Sum256(payload),
			})
		}
		return out
	})
}

// close stops the compactor, flushes a final snapshot (the SIGTERM flush)
// and closes the store. Safe to call multiple times and with no store.
func (c *compCache) close() {
	c.closeOnce.Do(func() {
		if c.store == nil {
			return
		}
		close(c.stopCh)
		<-c.loopDone
		if err := c.compactNow(); err != nil {
			c.log.Warn("final cache flush failed", "err", err)
		}
		if err := c.store.close(); err != nil {
			c.log.Warn("cache store close failed", "err", err)
		}
	})
}

func (c *compCache) stats() cacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	unverified := 0
	for _, e := range c.entries {
		if !e.verified {
			unverified++
		}
	}
	return cacheStats{
		Hits:       c.hits,
		Misses:     c.misses,
		Evictions:  c.evictions,
		Entries:    len(c.entries),
		Bytes:      c.bytes,
		Unverified: unverified,
	}
}
