package lefurgy

import (
	"math/rand"
	"testing"
	"testing/quick"

	"codepack/internal/isa"
)

func synth(rng *rand.Rand, n int) []isa.Word {
	common := []isa.Word{0x24420004, 0x8FBF001C, 0x00851021, 0xAFBF001C, 0x03E00008}
	text := make([]isa.Word, n)
	for i := range text {
		switch rng.Intn(10) {
		case 0, 1:
			text[i] = isa.Word(rng.Uint32()) // unique
		case 2, 3, 4:
			text[i] = 0x24420000 | isa.Word(rng.Intn(500)) // mid-frequency
		default:
			text[i] = common[rng.Intn(len(common))] // hot
		}
	}
	return text
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 100, 5000} {
		text := synth(rng, n)
		c, err := Compress(isa.TextBase, text)
		if err != nil {
			t.Fatal(err)
		}
		out, err := c.Decompress()
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != n {
			t.Fatalf("n=%d: got %d", n, len(out))
		}
		for i := range out {
			if out[i] != text[i] {
				t.Fatalf("word %d corrupted", i)
			}
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, sz uint16) bool {
		n := int(sz)%3000 + 1
		text := synth(rand.New(rand.NewSource(seed)), n)
		c, err := Compress(isa.TextBase, text)
		if err != nil {
			return false
		}
		out, err := c.Decompress()
		if err != nil || len(out) != n {
			return false
		}
		for i := range out {
			if out[i] != text[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestHotInstructionsGetShortCodes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	text := synth(rng, 10000)
	c, err := Compress(isa.TextBase, text)
	if err != nil {
		t.Fatal(err)
	}
	if c.Class0 == 0 {
		t.Error("no class-0 codewords for a skewed stream")
	}
	if c.Class0+c.Class1+c.Escaped != len(text) {
		t.Error("composition does not sum to the instruction count")
	}
	// The most common instruction must occupy slot 0.
	freq := map[isa.Word]int{}
	for _, w := range text {
		freq[w]++
	}
	best, bn := isa.Word(0), 0
	for w, n := range freq {
		if n > bn || (n == bn && w < best) {
			best, bn = w, n
		}
	}
	if c.Dict[0] != best {
		t.Errorf("dict[0] = %#x, most frequent is %#x", c.Dict[0], best)
	}
}

func TestSingletonExclusion(t *testing.T) {
	// 300 hot values fill class 0; singletons beyond that are excluded.
	text := make([]isa.Word, 0, 4096)
	for i := 0; i < 300; i++ {
		for k := 0; k < 10; k++ {
			text = append(text, isa.Word(0x1000+i))
		}
	}
	for i := 0; i < 500; i++ {
		text = append(text, isa.Word(0xFFFF0000+uint32(i)))
	}
	c, err := Compress(isa.TextBase, text)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Dict) > 300 {
		t.Errorf("dictionary has %d entries; singletons should be excluded", len(c.Dict))
	}
	if c.Escaped < 500 {
		t.Errorf("escaped %d, want >= 500", c.Escaped)
	}
}

func TestRatioSkewed(t *testing.T) {
	text := make([]isa.Word, 8192)
	for i := range text {
		text[i] = isa.Word(0x2442_0000 | uint32(i%64))
	}
	c, err := Compress(isa.TextBase, text)
	if err != nil {
		t.Fatal(err)
	}
	// 64 distinct hot values: everything in class 0 at 10 bits/instr.
	if r := c.Ratio(); r > 0.40 {
		t.Fatalf("skewed ratio %.2f, want < 0.40", r)
	}
}

func TestEmptyRejected(t *testing.T) {
	if _, err := Compress(isa.TextBase, nil); err == nil {
		t.Fatal("empty text accepted")
	}
}
