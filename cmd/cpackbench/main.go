// Command cpackbench drives a cpackd instance with a calibrated scenario
// load and reports latency, throughput, status mix and server-side cache
// behaviour — the proof harness behind the repo's BENCH_<n>.json
// trajectory.
//
// Usage:
//
//	cpackbench -list                                     # scenario catalogue
//	cpackbench -scenario zipfian -qps 500 -duration 30s  # one scenario, human summary
//	cpackbench -addr http://host:8321 -scenario all -json
//	cpackbench -trajectory 7 -out BENCH_7.json           # all scenarios + codec microbench
//	cpackbench -cluster 3 -churn-interval 1s -scenario churn
//
// With no -addr, cpackbench boots a private in-process cpackd on a
// loopback port and drives that, so a single command measures a known
// configuration; point -addr at a running daemon (or cluster member) to
// measure a real deployment.
//
// With -cluster N, cpackbench instead builds cpackd and boots N real
// processes as a replicated warm-cache cluster (-cluster-replicas per
// digest), drives them round-robin, and sums their metrics. Adding
// -churn-interval stops one member at a time mid-run — alternating a
// SIGKILL crash with a graceful SIGTERM leave — and restarts it, so the
// report's warm-hit ratio measures failover, hinted handoff and
// read-repair under member churn. A -trajectory run with -cluster set
// appends one such churn report to the document.
//
// The runner is open-loop and coordinated-omission-aware: arrivals follow
// the fixed -qps schedule and every latency is measured from the intended
// send time, so a server stall is charged to each request it delayed (see
// internal/loadgen).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"codepack/internal/loadgen"
	"codepack/internal/server"
	"codepack/internal/tenant"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "cpackbench:", err)
		var uerr usageError
		if errors.As(err, &uerr) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

type usageError string

func (e usageError) Error() string { return string(e) }

// microBenchPattern selects the codec microbenchmarks a trajectory folds
// in: encode and decode throughput, the reference-vs-fast decoder split
// and the pooled serve-path decode, plus the served path cold and warm.
const microBenchPattern = "CompressThroughput|DecompressThroughput|DecodeThroughput|DecodePooled|ServerCompress"

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("cpackbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr       = fs.String("addr", "", "cpackd base URL; empty boots a private in-process cpackd")
		scenario   = fs.String("scenario", "zipfian", "scenario name, or \"all\"")
		list       = fs.Bool("list", false, "list scenarios and exit")
		qps        = fs.Float64("qps", 200, "open-loop arrival rate (requests/s)")
		duration   = fs.Duration("duration", 10*time.Second, "measured window")
		warmup     = fs.Duration("warmup", 2*time.Second, "warmup ahead of the measured window")
		conc       = fs.Int("c", 16, "max in-flight requests")
		seed       = fs.Int64("seed", 1, "scenario stream seed (same seed = same request stream)")
		asJSON     = fs.Bool("json", false, "emit machine-readable JSON instead of a summary")
		out        = fs.String("out", "", "write output to this file instead of stdout")
		trajectory = fs.Int("trajectory", 0, "emit a BENCH_<n>.json trajectory document for PR <n>: all scenarios plus codec microbenchmarks")
		micro      = fs.Bool("microbench", true, "include `go test -bench` codec microbenchmarks in the trajectory")
		benchtime  = fs.String("benchtime", "20x", "-benchtime for the folded-in microbenchmarks")
		clusterN   = fs.Int("cluster", 0, "boot this many cpackd processes as a replicated cluster and drive them round-robin (0 = single target)")
		clusterR   = fs.Int("cluster-replicas", 2, "replica count per digest (-replicas) for -cluster members")
		churnEvery = fs.Duration("churn-interval", 0, "with -cluster: stop one member this often mid-run (alternating crash and graceful leave) and restart it")
	)
	if err := fs.Parse(args); err != nil {
		return usageError(err.Error())
	}
	if *list {
		for _, s := range loadgen.Scenarios() {
			fmt.Fprintf(stdout, "%-11s %s\n", s.Name(), s.Describe())
		}
		return nil
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	if *clusterN > 0 && *addr != "" {
		return usageError("-cluster and -addr are mutually exclusive")
	}
	if *churnEvery > 0 && *clusterN == 0 {
		return usageError("-churn-interval requires -cluster")
	}

	scenarios, err := selectScenarios(*scenario, *trajectory > 0)
	if err != nil {
		return err
	}
	runOpts := loadgen.Options{
		Seed:        *seed,
		QPS:         *qps,
		Duration:    *duration,
		Warmup:      *warmup,
		Concurrency: *conc,
	}
	clusterOpts := clusterOptions{n: *clusterN, replicas: *clusterR, churn: *churnEvery}

	var reports []*loadgen.Report
	if *clusterN > 0 && *trajectory == 0 {
		// Cluster mode: the selected scenarios run against a multi-process
		// cpackd cluster (churning when asked) instead of one target.
		reports, err = runCluster(ctx, scenarios, clusterOpts, runOpts, stderr)
		if err != nil {
			return err
		}
	} else {
		target := *addr
		if target == "" {
			stop, url, err := selfServe()
			if err != nil {
				return fmt.Errorf("start in-process cpackd: %w", err)
			}
			defer stop()
			target = url
			fmt.Fprintf(stderr, "cpackbench: no -addr, driving in-process cpackd at %s\n", target)
		}
		client := loadgen.NewHTTPClient(target)
		for _, sc := range scenarios {
			if len(scenarios) > 1 {
				fmt.Fprintf(stderr, "cpackbench: running %s (%.0f req/s for %v + %v warmup)\n",
					sc.Name(), *qps, *duration, *warmup)
			}
			o := runOpts
			o.Scenario = sc
			o.Executor = client
			o.Metrics = client
			o.Target = target
			rep, err := loadgen.Run(ctx, o)
			if err != nil {
				return fmt.Errorf("scenario %s: %w", sc.Name(), err)
			}
			reports = append(reports, rep)
		}
	}

	// A trajectory folds in one extra churn run against a real replicated
	// cluster when -cluster is set: the single-target catalogue stays the
	// comparable baseline, and the cluster report carries the warm-hit
	// ratio the replication tier is judged by.
	if *trajectory > 0 && *clusterN > 0 {
		churnSc, ok := loadgen.ByName("churn")
		if !ok {
			return fmt.Errorf("churn scenario missing from the catalogue")
		}
		clusterReports, err := runCluster(ctx, []loadgen.Scenario{churnSc}, clusterOpts, runOpts, stderr)
		if err != nil {
			return err
		}
		reports = append(reports, clusterReports...)
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	if *trajectory > 0 {
		doc := &loadgen.Trajectory{
			Schema:    loadgen.TrajectorySchema,
			PR:        *trajectory,
			GoVersion: runtime.Version(),
			Scenarios: reports,
		}
		if *micro {
			fmt.Fprintf(stderr, "cpackbench: folding in codec microbenchmarks (-bench '%s' -benchtime %s)\n",
				microBenchPattern, *benchtime)
			mb, err := runMicroBench(ctx, *benchtime)
			if err != nil {
				return fmt.Errorf("microbenchmarks: %w", err)
			}
			doc.Micro = mb
		}
		return writeJSON(w, doc)
	}

	if *asJSON {
		if len(reports) == 1 {
			return writeJSON(w, reports[0])
		}
		return writeJSON(w, reports)
	}
	for _, rep := range reports {
		rep.WriteText(w)
	}
	return nil
}

// selectScenarios resolves the -scenario flag; trajectory mode always
// runs the full catalogue.
func selectScenarios(name string, trajectory bool) ([]loadgen.Scenario, error) {
	if trajectory || name == "all" {
		return loadgen.Scenarios(), nil
	}
	s, ok := loadgen.ByName(name)
	if !ok {
		return nil, usageError(fmt.Sprintf("unknown scenario %q (want one of %s, or \"all\")",
			name, strings.Join(loadgen.Names(), ", ")))
	}
	return []loadgen.Scenario{s}, nil
}

// benchTenants builds the in-process server's tenant registry: the two
// bench tenants the "tenants" scenario replays, plus unrestricted
// anonymous access so the single-tenant scenarios run unchanged.
func benchTenants() (*tenant.Registry, error) {
	cfg := fmt.Sprintf("tenant %s key=%s weight=1\ntenant %s key=%s weight=1\nanon\n",
		loadgen.BenchTenantLight, loadgen.BenchTenantLightKey,
		loadgen.BenchTenantHeavy, loadgen.BenchTenantHeavyKey)
	snap, err := tenant.ParseConfig(cfg, "cpackbench-builtin")
	if err != nil {
		return nil, err
	}
	return tenant.NewRegistry(snap), nil
}

// selfServe boots an in-process cpackd on a loopback port, logging
// suppressed so the harness output stays clean. Pool sizes are pinned
// rather than derived from GOMAXPROCS so runs compare across machines —
// in particular, singleflight coalescing under flashcrowd needs more
// than the two light workers the default would give a small box.
func selfServe() (stop func(), url string, err error) {
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	reg, err := benchTenants()
	if err != nil {
		return nil, "", err
	}
	srv, err := server.New(server.Config{
		Logger:       quiet,
		LightWorkers: 8,
		HeavyWorkers: 2,
		Tenants:      reg,
	})
	if err != nil {
		return nil, "", err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return nil, "", err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	stop = func() {
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		hs.Shutdown(sctx)
		scancel()
		srv.Close()
	}
	return stop, "http://" + ln.Addr().String(), nil
}

// runMicroBench shells out to `go test -bench` in the module root and
// parses the standard benchmark output, so the trajectory reuses the
// exact benchmarks CI already runs rather than reimplementing them.
func runMicroBench(ctx context.Context, benchtime string) ([]loadgen.MicroBench, error) {
	cmd := exec.CommandContext(ctx, "go", "test", "-run", "xxx",
		"-bench", microBenchPattern, "-benchmem", "-benchtime", benchtime, ".")
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go test -bench: %w", err)
	}
	return loadgen.ParseGoBench(strings.NewReader(string(out)))
}

func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
