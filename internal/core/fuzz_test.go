package core

import (
	"math/rand"
	"testing"

	"codepack/internal/isa"
)

// FuzzUnmarshalCompressed feeds arbitrary bytes to the compressed-image
// parser: it must reject or accept them without panicking, and anything it
// accepts must decompress without panicking.
func FuzzUnmarshalCompressed(f *testing.F) {
	rng := rand.New(rand.NewSource(5))
	good, err := CompressWords("seed", isa.TextBase, synthText(rng, 128))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good.Marshal())
	f.Add([]byte{})
	f.Add(make([]byte, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := UnmarshalCompressed("fuzz", data)
		if err != nil {
			return
		}
		_, _ = c.Decompress()
	})
}

// FuzzDecodeCorruptRegion corrupts the compressed region of a valid image:
// the decoder must fail cleanly or produce bounded output, never panic or
// loop.
func FuzzDecodeCorruptRegion(f *testing.F) {
	rng := rand.New(rand.NewSource(6))
	base, err := CompressWords("seed", isa.TextBase, synthText(rng, 256))
	if err != nil {
		f.Fatal(err)
	}
	blob := base.Marshal()
	f.Add(uint16(0), byte(0xFF))
	f.Add(uint16(100), byte(0x01))
	f.Fuzz(func(t *testing.T, pos uint16, xor byte) {
		mut := append([]byte(nil), blob...)
		if len(mut) == 0 || xor == 0 {
			return
		}
		mut[int(pos)%len(mut)] ^= xor
		c, err := UnmarshalCompressed("fuzz", mut)
		if err != nil {
			return
		}
		var out [BlockInstrs]isa.Word
		for b := 0; b < c.NumBlocks(); b++ {
			_ = c.DecodeBlock(b, &out)
		}
	})
}

// FuzzBitStream checks writer/reader agreement on arbitrary field layouts.
func FuzzBitStream(f *testing.F) {
	f.Add(uint32(0xDEADBEEF), uint8(7), uint32(0x1234), uint8(13))
	f.Fuzz(func(t *testing.T, v1 uint32, n1 uint8, v2 uint32, n2 uint8) {
		a, b := uint(n1)%32+1, uint(n2)%32+1
		var w bitWriter
		w.writeBits(v1, a)
		w.writeBits(v2, b)
		w.align()
		r := bitReader{buf: w.bytes()}
		m1 := uint32(1)<<a - 1
		if a == 32 {
			m1 = ^uint32(0)
		}
		m2 := uint32(1)<<b - 1
		if b == 32 {
			m2 = ^uint32(0)
		}
		if got := r.readBits(a); got != v1&m1 {
			t.Fatalf("field1 %#x, want %#x", got, v1&m1)
		}
		if got := r.readBits(b); got != v2&m2 {
			t.Fatalf("field2 %#x, want %#x", got, v2&m2)
		}
	})
}
