package main

import (
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

const testSource = `
main:
	li   $s0, 50
	li   $s1, 0
loop:
	addu $s1, $s1, $s0
	addiu $s0, $s0, -1
	bgtz $s0, loop
	li   $v0, 10
	syscall
`

func writeSource(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.s")
	if err := os.WriteFile(path, []byte(testSource), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunErrorPaths(t *testing.T) {
	src := writeSource(t)
	cases := []struct {
		name      string
		args      []string
		wantUsage bool
	}{
		{"no args", nil, true},
		{"unknown command", []string{"frobnicate"}, true},
		{"verify no operand", []string{"verify"}, true},
		{"compress extra operands", []string{"compress", src, src}, true},
		{"compress bad flag", []string{"compress", "-nonsense", src}, true},
		{"stat missing file", []string{"stat", filepath.Join(t.TempDir(), "nope.img")}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args)
			if err == nil {
				t.Fatal("run succeeded, want error")
			}
			if got := errors.Is(err, errUsage); got != tc.wantUsage {
				t.Errorf("errors.Is(err, errUsage) = %v, want %v (err: %v)", got, tc.wantUsage, err)
			}
		})
	}
}

func TestRunSuccessPaths(t *testing.T) {
	src := writeSource(t)
	cpk := filepath.Join(t.TempDir(), "prog.cpk")
	for _, args := range [][]string{
		{"compress", "-o", cpk, src},
		{"verify", src},
		{"stat", src},
		{"decompress", "-o", filepath.Join(t.TempDir(), "prog.img"), cpk},
	} {
		if err := run(args); err != nil {
			t.Fatalf("run(%v): %v", args, err)
		}
	}
}

// TestExitStatus re-executes the test binary as cpack to assert the real
// process exit codes: 0 on success, 2 for usage errors, 1 otherwise, with
// every failure prefixed "cpack:" on stderr.
func TestExitStatus(t *testing.T) {
	if os.Getenv("CPACK_TEST_MAIN") == "1" {
		// The real cpack arguments follow the "--" test-flag terminator.
		args := os.Args
		for i, a := range args {
			if a == "--" {
				args = args[i+1:]
				break
			}
		}
		os.Args = append([]string{"cpack"}, args...)
		main()
		return
	}
	src := writeSource(t)
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name     string
		args     []string
		wantCode int
	}{
		{"verify ok", []string{"verify", src}, 0},
		{"no args", nil, 2},
		{"unknown command", []string{"frobnicate"}, 2},
		{"missing file", []string{"stat", filepath.Join(t.TempDir(), "nope.img")}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cmd := exec.Command(exe, append([]string{"-test.run=TestExitStatus", "--"}, tc.args...)...)
			cmd.Env = append(os.Environ(), "CPACK_TEST_MAIN=1")
			var stderr strings.Builder
			cmd.Stderr = &stderr
			err := cmd.Run()
			code := 0
			var exitErr *exec.ExitError
			if errors.As(err, &exitErr) {
				code = exitErr.ExitCode()
			} else if err != nil {
				t.Fatal(err)
			}
			if code != tc.wantCode {
				t.Errorf("exit code %d, want %d (stderr: %s)", code, tc.wantCode, stderr.String())
			}
			if tc.wantCode != 0 && !strings.Contains(stderr.String(), "cpack:") {
				t.Errorf("stderr %q missing cpack: prefix", stderr.String())
			}
		})
	}
}
