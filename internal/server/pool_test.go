package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsJobs(t *testing.T) {
	p := newPool("test", 4, 16)
	defer p.close()
	var n atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := p.do(context.Background(), func() { n.Add(1) }); err != nil {
				// Saturation is legal under this load; anything else is not.
				if !errors.Is(err, errSaturated) {
					t.Errorf("do: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	if n.Load() == 0 {
		t.Fatal("no jobs ran")
	}
}

func TestPoolSaturation(t *testing.T) {
	p := newPool("test", 1, 1)
	defer p.close()
	block := make(chan struct{})
	var once sync.Once
	defer once.Do(func() { close(block) })

	running := make(chan struct{})
	go p.do(context.Background(), func() { close(running); <-block })
	<-running
	// Fill the single queue slot.
	done2 := make(chan error, 1)
	go func() { done2 <- p.do(context.Background(), func() {}) }()
	waitForCond(t, func() bool { return p.depth() == 1 })

	if err := p.do(context.Background(), func() {}); !errors.Is(err, errSaturated) {
		t.Fatalf("expected errSaturated, got %v", err)
	}
	once.Do(func() { close(block) })
	if err := <-done2; err != nil {
		t.Fatalf("queued job failed: %v", err)
	}
}

func TestPoolSkipsCancelledQueuedJobs(t *testing.T) {
	p := newPool("test", 1, 4)
	defer p.close()
	block := make(chan struct{})
	running := make(chan struct{})
	go p.do(context.Background(), func() { close(running); <-block })
	<-running

	ctx, cancel := context.WithCancel(context.Background())
	ran := false
	errCh := make(chan error, 1)
	go func() { errCh <- p.do(ctx, func() { ran = true }) }()
	waitForCond(t, func() bool { return p.depth() == 1 })
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
	close(block)
	p.close() // drains: the cancelled job is discarded, not run
	if ran {
		t.Error("cancelled queued job was executed")
	}
}

func TestPoolCloseDrains(t *testing.T) {
	p := newPool("test", 1, 4)
	block := make(chan struct{})
	running := make(chan struct{})
	var done atomic.Int64
	go p.do(context.Background(), func() { close(running); <-block; done.Add(1) })
	<-running
	// One more admitted behind it.
	go p.do(context.Background(), func() { done.Add(1) })
	waitForCond(t, func() bool { return p.depth() == 1 })

	closed := make(chan struct{})
	go func() { p.close(); close(closed) }()
	select {
	case <-closed:
		t.Fatal("close returned with a job still running")
	case <-time.After(20 * time.Millisecond):
	}
	close(block)
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("close never returned")
	}
	if done.Load() != 2 {
		t.Fatalf("drained %d jobs, want 2", done.Load())
	}
	if err := p.do(context.Background(), func() {}); !errors.Is(err, errClosed) {
		t.Fatalf("expected errClosed after close, got %v", err)
	}
}

func waitForCond(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}
