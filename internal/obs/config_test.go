package obs

import (
	"strings"
	"testing"
	"time"
)

func TestParseConfig(t *testing.T) {
	src := `
# fleet SLOs
slo compress-p99 target=99 endpoint=compress latency=250ms window=1h
slo availability target=99.9 window=6h fast-burn=10 slow-burn=3
slo acme-decode target=95 tenant=acme latency=5ms
`
	snap, err := ParseConfig(src, "test")
	if err != nil {
		t.Fatalf("ParseConfig: %v", err)
	}
	if len(snap.Objectives) != 3 {
		t.Fatalf("got %d objectives, want 3", len(snap.Objectives))
	}
	o := snap.Objectives[0]
	if o.Name != "compress-p99" || o.Endpoint != "compress" || o.Target != 0.99 ||
		o.Latency != 250*time.Millisecond || o.Window != time.Hour {
		t.Fatalf("objective 0 parsed wrong: %+v", o)
	}
	o = snap.Objectives[1]
	if o.Latency != 0 || o.FastBurn != 10 || o.SlowBurn != 3 || o.Window != 6*time.Hour {
		t.Fatalf("objective 1 parsed wrong: %+v", o)
	}
	o = snap.Objectives[2]
	if o.Tenant != "acme" || o.Target != 0.95 {
		t.Fatalf("objective 2 parsed wrong: %+v", o)
	}
}

func TestParseConfigErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"tenant x", "unknown directive"},
		{"slo", "needs a name"},
		{"slo UPPER target=99", "invalid slo name"},
		{"slo a target=99\nslo a target=98", "duplicate slo"},
		{"slo a", "missing target="},
		{"slo a target=0", "target must be"},
		{"slo a target=100", "target must be"},
		{"slo a target=abc", "target must be"},
		{"slo a target=99 latency=-3ms", "latency must be"},
		{"slo a target=99 latency=25h", "latency must be"},
		{"slo a target=99 window=5s", "window must be"},
		{"slo a target=99 fast-burn=0", "fast-burn must be"},
		{"slo a target=99 slow-burn=-1", "slow-burn must be"},
		{"slo a target=99 bogus=1", "unknown attribute"},
		{"slo a target=99 endpoint=", "malformed attribute"},
		{"slo a target=99 endpoint=UP", "invalid endpoint"},
		{"slo a target=99 tenant=b@d", "invalid tenant"},
	}
	for _, tc := range cases {
		_, err := ParseConfig(tc.src, "bad")
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ParseConfig(%q) err=%v, want substring %q", tc.src, err, tc.want)
		}
	}
}

func TestParseConfigLineNumbers(t *testing.T) {
	_, err := ParseConfig("# ok\n\nslo a target=99\nslo b target=boom\n", "slos.conf")
	if err == nil || !strings.Contains(err.Error(), "slos.conf:4:") {
		t.Fatalf("want error naming line 4, got %v", err)
	}
}

func FuzzSLOConfig(f *testing.F) {
	f.Add("slo a target=99 endpoint=compress latency=250ms")
	f.Add("slo a target=99.9 window=6h fast-burn=14 slow-burn=6")
	f.Add("# comment\n\nslo x target=50 tenant=t")
	f.Add("slo " + strings.Repeat("a", 100) + " target=99")
	f.Add("slo a target=1e308")
	f.Add("slo a target=99 latency=9999999999999h")
	f.Fuzz(func(t *testing.T, src string) {
		snap, err := ParseConfig(src, "fuzz")
		if err != nil {
			return
		}
		// Whatever parses must survive the engine end to end.
		for _, o := range snap.Objectives {
			if o.Target <= 0 || o.Target >= 1 {
				t.Fatalf("parsed target out of range: %+v", o)
			}
			if !validName(o.Name) {
				t.Fatalf("parsed invalid name: %q", o.Name)
			}
		}
		e := NewEngine(snap, EngineConfig{Now: func() time.Time { return time.Unix(1000, 0) }})
		e.Record("compress", "t", 500, time.Second)
		e.Evaluate()
		if got := len(e.Status()); got != len(snap.Objectives) {
			t.Fatalf("status has %d objectives, config %d", got, len(snap.Objectives))
		}
		e.Stop()
	})
}
