package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"codepack"
	"codepack/internal/peer"
)

// reserveURL grabs a loopback listener so a member's base URL is known
// before its server exists (the ring needs every URL up front).
func reserveURL(t *testing.T) (net.Listener, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return ln, "http://" + ln.Addr().String()
}

// fastPeerConfig keeps cluster tests snappy: tight timeouts, one retry,
// a two-failure breaker with a short cooldown. The membership loop is
// made quiescent (hour-scale heartbeats and timeouts) so these tests
// exercise the static seed topology; dynamic membership has its own
// tests.
func fastPeerConfig(self string, peers ...string) *peer.Config {
	return &peer.Config{
		Self:              self,
		Peers:             peers,
		FetchTimeout:      500 * time.Millisecond,
		Retries:           -1,
		BackoffBase:       time.Millisecond,
		BreakerThreshold:  2,
		BreakerCooldown:   50 * time.Millisecond,
		HeartbeatInterval: time.Hour,
		SuspectAfter:      time.Hour,
		DeadAfter:         2 * time.Hour,
	}
}

// startOn serves an already-built Server on a reserved listener.
func startOn(t *testing.T, s *Server, ln net.Listener) *httptest.Server {
	t.Helper()
	ts := httptest.NewUnstartedServer(s.Handler())
	ts.Listener.Close()
	ts.Listener = ln
	ts.Start()
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts
}

// startPair boots two clustered instances on pre-reserved ports and
// returns them plus their base URLs.
func startPair(t *testing.T, cfgA, cfgB Config) (sa, sb *Server, urlA, urlB string) {
	t.Helper()
	lnA, urlA := reserveURL(t)
	lnB, urlB := reserveURL(t)
	cfgA.Peer = fastPeerConfig(urlA, urlB)
	cfgB.Peer = fastPeerConfig(urlB, urlA)
	if cfgA.Logger == nil {
		cfgA.Logger = quietLogger()
	}
	if cfgB.Logger == nil {
		cfgB.Logger = quietLogger()
	}
	sa, err := New(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	startOn(t, sa, lnA)
	sb, err = New(cfgB)
	if err != nil {
		sa.Close()
		t.Fatal(err)
	}
	startOn(t, sb, lnB)
	return sa, sb, urlA, urlB
}

// imageOwnedBy assembles program variants until one's digest lands on
// the wanted ring member, so tests can steer a digest to either side.
func imageOwnedBy(t *testing.T, ring *peer.Ring, owner string) *codepack.Image {
	t.Helper()
	for i := 0; i < 10_000; i++ {
		im, err := codepack.Assemble(fmt.Sprintf("prog%d", i),
			strings.Replace(testAsm, "li   $s0, 50", fmt.Sprintf("li   $s0, %d", 50+i), 1))
		if err != nil {
			t.Fatal(err)
		}
		if ring.Owner(codepack.ImageDigest(im)) == owner {
			return im
		}
	}
	t.Fatalf("no generated program hashed to owner %s", owner)
	return nil
}

func compressImageOn(t *testing.T, url string, im *codepack.Image) CompressResponse {
	t.Helper()
	b64 := base64.StdEncoding.EncodeToString(im.Marshal())
	return decodeBody[CompressResponse](t, postJSON(t, url+"/v1/compress",
		CompressRequest{ProgramRef: ProgramRef{ImageB64: b64}}), http.StatusOK)
}

// TestPeerWarmTierHit is the headline warm-tier path: a digest
// compressed on its ring owner is served by the other instance as a
// peer hit with zero recompression.
func TestPeerWarmTierHit(t *testing.T) {
	_, _, urlA, urlB := startPair(t, Config{}, Config{})
	ring := peer.NewRing([]string{urlA, urlB}, peer.DefaultReplicas)
	im := imageOwnedBy(t, ring, urlA)

	first := compressImageOn(t, urlA, im)
	if first.Cached {
		t.Fatal("first compression on the owner reported cached")
	}
	second := compressImageOn(t, urlB, im)
	if !second.Cached {
		t.Error("peer-served compression did not report cached")
	}
	if second.Digest != first.Digest {
		t.Errorf("digest mismatch across instances: %s vs %s", second.Digest, first.Digest)
	}
	if got := metricValue(t, scrapeURL(t, urlB), "cpackd_peer_hits_total"); got != 1 {
		t.Errorf("cpackd_peer_hits_total on B = %v, want 1", got)
	}
}

// TestPeerReplication: an entry compressed away from its owner is
// replicated to the owner asynchronously, quarantined there, and then
// served locally (verified at use) without a peer fetch.
func TestPeerReplication(t *testing.T) {
	_, sb, urlA, urlB := startPair(t, Config{}, Config{})
	ring := peer.NewRing([]string{urlA, urlB}, peer.DefaultReplicas)
	im := imageOwnedBy(t, ring, urlB) // owned by B, compressed on A

	if resp := compressImageOn(t, urlA, im); resp.Cached {
		t.Fatal("first compression reported cached")
	}
	// Replication is async best-effort: wait for the entry to land on B.
	waitFor(t, func() bool { return sb.cache.stats().Entries == 1 })
	if got := sb.cache.stats().Unverified; got != 1 {
		t.Fatalf("replicated entry not quarantined: unverified = %d", got)
	}

	resp := compressImageOn(t, urlB, im)
	if !resp.Cached {
		t.Error("replicated entry was not served from cache")
	}
	if got := metricValue(t, scrapeURL(t, urlB), "cpackd_peer_hits_total"); got != 0 {
		t.Errorf("cpackd_peer_hits_total on B = %v, want 0 (local quarantine hit)", got)
	}
	if got := sb.cache.stats().Unverified; got != 0 {
		t.Errorf("entry still unverified after being served: %d", got)
	}
}

// TestPeerDownDegrades: with its peer dead, an instance keeps serving —
// every request succeeds via local compression, and the breaker opens
// so later misses skip the dead peer.
func TestPeerDownDegrades(t *testing.T) {
	lnDead, urlDead := reserveURL(t)
	lnB, urlB := reserveURL(t)
	lnDead.Close() // nothing ever listens here

	cfg := Config{Logger: quietLogger(), Peer: fastPeerConfig(urlB, urlDead)}
	sb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	startOn(t, sb, lnB)

	// Several distinct misses owned by the dead member: enough to trip
	// the two-failure breaker, with every request still succeeding.
	ring := peer.NewRing([]string{urlDead, urlB}, peer.DefaultReplicas)
	seen := 0
	for i := 0; seen < 4 && i < 10_000; i++ {
		im, err := codepack.Assemble(fmt.Sprintf("down%d", i),
			strings.Replace(testAsm, "li   $s1, 0", fmt.Sprintf("li   $s1, %d", i), 1))
		if err != nil {
			t.Fatal(err)
		}
		if ring.Owner(codepack.ImageDigest(im)) != urlDead {
			continue
		}
		seen++
		if resp := compressImageOn(t, urlB, im); resp.Cached {
			t.Errorf("miss %d reported cached with a dead peer", seen)
		}
	}

	body := scrapeURL(t, urlB)
	if got := metricValue(t, body, "cpackd_peer_errors_total"); got < 1 {
		t.Errorf("cpackd_peer_errors_total = %v, want >= 1", got)
	}
	opens := fmt.Sprintf("cpackd_peer_breaker_opens_total{peer=%q}", urlDead)
	if got := metricValue(t, body, opens); got < 1 {
		t.Errorf("%s = %v, want >= 1", opens, got)
	}
}

// TestPeerPoisonRejected: a malicious owner serving a well-formed but
// wrong payload (correct transport checksum) cannot poison the cache —
// the instance detects the mismatch, compresses locally, and answers
// correctly.
func TestPeerPoisonRejected(t *testing.T) {
	// The wrong program, compressed for real: parses fine, checksums
	// fine, decompresses to the wrong text.
	wrongIm, err := codepack.Assemble("wrong", strings.Replace(testAsm, "li   $s0, 50", "li   $s0, 99", 1))
	if err != nil {
		t.Fatal(err)
	}
	wrongComp, err := codepack.Compress(wrongIm)
	if err != nil {
		t.Fatal(err)
	}
	payload := wrongComp.Marshal()
	sum := sha256.Sum256(payload)

	evil := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, peer.CachePathPrefix) {
			http.NotFound(w, r)
			return
		}
		w.Header().Set(peer.SumHeader, hex.EncodeToString(sum[:]))
		w.Write(payload)
	}))
	defer evil.Close()

	lnB, urlB := reserveURL(t)
	sb, err := New(Config{Logger: quietLogger(), Peer: fastPeerConfig(urlB, evil.URL)})
	if err != nil {
		t.Fatal(err)
	}
	startOn(t, sb, lnB)

	ring := peer.NewRing([]string{evil.URL, urlB}, peer.DefaultReplicas)
	im := imageOwnedBy(t, ring, evil.URL)
	resp := compressImageOn(t, urlB, im)
	if resp.Cached {
		t.Error("poisoned fetch reported cached; should have compressed locally")
	}
	if got := metricValue(t, scrapeURL(t, urlB), "cpackd_peer_errors_total"); got < 1 {
		t.Errorf("cpackd_peer_errors_total = %v, want >= 1", got)
	}

	// The locally compressed (correct) entry must be what is cached:
	// decompressing the response payload yields the requested program.
	raw, err := base64.StdEncoding.DecodeString(resp.CompressedB64)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := codepack.UnmarshalCompressed(im.Name, raw)
	if err != nil {
		t.Fatal(err)
	}
	if !compMatchesImage(comp, im) {
		t.Error("response payload does not decompress to the requested program")
	}
}

// TestPeerQuarantineVerifyAtUse: a replica PUT directly into the cache
// under the wrong digest survives in quarantine but is dropped the
// moment a request proves it false — it is never served.
func TestPeerQuarantineVerifyAtUse(t *testing.T) {
	_, sb, urlA, urlB := startPair(t, Config{}, Config{})
	ring := peer.NewRing([]string{urlA, urlB}, peer.DefaultReplicas)
	im := imageOwnedBy(t, ring, urlB)
	digest := codepack.ImageDigest(im)

	wrongIm, err := codepack.Assemble("wrong", strings.Replace(testAsm, "li   $s0, 50", "li   $s0, 77", 1))
	if err != nil {
		t.Fatal(err)
	}
	wrongComp, err := codepack.Compress(wrongIm)
	if err != nil {
		t.Fatal(err)
	}
	payload := wrongComp.Marshal()
	sum := sha256.Sum256(payload)

	req, err := http.NewRequest(http.MethodPut,
		urlB+peer.CachePathPrefix+digest, bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(peer.SumHeader, hex.EncodeToString(sum[:]))
	putResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, putResp.Body)
	putResp.Body.Close()
	if putResp.StatusCode != http.StatusNoContent {
		t.Fatalf("replica PUT returned %d, want 204", putResp.StatusCode)
	}
	if got := sb.cache.stats().Unverified; got != 1 {
		t.Fatalf("unverified entries = %d, want 1", got)
	}

	// Compressing the real program must not trust the lying replica.
	resp := compressImageOn(t, urlB, im)
	if resp.Cached {
		t.Error("wrong replica was served as a cache hit")
	}
	raw, err := base64.StdEncoding.DecodeString(resp.CompressedB64)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := codepack.UnmarshalCompressed(im.Name, raw)
	if err != nil {
		t.Fatal(err)
	}
	if !compMatchesImage(comp, im) {
		t.Error("response payload does not decompress to the requested program")
	}
}

// TestPeerAntiEntropy: entries persisted before clustering are offered
// to their ring owners on startup, warming the owner without a request.
func TestPeerAntiEntropy(t *testing.T) {
	dir := t.TempDir()
	lnA, urlA := reserveURL(t)
	lnB, urlB := reserveURL(t)
	ring := peer.NewRing([]string{urlA, urlB}, peer.DefaultReplicas)
	im := imageOwnedBy(t, ring, urlB)

	// First life: A standalone with a durable cache; the entry lands on
	// disk. (Any port will do; ring placement only matters later.)
	sa1, err := New(Config{Logger: quietLogger(), CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(sa1.Handler())
	if resp := compressImageOn(t, ts1.URL, im); resp.Cached {
		t.Fatal("first compression reported cached")
	}
	ts1.Close()
	sa1.Close()

	// Second life: A reboots into a two-member ring. Startup
	// anti-entropy offers the persisted digest to its owner B.
	sb, err := New(Config{Logger: quietLogger(), Peer: fastPeerConfig(urlB, urlA)})
	if err != nil {
		t.Fatal(err)
	}
	startOn(t, sb, lnB)
	sa2, err := New(Config{Logger: quietLogger(), CacheDir: dir, Peer: fastPeerConfig(urlA, urlB)})
	if err != nil {
		t.Fatal(err)
	}
	startOn(t, sa2, lnA)

	waitFor(t, func() bool { return sb.cache.stats().Entries == 1 })
	resp := compressImageOn(t, urlB, im)
	if !resp.Cached {
		t.Error("anti-entropy warmed entry was not served from cache")
	}
	if got := metricValue(t, scrapeURL(t, urlB), "cpackd_peer_hits_total"); got != 0 {
		t.Errorf("cpackd_peer_hits_total on B = %v, want 0 (entry arrived via anti-entropy)", got)
	}
}

// TestPeerConcurrentStress hammers both instances of a pair with
// overlapping programs — concurrent peer fetches, local compressions,
// replications and scrapes. Run under -race this is the load-bearing
// check on the warm tier's locking.
func TestPeerConcurrentStress(t *testing.T) {
	_, _, urlA, urlB := startPair(t, Config{}, Config{})

	images := make([]string, 6)
	for i := range images {
		im, err := codepack.Assemble(fmt.Sprintf("stress%d", i),
			strings.Replace(testAsm, "li   $s0, 50", fmt.Sprintf("li   $s0, %d", 200+i), 1))
		if err != nil {
			t.Fatal(err)
		}
		images[i] = base64.StdEncoding.EncodeToString(im.Marshal())
	}

	urls := []string{urlA, urlB}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				url := urls[(g+i)%2]
				if (g+i)%5 == 4 {
					if resp, err := http.Get(url + "/metrics"); err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
					continue
				}
				code := postCode(url+"/v1/compress",
					CompressRequest{ProgramRef: ProgramRef{ImageB64: images[(g*3+i)%len(images)]}})
				if code != http.StatusOK && code != http.StatusTooManyRequests {
					t.Errorf("compress on %s returned %d", url, code)
				}
			}
		}(g)
	}
	wg.Wait()
}

// scrapeURL is scrape for servers not wrapped in an httptest.Server.
func scrapeURL(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
