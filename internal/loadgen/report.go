package loadgen

import (
	"fmt"
	"io"
	"sort"
)

// ReportSchema identifies the per-run report wire format. Bump only on
// incompatible change; BENCH_*.json comparisons across PRs key on it.
const ReportSchema = "cpackbench/v1"

// TrajectorySchema identifies the BENCH_<n>.json wire format.
const TrajectorySchema = "codepack-bench/v1"

// RunConfig echoes the knobs a run was driven with.
type RunConfig struct {
	Target      string  `json:"target,omitempty"`
	QPS         float64 `json:"qps"`
	DurationSec float64 `json:"duration_s"`
	WarmupSec   float64 `json:"warmup_s"`
	Concurrency int     `json:"concurrency"`
}

// ServerDelta is the server-side /metrics movement across the run
// (after minus before, saturating at zero on counter reset).
type ServerDelta struct {
	CacheHits   uint64  `json:"cache_hits"`
	CacheMisses uint64  `json:"cache_misses"`
	HitRate     float64 `json:"hit_rate"`
	Shed        uint64  `json:"shed"`
	Coalesced   uint64  `json:"coalesced"`
	PeerHits    uint64  `json:"peer_hits"`
	PeerMisses  uint64  `json:"peer_misses"`
	// WarmRate is the fraction of cache lookups served without a fresh
	// compression: local hits plus peer-tier hits over all lookups. On a
	// standalone instance it equals HitRate; on a cluster it is the
	// replication tier's figure of merit (the churn scenario asserts a
	// floor on it).
	WarmRate float64 `json:"warm_rate"`
	// SLOWorstState is the worst per-objective alert state scraped after
	// the run (0 ok, 1 warn, 2 page) — a gauge, not a delta.
	SLOWorstState uint64 `json:"slo_worst_state"`
}

// Report is one scenario run's machine-readable result.
type Report struct {
	Schema   string    `json:"schema"`
	Scenario string    `json:"scenario"`
	Describe string    `json:"describe,omitempty"`
	Seed     int64     `json:"seed"`
	Config   RunConfig `json:"config"`

	// Sent counts every scheduled request (warmup included);
	// WarmupRequests of those landed in the warmup window. Completed and
	// TransportErrors partition the measured window, and ByOp breaks the
	// measured window down as op -> status code (or "error") -> count.
	Sent            int                          `json:"sent"`
	WarmupRequests  uint64                       `json:"warmup_requests"`
	Completed       uint64                       `json:"completed"`
	TransportErrors uint64                       `json:"transport_errors"`
	ByOp            map[string]map[string]uint64 `json:"by_op"`

	// ThroughputRPS is the achieved measured-window rate; compare it to
	// Config.QPS to see whether the server kept up with the open loop.
	ThroughputRPS float64      `json:"throughput_rps"`
	Latency       LatencyStats `json:"latency"`

	// Server carries the /metrics deltas (nil when scraping was
	// unavailable).
	Server *ServerDelta `json:"server,omitempty"`

	// Tenants breaks the measured window down per tenant label (nil on
	// single-tenant scenarios), and Fairness is Jain's index over
	// weight-normalized per-tenant goodput: 1.0 means every tenant got
	// goodput exactly proportional to its weight, 1/n means one tenant
	// took everything.
	Tenants  map[string]*TenantReport `json:"tenants,omitempty"`
	Fairness float64                  `json:"fairness,omitempty"`
}

// TenantReport is one tenant's measured-window slice.
type TenantReport struct {
	Weight     int               `json:"weight"`
	Requests   uint64            `json:"requests"`
	ByStatus   map[string]uint64 `json:"by_status"`
	GoodputRPS float64           `json:"goodput_rps"`
	Latency    LatencyStats      `json:"latency"`
}

// Status429 counts this tenant's measured-window rate-limit rejections.
func (t *TenantReport) Status429() uint64 { return t.ByStatus["429"] }

// Status5xx counts measured-window responses with 5xx statuses.
func (r *Report) Status5xx() uint64 {
	var n uint64
	for _, codes := range r.ByOp {
		for code, c := range codes {
			if len(code) == 3 && code[0] == '5' {
				n += c
			}
		}
	}
	return n
}

// WriteText renders the human-readable run summary.
func (r *Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "scenario %s (seed %d): %s\n", r.Scenario, r.Seed, r.Describe)
	fmt.Fprintf(w, "  open loop %.0f req/s for %.1fs (+%.1fs warmup), concurrency %d\n",
		r.Config.QPS, r.Config.DurationSec, r.Config.WarmupSec, r.Config.Concurrency)
	fmt.Fprintf(w, "  %d sent, %d completed, %d transport errors, achieved %.1f req/s\n",
		r.Sent, r.Completed, r.TransportErrors, r.ThroughputRPS)
	ops := make([]string, 0, len(r.ByOp))
	for op := range r.ByOp {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		fmt.Fprintf(w, "  %-12s", op)
		codes := make([]string, 0, len(r.ByOp[op]))
		for c := range r.ByOp[op] {
			codes = append(codes, c)
		}
		sort.Strings(codes)
		for _, c := range codes {
			fmt.Fprintf(w, "  %s×%d", c, r.ByOp[op][c])
		}
		fmt.Fprintln(w)
	}
	l := r.Latency
	fmt.Fprintf(w, "  latency (from intended send) p50 %.3fms  p90 %.3fms  p99 %.3fms  p99.9 %.3fms  max %.3fms\n",
		l.P50, l.P90, l.P99, l.P999, l.Max)
	if s := r.Server; s != nil {
		fmt.Fprintf(w, "  server: cache +%d hits / +%d misses (%.0f%% hit rate), %d shed, %d coalesced",
			s.CacheHits, s.CacheMisses, 100*s.HitRate, s.Shed, s.Coalesced)
		if s.PeerHits+s.PeerMisses > 0 {
			fmt.Fprintf(w, ", peer +%d hits / +%d misses (%.0f%% warm)",
				s.PeerHits, s.PeerMisses, 100*s.WarmRate)
		}
		fmt.Fprintln(w)
	}
	if len(r.Tenants) > 0 {
		names := make([]string, 0, len(r.Tenants))
		for n := range r.Tenants {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			tr := r.Tenants[n]
			fmt.Fprintf(w, "  tenant %-8s w=%d  %d reqs (%d limited)  goodput %.1f req/s  p50 %.3fms  p99 %.3fms\n",
				n, tr.Weight, tr.Requests, tr.Status429(), tr.GoodputRPS,
				tr.Latency.P50, tr.Latency.P99)
		}
		fmt.Fprintf(w, "  fairness (Jain, goodput/weight) %.3f\n", r.Fairness)
	}
}

// Trajectory is the BENCH_<n>.json document: one PR's harness runs plus
// the codec microbenchmark numbers, so every later PR can show its perf
// movement against the committed history instead of asserting it.
type Trajectory struct {
	Schema    string       `json:"schema"`
	PR        int          `json:"pr"`
	GoVersion string       `json:"go_version,omitempty"`
	Scenarios []*Report    `json:"scenarios"`
	Micro     []MicroBench `json:"microbench,omitempty"`
}
