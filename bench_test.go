// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section, plus the ablations called out in DESIGN.md and
// micro-benchmarks of the substrates.
//
// Each table benchmark regenerates the corresponding experiment and reports
// its headline numbers as custom metrics, so
//
//	go test -bench 'Table|Figure' -benchtime 1x
//
// reproduces the whole evaluation. CODEPACK_BENCH_INSTR overrides the
// per-simulation instruction budget (default 300000 to keep `go test
// -bench=.` quick; the EXPERIMENTS.md results use cmd/experiments with the
// full budget).
package codepack_test

import (
	"bytes"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"

	"codepack"
	"codepack/internal/core"
	"codepack/internal/cpu"
	"codepack/internal/decomp"
	"codepack/internal/harness"
	"codepack/internal/isa"
	"codepack/internal/mem"
	"codepack/internal/server"
	"codepack/internal/vm"
	"codepack/internal/workload"
)

func benchInstr() uint64 {
	if s := os.Getenv("CODEPACK_BENCH_INSTR"); s != "" {
		if v, err := strconv.ParseUint(s, 10, 64); err == nil && v > 0 {
			return v
		}
	}
	return 300_000
}

// one shared suite: benchmark generation and compression are cached.
var suite = harness.NewSuite(benchInstr())

func runTable(b *testing.B, f func() (*harness.Table, error), metrics ...string) {
	b.Helper()
	var tb *harness.Table
	var err error
	for i := 0; i < b.N; i++ {
		tb, err = f()
		if err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i+1 < len(metrics); i += 2 {
		if v, ok := tb.Value(metrics[i], metrics[i+1]); ok {
			// Metric units must not contain whitespace.
			unit := strings.ReplaceAll(metrics[i]+"/"+metrics[i+1], " ", "-")
			b.ReportMetric(v, unit)
		}
	}
}

// --- One benchmark per paper table/figure -------------------------------

func BenchmarkTable1Characterization(b *testing.B) {
	runTable(b, suite.Table1, "cc1", "imiss", "mpeg2enc", "imiss")
}

func BenchmarkTable3CompressionRatio(b *testing.B) {
	runTable(b, suite.Table3, "cc1", "ratio", "vortex", "ratio")
}

func BenchmarkTable4Composition(b *testing.B) {
	runTable(b, suite.Table4, "cc1", "rawbits", "cc1", "indices")
}

func BenchmarkTable5IPC(b *testing.B) {
	runTable(b, suite.Table5,
		"cc1", "4-issue/native", "cc1", "4-issue/codepack", "cc1", "4-issue/optimized")
}

func BenchmarkTable6IndexCache(b *testing.B) {
	runTable(b, suite.Table6, "64", "4", "256", "8")
}

func BenchmarkTable7IndexCacheSpeedup(b *testing.B) {
	runTable(b, suite.Table7, "cc1", "index cache", "cc1", "perfect")
}

func BenchmarkTable8DecodeWidth(b *testing.B) {
	runTable(b, suite.Table8, "cc1", "2 decoders", "cc1", "16 decoders")
}

func BenchmarkTable9Optimizations(b *testing.B) {
	runTable(b, suite.Table9, "cc1", "all", "vortex", "all")
}

func BenchmarkTable10CacheSize(b *testing.B) {
	runTable(b, suite.Table10, "cc1", "1KB/optimized", "cc1", "64KB/optimized")
}

func BenchmarkTable11BusWidth(b *testing.B) {
	runTable(b, suite.Table11, "cc1", "16/optimized", "cc1", "128/optimized")
}

func BenchmarkTable12MemLatency(b *testing.B) {
	runTable(b, suite.Table12, "cc1", "0.5x/optimized", "cc1", "8x/optimized")
}

func BenchmarkFigure2Timeline(b *testing.B) {
	runTable(b, func() (*harness.Table, error) { return harness.Figure2() },
		"native", "critical", "codepack", "critical", "optimized", "critical")
}

// --- Ablations (DESIGN.md section 5) -------------------------------------

// BenchmarkAblationPrefetch quantifies the 16-instruction output buffer:
// the optimized decompressor with and without prefetch reuse.
func BenchmarkAblationPrefetch(b *testing.B) {
	bench, err := suite.Bench("cc1")
	if err != nil {
		b.Fatal(err)
	}
	cfg := cpu.FourIssue()
	var with, without cpu.Result
	for i := 0; i < b.N; i++ {
		if with, err = suite.Run(bench, cfg, cpu.OptimizedModel()); err != nil {
			b.Fatal(err)
		}
		m := cpu.OptimizedModel()
		m.CodePack.DisablePrefetch = true
		if without, err = suite.Run(bench, cfg, m); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(with.IPC(), "ipc-prefetch")
	b.ReportMetric(without.IPC(), "ipc-noprefetch")
	b.ReportMetric(float64(without.Cycles)/float64(with.Cycles), "prefetch-speedup")
}

// BenchmarkAblationCriticalWordFirst quantifies the native-code advantage
// the paper highlights.
func BenchmarkAblationCriticalWordFirst(b *testing.B) {
	bench, err := suite.Bench("cc1")
	if err != nil {
		b.Fatal(err)
	}
	cfg := cpu.FourIssue()
	var with, without cpu.Result
	for i := 0; i < b.N; i++ {
		if with, err = suite.Run(bench, cfg, cpu.NativeModel()); err != nil {
			b.Fatal(err)
		}
		m := cpu.NativeModel()
		m.NoCriticalWordFirst = true
		if without, err = suite.Run(bench, cfg, m); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(without.Cycles)/float64(with.Cycles), "cwf-speedup")
}

// BenchmarkAblationIndexBurst isolates the entries-per-line axis of Table 6
// at a fixed 64-line index cache.
func BenchmarkAblationIndexBurst(b *testing.B) {
	bench, err := suite.Bench("cc1")
	if err != nil {
		b.Fatal(err)
	}
	cfg := cpu.FourIssue()
	var r1, r4 cpu.Result
	for i := 0; i < b.N; i++ {
		m := cpu.BaselineModel()
		m.CodePack.IndexCacheLines = 64
		m.CodePack.IndexEntriesPerLine = 1
		if r1, err = suite.Run(bench, cfg, m); err != nil {
			b.Fatal(err)
		}
		m.CodePack.IndexEntriesPerLine = 4
		if r4, err = suite.Run(bench, cfg, m); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r1.CodePack.IndexMissRate(), "idxmiss-1entry")
	b.ReportMetric(r4.CodePack.IndexMissRate(), "idxmiss-4entry")
}

// BenchmarkAblationDictGeometry varies the dictionary-construction policy:
// the low-half zero pin and the class-3 break-even exclusion.
func BenchmarkAblationDictGeometry(b *testing.B) {
	bench, err := suite.Bench("go")
	if err != nil {
		b.Fatal(err)
	}
	variants := []struct {
		name string
		opts core.Options
	}{
		{"default", core.Options{Low: core.BuildDictOptions{ForceZeroSlot0: true}}},
		{"nozero", core.Options{}},
		{"keep-singletons", core.Options{
			Low:  core.BuildDictOptions{ForceZeroSlot0: true, MinClass3Count: 1},
			High: core.BuildDictOptions{MinClass3Count: 1},
		}},
	}
	ratios := make([]float64, len(variants))
	for i := 0; i < b.N; i++ {
		for vi, v := range variants {
			c, err := core.CompressWordsWith("abl", bench.Image.TextBase,
				bench.Image.Text, v.opts)
			if err != nil {
				b.Fatal(err)
			}
			ratios[vi] = c.Stats().Ratio()
		}
	}
	for vi, v := range variants {
		b.ReportMetric(ratios[vi], "ratio-"+v.name)
	}
}

// --- Substrate micro-benchmarks ------------------------------------------

func BenchmarkCompressThroughput(b *testing.B) {
	bench, err := suite.Bench("go")
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(bench.Image.TextBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Compress(bench.Image); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompressThroughput(b *testing.B) {
	bench, err := suite.Bench("go")
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(bench.Image.TextBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Comp.Decompress(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeBlock(b *testing.B) {
	bench, err := suite.Bench("go")
	if err != nil {
		b.Fatal(err)
	}
	var out [core.BlockInstrs]isa.Word
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bench.Comp.DecodeBlock(i%bench.Comp.NumBlocks(), &out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeThroughput races the two decoder implementations on the
// same compressed image: "reference" is the bit-at-a-time tag walker,
// "fast" the table-driven batch decoder that serves production decodes.
// The MB/s ratio between the two sub-benchmarks is the headline number
// for the fast decoder (BENCH.md tracks it across PRs).
func BenchmarkDecodeThroughput(b *testing.B) {
	bench, err := suite.Bench("go")
	if err != nil {
		b.Fatal(err)
	}
	run := func(mode core.DecodeMode) func(*testing.B) {
		return func(b *testing.B) {
			prev := core.SetDecodeMode(mode)
			defer core.SetDecodeMode(prev)
			b.SetBytes(int64(bench.Image.TextBytes()))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := bench.Comp.Decompress(); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("reference", run(core.DecodeReference))
	b.Run("fast", run(core.DecodeFast))
}

// BenchmarkDecodePooled measures the serve path's steady state: decoding
// whole programs into sync.Pool-recycled buffers via AppendDecompress.
// "cold" allocates a fresh destination per decode (what Decompress
// costs); "pooled" must report 0 allocs/op once the pool is warm.
func BenchmarkDecodePooled(b *testing.B) {
	bench, err := suite.Bench("go")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("cold", func(b *testing.B) {
		b.SetBytes(int64(bench.Image.TextBytes()))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := bench.Comp.Decompress(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pooled", func(b *testing.B) {
		var pool sync.Pool
		pool.New = func() any { return new([]isa.Word) }
		// Warm one buffer so the measured region never sees pool.New.
		bp := pool.Get().(*[]isa.Word)
		text, err := bench.Comp.AppendDecompress((*bp)[:0])
		if err != nil {
			b.Fatal(err)
		}
		*bp = text
		pool.Put(bp)
		b.SetBytes(int64(bench.Image.TextBytes()))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bp := pool.Get().(*[]isa.Word)
			text, err := bench.Comp.AppendDecompress((*bp)[:0])
			if err != nil {
				b.Fatal(err)
			}
			*bp = text
			pool.Put(bp)
		}
	})
}

func BenchmarkVMExecute(b *testing.B) {
	bench, err := suite.Bench("pegwit")
	if err != nil {
		b.Fatal(err)
	}
	m := vm.New(bench.Image)
	var rec vm.Rec
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m.Halted() {
			m = vm.New(bench.Image)
		}
		if err := m.Step(&rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulatorNative(b *testing.B) {
	bench, err := suite.Bench("pegwit")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := cpu.Simulate(bench.Image, cpu.FourIssue(), cpu.NativeModel(), 100_000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Instructions), "instructions")
	}
}

func BenchmarkSimulatorCodePack(b *testing.B) {
	bench, err := suite.Bench("pegwit")
	if err != nil {
		b.Fatal(err)
	}
	model := cpu.OptimizedModel()
	model.Comp = bench.Comp
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cpu.Simulate(bench.Image, cpu.FourIssue(), model, 100_000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWorkloadGenerate(b *testing.B) {
	p := workload.Pegwit()
	for i := 0; i < b.N; i++ {
		if _, err := workload.Generate(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAssemble(b *testing.B) {
	src, err := workload.Source(workload.Pegwit())
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codepack.Assemble("bench", src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompEngineFetch(b *testing.B) {
	bench, err := suite.Bench("go")
	if err != nil {
		b.Fatal(err)
	}
	bus, err := mem.NewBus(cpu.FourIssue().Mem)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := decomp.NewCodePack(bench.Comp, bus, decomp.OptimizedCodePack())
	if err != nil {
		b.Fatal(err)
	}
	nLines := bench.Image.TextBytes() / decomp.LineBytes
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := bench.Image.TextBase + uint32(i%nLines)*decomp.LineBytes
		eng.FetchLine(uint64(i), addr, i%8)
	}
}

// BenchmarkRelatedWorkRatios compares the three compression schemes of the
// paper's section 2 on the go benchmark.
func BenchmarkRelatedWorkRatios(b *testing.B) {
	var tb *harness.Table
	var err error
	for i := 0; i < b.N; i++ {
		if tb, err = suite.RelatedWork(); err != nil {
			b.Fatal(err)
		}
	}
	for _, scheme := range []string{"codepack", "ccrp", "lefurgy"} {
		if v, ok := tb.Value("go", scheme); ok {
			b.ReportMetric(v, "ratio-"+scheme)
		}
	}
}

// BenchmarkExtensionSoftwareDecomp quantifies the paper's future-work
// option of software-managed decompression.
func BenchmarkExtensionSoftwareDecomp(b *testing.B) {
	bench, err := suite.Bench("mpeg2enc")
	if err != nil {
		b.Fatal(err)
	}
	var hw, sw cpu.Result
	for i := 0; i < b.N; i++ {
		if hw, err = suite.Run(bench, cpu.FourIssue(), cpu.NativeModel()); err != nil {
			b.Fatal(err)
		}
		if sw, err = suite.Run(bench, cpu.FourIssue(), cpu.SoftwareModel()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(sw.IPC(), "ipc-software")
	b.ReportMetric(float64(hw.Cycles)/float64(sw.Cycles), "software-vs-native")
}

// BenchmarkAblationIndexAssociativity compares the paper's fully
// associative index cache against cheaper set-associative hardware.
func BenchmarkAblationIndexAssociativity(b *testing.B) {
	bench, err := suite.Bench("cc1")
	if err != nil {
		b.Fatal(err)
	}
	cfg := cpu.FourIssue()
	miss := map[int]float64{}
	for i := 0; i < b.N; i++ {
		for _, assoc := range []int{0, 4, 1} {
			m := cpu.OptimizedModel()
			m.CodePack.IndexCacheAssoc = assoc
			r, err := suite.Run(bench, cfg, m)
			if err != nil {
				b.Fatal(err)
			}
			miss[assoc] = r.CodePack.IndexMissRate()
		}
	}
	b.ReportMetric(miss[0], "idxmiss-fullassoc")
	b.ReportMetric(miss[4], "idxmiss-4way")
	b.ReportMetric(miss[1], "idxmiss-directmapped")
}

// BenchmarkServerCompress measures POST /v1/compress latency through the
// full HTTP handler stack (routing, instrumentation, worker pool, codec):
// "cold" disables the content-addressed cache so every request pays the
// full compression cost, "hit" serves a warmed cache entry, so the split
// is the price of compression versus the price of the service plumbing.
func BenchmarkServerCompress(b *testing.B) {
	body := []byte(`{"benchmark":"pegwit"}`)
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	post := func(b *testing.B, ts *httptest.Server) {
		b.Helper()
		resp, err := http.Post(ts.URL+"/v1/compress", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
	run := func(cacheEntries int) func(*testing.B) {
		return func(b *testing.B) {
			s, err := server.New(server.Config{CacheEntries: cacheEntries, Logger: quiet})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			ts := httptest.NewServer(s.Handler())
			defer ts.Close()
			post(b, ts) // warm the suite's generated image (and, if enabled, the cache)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				post(b, ts)
			}
		}
	}
	b.Run("cold", run(-1))
	b.Run("hit", run(server.DefaultCacheEntries))
}
