package server

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"net/http"
	"regexp"
	"strconv"
	"sync"
	"testing"
	"time"

	"codepack"
)

// TestFlightGroupCoalesces: followers arriving while a fill is in
// flight ride the leader's result instead of running their own.
func TestFlightGroupCoalesces(t *testing.T) {
	var g flightGroup
	im, err := codepack.Assemble("flight", testAsm)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := codepack.Compress(im)
	if err != nil {
		t.Fatal(err)
	}

	entered := make(chan struct{})
	release := make(chan struct{})
	fills := 0
	go func() {
		g.do(context.Background(), "k", func(context.Context) (*codepack.Compressed, bool, *httpError) {
			close(entered)
			<-release
			fills++
			return comp, false, nil
		})
	}()
	<-entered // the leader is inside its fill

	const followers = 4
	var wg sync.WaitGroup
	arrived := make(chan struct{}, followers)
	results := make([]bool, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			arrived <- struct{}{}
			got, cached, follower, herr := g.do(context.Background(), "k",
				func(context.Context) (*codepack.Compressed, bool, *httpError) {
					t.Error("follower ran its own fill")
					return nil, false, nil
				})
			if herr != nil {
				t.Errorf("follower %d: %v", i, herr)
			}
			if got != comp {
				t.Errorf("follower %d got a different result", i)
			}
			if !cached {
				t.Errorf("follower %d not reported cached", i)
			}
			results[i] = follower
		}(i)
	}
	// Each follower signals just before calling do; give them a settle
	// window to park on the flight before the leader is released. (The
	// leader is still blocked in its fill, so the key cannot vanish.)
	for i := 0; i < followers; i++ {
		<-arrived
	}
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()
	for i, f := range results {
		if !f {
			t.Errorf("follower %d not reported as follower", i)
		}
	}
	if fills != 1 {
		t.Fatalf("fill ran %d times, want 1", fills)
	}

	// The key is released: the next do is a fresh leader.
	_, _, follower, _ := g.do(context.Background(), "k",
		func(context.Context) (*codepack.Compressed, bool, *httpError) { return comp, true, nil })
	if follower {
		t.Error("post-flight call still reported as follower")
	}
}

// TestFlightGroupFollowerCancel: a follower whose context ends while
// waiting gets a 503 instead of hanging on the leader.
func TestFlightGroupFollowerCancel(t *testing.T) {
	var g flightGroup
	entered := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	go func() {
		g.do(context.Background(), "k", func(context.Context) (*codepack.Compressed, bool, *httpError) {
			close(entered)
			<-release
			return nil, false, nil
		})
	}()
	<-entered

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, follower, herr := g.do(ctx, "k",
		func(context.Context) (*codepack.Compressed, bool, *httpError) { return nil, false, nil })
	if !follower {
		t.Error("cancelled waiter not reported as follower")
	}
	if herr == nil || herr.code != http.StatusServiceUnavailable {
		t.Errorf("cancelled waiter got %v, want 503", herr)
	}
}

// TestCompressCoalescingAccounting: under a burst of identical
// compress requests exactly one compression runs; every other request
// is a cache hit or a coalesced follower.
func TestCompressCoalescingAccounting(t *testing.T) {
	s, ts := newTestServer(t, Config{LightWorkers: 8, LightQueue: 16})

	// Hold every compress job at the gate until all eight are on
	// workers, then release them together so the misses overlap.
	const n = 8
	var once sync.Once
	started := make(chan struct{}, n)
	release := make(chan struct{})
	s.testHook = func(op string) {
		if op == "compress" {
			started <- struct{}{}
			<-release
		}
	}
	t.Cleanup(func() { once.Do(func() { close(release) }) })

	im, err := codepack.Assemble("burst", testAsm)
	if err != nil {
		t.Fatal(err)
	}
	req := CompressRequest{ProgramRef: ProgramRef{
		ImageB64: base64.StdEncoding.EncodeToString(im.Marshal())}}

	type result struct {
		code   int
		cached bool
	}
	results := make(chan result, n)
	for i := 0; i < n; i++ {
		go func() {
			resp := postCode2(ts.URL+"/v1/compress", req)
			results <- resp
		}()
	}
	for i := 0; i < n; i++ {
		<-started
	}
	once.Do(func() { close(release) })

	uncached := 0
	for i := 0; i < n; i++ {
		r := <-results
		if r.code != http.StatusOK {
			t.Fatalf("request returned %d, want 200", r.code)
		}
		if !r.cached {
			uncached++
		}
	}
	if uncached != 1 {
		t.Errorf("%d requests reported cached=false, want exactly 1", uncached)
	}
	hits := scrapeMetric(t, ts, "cpackd_cache_hits_total")
	coalesced := scrapeMetric(t, ts, "cpackd_compress_coalesced_total")
	if hits+coalesced != n-1 {
		t.Errorf("hits (%v) + coalesced (%v) = %v, want %d", hits, coalesced, hits+coalesced, n-1)
	}
}

// postCode2 posts and decodes just enough of a compress response for
// goroutine use: status code plus the cached flag.
func postCode2(url string, body any) (r struct {
	code   int
	cached bool
}) {
	b, err := json.Marshal(body)
	if err != nil {
		r.code = -1
		return r
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		r.code = -1
		return r
	}
	defer resp.Body.Close()
	r.code = resp.StatusCode
	var cr CompressResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err == nil {
		r.cached = cr.Cached
	}
	return r
}

// TestRetryAfterSecs: the shed hint scales with the tenant's own
// backlog against its fair share of workers and clamps at 30. With a
// single backlogged tenant the share is the whole pool, matching the
// old global backlog-per-worker formula.
func TestRetryAfterSecs(t *testing.T) {
	cases := []struct {
		workers, depth int
		want           int
	}{
		{1, 0, 1},
		{1, 3, 4},
		{4, 8, 3},
		{2, 1000, 30},
	}
	for _, c := range cases {
		p := &pool{workers: c.workers, queues: map[string]*tenantQueue{}}
		if c.depth > 0 {
			q := &tenantQueue{id: "anon", weight: 1, jobs: make([]*job, c.depth)}
			p.queues["anon"] = q
		}
		if got := p.retryAfterFor("anon"); got != c.want {
			t.Errorf("retryAfterFor(workers=%d, depth=%d) = %d, want %d",
				c.workers, c.depth, got, c.want)
		}
	}
}

// TestRetryAfterDerived: a shed request's Retry-After reflects the live
// queue depth, not a constant.
func TestRetryAfterDerived(t *testing.T) {
	s, ts := newTestServer(t, Config{HeavyWorkers: 1, HeavyQueue: 3, BenchMaxInstr: 10_000})

	block := make(chan struct{})
	var once sync.Once
	unblock := func() { once.Do(func() { close(block) }) }
	t.Cleanup(unblock)

	started := make(chan struct{}, 8)
	s.testHook = func(op string) {
		if op == "simulate" {
			started <- struct{}{}
			<-block
		}
	}

	simBody := SimulateRequest{ProgramRef: ProgramRef{Asm: testAsm}, MaxInstr: 1000}
	codes := make(chan int, 4)
	for i := 0; i < 4; i++ {
		go func() { codes <- postCode(ts.URL+"/v1/simulate", simBody) }()
	}
	<-started // one on the worker...
	waitFor(t, func() bool { return s.heavy.depth() == 3 })

	// Queue depth 3, one worker: the hint must be 1 + 3/1 = 4 seconds.
	resp := postJSON(t, ts.URL+"/v1/simulate", simBody)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated pool returned %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "4" {
		t.Errorf("Retry-After = %q, want \"4\"", got)
	}

	unblock()
	for i := 0; i < 4; i++ {
		if code := <-codes; code != http.StatusOK {
			t.Errorf("queued request finished with %d, want 200", code)
		}
	}
}

// TestRetryAfterHeaderNumeric guards the contract that Retry-After is
// always a positive integer (RFC 9110 delta-seconds).
func TestRetryAfterHeaderNumeric(t *testing.T) {
	re := regexp.MustCompile(`^[0-9]+$`)
	for _, depth := range []int{0, 1, 100, 10_000} {
		p := &pool{workers: 3, queues: map[string]*tenantQueue{}}
		if depth > 0 {
			p.queues["anon"] = &tenantQueue{id: "anon", weight: 1, jobs: make([]*job, depth)}
		}
		v := strconv.Itoa(p.retryAfterFor("anon"))
		if !re.MatchString(v) || p.retryAfterFor("anon") < 1 {
			t.Errorf("depth %d: Retry-After %q not a positive integer", depth, v)
		}
	}
}
