package tenant

import (
	"sync"
	"sync/atomic"
	"time"
)

// Registry is the live tenant table: an atomically-swappable Snapshot
// (identity, limits, cluster key) plus per-tenant limiter state that
// persists across reloads. The request path only touches the atomic
// pointer and the per-tenant mutex, never a registry-wide lock.
type Registry struct {
	snap atomic.Pointer[Snapshot]

	mu     sync.Mutex
	states map[string]*limiterState // keyed by tenant ID, survives Reload
}

// NewRegistry returns a registry serving snap; a nil snap means open
// mode (OpenSnapshot).
func NewRegistry(snap *Snapshot) *Registry {
	if snap == nil {
		snap = OpenSnapshot()
	}
	r := &Registry{states: map[string]*limiterState{}}
	r.snap.Store(snap)
	return r
}

// Snapshot returns the current config snapshot.
func (r *Registry) Snapshot() *Snapshot { return r.snap.Load() }

// Reload swaps in a new snapshot. Limiter state keyed by tenant ID is
// kept: tenants present in both configs carry their debt across the
// reload, removed tenants' state is dropped so the map stays bounded by
// the config.
func (r *Registry) Reload(snap *Snapshot) {
	r.snap.Store(snap)
	r.mu.Lock()
	for id := range r.states {
		if _, ok := snap.ByID[id]; !ok {
			delete(r.states, id)
		}
	}
	r.mu.Unlock()
}

// ClusterKey returns the current peer-signing key (nil in open mode).
// Safe to call concurrently with Reload; callers must not mutate it.
func (r *Registry) ClusterKey() []byte { return r.snap.Load().ClusterKey }

// Lookup resolves a presented API key to a tenant. An empty key maps to
// the anon pseudo-tenant when enabled. When no keys are declared at all
// (open mode), presented credentials are ignored rather than rejected,
// so pre-tenancy clients keep working against an unconfigured server.
// The second result is false when the caller must be rejected with 401.
func (r *Registry) Lookup(key string) (*Tenant, bool) {
	snap := r.snap.Load()
	if key == "" || len(snap.ByKey) == 0 {
		return snap.Anon, snap.Anon != nil
	}
	t, ok := snap.ByKey[key]
	return t, ok
}

// state returns (creating if needed) the limiter state for id.
func (r *Registry) state(id string) *limiterState {
	r.mu.Lock()
	ls := r.states[id]
	if ls == nil {
		ls = &limiterState{}
		r.states[id] = ls
	}
	r.mu.Unlock()
	return ls
}

// Admit runs the rate-limit and byte-quota checks for t at time now,
// consuming one token when admitted. The returned Decision carries the
// denial reason and this tenant's own Retry-After.
func (r *Registry) Admit(t *Tenant, now time.Time) Decision {
	if t.RateRPS <= 0 && t.QuotaBytes <= 0 {
		return Decision{OK: true}
	}
	ls := r.state(t.ID)
	if d := ls.quotaCheck(t, now); !d.OK {
		return d
	}
	return ls.admit(t, now)
}

// AccountBytes charges n request+response bytes against id's rolling
// quota window.
func (r *Registry) AccountBytes(id string, n int64, now time.Time) {
	if n <= 0 {
		return
	}
	snap := r.snap.Load()
	t := snap.ByID[id]
	if t == nil || t.QuotaBytes <= 0 {
		return // no quota configured; skip the ring entirely
	}
	r.state(id).chargeBytes(n, now)
}

// WindowBytes reports id's current rolling-window byte usage, for
// /debug/vars introspection.
func (r *Registry) WindowBytes(id string, now time.Time) int64 {
	r.mu.Lock()
	ls := r.states[id]
	r.mu.Unlock()
	if ls == nil {
		return 0
	}
	return ls.windowBytes(now)
}
