// Quickstart: assemble a small SS32 program, compress it with CodePack,
// verify the round trip, and compare native vs compressed execution on the
// paper's 4-issue machine.
package main

import (
	"fmt"
	"log"

	"codepack"
)

const src = `
# Sum the first 100 squares, then checksum a small table.
main:
	li   $s0, 100          # n
	li   $s1, 0            # sum
loop:
	mult $s0, $s0
	mflo $t0
	addu $s1, $s1, $t0
	addiu $s0, $s0, -1
	bgtz $s0, loop

	la   $t1, table        # checksum the table
	li   $t2, 8
	li   $s2, 0
ck:
	lw   $t3, 0($t1)
	xor  $s2, $s2, $t3
	addiu $t1, $t1, 4
	addiu $t2, $t2, -1
	bgtz $t2, ck

	move $a0, $s1          # print the sum
	li   $v0, 1
	syscall
	li   $a0, '\n'
	li   $v0, 11
	syscall
	li   $v0, 10
	syscall

	.data
table:
	.word 0x1234, 0x5678, 0x9abc, 0xdef0, 17, 42, 1999, 405
`

func main() {
	im, err := codepack.Assemble("quickstart", src)
	if err != nil {
		log.Fatal(err)
	}

	// Run it architecturally first.
	m := codepack.NewMachine(im)
	if _, err := m.Run(0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("program output: %s", m.Output())

	// Compress the text section.
	comp, err := codepack.Compress(im)
	if err != nil {
		log.Fatal(err)
	}
	st := comp.Stats()
	fmt.Printf("text: %d bytes -> %d bytes compressed (ratio %.1f%%)\n",
		st.OriginalBytes, st.CompressedBytes(), 100*st.Ratio())
	fmt.Printf("composition: %v\n", st.Composition())
	if st.Ratio() > 1 {
		fmt.Println("note: on a program this small the fixed overheads (dictionaries,")
		fmt.Println("index table) dominate; real programs compress to ~60% (see Table 3).")
	}

	// Verify losslessness.
	words, err := comp.Decompress()
	if err != nil {
		log.Fatal(err)
	}
	for i, w := range words {
		if w != im.Text[i] {
			log.Fatalf("round trip mismatch at %d", i)
		}
	}
	fmt.Println("round trip: OK")

	// Compare fetch models on the 4-issue machine.
	for _, fm := range []struct {
		name  string
		model codepack.FetchModel
	}{
		{"native   ", codepack.NativeModel()},
		{"codepack ", codepack.BaselineModel()},
		{"optimized", codepack.OptimizedModel()},
	} {
		r, err := codepack.Simulate(im, codepack.FourIssue(), fm.model, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %6d cycles, IPC %.2f\n", fm.name, r.Cycles, r.IPC())
	}
}
