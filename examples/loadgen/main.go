// Loadgen drives a running cpackd with the "mixed" workload scenario and
// prints status-code and latency distributions plus the server-side cache
// movement:
//
//	cpackd &
//	go run ./examples/loadgen -addr http://localhost:8321 -qps 200 -duration 10s
//
// This program is now a thin shim over internal/loadgen, kept for
// backward compatibility; prefer cmd/cpackbench, which adds the full
// scenario catalogue, JSON output and the BENCH_*.json trajectory mode.
//
// Behaviour change versus the original standalone tool: the old loop was
// closed (each worker fired its next request only after the previous one
// returned) and computed percentiles by sorting observed latencies and
// indexing with int(p*n) — which both under-reported queueing delay under
// server stalls (coordinated omission: a slow response silently delayed
// every request behind it without charging the delay to anyone) and read
// one element past the intended rank at p=1.0. The shim drives an open
// loop on a fixed arrival schedule, measures every latency from the
// request's *intended* send time, and reports HDR-histogram quantiles, so
// p50/p90/p99 now reflect what a schedule-faithful client would actually
// experience. Expect higher — that is, honest — tail numbers under load.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"codepack/internal/loadgen"
)

func main() {
	addr := flag.String("addr", "http://localhost:8321", "cpackd base URL")
	workers := flag.Int("c", 4, "max in-flight requests")
	requests := flag.Int("n", 100, "requests per worker (with -qps, sets the run duration)")
	qps := flag.Float64("qps", 100, "open-loop arrival rate (requests/s)")
	simulate := flag.Bool("simulate", true, "include heavy simulate requests in the mix")
	seed := flag.Int64("seed", 1, "scenario stream seed")
	flag.Parse()

	scenarioName := "mixed"
	if !*simulate {
		scenarioName = "uniform" // the compress-only blend
	}
	scenario, _ := loadgen.ByName(scenarioName)

	total := *workers * *requests
	duration := time.Duration(math.Ceil(float64(total)/(*qps))) * time.Second
	client := loadgen.NewHTTPClient(*addr)
	rep, err := loadgen.Run(context.Background(), loadgen.Options{
		Scenario:    scenario,
		Executor:    client,
		Metrics:     client,
		Seed:        *seed,
		QPS:         *qps,
		Duration:    duration,
		Concurrency: *workers,
		Target:      *addr,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	rep.WriteText(os.Stdout)
	fmt.Println("note: see cmd/cpackbench for all scenarios and JSON output")
}
