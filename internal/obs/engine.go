package obs

import (
	"log/slog"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// State is an objective's alert state.
type State int

const (
	StateOK State = iota
	StateWarn
	StatePage
)

func (s State) String() string {
	switch s {
	case StateWarn:
		return "warn"
	case StatePage:
		return "page"
	}
	return "ok"
}

// EngineConfig parameterizes an Engine; the zero value works.
type EngineConfig struct {
	// EvalInterval paces the alert-state evaluation loop
	// (0 = 10s).
	EvalInterval time.Duration
	// BucketWidth is the error-budget ring resolution (0 = 10s).
	BucketWidth time.Duration
	// FastShort/FastLong are the paging burn windows (0 = 5m/1h);
	// SlowShort/SlowLong the warning ones (0 = 30m/6h). Tests shrink
	// them; production keeps the defaults.
	FastShort, FastLong time.Duration
	SlowShort, SlowLong time.Duration
	// Now overrides the clock (tests).
	Now func() time.Time
	// Logger receives alert transitions (nil = slog.Default()).
	Logger *slog.Logger
}

func (c EngineConfig) withDefaults() EngineConfig {
	if c.EvalInterval <= 0 {
		c.EvalInterval = 10 * time.Second
	}
	if c.BucketWidth <= 0 {
		c.BucketWidth = 10 * time.Second
	}
	if c.FastShort <= 0 {
		c.FastShort = 5 * time.Minute
	}
	if c.FastLong <= 0 {
		c.FastLong = time.Hour
	}
	if c.SlowShort <= 0 {
		c.SlowShort = 30 * time.Minute
	}
	if c.SlowLong <= 0 {
		c.SlowLong = 6 * time.Hour
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// Alert is one state transition, delivered to the OnAlert hook.
type Alert struct {
	SLO      string
	From, To State
	// BurnFastShort/BurnFastLong are the paging-window burn rates at
	// the moment of the transition.
	BurnFastShort, BurnFastLong float64
	// BudgetRemaining is the fraction of the error budget left over the
	// objective's accounting window (negative when overspent).
	BudgetRemaining float64
}

// objState is one tracked objective: its declaration, its budget ring
// and its alert state machine.
type objState struct {
	obj  Objective
	ring *budgetRing

	mu          sync.Mutex
	state       State
	lastChange  time.Time
	transitions [3]uint64 // entries into ok/warn/page
}

// Engine tracks every declared objective: Record feeds request
// outcomes in, the evaluation loop advances the alert state machines,
// and Status/metrics snapshots read the result. Reload swaps the
// objective set atomically (the SIGHUP path), carrying ring and alert
// state across for objectives whose shape is unchanged.
type Engine struct {
	cfg EngineConfig

	objs atomic.Pointer[[]*objState]

	onAlert atomic.Pointer[func(Alert)]

	startOnce sync.Once
	stopOnce  sync.Once
	stopCh    chan struct{}
	done      chan struct{}

	source atomic.Pointer[string]
}

// NewEngine builds an Engine over the snapshot's objectives. Call
// Start to run the evaluation loop and Stop to end it.
func NewEngine(snap *Snapshot, cfg EngineConfig) *Engine {
	e := &Engine{
		cfg:    cfg.withDefaults(),
		stopCh: make(chan struct{}),
		done:   make(chan struct{}),
	}
	empty := []*objState{}
	e.objs.Store(&empty)
	e.Reload(snap)
	return e
}

// SetOnAlert installs the state-transition hook (the server logs,
// counts and triggers profile captures from it). Safe to call before
// or after Start.
func (e *Engine) SetOnAlert(f func(Alert)) {
	if f == nil {
		e.onAlert.Store(nil)
		return
	}
	e.onAlert.Store(&f)
}

// Source names where the active config came from.
func (e *Engine) Source() string {
	if s := e.source.Load(); s != nil {
		return *s
	}
	return ""
}

// Reload swaps in a new objective set. Objectives whose shape (name,
// scope, target, latency, window) is unchanged keep their ring history
// and alert state, so a SIGHUP that only tweaks burn thresholds never
// blanks a budget mid-incident.
func (e *Engine) Reload(snap *Snapshot) {
	if snap == nil {
		snap = &Snapshot{Source: "empty"}
	}
	old := *e.objs.Load()
	byName := make(map[string]*objState, len(old))
	for _, os := range old {
		byName[os.obj.Name] = os
	}
	next := make([]*objState, 0, len(snap.Objectives))
	for _, o := range snap.Objectives {
		if o.Window <= 0 {
			o.Window = DefaultWindow
		}
		if o.FastBurn <= 0 {
			o.FastBurn = DefaultFastBurn
		}
		if o.SlowBurn <= 0 {
			o.SlowBurn = DefaultSlowBurn
		}
		if prev, ok := byName[o.Name]; ok && prev.obj.sameShape(o) {
			prev.obj = o // carry ring + alert state, adopt new thresholds
			next = append(next, prev)
			continue
		}
		span := e.cfg.SlowLong
		if o.Window > span {
			span = o.Window
		}
		next = append(next, &objState{
			obj:  o,
			ring: newBudgetRing(e.cfg.BucketWidth, span),
		})
	}
	e.objs.Store(&next)
	src := snap.Source
	e.source.Store(&src)
}

// Record feeds one finished public request into every objective whose
// scope matches. It is on the serving hot path: a linear scan over a
// handful of objectives and one bucket increment each.
func (e *Engine) Record(endpoint, tenantID string, code int, dur time.Duration) {
	if e == nil {
		return
	}
	objs := *e.objs.Load()
	if len(objs) == 0 {
		return
	}
	now := e.cfg.Now()
	for _, os := range objs {
		o := &os.obj
		if o.Endpoint != "" && o.Endpoint != endpoint {
			continue
		}
		if o.Tenant != "" && o.Tenant != tenantID {
			continue
		}
		bad := code >= 500 || (o.Latency > 0 && dur > o.Latency)
		os.ring.add(now, bad)
	}
}

// burnRate converts a window's good/bad counts into a burn rate: the
// observed bad fraction divided by the error-budget fraction. 1.0
// spends the budget exactly over the window; an empty window burns 0.
func burnRate(good, bad uint64, budgetFrac float64) float64 {
	total := good + bad
	if total == 0 || budgetFrac <= 0 {
		return 0
	}
	return (float64(bad) / float64(total)) / budgetFrac
}

// Evaluate runs one alert-state pass over every objective, firing the
// OnAlert hook on transitions. The loop calls it every EvalInterval;
// tests call it directly.
func (e *Engine) Evaluate() {
	now := e.cfg.Now()
	for _, os := range *e.objs.Load() {
		o := &os.obj
		budget := o.budgetFraction()
		fsGood, fsBad := os.ring.sum(now, e.cfg.FastShort)
		flGood, flBad := os.ring.sum(now, e.cfg.FastLong)
		ssGood, ssBad := os.ring.sum(now, e.cfg.SlowShort)
		slGood, slBad := os.ring.sum(now, e.cfg.SlowLong)
		burnFS := burnRate(fsGood, fsBad, budget)
		burnFL := burnRate(flGood, flBad, budget)
		burnSS := burnRate(ssGood, ssBad, budget)
		burnSL := burnRate(slGood, slBad, budget)

		next := StateOK
		switch {
		case burnFS >= o.FastBurn && burnFL >= o.FastBurn:
			next = StatePage
		case burnSS >= o.SlowBurn && burnSL >= o.SlowBurn:
			next = StateWarn
		}

		os.mu.Lock()
		prev := os.state
		if next != prev {
			os.state = next
			os.lastChange = now
			os.transitions[next]++
		}
		os.mu.Unlock()
		if next == prev {
			continue
		}
		alert := Alert{
			SLO:             o.Name,
			From:            prev,
			To:              next,
			BurnFastShort:   burnFS,
			BurnFastLong:    burnFL,
			BudgetRemaining: budgetRemaining(os, now),
		}
		e.cfg.Logger.Info("slo state change",
			"slo", o.Name, "from", prev.String(), "to", next.String(),
			"burn_fast_short", burnFS, "burn_fast_long", burnFL,
			"budget_remaining", alert.BudgetRemaining)
		if f := e.onAlert.Load(); f != nil {
			(*f)(alert)
		}
	}
}

// budgetRemaining is the fraction of the objective's error budget left
// over its accounting window: 1 with no spend, 0 exactly exhausted,
// negative when overspent.
func budgetRemaining(os *objState, now time.Time) float64 {
	good, bad := os.ring.sum(now, os.obj.Window)
	total := good + bad
	if total == 0 {
		return 1
	}
	budget := float64(total) * os.obj.budgetFraction()
	if budget <= 0 {
		return 0
	}
	return 1 - float64(bad)/budget
}

// Start launches the evaluation loop; it is a no-op on repeat calls.
func (e *Engine) Start() {
	if e == nil {
		return
	}
	e.startOnce.Do(func() {
		go func() {
			defer close(e.done)
			t := time.NewTicker(e.cfg.EvalInterval)
			defer t.Stop()
			for {
				select {
				case <-e.stopCh:
					return
				case <-t.C:
					e.Evaluate()
				}
			}
		}()
	})
}

// Stop ends the evaluation loop. Safe to call even if Start never ran.
func (e *Engine) Stop() {
	if e == nil {
		return
	}
	e.stopOnce.Do(func() {
		close(e.stopCh)
		e.startOnce.Do(func() { close(e.done) }) // never started: release waiters
		<-e.done
	})
}

// WindowBurn is one burn window's live reading.
type WindowBurn struct {
	Window string  `json:"window"`
	Burn   float64 `json:"burn_rate"`
	Good   uint64  `json:"good"`
	Bad    uint64  `json:"bad"`
}

// ObjectiveStatus is one objective's full live status — the /debug/slo
// and /internal/v1/health shape.
type ObjectiveStatus struct {
	Name            string       `json:"name"`
	Endpoint        string       `json:"endpoint,omitempty"`
	Tenant          string       `json:"tenant,omitempty"`
	Target          float64      `json:"target"`
	LatencyMS       float64      `json:"latency_ms,omitempty"` // 0 = availability objective
	Window          string       `json:"window"`
	State           string       `json:"state"`
	BudgetRemaining float64      `json:"budget_remaining"`
	Good            uint64       `json:"good"` // over the budget window
	Bad             uint64       `json:"bad"`
	Burn            []WindowBurn `json:"burn"`
	FastBurn        float64      `json:"fast_burn_threshold"`
	SlowBurn        float64      `json:"slow_burn_threshold"`
	LastChange      time.Time    `json:"last_change"`
	Pages           uint64       `json:"pages_total"`
	Warns           uint64       `json:"warns_total"`
}

// fmtWindow renders a burn window compactly ("5m", "1h", "90s").
func fmtWindow(d time.Duration) string {
	s := d.String()
	for {
		switch {
		case strings.HasSuffix(s, "m0s"):
			s = strings.TrimSuffix(s, "0s")
		case strings.HasSuffix(s, "h0m"):
			s = strings.TrimSuffix(s, "0m")
		default:
			return s
		}
	}
}

// Status snapshots every objective, with burn rates computed live over
// the engine's four windows.
func (e *Engine) Status() []ObjectiveStatus {
	if e == nil {
		return nil
	}
	now := e.cfg.Now()
	objs := *e.objs.Load()
	out := make([]ObjectiveStatus, 0, len(objs))
	for _, os := range objs {
		o := &os.obj
		st := ObjectiveStatus{
			Name:      o.Name,
			Endpoint:  o.Endpoint,
			Tenant:    o.Tenant,
			Target:    o.Target,
			LatencyMS: float64(o.Latency) / float64(time.Millisecond),
			Window:    fmtWindow(o.Window),
			FastBurn:  o.FastBurn,
			SlowBurn:  o.SlowBurn,
		}
		for _, w := range []time.Duration{e.cfg.FastShort, e.cfg.FastLong, e.cfg.SlowShort, e.cfg.SlowLong} {
			good, bad := os.ring.sum(now, w)
			st.Burn = append(st.Burn, WindowBurn{
				Window: fmtWindow(w),
				Burn:   burnRate(good, bad, o.budgetFraction()),
				Good:   good,
				Bad:    bad,
			})
		}
		st.Good, st.Bad = os.ring.sum(now, o.Window)
		st.BudgetRemaining = budgetRemaining(os, now)
		os.mu.Lock()
		st.State = os.state.String()
		st.LastChange = os.lastChange
		st.Warns = os.transitions[StateWarn]
		st.Pages = os.transitions[StatePage]
		os.mu.Unlock()
		out = append(out, st)
	}
	return out
}

// WorstState returns the most severe current alert state across every
// objective ("ok" with none declared).
func (e *Engine) WorstState() State {
	if e == nil {
		return StateOK
	}
	worst := StateOK
	for _, os := range *e.objs.Load() {
		os.mu.Lock()
		if os.state > worst {
			worst = os.state
		}
		os.mu.Unlock()
	}
	return worst
}
