package sim

import (
	"fmt"
	"reflect"
	"testing"
	"time"
)

// The three pinned fault schedules below (partition, crash/restart,
// duplication) are the acceptance gate run by `make sim-smoke` under
// -race: after each schedule the cluster must converge to one ring view
// and serve every previously compressed digest warm — zero
// recompressions — with the verification invariants intact.

func nodeNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://n%d:1", i)
	}
	return out
}

func digests(tag string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s-%03d", tag, i)
	}
	return out
}

// settleAndCheck converges the world and asserts the warm-serve and
// verification properties.
func settleAndCheck(t *testing.T, w *World) {
	t.Helper()
	if err := w.Settle(120); err != nil {
		t.Fatal(err)
	}
	recomp, err := w.CheckWarm()
	if err != nil {
		t.Fatal(err)
	}
	if recomp != 0 {
		t.Errorf("post-convergence GETs paid %d recompressions, want 0", recomp)
	}
	st := w.Stats()
	if st.UnverifiedServed != 0 || st.WrongServed != 0 {
		t.Errorf("verification invariants violated: %+v", st)
	}
}

// TestSimPartitionConverges: five nodes split 2/3, both sides keep
// serving and declare the other side dead; after the heal the ring
// re-merges by incarnation refutation and every digest compressed on
// either side — before or during the partition — is served warm.
func TestSimPartitionConverges(t *testing.T) {
	nodes := nodeNames(5)
	w := New(1, Config{Nodes: nodes, DropProb: 0.05})
	w.Boot()
	w.Run(8 * time.Second)
	if !w.Converged() {
		t.Fatal("cluster did not form before the fault schedule")
	}

	for i, d := range digests("pre", 12) {
		w.Compress(nodes[i%len(nodes)], d)
	}
	w.Run(2 * time.Second)

	w.Partition(nodes[:2], nodes[2:])
	w.Run(15 * time.Second) // past DeadAfter: both sides shrink their rings
	for _, url := range nodes[:2] {
		if len(w.Live(url)) != 2 {
			t.Errorf("minority side %s sees ring %v, want the 2-node island", url, w.Live(url))
		}
	}
	for _, url := range nodes[2:] {
		if len(w.Live(url)) != 3 {
			t.Errorf("majority side %s sees ring %v, want the 3-node island", url, w.Live(url))
		}
	}
	// Both islands keep taking writes against their shrunken rings.
	for i, d := range digests("minority", 6) {
		w.Compress(nodes[i%2], d)
	}
	for i, d := range digests("majority", 6) {
		w.Compress(nodes[2+i%3], d)
	}
	w.Run(2 * time.Second)

	settleAndCheck(t, w)
	if got := w.Live(nodes[0]); len(got) != 5 {
		t.Errorf("healed ring = %v, want all 5 members", got)
	}
	// Per-node observability: a schedule this busy must show every node
	// gossiping, and the compressed digests must have moved — someone
	// replicated, someone quarantined.
	var repls, quars int
	for _, url := range nodes {
		ns := w.NodeStats(url)
		if ns.HeartbeatsSent == 0 {
			t.Errorf("node %s sent no heartbeats", url)
		}
		if ns.AEPasses == 0 {
			t.Errorf("node %s ran no anti-entropy passes", url)
		}
		repls += ns.ReplicationsSent
		quars += ns.Quarantines
	}
	if repls == 0 || quars == 0 {
		t.Errorf("node stats show no replication traffic: sent=%d quarantined=%d", repls, quars)
	}
}

// TestSimCrashRestartConverges: one node bounces fast (suspect window),
// another stays down long enough to be declared dead and rejoins from
// its tombstone; durable entries survive both, nothing is recompressed.
func TestSimCrashRestartConverges(t *testing.T) {
	nodes := nodeNames(4)
	w := New(2, Config{Nodes: nodes, DropProb: 0.05})
	w.Boot()
	w.Run(8 * time.Second)

	for i, d := range digests("seed", 10) {
		w.Compress(nodes[i%len(nodes)], d)
	}
	w.Run(2 * time.Second)

	// Fast bounce: down for one suspect window, never declared dead.
	w.Crash(nodes[1])
	w.Run(4 * time.Second)
	w.Restart(nodes[1])
	w.Run(4 * time.Second)

	// Slow bounce: the fleet declares the node dead, rebalances, keeps
	// compressing; the node then rejoins over its own tombstone.
	w.Crash(nodes[2])
	w.Run(15 * time.Second)
	for _, url := range []string{nodes[0], nodes[1], nodes[3]} {
		if got := w.Live(url); len(got) != 3 {
			t.Errorf("%s still sees %v after the dead timeout", url, got)
		}
	}
	for i, d := range digests("while-down", 6) {
		w.Compress(nodes[[3]int{0, 1, 3}[i%3]], d)
	}
	w.Run(2 * time.Second)
	w.Restart(nodes[2])

	settleAndCheck(t, w)
}

// TestSimDuplicationConverges: heavy duplication and moderate loss on
// every gossip round trip — merges and replication puts must be
// idempotent for the ring to stay consistent.
func TestSimDuplicationConverges(t *testing.T) {
	nodes := nodeNames(4)
	w := New(3, Config{Nodes: nodes, DropProb: 0.15, DupProb: 0.4})
	w.Boot()
	w.Run(10 * time.Second)
	for round := 0; round < 4; round++ {
		for i, d := range digests(fmt.Sprintf("dup%d", round), 5) {
			w.Compress(nodes[(round+i)%len(nodes)], d)
		}
		w.Run(3 * time.Second)
	}
	if w.Stats().Duplicated == 0 {
		t.Fatal("duplication schedule delivered no duplicates; faults not exercised")
	}
	settleAndCheck(t, w)
}

// TestSimDynamicJoin: a third node boots into a running two-node
// cluster knowing only one seed; the ring rebalances and the joiner
// serves previously compressed digests warm.
func TestSimDynamicJoin(t *testing.T) {
	nodes := nodeNames(3)
	w := New(4, Config{
		Nodes: nodes,
		Seeds: map[string][]string{
			nodes[0]: {nodes[1]},
			nodes[1]: {nodes[0]},
			nodes[2]: {nodes[0]}, // the joiner knows a single seed
		},
	})
	w.nodes[nodes[0]].start()
	w.nodes[nodes[1]].start()
	w.Run(5 * time.Second)
	for i, d := range digests("two", 10) {
		w.Compress(nodes[i%2], d)
	}
	w.Run(2 * time.Second)

	w.Restart(nodes[2]) // first boot: joins via its one seed
	settleAndCheck(t, w)
	if got := w.Live(nodes[2]); len(got) != 3 {
		t.Errorf("joiner's ring = %v, want 3 members", got)
	}
}

// TestSimImpostorNeverServesUnverified: corrupt payloads pushed into
// quarantine ahead of the real ones can cost recompressions but can
// never be served — the verification invariants hold under settle and
// a full warm check.
func TestSimImpostorNeverServesUnverified(t *testing.T) {
	nodes := nodeNames(3)
	w := New(5, Config{Nodes: nodes})
	w.Boot()
	w.Run(6 * time.Second)

	ds := digests("imp", 8)
	for i, d := range ds {
		// Poison every node first, then compress for real somewhere.
		for _, url := range nodes {
			w.InjectCorrupt(url, d)
		}
		w.Compress(nodes[i%len(nodes)], d)
	}
	w.Run(2 * time.Second)

	if err := w.Settle(120); err != nil {
		t.Fatal(err)
	}
	if _, err := w.CheckWarm(); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.UnverifiedServed != 0 || st.WrongServed != 0 {
		t.Errorf("impostor schedule violated verification invariants: %+v", st)
	}
}

// TestSimDeterminism: the same seed replays the same world — stats and
// final views are bit-identical, so any failing schedule is a repro.
func TestSimDeterminism(t *testing.T) {
	run := func() (Stats, [][]string) {
		nodes := nodeNames(4)
		w := New(42, Config{Nodes: nodes, DropProb: 0.2, DupProb: 0.2})
		w.Boot()
		w.Run(5 * time.Second)
		for i, d := range digests("det", 8) {
			w.Compress(nodes[i%len(nodes)], d)
		}
		w.Partition(nodes[:1], nodes[1:])
		w.Run(12 * time.Second)
		w.Crash(nodes[3])
		w.Run(3 * time.Second)
		w.Restart(nodes[3])
		if err := w.Settle(120); err != nil {
			t.Fatal(err)
		}
		views := make([][]string, len(nodes))
		for i, url := range nodes {
			views[i] = w.Live(url)
		}
		return w.Stats(), views
	}
	s1, v1 := run()
	s2, v2 := run()
	if s1 != s2 {
		t.Errorf("stats diverged across identical seeds:\n%+v\n%+v", s1, s2)
	}
	if !reflect.DeepEqual(v1, v2) {
		t.Errorf("final views diverged across identical seeds:\n%v\n%v", v1, v2)
	}
}
