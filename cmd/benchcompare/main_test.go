package main

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"codepack/internal/loadgen"
)

// writeBaseline commits a synthetic trajectory with the given
// name -> ns/op microbenchmarks as BENCH_<n>.json in dir.
func writeBaseline(t *testing.T, dir string, n int, micro map[string]float64) string {
	t.Helper()
	tr := loadgen.Trajectory{Schema: loadgen.TrajectorySchema, PR: n}
	for name, ns := range micro {
		tr.Micro = append(tr.Micro, loadgen.MicroBench{Name: name, Iterations: 10, NsPerOp: ns})
	}
	raw, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "BENCH_"+itoa(n)+".json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for ; n > 0; n /= 10 {
		b = append([]byte{byte('0' + n%10)}, b...)
	}
	return string(b)
}

// writeBenchOutput captures a fake `go test -bench -benchmem` output.
func writeBenchOutput(t *testing.T, dir string, lines ...string) string {
	t.Helper()
	path := filepath.Join(dir, "bench.out")
	content := "goos: linux\npkg: codepack\n" + strings.Join(lines, "\n") + "\nPASS\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runCompare(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var out, errw strings.Builder
	err := run(args, &out, &errw)
	return out.String() + errw.String(), err
}

func TestComparePassesWhenStable(t *testing.T) {
	dir := t.TempDir()
	base := writeBaseline(t, dir, 8, map[string]float64{
		"BenchmarkDecodeThroughput/reference": 5_000_000,
		"BenchmarkDecodeThroughput/fast":      2_000_000,
		"BenchmarkDecodePooled/pooled":        2_100_000,
	})
	in := writeBenchOutput(t, dir,
		"BenchmarkDecodeThroughput/reference-8   100   5100000 ns/op   57.0 MB/s",
		"BenchmarkDecodeThroughput/fast-8        300   2050000 ns/op  139.0 MB/s",
		"BenchmarkDecodePooled/pooled-8          300   2150000 ns/op  123.0 MB/s  0 B/op  0 allocs/op",
	)
	out, err := runCompare(t, "-against", base, "-input", in)
	if err != nil {
		t.Fatalf("stable run failed: %v\n%s", err, out)
	}
	if strings.Contains(out, "REGRESSED") {
		t.Fatalf("stable run reported a regression:\n%s", out)
	}
}

func TestCompareFailsPastThreshold(t *testing.T) {
	dir := t.TempDir()
	base := writeBaseline(t, dir, 8, map[string]float64{
		"BenchmarkDecodeThroughput/reference": 5_000_000,
		"BenchmarkDecodeThroughput/fast":      2_000_000,
	})
	// fast got 1.5x slower while the anchor held: a real regression.
	in := writeBenchOutput(t, dir,
		"BenchmarkDecodeThroughput/reference-8   100   5000000 ns/op",
		"BenchmarkDecodeThroughput/fast-8        200   3000000 ns/op",
	)
	out, err := runCompare(t, "-against", base, "-input", in)
	if !errors.Is(err, errRegression) {
		t.Fatalf("err = %v, want errRegression\n%s", err, out)
	}
	if !strings.Contains(out, "REGRESSED") {
		t.Fatalf("report missing REGRESSED verdict:\n%s", out)
	}
}

// TestCompareAnchorNormalizes is the cross-machine case: everything got
// uniformly 2x slower (weaker CI host). The anchor must absorb the
// slowdown so no benchmark trips the threshold.
func TestCompareAnchorNormalizes(t *testing.T) {
	dir := t.TempDir()
	base := writeBaseline(t, dir, 8, map[string]float64{
		"BenchmarkDecodeThroughput/reference": 5_000_000,
		"BenchmarkDecodeThroughput/fast":      2_000_000,
		"BenchmarkCompressThroughput":         9_000_000,
	})
	in := writeBenchOutput(t, dir,
		"BenchmarkDecodeThroughput/reference-2   50   10000000 ns/op",
		"BenchmarkDecodeThroughput/fast-2       100    4000000 ns/op",
		"BenchmarkCompressThroughput-2           30   18000000 ns/op",
	)
	out, err := runCompare(t, "-against", base, "-input", in)
	if err != nil {
		t.Fatalf("uniform slowdown tripped the threshold: %v\n%s", err, out)
	}
	if !strings.Contains(out, "machine-speed ratio 2.000") {
		t.Fatalf("anchor ratio not 2.0:\n%s", out)
	}
	// And conversely: a regression hidden inside a machine slowdown is
	// still caught after normalization (fast is 4x raw = 2x normalized).
	in2 := writeBenchOutput(t, dir,
		"BenchmarkDecodeThroughput/reference-2   50   10000000 ns/op",
		"BenchmarkDecodeThroughput/fast-2        50    8000000 ns/op",
	)
	out, err = runCompare(t, "-against", base, "-input", in2)
	if !errors.Is(err, errRegression) {
		t.Fatalf("normalized regression not caught: %v\n%s", err, out)
	}
}

func TestCompareDefaultBaselineIsHighest(t *testing.T) {
	dir := t.TempDir()
	writeBaseline(t, dir, 7, map[string]float64{"BenchmarkDecodeThroughput/fast": 1})
	writeBaseline(t, dir, 9, map[string]float64{"BenchmarkDecodeThroughput/fast": 2_000_000})
	in := writeBenchOutput(t, dir,
		"BenchmarkDecodeThroughput/fast-8   300   2050000 ns/op")
	out, err := runCompare(t, "-dir", dir, "-input", in)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "BENCH_9.json") {
		t.Fatalf("did not pick the highest-numbered baseline:\n%s", out)
	}
}

func TestCompareUsageErrors(t *testing.T) {
	if _, err := runCompare(t, "-threshold", "0.9"); err == nil {
		t.Error("threshold <= 1 accepted")
	}
	dir := t.TempDir()
	in := writeBenchOutput(t, dir, "BenchmarkX-8 1 100 ns/op")
	if _, err := runCompare(t, "-dir", dir, "-input", in); err == nil {
		t.Error("missing baseline accepted")
	}
	// A baseline without a microbench section is an operational error.
	tr := loadgen.Trajectory{Schema: loadgen.TrajectorySchema, PR: 1}
	raw, _ := json.Marshal(tr)
	empty := filepath.Join(dir, "BENCH_1.json")
	if err := os.WriteFile(empty, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := runCompare(t, "-against", empty, "-input", in); err == nil {
		t.Error("baseline without microbenchmarks accepted")
	}
}

// TestCompareDisjointSetsPass: a baseline that predates a benchmark must
// not fail the run (new benchmarks have no history to regress against).
func TestCompareDisjointSetsPass(t *testing.T) {
	dir := t.TempDir()
	base := writeBaseline(t, dir, 8, map[string]float64{"BenchmarkOld": 1000})
	in := writeBenchOutput(t, dir, "BenchmarkNew-8  100  2000 ns/op")
	out, err := runCompare(t, "-against", base, "-input", in)
	if err != nil {
		t.Fatalf("disjoint sets failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "no benchmarks shared") {
		t.Fatalf("missing disjoint notice:\n%s", out)
	}
}
