package server

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"codepack"
	"codepack/internal/peer"
	"codepack/internal/tenant"
)

// signedRegistry builds a tenant registry whose only non-default config
// is the cluster signing key.
func signedRegistry(key string) *tenant.Registry {
	snap := tenant.OpenSnapshot()
	snap.ClusterKey = []byte(key)
	return tenant.NewRegistry(snap)
}

// doReq performs an arbitrary request and returns the status code.
func doReq(t *testing.T, method, url string, header http.Header) int {
	t.Helper()
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, vs := range header {
		req.Header[k] = vs
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestPeerSignedClusterWarmHit: with a cluster key configured on both
// members, node-to-node traffic is HMAC-signed end to end — the warm
// tier still serves cross-instance hits — while unsigned or mis-signed
// requests against /internal/v1/* are rejected with 401.
func TestPeerSignedClusterWarmHit(t *testing.T) {
	const clusterKey = "itest-cluster-key-6b1f9d2c"
	_, _, urlA, urlB := startPair(t,
		Config{Tenants: signedRegistry(clusterKey)},
		Config{Tenants: signedRegistry(clusterKey)})
	ring := peer.NewRing([]string{urlA, urlB}, peer.DefaultReplicas)
	im := imageOwnedBy(t, ring, urlA)

	// The public endpoints stay open (anon enabled): the warm-tier flow
	// works exactly as in the unsigned cluster.
	first := compressImageOn(t, urlA, im)
	if first.Cached {
		t.Fatal("first compression on the owner reported cached")
	}
	second := compressImageOn(t, urlB, im)
	if !second.Cached {
		t.Error("peer-served compression did not report cached: signed fetch failed")
	}
	if got := metricValue(t, scrapeURL(t, urlB), "cpackd_peer_hits_total"); got != 1 {
		t.Errorf("cpackd_peer_hits_total on B = %v, want 1", got)
	}

	// Unsigned internal fetch: rejected.
	path := peer.CachePathPrefix + first.Digest
	if code := doReq(t, http.MethodGet, urlA+path, nil); code != http.StatusUnauthorized {
		t.Errorf("unsigned internal GET returned %d, want 401", code)
	}
	// Signed with the wrong key: rejected.
	bad := http.Header{}
	bad.Set(tenant.InternalHeader,
		tenant.SignInternal([]byte("some-other-key-1234"), http.MethodGet, path, nil, time.Now()))
	if code := doReq(t, http.MethodGet, urlA+path, bad); code != http.StatusUnauthorized {
		t.Errorf("mis-signed internal GET returned %d, want 401", code)
	}
	// Signed with the right key: served.
	good := http.Header{}
	good.Set(tenant.InternalHeader,
		tenant.SignInternal([]byte(clusterKey), http.MethodGet, path, nil, time.Now()))
	if code := doReq(t, http.MethodGet, urlA+path, good); code != http.StatusOK {
		t.Errorf("correctly signed internal GET returned %d, want 200", code)
	}
	// The two rejections are visible on the auth-failure counter.
	if got := metricValue(t, scrapeURL(t, urlA), `cpackd_auth_failures_total{kind="internal"}`); got < 2 {
		t.Errorf("internal auth failures on A = %v, want >= 2", got)
	}

	// Unsigned membership gossip is rejected too: the internal surface
	// is closed cluster-wide, not just the cache paths.
	resp, err := http.Post(urlA+peer.HeartbeatPath, "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("unsigned membership POST returned %d, want 401", resp.StatusCode)
	}
}

// TestTenantAdmissionReloadStress hammers authenticated endpoints from
// many goroutines while the tenant config is concurrently hot-reloaded
// (the SIGHUP path) with changing limits. Run under -race this proves
// admission, quota accounting and reload share no unsynchronized state;
// in any mode it proves requests never draw a 5xx or a dropped tenant.
func TestTenantAdmissionReloadStress(t *testing.T) {
	mkCfg := func(rate int) string {
		return fmt.Sprintf(
			"tenant alpha key=alpha-key-11112222 weight=3 rate=%d\n"+
				"tenant beta key=beta-key-33334444 weight=1 quota=1MiB\n"+
				"anon weight=1\n", rate)
	}
	snap, err := tenant.ParseConfig(mkCfg(50), "stress")
	if err != nil {
		t.Fatal(err)
	}
	reg := tenant.NewRegistry(snap)
	_, ts := newTestServer(t, Config{LightWorkers: 4, Tenants: reg})

	im, err := codepack.Assemble("stress", testAsm)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(CompressRequest{ProgramRef: ProgramRef{
		ImageB64: base64.StdEncoding.EncodeToString(im.Marshal())}})
	if err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var reloadWG sync.WaitGroup
	// Reloader: swap configs as fast as possible, alternating limits.
	reloadWG.Add(1)
	go func() {
		defer reloadWG.Done()
		for i := 0; !stop.Load(); i++ {
			s, err := tenant.ParseConfig(mkCfg(50+i%7), "stress-reload")
			if err != nil {
				t.Error(err)
				return
			}
			reg.Reload(s)
		}
	}()

	keys := []string{"alpha-key-11112222", "beta-key-33334444", ""}
	var bad atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/compress",
					bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				req.Header.Set("Content-Type", "application/json")
				if key := keys[(g+i)%len(keys)]; key != "" {
					req.Header.Set("Authorization", "Bearer "+key)
				}
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					bad.Add(1)
					continue
				}
				resp.Body.Close()
				// 200 (admitted) and 429 (limited) are both legal under
				// the racing limits; anything else is a wiring bug.
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
					t.Errorf("got status %d", resp.StatusCode)
				}
			}
		}(g)
	}
	// Workers finish first, then the reloader is released; a watchdog
	// bounds the whole run on a wedged box.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("stress test wedged")
	}
	stop.Store(true)
	reloadWG.Wait()
	if n := bad.Load(); n > 0 {
		t.Errorf("%d transport errors under stress", n)
	}
}
