// Package tenant is the multi-tenant isolation tier for cpackd: API-key
// authentication for the public endpoints, HMAC signing for node-to-node
// traffic, per-tenant token-bucket rate limits and rolling byte quotas,
// and the weights the server's fair-admission pools schedule by.
//
// The package is deliberately dependency-free and side-effect-free: it
// owns identity, limits and signing, while enforcement (401/429 mapping,
// queue scheduling, metric labels) stays in internal/server. A Registry
// holds an immutable Snapshot of the parsed config behind an atomic
// pointer so lookups on the request path never take a lock, and limiter
// state lives outside the snapshot keyed by tenant ID so a SIGHUP reload
// changes limits without forgiving accumulated debt.
package tenant

import (
	"context"
	"fmt"
	"regexp"
	"strings"
)

// Well-known tenant IDs. They are reserved in the config grammar so a
// config file cannot shadow them with a different meaning.
const (
	// AnonID labels unauthenticated callers. A config enables anonymous
	// access by declaring an `anon` line with its limits; without one,
	// requests that present no (or an unknown) key are rejected.
	AnonID = "anon"
	// InternalID labels authenticated node-to-node traffic on
	// /internal/v1/*. It is implicit: peer requests are admitted by the
	// cluster signing key, not an API key, and bypass tenant quotas
	// (the peer tier has its own backpressure).
	InternalID = "internal"
)

// Tenant is one authenticated principal: its key, its scheduling weight
// and its limits. Tenants are immutable once parsed; a reload swaps the
// whole Snapshot.
type Tenant struct {
	// ID is the stable tenant label used on metrics, spans and logs.
	// IDs are lowercase [a-z0-9_-], at most 32 bytes, so label
	// cardinality on /metrics stays bounded by the config file.
	ID string
	// Key is the bearer API key presented in Authorization headers.
	// Empty for the anon pseudo-tenant.
	Key string
	// Weight is the fair-share scheduling weight (>= 1). A tenant with
	// weight 3 drains three queue slots for every one a weight-1 tenant
	// drains when both are backlogged.
	Weight int
	// RateRPS is the token-bucket refill rate in requests/second;
	// 0 means unlimited.
	RateRPS float64
	// Burst is the token-bucket capacity; defaults to max(1, RateRPS)
	// when a rate is set.
	Burst float64
	// QuotaBytes bounds request+response bytes over the rolling
	// QuotaWindow; 0 means unlimited.
	QuotaBytes int64
}

// Anon reports whether this is the anonymous pseudo-tenant.
func (t *Tenant) Anon() bool { return t.ID == AnonID }

var idRe = regexp.MustCompile(`^[a-z0-9][a-z0-9_-]{0,31}$`)

// ValidID reports whether s is a legal tenant ID: lowercase
// alphanumeric plus -_ and at most 32 bytes, so IDs are safe as metric
// label values and log fields without escaping.
func ValidID(s string) bool { return idRe.MatchString(s) }

// validateKey enforces the API-key shape: 8..128 printable ASCII bytes
// with no whitespace, so keys survive header transport and config-file
// round-trips unmodified.
func validateKey(key string) error {
	if len(key) < 8 || len(key) > 128 {
		return fmt.Errorf("key must be 8..128 bytes, got %d", len(key))
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if c <= ' ' || c > '~' {
			return fmt.Errorf("key contains non-printable or whitespace byte at offset %d", i)
		}
	}
	return nil
}

// ctxKey is the context key type for the request's resolved tenant.
type ctxKey struct{}

// NewContext returns ctx carrying t.
func NewContext(ctx context.Context, t *Tenant) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the tenant attached to ctx, or nil.
func FromContext(ctx context.Context) *Tenant {
	t, _ := ctx.Value(ctxKey{}).(*Tenant)
	return t
}

// LabelFromContext returns the bounded-cardinality tenant label for
// metrics and logs: the tenant's ID, or "anon" when no tenant is
// attached (open mode, internal callers that skipped auth).
func LabelFromContext(ctx context.Context) string {
	if t := FromContext(ctx); t != nil {
		return t.ID
	}
	return AnonID
}

// redact returns a loggable form of an API key: first four bytes then
// an ellipsis. Never log full keys.
func redact(key string) string {
	if len(key) <= 4 {
		return strings.Repeat("*", len(key))
	}
	return key[:4] + "…"
}
