// Embedded design-space study: the paper's motivating scenario. A
// cost-sensitive SoC must pick a memory bus width and tolerate slow memory;
// this example sweeps both axes on the 1-issue embedded core and reports
// where CodePack pays for itself — reproducing the conclusions of the
// paper's Tables 11 and 12 on the low-end machine.
package main

import (
	"fmt"
	"log"

	"codepack"
)

func main() {
	prof, _ := codepack.Benchmark("cc1") // the paper's worst-case workload
	prof.TargetDynamic = 600_000
	im, err := codepack.GenerateBenchmark(prof)
	if err != nil {
		log.Fatal(err)
	}
	comp, err := codepack.Compress(im)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload %s: %dKB text, compresses to %.1f%%\n\n",
		prof.Name, im.TextBytes()/1024, 100*comp.Stats().Ratio())

	run := func(cfg codepack.ArchConfig, model codepack.FetchModel) codepack.Result {
		model.Comp = comp
		r, err := codepack.Simulate(im, cfg, model, 500_000)
		if err != nil {
			log.Fatal(err)
		}
		return r
	}

	fmt.Println("bus-width sweep (1-issue embedded core, 10-cycle memory):")
	fmt.Println("bus     native-IPC  codepack  optimized   verdict")
	for _, bits := range []int{16, 32, 64, 128} {
		cfg := codepack.OneIssue()
		cfg.Mem.WidthBytes = bits / 8
		nat := run(cfg, codepack.NativeModel())
		cp := run(cfg, codepack.BaselineModel())
		opt := run(cfg, codepack.OptimizedModel())
		verdict := "native wins"
		if opt.SpeedupOver(nat) >= 1.0 {
			verdict = "CodePack wins (and saves memory)"
		}
		fmt.Printf("%3d-bit   %.3f      %.2fx     %.2fx     %s\n",
			bits, nat.IPC(), cp.SpeedupOver(nat), opt.SpeedupOver(nat), verdict)
	}

	fmt.Println("\nmemory-latency sweep (1-issue, 64-bit bus):")
	fmt.Println("latency  native-IPC  codepack  optimized  software")
	for _, mult := range []int{1, 2, 4, 8} {
		cfg := codepack.OneIssue()
		cfg.Mem.FirstLatency *= mult
		cfg.Mem.BeatLatency *= mult
		nat := run(cfg, codepack.NativeModel())
		cp := run(cfg, codepack.BaselineModel())
		opt := run(cfg, codepack.OptimizedModel())
		sw := run(cfg, codepack.SoftwareModel())
		fmt.Printf("%dx       %.3f      %.2fx     %.2fx     %.2fx\n",
			mult, nat.IPC(), cp.SpeedupOver(nat), opt.SpeedupOver(nat), sw.SpeedupOver(nat))
	}

	fmt.Println("\nconclusion: on narrow buses or slow memory the optimized")
	fmt.Println("decompressor beats native code while shrinking the program by ~40%.")
}
