package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"
)

const testAsm = `
main:
	li   $s0, 50
	li   $s1, 0
loop:
	addu $s1, $s1, $s0
	addiu $s0, $s0, -1
	bgtz $s0, loop
	li   $v0, 10
	syscall
`

// TestFlagErrors exercises run()'s own error paths in-process.
func TestFlagErrors(t *testing.T) {
	if err := run([]string{"-nonsense"}); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{"-log-level", "loud"}); err == nil {
		t.Error("bad log level accepted")
	}
	if err := run([]string{"-addr", "not:a:listen:addr"}); err == nil {
		t.Error("bad listen address accepted")
	}
}

// daemon is one cpackd subprocess re-executed from the test binary.
type daemon struct {
	cmd      *exec.Cmd
	url      string
	stderr   *bytes.Buffer
	debugCh  chan string   // debug listener address, when -debug-addr was given
	scanDone chan struct{} // closed when the stderr scanner goroutine exits
}

var (
	listenRE      = regexp.MustCompile(`msg="cpackd listening" addr=([^\s]+)`)
	debugListenRE = regexp.MustCompile(`msg="cpackd debug listening" addr=([^\s]+)`)
)

// startDaemon re-executes the test binary as cpackd and waits for its
// listening log line to learn the kernel-assigned port.
func startDaemon(t *testing.T, args ...string) *daemon {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, append([]string{"-test.run=TestKillRestartRecoversCache", "--"}, args...)...)
	cmd.Env = append(os.Environ(), "CPACKD_TEST_MAIN=1")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd, stderr: &bytes.Buffer{},
		debugCh: make(chan string, 1), scanDone: make(chan struct{})}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})

	addrCh := make(chan string, 1)
	go func() {
		defer close(d.scanDone)
		sc := bufio.NewScanner(io.TeeReader(stderr, d.stderr))
		for sc.Scan() {
			if m := listenRE.FindStringSubmatch(sc.Text()); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
			if m := debugListenRE.FindStringSubmatch(sc.Text()); m != nil {
				select {
				case d.debugCh <- m[1]:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		d.url = "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatalf("cpackd did not report a listening address; stderr:\n%s", d.stderr.String())
	}
	return d
}

type compressReply struct {
	Digest        string `json:"digest"`
	Cached        bool   `json:"cached"`
	CompressedB64 string `json:"compressed_b64"`
}

func (d *daemon) compress(t *testing.T) compressReply {
	t.Helper()
	body, err := json.Marshal(map[string]string{"asm": testAsm})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(d.url+"/v1/compress", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("compress: %v; stderr:\n%s", err, d.stderr.String())
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compress status %d: %s", resp.StatusCode, raw)
	}
	var out compressReply
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	return out
}

func (d *daemon) metrics(t *testing.T) string {
	t.Helper()
	resp, err := http.Get(d.url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return string(raw)
}

// TestKillRestartRecoversCache is the acceptance-criteria test: a real
// cpackd process is populated over HTTP, killed with SIGKILL (no drain,
// no flush), its log is given a torn tail as if the kill had landed
// mid-write, and a second process on the same -cache-dir must serve the
// same program from cache with zero recompression, then drain cleanly on
// SIGTERM.
func TestKillRestartRecoversCache(t *testing.T) {
	if os.Getenv("CPACKD_TEST_MAIN") == "1" {
		args := os.Args
		for i, a := range args {
			if a == "--" {
				args = args[i+1:]
				break
			}
		}
		os.Args = append([]string{"cpackd"}, args...)
		main()
		os.Exit(0) // don't fall through to the testing framework's own exit
	}
	if testing.Short() {
		t.Skip("subprocess round trip")
	}

	dir := t.TempDir()
	args := []string{"-addr", "127.0.0.1:0", "-cache-dir", dir, "-cache", "64"}

	d1 := startDaemon(t, args...)
	first := d1.compress(t)
	if first.Cached {
		t.Fatal("first compression reported cached")
	}
	if again := d1.compress(t); !again.Cached {
		t.Fatal("second compression in the same process not cached")
	}

	// SIGKILL: no graceful drain, no final snapshot — recovery must work
	// from the append-only log alone.
	if err := d1.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	d1.cmd.Wait()

	// Make the crash as rude as possible: a torn half-record at the tail,
	// as if the kill had landed mid-append.
	logPath := filepath.Join(dir, "cache.log")
	f, err := os.OpenFile(logPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("cache log missing after kill: %v", err)
	}
	torn := make([]byte, 21)
	for i := range torn {
		torn[i] = 0x5A
	}
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	d2 := startDaemon(t, args...)
	second := d2.compress(t)
	if !second.Cached {
		t.Fatal("restarted cpackd recompressed a persisted program")
	}
	if second.Digest != first.Digest || second.CompressedB64 != first.CompressedB64 {
		t.Error("restored entry differs from the original compression")
	}
	m := d2.metrics(t)
	for _, want := range []string{
		"cpackd_cache_persist_restored_entries 1",
		"cpackd_cache_persist_tail_truncations_total 1",
		"cpackd_cache_misses_total 0",
	} {
		if !strings.Contains(m, want) {
			t.Errorf("metrics missing %q after restart", want)
		}
	}

	// And the survivor still shuts down gracefully.
	if err := d2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- d2.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("graceful shutdown exited with %v; stderr:\n%s", err, d2.stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cpackd did not exit after SIGTERM")
	}
	if !strings.Contains(d2.stderr.String(), "cpackd stopped") {
		t.Errorf("missing clean-stop log line; stderr:\n%s", d2.stderr.String())
	}
}

// debugURL waits for the daemon's debug listener to report its address.
func (d *daemon) debugURL(t *testing.T) string {
	t.Helper()
	select {
	case addr := <-d.debugCh:
		return "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatalf("cpackd did not report a debug listening address; stderr:\n%s", d.stderr.String())
		return ""
	}
}

// TestDebugListenerServesDiagnostics: pprof and the trace ring are
// reachable on -debug-addr only; the public port never serves pprof,
// and one real compression leaves a compress span in the ring.
func TestDebugListenerServesDiagnostics(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess round trip")
	}
	d := startDaemon(t, "-addr", "127.0.0.1:0", "-debug-addr", "127.0.0.1:0")
	debug := d.debugURL(t)

	d.compress(t)

	get := func(url string) (int, string) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(raw)
	}

	// pprof lives only on the private listener.
	if code, _ := get(d.url + "/debug/pprof/"); code != http.StatusNotFound {
		t.Errorf("public /debug/pprof/ returned %d, want 404", code)
	}
	if code, _ := get(debug + "/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("debug /debug/pprof/cmdline returned %d, want 200", code)
	}

	// The trace ring holds the compression's span tree.
	code, body := get(debug + "/debug/trace/recent?endpoint=compress")
	if code != http.StatusOK {
		t.Fatalf("/debug/trace/recent returned %d: %s", code, body)
	}
	for _, span := range []string{`"name":"handler"`, `"name":"compress"`, `"name":"encode"`} {
		if !strings.Contains(body, span) {
			t.Errorf("trace ring missing %s:\n%s", span, body)
		}
	}
}

// TestSighupReloadsTenants: a real cpackd started with -tenants
// enforces API keys on the public surface, and SIGHUP swaps in an
// edited config — new keys admitted, old keys rejected — without a
// restart or a dropped listener.
func TestSighupReloadsTenants(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess round trip")
	}
	const (
		key1 = "e2e-key-one-11111111"
		key2 = "e2e-key-two-22222222"
	)
	cfgPath := filepath.Join(t.TempDir(), "tenants.conf")
	writeCfg := func(key string) {
		t.Helper()
		cfg := "tenant alpha key=" + key + " weight=2\n" // no anon line: keyless => 401
		if err := os.WriteFile(cfgPath, []byte(cfg), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeCfg(key1)
	d := startDaemon(t, "-addr", "127.0.0.1:0", "-tenants", cfgPath)

	post := func(key string) int {
		t.Helper()
		body, err := json.Marshal(map[string]string{"asm": testAsm})
		if err != nil {
			t.Fatal(err)
		}
		req, err := http.NewRequest(http.MethodPost, d.url+"/v1/compress", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if key != "" {
			req.Header.Set("Authorization", "Bearer "+key)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("compress: %v; stderr:\n%s", err, d.stderr.String())
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}

	if code := post(""); code != http.StatusUnauthorized {
		t.Fatalf("keyless request returned %d, want 401", code)
	}
	if code := post(key2); code != http.StatusUnauthorized {
		t.Fatalf("undeclared key returned %d, want 401", code)
	}
	if code := post(key1); code != http.StatusOK {
		t.Fatalf("declared key returned %d, want 200", code)
	}

	// Rotate the key on disk and signal the daemon.
	writeCfg(key2)
	if err := d.cmd.Process.Signal(syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for post(key2) != http.StatusOK {
		if time.Now().After(deadline) {
			t.Fatalf("new key still rejected 15s after SIGHUP; stderr:\n%s", d.stderr.String())
		}
		time.Sleep(50 * time.Millisecond)
	}
	if code := post(key1); code != http.StatusUnauthorized {
		t.Fatalf("rotated-out key returned %d, want 401", code)
	}

	// Stop the daemon (joining the stderr scanner) before inspecting its
	// log for the reload line.
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { d.cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("cpackd did not exit after SIGTERM")
	}
	select {
	case <-d.scanDone:
	case <-time.After(10 * time.Second):
		t.Fatal("stderr scanner did not finish")
	}
	if !strings.Contains(d.stderr.String(), "tenant config reloaded") {
		t.Errorf("missing reload log line; stderr:\n%s", d.stderr.String())
	}
}

// TestListenAddrReported pins the contract startDaemon depends on: with
// -addr :0 the startup log carries the real port, not the flag value.
func TestListenAddrReported(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess round trip")
	}
	d := startDaemon(t, "-addr", "127.0.0.1:0")
	if strings.HasSuffix(d.url, ":0") {
		t.Fatalf("listening log reported the unresolved flag address %s", d.url)
	}
	resp, err := http.Get(d.url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
}
