// Loadgen drives a running cpackd with a mixed workload of compress,
// decompress, verify and simulate requests and reports status-code and
// latency distributions plus the server-side cache hit rate. Use it to
// watch the content-addressed cache and the 429 load-shedding path under
// pressure:
//
//	cpackd &
//	go run ./examples/loadgen -addr http://localhost:8321 -c 8 -n 200
//
// Roughly every other compress body is a repeat, so a healthy run shows
// the cache hit counter climbing in /metrics while p99 latency stays well
// below the cold-compress cost.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"regexp"
	"sort"
	"strconv"
	"sync"
	"time"
)

var sources = []string{
	`
main:
	li   $s0, 50
	li   $s1, 0
loop:
	addu $s1, $s1, $s0
	addiu $s0, $s0, -1
	bgtz $s0, loop
	li   $v0, 10
	syscall
`,
	`
main:
	li   $t0, 200
	li   $t1, 1
fib:
	addu $t2, $t0, $t1
	move $t0, $t1
	move $t1, $t2
	addiu $t0, $t0, -1
	bgtz $t0, fib
	li   $v0, 10
	syscall
`,
}

type result struct {
	op      string
	code    int
	latency time.Duration
	err     error
}

func main() {
	addr := flag.String("addr", "http://localhost:8321", "cpackd base URL")
	workers := flag.Int("c", 4, "concurrent clients")
	requests := flag.Int("n", 100, "requests per client")
	simulate := flag.Bool("simulate", true, "include heavy simulate requests in the mix")
	flag.Parse()

	jobs := make(chan int)
	results := make(chan result, *workers**requests)
	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results <- fire(*addr, i, *simulate)
			}
		}()
	}
	start := time.Now()
	for i := 0; i < *workers**requests; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	close(results)
	elapsed := time.Since(start)

	byOp := map[string]map[int]int{}
	var latencies []time.Duration
	errs := 0
	for r := range results {
		if r.err != nil {
			errs++
			continue
		}
		if byOp[r.op] == nil {
			byOp[r.op] = map[int]int{}
		}
		byOp[r.op][r.code]++
		latencies = append(latencies, r.latency)
	}

	fmt.Printf("%d requests in %v (%.0f req/s), %d transport errors\n",
		*workers**requests, elapsed.Round(time.Millisecond),
		float64(*workers**requests)/elapsed.Seconds(), errs)
	ops := make([]string, 0, len(byOp))
	for op := range byOp {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		fmt.Printf("  %-12s", op)
		codes := make([]int, 0, len(byOp[op]))
		for c := range byOp[op] {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Printf("  %d×%d", c, byOp[op][c])
		}
		fmt.Println()
	}
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		pct := func(p float64) time.Duration {
			return latencies[int(p*float64(len(latencies)-1))]
		}
		fmt.Printf("latency p50 %v  p90 %v  p99 %v\n",
			pct(0.50).Round(time.Microsecond), pct(0.90).Round(time.Microsecond),
			pct(0.99).Round(time.Microsecond))
	}
	reportCache(*addr)
}

// fire issues one request; the op rotates through the endpoint mix and the
// compress body alternates between two programs so roughly half the
// compressions are content-addressed repeats.
func fire(addr string, i int, simulate bool) result {
	src := sources[i%len(sources)]
	mix := 3
	if simulate {
		mix = 4
	}
	var (
		op   string
		body any
	)
	switch i % mix {
	case 0, 1:
		op, body = "compress", map[string]any{"asm": src}
	case 2:
		op, body = "verify", map[string]any{"asm": src}
	default:
		op, body = "simulate", map[string]any{
			"asm":       src,
			"model":     "codepack",
			"max_instr": 100000,
		}
	}
	b, _ := json.Marshal(body)
	start := time.Now()
	resp, err := http.Post(addr+"/v1/"+op, "application/json", bytes.NewReader(b))
	if err != nil {
		return result{op: op, err: err}
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return result{op: op, code: resp.StatusCode, latency: time.Since(start)}
}

var cacheRe = regexp.MustCompile(`(?m)^cpackd_cache_(hits|misses)_total (\d+)`)

// reportCache scrapes /metrics for the cache hit rate.
func reportCache(addr string) {
	resp, err := http.Get(addr + "/metrics")
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen: metrics scrape:", err)
		return
	}
	defer resp.Body.Close()
	text, _ := io.ReadAll(resp.Body)
	var hits, misses int
	for _, m := range cacheRe.FindAllStringSubmatch(string(text), -1) {
		n, _ := strconv.Atoi(m[2])
		if m[1] == "hits" {
			hits = n
		} else {
			misses = n
		}
	}
	if hits+misses > 0 {
		fmt.Printf("server cache: %d hits / %d misses (%.0f%% hit rate)\n",
			hits, misses, 100*float64(hits)/float64(hits+misses))
	}
}
