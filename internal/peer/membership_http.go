package peer

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
)

// Membership-protocol wire details.
const (
	// MembershipPathPrefix is the root of the membership endpoints.
	MembershipPathPrefix = "/internal/v1/membership/"
	// JoinPath is where a (re)starting instance announces itself to a
	// seed and receives the seed's full view back.
	JoinPath = MembershipPathPrefix + "join"
	// HeartbeatPath carries the periodic gossip exchange: the sender's
	// view in the request, the receiver's view in the response.
	HeartbeatPath = MembershipPathPrefix + "heartbeat"
	// LeavePath announces a graceful departure.
	LeavePath = MembershipPathPrefix + "leave"
)

// maxMembershipMembers bounds one gossiped view; maxMembershipBody the
// raw message size. Far above any sane cluster, low enough that a
// malicious peer cannot balloon the member map.
const (
	maxMembershipMembers = 1024
	maxMembershipBody    = 1 << 20
)

// MembershipMsg is the join/heartbeat/leave wire message: the sender's
// own record plus (for join and heartbeat) its full gossiped view.
type MembershipMsg struct {
	From    MemberInfo   `json:"from"`
	Members []MemberInfo `json:"members,omitempty"`
}

// DecodeMembershipMsg parses and validates one wire message from
// untrusted peer input: bounded size, a well-formed sender URL, bounded
// member count, and well-formed member URLs throughout. Anything else
// is an error — malformed gossip must never reach the member list.
func DecodeMembershipMsg(r io.Reader) (MembershipMsg, error) {
	var msg MembershipMsg
	dec := json.NewDecoder(io.LimitReader(r, maxMembershipBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&msg); err != nil {
		return MembershipMsg{}, fmt.Errorf("peer: malformed membership message: %w", err)
	}
	if err := validMemberURL(msg.From.URL); err != nil {
		return MembershipMsg{}, fmt.Errorf("peer: membership sender: %w", err)
	}
	if len(msg.Members) > maxMembershipMembers {
		return MembershipMsg{}, fmt.Errorf("peer: membership view lists %d members (max %d)",
			len(msg.Members), maxMembershipMembers)
	}
	for _, mi := range msg.Members {
		if err := validMemberURL(mi.URL); err != nil {
			return MembershipMsg{}, fmt.Errorf("peer: membership view: %w", err)
		}
	}
	return msg, nil
}

// validMemberURL requires a scheme://host base URL, the same shape
// NewCluster demands of configured members.
func validMemberURL(s string) error {
	if s == "" {
		return fmt.Errorf("empty member URL")
	}
	u, err := url.Parse(s)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return fmt.Errorf("member %q is not a base URL (want scheme://host:port)", s)
	}
	return nil
}

// handleMembership is the shared join/heartbeat/leave endpoint body:
// decode, merge (the sender's own record rides along with its view),
// refresh the ring, and answer with the local view so every exchange
// converges both sides.
func (c *Cluster) handleMembership(w http.ResponseWriter, r *http.Request, kind string) {
	msg, err := DecodeMembershipMsg(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	from := msg.From
	if kind == "leave" {
		from.State = StateLeft
	}
	changed := c.members.Merge(append(msg.Members, from))
	if from.State.inRing() {
		c.members.ObserveAlive(from.URL) // the sender just proved it is up
	}
	if changed {
		c.log.Info("membership changed", "via", kind, "from", from.URL,
			"members", len(c.members.Live()))
	}
	c.refreshRing()
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	json.NewEncoder(w).Encode(MembershipMsg{
		From:    c.members.SelfInfo(),
		Members: c.members.Snapshot(),
	})
}

// HandleJoin serves POST /internal/v1/membership/join.
func (c *Cluster) HandleJoin(w http.ResponseWriter, r *http.Request) {
	c.handleMembership(w, r, "join")
}

// HandleHeartbeat serves POST /internal/v1/membership/heartbeat.
func (c *Cluster) HandleHeartbeat(w http.ResponseWriter, r *http.Request) {
	c.handleMembership(w, r, "heartbeat")
}

// HandleLeave serves POST /internal/v1/membership/leave: the sender's
// record is taken as a graceful departure regardless of the state it
// claims.
func (c *Cluster) HandleLeave(w http.ResponseWriter, r *http.Request) {
	c.handleMembership(w, r, "leave")
}

// exchange POSTs this instance's view to target's membership endpoint
// and merges the view that comes back. It reports whether the ring
// membership changed on either leg.
func (c *Cluster) exchange(ctx context.Context, target, path string) (changed bool, err error) {
	body, err := json.Marshal(MembershipMsg{
		From:    c.members.SelfInfo(),
		Members: c.members.Snapshot(),
	})
	if err != nil {
		return false, err
	}
	actx, cancel := context.WithTimeout(ctx, c.cfg.FetchTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost, target+path, bytes.NewReader(body))
	if err != nil {
		return false, err
	}
	req.Header.Set("Content-Type", "application/json")
	c.setTraceHeader(req, ctx)
	c.signRequest(req, body)
	resp, err := c.client.Do(req)
	if err != nil {
		return false, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("peer: %s to %s returned %d", path, target, resp.StatusCode)
	}
	reply, err := DecodeMembershipMsg(resp.Body)
	if err != nil {
		return false, err
	}
	changed = c.members.Merge(append(reply.Members, reply.From))
	if reply.From.URL == target && reply.From.State.inRing() {
		c.members.ObserveAlive(target)
	}
	return changed, nil
}

// announceLeave best-effort POSTs the departure to up to fanout live
// peers so the verdict spreads without waiting for timeouts.
func (c *Cluster) announceLeave(ctx context.Context, view []MemberInfo) {
	body, err := json.Marshal(MembershipMsg{From: c.members.SelfInfo(), Members: view})
	if err != nil {
		return
	}
	sent := 0
	for _, m := range view {
		if m.URL == c.self || !m.State.inRing() {
			continue
		}
		if sent >= c.cfg.GossipFanout {
			break
		}
		actx, cancel := context.WithTimeout(ctx, c.cfg.FetchTimeout)
		req, err := http.NewRequestWithContext(actx, http.MethodPost,
			m.URL+LeavePath, bytes.NewReader(body))
		if err != nil {
			cancel()
			continue
		}
		req.Header.Set("Content-Type", "application/json")
		c.signRequest(req, body)
		resp, err := c.client.Do(req)
		cancel()
		if err != nil {
			c.log.Debug("leave announcement failed", "peer", m.URL, "err", err)
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		sent++
	}
}
