package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"codepack/internal/peer"
)

// counter is a monotonically increasing metric.
type counter struct{ v atomic.Uint64 }

func (c *counter) add(n uint64)  { c.v.Add(n) }
func (c *counter) value() uint64 { return c.v.Load() }

// latencyBuckets are the histogram upper bounds in seconds. The low end
// resolves cache-hit compress requests (tens of microseconds); the high
// end covers full-budget simulations.
var latencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// histogram is a fixed-bucket latency histogram.
type histogram struct {
	mu     sync.Mutex
	counts [numBuckets + 1]uint64 // one per bucket, plus +Inf
	sum    float64
	n      uint64
}

// numBuckets must equal len(latencyBuckets); array-sized so histograms embed flat.
const numBuckets = 16

func (h *histogram) observe(sec float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(latencyBuckets, sec)
	h.counts[i]++
	h.sum += sec
	h.n++
}

// histSnapshot is one consistent view of a histogram.
type histSnapshot struct {
	Counts [numBuckets + 1]uint64 `json:"counts"`
	Sum    float64                `json:"sum_seconds"`
	N      uint64                 `json:"count"`
}

func (h *histogram) snapshot() histSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return histSnapshot{Counts: h.counts, Sum: h.sum, N: h.n}
}

// endpointStats aggregates one endpoint's request metrics.
type endpointStats struct {
	mu       sync.Mutex
	byCode   map[int]uint64
	latency  histogram
	bytesIn  counter
	bytesOut counter
}

func (e *endpointStats) record(code int, in, out int64, dur time.Duration) {
	e.mu.Lock()
	e.byCode[code]++
	e.mu.Unlock()
	e.latency.observe(dur.Seconds())
	if in > 0 {
		e.bytesIn.add(uint64(in))
	}
	if out > 0 {
		e.bytesOut.add(uint64(out))
	}
}

func (e *endpointStats) codes() map[int]uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[int]uint64, len(e.byCode))
	for k, v := range e.byCode {
		out[k] = v
	}
	return out
}

// tenantStats aggregates one tenant's request metrics. Cardinality is
// bounded: tenant IDs come from the config file plus the reserved
// "anon" and "internal" labels.
type tenantStats struct {
	mu       sync.Mutex
	byCode   map[int]uint64
	limited  map[string]uint64 // denials by reason: rate, quota, queue
	bytesIn  counter
	bytesOut counter
}

func (t *tenantStats) record(code int, in, out int64) {
	t.mu.Lock()
	t.byCode[code]++
	t.mu.Unlock()
	if in > 0 {
		t.bytesIn.add(uint64(in))
	}
	if out > 0 {
		t.bytesOut.add(uint64(out))
	}
}

func (t *tenantStats) codes() map[int]uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[int]uint64, len(t.byCode))
	for k, v := range t.byCode {
		out[k] = v
	}
	return out
}

func (t *tenantStats) limitedByReason() map[string]uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]uint64, len(t.limited))
	for k, v := range t.limited {
		out[k] = v
	}
	return out
}

// metrics is the server's observability state, published at /metrics
// (Prometheus text format) and /debug/vars (expvar-style JSON).
type metrics struct {
	start time.Time

	mu        sync.Mutex
	endpoints map[string]*endpointStats
	tenants   map[string]*tenantStats

	shed     counter // 429s from saturated pools
	timeouts counter // requests that hit their deadline

	authFailures         counter // public requests rejected 401 (missing/unknown API key)
	internalAuthFailures counter // internal requests rejected 401 (unsigned/mis-signed)

	coalesced counter // compressions served by riding an in-flight fill

	// Warm-tier counters (only exported while a cluster is configured).
	peerHits    counter // peer-served payloads that verified and were used
	peerMisses  counter // owner definitively lacked the digest
	peerErrors  counter // fetch failures, breaker skips, failed verifications
	ringChanges counter // ring rebuilds driven by membership changes
	aePasses    counter // anti-entropy passes completed (startup + ring changes)

	// Stage histograms: one per span name, fed by the tracer's OnSpanEnd
	// hook, so every traced pipeline stage gets a duration distribution.
	// peerFetch duplicates the "peer-fetch" stage under its own metric
	// name — the warm tier's headline latency.
	stageMu   sync.Mutex
	stages    map[string]*histogram
	peerFetch histogram
}

func newMetrics() *metrics {
	return &metrics{
		start:     time.Now(),
		endpoints: make(map[string]*endpointStats),
		tenants:   make(map[string]*tenantStats),
		stages:    make(map[string]*histogram),
	}
}

// observeStage records one completed span into its stage histogram;
// it is the tracer's OnSpanEnd hook and runs on every span, so the
// slow path is only the first sighting of a new stage name.
func (m *metrics) observeStage(name string, d time.Duration) {
	m.stageMu.Lock()
	h, ok := m.stages[name]
	if !ok {
		h = &histogram{}
		m.stages[name] = h
	}
	m.stageMu.Unlock()
	h.observe(d.Seconds())
	if name == "peer-fetch" {
		m.peerFetch.observe(d.Seconds())
	}
}

// stageNames returns the observed stage names, sorted.
func (m *metrics) stageNames() []string {
	m.stageMu.Lock()
	defer m.stageMu.Unlock()
	names := make([]string, 0, len(m.stages))
	for n := range m.stages {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// stage returns the histogram for name (nil if never observed).
func (m *metrics) stage(name string) *histogram {
	m.stageMu.Lock()
	defer m.stageMu.Unlock()
	return m.stages[name]
}

func (m *metrics) endpoint(name string) *endpointStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.endpoints[name]
	if !ok {
		e = &endpointStats{byCode: make(map[int]uint64)}
		m.endpoints[name] = e
	}
	return e
}

func (m *metrics) tenant(id string) *tenantStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.tenants[id]
	if !ok {
		t = &tenantStats{byCode: make(map[int]uint64), limited: make(map[string]uint64)}
		m.tenants[id] = t
	}
	return t
}

// tenantLimited counts one denied request for the tenant, by reason
// ("rate", "quota" or "queue").
func (m *metrics) tenantLimited(id, reason string) {
	t := m.tenant(id)
	t.mu.Lock()
	t.limited[reason]++
	t.mu.Unlock()
}

func (m *metrics) tenantNames() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.tenants))
	for n := range m.tenants {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (m *metrics) endpointNames() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.endpoints))
	for n := range m.endpoints {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// writeHistBuckets renders one histogram series in the Prometheus text
// format; labels is the rendered label set without braces ("" for none).
func writeHistBuckets(w io.Writer, metric, labels string, snap histSnapshot) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum uint64
	for i, bound := range latencyBuckets {
		cum += snap.Counts[i]
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n",
			metric, labels, sep, strconv.FormatFloat(bound, 'g', -1, 64), cum)
	}
	cum += snap.Counts[numBuckets]
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", metric, labels, sep, cum)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %g\n", metric, snap.Sum)
		fmt.Fprintf(w, "%s_count %d\n", metric, snap.N)
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %g\n", metric, labels, snap.Sum)
		fmt.Fprintf(w, "%s_count{%s} %d\n", metric, labels, snap.N)
	}
}

// handleMetrics renders the Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.metrics
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	fmt.Fprintf(w, "# HELP cpackd_uptime_seconds Time since the server started.\n")
	fmt.Fprintf(w, "# TYPE cpackd_uptime_seconds gauge\n")
	fmt.Fprintf(w, "cpackd_uptime_seconds %g\n", time.Since(m.start).Seconds())

	fmt.Fprintf(w, "# HELP cpackd_requests_total Requests served, by endpoint and status code.\n")
	fmt.Fprintf(w, "# TYPE cpackd_requests_total counter\n")
	names := m.endpointNames()
	for _, name := range names {
		e := m.endpoint(name)
		codes := e.codes()
		sorted := make([]int, 0, len(codes))
		for c := range codes {
			sorted = append(sorted, c)
		}
		sort.Ints(sorted)
		for _, c := range sorted {
			fmt.Fprintf(w, "cpackd_requests_total{endpoint=%q,code=\"%d\"} %d\n", name, c, codes[c])
		}
	}

	fmt.Fprintf(w, "# HELP cpackd_request_duration_seconds Request latency, by endpoint.\n")
	fmt.Fprintf(w, "# TYPE cpackd_request_duration_seconds histogram\n")
	for _, name := range names {
		snap := m.endpoint(name).latency.snapshot()
		var cum uint64
		for i, bound := range latencyBuckets {
			cum += snap.Counts[i]
			fmt.Fprintf(w, "cpackd_request_duration_seconds_bucket{endpoint=%q,le=%q} %d\n",
				name, strconv.FormatFloat(bound, 'g', -1, 64), cum)
		}
		cum += snap.Counts[numBuckets]
		fmt.Fprintf(w, "cpackd_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", name, cum)
		fmt.Fprintf(w, "cpackd_request_duration_seconds_sum{endpoint=%q} %g\n", name, snap.Sum)
		fmt.Fprintf(w, "cpackd_request_duration_seconds_count{endpoint=%q} %d\n", name, snap.N)
	}

	fmt.Fprintf(w, "# HELP cpackd_bytes_total Request and response payload bytes, by endpoint.\n")
	fmt.Fprintf(w, "# TYPE cpackd_bytes_total counter\n")
	for _, name := range names {
		e := m.endpoint(name)
		fmt.Fprintf(w, "cpackd_bytes_total{endpoint=%q,direction=\"in\"} %d\n", name, e.bytesIn.value())
		fmt.Fprintf(w, "cpackd_bytes_total{endpoint=%q,direction=\"out\"} %d\n", name, e.bytesOut.value())
	}

	cs := s.cache.stats()
	fmt.Fprintf(w, "# HELP cpackd_cache_hits_total Content-addressed cache hits.\n")
	fmt.Fprintf(w, "# TYPE cpackd_cache_hits_total counter\n")
	fmt.Fprintf(w, "cpackd_cache_hits_total %d\n", cs.Hits)
	fmt.Fprintf(w, "# HELP cpackd_cache_misses_total Content-addressed cache misses.\n")
	fmt.Fprintf(w, "# TYPE cpackd_cache_misses_total counter\n")
	fmt.Fprintf(w, "cpackd_cache_misses_total %d\n", cs.Misses)
	fmt.Fprintf(w, "# HELP cpackd_cache_evictions_total Entries evicted from the cache.\n")
	fmt.Fprintf(w, "# TYPE cpackd_cache_evictions_total counter\n")
	fmt.Fprintf(w, "cpackd_cache_evictions_total %d\n", cs.Evictions)
	fmt.Fprintf(w, "# HELP cpackd_cache_entries Resident cache entries.\n")
	fmt.Fprintf(w, "# TYPE cpackd_cache_entries gauge\n")
	fmt.Fprintf(w, "cpackd_cache_entries %d\n", cs.Entries)
	fmt.Fprintf(w, "# HELP cpackd_cache_bytes Resident compressed bytes.\n")
	fmt.Fprintf(w, "# TYPE cpackd_cache_bytes gauge\n")
	fmt.Fprintf(w, "cpackd_cache_bytes %d\n", cs.Bytes)
	fmt.Fprintf(w, "# HELP cpackd_cache_unverified_entries Quarantined replicated entries awaiting verification.\n")
	fmt.Fprintf(w, "# TYPE cpackd_cache_unverified_entries gauge\n")
	fmt.Fprintf(w, "cpackd_cache_unverified_entries %d\n", cs.Unverified)

	fmt.Fprintf(w, "# HELP cpackd_compress_coalesced_total Requests served by riding another request's in-flight compression.\n")
	fmt.Fprintf(w, "# TYPE cpackd_compress_coalesced_total counter\n")
	fmt.Fprintf(w, "cpackd_compress_coalesced_total %d\n", s.metrics.coalesced.value())

	if stages := m.stageNames(); len(stages) > 0 {
		fmt.Fprintf(w, "# HELP cpackd_stage_duration_seconds Pipeline-stage duration, by traced span name.\n")
		fmt.Fprintf(w, "# TYPE cpackd_stage_duration_seconds histogram\n")
		for _, name := range stages {
			writeHistBuckets(w, "cpackd_stage_duration_seconds",
				fmt.Sprintf("stage=%q", name), m.stage(name).snapshot())
		}
	}
	if s.tracer != nil {
		fmt.Fprintf(w, "# HELP cpackd_traces_recorded_total Completed traces recorded into the trace ring (evicted ones included).\n")
		fmt.Fprintf(w, "# TYPE cpackd_traces_recorded_total counter\n")
		fmt.Fprintf(w, "cpackd_traces_recorded_total %d\n", s.tracer.Total())
	}

	if c := s.cluster; c != nil {
		st := c.Stats()
		fmt.Fprintf(w, "# HELP cpackd_peer_hits_total Cache fills served by a peer (verified).\n")
		fmt.Fprintf(w, "# TYPE cpackd_peer_hits_total counter\n")
		fmt.Fprintf(w, "cpackd_peer_hits_total %d\n", s.metrics.peerHits.value())
		fmt.Fprintf(w, "# HELP cpackd_peer_misses_total Warm-tier lookups the owner answered empty.\n")
		fmt.Fprintf(w, "# TYPE cpackd_peer_misses_total counter\n")
		fmt.Fprintf(w, "cpackd_peer_misses_total %d\n", s.metrics.peerMisses.value())
		fmt.Fprintf(w, "# HELP cpackd_peer_errors_total Peer fetch failures, breaker skips and failed payload verifications.\n")
		fmt.Fprintf(w, "# TYPE cpackd_peer_errors_total counter\n")
		fmt.Fprintf(w, "cpackd_peer_errors_total %d\n", s.metrics.peerErrors.value())
		fmt.Fprintf(w, "# HELP cpackd_peer_replications_total Entries pushed to their ring owner (async replication + anti-entropy).\n")
		fmt.Fprintf(w, "# TYPE cpackd_peer_replications_total counter\n")
		fmt.Fprintf(w, "cpackd_peer_replications_total %d\n", st.ReplicationsSent)
		fmt.Fprintf(w, "# HELP cpackd_peer_replications_dropped_total Replication jobs dropped because the queue was full.\n")
		fmt.Fprintf(w, "# TYPE cpackd_peer_replications_dropped_total counter\n")
		fmt.Fprintf(w, "cpackd_peer_replications_dropped_total %d\n", st.ReplicationsDropped)
		fmt.Fprintf(w, "# HELP cpackd_peer_offered_digests_total Digests offered to ring owners during anti-entropy.\n")
		fmt.Fprintf(w, "# TYPE cpackd_peer_offered_digests_total counter\n")
		fmt.Fprintf(w, "cpackd_peer_offered_digests_total %d\n", st.OfferedDigests)
		fmt.Fprintf(w, "# HELP cpackd_peer_members Ring members in the current view (including self).\n")
		fmt.Fprintf(w, "# TYPE cpackd_peer_members gauge\n")
		fmt.Fprintf(w, "cpackd_peer_members %d\n", len(c.Members()))
		fmt.Fprintf(w, "# HELP cpackd_peer_ring_epoch Membership version the current ring reflects.\n")
		fmt.Fprintf(w, "# TYPE cpackd_peer_ring_epoch gauge\n")
		fmt.Fprintf(w, "cpackd_peer_ring_epoch %d\n", c.RingEpoch())
		fmt.Fprintf(w, "# HELP cpackd_peer_ring_changes_total Ring rebuilds driven by membership changes.\n")
		fmt.Fprintf(w, "# TYPE cpackd_peer_ring_changes_total counter\n")
		fmt.Fprintf(w, "cpackd_peer_ring_changes_total %d\n", s.metrics.ringChanges.value())
		fmt.Fprintf(w, "# HELP cpackd_peer_antientropy_passes_total Anti-entropy passes completed (startup + ring changes).\n")
		fmt.Fprintf(w, "# TYPE cpackd_peer_antientropy_passes_total counter\n")
		fmt.Fprintf(w, "cpackd_peer_antientropy_passes_total %d\n", s.metrics.aePasses.value())
		fmt.Fprintf(w, "# HELP cpackd_peer_heartbeats_total Successful membership gossip exchanges sent.\n")
		fmt.Fprintf(w, "# TYPE cpackd_peer_heartbeats_total counter\n")
		fmt.Fprintf(w, "cpackd_peer_heartbeats_total %d\n", st.Heartbeats)
		fmt.Fprintf(w, "# HELP cpackd_peer_repl_queue_depth Replication jobs waiting for a worker.\n")
		fmt.Fprintf(w, "# TYPE cpackd_peer_repl_queue_depth gauge\n")
		fmt.Fprintf(w, "cpackd_peer_repl_queue_depth %d\n", c.ReplQueueDepth())
		fmt.Fprintf(w, "# HELP cpackd_peer_repl_queue_age_seconds Age of the oldest still-queued replication job.\n")
		fmt.Fprintf(w, "# TYPE cpackd_peer_repl_queue_age_seconds gauge\n")
		fmt.Fprintf(w, "cpackd_peer_repl_queue_age_seconds %g\n", c.ReplQueueOldestAge().Seconds())
		fmt.Fprintf(w, "# HELP cpackd_peer_replica_factor Configured replicas per digest (R).\n")
		fmt.Fprintf(w, "# TYPE cpackd_peer_replica_factor gauge\n")
		fmt.Fprintf(w, "cpackd_peer_replica_factor %d\n", c.ReplicationFactor())
		fmt.Fprintf(w, "# HELP cpackd_peer_replica_fallthroughs_total Warm-tier hits served by a later replica after the first choice failed.\n")
		fmt.Fprintf(w, "# TYPE cpackd_peer_replica_fallthroughs_total counter\n")
		fmt.Fprintf(w, "cpackd_peer_replica_fallthroughs_total %d\n", st.ReplicaFallthroughs)
		fmt.Fprintf(w, "# HELP cpackd_peer_readrepair_total Lagging replicas re-offered a verified entry after a fetch (local installs included).\n")
		fmt.Fprintf(w, "# TYPE cpackd_peer_readrepair_total counter\n")
		fmt.Fprintf(w, "cpackd_peer_readrepair_total %d\n", st.ReadRepairs)
		fmt.Fprintf(w, "# HELP cpackd_peer_handoff_hinted_total Failed replication pushes buffered as handoff hints.\n")
		fmt.Fprintf(w, "# TYPE cpackd_peer_handoff_hinted_total counter\n")
		fmt.Fprintf(w, "cpackd_peer_handoff_hinted_total %d\n", st.HandoffHinted)
		fmt.Fprintf(w, "# HELP cpackd_peer_handoff_drained_total Handoff hints delivered to their recovered target.\n")
		fmt.Fprintf(w, "# TYPE cpackd_peer_handoff_drained_total counter\n")
		fmt.Fprintf(w, "cpackd_peer_handoff_drained_total %d\n", st.HandoffDrained)
		fmt.Fprintf(w, "# HELP cpackd_peer_handoff_reassigned_total Handoff hints re-routed to surviving owners after their target died or left.\n")
		fmt.Fprintf(w, "# TYPE cpackd_peer_handoff_reassigned_total counter\n")
		fmt.Fprintf(w, "cpackd_peer_handoff_reassigned_total %d\n", st.HandoffReassigned)
		fmt.Fprintf(w, "# HELP cpackd_peer_handoff_dropped_total Handoff hints dropped (buffer overflow or undeliverable).\n")
		fmt.Fprintf(w, "# TYPE cpackd_peer_handoff_dropped_total counter\n")
		fmt.Fprintf(w, "cpackd_peer_handoff_dropped_total %d\n", st.HandoffDropped)
		fmt.Fprintf(w, "# HELP cpackd_peer_handoff_pending Handoff hints currently buffered.\n")
		fmt.Fprintf(w, "# TYPE cpackd_peer_handoff_pending gauge\n")
		fmt.Fprintf(w, "cpackd_peer_handoff_pending %d\n", st.HandoffPending)
		fmt.Fprintf(w, "# HELP cpackd_peer_handoff_pending_bytes Encoded bytes of buffered handoff hints.\n")
		fmt.Fprintf(w, "# TYPE cpackd_peer_handoff_pending_bytes gauge\n")
		fmt.Fprintf(w, "cpackd_peer_handoff_pending_bytes %d\n", st.HandoffPendingBytes)
		fmt.Fprintf(w, "# HELP cpackd_peer_fetch_duration_seconds Warm-tier owner-fetch latency (breaker skips included).\n")
		fmt.Fprintf(w, "# TYPE cpackd_peer_fetch_duration_seconds histogram\n")
		writeHistBuckets(w, "cpackd_peer_fetch_duration_seconds", "", m.peerFetch.snapshot())
		fmt.Fprintf(w, "# HELP cpackd_peer_breaker_state Per-peer breaker state: 0 closed, 1 half-open, 2 open.\n")
		fmt.Fprintf(w, "# TYPE cpackd_peer_breaker_state gauge\n")
		fmt.Fprintf(w, "# HELP cpackd_peer_breaker_opens_total Times each peer's breaker has opened.\n")
		fmt.Fprintf(w, "# TYPE cpackd_peer_breaker_opens_total counter\n")
		fmt.Fprintf(w, "# HELP cpackd_peer_member_state Per-peer membership state: 0 alive, 1 suspect, 2 dead, 3 left.\n")
		fmt.Fprintf(w, "# TYPE cpackd_peer_member_state gauge\n")
		for _, h := range c.Health() {
			state := 0
			switch h.State {
			case "half-open":
				state = 1
			case "open":
				state = 2
			}
			fmt.Fprintf(w, "cpackd_peer_breaker_state{peer=%q} %d\n", h.URL, state)
			fmt.Fprintf(w, "cpackd_peer_breaker_opens_total{peer=%q} %d\n", h.URL, h.Opens)
			ms := 0
			switch h.Member {
			case "suspect":
				ms = 1
			case "dead":
				ms = 2
			case "left":
				ms = 3
			}
			fmt.Fprintf(w, "cpackd_peer_member_state{peer=%q} %d\n", h.URL, ms)
		}
	}

	if st := s.cache.store; st != nil {
		ss := st.statsSnapshot()
		fmt.Fprintf(w, "# HELP cpackd_cache_persist_restored_entries Cache entries restored from disk at startup.\n")
		fmt.Fprintf(w, "# TYPE cpackd_cache_persist_restored_entries gauge\n")
		fmt.Fprintf(w, "cpackd_cache_persist_restored_entries %d\n", ss.RestoredEntries)
		fmt.Fprintf(w, "# HELP cpackd_cache_persist_replayed_bytes Log and snapshot bytes replayed at startup.\n")
		fmt.Fprintf(w, "# TYPE cpackd_cache_persist_replayed_bytes gauge\n")
		fmt.Fprintf(w, "cpackd_cache_persist_replayed_bytes %d\n", ss.BytesReplayed)
		fmt.Fprintf(w, "# HELP cpackd_cache_persist_records_skipped_total Persisted records rejected during recovery.\n")
		fmt.Fprintf(w, "# TYPE cpackd_cache_persist_records_skipped_total counter\n")
		fmt.Fprintf(w, "cpackd_cache_persist_records_skipped_total %d\n", ss.RecordsSkipped)
		fmt.Fprintf(w, "# HELP cpackd_cache_persist_tail_truncations_total Torn log tails truncated during recovery.\n")
		fmt.Fprintf(w, "# TYPE cpackd_cache_persist_tail_truncations_total counter\n")
		fmt.Fprintf(w, "cpackd_cache_persist_tail_truncations_total %d\n", ss.TailTruncations)
		fmt.Fprintf(w, "# HELP cpackd_cache_persist_appends_total Entries appended to the cache log.\n")
		fmt.Fprintf(w, "# TYPE cpackd_cache_persist_appends_total counter\n")
		fmt.Fprintf(w, "cpackd_cache_persist_appends_total %d\n", ss.Appends)
		fmt.Fprintf(w, "# HELP cpackd_cache_persist_append_errors_total Cache log append failures.\n")
		fmt.Fprintf(w, "# TYPE cpackd_cache_persist_append_errors_total counter\n")
		fmt.Fprintf(w, "cpackd_cache_persist_append_errors_total %d\n", ss.AppendErrors)
		fmt.Fprintf(w, "# HELP cpackd_cache_persist_compactions_total Snapshot compactions completed.\n")
		fmt.Fprintf(w, "# TYPE cpackd_cache_persist_compactions_total counter\n")
		fmt.Fprintf(w, "cpackd_cache_persist_compactions_total %d\n", ss.Compactions)
		fmt.Fprintf(w, "# HELP cpackd_cache_persist_log_bytes Current cache log size.\n")
		fmt.Fprintf(w, "# TYPE cpackd_cache_persist_log_bytes gauge\n")
		fmt.Fprintf(w, "cpackd_cache_persist_log_bytes %d\n", ss.LogBytes)
		fmt.Fprintf(w, "# HELP cpackd_cache_persist_snapshot_bytes Last compacted snapshot size.\n")
		fmt.Fprintf(w, "# TYPE cpackd_cache_persist_snapshot_bytes gauge\n")
		fmt.Fprintf(w, "cpackd_cache_persist_snapshot_bytes %d\n", ss.SnapshotBytes)
	}

	if tenants := m.tenantNames(); len(tenants) > 0 {
		fmt.Fprintf(w, "# HELP cpackd_tenant_requests_total Requests served, by tenant and status code.\n")
		fmt.Fprintf(w, "# TYPE cpackd_tenant_requests_total counter\n")
		for _, id := range tenants {
			codes := m.tenant(id).codes()
			sorted := make([]int, 0, len(codes))
			for c := range codes {
				sorted = append(sorted, c)
			}
			sort.Ints(sorted)
			for _, c := range sorted {
				fmt.Fprintf(w, "cpackd_tenant_requests_total{tenant=%q,code=\"%d\"} %d\n", id, c, codes[c])
			}
		}
		fmt.Fprintf(w, "# HELP cpackd_tenant_bytes_total Request and response payload bytes, by tenant.\n")
		fmt.Fprintf(w, "# TYPE cpackd_tenant_bytes_total counter\n")
		for _, id := range tenants {
			t := m.tenant(id)
			fmt.Fprintf(w, "cpackd_tenant_bytes_total{tenant=%q,direction=\"in\"} %d\n", id, t.bytesIn.value())
			fmt.Fprintf(w, "cpackd_tenant_bytes_total{tenant=%q,direction=\"out\"} %d\n", id, t.bytesOut.value())
		}
		fmt.Fprintf(w, "# HELP cpackd_tenant_limited_total Requests denied per tenant, by reason (rate, quota, queue).\n")
		fmt.Fprintf(w, "# TYPE cpackd_tenant_limited_total counter\n")
		for _, id := range tenants {
			limited := m.tenant(id).limitedByReason()
			reasons := make([]string, 0, len(limited))
			for reason := range limited {
				reasons = append(reasons, reason)
			}
			sort.Strings(reasons)
			for _, reason := range reasons {
				fmt.Fprintf(w, "cpackd_tenant_limited_total{tenant=%q,reason=%q} %d\n", id, reason, limited[reason])
			}
		}
	}
	fmt.Fprintf(w, "# HELP cpackd_auth_failures_total Requests rejected 401, by auth kind.\n")
	fmt.Fprintf(w, "# TYPE cpackd_auth_failures_total counter\n")
	fmt.Fprintf(w, "cpackd_auth_failures_total{kind=\"api\"} %d\n", m.authFailures.value())
	fmt.Fprintf(w, "cpackd_auth_failures_total{kind=\"internal\"} %d\n", m.internalAuthFailures.value())

	fmt.Fprintf(w, "# HELP cpackd_queue_depth Jobs queued but not yet running, by pool.\n")
	fmt.Fprintf(w, "# TYPE cpackd_queue_depth gauge\n")
	fmt.Fprintf(w, "cpackd_queue_depth{pool=\"light\"} %d\n", s.light.depth())
	fmt.Fprintf(w, "cpackd_queue_depth{pool=\"heavy\"} %d\n", s.heavy.depth())
	fmt.Fprintf(w, "# HELP cpackd_tenant_queue_depth Queued jobs per tenant, by pool (backlogged tenants only).\n")
	fmt.Fprintf(w, "# TYPE cpackd_tenant_queue_depth gauge\n")
	for _, p := range []*pool{s.light, s.heavy} {
		depths := p.tenantDepths()
		ids := make([]string, 0, len(depths))
		for id := range depths {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Fprintf(w, "cpackd_tenant_queue_depth{tenant=%q,pool=%q} %d\n", id, p.name, depths[id])
		}
	}

	fmt.Fprintf(w, "# HELP cpackd_requests_shed_total Requests rejected with 429 because a pool was saturated.\n")
	fmt.Fprintf(w, "# TYPE cpackd_requests_shed_total counter\n")
	fmt.Fprintf(w, "cpackd_requests_shed_total %d\n", s.metrics.shed.value())
	fmt.Fprintf(w, "# HELP cpackd_request_timeouts_total Requests that exceeded their deadline.\n")
	fmt.Fprintf(w, "# TYPE cpackd_request_timeouts_total counter\n")
	fmt.Fprintf(w, "cpackd_request_timeouts_total %d\n", s.metrics.timeouts.value())
}

// varsSnapshot is the /debug/vars document: the expvar JSON shape
// (cmdline + memstats) plus the cpackd application metrics, rendered
// without touching the process-global expvar registry so multiple servers
// can coexist in one process (tests spin several up).
type varsSnapshot struct {
	Cmdline  []string         `json:"cmdline"`
	MemStats runtime.MemStats `json:"memstats"`
	Cpackd   appVars          `json:"cpackd"`
}

type appVars struct {
	UptimeSeconds float64                 `json:"uptime_seconds"`
	Endpoints     map[string]endpointVars `json:"endpoints"`
	Cache         cacheStats              `json:"cache"`
	CacheStore    *storeStats             `json:"cache_store,omitempty"`
	Queues        map[string]int          `json:"queue_depth"`
	Shed          uint64                  `json:"requests_shed"`
	Timeouts      uint64                  `json:"request_timeouts"`
	Coalesced     uint64                  `json:"compress_coalesced"`
	Stages        map[string]histSnapshot `json:"stages,omitempty"`
	Traces        uint64                  `json:"traces_recorded"`
	Peer          *peerVars               `json:"peer,omitempty"`
	Tenants       map[string]tenantVars   `json:"tenants,omitempty"`
	AuthFail      map[string]uint64       `json:"auth_failures,omitempty"`
}

// tenantVars is the per-tenant section of /debug/vars.
type tenantVars struct {
	ByCode      map[string]uint64 `json:"requests_by_code"`
	Limited     map[string]uint64 `json:"limited_by_reason,omitempty"`
	BytesIn     uint64            `json:"bytes_in"`
	BytesOut    uint64            `json:"bytes_out"`
	WindowBytes int64             `json:"quota_window_bytes"`
}

// peerVars is the warm-tier section of /debug/vars.
type peerVars struct {
	Self       string            `json:"self"`
	Members    []string          `json:"members"`
	RingEpoch  uint64            `json:"ring_epoch"`
	Membership []peer.MemberInfo `json:"membership"`
	Hits       uint64            `json:"hits"`
	Misses     uint64            `json:"misses"`
	Errors     uint64            `json:"errors"`
	AEPasses   uint64            `json:"antientropy_passes"`
	ReplQueue  int               `json:"repl_queue_depth"`
	ReplOldest float64           `json:"repl_queue_age_seconds"`
	Cluster    peer.Stats        `json:"cluster"`
	Breakers   []peer.PeerHealth `json:"breakers"`
}

type endpointVars struct {
	ByCode   map[string]uint64 `json:"requests_by_code"`
	Latency  histSnapshot      `json:"latency"`
	BytesIn  uint64            `json:"bytes_in"`
	BytesOut uint64            `json:"bytes_out"`
}

func (s *Server) handleVars(w http.ResponseWriter, r *http.Request) {
	snap := varsSnapshot{
		Cmdline: os.Args,
		Cpackd: appVars{
			UptimeSeconds: time.Since(s.metrics.start).Seconds(),
			Endpoints:     make(map[string]endpointVars),
			Cache:         s.cache.stats(),
			Queues:        map[string]int{"light": s.light.depth(), "heavy": s.heavy.depth()},
			Shed:          s.metrics.shed.value(),
			Timeouts:      s.metrics.timeouts.value(),
			Coalesced:     s.metrics.coalesced.value(),
		},
	}
	if st := s.cache.store; st != nil {
		ss := st.statsSnapshot()
		snap.Cpackd.CacheStore = &ss
	}
	if c := s.cluster; c != nil {
		snap.Cpackd.Peer = &peerVars{
			Self:       c.Self(),
			Members:    c.Members(),
			RingEpoch:  c.RingEpoch(),
			Membership: c.MembershipView(),
			Hits:       s.metrics.peerHits.value(),
			Misses:     s.metrics.peerMisses.value(),
			Errors:     s.metrics.peerErrors.value(),
			AEPasses:   s.metrics.aePasses.value(),
			ReplQueue:  c.ReplQueueDepth(),
			ReplOldest: c.ReplQueueOldestAge().Seconds(),
			Cluster:    c.Stats(),
			Breakers:   c.Health(),
		}
	}
	if names := s.metrics.stageNames(); len(names) > 0 {
		snap.Cpackd.Stages = make(map[string]histSnapshot, len(names))
		for _, n := range names {
			snap.Cpackd.Stages[n] = s.metrics.stage(n).snapshot()
		}
	}
	if names := s.metrics.tenantNames(); len(names) > 0 {
		snap.Cpackd.Tenants = make(map[string]tenantVars, len(names))
		now := time.Now()
		for _, id := range names {
			t := s.metrics.tenant(id)
			codes := make(map[string]uint64)
			for c, n := range t.codes() {
				codes[strconv.Itoa(c)] = n
			}
			snap.Cpackd.Tenants[id] = tenantVars{
				ByCode:      codes,
				Limited:     t.limitedByReason(),
				BytesIn:     t.bytesIn.value(),
				BytesOut:    t.bytesOut.value(),
				WindowBytes: s.tenants.WindowBytes(id, now),
			}
		}
	}
	snap.Cpackd.AuthFail = map[string]uint64{
		"api":      s.metrics.authFailures.value(),
		"internal": s.metrics.internalAuthFailures.value(),
	}
	snap.Cpackd.Traces = s.tracer.Total()
	runtime.ReadMemStats(&snap.MemStats)
	for _, name := range s.metrics.endpointNames() {
		e := s.metrics.endpoint(name)
		codes := make(map[string]uint64)
		for c, n := range e.codes() {
			codes[strconv.Itoa(c)] = n
		}
		snap.Cpackd.Endpoints[name] = endpointVars{
			ByCode:   codes,
			Latency:  e.latency.snapshot(),
			BytesIn:  e.bytesIn.value(),
			BytesOut: e.bytesOut.value(),
		}
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(snap)
}
