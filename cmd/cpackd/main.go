// Command cpackd serves the CodePack codec and the paper's timing
// simulator over HTTP: compress, decompress, verify and simulate requests
// plus the six calibrated benchmark workloads, with a content-addressed
// compression cache, bounded worker pools and /metrics observability.
//
// Usage:
//
//	cpackd [-addr :8321] [-light-workers N] [-heavy-workers N] ...
//
// The daemon drains gracefully on SIGINT/SIGTERM: the listener stops, in
// flight requests and their pooled work complete (up to -drain-timeout),
// then the process exits. See docs/SERVER.md for the API contract.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"codepack/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cpackd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr         = flag.String("addr", ":8321", "listen address")
		lightWorkers = flag.Int("light-workers", 0, "codec worker goroutines (0 = auto)")
		lightQueue   = flag.Int("light-queue", 0, "codec queue capacity (0 = default, <0 none)")
		heavyWorkers = flag.Int("heavy-workers", 0, "simulation worker goroutines (0 = auto)")
		heavyQueue   = flag.Int("heavy-queue", 0, "simulation queue capacity (0 = default, <0 none)")
		cacheEntries = flag.Int("cache", 0, "compression cache entries (0 = default, <0 disable)")
		maxInstr     = flag.Uint64("max-instr", 0, "per-request instruction budget cap (0 = default)")
		timeout      = flag.Duration("timeout", 0, "per-request deadline (0 = default)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "shutdown drain deadline")
		logJSON      = flag.Bool("log-json", false, "emit JSON logs instead of text")
		logLevel     = flag.String("log-level", "info", "log level: debug, info, warn, error")
	)
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		return fmt.Errorf("bad -log-level: %w", err)
	}
	opts := &slog.HandlerOptions{Level: level}
	var handler slog.Handler = slog.NewTextHandler(os.Stderr, opts)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, opts)
	}
	log := slog.New(handler)

	s := server.New(server.Config{
		LightWorkers:   *lightWorkers,
		LightQueue:     *lightQueue,
		HeavyWorkers:   *heavyWorkers,
		HeavyQueue:     *heavyQueue,
		CacheEntries:   *cacheEntries,
		MaxInstr:       *maxInstr,
		RequestTimeout: *timeout,
		Logger:         log,
	})

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Info("cpackd listening", "addr", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		return err // listener failed before any signal
	case <-ctx.Done():
	}

	log.Info("shutting down: draining in-flight requests", "timeout", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Warn("shutdown incomplete", "err", err)
	}
	// HTTP requests are done (or abandoned); now drain the worker pools.
	s.Close()
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Info("cpackd stopped")
	return nil
}
