package loadgen

import (
	"fmt"
	"iter"
	"math/rand"

	"codepack/internal/workload"
)

// Bench tenant identities. cmd/cpackbench registers these in its
// in-process server's tenant registry so the scenario's keys resolve;
// against an external target, configure the same ids/keys in the
// -tenants file (see docs/SERVER.md).
const (
	BenchTenantLight = "light"
	BenchTenantHeavy = "heavy"

	BenchTenantLightKey = "bench-light-2f8a1c90"
	BenchTenantHeavyKey = "bench-heavy-7d43be12"
)

// --- tenants -------------------------------------------------------------

type tenants struct {
	corpus     int     // the light tenant's hot working set
	heavyFrac  float64 // fraction of arrivals belonging to the heavy tenant
	heavyBench string  // suite benchmark the heavy tenant simulates
}

// benchSimulateBody is a simulate request naming a calibrated suite
// benchmark (which runs to its instruction budget) instead of inline asm.
type benchSimulateBody struct {
	Benchmark string `json:"benchmark"`
	Model     string `json:"model"`
	MaxInstr  uint64 `json:"max_instr"`
}

// newTenants replays two equal-weight tenants at a 10:1 offered-load
// skew. The heavy tenant alternates unique-digest compressions (zero
// cache reuse) with simulate calls, occupying both pools; the light
// tenant sends cheap cache-friendly compressions over a small hot set.
// Under weighted-fair admission the heavy tenant's overload must shed
// onto itself — the light tenant's p99 and error rate are the proof.
func newTenants() tenants {
	return tenants{corpus: 16, heavyFrac: 10.0 / 11.0, heavyBench: "go"}
}

func (tenants) Name() string { return "tenants" }

func (s tenants) Describe() string {
	return fmt.Sprintf("two equal-weight tenants at 10:1 offered load: the heavy tenant "+
		"thrashes unique digests and the heavy pool while the light tenant repeats a %d-program "+
		"hot set — fair admission must keep the light tenant's p99 flat and shed the heavy "+
		"tenant via its own 429s", s.corpus)
}

func (s tenants) Tenants() map[string]TenantSpec {
	return map[string]TenantSpec{
		BenchTenantLight: {Weight: 1, Key: BenchTenantLightKey},
		BenchTenantHeavy: {Weight: 1, Key: BenchTenantHeavyKey},
	}
}

func (s tenants) Requests(seed int64) iter.Seq[Request] {
	return func(yield func(Request) bool) {
		lightHdr := map[string]string{"Authorization": "Bearer " + BenchTenantLightKey}
		heavyHdr := map[string]string{"Authorization": "Bearer " + BenchTenantHeavyKey}
		bodies := compressBodies(seed, s.corpus)
		rng := rand.New(rand.NewSource(seed))
		// Corpus programs halt within microseconds whatever the budget, so
	// the heavy tenant simulates a calibrated suite benchmark instead:
	// those run to their committed-instruction budget, pinning a heavy
	// worker for real milliseconds per call, and the 10:1 skew genuinely
	// saturates the heavy pool instead of breezing through it.
	const heavyBudget = 40 * simulateBudget
	uniq := s.corpus // heavy's unique-digest ids start past the hot set
		for i := 0; ; i++ {
			var req Request
			if rng.Float64() < s.heavyFrac {
				req.Tenant, req.Header = BenchTenantHeavy, heavyHdr
				if i%2 == 0 {
					req.Op = "compress"
					req.Key = progKey(uniq)
					req.Body = mustBody(compressBody{Asm: workload.CorpusSource(seed, uniq)})
					uniq++
				} else {
					req.Op = "simulate"
					req.Key = "bench-" + s.heavyBench
					req.Body = mustBody(benchSimulateBody{
						Benchmark: s.heavyBench, Model: "codepack", MaxInstr: heavyBudget})
				}
			} else {
				id := rng.Intn(s.corpus)
				req = Request{Op: "compress", Key: progKey(id), Body: bodies[id],
					Tenant: BenchTenantLight, Header: lightHdr}
			}
			if !yield(req) {
				return
			}
		}
	}
}
