package trace

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// DefaultCapacity is the trace ring buffer's default size.
const DefaultCapacity = 256

// SpanData is one completed span as it appears in a serialized trace.
type SpanData struct {
	ID         string         `json:"id"`
	Parent     string         `json:"parent,omitempty"`
	Name       string         `json:"name"`
	Start      time.Time      `json:"start"`
	DurationMS float64        `json:"duration_ms"`
	Attrs      map[string]any `json:"attrs,omitempty"`

	seq int // start order within the trace; spans are sorted by it
}

// Trace is one completed request (or background task): its ID, the
// endpoint it entered through, the remote parent span (when the request
// arrived on a peer hop) and every completed span, in start order. The
// root span is always Spans[0].
type Trace struct {
	TraceID      string     `json:"trace_id"`
	Endpoint     string     `json:"endpoint"`
	RemoteParent string     `json:"remote_parent,omitempty"`
	Start        time.Time  `json:"start"`
	DurationMS   float64    `json:"duration_ms"`
	Spans        []SpanData `json:"spans"`
}

// Tree renders the trace's span hierarchy as an indented multi-line
// string — the shape logged for slow requests.
func (tr Trace) Tree() string {
	children := make(map[string][]SpanData)
	ids := make(map[string]bool, len(tr.Spans))
	for _, s := range tr.Spans {
		ids[s.ID] = true
	}
	var roots []SpanData
	for _, s := range tr.Spans {
		if s.Parent != "" && ids[s.Parent] {
			children[s.Parent] = append(children[s.Parent], s)
		} else {
			roots = append(roots, s)
		}
	}
	var b strings.Builder
	var walk func(s SpanData, depth int)
	walk = func(s SpanData, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		fmt.Fprintf(&b, "%s %.2fms", s.Name, s.DurationMS)
		if len(s.Attrs) > 0 {
			keys := make([]string, 0, len(s.Attrs))
			for k := range s.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(&b, " %s=%v", k, s.Attrs[k])
			}
		}
		b.WriteByte('\n')
		for _, c := range children[s.ID] {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
	return strings.TrimRight(b.String(), "\n")
}

// TracerConfig parameterizes a Tracer; the zero value works.
type TracerConfig struct {
	// Capacity bounds the completed-trace ring buffer
	// (0 = DefaultCapacity).
	Capacity int
	// OnSpanEnd, when non-nil, observes every completed span (stage
	// histograms hook in here); traceID identifies the trace the span
	// belongs to, so histogram buckets can carry exemplars. Called
	// outside the tracer's lock; must be safe for concurrent use.
	OnSpanEnd func(name string, d time.Duration, traceID string)
	// OnTraceDone, when non-nil, observes every completed trace (slow
	// logging hooks in here). Called outside the tracer's lock.
	OnTraceDone func(Trace)
}

// Tracer collects completed traces into a bounded in-memory ring
// buffer, newest overwriting oldest. It is safe for concurrent use; a
// nil *Tracer is a valid no-op tracer.
type Tracer struct {
	capacity    int
	onSpanEnd   func(string, time.Duration, string)
	onTraceDone func(Trace)

	mu    sync.Mutex
	ring  []Trace
	total uint64 // traces ever recorded; the write cursor is total % capacity
}

// NewTracer builds a Tracer with the given config.
func NewTracer(cfg TracerConfig) *Tracer {
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultCapacity
	}
	return &Tracer{
		capacity:    cfg.Capacity,
		onSpanEnd:   cfg.OnSpanEnd,
		onTraceDone: cfg.OnTraceDone,
	}
}

// StartTrace begins a new trace: a root span named rootName under
// endpoint, parented (for cross-node stitching) on remoteParent when
// the request arrived on a peer hop. The returned context carries the
// root span; ending the root completes the trace. On a nil tracer both
// returns are pass-throughs (ctx, nil).
func (t *Tracer) StartTrace(ctx context.Context, traceID, remoteParent, endpoint, rootName string, attrs ...Attr) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	at := &activeTrace{tracer: t, id: traceID, endpoint: endpoint, remote: remoteParent, start: time.Now()}
	root := at.newSpan(rootName, remoteParent, attrs)
	at.root = root
	return ContextWithSpan(ctx, root), root
}

// record pushes a completed trace into the ring.
func (t *Tracer) record(tr Trace) {
	t.mu.Lock()
	if len(t.ring) < t.capacity {
		t.ring = append(t.ring, tr)
	} else {
		t.ring[t.total%uint64(t.capacity)] = tr
	}
	t.total++
	t.mu.Unlock()
	if t.onTraceDone != nil {
		t.onTraceDone(tr)
	}
}

// Total returns the number of traces ever recorded (evicted ones
// included).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Evicted returns how many recorded traces have been overwritten by
// newer ones — the ring's loss counter, surfaced in /debug/vars so an
// undersized -trace-ring is visible.
func (t *Tracer) Evicted() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total - uint64(len(t.ring))
}

// Capacity returns the ring's configured size.
func (t *Tracer) Capacity() int {
	if t == nil {
		return 0
	}
	return t.capacity
}

// Recent returns completed traces newest-first, keeping only those at
// least minDur long and (when endpoint != "") entered through endpoint.
// limit <= 0 means no limit beyond the ring capacity.
func (t *Tracer) Recent(minDur time.Duration, endpoint string, limit int) []Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Trace, 0, len(t.ring))
	minMS := float64(minDur) / float64(time.Millisecond)
	for i := 0; i < len(t.ring); i++ {
		idx := (t.total - 1 - uint64(i)) % uint64(t.capacity)
		tr := t.ring[idx]
		if tr.DurationMS < minMS {
			continue
		}
		if endpoint != "" && tr.Endpoint != endpoint {
			continue
		}
		out = append(out, tr)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// activeTrace accumulates a trace's completed spans until its root span
// ends.
type activeTrace struct {
	tracer   *Tracer
	id       string
	endpoint string
	remote   string
	start    time.Time
	root     *Span

	mu    sync.Mutex
	seq   int
	spans []SpanData
	done  bool
}

func (at *activeTrace) newSpan(name, parent string, attrs []Attr) *Span {
	at.mu.Lock()
	at.seq++
	seq := at.seq
	at.mu.Unlock()
	return &Span{at: at, seq: seq, id: newSpanID(), parent: parent, name: name, start: time.Now(), attrs: attrs}
}

// finish records one ended span; ending the root finalizes the trace.
func (at *activeTrace) finish(s *Span, dur time.Duration, attrs []Attr) {
	if hook := at.tracer.onSpanEnd; hook != nil {
		hook(s.name, dur, at.id)
	}
	data := SpanData{
		ID:         s.id,
		Parent:     s.parent,
		Name:       s.name,
		Start:      s.start,
		DurationMS: float64(dur) / float64(time.Millisecond),
		seq:        s.seq,
	}
	if len(attrs) > 0 {
		data.Attrs = make(map[string]any, len(attrs))
		for _, a := range attrs {
			data.Attrs[a.Key] = a.Value
		}
	}
	at.mu.Lock()
	if at.done {
		// A straggler ending after the root: the trace is already
		// sealed; the span still fed the stage histogram above.
		at.mu.Unlock()
		return
	}
	at.spans = append(at.spans, data)
	if s != at.root {
		at.mu.Unlock()
		return
	}
	at.done = true
	spans := at.spans
	at.mu.Unlock()

	sort.Slice(spans, func(i, j int) bool { return spans[i].seq < spans[j].seq })
	at.tracer.record(Trace{
		TraceID:      at.id,
		Endpoint:     at.endpoint,
		RemoteParent: at.remote,
		Start:        at.start,
		DurationMS:   float64(dur) / float64(time.Millisecond),
		Spans:        spans,
	})
}
