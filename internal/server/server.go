// Package server implements cpackd, the CodePack compression service: an
// HTTP front end over the codec and the paper's timing simulator.
//
// The service is built for sustained concurrent traffic:
//
//   - Two bounded worker pools — light (compress, decompress, verify,
//     bench metadata) and heavy (simulate) — so a burst of long
//     simulations cannot starve cheap codec calls. A full queue sheds
//     load with 429 + Retry-After instead of queueing unboundedly.
//
//   - A content-addressed LRU cache (SHA-256 of the marshalled image ->
//     compressed form): the expensive dictionary build runs once per
//     distinct program, repeats are served from memory. With CacheDir
//     set the cache is durable: entries append to a CRC-framed log,
//     compacted snapshots are cut in the background, and a restart
//     replays both (tolerating torn tails and corrupt records) so a
//     warm cache survives deploys. See docs/SERVER.md "Persistence".
//
//   - Observability: GET /metrics (Prometheus text format) and
//     GET /debug/vars (expvar-style JSON) publish request counts by
//     status, cache hit/miss/eviction rates, queue depths, bytes in/out
//     and per-endpoint latency histograms; every request emits one
//     structured access-log line via log/slog.
//
//   - Graceful shutdown: Close drains the pools so admitted work
//     finishes; cmd/cpackd pairs it with http.Server.Shutdown on SIGTERM.
//
//   - A shared warm tier: with Config.Peer set, instances form a
//     consistent-hash cluster over the content digests. A local miss
//     first asks the digest's ring owner (internal/peer) before paying
//     for a compression, new entries replicate asynchronously to their
//     owners, and a restart offers its persisted entries back to the
//     ring. Peer-served payloads are verified word-for-word against the
//     requested program before they are trusted, so a misbehaving peer
//     can never poison a cache. See docs/SERVER.md "Replication".
//
// See docs/SERVER.md for the API contract.
package server

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"codepack"
	"codepack/internal/harness"
	"codepack/internal/obs"
	"codepack/internal/peer"
	"codepack/internal/tenant"
	"codepack/internal/trace"
)

// Defaults for Config zero values.
const (
	DefaultCacheEntries   = 256
	DefaultMaxInstr       = 8_000_000
	DefaultMaxBodyBytes   = 32 << 20
	DefaultRequestTimeout = 60 * time.Second
	DefaultTraceSlow      = 500 * time.Millisecond
)

// Config parameterizes a Server. The zero value serves with sensible
// defaults.
type Config struct {
	// LightWorkers/LightQueue size the pool serving compress, decompress,
	// verify and bench-metadata requests; HeavyWorkers/HeavyQueue the
	// pool serving simulate. Zero picks a default scaled to GOMAXPROCS;
	// negative queue sizes mean "no queue" (admit only onto an idle
	// worker).
	LightWorkers int
	LightQueue   int
	HeavyWorkers int
	HeavyQueue   int

	// CacheEntries caps the content-addressed compression cache
	// (0 = DefaultCacheEntries, negative disables caching).
	CacheEntries int

	// CacheDir, when non-empty, persists the compression cache there
	// (an append-only log plus compacted snapshots) and reloads it on
	// startup. Ignored when caching is disabled.
	CacheDir string

	// MaxInstr caps the committed-instruction budget a simulate request
	// may ask for (0 = DefaultMaxInstr).
	MaxInstr uint64

	// MaxBodyBytes caps request bodies (0 = DefaultMaxBodyBytes).
	MaxBodyBytes int64

	// RequestTimeout bounds a request end to end, queue time included
	// (0 = DefaultRequestTimeout, negative disables).
	RequestTimeout time.Duration

	// BenchMaxInstr is the per-run instruction budget of the shared
	// benchmark suite (0 = harness.DefaultMaxInstr).
	BenchMaxInstr uint64

	// Peer, when non-nil, joins this instance to a warm-tier cache
	// cluster (see internal/peer): Peer.Self is this instance's
	// advertised URL and Peer.Peers the other members. Ignored when
	// caching is disabled.
	Peer *peer.Config

	// TraceCapacity bounds the completed-trace ring buffer served at
	// GET /debug/trace/recent (0 = trace.DefaultCapacity, negative
	// disables span tracing entirely).
	TraceCapacity int

	// TraceSlow is the total duration above which a completed request's
	// span tree is logged in full (0 = DefaultTraceSlow, negative
	// disables slow-trace logging).
	TraceSlow time.Duration

	// Tenants is the multi-tenant isolation tier: API keys, per-tenant
	// limits, fair-scheduling weights and the peer-signing cluster key
	// (see internal/tenant). Nil serves in open mode — anonymous
	// callers admitted unlimited, internal endpoints unsigned —
	// preserving the pre-tenancy behaviour.
	Tenants *tenant.Registry

	// SLO, when non-nil, is the burn-rate engine (internal/obs) every
	// finished public request is recorded into. The server starts its
	// evaluation loop, serves its status at GET /debug/slo and as
	// cpackd_slo_* metrics, and triggers a profile capture when an
	// objective pages. Ownership transfers: Close stops the engine.
	SLO *obs.Engine

	// Profile, when non-nil, enables triggered continuous profiling:
	// CPU/heap/goroutine snapshots land in Profile.Dir (a bounded
	// on-disk ring served at /debug/profiles/ on the debug listener)
	// whenever an SLO pages or a slow trace trips TraceSlow.
	Profile *obs.ProfilerConfig

	// Logger receives access and lifecycle logs (nil = slog.Default()).
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	procs := runtime.GOMAXPROCS(0)
	if c.LightWorkers == 0 {
		c.LightWorkers = max(2, procs/2)
	}
	if c.LightQueue == 0 {
		c.LightQueue = 64
	} else if c.LightQueue < 0 {
		c.LightQueue = 0
	}
	if c.HeavyWorkers == 0 {
		c.HeavyWorkers = max(1, procs-1)
	}
	if c.HeavyQueue == 0 {
		c.HeavyQueue = 2 * c.HeavyWorkers
	} else if c.HeavyQueue < 0 {
		c.HeavyQueue = 0
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = DefaultCacheEntries
	}
	if c.MaxInstr == 0 {
		c.MaxInstr = DefaultMaxInstr
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = DefaultRequestTimeout
	}
	if c.TraceSlow == 0 {
		c.TraceSlow = DefaultTraceSlow
	}
	if c.Tenants == nil {
		c.Tenants = tenant.NewRegistry(nil)
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// Server is the cpackd HTTP service. Create with New, expose via Handler,
// and Close on shutdown to drain in-flight work.
type Server struct {
	cfg     Config
	log     *slog.Logger
	light   *pool
	heavy   *pool
	cache    *compCache
	suite    *harness.Suite
	metrics  *metrics
	tracer   *trace.Tracer
	tenants  *tenant.Registry
	slo      *obs.Engine
	profiler *obs.Profiler
	mux      *http.ServeMux

	// Warm-tier state (nil cluster = standalone instance).
	cluster    *peer.Cluster
	flights    flightGroup
	peerCancel context.CancelFunc
	aeDone     chan struct{}

	// testHook, when set (tests only), runs inside every pooled job
	// before the real work, letting tests hold workers busy
	// deterministically.
	testHook func(op string)
}

// New builds a Server and starts its worker pools. With Config.CacheDir
// set it also restores the persisted compression cache (tolerating any
// corruption it finds there) and starts the background compactor; the
// only error paths are filesystem ones — opening the cache directory or
// its log for writing.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	cache := newCompCache(cfg.CacheEntries)
	if cfg.CacheDir != "" && cfg.CacheEntries > 0 {
		st, recovered, err := openStore(cfg.CacheDir, cfg.Logger)
		if err != nil {
			return nil, fmt.Errorf("server: open cache store: %w", err)
		}
		restored := cache.attachStore(st, recovered, cfg.Logger)
		ss := st.statsSnapshot()
		cfg.Logger.Info("compression cache restored",
			"dir", cfg.CacheDir,
			"entries_restored", restored,
			"bytes_replayed", ss.BytesReplayed,
			"records_skipped", ss.RecordsSkipped,
			"tail_truncations", ss.TailTruncations,
		)
	}
	s := &Server{
		cfg:     cfg,
		log:     cfg.Logger,
		light:   newPool("light", cfg.LightWorkers, cfg.LightQueue),
		heavy:   newPool("heavy", cfg.HeavyWorkers, cfg.HeavyQueue),
		cache:   cache,
		suite:   harness.NewSuite(cfg.BenchMaxInstr),
		metrics: newMetrics(),
		tenants: cfg.Tenants,
		mux:     http.NewServeMux(),
	}
	if cfg.TraceCapacity >= 0 {
		s.tracer = trace.NewTracer(trace.TracerConfig{
			Capacity:    cfg.TraceCapacity,
			OnSpanEnd:   s.metrics.observeStage,
			OnTraceDone: s.traceDone,
		})
	}
	if cfg.Profile != nil {
		p, err := obs.NewProfiler(*cfg.Profile)
		if err != nil {
			s.light.close()
			s.heavy.close()
			s.cache.close()
			return nil, fmt.Errorf("server: profiler: %w", err)
		}
		s.profiler = p
	}
	if cfg.SLO != nil {
		s.slo = cfg.SLO
		// A paging objective is the trigger for evidence capture: snapshot
		// the process before anyone has to ask what it was doing.
		s.slo.SetOnAlert(func(a obs.Alert) {
			if a.To == obs.StatePage {
				s.profiler.Trigger("slo_page_" + a.SLO)
			}
		})
		s.slo.Start()
	}
	s.mux.Handle("POST /v1/compress", s.instrument("compress", s.handleCompress))
	s.mux.Handle("POST /v1/decompress", s.instrument("decompress", s.handleDecompress))
	s.mux.Handle("POST /v1/verify", s.instrument("verify", s.handleVerify))
	s.mux.Handle("POST /v1/simulate", s.instrument("simulate", s.handleSimulate))
	s.mux.Handle("GET /v1/bench/{name}", s.instrument("bench", s.handleBench))
	s.mux.Handle("GET /v1/bench", s.instrument("bench_list", s.handleBenchList))
	s.mux.Handle("GET /metrics", http.HandlerFunc(s.handleMetrics))
	s.mux.Handle("GET /debug/vars", http.HandlerFunc(s.handleVars))
	s.mux.Handle("GET /debug/trace/recent", http.HandlerFunc(s.handleTraceRecent))
	s.mux.Handle("GET /debug/slo", http.HandlerFunc(s.handleDebugSLO))
	s.mux.Handle("GET /debug/cluster", http.HandlerFunc(s.handleDebugCluster))
	s.mux.Handle("GET /healthz", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, "{\"status\":\"ok\"}\n")
	}))
	if cfg.Peer != nil {
		err := errors.New("peer replication requires the compression cache (CacheEntries > 0)")
		if cfg.CacheEntries > 0 {
			err = s.joinCluster(*cfg.Peer)
		}
		if err != nil {
			s.light.close()
			s.heavy.close()
			s.cache.close()
			s.slo.Stop()
			s.profiler.Close()
			return nil, fmt.Errorf("server: join peer cluster: %w", err)
		}
	}
	return s, nil
}

// joinCluster wires the warm tier: the membership layer and ring, the
// peer protocol endpoints, and the anti-entropy loop — one pass at
// startup offering every restored entry back to its ring owner, and one
// pass after every ring change so entries whose owner moved follow it.
func (s *Server) joinCluster(pc peer.Config) error {
	if pc.Logger == nil {
		pc.Logger = s.log
	}
	if pc.Tracer == nil {
		pc.Tracer = s.tracer
	}
	if pc.AuthKey == nil {
		// Outbound peer requests sign with the live cluster key, so a
		// SIGHUP key rotation applies to the next request without a
		// restart.
		pc.AuthKey = s.tenants.ClusterKey
	}
	aeCh := make(chan uint64, 1)
	pc.OnRingChange = func(epoch uint64, members []string) {
		s.metrics.ringChanges.add(1)
		select {
		case aeCh <- epoch:
		default: // a pass is already pending; it will see the newest ring
		}
	}
	cluster, err := peer.NewCluster(pc)
	if err != nil {
		return err
	}
	s.cluster = cluster
	h := peer.NewHandler(peerSource{s}, s.log)
	s.mux.Handle("GET "+peer.CachePathPrefix+"{digest}", s.instrumentInternal("peer_get", h.Get))
	s.mux.Handle("PUT "+peer.CachePathPrefix+"{digest}", s.instrumentInternal("peer_put", h.Put))
	s.mux.Handle("POST "+peer.OfferPath, s.instrumentInternal("peer_offer", h.Offer))
	s.mux.Handle("POST "+peer.JoinPath, s.instrumentInternal("peer_membership", cluster.HandleJoin))
	s.mux.Handle("POST "+peer.HeartbeatPath, s.instrumentInternal("peer_membership", cluster.HandleHeartbeat))
	s.mux.Handle("POST "+peer.LeavePath, s.instrumentInternal("peer_membership", cluster.HandleLeave))
	s.mux.Handle("GET "+peer.HealthPath, s.instrumentInternal("peer_health", s.handleInternalHealth))
	s.log.Info("joined peer cache cluster",
		"self", cluster.Self(), "seeds", len(cluster.Members())-1)

	ctx, cancel := context.WithCancel(context.Background())
	s.peerCancel = cancel
	s.aeDone = make(chan struct{})
	go s.antiEntropyLoop(ctx, aeCh)
	return nil
}

// antiEntropyLoop runs one offer/want pass at startup and one after
// every ring-change signal, so a membership change re-homes every
// locally held digest whose owner moved. Passes are serialized; signals
// arriving mid-pass coalesce into a single follow-up pass that sees the
// newest ring.
func (s *Server) antiEntropyLoop(ctx context.Context, trigger <-chan uint64) {
	defer close(s.aeDone)
	pass := func(reason string, epoch uint64) {
		digests := s.cache.keys()
		if len(digests) == 0 {
			return
		}
		// Each pass is its own background trace; the offer/put spans the
		// peer client opens land under it via the context.
		actx := ctx
		var root *trace.Span
		if s.tracer != nil {
			id := trace.NewID()
			actx = trace.WithID(actx, id)
			actx, root = s.tracer.StartTrace(actx, id, "", "antientropy", "antientropy",
				trace.String("reason", reason),
				trace.Int("digests", len(digests)))
			root.SetAttr("epoch", epoch)
		}
		s.cluster.AntiEntropy(actx, digests, func(d string) ([]byte, bool) {
			return s.cache.payload(d)
		})
		root.End()
		s.metrics.aePasses.add(1)
		st := s.cluster.Stats()
		s.log.Info("anti-entropy pass finished",
			"reason", reason,
			"ring_epoch", epoch,
			"local_digests", len(digests),
			"offered", st.OfferedDigests,
			"pushed", st.ReplicationsSent,
			"offer_errors", st.OfferErrors)
	}
	pass("startup", s.cluster.RingEpoch())
	for {
		select {
		case <-ctx.Done():
			return
		case epoch := <-trigger:
			pass("ring-change", epoch)
		}
	}
}

// peerSource adapts the compression cache to the peer protocol.
type peerSource struct{ s *Server }

func (ps peerSource) Payload(digest string) ([]byte, bool) {
	return ps.s.cache.payload(digest)
}

// Accept quarantines a replicated payload: it must parse as a
// compressed program now, and a local request must verify it against
// the actual program before it is ever served to a client.
func (ps peerSource) Accept(digest string, payload []byte) error {
	comp, err := codepack.UnmarshalCompressed("replicated", payload)
	if err != nil {
		return err
	}
	ps.s.cache.putReplicated(digest, comp)
	return nil
}

func (ps peerSource) Missing(digests []string) []string {
	var out []string
	for _, d := range digests {
		if !ps.s.cache.has(d) {
			out = append(out, d)
		}
	}
	return out
}

// Handler returns the root handler for the service.
func (s *Server) Handler() http.Handler { return s.mux }

// Close drains the worker pools — admitted jobs finish, new submissions
// fail with 503 — then flushes the persistent cache (final compacted
// snapshot + fsync) if one is configured. Call after http.Server.Shutdown
// so in-flight HTTP requests complete their pooled work first.
func (s *Server) Close() {
	if s.cluster != nil {
		// Graceful departure first, while the peer endpoints still
		// answer: hand every locally held digest to its post-departure
		// owner and announce the leave, so warm state survives the exit.
		lctx, lcancel := context.WithTimeout(context.Background(), DefaultRequestTimeout)
		s.cluster.Leave(lctx, s.cache.keys(), func(d string) ([]byte, bool) {
			return s.cache.payload(d)
		})
		lcancel()
	}
	if s.peerCancel != nil {
		s.peerCancel()
		<-s.aeDone
	}
	if s.cluster != nil {
		s.cluster.Close()
	}
	s.light.close()
	s.heavy.close()
	s.cache.close()
	s.slo.Stop()
	s.profiler.Close()
}

// --- API types -----------------------------------------------------------

// ProgramRef selects the program a request operates on; exactly one field
// must be set.
type ProgramRef struct {
	// Benchmark names one of the six calibrated workloads (GET /v1/bench
	// lists them).
	Benchmark string `json:"benchmark,omitempty"`
	// Asm is SS32 assembly source, assembled server-side.
	Asm string `json:"asm,omitempty"`
	// ImageB64 is a base64 (standard encoding) program image as produced
	// by (*Image).Marshal / `cpack compress` input format.
	ImageB64 string `json:"image_b64,omitempty"`
}

// CompressRequest is the body of POST /v1/compress.
type CompressRequest struct {
	ProgramRef
}

// CompressResponse is the body of a successful POST /v1/compress.
type CompressResponse struct {
	Name            string  `json:"name"`
	Digest          string  `json:"digest"` // content address (SHA-256 of the image)
	OriginalBytes   int     `json:"original_bytes"`
	CompressedBytes int     `json:"compressed_bytes"`
	Ratio           float64 `json:"ratio"`
	Cached          bool    `json:"cached"`
	CompressedB64   string  `json:"compressed_b64"`
}

// DecompressRequest is the body of POST /v1/decompress.
type DecompressRequest struct {
	// CompressedB64 is a base64 .cpk payload as produced by
	// (*Compressed).Marshal (the compressed_b64 field of a compress
	// response round-trips).
	CompressedB64 string `json:"compressed_b64"`
}

// DecompressResponse is the body of a successful POST /v1/decompress. The
// image carries only the text section: the .cpk format has no data
// segment or entry point.
type DecompressResponse struct {
	Instructions int    `json:"instructions"`
	TextBase     uint32 `json:"text_base"`
	ImageB64     string `json:"image_b64"`
}

// VerifyRequest is the body of POST /v1/verify.
type VerifyRequest struct {
	ProgramRef
}

// VerifyResponse is the body of a successful POST /v1/verify: the program
// compressed, round-tripped through the serialized form and compared
// word-for-word against the original text section.
type VerifyResponse struct {
	OK           bool    `json:"ok"`
	Digest       string  `json:"digest"`
	Instructions int     `json:"instructions"`
	Ratio        float64 `json:"ratio"`
	Cached       bool    `json:"cached"`
}

// SimulateRequest is the body of POST /v1/simulate.
type SimulateRequest struct {
	ProgramRef
	// Arch is a Table 2 machine preset: "1-issue", "4-issue" (default)
	// or "8-issue".
	Arch string `json:"arch,omitempty"`
	// Model is the fetch model: "native", "codepack" (baseline),
	// "optimized" (default) or "software".
	Model string `json:"model,omitempty"`
	// MaxInstr caps committed instructions (0 = suite default; clamped
	// to the server's configured maximum).
	MaxInstr uint64 `json:"max_instr,omitempty"`
}

// SimulateResponse is the body of a successful POST /v1/simulate.
type SimulateResponse struct {
	Program      string  `json:"program"`
	Arch         string  `json:"arch"`
	Model        string  `json:"model"`
	Instructions uint64  `json:"instructions"`
	Cycles       uint64  `json:"cycles"`
	IPC          float64 `json:"ipc"`
	IMissRate    float64 `json:"imiss_rate"`
	Ratio        float64 `json:"ratio,omitempty"`
	Cached       bool    `json:"cached"`
}

// BenchResponse is the body of GET /v1/bench/{name}: the calibrated
// workload's static characteristics and compression results.
type BenchResponse struct {
	Name            string  `json:"name"`
	TextBytes       int     `json:"text_bytes"`
	TargetDynamic   uint64  `json:"target_dynamic_instructions"`
	Digest          string  `json:"digest"`
	OriginalBytes   int     `json:"original_bytes"`
	CompressedBytes int     `json:"compressed_bytes"`
	Ratio           float64 `json:"ratio"`
}

// BenchListResponse is the body of GET /v1/bench.
type BenchListResponse struct {
	Benchmarks []string `json:"benchmarks"`
}

// errorResponse is the body of every non-2xx response.
type errorResponse struct {
	Error string `json:"error"`
}

// --- request plumbing ----------------------------------------------------

// httpError is a handler failure with its response status. retryAfter,
// when positive, is emitted as a Retry-After header (429 denials carry
// the shed tenant's own backoff).
type httpError struct {
	code       int
	msg        string
	retryAfter int
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) *httpError {
	return &httpError{code: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// statusWriter captures the status code and byte count of a response.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// countReader counts request-body bytes actually consumed.
type countReader struct {
	r io.ReadCloser
	n int64
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func (c *countReader) Close() error { return c.r.Close() }

// instrument wraps a public endpoint handler with tenant
// authentication and admission (API key -> 401, rate/quota -> 429 with
// the tenant's own Retry-After), the per-request deadline, the
// body-size cap, request-ID tracing, metrics recording (tenant
// labelled) and the structured access log.
func (s *Server) instrument(name string, h http.HandlerFunc) http.Handler {
	return s.instrumented(name, false, h)
}

// instrumentInternal is instrument for the /internal/v1/* node-to-node
// endpoints: instead of API-key auth it verifies the HMAC cluster
// signature (tenant.InternalHeader) when a cluster key is configured,
// and labels traffic with the reserved "internal" tenant.
func (s *Server) instrumentInternal(name string, h http.HandlerFunc) http.Handler {
	return s.instrumented(name, true, h)
}

func (s *Server) instrumented(name string, internal bool, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ctx := r.Context()
		if s.cfg.RequestTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
			defer cancel()
		}
		// Accept the caller's request ID (a peer or a tracing client) or
		// mint one; it is echoed on the response, logged, and forwarded
		// on any outbound peer call this request triggers.
		reqID := trace.Sanitize(r.Header.Get(trace.Header))
		if reqID == "" {
			reqID = trace.NewID()
		}
		ctx = trace.WithID(ctx, reqID)
		w.Header().Set(trace.Header, reqID)
		// Open the request's root span. A peer hop carries the sender's
		// span ID so the two nodes' traces stitch together; membership
		// heartbeats are exempt — tracing every gossip round would flush
		// real requests out of the ring.
		var root *trace.Span
		if name != "peer_membership" {
			remoteParent := trace.Sanitize(r.Header.Get(trace.SpanHeader))
			ctx, root = s.tracer.StartTrace(ctx, reqID, remoteParent, name, "handler",
				trace.String("endpoint", name))
		}
		body := &countReader{r: http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)}
		r = r.WithContext(ctx)
		r.Body = body
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}

		// Resolve the caller before any work: internal traffic by
		// cluster signature, public traffic by API key + admission.
		// Denied requests skip the handler but still flow through the
		// common metrics/span/log recording below, tenant-labelled.
		tenantID := tenant.AnonID
		if internal {
			tenantID = tenant.InternalID
			if herr := s.verifyInternalAuth(r); herr != nil {
				s.writeError(sw, herr)
			} else {
				h(sw, r)
			}
		} else {
			tn, herr := s.authenticate(r)
			if tn != nil {
				tenantID = tn.ID
			}
			if herr != nil {
				s.writeError(sw, herr)
			} else {
				r = r.WithContext(tenant.NewContext(r.Context(), tn))
				h(sw, r)
			}
		}

		root.SetAttr("tenant", tenantID)
		root.SetAttr("status", sw.code)
		root.End()
		dur := time.Since(start)
		s.metrics.endpoint(name).record(sw.code, body.n, sw.bytes, dur, reqID)
		s.metrics.tenant(tenantID).record(sw.code, body.n, sw.bytes)
		if !internal {
			s.tenants.AccountBytes(tenantID, body.n+sw.bytes, time.Now())
			s.slo.Record(name, tenantID, sw.code, dur)
		}
		s.log.LogAttrs(ctx, slog.LevelInfo, "request",
			slog.String("endpoint", name),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.String("request_id", reqID),
			slog.String("tenant", tenantID),
			slog.Int("status", sw.code),
			slog.Int64("bytes_in", body.n),
			slog.Int64("bytes_out", sw.bytes),
			slog.Duration("duration", dur),
		)
	})
}

// traceDone is the tracer's OnTraceDone hook: traces slower than the
// configured threshold are logged in full, span tree included, so a
// slow request explains itself without anyone re-driving it.
func (s *Server) traceDone(tr trace.Trace) {
	if s.cfg.TraceSlow <= 0 {
		return
	}
	if tr.DurationMS < float64(s.cfg.TraceSlow)/float64(time.Millisecond) {
		return
	}
	// A slow trace is the other evidence trigger besides an SLO page:
	// capture the process while whatever made it slow may still be going.
	s.profiler.Trigger("slow_trace_" + tr.Endpoint)
	s.log.Warn("slow trace",
		"trace_id", tr.TraceID,
		"endpoint", tr.Endpoint,
		"duration_ms", tr.DurationMS,
		"spans", len(tr.Spans),
		"tree", "\n"+tr.Tree())
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		code = http.StatusInternalServerError
		b = []byte(`{"error":"response encoding failed"}`)
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	w.Write(append(b, '\n'))
}

func (s *Server) writeError(w http.ResponseWriter, e *httpError) {
	if e.retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(e.retryAfter))
	}
	s.writeJSON(w, e.code, errorResponse{Error: e.msg})
}

// dispatch runs fn on the given pool under the request tenant's queue
// and weight, and writes fn's result, translating pool conditions to
// statuses: the tenant's queue full -> 429 + that tenant's own
// Retry-After, draining -> 503, deadline -> 503.
func (s *Server) dispatch(w http.ResponseWriter, r *http.Request, p *pool, op string, fn func(ctx context.Context) (any, *httpError)) {
	ctx := r.Context()
	tenantID, weight := tenant.AnonID, 1
	if tn := tenant.FromContext(ctx); tn != nil {
		tenantID, weight = tn.ID, tn.Weight
	}
	var resp any
	var herr *httpError
	// queue-wait measures admission latency: it ends the moment the
	// pooled fn starts running (the second End, for shed/closed paths
	// where the fn never runs, is an idempotent no-op).
	_, qs := trace.Start(ctx, "queue-wait", trace.String("pool", p.name))
	err := p.doAs(ctx, tenantID, weight, func() {
		qs.End()
		if s.testHook != nil {
			s.testHook(op)
		}
		resp, herr = fn(ctx)
	})
	qs.End()
	switch {
	case err == nil:
	case errors.Is(err, errSaturated):
		s.metrics.shed.add(1)
		s.metrics.tenantLimited(tenantID, "queue")
		s.writeError(w, &httpError{
			code:       http.StatusTooManyRequests,
			msg:        fmt.Sprintf("%s worker pool saturated for tenant %s, retry later", p.name, tenantID),
			retryAfter: p.retryAfterFor(tenantID),
		})
		return
	case errors.Is(err, errClosed):
		s.writeError(w, &httpError{code: http.StatusServiceUnavailable, msg: "server is shutting down"})
		return
	case errors.Is(err, context.DeadlineExceeded):
		s.metrics.timeouts.add(1)
		s.writeError(w, &httpError{code: http.StatusServiceUnavailable, msg: "request deadline exceeded"})
		return
	default: // context.Canceled: client went away; best-effort status
		s.writeError(w, &httpError{code: http.StatusServiceUnavailable, msg: "request canceled"})
		return
	}
	if herr != nil {
		s.writeError(w, herr)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// readJSON decodes the request body into v, reporting malformed input.
func readJSON(r *http.Request, v any) *httpError {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequest("malformed request body: %v", err)
	}
	return nil
}

// resolveImage turns a ProgramRef into a loaded image.
func (s *Server) resolveImage(ctx context.Context, ref ProgramRef) (*codepack.Image, *httpError) {
	set := 0
	for _, f := range []string{ref.Benchmark, ref.Asm, ref.ImageB64} {
		if f != "" {
			set++
		}
	}
	if set != 1 {
		return nil, badRequest("exactly one of benchmark, asm, image_b64 must be set")
	}
	kind := "image_b64"
	switch {
	case ref.Benchmark != "":
		kind = "benchmark"
	case ref.Asm != "":
		kind = "asm"
	}
	_, rs := trace.Start(ctx, "resolve-image", trace.String("kind", kind))
	defer rs.End()
	switch {
	case ref.Benchmark != "":
		b, err := s.suite.BenchContext(ctx, ref.Benchmark)
		if err != nil {
			return nil, &httpError{code: http.StatusNotFound, msg: err.Error()}
		}
		return b.Image, nil
	case ref.Asm != "":
		im, err := codepack.Assemble("request", ref.Asm)
		if err != nil {
			return nil, badRequest("assemble: %v", err)
		}
		return im, nil
	default:
		raw, err := base64.StdEncoding.DecodeString(ref.ImageB64)
		if err != nil {
			return nil, badRequest("image_b64: %v", err)
		}
		im, err := codepack.UnmarshalImage(raw)
		if err != nil {
			return nil, badRequest("image: %v", err)
		}
		return im, nil
	}
}

// compressImage resolves im's compressed form through the tiered
// lookup: local cache, then the warm tier's ring owner, then a local
// compression — with concurrent misses for the same digest coalesced
// into one fill. cached reports whether the response was served without
// running a compression here (a cache hit, a peer hit, or riding a
// coalesced in-flight fill).
func (s *Server) compressImage(ctx context.Context, im *codepack.Image) (comp *codepack.Compressed, digest string, cached bool, herr *httpError) {
	digest = codepack.Digest(im.Marshal())
	_, ls := trace.Start(ctx, "cache-lookup", trace.String("digest", digest[:12]))
	c, ok := s.cachedVerified(digest, im, false)
	if ok {
		ls.SetAttr("outcome", "hit")
		ls.End()
		return c, digest, true, nil
	}
	ls.SetAttr("outcome", "miss")
	ls.End()
	c, cached, follower, herr := s.flights.do(ctx, digest, func(fctx context.Context) (*codepack.Compressed, bool, *httpError) {
		fctx, fs := trace.Start(fctx, "fill")
		defer fs.End()
		return s.fillMiss(fctx, digest, im)
	})
	if follower {
		s.metrics.coalesced.add(1)
	}
	if herr != nil {
		return nil, "", false, herr
	}
	return c, digest, cached, nil
}

// fillMiss is the singleflight leader's path: walk the digest's replica
// set, fall back to compressing locally, and replicate anything new to
// its replica set.
func (s *Server) fillMiss(ctx context.Context, digest string, im *codepack.Image) (*codepack.Compressed, bool, *httpError) {
	// Re-check under the flight: a previous leader may have finished
	// filling this digest between our cache miss and acquiring the key.
	// The probe skips miss accounting — this request's miss was already
	// counted on the way in.
	_, rcs := trace.Start(ctx, "cache-recheck")
	c, ok := s.cachedVerified(digest, im, true)
	if ok {
		rcs.SetAttr("outcome", "hit")
	} else {
		rcs.SetAttr("outcome", "miss")
	}
	rcs.End()
	if ok {
		return c, true, nil
	}
	if s.cluster != nil {
		// The verify callback proves a replica's payload decompresses to
		// exactly the requested program before Fetch trusts it; a failure
		// makes Fetch charge that replica's breaker and walk on to the
		// next one. The verified form is captured so a hit installs it
		// without re-parsing.
		var comp *codepack.Compressed
		_, owner, outcome := s.cluster.Fetch(ctx, digest, func(owner string, payload []byte) bool {
			c, err := codepack.UnmarshalCompressed(im.Name, payload)
			if err == nil && compMatchesImage(c, im) {
				comp = c
				return true
			}
			s.metrics.peerErrors.add(1)
			s.log.Warn("peer payload failed verification, trying next replica",
				"digest", digest, "peer", owner, "err", err)
			return false
		})
		switch outcome {
		case peer.FetchHit:
			s.metrics.peerHits.add(1)
			s.cache.put(digest, comp)
			s.log.Debug("warm-tier hit", "digest", digest, "peer", owner)
			return comp, true, nil
		case peer.FetchMiss:
			s.metrics.peerMisses.add(1)
		case peer.FetchUnavailable:
			s.metrics.peerErrors.add(1)
		}
	}
	cctx, cs := trace.Start(ctx, "compress", trace.Int("instructions", len(im.Text)))
	comp, err := codepack.CompressContext(cctx, im)
	cs.End()
	if err != nil {
		return nil, false, badRequest("compress: %v", err)
	}
	s.cache.put(digest, comp)
	if s.cluster != nil {
		s.cluster.Replicate(ctx, digest, comp.Marshal())
	}
	return comp, false, nil
}

// cachedVerified returns the resident entry for digest if it can be
// trusted for im: verified entries directly, and quarantined replicas
// only after proving they decompress to exactly im's text (the entry is
// then confirmed and persisted; a failed proof drops it). isRecheck
// suppresses duplicate miss accounting for the singleflight re-probe.
func (s *Server) cachedVerified(digest string, im *codepack.Image, isRecheck bool) (*codepack.Compressed, bool) {
	lookup := s.cache.getEntry
	if isRecheck {
		lookup = s.cache.recheck
	}
	comp, verified, ok := lookup(digest)
	if !ok {
		return nil, false
	}
	if verified {
		return comp, true
	}
	if compMatchesImage(comp, im) {
		s.cache.confirm(digest)
		return comp, true
	}
	s.metrics.peerErrors.add(1)
	s.log.Warn("quarantined replica failed verification, dropping", "digest", digest)
	s.cache.drop(digest)
	return nil, false
}

// compMatchesImage reports whether comp decompresses word-for-word to
// im's text section — the poisoning-proof check applied to every byte
// that did not come from a local compression or the verified store.
// The decode runs through the pooled buffers: verification output is
// dead as soon as the comparison finishes, so the fill path never pays
// a text-sized allocation per peer payload.
func compMatchesImage(comp *codepack.Compressed, im *codepack.Image) bool {
	if comp.TextBase != im.TextBase {
		return false
	}
	bp := getDecodeBuf()
	defer putDecodeBuf(bp)
	text, err := comp.AppendDecompress((*bp)[:0])
	if text != nil {
		*bp = text
	}
	if err != nil || len(text) != len(im.Text) {
		return false
	}
	for i, w := range text {
		if w != im.Text[i] {
			return false
		}
	}
	return true
}

// --- endpoint handlers ---------------------------------------------------

func (s *Server) handleCompress(w http.ResponseWriter, r *http.Request) {
	var req CompressRequest
	if herr := readJSON(r, &req); herr != nil {
		s.writeError(w, herr)
		return
	}
	s.dispatch(w, r, s.light, "compress", func(ctx context.Context) (any, *httpError) {
		im, herr := s.resolveImage(ctx, req.ProgramRef)
		if herr != nil {
			return nil, herr
		}
		comp, digest, cached, herr := s.compressImage(ctx, im)
		if herr != nil {
			return nil, herr
		}
		st := comp.Stats()
		return CompressResponse{
			Name:            im.Name,
			Digest:          digest,
			OriginalBytes:   st.OriginalBytes,
			CompressedBytes: st.CompressedBytes(),
			Ratio:           st.Ratio(),
			Cached:          cached,
			CompressedB64:   base64.StdEncoding.EncodeToString(comp.Marshal()),
		}, nil
	})
}

func (s *Server) handleDecompress(w http.ResponseWriter, r *http.Request) {
	var req DecompressRequest
	if herr := readJSON(r, &req); herr != nil {
		s.writeError(w, herr)
		return
	}
	s.dispatch(w, r, s.light, "decompress", func(ctx context.Context) (any, *httpError) {
		raw, err := base64.StdEncoding.DecodeString(req.CompressedB64)
		if err != nil {
			return nil, badRequest("compressed_b64: %v", err)
		}
		comp, err := codepack.UnmarshalCompressed("request", raw)
		if err != nil {
			return nil, badRequest("compressed image: %v", err)
		}
		// Decode into a pooled buffer: the text only lives until the
		// image is marshalled into the response.
		bp := getDecodeBuf()
		defer putDecodeBuf(bp)
		text, err := comp.AppendDecompress((*bp)[:0])
		if text != nil {
			*bp = text
		}
		if err != nil {
			return nil, badRequest("decompress: %v", err)
		}
		im := &codepack.Image{
			Name:     "request",
			Entry:    comp.TextBase,
			TextBase: comp.TextBase,
			Text:     text,
		}
		return DecompressResponse{
			Instructions: len(text),
			TextBase:     comp.TextBase,
			ImageB64:     base64.StdEncoding.EncodeToString(im.Marshal()),
		}, nil
	})
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	var req VerifyRequest
	if herr := readJSON(r, &req); herr != nil {
		s.writeError(w, herr)
		return
	}
	s.dispatch(w, r, s.light, "verify", func(ctx context.Context) (any, *httpError) {
		im, herr := s.resolveImage(ctx, req.ProgramRef)
		if herr != nil {
			return nil, herr
		}
		comp, digest, cached, herr := s.compressImage(ctx, im)
		if herr != nil {
			return nil, herr
		}
		// Round trip through the serialized form, as the hardware would
		// see it, and compare word for word.
		reloaded, err := codepack.UnmarshalCompressed(im.Name, comp.Marshal())
		if err != nil {
			return nil, &httpError{code: http.StatusInternalServerError, msg: fmt.Sprintf("reload: %v", err)}
		}
		// The round-trip text is compared and discarded, so decode it
		// into a pooled buffer.
		bp := getDecodeBuf()
		defer putDecodeBuf(bp)
		out, err := reloaded.AppendDecompress((*bp)[:0])
		if out != nil {
			*bp = out
		}
		if err != nil {
			return nil, &httpError{code: http.StatusInternalServerError, msg: fmt.Sprintf("decompress: %v", err)}
		}
		if len(out) != len(im.Text) {
			return nil, &httpError{code: http.StatusInternalServerError,
				msg: fmt.Sprintf("round trip length mismatch: got %d want %d", len(out), len(im.Text))}
		}
		for i, word := range out {
			if word != im.Text[i] {
				return nil, &httpError{code: http.StatusInternalServerError,
					msg: fmt.Sprintf("round trip mismatch at instruction %d", i)}
			}
		}
		return VerifyResponse{
			OK:           true,
			Digest:       digest,
			Instructions: len(im.Text),
			Ratio:        comp.Stats().Ratio(),
			Cached:       cached,
		}, nil
	})
}

// archByName maps the wire names to the Table 2 presets.
func archByName(name string) (codepack.ArchConfig, bool) {
	switch name {
	case "", "4-issue":
		return codepack.FourIssue(), true
	case "1-issue":
		return codepack.OneIssue(), true
	case "8-issue":
		return codepack.EightIssue(), true
	}
	return codepack.ArchConfig{}, false
}

// modelByName maps the wire names to fetch models.
func modelByName(name string) (codepack.FetchModel, bool) {
	switch name {
	case "native":
		return codepack.NativeModel(), true
	case "codepack", "baseline":
		return codepack.BaselineModel(), true
	case "", "optimized":
		return codepack.OptimizedModel(), true
	case "software":
		return codepack.SoftwareModel(), true
	}
	return codepack.FetchModel{}, false
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	if herr := readJSON(r, &req); herr != nil {
		s.writeError(w, herr)
		return
	}
	s.dispatch(w, r, s.heavy, "simulate", func(ctx context.Context) (any, *httpError) {
		cfg, ok := archByName(req.Arch)
		if !ok {
			return nil, badRequest("unknown arch %q (want 1-issue, 4-issue or 8-issue)", req.Arch)
		}
		model, ok := modelByName(req.Model)
		if !ok {
			return nil, badRequest("unknown model %q (want native, codepack, optimized or software)", req.Model)
		}
		im, herr := s.resolveImage(ctx, req.ProgramRef)
		if herr != nil {
			return nil, herr
		}
		cached := false
		if model.Kind != codepack.NativeModel().Kind {
			// Compressed fetch paths need the compressed image; serve it
			// from the content-addressed cache.
			comp, _, hit, herr := s.compressImage(ctx, im)
			if herr != nil {
				return nil, herr
			}
			model.Comp = comp
			cached = hit
		}
		budget := req.MaxInstr
		if budget == 0 {
			budget = s.suite.MaxInstr
		}
		if budget > s.cfg.MaxInstr {
			budget = s.cfg.MaxInstr
		}
		res, err := codepack.SimulateContext(ctx, im, cfg, model, budget)
		if err != nil {
			if ctx.Err() != nil {
				// dispatch translates the context error to 503; returning
				// it here keeps the pooled fn's result unused.
				return nil, &httpError{code: http.StatusServiceUnavailable, msg: err.Error()}
			}
			return nil, badRequest("simulate: %v", err)
		}
		modelName := req.Model
		if modelName == "" {
			modelName = "optimized"
		}
		return SimulateResponse{
			Program:      res.Program,
			Arch:         res.Arch,
			Model:        modelName,
			Instructions: res.Instructions,
			Cycles:       res.Cycles,
			IPC:          res.IPC(),
			IMissRate:    res.IMissRate(),
			Ratio:        res.Ratio,
			Cached:       cached,
		}, nil
	})
}

func (s *Server) handleBench(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.dispatch(w, r, s.light, "bench", func(ctx context.Context) (any, *httpError) {
		b, err := s.suite.BenchContext(ctx, name)
		if err != nil {
			return nil, &httpError{code: http.StatusNotFound, msg: err.Error()}
		}
		st := b.Comp.Stats()
		return BenchResponse{
			Name:            b.Profile.Name,
			TextBytes:       b.Image.TextBytes(),
			TargetDynamic:   b.Profile.TargetDynamic,
			Digest:          codepack.ImageDigest(b.Image),
			OriginalBytes:   st.OriginalBytes,
			CompressedBytes: st.CompressedBytes(),
			Ratio:           st.Ratio(),
		}, nil
	})
}

func (s *Server) handleBenchList(w http.ResponseWriter, r *http.Request) {
	var names []string
	for _, p := range codepack.Benchmarks() {
		names = append(names, p.Name)
	}
	s.writeJSON(w, http.StatusOK, BenchListResponse{Benchmarks: names})
}
