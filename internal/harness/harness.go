// Package harness wires workloads, architectures and fetch models into the
// paper's experiments: one function per table or figure, each returning a
// rendered Table plus the raw values tests assert against.
package harness

import (
	"fmt"
	"sync"

	"codepack/internal/core"
	"codepack/internal/cpu"
	"codepack/internal/program"
	"codepack/internal/workload"
)

// DefaultMaxInstr is the committed-instruction budget per simulation. The
// paper runs each benchmark past 10^9 instructions; every reported metric
// is a rate, so a few million instructions reach the same steady state
// (see EXPERIMENTS.md).
const DefaultMaxInstr = 2_000_000

// Bench is a generated benchmark with its compressed form.
type Bench struct {
	Profile workload.Profile
	Image   *program.Image
	Comp    *core.Compressed
}

// Suite caches generated benchmarks and runs simulations.
type Suite struct {
	// MaxInstr caps committed instructions per run (0 = DefaultMaxInstr).
	MaxInstr uint64

	mu      sync.Mutex
	benches map[string]*Bench
}

// NewSuite creates a suite with the given per-run instruction budget
// (0 uses DefaultMaxInstr).
func NewSuite(maxInstr uint64) *Suite {
	if maxInstr == 0 {
		maxInstr = DefaultMaxInstr
	}
	return &Suite{MaxInstr: maxInstr, benches: make(map[string]*Bench)}
}

// Bench returns the named benchmark, generating and compressing it on first
// use.
func (s *Suite) Bench(name string) (*Bench, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.benches[name]; ok {
		return b, nil
	}
	p, ok := workload.ByName(name)
	if !ok {
		return nil, fmt.Errorf("harness: unknown benchmark %q", name)
	}
	im, err := workload.Generate(p)
	if err != nil {
		return nil, fmt.Errorf("harness: generate %s: %w", name, err)
	}
	comp, err := core.Compress(im)
	if err != nil {
		return nil, fmt.Errorf("harness: compress %s: %w", name, err)
	}
	b := &Bench{Profile: p, Image: im, Comp: comp}
	s.benches[name] = b
	return b, nil
}

// All returns every benchmark in paper order.
func (s *Suite) All() ([]*Bench, error) {
	var out []*Bench
	for _, p := range workload.Profiles() {
		b, err := s.Bench(p.Name)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

// Run simulates bench on cfg with the given fetch model, reusing the cached
// compressed image.
func (s *Suite) Run(b *Bench, cfg cpu.Config, model cpu.FetchModel) (cpu.Result, error) {
	if model.Kind == cpu.FetchCodePack && model.Comp == nil {
		model.Comp = b.Comp
	}
	return cpu.Simulate(b.Image, cfg, model, s.MaxInstr)
}

// runPair runs native and one compressed model and returns both results.
func (s *Suite) runPair(b *Bench, cfg cpu.Config, model cpu.FetchModel) (native, comp cpu.Result, err error) {
	native, err = s.Run(b, cfg, cpu.NativeModel())
	if err != nil {
		return
	}
	comp, err = s.Run(b, cfg, model)
	return
}
