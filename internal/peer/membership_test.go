package peer

import (
	"bytes"
	"encoding/json"
	"fmt"
	"slices"
	"strings"
	"testing"
	"time"
)

// newFakeClock reuses breaker_test's manual clock for the membership
// state machine.
func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func newTestMembership(clk *fakeClock, seeds ...string) *Membership {
	m := NewMembership("http://self:1", MembershipConfig{
		SuspectAfter: 3 * time.Second,
		DeadAfter:    10 * time.Second,
		ReapAfter:    time.Minute,
		Now:          clk.now,
	})
	for _, s := range seeds {
		m.AddSeed(s)
	}
	return m
}

func wantState(t *testing.T, m *Membership, url string, want MemberState) {
	t.Helper()
	got, ok := m.State(url)
	if !ok {
		t.Fatalf("member %s unknown, want state %v", url, want)
	}
	if got != want {
		t.Errorf("member %s state = %v, want %v", url, got, want)
	}
}

// TestMembershipLifecycle walks one member through the full silence
// lifecycle: alive → suspect at SuspectAfter → dead at DeadAfter →
// reaped at ReapAfter, with the ring epoch moving exactly when ring
// membership changes.
func TestMembershipLifecycle(t *testing.T) {
	clk := newFakeClock()
	m := newTestMembership(clk, "http://a:1")
	wantState(t, m, "http://a:1", StateAlive)
	v0 := m.Version()

	clk.advance(3 * time.Second) // SuspectAfter
	if m.Tick() {
		t.Error("alive→suspect reported a ring change; suspects keep their arcs")
	}
	wantState(t, m, "http://a:1", StateSuspect)
	if m.Version() != v0 {
		t.Errorf("ring epoch moved on suspect: %d → %d", v0, m.Version())
	}

	clk.advance(7 * time.Second) // total silence = DeadAfter
	if !m.Tick() {
		t.Error("suspect→dead did not report a ring change")
	}
	wantState(t, m, "http://a:1", StateDead)
	if m.Version() == v0 {
		t.Error("ring epoch did not move when the member died")
	}
	if live := m.Live(); len(live) != 1 || live[0] != "http://self:1" {
		t.Errorf("Live() = %v, want only self", live)
	}
	if nr := m.NonRing(); !slices.Equal(nr, []string{"http://a:1"}) {
		t.Errorf("NonRing() = %v, want the dead member", nr)
	}

	clk.advance(time.Minute) // ReapAfter since death
	m.Tick()
	if _, ok := m.State("http://a:1"); ok {
		t.Error("tombstone not reaped after ReapAfter")
	}
}

// TestMembershipObserveAlive: direct contact resets the detector and
// re-admits a suspect without a generation bump.
func TestMembershipObserveAlive(t *testing.T) {
	clk := newFakeClock()
	m := newTestMembership(clk, "http://a:1")

	clk.advance(3 * time.Second)
	m.Tick()
	wantState(t, m, "http://a:1", StateSuspect)

	m.ObserveAlive("http://a:1")
	wantState(t, m, "http://a:1", StateAlive)

	// The detector restarted from the contact, not from the old silence.
	clk.advance(2 * time.Second)
	m.Tick()
	wantState(t, m, "http://a:1", StateAlive)

	// Dead members do not come back via ObserveAlive — only a fresh
	// incarnation through Merge revives them. (Tick moves one state per
	// call, like the real one-per-heartbeat loop.)
	clk.advance(20 * time.Second)
	m.Tick()
	m.Tick()
	wantState(t, m, "http://a:1", StateDead)
	m.ObserveAlive("http://a:1")
	wantState(t, m, "http://a:1", StateDead)
}

// TestMembershipObserveSuspect: a breaker-open signal suspects the
// member immediately and backdates the silence clock, so death arrives
// DeadAfter−SuspectAfter later instead of a full DeadAfter.
func TestMembershipObserveSuspect(t *testing.T) {
	clk := newFakeClock()
	m := newTestMembership(clk, "http://a:1")

	m.ObserveSuspect("http://a:1")
	wantState(t, m, "http://a:1", StateSuspect)

	clk.advance(7 * time.Second) // backdated silence now = DeadAfter
	m.Tick()
	wantState(t, m, "http://a:1", StateDead)
}

// TestMembershipGossipIsNotEvidenceOfLife pins the partition-liveness
// rule: a relayed alive record at the member's current incarnation does
// not reset the failure detector — otherwise two partitioned nodes
// vouching for everyone's stale liveness would keep the whole fleet
// alive forever.
func TestMembershipGossipIsNotEvidenceOfLife(t *testing.T) {
	clk := newFakeClock()
	m := newTestMembership(clk)
	m.Merge([]MemberInfo{{URL: "http://a:1", Generation: 4, State: StateAlive}})

	for i := 0; i < 12; i++ {
		clk.advance(time.Second)
		m.Tick()
		// The same stale record keeps arriving the whole time.
		m.Merge([]MemberInfo{{URL: "http://a:1", Generation: 4, State: StateAlive}})
	}
	wantState(t, m, "http://a:1", StateDead)
}

// TestMembershipMergeOrdering is the generation/state tie-break table:
// higher generation always wins, equal generation resolves by state
// finality (left > dead > suspect > alive), lower generation is noise.
func TestMembershipMergeOrdering(t *testing.T) {
	const url = "http://a:1"
	cases := []struct {
		name    string
		have    MemberInfo
		in      MemberInfo
		want    MemberState
		wantGen uint64
	}{
		{"higher gen alive revives dead", MemberInfo{url, 3, StateDead}, MemberInfo{url, 4, StateAlive}, StateAlive, 4},
		{"higher gen dead kills alive", MemberInfo{url, 3, StateAlive}, MemberInfo{url, 5, StateDead}, StateDead, 5},
		{"equal gen: dead beats alive", MemberInfo{url, 3, StateAlive}, MemberInfo{url, 3, StateDead}, StateDead, 3},
		{"equal gen: dead beats suspect", MemberInfo{url, 3, StateSuspect}, MemberInfo{url, 3, StateDead}, StateDead, 3},
		{"equal gen: left beats dead", MemberInfo{url, 3, StateDead}, MemberInfo{url, 3, StateLeft}, StateLeft, 3},
		{"equal gen: suspect beats alive", MemberInfo{url, 3, StateAlive}, MemberInfo{url, 3, StateSuspect}, StateSuspect, 3},
		{"equal gen: alive does not unsuspect", MemberInfo{url, 3, StateSuspect}, MemberInfo{url, 3, StateAlive}, StateSuspect, 3},
		{"lower gen dead is noise", MemberInfo{url, 3, StateAlive}, MemberInfo{url, 2, StateDead}, StateAlive, 3},
		{"lower gen left is noise", MemberInfo{url, 3, StateAlive}, MemberInfo{url, 1, StateLeft}, StateAlive, 3},
		{"seed gen zero superseded", MemberInfo{url, 0, StateAlive}, MemberInfo{url, 1, StateAlive}, StateAlive, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clk := newFakeClock()
			m := newTestMembership(clk)
			m.Merge([]MemberInfo{tc.have})
			m.Merge([]MemberInfo{tc.in})
			wantState(t, m, url, tc.want)
			for _, mi := range m.Snapshot() {
				if mi.URL == url && mi.Generation != tc.wantGen {
					t.Errorf("generation = %d, want %d", mi.Generation, tc.wantGen)
				}
			}
		})
	}
}

// TestMembershipSelfRefutation: damning gossip about self is out-bid
// with a fresh incarnation, so a restarted or wrongly-suspected member
// supersedes its own tombstone everywhere it gossips.
func TestMembershipSelfRefutation(t *testing.T) {
	cases := []struct {
		name    string
		in      MemberInfo
		wantGen uint64
	}{
		{"dead at my generation", MemberInfo{"http://self:1", 1, StateDead}, 2},
		{"suspect at my generation", MemberInfo{"http://self:1", 1, StateSuspect}, 2},
		{"dead at a future generation", MemberInfo{"http://self:1", 7, StateDead}, 8},
		{"alive at a future generation", MemberInfo{"http://self:1", 5, StateAlive}, 6},
		{"alive at my generation is fine", MemberInfo{"http://self:1", 1, StateAlive}, 1},
		{"anything at an old generation is noise", MemberInfo{"http://self:1", 0, StateDead}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := newTestMembership(newFakeClock())
			m.Merge([]MemberInfo{tc.in})
			if got := m.SelfInfo(); got.Generation != tc.wantGen || got.State != StateAlive {
				t.Errorf("SelfInfo() = %+v, want alive at generation %d", got, tc.wantGen)
			}
		})
	}
}

// TestMembershipFlappingNode: a node that dies and rejoins repeatedly
// must win each rejoin by incarnation and die again by silence, with
// the ring epoch tracking every flap.
func TestMembershipFlappingNode(t *testing.T) {
	clk := newFakeClock()
	m := newTestMembership(clk, "http://flappy:1")
	gen := uint64(0)
	for flap := 0; flap < 3; flap++ {
		clk.advance(10 * time.Second)
		m.Tick() // alive → suspect
		m.Tick() // suspect → dead (silence is already past DeadAfter)
		wantState(t, m, "http://flappy:1", StateDead)
		before := m.Version()

		// The node restarts: it refutes its tombstone with a higher
		// incarnation (what its own Merge self-refutation produces).
		gen += 2
		if !m.Merge([]MemberInfo{{URL: "http://flappy:1", Generation: gen, State: StateAlive}}) {
			t.Fatalf("flap %d: rejoin did not change the ring", flap)
		}
		wantState(t, m, "http://flappy:1", StateAlive)
		if m.Version() == before {
			t.Fatalf("flap %d: ring epoch did not move on rejoin", flap)
		}
	}
}

// TestMembershipLeave: leaving removes self from the ring, bumps the
// incarnation so the departure out-bids any alive record in flight, and
// pins the view against later gossip about self.
func TestMembershipLeave(t *testing.T) {
	clk := newFakeClock()
	m := newTestMembership(clk, "http://a:1")
	v0 := m.Version()

	view := m.Leave()
	if got := m.SelfInfo(); got.State != StateLeft || got.Generation != 2 {
		t.Errorf("SelfInfo() after Leave = %+v, want left at generation 2", got)
	}
	if slices.Contains(m.Live(), "http://self:1") {
		t.Error("Live() still lists self after Leave")
	}
	if m.Version() == v0 {
		t.Error("ring epoch did not move on Leave")
	}
	found := false
	for _, mi := range view {
		if mi.URL == "http://self:1" && mi.State == StateLeft {
			found = true
		}
	}
	if !found {
		t.Errorf("Leave view %+v does not announce the departure", view)
	}

	// Stale alive gossip about self must not resurrect the membership.
	m.Merge([]MemberInfo{{URL: "http://self:1", Generation: 99, State: StateAlive}})
	if got := m.SelfInfo(); got.State != StateLeft {
		t.Errorf("gossip resurrected a left member: %+v", got)
	}
}

// FuzzMembershipMessage feeds arbitrary bytes through the wire decoder
// and merges whatever survives: the decoder must never panic, never
// accept an invalid member URL or an oversized view, and a merge of any
// accepted message must leave the member list well-formed.
func FuzzMembershipMessage(f *testing.F) {
	valid, _ := json.Marshal(MembershipMsg{
		From: MemberInfo{URL: "http://a:1", Generation: 3, State: StateAlive},
		Members: []MemberInfo{
			{URL: "http://b:1", Generation: 1, State: StateSuspect},
			{URL: "http://c:1", Generation: 9, State: StateLeft},
		},
	})
	f.Add(valid)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"from":{"url":"http://a:1"}}`))
	f.Add([]byte(`{"from":{"url":"nonsense"}}`))
	f.Add([]byte(`{"from":{"url":"http://a:1","state":"zombie"}}`))
	f.Add([]byte(`{"from":{"url":"http://a:1","generation":-1}}`))
	f.Add([]byte(`{"from":{"url":"http://a:1"},"members":[{"url":""}]}`))
	f.Add([]byte(`{"from":{"url":"http://a:1"},"extra":true}`))
	f.Add([]byte(strings.Repeat("[", 10_000)))

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := DecodeMembershipMsg(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Decoder accepted it: the validation contract must hold.
		if verr := validMemberURL(msg.From.URL); verr != nil {
			t.Fatalf("decoder accepted invalid sender %q: %v", msg.From.URL, verr)
		}
		if len(msg.Members) > maxMembershipMembers {
			t.Fatalf("decoder accepted %d members", len(msg.Members))
		}
		for _, mi := range msg.Members {
			if verr := validMemberURL(mi.URL); verr != nil {
				t.Fatalf("decoder accepted invalid member %q: %v", mi.URL, verr)
			}
		}

		// Any accepted message must merge without corrupting the list.
		m := newTestMembership(newFakeClock(), "http://seed:1")
		m.Merge(append(msg.Members, msg.From))
		live := m.Live()
		if !slices.IsSorted(live) {
			t.Fatalf("Live() unsorted after merge: %v", live)
		}
		if !slices.Contains(live, "http://self:1") {
			t.Fatalf("merge evicted self from the ring: %v", live)
		}
		seen := make(map[string]bool)
		for _, mi := range m.Snapshot() {
			if seen[mi.URL] {
				t.Fatalf("duplicate member %q after merge", mi.URL)
			}
			seen[mi.URL] = true
			if verr := validMemberURL(mi.URL); verr != nil {
				t.Fatalf("invalid URL %q entered the member list", mi.URL)
			}
		}
	})
}

// TestMemberStateJSON round-trips every state by name and rejects
// unknown names and raw numbers.
func TestMemberStateJSON(t *testing.T) {
	for _, s := range []MemberState{StateAlive, StateSuspect, StateDead, StateLeft} {
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("marshal %v: %v", s, err)
		}
		if want := fmt.Sprintf("%q", s.String()); string(b) != want {
			t.Errorf("marshal %v = %s, want %s", s, b, want)
		}
		var back MemberState
		if err := json.Unmarshal(b, &back); err != nil || back != s {
			t.Errorf("round-trip %v = %v, %v", s, back, err)
		}
	}
	var s MemberState
	if err := json.Unmarshal([]byte(`"zombie"`), &s); err == nil {
		t.Error("unknown state name accepted")
	}
	if err := json.Unmarshal([]byte(`2`), &s); err == nil {
		t.Error("numeric state accepted")
	}
}
