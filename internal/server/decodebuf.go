package server

import (
	"sync"

	"codepack/internal/isa"
)

// decodeBufs recycles the word slices the serve path decodes into. The
// fill path verifies every peer payload and quarantined replica by full
// decompression, and the decompress/verify endpoints decode entire
// programs per request; without reuse each of those is a text-sized
// allocation held just long enough to compare or marshal. The pool plus
// Compressed.AppendDecompress keeps steady-state decodes at zero
// allocations (BenchmarkDecodePooled pins this).
//
// The pool traffics in *[]isa.Word so that returning a buffer does not
// allocate a fresh slice header; callers write any regrown slice back
// through the pointer before releasing it.
//
// Pooled buffers keep whatever capacity their largest program needed;
// sync.Pool's GC-driven eviction bounds how long oversized ones linger.
var decodeBufs = sync.Pool{
	New: func() any { return new([]isa.Word) },
}

// getDecodeBuf returns a pooled buffer pointer. Decode with
// AppendDecompress((*bp)[:0]), store the result back via *bp, and hand
// the pointer to putDecodeBuf once the contents are dead.
func getDecodeBuf() *[]isa.Word {
	return decodeBufs.Get().(*[]isa.Word)
}

// putDecodeBuf returns a buffer to the pool. The caller must not retain
// the slice after this.
func putDecodeBuf(bp *[]isa.Word) {
	decodeBufs.Put(bp)
}
