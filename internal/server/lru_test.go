package server

import (
	"fmt"
	"testing"

	"codepack"
)

// makeComp builds a distinct small compressed program for cache tests.
func makeComp(t *testing.T, seed uint32) *codepack.Compressed {
	t.Helper()
	text := make([]uint32, 64)
	for i := range text {
		text[i] = 0x24020000 | seed<<6 | uint32(i) // addiu-shaped words
	}
	c, err := codepack.CompressWords(fmt.Sprintf("prog%d", seed), 0x00400000, text)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCompCacheHitMiss(t *testing.T) {
	c := newCompCache(4)
	if _, ok := c.get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	comp := makeComp(t, 1)
	c.put("a", comp)
	got, ok := c.get("a")
	if !ok || got != comp {
		t.Fatal("put entry not returned")
	}
	s := c.stats()
	if s.Hits != 1 || s.Misses != 1 || s.Entries != 1 {
		t.Errorf("stats %+v, want hits=1 misses=1 entries=1", s)
	}
	if s.Bytes <= 0 {
		t.Errorf("resident bytes %d, want > 0", s.Bytes)
	}
}

func TestCompCacheEvictsLRU(t *testing.T) {
	c := newCompCache(2)
	c.put("a", makeComp(t, 1))
	c.put("b", makeComp(t, 2))
	c.get("a") // a is now most recently used
	c.put("c", makeComp(t, 3))
	if _, ok := c.get("b"); ok {
		t.Error("b should have been evicted as LRU")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a (recently used) was evicted")
	}
	if _, ok := c.get("c"); !ok {
		t.Error("c (just inserted) missing")
	}
	if s := c.stats(); s.Evictions != 1 || s.Entries != 2 {
		t.Errorf("stats %+v, want evictions=1 entries=2", s)
	}
}

func TestCompCacheDisabled(t *testing.T) {
	c := newCompCache(-1)
	c.put("a", makeComp(t, 1))
	if _, ok := c.get("a"); ok {
		t.Fatal("disabled cache returned a hit")
	}
	if s := c.stats(); s.Entries != 0 || s.Bytes != 0 {
		t.Errorf("disabled cache holds state: %+v", s)
	}
}
