package loadgen

import (
	"math"
	"testing"
	"time"
)

// TestRecorderQuantiles checks the HDR buckets against a distribution
// whose exact quantiles are known. Bucket width bounds the error at ~5%.
func TestRecorderQuantiles(t *testing.T) {
	r := NewRecorder()
	add := func(n int, d time.Duration) {
		for i := 0; i < n; i++ {
			r.Observe(d)
		}
	}
	add(5000, 1*time.Millisecond)   // ranks 1..5000
	add(4000, 10*time.Millisecond)  // ranks 5001..9000
	add(900, 100*time.Millisecond)  // ranks 9001..9900
	add(99, 1*time.Second)          // ranks 9901..9999
	add(1, 10*time.Second)          // rank 10000

	within := func(q float64, want time.Duration) {
		t.Helper()
		got := r.Quantile(q)
		if ratio := float64(got) / float64(want); ratio < 0.90 || ratio > 1.10 {
			t.Fatalf("q%.3f = %v, want %v ±10%%", q, got, want)
		}
	}
	within(0.50, 1*time.Millisecond)
	within(0.90, 10*time.Millisecond)
	within(0.99, 100*time.Millisecond)
	within(0.999, 1*time.Second)
	if got := r.Quantile(1); got != 10*time.Second {
		t.Fatalf("q1 = %v, want the exact max 10s", got)
	}

	st := r.Snapshot()
	if st.N != 10000 {
		t.Fatalf("count = %d, want 10000", st.N)
	}
	if st.Max != 10000 {
		t.Fatalf("max = %vms, want 10000ms", st.Max)
	}
	wantMean := (5000*1 + 4000*10 + 900*100 + 99*1000 + 1*10000) / 10000.0
	if math.Abs(st.Mean-wantMean)/wantMean > 0.01 {
		t.Fatalf("mean = %.3fms, want %.3fms", st.Mean, wantMean)
	}
}

func TestRecorderEmptyAndClamp(t *testing.T) {
	r := NewRecorder()
	if r.Quantile(0.99) != 0 {
		t.Fatal("empty recorder should report zero")
	}
	st := r.Snapshot()
	if st.N != 0 || st.Max != 0 || st.Mean != 0 {
		t.Fatalf("empty snapshot not zero: %+v", st)
	}
	r.Observe(-5 * time.Millisecond) // clock skew guard: clamps, never panics
	r.Observe(10 * time.Minute)      // beyond range: overflow bucket, exact max kept
	if got := r.Quantile(1); got != 10*time.Minute {
		t.Fatalf("max = %v, want 10m", got)
	}
}

// TestRecorderConcurrent exercises Observe/Quantile under the race
// detector.
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder()
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(w int) {
			for i := 0; i < 1000; i++ {
				r.Observe(time.Duration(w*i) * time.Microsecond)
			}
			done <- struct{}{}
		}(w)
	}
	for i := 0; i < 100; i++ {
		r.Quantile(0.99)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	if st := r.Snapshot(); st.N != 4000 {
		t.Fatalf("count = %d, want 4000", st.N)
	}
}
