package sim

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"codepack/internal/peer"
)

// The three pinned fault schedules below (partition, crash/restart,
// duplication) are the acceptance gate run by `make sim-smoke` under
// -race: after each schedule the cluster must converge to one ring view
// and serve every previously compressed digest warm — zero
// recompressions — with the verification invariants intact.

func nodeNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://n%d:1", i)
	}
	return out
}

func digests(tag string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s-%03d", tag, i)
	}
	return out
}

// settleAndCheck converges the world and asserts the warm-serve and
// verification properties.
func settleAndCheck(t *testing.T, w *World) {
	t.Helper()
	if err := w.Settle(120); err != nil {
		t.Fatal(err)
	}
	recomp, err := w.CheckWarm()
	if err != nil {
		t.Fatal(err)
	}
	if recomp != 0 {
		t.Errorf("post-convergence GETs paid %d recompressions, want 0", recomp)
	}
	st := w.Stats()
	if st.UnverifiedServed != 0 || st.WrongServed != 0 {
		t.Errorf("verification invariants violated: %+v", st)
	}
}

// TestSimPartitionConverges: five nodes split 2/3, both sides keep
// serving and declare the other side dead; after the heal the ring
// re-merges by incarnation refutation and every digest compressed on
// either side — before or during the partition — is served warm.
func TestSimPartitionConverges(t *testing.T) {
	nodes := nodeNames(5)
	w := New(1, Config{Nodes: nodes, DropProb: 0.05})
	w.Boot()
	w.Run(8 * time.Second)
	if !w.Converged() {
		t.Fatal("cluster did not form before the fault schedule")
	}

	for i, d := range digests("pre", 12) {
		w.Compress(nodes[i%len(nodes)], d)
	}
	w.Run(2 * time.Second)

	w.Partition(nodes[:2], nodes[2:])
	w.Run(15 * time.Second) // past DeadAfter: both sides shrink their rings
	for _, url := range nodes[:2] {
		if len(w.Live(url)) != 2 {
			t.Errorf("minority side %s sees ring %v, want the 2-node island", url, w.Live(url))
		}
	}
	for _, url := range nodes[2:] {
		if len(w.Live(url)) != 3 {
			t.Errorf("majority side %s sees ring %v, want the 3-node island", url, w.Live(url))
		}
	}
	// Both islands keep taking writes against their shrunken rings.
	for i, d := range digests("minority", 6) {
		w.Compress(nodes[i%2], d)
	}
	for i, d := range digests("majority", 6) {
		w.Compress(nodes[2+i%3], d)
	}
	w.Run(2 * time.Second)

	settleAndCheck(t, w)
	if got := w.Live(nodes[0]); len(got) != 5 {
		t.Errorf("healed ring = %v, want all 5 members", got)
	}
	// Per-node observability: a schedule this busy must show every node
	// gossiping, and the compressed digests must have moved — someone
	// replicated, someone quarantined.
	var repls, quars int
	for _, url := range nodes {
		ns := w.NodeStats(url)
		if ns.HeartbeatsSent == 0 {
			t.Errorf("node %s sent no heartbeats", url)
		}
		if ns.AEPasses == 0 {
			t.Errorf("node %s ran no anti-entropy passes", url)
		}
		repls += ns.ReplicationsSent
		quars += ns.Quarantines
	}
	if repls == 0 || quars == 0 {
		t.Errorf("node stats show no replication traffic: sent=%d quarantined=%d", repls, quars)
	}
}

// TestSimCrashRestartConverges: one node bounces fast (suspect window),
// another stays down long enough to be declared dead and rejoins from
// its tombstone; durable entries survive both, nothing is recompressed.
func TestSimCrashRestartConverges(t *testing.T) {
	nodes := nodeNames(4)
	w := New(2, Config{Nodes: nodes, DropProb: 0.05})
	w.Boot()
	w.Run(8 * time.Second)

	for i, d := range digests("seed", 10) {
		w.Compress(nodes[i%len(nodes)], d)
	}
	w.Run(2 * time.Second)

	// Fast bounce: down for one suspect window, never declared dead.
	w.Crash(nodes[1])
	w.Run(4 * time.Second)
	w.Restart(nodes[1])
	w.Run(4 * time.Second)

	// Slow bounce: the fleet declares the node dead, rebalances, keeps
	// compressing; the node then rejoins over its own tombstone.
	w.Crash(nodes[2])
	w.Run(15 * time.Second)
	for _, url := range []string{nodes[0], nodes[1], nodes[3]} {
		if got := w.Live(url); len(got) != 3 {
			t.Errorf("%s still sees %v after the dead timeout", url, got)
		}
	}
	for i, d := range digests("while-down", 6) {
		w.Compress(nodes[[3]int{0, 1, 3}[i%3]], d)
	}
	w.Run(2 * time.Second)
	w.Restart(nodes[2])

	settleAndCheck(t, w)
}

// TestSimDuplicationConverges: heavy duplication and moderate loss on
// every gossip round trip — merges and replication puts must be
// idempotent for the ring to stay consistent.
func TestSimDuplicationConverges(t *testing.T) {
	nodes := nodeNames(4)
	w := New(3, Config{Nodes: nodes, DropProb: 0.15, DupProb: 0.4})
	w.Boot()
	w.Run(10 * time.Second)
	for round := 0; round < 4; round++ {
		for i, d := range digests(fmt.Sprintf("dup%d", round), 5) {
			w.Compress(nodes[(round+i)%len(nodes)], d)
		}
		w.Run(3 * time.Second)
	}
	if w.Stats().Duplicated == 0 {
		t.Fatal("duplication schedule delivered no duplicates; faults not exercised")
	}
	settleAndCheck(t, w)
}

// TestSimDynamicJoin: a third node boots into a running two-node
// cluster knowing only one seed; the ring rebalances and the joiner
// serves previously compressed digests warm.
func TestSimDynamicJoin(t *testing.T) {
	nodes := nodeNames(3)
	w := New(4, Config{
		Nodes: nodes,
		Seeds: map[string][]string{
			nodes[0]: {nodes[1]},
			nodes[1]: {nodes[0]},
			nodes[2]: {nodes[0]}, // the joiner knows a single seed
		},
	})
	w.nodes[nodes[0]].start()
	w.nodes[nodes[1]].start()
	w.Run(5 * time.Second)
	for i, d := range digests("two", 10) {
		w.Compress(nodes[i%2], d)
	}
	w.Run(2 * time.Second)

	w.Restart(nodes[2]) // first boot: joins via its one seed
	settleAndCheck(t, w)
	if got := w.Live(nodes[2]); len(got) != 3 {
		t.Errorf("joiner's ring = %v, want 3 members", got)
	}
}

// TestSimImpostorNeverServesUnverified: corrupt payloads pushed into
// quarantine ahead of the real ones can cost recompressions but can
// never be served — the verification invariants hold under settle and
// a full warm check.
func TestSimImpostorNeverServesUnverified(t *testing.T) {
	nodes := nodeNames(3)
	w := New(5, Config{Nodes: nodes})
	w.Boot()
	w.Run(6 * time.Second)

	ds := digests("imp", 8)
	for i, d := range ds {
		// Poison every node first, then compress for real somewhere.
		for _, url := range nodes {
			w.InjectCorrupt(url, d)
		}
		w.Compress(nodes[i%len(nodes)], d)
	}
	w.Run(2 * time.Second)

	if err := w.Settle(120); err != nil {
		t.Fatal(err)
	}
	if _, err := w.CheckWarm(); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.UnverifiedServed != 0 || st.WrongServed != 0 {
		t.Errorf("impostor schedule violated verification invariants: %+v", st)
	}
}

// ownedBy filters digests to those whose replica set (at ring) includes
// member.
func ownedBy(w *World, ring *peer.Ring, member string, ds []string) []string {
	var out []string
	for _, d := range ds {
		for _, o := range ring.Owners(d, w.cfg.ReplicationFactor) {
			if o == member {
				out = append(out, d)
				break
			}
		}
	}
	return out
}

// TestSimReplicatedCrashZeroRecompressions is the R=2 acceptance
// schedule: with two replicas per digest, a single-node crash costs zero
// recompressions — both in the immediate window before the failure
// detector reacts (fetches fall through to the surviving replica) and
// after the ring rebalances.
func TestSimReplicatedCrashZeroRecompressions(t *testing.T) {
	nodes := nodeNames(5)
	w := New(7, Config{Nodes: nodes, ReplicationFactor: 2})
	w.Boot()
	w.Run(8 * time.Second)
	if !w.Converged() {
		t.Fatal("cluster did not form before the fault schedule")
	}

	ds := digests("r2", 12)
	for i, d := range ds {
		w.Compress(nodes[i%len(nodes)], d)
	}
	w.Run(2 * time.Second) // async replication fills both owners
	if err := w.CheckReplication(); err != nil {
		t.Fatalf("replication did not reach both owners before the crash: %v", err)
	}

	// Crash a node that is primary owner for some of the digests, so the
	// surviving-replica walk is actually exercised.
	ring := w.nodes[nodes[0]].ring
	victim := ""
	for _, d := range ds {
		if o := ring.Owners(d, 2)[0]; o != "" {
			victim = o
			break
		}
	}
	if victim == "" {
		t.Fatal("degenerate placement: no digest has a primary owner")
	}
	base := w.Stats().Recompressions
	w.Crash(victim)

	// Before any suspicion: every digest is still served warm on every
	// survivor, riding past the dead primary to its replica where needed.
	for _, url := range nodes {
		if url == victim {
			continue
		}
		for _, d := range ds {
			w.Compress(url, d)
		}
	}
	if got := w.Stats().Recompressions - base; got != 0 {
		t.Errorf("reads through the crash paid %d recompressions, want 0", got)
	}
	var fallthroughs int
	for _, url := range nodes {
		fallthroughs += w.NodeStats(url).ReplicaFallthroughs
	}
	if fallthroughs == 0 {
		t.Error("no fetch fell through to a surviving replica; schedule exercised nothing")
	}

	// After the ring rebalances to four members, the warm property and
	// full replica placement both hold with the node still down.
	settleAndCheck(t, w)
	if err := w.CheckReplication(); err != nil {
		t.Error(err)
	}
}

// TestSimReplicatedPartitionBoundedStaleness: staleness through a
// partition is bounded by placement — a read on a side holding at least
// one replica is warm, a read on a side holding none pays exactly one
// recompression, and after the heal everything reconverges to full
// replication.
func TestSimReplicatedPartitionBoundedStaleness(t *testing.T) {
	nodes := nodeNames(5)
	w := New(8, Config{Nodes: nodes, ReplicationFactor: 2})
	w.Boot()
	w.Run(8 * time.Second)
	if !w.Converged() {
		t.Fatal("cluster did not form before the fault schedule")
	}
	ds := digests("ps", 12)
	for i, d := range ds {
		w.Compress(nodes[i%len(nodes)], d)
	}
	w.Run(2 * time.Second)
	if err := w.CheckReplication(); err != nil {
		t.Fatalf("replication did not complete before the partition: %v", err)
	}

	// Classify each digest by whether the majority side holds a replica.
	ring := w.nodes[nodes[2]].ring
	maj := map[string]bool{nodes[2]: true, nodes[3]: true, nodes[4]: true}
	var withReplica, without []string
	for _, d := range ds {
		in := false
		for _, o := range ring.Owners(d, 2) {
			if maj[o] {
				in = true
				break
			}
		}
		if in {
			withReplica = append(withReplica, d)
		} else {
			without = append(without, d)
		}
	}
	if len(withReplica) == 0 || len(without) == 0 {
		t.Fatalf("degenerate placement for this seed: %d with, %d without an in-side replica",
			len(withReplica), len(without))
	}

	w.Partition(nodes[:2], nodes[2:])
	w.Run(time.Second) // inside the suspect window: the ring still spans the cut

	before := w.Stats().Recompressions
	for _, d := range withReplica {
		w.Compress(nodes[2], d)
	}
	if got := w.Stats().Recompressions - before; got != 0 {
		t.Errorf("partition reads with an in-side replica paid %d recompressions, want 0", got)
	}
	before = w.Stats().Recompressions
	want := 0
	for _, d := range without {
		if _, held := w.nodes[nodes[3]].cache[d]; !held {
			want++ // both replicas across the cut and no local copy: one recompression
		}
		w.Compress(nodes[3], d)
	}
	if got := w.Stats().Recompressions - before; got != want {
		t.Errorf("partition reads without an in-side replica paid %d recompressions, want %d", got, want)
	}

	// Both shrunken islands keep taking writes, then the heal restores
	// one ring with full replication.
	w.Run(15 * time.Second)
	for i, d := range digests("ps-min", 4) {
		w.Compress(nodes[i%2], d)
	}
	for i, d := range digests("ps-maj", 4) {
		w.Compress(nodes[2+i%3], d)
	}
	w.Run(2 * time.Second)
	settleAndCheck(t, w)
	if err := w.CheckReplication(); err != nil {
		t.Error(err)
	}
}

// TestSimHandoffDrainAndReassign: pushes to a crashed-but-not-yet-dead
// member buffer as hints; a rejoin inside the suspect window drains them
// to the member, while staying down past DeadAfter reassigns them to the
// digest's surviving replica set.
func TestSimHandoffDrainAndReassign(t *testing.T) {
	nodes := nodeNames(4)
	w := New(9, Config{Nodes: nodes, ReplicationFactor: 2})
	w.Boot()
	w.Run(8 * time.Second)
	if !w.Converged() {
		t.Fatal("cluster did not form before the fault schedule")
	}
	ring := w.nodes[nodes[0]].ring

	// Drain: crash the target, commit digests it owns, rejoin before the
	// dead timeout — the buffered hints must reach it.
	w.Crash(nodes[3])
	drainDs := ownedBy(w, ring, nodes[3], digests("hd", 20))
	if len(drainDs) == 0 {
		t.Fatal("degenerate placement: no digest owned by the crashed node")
	}
	for _, d := range drainDs {
		w.Compress(nodes[0], d)
	}
	w.Run(2 * time.Second) // pushes time out and buffer as hints
	if got := w.NodeStats(nodes[0]).HandoffHinted; got == 0 {
		t.Fatal("pushes to the crashed member buffered no hints")
	}
	w.Restart(nodes[3])
	w.Run(4 * time.Second)
	if got := w.NodeStats(nodes[0]).HandoffDrained; got == 0 {
		t.Error("no hint drained after the member rejoined")
	}
	for _, d := range drainDs {
		if _, held := w.nodes[nodes[3]].cache[d]; !held {
			t.Errorf("rejoined member missing hinted digest %s", d)
		}
	}

	// Reassign: crash it again, commit more of its digests, and leave it
	// down past DeadAfter — the hints must re-replicate to the digests'
	// surviving owners instead.
	w.Crash(nodes[3])
	reassignDs := ownedBy(w, ring, nodes[3], digests("hr", 20))
	if len(reassignDs) == 0 {
		t.Fatal("degenerate placement: no reassign digest owned by the crashed node")
	}
	for _, d := range reassignDs {
		w.Compress(nodes[1], d)
	}
	w.Run(15 * time.Second) // past DeadAfter: the ring drops the member
	if got := w.NodeStats(nodes[1]).HandoffReassigned; got == 0 {
		t.Error("hints for a dead member were not reassigned")
	}

	w.Restart(nodes[3])
	settleAndCheck(t, w)
	if err := w.CheckReplication(); err != nil {
		t.Error(err)
	}
}

// TestSimEventLogDeterminism is the sim-smoke determinism guard: the
// same seed and schedule yield a byte-identical event log, so any
// failing schedule replays exactly.
func TestSimEventLogDeterminism(t *testing.T) {
	run := func() string {
		nodes := nodeNames(4)
		w := New(11, Config{Nodes: nodes, ReplicationFactor: 2, DropProb: 0.1, DupProb: 0.2})
		w.Boot()
		w.Run(6 * time.Second)
		for i, d := range digests("log", 8) {
			w.Compress(nodes[i%len(nodes)], d)
		}
		w.Partition(nodes[:1], nodes[1:])
		w.Run(12 * time.Second)
		w.Crash(nodes[2])
		w.Run(3 * time.Second)
		w.Restart(nodes[2])
		if err := w.Settle(120); err != nil {
			t.Fatal(err)
		}
		if _, err := w.CheckWarm(); err != nil {
			t.Fatal(err)
		}
		return w.EventLog()
	}
	first, second := run(), run()
	if first != second {
		t.Error("event logs diverged across identical seeds")
	}
	for _, want := range []string{"start ", "crash ", "partition ", "heal", "ring ", "recompress "} {
		if !strings.Contains(first, want) {
			t.Errorf("event log records no %q events", want)
		}
	}
}

// TestSimDeterminism: the same seed replays the same world — stats and
// final views are bit-identical, so any failing schedule is a repro.
func TestSimDeterminism(t *testing.T) {
	run := func() (Stats, [][]string) {
		nodes := nodeNames(4)
		w := New(42, Config{Nodes: nodes, DropProb: 0.2, DupProb: 0.2})
		w.Boot()
		w.Run(5 * time.Second)
		for i, d := range digests("det", 8) {
			w.Compress(nodes[i%len(nodes)], d)
		}
		w.Partition(nodes[:1], nodes[1:])
		w.Run(12 * time.Second)
		w.Crash(nodes[3])
		w.Run(3 * time.Second)
		w.Restart(nodes[3])
		if err := w.Settle(120); err != nil {
			t.Fatal(err)
		}
		views := make([][]string, len(nodes))
		for i, url := range nodes {
			views[i] = w.Live(url)
		}
		return w.Stats(), views
	}
	s1, v1 := run()
	s2, v2 := run()
	if s1 != s2 {
		t.Errorf("stats diverged across identical seeds:\n%+v\n%+v", s1, s2)
	}
	if !reflect.DeepEqual(v1, v2) {
		t.Errorf("final views diverged across identical seeds:\n%v\n%v", v1, v2)
	}
}
