package tenant

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// InternalHeader carries the HMAC signature on node-to-node requests.
// Format: v1:<unix-ts>:<hex(hmac-sha256(key, method\npath\nts\nhex(sha256(body))))>.
// The body hash binds the signature to the payload; the timestamp bounds
// replay to the skew window (the protocol is idempotent content-addressed
// cache traffic, so a bounded replay only wastes work).
const InternalHeader = "X-Cpackd-Internal"

// MaxClockSkew is how far a signed request's timestamp may differ from
// the verifier's clock in either direction.
const MaxClockSkew = 2 * time.Minute

// SignInternal computes the InternalHeader value for a request.
func SignInternal(key []byte, method, path string, body []byte, now time.Time) string {
	ts := strconv.FormatInt(now.Unix(), 10)
	return "v1:" + ts + ":" + internalMAC(key, method, path, ts, body)
}

func internalMAC(key []byte, method, path, ts string, body []byte) string {
	bodySum := sha256.Sum256(body)
	mac := hmac.New(sha256.New, key)
	fmt.Fprintf(mac, "%s\n%s\n%s\n%s", method, path, ts, hex.EncodeToString(bodySum[:]))
	return hex.EncodeToString(mac.Sum(nil))
}

// VerifyInternal checks a presented InternalHeader value against the
// cluster key. It returns a descriptive error (never shown to the
// caller; for logs/metrics) on any failure. Comparison is constant-time.
func VerifyInternal(key []byte, header, method, path string, body []byte, now time.Time) error {
	parts := strings.Split(header, ":")
	if len(parts) != 3 || parts[0] != "v1" {
		return fmt.Errorf("malformed %s header", InternalHeader)
	}
	ts, err := strconv.ParseInt(parts[1], 10, 64)
	if err != nil {
		return fmt.Errorf("malformed timestamp")
	}
	if d := now.Unix() - ts; d > int64(MaxClockSkew/time.Second) || d < -int64(MaxClockSkew/time.Second) {
		return fmt.Errorf("timestamp outside ±%v skew window", MaxClockSkew)
	}
	want := internalMAC(key, method, path, parts[1], body)
	if !hmac.Equal([]byte(want), []byte(parts[2])) {
		return fmt.Errorf("signature mismatch")
	}
	return nil
}
