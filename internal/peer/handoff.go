package peer

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// Hinted handoff: when a replication push cannot reach a replica that
// is merely suspect (or transiently failing), the entry is buffered
// here as a hint instead of being abandoned. Hints drain back into the
// replication queue when the target refutes its suspicion (transition
// to alive) and opportunistically every heartbeat round while the
// target is healthy; a target declared dead or left has its hints
// reassigned to the digests' surviving owners. The buffer is bounded in
// both records and bytes — overflow drops the oldest hint (anti-entropy
// repairs whatever a dropped hint would have delivered).

// handoffMagic and handoffVersion frame an encoded HandoffRecord.
const (
	handoffMagic   = 'H'
	handoffVersion = 1
)

// Handoff buffer bounds (per cluster, across all targets).
const (
	defaultHandoffMaxRecords = 1024
	defaultHandoffMaxBytes   = 16 << 20
)

// HandoffRecord is one buffered replication push: the member it was
// meant for, the digest, and the marshalled payload.
type HandoffRecord struct {
	Target  string
	Digest  string
	Payload []byte
}

// EncodeHandoffRecord renders a record in the handoff wire format:
// a magic byte, a version byte, then target, digest and payload each
// as a uvarint length prefix followed by the raw bytes.
func EncodeHandoffRecord(r HandoffRecord) []byte {
	var lenbuf [binary.MaxVarintLen64]byte
	out := make([]byte, 0, 2+len(r.Target)+len(r.Digest)+len(r.Payload)+3*binary.MaxVarintLen64)
	out = append(out, handoffMagic, handoffVersion)
	for _, field := range [][]byte{[]byte(r.Target), []byte(r.Digest), r.Payload} {
		n := binary.PutUvarint(lenbuf[:], uint64(len(field)))
		out = append(out, lenbuf[:n]...)
		out = append(out, field...)
	}
	return out
}

// DecodeHandoffRecord parses and validates one encoded record from
// untrusted input: framing, bounded field lengths, a well-formed member
// URL for the target, a well-formed digest, and no trailing garbage.
func DecodeHandoffRecord(b []byte) (HandoffRecord, error) {
	if len(b) < 2 {
		return HandoffRecord{}, fmt.Errorf("peer: handoff record truncated (%d bytes)", len(b))
	}
	if b[0] != handoffMagic {
		return HandoffRecord{}, fmt.Errorf("peer: handoff record bad magic 0x%02x", b[0])
	}
	if b[1] != handoffVersion {
		return HandoffRecord{}, fmt.Errorf("peer: handoff record unknown version %d", b[1])
	}
	rest := b[2:]
	field := func(max int) ([]byte, error) {
		n, width := binary.Uvarint(rest)
		if width <= 0 {
			return nil, fmt.Errorf("peer: handoff record bad length prefix")
		}
		// Only the minimal varint encoding is accepted: every valid
		// record has exactly one byte representation.
		var minimal [binary.MaxVarintLen64]byte
		if binary.PutUvarint(minimal[:], n) != width {
			return nil, fmt.Errorf("peer: handoff record non-minimal length prefix")
		}
		rest = rest[width:]
		if n > uint64(max) {
			return nil, fmt.Errorf("peer: handoff record field of %d bytes exceeds %d", n, max)
		}
		if uint64(len(rest)) < n {
			return nil, fmt.Errorf("peer: handoff record truncated field (want %d, have %d)", n, len(rest))
		}
		f := rest[:n]
		rest = rest[n:]
		return f, nil
	}
	target, err := field(2048)
	if err != nil {
		return HandoffRecord{}, err
	}
	digest, err := field(64)
	if err != nil {
		return HandoffRecord{}, err
	}
	payload, err := field(maxPayloadBytes)
	if err != nil {
		return HandoffRecord{}, err
	}
	if len(rest) != 0 {
		return HandoffRecord{}, fmt.Errorf("peer: handoff record has %d trailing bytes", len(rest))
	}
	rec := HandoffRecord{Target: string(target), Digest: string(digest), Payload: payload}
	if err := validMemberURL(rec.Target); err != nil {
		return HandoffRecord{}, fmt.Errorf("peer: handoff record target: %w", err)
	}
	if !validDigest(rec.Digest) {
		return HandoffRecord{}, fmt.Errorf("peer: handoff record digest %q malformed", rec.Digest)
	}
	return rec, nil
}

// hintBuffer is the bounded FIFO of encoded handoff records. Records
// are kept in their wire encoding so byte accounting is exact and the
// format always has a live consumer.
type hintBuffer struct {
	mu         sync.Mutex
	maxRecords int
	maxBytes   int
	bytes      int
	recs       [][]byte // encoded HandoffRecords, oldest first
}

func newHintBuffer(maxRecords, maxBytes int) *hintBuffer {
	return &hintBuffer{maxRecords: maxRecords, maxBytes: maxBytes}
}

// add buffers one hint, evicting from the head until the bounds hold
// again; it returns how many older hints were dropped to make room.
func (h *hintBuffer) add(rec HandoffRecord) (evicted int) {
	enc := EncodeHandoffRecord(rec)
	h.mu.Lock()
	defer h.mu.Unlock()
	h.recs = append(h.recs, enc)
	h.bytes += len(enc)
	for (len(h.recs) > h.maxRecords || h.bytes > h.maxBytes) && len(h.recs) > 1 {
		h.bytes -= len(h.recs[0])
		h.recs = h.recs[1:]
		evicted++
	}
	return evicted
}

// take removes and returns every buffered hint for target, oldest
// first.
func (h *hintBuffer) take(target string) []HandoffRecord {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []HandoffRecord
	kept := h.recs[:0]
	for _, enc := range h.recs {
		rec, err := DecodeHandoffRecord(enc)
		if err != nil || rec.Target != target {
			kept = append(kept, enc)
			continue
		}
		h.bytes -= len(enc)
		out = append(out, rec)
	}
	h.recs = kept
	return out
}

// targets returns the distinct targets with buffered hints.
func (h *hintBuffer) targets() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	seen := make(map[string]bool)
	var out []string
	for _, enc := range h.recs {
		rec, err := DecodeHandoffRecord(enc)
		if err != nil || seen[rec.Target] {
			continue
		}
		seen[rec.Target] = true
		out = append(out, rec.Target)
	}
	return out
}

// pending reports the buffered record and byte counts.
func (h *hintBuffer) pending() (records, bytes int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.recs), h.bytes
}
