package obs

import (
	"sync"
	"testing"
	"time"
)

// testClock is a settable clock for driving the engine deterministically.
type testClock struct {
	mu sync.Mutex
	t  time.Time
}

func newTestClock() *testClock { return &testClock{t: time.Unix(1_700_000_000, 0)} }

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testEngine(t *testing.T, src string, clk *testClock) *Engine {
	t.Helper()
	snap, err := ParseConfig(src, "test")
	if err != nil {
		t.Fatalf("ParseConfig: %v", err)
	}
	e := NewEngine(snap, EngineConfig{
		BucketWidth: time.Second,
		FastShort:   5 * time.Second,
		FastLong:    20 * time.Second,
		SlowShort:   30 * time.Second,
		SlowLong:    60 * time.Second,
		Now:         clk.Now,
	})
	t.Cleanup(e.Stop)
	return e
}

func TestBudgetRing(t *testing.T) {
	r := newBudgetRing(time.Second, 10*time.Second)
	base := time.Unix(100, 0)
	r.add(base, false)
	r.add(base, true)
	r.add(base.Add(3*time.Second), false)
	good, bad := r.sum(base.Add(3*time.Second), 10*time.Second)
	if good != 2 || bad != 1 {
		t.Fatalf("sum over full window = %d/%d, want 2 good 1 bad", good, bad)
	}
	// A 2s window should only see the newest bucket.
	good, bad = r.sum(base.Add(3*time.Second), 2*time.Second)
	if good != 1 || bad != 0 {
		t.Fatalf("sum over 2s = %d/%d, want 1 good 0 bad", good, bad)
	}
	// After the ring ages out, old counts are gone.
	good, bad = r.sum(base.Add(30*time.Second), 10*time.Second)
	if good != 0 || bad != 0 {
		t.Fatalf("aged-out sum = %d/%d, want zeros", good, bad)
	}
}

func TestEnginePageOnFastBurn(t *testing.T) {
	clk := newTestClock()
	e := testEngine(t, "slo p99 target=99 latency=10ms", clk)

	var alerts []Alert
	e.SetOnAlert(func(a Alert) { alerts = append(alerts, a) })

	// All traffic breaches the latency objective: burn rate 1/0.01 = 100x,
	// far over the default 14x page threshold in both fast windows.
	for i := 0; i < 100; i++ {
		e.Record("compress", "", 200, 50*time.Millisecond)
		clk.Advance(100 * time.Millisecond)
	}
	e.Evaluate()
	if got := e.WorstState(); got != StatePage {
		t.Fatalf("state = %v, want page", got)
	}
	if len(alerts) != 1 || alerts[0].To != StatePage || alerts[0].SLO != "p99" {
		t.Fatalf("alerts = %+v, want one ok->page for p99", alerts)
	}
	if alerts[0].BurnFastShort < DefaultFastBurn {
		t.Fatalf("fast-short burn %v below page threshold", alerts[0].BurnFastShort)
	}
	if alerts[0].BudgetRemaining >= 0 {
		t.Fatalf("budget remaining %v, want overspent (negative)", alerts[0].BudgetRemaining)
	}

	st := e.Status()
	if len(st) != 1 || st[0].State != "page" || st[0].Pages != 1 {
		t.Fatalf("status = %+v, want paged once", st)
	}

	// Healthy traffic long enough for every window to clear recovers.
	for i := 0; i < 700; i++ {
		e.Record("compress", "", 200, time.Millisecond)
		clk.Advance(100 * time.Millisecond)
	}
	e.Evaluate()
	if got := e.WorstState(); got != StateOK {
		t.Fatalf("state after recovery = %v, want ok", got)
	}
	if len(alerts) != 2 || alerts[1].To != StateOK {
		t.Fatalf("alerts = %+v, want page->ok transition recorded", alerts)
	}
}

func TestEngineScopeMatching(t *testing.T) {
	clk := newTestClock()
	e := testEngine(t, `
slo compress-only target=99 endpoint=compress latency=10ms
slo acme-only target=99 tenant=acme latency=10ms
`, clk)

	// Slow traffic on a different endpoint/tenant must not burn either.
	for i := 0; i < 50; i++ {
		e.Record("simulate", "other", 200, time.Second)
	}
	e.Evaluate()
	if got := e.WorstState(); got != StateOK {
		t.Fatalf("unscoped traffic burned a scoped SLO: %v", got)
	}

	for i := 0; i < 50; i++ {
		e.Record("compress", "acme", 200, time.Second)
	}
	e.Evaluate()
	for _, st := range e.Status() {
		if st.State != "page" {
			t.Fatalf("slo %s = %s, want page", st.Name, st.State)
		}
	}
}

func TestEngineAvailabilityObjective(t *testing.T) {
	clk := newTestClock()
	e := testEngine(t, "slo avail target=99", clk)

	// Slow but successful requests never burn an availability objective.
	for i := 0; i < 50; i++ {
		e.Record("compress", "", 200, 10*time.Second)
	}
	e.Evaluate()
	if got := e.WorstState(); got != StateOK {
		t.Fatalf("slow 2xx burned availability SLO: %v", got)
	}
	for i := 0; i < 50; i++ {
		e.Record("compress", "", 503, time.Millisecond)
	}
	e.Evaluate()
	if got := e.WorstState(); got != StatePage {
		t.Fatalf("5xx storm did not page: %v", got)
	}
}

func TestEngineReloadPreservesState(t *testing.T) {
	clk := newTestClock()
	e := testEngine(t, "slo p99 target=99 latency=10ms", clk)
	for i := 0; i < 50; i++ {
		e.Record("compress", "", 200, time.Second)
	}
	e.Evaluate()
	if e.WorstState() != StatePage {
		t.Fatal("setup: want page")
	}

	// Same shape, new thresholds: ring and alert state carry over.
	snap, _ := ParseConfig("slo p99 target=99 latency=10ms fast-burn=500", "v2")
	e.Reload(snap)
	st := e.Status()
	if st[0].State != "page" || st[0].Bad == 0 {
		t.Fatalf("reload blanked carried state: %+v", st[0])
	}
	if st[0].FastBurn != 500 {
		t.Fatalf("reload did not adopt new threshold: %+v", st[0])
	}

	// Changed shape (new target): fresh ring, state resets.
	snap, _ = ParseConfig("slo p99 target=95 latency=10ms", "v3")
	e.Reload(snap)
	st = e.Status()
	if st[0].State != "ok" || st[0].Bad != 0 {
		t.Fatalf("shape change kept stale state: %+v", st[0])
	}
	if e.Source() != "v3" {
		t.Fatalf("source = %q, want v3", e.Source())
	}
}

func TestEngineRecordConcurrent(t *testing.T) {
	clk := newTestClock()
	e := testEngine(t, "slo p99 target=99 latency=10ms", clk)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				e.Record("compress", "", 200, time.Millisecond)
				e.Record("compress", "", 200, 50*time.Millisecond)
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				e.Evaluate()
				e.Status()
			}
		}
	}()
	wg.Wait()
	close(done)
	st := e.Status()
	if st[0].Good+st[0].Bad != 8000 {
		t.Fatalf("lost observations: good=%d bad=%d", st[0].Good, st[0].Bad)
	}
}
