package core

import (
	"fmt"
	"sync/atomic"

	"codepack/internal/isa"
	"codepack/internal/program"
)

// Compressed is a CodePack-compressed program: the compressed instruction
// region, the per-group index table, the two dictionaries, and per-block
// metadata used by the decompression timing model.
type Compressed struct {
	Name     string
	TextBase uint32 // native load address of instruction 0
	NumInstr int    // native instructions, before padding to a full group

	High *Dict // dictionary for high halfwords
	Low  *Dict // dictionary for low halfwords

	Index  []IndexEntry // one entry per compression group
	Region []byte       // concatenated compression blocks

	blocks []blockMeta
	stats  Stats

	// fast caches the table-driven decoder's dispatch tables (built from
	// High/Low on first decode; see fastdecode.go).
	fast atomic.Pointer[fastTabs]
}

// blockMeta records where a block lives and how its instructions are laid
// out within it. cumBits[i] is the bit length of the first i+1 codeword
// pairs; the timing model uses it to determine when each instruction's
// compressed bytes have arrived from memory.
type blockMeta struct {
	start   uint32 // byte offset in Region
	size    uint16 // byte length
	raw     bool
	cumBits [BlockInstrs]uint16
}

// Compress encodes the text section of im with CodePack.
func Compress(im *program.Image) (*Compressed, error) {
	return CompressWords(im.Name, im.TextBase, im.Text)
}

// Options tunes compression; the zero value selects CodePack's defaults
// (low-halfword zero pinned to the 2-bit class, break-even singleton
// exclusion).
type Options struct {
	High BuildDictOptions
	Low  BuildDictOptions
	// FixedHigh/FixedLow reuse existing dictionaries instead of building
	// program-specific ones. CodePack fixes dictionaries at program
	// load time precisely so they can be adapted per program; supplying
	// another program's tables quantifies what that adaptation buys.
	FixedHigh *Dict
	FixedLow  *Dict
}

func defaultOptions() Options {
	return Options{Low: BuildDictOptions{ForceZeroSlot0: true}}
}

// DefaultOptions returns CodePack's default compression options
// (low-halfword zero pinned to slot 0, break-even singleton exclusion).
func DefaultOptions() Options { return defaultOptions() }

// PhaseHook observes a compression's internal phases for tracing: it is
// called at the start of each phase — "dict-build", "encode",
// "index-build" — and the returned func marks the phase's end. A nil
// hook is allowed and costs nothing.
type PhaseHook func(phase string) (end func())

// CompressWords encodes a raw instruction stream with default options. The
// stream is padded with nops to a whole number of compression groups.
func CompressWords(name string, textBase uint32, text []isa.Word) (*Compressed, error) {
	return CompressWordsWith(name, textBase, text, defaultOptions())
}

// CompressWordsWith encodes a raw instruction stream with explicit
// dictionary-construction options (used by the ablation benchmarks).
func CompressWordsWith(name string, textBase uint32, text []isa.Word, opts Options) (*Compressed, error) {
	return CompressWordsHooked(name, textBase, text, opts, nil)
}

// CompressWordsHooked is CompressWordsWith with a PhaseHook reporting
// where the compression's time goes (the span-tracing path in cpackd).
func CompressWordsHooked(name string, textBase uint32, text []isa.Word, opts Options, hook PhaseHook) (*Compressed, error) {
	if len(text) == 0 {
		return nil, fmt.Errorf("core: empty text section")
	}
	padded := text
	if len(text)%GroupInstrs != 0 {
		padded = make([]isa.Word, (len(text)+GroupInstrs-1)/GroupInstrs*GroupInstrs)
		copy(padded, text)
	}

	c := &Compressed{
		Name:     name,
		TextBase: textBase,
		NumInstr: len(text),
		High:     opts.FixedHigh,
		Low:      opts.FixedLow,
	}
	phase := func(p string) func() {
		if hook == nil {
			return func() {}
		}
		return hook(p)
	}
	if c.High == nil || c.Low == nil {
		end := phase("dict-build")
		highCounts, lowCounts := CountHalfwords(padded)
		if c.High == nil {
			c.High = BuildDict(highCounts, opts.High)
		}
		if c.Low == nil {
			c.Low = BuildDict(lowCounts, opts.Low)
		}
		end()
	}

	nBlocks := len(padded) / BlockInstrs
	c.blocks = make([]blockMeta, nBlocks)
	c.Index = make([]IndexEntry, nBlocks/GroupBlocks)
	end := phase("encode")
	for b := 0; b < nBlocks; b++ {
		if err := c.encodeBlock(b, padded[b*BlockInstrs:(b+1)*BlockInstrs]); err != nil {
			return nil, err
		}
	}
	end()
	end = phase("index-build")
	defer end()
	for g := range c.Index {
		b0, b1 := &c.blocks[2*g], &c.blocks[2*g+1]
		e := IndexEntry{
			Block0Start: b0.start,
			Block0Len:   uint32(b0.size),
			Raw0:        b0.raw,
			Raw1:        b1.raw,
		}
		if e.Block0Start > maxBlock0Start {
			return nil, fmt.Errorf("core: compressed region exceeds %d bytes", maxBlock0Start)
		}
		if e.Block0Len > maxBlock0Len {
			return nil, fmt.Errorf("core: block 0 of group %d is %d bytes, format limit %d",
				g, e.Block0Len, maxBlock0Len)
		}
		c.Index[g] = e
	}
	c.finishStats(len(padded))
	return c, nil
}

// encodeHalf appends the codeword for halfword v against dictionary d,
// returning the class used.
func encodeHalf(w *bitWriter, d *Dict, v uint16) int {
	s := d.Lookup(v)
	if s < 0 {
		w.writeBits(classTag[classRaw], classTagBits[classRaw])
		w.writeBits(uint32(v), 16)
		return classRaw
	}
	cl, idx := classOfSlot(s)
	w.writeBits(classTag[cl], classTagBits[cl])
	w.writeBits(uint32(idx), classIndexBits[cl])
	return cl
}

func (c *Compressed) encodeBlock(b int, words []isa.Word) error {
	var w bitWriter
	meta := &c.blocks[b]
	meta.start = uint32(len(c.Region))

	var classes [BlockInstrs][2]int
	for i, word := range words {
		classes[i][0] = encodeHalf(&w, c.High, uint16(word>>16))
		classes[i][1] = encodeHalf(&w, c.Low, uint16(word))
		meta.cumBits[i] = uint16(w.nbit)
	}
	pad := w.align()

	if len(w.bytes()) >= BlockNativeBytes {
		// Compression would not shrink the block: store it raw.
		meta.raw = true
		meta.size = BlockNativeBytes
		for i := range words {
			meta.cumBits[i] = uint16((i + 1) * 32)
			c.stats.RawBlockInstrs++
		}
		for _, word := range words {
			c.Region = append(c.Region,
				byte(word>>24), byte(word>>16), byte(word>>8), byte(word))
		}
		c.stats.RawBits += BlockInstrs * 32
		return nil
	}

	meta.size = uint16(len(w.bytes()))
	c.Region = append(c.Region, w.bytes()...)
	c.stats.PadBits += int(pad)
	for i := range words {
		for _, cl := range classes[i] {
			if cl == classRaw {
				c.stats.RawTagBits += int(classTagBits[classRaw])
				c.stats.RawBits += 16
				c.stats.RawHalfwords++
			} else {
				c.stats.TagBits += int(classTagBits[cl])
				c.stats.IndexBits += int(classIndexBits[cl])
				c.stats.ClassCounts[cl]++
			}
		}
	}
	return nil
}

// NumBlocks returns the number of compression blocks.
func (c *Compressed) NumBlocks() int { return len(c.blocks) }

// BlockOf maps a native text address to its compression block number.
func (c *Compressed) BlockOf(addr uint32) int {
	return int(addr-c.TextBase) / 4 / BlockInstrs
}

// GroupOf maps a native text address to its compression group number.
func (c *Compressed) GroupOf(addr uint32) int {
	return int(addr-c.TextBase) / 4 / GroupInstrs
}

// BlockExtent returns the byte extent of block b within Region.
func (c *Compressed) BlockExtent(b int) (start, size uint32, raw bool, err error) {
	if b < 0 || b >= len(c.blocks) {
		return 0, 0, false, fmt.Errorf("core: block %d out of range", b)
	}
	m := &c.blocks[b]
	return m.start, uint32(m.size), m.raw, nil
}

// InstrReadyBytes returns, for instruction i of block b, the number of bytes
// from the start of the block that must have arrived before the instruction
// can be decoded. This drives the fetch/decompress overlap in the timing
// model.
func (c *Compressed) InstrReadyBytes(b, i int) int {
	return int(c.blocks[b].cumBits[i]+7) / 8
}

// LookupBlock resolves block b via the index table exactly as the hardware
// would: read the group entry, then apply the block-0 length delta.
func (c *Compressed) LookupBlock(b int) (start uint32, raw bool, err error) {
	g := b / GroupBlocks
	if g < 0 || g >= len(c.Index) {
		return 0, false, fmt.Errorf("core: group %d out of range", g)
	}
	e := c.Index[g]
	if b%GroupBlocks == 0 {
		return e.Block0Start, e.Raw0, nil
	}
	return e.Block0Start + e.Block0Len, e.Raw1, nil
}

// DecodeBlock decompresses block b into out with the decoder selected by
// the current DecodeMode (the table-driven fast path by default; see
// fastdecode.go).
func (c *Compressed) DecodeBlock(b int, out *[BlockInstrs]isa.Word) error {
	if CurrentDecodeMode() == DecodeReference {
		return c.DecodeBlockReference(b, out)
	}
	return c.fastDecode(b, out, nil)
}

// DecodeBlockReference decompresses block b with the bit-at-a-time tag
// walker, regardless of the current DecodeMode. It is the correctness
// oracle the fast decoder is differentially tested against, and the
// implementation closest to what the decompression hardware does.
func (c *Compressed) DecodeBlockReference(b int, out *[BlockInstrs]isa.Word) error {
	start, raw, err := c.LookupBlock(b)
	if err != nil {
		return err
	}
	if raw {
		if int(start)+BlockNativeBytes > len(c.Region) {
			return fmt.Errorf("core: raw block %d extends past region", b)
		}
		for i := range out {
			o := int(start) + i*4
			out[i] = uint32(c.Region[o])<<24 | uint32(c.Region[o+1])<<16 |
				uint32(c.Region[o+2])<<8 | uint32(c.Region[o+3])
		}
		return nil
	}
	end := int(start) + int(c.blocks[b].size)
	if end > len(c.Region) {
		return fmt.Errorf("core: block %d extends past region", b)
	}
	r := bitReader{buf: c.Region[start:end]}
	for i := range out {
		hi, err := decodeHalf(&r, c.High)
		if err != nil {
			return fmt.Errorf("core: block %d instr %d high: %w", b, i, err)
		}
		lo, err := decodeHalf(&r, c.Low)
		if err != nil {
			return fmt.Errorf("core: block %d instr %d low: %w", b, i, err)
		}
		out[i] = uint32(hi)<<16 | uint32(lo)
	}
	return nil
}

func decodeHalf(r *bitReader, d *Dict) (uint16, error) {
	if r.remaining() < 2 {
		return 0, fmt.Errorf("truncated codeword")
	}
	var cl int
	switch r.readBits(2) {
	case 0b00:
		cl = class0
	case 0b01:
		cl = class1
	case 0b10:
		cl = class2
	default:
		if r.readBits(1) == 0 {
			cl = class3
		} else {
			cl = classRaw
		}
	}
	if cl == classRaw {
		if r.remaining() < 16 {
			return 0, fmt.Errorf("truncated raw halfword")
		}
		return uint16(r.readBits(16)), nil
	}
	if r.remaining() < int(classIndexBits[cl]) {
		return 0, fmt.Errorf("truncated index")
	}
	idx := int(r.readBits(classIndexBits[cl]))
	v, err := d.Value(classBase[cl] + idx)
	if err != nil {
		return 0, fmt.Errorf("dictionary miss: %w", err)
	}
	return v, nil
}

// Decompress reconstructs the full native text section (without padding).
func (c *Compressed) Decompress() ([]isa.Word, error) {
	return c.AppendDecompress(make([]isa.Word, 0, len(c.blocks)*BlockInstrs))
}

// DecodeAt decompresses the single instruction at native address addr,
// exactly as the decompression hardware serves a cache miss.
func (c *Compressed) DecodeAt(addr uint32) (isa.Word, error) {
	idx := int(addr-c.TextBase) / 4
	if addr < c.TextBase || idx >= c.NumInstr || addr%4 != 0 {
		return 0, fmt.Errorf("core: address 0x%x outside compressed text", addr)
	}
	var blk [BlockInstrs]isa.Word
	if err := c.DecodeBlock(idx/BlockInstrs, &blk); err != nil {
		return 0, err
	}
	return blk[idx%BlockInstrs], nil
}
