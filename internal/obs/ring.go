package obs

import (
	"sync"
	"time"
)

// budgetRing is a sliding error-budget window: good/bad request counts
// in fixed-width time buckets, enough of them to cover the engine's
// longest burn window. Writes land in the bucket of "now"; sums walk
// backwards over however many buckets a window spans. Buckets that time
// passed over without traffic are zeroed lazily on the next touch.
type budgetRing struct {
	mu    sync.Mutex
	width time.Duration // bucket width
	good  []uint64
	bad   []uint64
	last  int64 // absolute index (unixNano/width) of the newest written bucket
}

func newBudgetRing(width time.Duration, span time.Duration) *budgetRing {
	n := int(span / width)
	if n < 1 {
		n = 1
	}
	return &budgetRing{
		width: width,
		good:  make([]uint64, n),
		bad:   make([]uint64, n),
		last:  -1,
	}
}

// advance zeroes every bucket between the last written one and idx, so
// a quiet stretch does not leave stale counts where new time lands.
// Caller holds mu.
func (r *budgetRing) advance(idx int64) {
	if r.last < 0 || idx-r.last >= int64(len(r.good)) {
		// First touch, or the whole ring has aged out.
		for i := range r.good {
			r.good[i], r.bad[i] = 0, 0
		}
		r.last = idx
		return
	}
	for i := r.last + 1; i <= idx; i++ {
		slot := int(i % int64(len(r.good)))
		r.good[slot], r.bad[slot] = 0, 0
	}
	if idx > r.last {
		r.last = idx
	}
}

// add records one request outcome at now.
func (r *budgetRing) add(now time.Time, bad bool) {
	idx := now.UnixNano() / int64(r.width)
	r.mu.Lock()
	r.advance(idx)
	slot := int(idx % int64(len(r.good)))
	if bad {
		r.bad[slot]++
	} else {
		r.good[slot]++
	}
	r.mu.Unlock()
}

// sum returns the good/bad totals over the trailing window ending at
// now. A window longer than the ring clamps to the whole ring.
func (r *budgetRing) sum(now time.Time, window time.Duration) (good, bad uint64) {
	idx := now.UnixNano() / int64(r.width)
	n := int(window / r.width)
	if n < 1 {
		n = 1
	}
	if n > len(r.good) {
		n = len(r.good)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.advance(idx)
	for i := 0; i < n; i++ {
		slot := int((idx - int64(i)) % int64(len(r.good)))
		if slot < 0 {
			slot += len(r.good)
		}
		good += r.good[slot]
		bad += r.bad[slot]
	}
	return good, bad
}
