package asm

import (
	"strings"
	"testing"

	"codepack/internal/isa"
)

func assemble(t *testing.T, src string) *programImage {
	t.Helper()
	im, err := Assemble("test", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return &programImage{t: t, im: im}
}

type programImage struct {
	t  *testing.T
	im interface {
		WordAt(uint32) (isa.Word, error)
		Symbol(string) (uint32, bool)
	}
}

func (p *programImage) word(i int) isa.Word {
	w, err := p.im.WordAt(isa.TextBase + uint32(i*4))
	if err != nil {
		p.t.Fatal(err)
	}
	return w
}

func TestBasicInstructions(t *testing.T) {
	p := assemble(t, `
main:
	addu $t0, $t1, $t2
	addiu $sp, $sp, -32
	lw $a0, 8($sp)
	sw $ra, 12($sp)
	sll $t0, $t0, 2
	lui $t1, 0x1234
`)
	tests := []isa.Inst{
		{Op: isa.OpADDU, Rd: 8, Rs: 9, Rt: 10},
		{Op: isa.OpADDIU, Rt: 29, Rs: 29, Imm: -32},
		{Op: isa.OpLW, Rt: 4, Rs: 29, Imm: 8},
		{Op: isa.OpSW, Rt: 31, Rs: 29, Imm: 12},
		{Op: isa.OpSLL, Rd: 8, Rt: 8, Shamt: 2},
		{Op: isa.OpLUI, Rt: 9, UImm: 0x1234},
	}
	for i, want := range tests {
		if got, wantW := p.word(i), isa.MustEncode(want); got != wantW {
			t.Errorf("instr %d: %s, want %s", i,
				isa.Disasm(0, got), isa.Disasm(0, wantW))
		}
	}
}

func TestLabelsAndBranches(t *testing.T) {
	p := assemble(t, `
main:
	beq $t0, $t1, fwd
	nop
fwd:	bne $t0, $zero, main
	j main
	jal fwd
`)
	beq := isa.Decode(p.word(0))
	if beq.Imm != 1 { // fwd is 2 instructions ahead: (target-pc-4)/4 = 1
		t.Errorf("forward branch offset %d, want 1", beq.Imm)
	}
	bne := isa.Decode(p.word(2))
	if bne.Imm != -3 {
		t.Errorf("backward branch offset %d, want -3", bne.Imm)
	}
	if j := isa.Decode(p.word(3)); j.Target != isa.TextBase {
		t.Errorf("j target %#x", j.Target)
	}
	if jal := isa.Decode(p.word(4)); jal.Target != isa.TextBase+8 {
		t.Errorf("jal target %#x", jal.Target)
	}
}

func TestPseudoExpansion(t *testing.T) {
	im, err := Assemble("t", `
main:
	li $t0, 5
	li $t1, 0x9000
	li $t2, 0x12345678
	li $t3, 0x10000
	la $t4, main
	move $t5, $t6
	b main
	beqz $t0, main
	bnez $t0, main
`)
	if err != nil {
		t.Fatal(err)
	}
	// li 5 -> 1 word; li 0x9000 -> 1 (ori); li 32-bit -> 2 (lui+ori);
	// li 0x10000 -> 1 (lui only); la -> always 2; rest 1 each.
	want := 1 + 1 + 2 + 1 + 2 + 1 + 1 + 1 + 1
	if len(im.Text) != want {
		t.Fatalf("text has %d words, want %d", len(im.Text), want)
	}
	if op := isa.Decode(im.Text[0]).Op; op != isa.OpADDIU {
		t.Errorf("small li is %v", op)
	}
	if op := isa.Decode(im.Text[1]).Op; op != isa.OpORI {
		t.Errorf("16-bit unsigned li is %v", op)
	}
}

func TestBranchComparisonPseudos(t *testing.T) {
	im, err := Assemble("t", `
main:
	blt $t0, $t1, main
	bge $t0, $t1, main
	bgt $t0, $t1, main
	ble $t0, $t1, main
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(im.Text) != 8 {
		t.Fatalf("4 comparison pseudos expanded to %d words, want 8", len(im.Text))
	}
	// blt = slt $at,$t0,$t1 ; bne $at,$0
	slt := isa.Decode(im.Text[0])
	if slt.Op != isa.OpSLT || slt.Rd != isa.RegAT || slt.Rs != 8 || slt.Rt != 9 {
		t.Errorf("blt slt wrong: %+v", slt)
	}
	if isa.Decode(im.Text[1]).Op != isa.OpBNE {
		t.Error("blt branch is not bne")
	}
	// bgt swaps operands.
	sgt := isa.Decode(im.Text[4])
	if sgt.Rs != 9 || sgt.Rt != 8 {
		t.Errorf("bgt did not swap operands: %+v", sgt)
	}
}

func TestDataSection(t *testing.T) {
	im, err := Assemble("t", `
	.text
main:	nop
	.data
val:	.word 0x11223344, 5
half:	.half 0x5566
byte:	.byte 1, 2, 3
str:	.asciiz "hi"
	.align 2
aligned: .word 7
buf:	.space 8
`)
	if err != nil {
		t.Fatal(err)
	}
	if a, _ := im.Symbol("val"); a != isa.DataBase {
		t.Errorf("val at %#x", a)
	}
	if im.Data[0] != 0x44 || im.Data[3] != 0x11 {
		t.Error(".word not little-endian")
	}
	if a, _ := im.Symbol("half"); a != isa.DataBase+8 {
		t.Errorf("half at %#x", a)
	}
	if a, _ := im.Symbol("str"); im.Data[a-isa.DataBase] != 'h' {
		t.Error("string content wrong")
	}
	if a, _ := im.Symbol("aligned"); a%4 != 0 {
		t.Errorf("aligned symbol at %#x", a)
	}
	if a, _ := im.Symbol("buf"); im.Data[a-isa.DataBase] != 0 {
		t.Error("space not zeroed")
	}
}

func TestWordWithSymbol(t *testing.T) {
	im, err := Assemble("t", `
main:	nop
f:	jr $ra
	.data
tab:	.word f, main
`)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := im.Symbol("f")
	got := uint32(im.Data[0]) | uint32(im.Data[1])<<8 | uint32(im.Data[2])<<16 | uint32(im.Data[3])<<24
	if got != f {
		t.Fatalf("function table entry %#x, want %#x", got, f)
	}
}

func TestComments(t *testing.T) {
	im, err := Assemble("t", `
# full line comment
main:	nop  # trailing comment
	.data
s:	.asciiz "a # not a comment"
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(im.Text) != 1 {
		t.Fatalf("text %d words, want 1", len(im.Text))
	}
	if !strings.Contains(string(im.Data), "# not a comment") {
		t.Error("comment stripping corrupted string literal")
	}
}

func TestEntryPoint(t *testing.T) {
	im, err := Assemble("t", "start:\n\tnop\nmain:\n\tnop\n")
	if err != nil {
		t.Fatal(err)
	}
	if im.Entry != isa.TextBase+4 {
		t.Fatalf("entry %#x, want main", im.Entry)
	}
	im2, err := Assemble("t", "start:\n\tnop\n")
	if err != nil {
		t.Fatal(err)
	}
	if im2.Entry != isa.TextBase {
		t.Fatalf("no-main entry %#x, want text base", im2.Entry)
	}
}

func TestErrors(t *testing.T) {
	cases := map[string]string{
		"unknown mnemonic":  "main:\n\tfrobnicate $t0\n",
		"undefined symbol":  "main:\n\tj nowhere\n",
		"bad register":      "main:\n\taddu $t0, $zz, $t1\n",
		"duplicate label":   "main:\nmain:\n\tnop\n",
		"bad directive":     "main:\n\t.bogus 3\n",
		"instr in data":     "\t.data\nmain:\n\tnop\n",
		"bad mem operand":   "main:\n\tlw $t0, 4[$sp]\n",
		"branch target far": "main:\n\tbeq $t0, $t1, far\nfar:\n", // control: valid
	}
	for name, src := range cases {
		_, err := Assemble("t", src)
		if name == "branch target far" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestFloatingPointSyntax(t *testing.T) {
	p := assemble(t, `
main:
	lwc1 $f2, 4($gp)
	add.d $f4, $f2, $f6
	mul.d $f8, $f4, $f4
	mov.d $f0, $f8
	swc1 $f0, 8($gp)
`)
	in := isa.Decode(p.word(1))
	if in.Op != isa.OpFADD || in.Rd != 4 || in.Rs != 2 || in.Rt != 6 {
		t.Errorf("add.d decoded as %+v", in)
	}
}

func TestJalrForms(t *testing.T) {
	p := assemble(t, `
main:
	jalr $t8
	jalr $t0, $t9
`)
	one := isa.Decode(p.word(0))
	if one.Op != isa.OpJALR || one.Rs != 24 || one.Rd != isa.RegRA {
		t.Errorf("jalr $t8 = %+v", one)
	}
	two := isa.Decode(p.word(1))
	if two.Rd != 8 || two.Rs != 25 {
		t.Errorf("jalr $t0,$t9 = %+v", two)
	}
}

func TestMoreDirectives(t *testing.T) {
	im, err := Assemble("t", `
	.globl main
	.ent main
main:	nop
	.end main
	.data
	.ascii "ab"
c:	.byte 'x'
	.align 3
w:	.word 1
`)
	if err != nil {
		t.Fatal(err)
	}
	if a, _ := im.Symbol("c"); im.Data[a-isa.DataBase] != 'x' {
		t.Error("char literal byte wrong")
	}
	if a, _ := im.Symbol("w"); a%8 != 0 {
		t.Errorf(".align 3 not honoured: %#x", a)
	}
	if im.Data[0] != 'a' || im.Data[1] != 'b' {
		t.Error(".ascii content wrong")
	}
}

func TestTextAlignEmitsNops(t *testing.T) {
	im, err := Assemble("t", "main:\n\tnop\n\t.align 3\nf:\tjr $ra\n")
	if err != nil {
		t.Fatal(err)
	}
	f, _ := im.Symbol("f")
	if f%8 != 0 {
		t.Fatalf("f at %#x, not 8-aligned", f)
	}
	if im.Text[1] != 0 {
		t.Error("padding is not a nop")
	}
}

func TestOperandErrorPaths(t *testing.T) {
	bad := []string{
		"main:\n\taddu $t0, $t1\n",           // missing operand
		"main:\n\tlw $t0, 4($t1\n",           // unterminated mem operand
		"main:\n\tsll $t0, $t1, $t2\n",       // shamt must be immediate
		"main:\n\tli $t0\n",                  // missing immediate
		"main:\n\tlwc1 $t0, 0($gp)\n",        // fp op needs $f register
		"main:\n\tadd.d $f1, $t0, $f2\n",     // int reg in fp slot
		"main:\n\tjalr\n",                    // no operands
		"main:\n\t.word zzz\n",               // undefined symbol in .word
		"main:\n\t.space -1\n",               // negative space
		"main:\n\t.align 99\n",               // absurd alignment
		"main:\n\t.asciiz nope\n",            // unquoted string
		"main:\n\tbeq $t0, $t1, 99999999#\n", // garbage target
	}
	for _, src := range bad {
		if _, err := Assemble("t", src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestBranchRangeCheck(t *testing.T) {
	// A branch target >32767 words away must be rejected in pass 2.
	var sb strings.Builder
	sb.WriteString("main:\n\tbeq $t0, $t1, far\n")
	for i := 0; i < 33000; i++ {
		sb.WriteString("\tnop\n")
	}
	sb.WriteString("far:\n\tnop\n")
	if _, err := Assemble("t", sb.String()); err == nil {
		t.Fatal("out-of-range branch accepted")
	}
}

func TestNegativeAndHexImmediates(t *testing.T) {
	p := assemble(t, `
main:
	addiu $t0, $zero, -32768
	ori   $t1, $zero, 0xFFFF
	lw    $t2, -4($sp)
`)
	if in := isa.Decode(p.word(0)); in.Imm != -32768 {
		t.Errorf("min imm %d", in.Imm)
	}
	if in := isa.Decode(p.word(1)); in.UImm != 0xFFFF {
		t.Errorf("max uimm %#x", in.UImm)
	}
	if in := isa.Decode(p.word(2)); in.Imm != -4 {
		t.Errorf("negative offset %d", in.Imm)
	}
}

func TestEmptyMemOffsetDefaultsZero(t *testing.T) {
	p := assemble(t, "main:\n\tlw $t0, ($sp)\n")
	if in := isa.Decode(p.word(0)); in.Imm != 0 {
		t.Errorf("empty offset = %d", in.Imm)
	}
}
