// Command cpack is the CodePack compression utility: it compresses SS32
// program images (the role IBM's "CodePack PowerPC Code Compression
// Utility" plays for PowerPC binaries), inspects the result and verifies
// lossless round trips.
//
// Usage:
//
//	cpack compress [-o prog.cpk] prog.s|prog.img
//	cpack decompress [-o prog.img] prog.cpk    # text-only program image
//	cpack stat prog.s|prog.img          # Table 3/4 style report
//	cpack verify prog.s|prog.img        # round-trip check
//	cpack dict [-n 16] prog.s|prog.img  # dictionary contents
//	cpack disasm [-n 32] prog.s|prog.img
//
// Inputs ending in .s are assembled; anything else is parsed as a program
// image produced with (*program.Image).Marshal.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"codepack/internal/asm"
	"codepack/internal/core"
	"codepack/internal/isa"
	"codepack/internal/program"
)

// errUsage routes bad invocations through run's single error path; main
// prints the usage line and exits 2 (any other error exits 1). It is the
// only exit-status distinction the tool makes.
var errUsage = errors.New("usage: cpack compress|decompress|stat|verify|dict|disasm [flags] <program>")

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cpack:", err)
		if errors.Is(err, errUsage) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// run dispatches the subcommand; every failure, usage errors included,
// comes back as an error so main is the single exit point.
func run(args []string) error {
	if len(args) < 1 {
		return errUsage
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "compress":
		return compress(rest)
	case "decompress":
		return decompress(rest)
	case "stat":
		return stat(rest)
	case "verify":
		return verify(rest)
	case "dict":
		return dict(rest)
	case "disasm":
		return disasm(rest)
	default:
		return fmt.Errorf("unknown command %q: %w", cmd, errUsage)
	}
}

// newFlagSet builds a subcommand flag set whose parse errors surface as
// errors instead of exiting the process directly.
func newFlagSet(name string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	return fs
}

// decompress expands a .cpk file back into a (text-only) program image.
func decompress(args []string) error {
	fs := newFlagSet("decompress")
	out := fs.String("o", "", "output path (default: input + .img)")
	if err := fs.Parse(args); err != nil {
		return fmt.Errorf("%v: %w", err, errUsage)
	}
	if fs.NArg() != 1 {
		return errUsage
	}
	b, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	c, err := core.UnmarshalCompressed(fs.Arg(0), b)
	if err != nil {
		return err
	}
	text, err := c.Decompress()
	if err != nil {
		return err
	}
	im := &program.Image{
		Name:     fs.Arg(0),
		Entry:    c.TextBase,
		TextBase: c.TextBase,
		Text:     text,
	}
	path := *out
	if path == "" {
		path = fs.Arg(0) + ".img"
	}
	if err := os.WriteFile(path, im.Marshal(), 0o644); err != nil {
		return err
	}
	fmt.Printf("%s: expanded %d instructions to %s (note: text section only;\n", fs.Arg(0), len(text), path)
	fmt.Println("the .cpk format carries no data segment or entry point)")
	return nil
}

// load reads a program from disk, assembling .s sources.
func load(path string) (*program.Image, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(path, ".s") || strings.HasSuffix(path, ".asm") {
		return asm.Assemble(path, string(b))
	}
	return program.Unmarshal(b)
}

func compress(args []string) error {
	fs := newFlagSet("compress")
	out := fs.String("o", "", "output path (default: input + .cpk)")
	if err := fs.Parse(args); err != nil {
		return fmt.Errorf("%v: %w", err, errUsage)
	}
	if fs.NArg() != 1 {
		return errUsage
	}
	im, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	c, err := core.Compress(im)
	if err != nil {
		return err
	}
	path := *out
	if path == "" {
		path = fs.Arg(0) + ".cpk"
	}
	if err := os.WriteFile(path, c.Marshal(), 0o644); err != nil {
		return err
	}
	s := c.Stats()
	fmt.Printf("%s: %d -> %d bytes (%.1f%%), wrote %s\n",
		im.Name, s.OriginalBytes, s.CompressedBytes(), 100*s.Ratio(), path)
	return nil
}

func stat(args []string) error {
	if len(args) != 1 {
		return errUsage
	}
	im, err := load(args[0])
	if err != nil {
		return err
	}
	c, err := core.Compress(im)
	if err != nil {
		return err
	}
	s := c.Stats()
	comp := s.Composition()
	fmt.Printf("program            %s\n", im.Name)
	fmt.Printf("original           %d bytes (%d instructions)\n", s.OriginalBytes, len(im.Text))
	fmt.Printf("compressed         %d bytes\n", s.CompressedBytes())
	fmt.Printf("compression ratio  %.1f%% (smaller is better)\n", 100*s.Ratio())
	fmt.Printf("index table        %.1f%% (%d bytes, %d groups)\n",
		100*comp.IndexTable, s.IndexTableBytes, len(c.Index))
	fmt.Printf("dictionaries       %.1f%% (high %d + low %d entries)\n",
		100*comp.Dictionary, c.High.Len(), c.Low.Len())
	fmt.Printf("compressed tags    %.1f%%\n", 100*comp.Tags)
	fmt.Printf("dictionary indices %.1f%%\n", 100*comp.DictIndices)
	fmt.Printf("raw tags           %.1f%%\n", 100*comp.RawTags)
	fmt.Printf("raw bits           %.1f%% (%d escaped halfwords, %d raw-block instrs)\n",
		100*comp.RawBits, s.RawHalfwords, s.RawBlockInstrs)
	fmt.Printf("pad                %.1f%%\n", 100*comp.Pad)
	return nil
}

func verify(args []string) error {
	if len(args) != 1 {
		return errUsage
	}
	im, err := load(args[0])
	if err != nil {
		return err
	}
	c, err := core.Compress(im)
	if err != nil {
		return err
	}
	// Round trip through the serialized form too, as the hardware would
	// see it.
	c2, err := core.UnmarshalCompressed(im.Name, c.Marshal())
	if err != nil {
		return fmt.Errorf("reload: %w", err)
	}
	out, err := c2.Decompress()
	if err != nil {
		return fmt.Errorf("decompress: %w", err)
	}
	for i, w := range out {
		if w != im.Text[i] {
			return fmt.Errorf("mismatch at instruction %d (%#x): got %#08x want %#08x",
				i, im.TextBase+uint32(4*i), w, im.Text[i])
		}
	}
	// Spot-check the random-access path used by the decompressor hardware.
	for i := 0; i < len(im.Text); i += 97 {
		w, err := c2.DecodeAt(im.TextBase + uint32(4*i))
		if err != nil {
			return err
		}
		if w != im.Text[i] {
			return fmt.Errorf("random access mismatch at instruction %d", i)
		}
	}
	fmt.Printf("%s: OK, %d instructions verified (ratio %.1f%%)\n",
		im.Name, len(im.Text), 100*c.Stats().Ratio())
	return nil
}

func dict(args []string) error {
	fs := newFlagSet("dict")
	n := fs.Int("n", 16, "entries to show per dictionary")
	if err := fs.Parse(args); err != nil {
		return fmt.Errorf("%v: %w", err, errUsage)
	}
	if fs.NArg() != 1 {
		return errUsage
	}
	im, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	c, err := core.Compress(im)
	if err != nil {
		return err
	}
	show := func(name string, d *core.Dict) {
		fmt.Printf("%s dictionary: %d entries\n", name, d.Len())
		for i, v := range d.Entries() {
			if i >= *n {
				fmt.Printf("  ... %d more\n", d.Len()-*n)
				break
			}
			fmt.Printf("  slot %3d: %#04x\n", i, v)
		}
	}
	show("high", c.High)
	show("low", c.Low)
	return nil
}

func disasm(args []string) error {
	fs := newFlagSet("disasm")
	n := fs.Int("n", 32, "instructions to show")
	if err := fs.Parse(args); err != nil {
		return fmt.Errorf("%v: %w", err, errUsage)
	}
	if fs.NArg() != 1 {
		return errUsage
	}
	im, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	for i, w := range im.Text {
		if i >= *n {
			fmt.Printf("... %d more instructions\n", len(im.Text)-*n)
			break
		}
		pc := im.TextBase + uint32(4*i)
		fmt.Printf("%08x:  %08x  %s\n", pc, w, isa.Disasm(pc, w))
	}
	return nil
}
