package server

import (
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"codepack/internal/trace"
)

// traceRecentResponse is the body of GET /debug/trace/recent.
type traceRecentResponse struct {
	// TotalRecorded counts every trace ever completed, including ones
	// the ring has since evicted.
	TotalRecorded uint64        `json:"total_recorded"`
	Traces        []trace.Trace `json:"traces"`
}

// handleTraceRecent serves the completed-trace ring, newest first.
// Query parameters: min_ms keeps only traces at least that long,
// endpoint filters by the endpoint name the request entered through,
// limit caps the result count.
func (s *Server) handleTraceRecent(w http.ResponseWriter, r *http.Request) {
	if s.tracer == nil {
		s.writeError(w, &httpError{code: http.StatusNotFound, msg: "tracing is disabled"})
		return
	}
	q := r.URL.Query()
	var minDur time.Duration
	if v := q.Get("min_ms"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil || ms < 0 {
			s.writeError(w, badRequest("min_ms: want a non-negative number, got %q", v))
			return
		}
		minDur = time.Duration(ms * float64(time.Millisecond))
	}
	limit := 0
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			s.writeError(w, badRequest("limit: want a non-negative integer, got %q", v))
			return
		}
		limit = n
	}
	traces := s.tracer.Recent(minDur, q.Get("endpoint"), limit)
	if traces == nil {
		traces = []trace.Trace{}
	}
	s.writeJSON(w, http.StatusOK, traceRecentResponse{
		TotalRecorded: s.tracer.Total(),
		Traces:        traces,
	})
}

// DebugHandler returns the private diagnostics surface: net/http/pprof,
// the trace ring, metrics and vars. Serve it on a separate operator
// listener (cpackd -debug-addr), never on the public port — profiling
// endpoints can stall the process and are not meant for clients. The
// public mux deliberately has no pprof routes.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /debug/trace/recent", s.handleTraceRecent)
	mux.HandleFunc("GET /debug/vars", s.handleVars)
	mux.HandleFunc("GET /debug/slo", s.handleDebugSLO)
	mux.HandleFunc("GET /debug/cluster", s.handleDebugCluster)
	if s.profiler != nil {
		mux.Handle("GET /debug/profiles/", s.profiler.Handler("/debug/profiles"))
	}
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}
