package tenant

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Snapshot is one immutable parsed tenants config. The request path
// reads a Snapshot through an atomic pointer; a reload builds a fresh
// one and swaps it in whole, so a half-applied config is never visible.
type Snapshot struct {
	// ClusterKey signs and verifies /internal/v1/* peer traffic.
	// Empty means open mode: internal endpoints accept unsigned
	// requests (the pre-tenancy trusted-network deployment).
	ClusterKey []byte
	// ByID indexes every declared tenant, including anon when enabled.
	ByID map[string]*Tenant
	// ByKey indexes key-bearing tenants for O(1) auth lookups.
	ByKey map[string]*Tenant
	// Anon is the pseudo-tenant admitted without a key, or nil when
	// anonymous access is disabled (unauthenticated requests get 401).
	Anon *Tenant
	// Source names where the snapshot came from, for logs.
	Source string
}

// Tenants returns the declared tenants in stable (config) order IDs.
func (s *Snapshot) TenantIDs() []string {
	ids := make([]string, 0, len(s.ByID))
	for id := range s.ByID {
		ids = append(ids, id)
	}
	return ids
}

// OpenSnapshot is the zero-config snapshot: no cluster key, anonymous
// callers admitted with weight 1 and no limits. It preserves the
// pre-tenancy behaviour of a server started without -tenants.
func OpenSnapshot() *Snapshot {
	anon := &Tenant{ID: AnonID, Weight: 1}
	return &Snapshot{
		ByID:   map[string]*Tenant{AnonID: anon},
		ByKey:  map[string]*Tenant{},
		Anon:   anon,
		Source: "open",
	}
}

// ParseConfig parses the tenants config format. It is line-based so it
// diffs and hot-edits well:
//
//	# comments and blank lines are ignored
//	cluster-key <secret>                # optional; enables signed peer traffic
//	tenant <id> key=<key> [weight=<n>] [rate=<rps>] [burst=<n>] [quota=<bytes|KiB|MiB|GiB>]
//	anon [weight=<n>] [rate=<rps>] [burst=<n>] [quota=<...>]  # enable unauthenticated access
//
// Defaults: weight=1, rate/quota unlimited, burst=max(1,rate). Errors
// name the offending line. The parser never panics on any input (see
// FuzzTenantConfig).
func ParseConfig(src, name string) (*Snapshot, error) {
	snap := &Snapshot{
		ByID:   map[string]*Tenant{},
		ByKey:  map[string]*Tenant{},
		Source: name,
	}
	sc := bufio.NewScanner(strings.NewReader(src))
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		errf := func(format string, args ...any) error {
			return fmt.Errorf("%s:%d: %s", name, lineNo, fmt.Sprintf(format, args...))
		}
		switch fields[0] {
		case "cluster-key":
			if len(fields) != 2 {
				return nil, errf("cluster-key takes exactly one value")
			}
			if len(snap.ClusterKey) > 0 {
				return nil, errf("duplicate cluster-key")
			}
			if err := validateKey(fields[1]); err != nil {
				return nil, errf("cluster-key: %v", err)
			}
			snap.ClusterKey = []byte(fields[1])
		case "tenant":
			if len(fields) < 2 {
				return nil, errf("tenant needs an id")
			}
			id := fields[1]
			if !ValidID(id) {
				return nil, errf("invalid tenant id %q (want lowercase [a-z0-9_-], 1..32 bytes)", id)
			}
			if id == AnonID || id == InternalID {
				return nil, errf("tenant id %q is reserved (use an %q line for anonymous access)", id, AnonID)
			}
			t := &Tenant{ID: id, Weight: 1}
			if err := parseAttrs(t, fields[2:], true); err != nil {
				return nil, errf("tenant %s: %v", id, err)
			}
			if _, dup := snap.ByID[id]; dup {
				return nil, errf("duplicate tenant id %q", id)
			}
			if prev, dup := snap.ByKey[t.Key]; dup {
				return nil, errf("tenant %s reuses the key of tenant %s", id, prev.ID)
			}
			snap.ByID[id] = t
			snap.ByKey[t.Key] = t
		case AnonID:
			if snap.Anon != nil {
				return nil, errf("duplicate anon line")
			}
			t := &Tenant{ID: AnonID, Weight: 1}
			if err := parseAttrs(t, fields[1:], false); err != nil {
				return nil, errf("anon: %v", err)
			}
			snap.Anon = t
			snap.ByID[AnonID] = t
		default:
			return nil, errf("unknown directive %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return snap, nil
}

// parseAttrs fills t from key=value attributes. wantKey requires (and
// permits) a key= attribute — the anon line takes none.
func parseAttrs(t *Tenant, attrs []string, wantKey bool) error {
	for _, a := range attrs {
		k, v, ok := strings.Cut(a, "=")
		if !ok || v == "" {
			return fmt.Errorf("malformed attribute %q (want key=value)", a)
		}
		switch k {
		case "key":
			if !wantKey {
				return fmt.Errorf("anon takes no key")
			}
			if err := validateKey(v); err != nil {
				return fmt.Errorf("key %s: %v", redact(v), err)
			}
			t.Key = v
		case "weight":
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 || n > 1000 {
				return fmt.Errorf("weight must be an integer in 1..1000, got %q", v)
			}
			t.Weight = n
		case "rate":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || f < 0 || f > 1e9 {
				return fmt.Errorf("rate must be a number in 0..1e9, got %q", v)
			}
			t.RateRPS = f
		case "burst":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || f < 0 || f > 1e9 {
				return fmt.Errorf("burst must be a number in 0..1e9, got %q", v)
			}
			t.Burst = f
		case "quota":
			n, err := parseBytes(v)
			if err != nil {
				return fmt.Errorf("quota: %v", err)
			}
			t.QuotaBytes = n
		default:
			return fmt.Errorf("unknown attribute %q", k)
		}
	}
	if wantKey && t.Key == "" {
		return fmt.Errorf("missing key=")
	}
	if t.RateRPS > 0 && t.Burst == 0 {
		t.Burst = max(1, t.RateRPS)
	}
	return nil
}

// parseBytes parses a byte size with an optional KiB/MiB/GiB suffix.
func parseBytes(s string) (int64, error) {
	mult := int64(1)
	for _, u := range []struct {
		suffix string
		mult   int64
	}{{"GiB", 1 << 30}, {"MiB", 1 << 20}, {"KiB", 1 << 10}} {
		if strings.HasSuffix(s, u.suffix) {
			s, mult = strings.TrimSuffix(s, u.suffix), u.mult
			break
		}
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("want a non-negative byte count (optionally KiB/MiB/GiB), got %q", s)
	}
	if mult > 1 && n > (1<<62)/mult {
		return 0, fmt.Errorf("byte count overflows: %q", s)
	}
	return n * mult, nil
}

// LoadFile reads and parses a tenants config file.
func LoadFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseConfig(string(data), path)
}
