// Command genbench emits the synthetic benchmark programs as assembly
// source or binary images, for use with cpack and external tools.
//
// Usage:
//
//	genbench -bench cc1 -o cc1.s          # assembly source
//	genbench -bench pegwit -bin -o p.img  # serialized program image
//	genbench -list
package main

import (
	"flag"
	"fmt"
	"os"

	"codepack/internal/workload"
)

func main() {
	bench := flag.String("bench", "", "benchmark name")
	out := flag.String("o", "", "output file (default stdout)")
	bin := flag.Bool("bin", false, "emit a serialized program image instead of source")
	list := flag.Bool("list", false, "list available benchmarks")
	dynamic := flag.Uint64("dynamic", 0, "override the target dynamic instruction count")
	flag.Parse()

	if *list {
		fmt.Println("bench     text KB  target dynamic")
		for _, p := range workload.Profiles() {
			fmt.Printf("%-9s %6d  %d\n", p.Name, p.TextKB, p.TargetDynamic)
		}
		return
	}
	p, ok := workload.ByName(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "genbench: unknown benchmark %q (try -list)\n", *bench)
		os.Exit(2)
	}
	if *dynamic > 0 {
		p.TargetDynamic = *dynamic
	}

	var data []byte
	if *bin {
		im, err := workload.Generate(p)
		if err != nil {
			fail(err)
		}
		data = im.Marshal()
	} else {
		src, err := workload.Source(p)
		if err != nil {
			fail(err)
		}
		data = []byte(src)
	}
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s (%d bytes)\n", *out, len(data))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "genbench:", err)
	os.Exit(1)
}
