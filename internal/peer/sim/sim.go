// Package sim is a deterministic cluster simulator for the dynamic
// membership layer in internal/peer. It drives the real exported state
// machine — peer.Membership on an injectable virtual clock, peer.Ring
// over the live view — under an in-memory message transport with
// injectable fault schedules: probabilistic drop, delay and duplication
// of every gossip round trip, named network partitions, node crashes
// and (durable-store) restarts, and impostor payload injection.
//
// Everything runs on one goroutine inside a virtual-time event loop
// seeded from a single PRNG: the same seed always yields the same
// interleaving, so a failing schedule is a repro, not a flake. Map
// iterations that feed the PRNG or the event queue are sorted first for
// the same reason.
//
// The simulator checks the properties the live cluster promises:
//
//   - after any fault schedule, once the network heals the ring
//     converges — every running node computes the same member list;
//   - every digest a client ever compressed still has a live owner and
//     is served warm post-convergence (zero recompressions);
//   - no unverified or wrong payload is ever served to a client, no
//     matter what impostors pushed.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"codepack/internal/peer"
)

// Config parameterizes a World. Zero values pick the defaults below.
type Config struct {
	// Nodes are the member URLs. Seeds maps a node to its seed list;
	// nodes absent from Seeds default to "every other node".
	Nodes []string
	Seeds map[string][]string

	// Replicas is the ring's vnode count per member;
	// ReplicationFactor is how many members hold each digest (R).
	Replicas          int
	ReplicationFactor int
	HeartbeatInterval time.Duration
	SuspectAfter      time.Duration
	DeadAfter         time.Duration
	GossipFanout      int

	// RPCTimeout is when an unanswered round trip reports failure;
	// MinDelay/MaxDelay bound one message hop's latency.
	RPCTimeout time.Duration
	MinDelay   time.Duration
	MaxDelay   time.Duration

	// DropProb drops a message hop (request and response roll
	// independently); DupProb delivers a request twice.
	DropProb float64
	DupProb  float64
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = peer.DefaultReplicas
	}
	if c.ReplicationFactor <= 0 {
		c.ReplicationFactor = 1
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = time.Second
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 3 * c.HeartbeatInterval
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 10 * c.HeartbeatInterval
	}
	if c.GossipFanout <= 0 {
		c.GossipFanout = peer.DefaultGossipFanout
	}
	if c.RPCTimeout <= 0 {
		c.RPCTimeout = c.HeartbeatInterval
	}
	if c.MinDelay <= 0 {
		c.MinDelay = 5 * time.Millisecond
	}
	if c.MaxDelay < c.MinDelay {
		c.MaxDelay = 10 * c.MinDelay
	}
	return c
}

// Stats are the world's lifetime fault and invariant counters.
type Stats struct {
	Messages         int // round trips attempted
	Dropped          int // message hops lost to DropProb or a partition
	Duplicated       int // requests delivered twice
	RingChanges      int // ring rebuilds across all nodes
	Recompressions   int // client requests that paid a local compression
	UnverifiedServed int // INVARIANT: must stay 0
	WrongServed      int // INVARIANT: must stay 0
}

// event is one scheduled callback; the heap orders by virtual time,
// then insertion sequence, so ties resolve deterministically.
type event struct {
	at  int64
	seq int64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() *event  { return h[0] }

// World is one simulated cluster: the nodes, the virtual clock, the
// event queue and the fault state.
type World struct {
	cfg   Config
	rng   *rand.Rand
	now   int64 // virtual nanoseconds
	seq   int64
	queue eventHeap
	nodes map[string]*node
	order []string // node URLs, sorted: the deterministic iteration order

	groups    map[string]int // partition groups; nil = fully connected
	committed map[string]bool

	stats  Stats
	events []string
}

// logf appends one line to the event log, stamped with virtual time.
// Everything that feeds a line is derived from the seed, so two runs of
// the same schedule produce byte-identical logs — the determinism guard
// in sim-smoke diffs them.
func (w *World) logf(format string, args ...any) {
	w.events = append(w.events, fmt.Sprintf("%09dus ", w.now/1e3)+fmt.Sprintf(format, args...))
}

// EventLog returns the full event log, one line per event.
func (w *World) EventLog() string { return strings.Join(w.events, "\n") }

// New builds a world with every node stopped; call Boot (or Restart
// individual nodes) to start them.
func New(seed int64, cfg Config) *World {
	cfg = cfg.withDefaults()
	w := &World{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(seed)),
		nodes:     make(map[string]*node),
		committed: make(map[string]bool),
	}
	for _, url := range cfg.Nodes {
		seeds := cfg.Seeds[url]
		if seeds == nil {
			for _, other := range cfg.Nodes {
				if other != url {
					seeds = append(seeds, other)
				}
			}
		}
		w.nodes[url] = &node{w: w, url: url, seeds: seeds, durable: make(map[string][]byte)}
		w.order = append(w.order, url)
	}
	sort.Strings(w.order)
	return w
}

// clock is the injectable Now for peer.Membership.
func (w *World) clock() time.Time { return time.Unix(0, w.now) }

// schedule queues fn to run after d of virtual time.
func (w *World) schedule(d time.Duration, fn func()) {
	w.seq++
	heap.Push(&w.queue, &event{at: w.now + int64(d), seq: w.seq, fn: fn})
}

// Run advances virtual time by d, executing every event that falls due.
func (w *World) Run(d time.Duration) {
	end := w.now + int64(d)
	for len(w.queue) > 0 && w.queue.peek().at <= end {
		ev := heap.Pop(&w.queue).(*event)
		w.now = ev.at
		ev.fn()
	}
	w.now = end
}

// Boot starts every node.
func (w *World) Boot() {
	for _, url := range w.order {
		w.nodes[url].start()
	}
}

// Crash stops a node hard: volatile state is gone, timers die, in-flight
// responses to it are discarded. Its durable store (verified entries,
// the -cache-dir analogue) survives for a later Restart.
func (w *World) Crash(url string) {
	w.logf("crash %s", url)
	w.nodes[url].crash()
}

// Restart boots a crashed node: fresh membership at generation 1 (its
// tombstone, if any, is refuted by incarnation on first contact), cache
// reloaded from the durable store.
func (w *World) Restart(url string) {
	w.logf("restart %s", url)
	w.nodes[url].start()
}

// Partition splits the network into the given groups; nodes in
// different groups cannot exchange messages. Unlisted nodes form an
// implicit extra group each.
func (w *World) Partition(groups ...[]string) {
	w.logf("partition %v", groups)
	w.groups = make(map[string]int)
	for i, g := range groups {
		for _, url := range g {
			w.groups[url] = i
		}
	}
	next := len(groups)
	for _, url := range w.order {
		if _, ok := w.groups[url]; !ok {
			w.groups[url] = next
			next++
		}
	}
}

// Heal removes every partition.
func (w *World) Heal() {
	if w.groups != nil {
		w.logf("heal")
	}
	w.groups = nil
}

func (w *World) blocked(a, b string) bool {
	return w.groups != nil && w.groups[a] != w.groups[b]
}

// delay draws one message hop's latency.
func (w *World) delay() time.Duration {
	span := int64(w.cfg.MaxDelay - w.cfg.MinDelay)
	return w.cfg.MinDelay + time.Duration(w.rng.Int63n(span+1))
}

// rpc is one faulty round trip: the request may be dropped, delayed or
// duplicated on the way in, the response dropped or delayed on the way
// out; done fires exactly once, with ok=false at RPCTimeout if no
// response made it back. Duplicate deliveries re-run the handler (its
// side effects must be idempotent — that is the point) but answer once.
func (w *World) rpc(from, to string, handler func(*node) any, done func(resp any, ok bool)) {
	w.stats.Messages++
	responded := false
	w.schedule(w.cfg.RPCTimeout, func() {
		if !responded {
			responded = true
			done(nil, false)
		}
	})
	deliveries := 1
	if w.rng.Float64() < w.cfg.DupProb {
		deliveries = 2
		w.stats.Duplicated++
	}
	for i := 0; i < deliveries; i++ {
		if w.blocked(from, to) || w.rng.Float64() < w.cfg.DropProb {
			w.stats.Dropped++
			continue
		}
		w.schedule(w.delay(), func() {
			tn := w.nodes[to]
			if !tn.up {
				return
			}
			resp := handler(tn)
			if w.blocked(to, from) || w.rng.Float64() < w.cfg.DropProb {
				w.stats.Dropped++
				return
			}
			w.schedule(w.delay(), func() {
				if !responded {
					responded = true
					done(resp, true)
				}
			})
		})
	}
}

// canonical is the one true payload for a digest — the simulator's
// stand-in for "what compressing this program produces". Verification
// against it models the server's word-for-word decompress-and-compare.
func canonical(digest string) []byte { return []byte("compressed:" + digest) }

// Compress models a client POST /v1/compress for digest at the given
// node: local verified cache, then quarantine-verify, then owner fetch,
// then local compression (counted in Stats.Recompressions) with async
// replication — the same tiered path as internal/server.
func (w *World) Compress(url, digest string) {
	w.committed[digest] = true
	w.nodes[url].compress(digest)
}

// InjectCorrupt models an impostor PUT: a well-formed but wrong payload
// pushed straight at a node's replication endpoint. It lands in
// quarantine only if the node does not already hold the digest, exactly
// like the real handler.
func (w *World) InjectCorrupt(url, digest string) {
	n := w.nodes[url]
	if !n.up {
		return
	}
	n.handlePut(digest, []byte("corrupt:"+digest))
}

// Up reports whether a node is running.
func (w *World) Up(url string) bool { return w.nodes[url].up }

// Live returns a running node's current ring view.
func (w *World) Live(url string) []string { return w.nodes[url].mem.Live() }

// Stats returns the world's counters.
func (w *World) Stats() Stats { return w.stats }

// NodeStats returns one node's lifetime event counters (zero value for
// an unknown URL).
func (w *World) NodeStats(url string) NodeStats {
	if n, ok := w.nodes[url]; ok {
		return n.stats
	}
	return NodeStats{}
}

// Committed returns every digest a client ever compressed, sorted.
func (w *World) Committed() []string {
	out := make([]string, 0, len(w.committed))
	for d := range w.committed {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// upNodes returns the running nodes' URLs, sorted.
func (w *World) upNodes() []string {
	var out []string
	for _, url := range w.order {
		if w.nodes[url].up {
			out = append(out, url)
		}
	}
	return out
}

// Converged reports whether every running node's ring view equals
// exactly the set of running nodes.
func (w *World) Converged() bool {
	want := w.upNodes()
	for _, url := range want {
		if !equalStrings(w.nodes[url].mem.Live(), want) {
			return false
		}
	}
	return len(want) > 0
}

// Settle heals the network, turns faults off, and runs heartbeat rounds
// until the ring converges (or maxRounds elapse). Once converged it
// runs one final anti-entropy pass on every node — the steady-state
// equivalent of each node's next ring-change or restart pass — and
// drains it, so every committed digest reaches its final owner.
func (w *World) Settle(maxRounds int) error {
	w.Heal()
	w.cfg.DropProb, w.cfg.DupProb = 0, 0
	for i := 0; i < maxRounds; i++ {
		w.Run(w.cfg.HeartbeatInterval)
		if w.Converged() {
			for _, url := range w.upNodes() {
				w.nodes[url].runAE()
			}
			w.Run(4 * w.cfg.RPCTimeout)
			if !w.Converged() {
				continue
			}
			return nil
		}
	}
	views := make(map[string][]string)
	for _, url := range w.upNodes() {
		views[url] = w.nodes[url].mem.Live()
	}
	return fmt.Errorf("sim: no convergence after %d rounds: views %v", maxRounds, views)
}

// CheckWarm asserts the post-convergence warm-serve property: every
// committed digest, requested at every running node, is served without
// a recompression — from the local verified cache or the ring owner.
// It returns the number of recompressions those requests paid (the
// caller asserts 0) and any invariant violation.
func (w *World) CheckWarm() (recompressions int, err error) {
	before := w.stats.Recompressions
	for _, digest := range w.Committed() {
		owners := ""
		for _, url := range w.upNodes() {
			n := w.nodes[url]
			if o := strings.Join(n.ring.Owners(digest, w.cfg.ReplicationFactor), " "); owners == "" {
				owners = o
			} else if o != owners {
				return 0, fmt.Errorf("sim: ring disagreement for %s: [%s] vs [%s]", digest, owners, o)
			}
		}
		for _, url := range w.upNodes() {
			w.nodes[url].compress(digest)
		}
	}
	if w.stats.UnverifiedServed > 0 {
		return 0, fmt.Errorf("sim: %d unverified payloads served", w.stats.UnverifiedServed)
	}
	if w.stats.WrongServed > 0 {
		return 0, fmt.Errorf("sim: %d wrong payloads served", w.stats.WrongServed)
	}
	return w.stats.Recompressions - before, nil
}

// CheckReplication asserts the post-convergence placement property:
// every committed digest is held — quarantined or verified — by every
// running member of its replica set, so the cluster tolerates the loss
// of any R-1 of them without a recompression.
func (w *World) CheckReplication() error {
	up := w.upNodes()
	if len(up) == 0 {
		return fmt.Errorf("sim: no running nodes")
	}
	ring := w.nodes[up[0]].ring
	for _, d := range w.Committed() {
		for _, o := range ring.Owners(d, w.cfg.ReplicationFactor) {
			n := w.nodes[o]
			if !n.up {
				continue
			}
			if _, ok := n.cache[d]; !ok {
				return fmt.Errorf("sim: replica %s missing committed digest %s", o, d)
			}
		}
	}
	return nil
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
