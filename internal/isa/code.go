package isa

import "fmt"

// Inst is a decoded SS32 instruction. Fields not used by a format are zero.
type Inst struct {
	Op     Op
	Rs     uint8  // source register 1 (or base for memory ops)
	Rt     uint8  // source register 2 / destination for I-format
	Rd     uint8  // destination for R-format
	Shamt  uint8  // shift amount
	Imm    int32  // sign-extended 16-bit immediate
	UImm   uint32 // zero-extended 16-bit immediate (logical ops, LUI)
	Target uint32 // absolute byte target for J/JAL
}

// Decode decodes one instruction word. Unknown encodings decode to OpInvalid.
func Decode(w Word) Inst {
	op := w >> 26
	rs := uint8(w >> 21 & 31)
	rt := uint8(w >> 16 & 31)
	rd := uint8(w >> 11 & 31)
	sh := uint8(w >> 6 & 31)
	imm := int32(int16(w))
	uimm := w & 0xFFFF

	switch op {
	case opSpecial:
		in := Inst{Rs: rs, Rt: rt, Rd: rd, Shamt: sh}
		switch w & 0x3F {
		case fnSLL:
			in.Op = OpSLL
		case fnSRL:
			in.Op = OpSRL
		case fnSRA:
			in.Op = OpSRA
		case fnSLLV:
			in.Op = OpSLLV
		case fnSRLV:
			in.Op = OpSRLV
		case fnSRAV:
			in.Op = OpSRAV
		case fnJR:
			in.Op = OpJR
		case fnJALR:
			in.Op = OpJALR
		case fnSYSCALL:
			in.Op = OpSYSCALL
		case fnMFHI:
			in.Op = OpMFHI
		case fnMFLO:
			in.Op = OpMFLO
		case fnMULT:
			in.Op = OpMULT
		case fnMULTU:
			in.Op = OpMULTU
		case fnDIV:
			in.Op = OpDIV
		case fnDIVU:
			in.Op = OpDIVU
		case fnADD:
			in.Op = OpADD
		case fnADDU:
			in.Op = OpADDU
		case fnSUB:
			in.Op = OpSUB
		case fnSUBU:
			in.Op = OpSUBU
		case fnAND:
			in.Op = OpAND
		case fnOR:
			in.Op = OpOR
		case fnXOR:
			in.Op = OpXOR
		case fnNOR:
			in.Op = OpNOR
		case fnSLT:
			in.Op = OpSLT
		case fnSLTU:
			in.Op = OpSLTU
		}
		return in
	case opRegImm:
		in := Inst{Rs: rs, Imm: imm}
		switch rt {
		case riBLTZ:
			in.Op = OpBLTZ
		case riBGEZ:
			in.Op = OpBGEZ
		}
		return in
	case opJ, opJAL:
		o := OpJ
		if op == opJAL {
			o = OpJAL
		}
		return Inst{Op: o, Target: (w & 0x03FF_FFFF) << 2}
	case opCOP1:
		// COP1: | op | fmt | ft | fs | fd | funct |
		in := Inst{Rs: rd, Rt: rt, Rd: sh} // fs, ft, fd
		switch w & 0x3F {
		case fpADD:
			in.Op = OpFADD
		case fpSUB:
			in.Op = OpFSUB
		case fpMUL:
			in.Op = OpFMUL
		case fpDIV:
			in.Op = OpFDIV
		case fpMOV:
			in.Op = OpFMOV
		case fpNEG:
			in.Op = OpFNEG
		}
		return in
	}

	in := Inst{Rs: rs, Rt: rt, Imm: imm, UImm: uimm}
	switch op {
	case opBEQ:
		in.Op = OpBEQ
	case opBNE:
		in.Op = OpBNE
	case opBLEZ:
		in.Op = OpBLEZ
	case opBGTZ:
		in.Op = OpBGTZ
	case opADDI:
		in.Op = OpADDI
	case opADDIU:
		in.Op = OpADDIU
	case opSLTI:
		in.Op = OpSLTI
	case opSLTIU:
		in.Op = OpSLTIU
	case opANDI:
		in.Op = OpANDI
	case opORI:
		in.Op = OpORI
	case opXORI:
		in.Op = OpXORI
	case opLUI:
		in.Op = OpLUI
	case opLB:
		in.Op = OpLB
	case opLH:
		in.Op = OpLH
	case opLW:
		in.Op = OpLW
	case opLBU:
		in.Op = OpLBU
	case opLHU:
		in.Op = OpLHU
	case opSB:
		in.Op = OpSB
	case opSH:
		in.Op = OpSH
	case opSW:
		in.Op = OpSW
	case opLWC1:
		in.Op = OpLWC1
	case opSWC1:
		in.Op = OpSWC1
	}
	return in
}

// Encode produces the instruction word for in. It is the inverse of Decode
// for every valid instruction.
func Encode(in Inst) (Word, error) {
	r := func(op uint32, in Inst, fn uint32) Word {
		return op<<26 | uint32(in.Rs)<<21 | uint32(in.Rt)<<16 |
			uint32(in.Rd)<<11 | uint32(in.Shamt)<<6 | fn
	}
	i := func(op uint32, in Inst) Word {
		return op<<26 | uint32(in.Rs)<<21 | uint32(in.Rt)<<16 | uint32(uint16(in.Imm))
	}
	iu := func(op uint32, in Inst) Word {
		return op<<26 | uint32(in.Rs)<<21 | uint32(in.Rt)<<16 | in.UImm&0xFFFF
	}
	switch in.Op {
	case OpSLL:
		return r(opSpecial, in, fnSLL), nil
	case OpSRL:
		return r(opSpecial, in, fnSRL), nil
	case OpSRA:
		return r(opSpecial, in, fnSRA), nil
	case OpSLLV:
		return r(opSpecial, in, fnSLLV), nil
	case OpSRLV:
		return r(opSpecial, in, fnSRLV), nil
	case OpSRAV:
		return r(opSpecial, in, fnSRAV), nil
	case OpJR:
		return r(opSpecial, in, fnJR), nil
	case OpJALR:
		return r(opSpecial, in, fnJALR), nil
	case OpSYSCALL:
		return r(opSpecial, Inst{}, fnSYSCALL), nil
	case OpMFHI:
		return r(opSpecial, Inst{Rd: in.Rd}, fnMFHI), nil
	case OpMFLO:
		return r(opSpecial, Inst{Rd: in.Rd}, fnMFLO), nil
	case OpMULT:
		return r(opSpecial, Inst{Rs: in.Rs, Rt: in.Rt}, fnMULT), nil
	case OpMULTU:
		return r(opSpecial, Inst{Rs: in.Rs, Rt: in.Rt}, fnMULTU), nil
	case OpDIV:
		return r(opSpecial, Inst{Rs: in.Rs, Rt: in.Rt}, fnDIV), nil
	case OpDIVU:
		return r(opSpecial, Inst{Rs: in.Rs, Rt: in.Rt}, fnDIVU), nil
	case OpADD:
		return r(opSpecial, in, fnADD), nil
	case OpADDU:
		return r(opSpecial, in, fnADDU), nil
	case OpSUB:
		return r(opSpecial, in, fnSUB), nil
	case OpSUBU:
		return r(opSpecial, in, fnSUBU), nil
	case OpAND:
		return r(opSpecial, in, fnAND), nil
	case OpOR:
		return r(opSpecial, in, fnOR), nil
	case OpXOR:
		return r(opSpecial, in, fnXOR), nil
	case OpNOR:
		return r(opSpecial, in, fnNOR), nil
	case OpSLT:
		return r(opSpecial, in, fnSLT), nil
	case OpSLTU:
		return r(opSpecial, in, fnSLTU), nil
	case OpBLTZ:
		return i(opRegImm, Inst{Rs: in.Rs, Rt: riBLTZ, Imm: in.Imm}), nil
	case OpBGEZ:
		return i(opRegImm, Inst{Rs: in.Rs, Rt: riBGEZ, Imm: in.Imm}), nil
	case OpJ:
		return opJ<<26 | in.Target>>2&0x03FF_FFFF, nil
	case OpJAL:
		return opJAL<<26 | in.Target>>2&0x03FF_FFFF, nil
	case OpBEQ:
		return i(opBEQ, in), nil
	case OpBNE:
		return i(opBNE, in), nil
	case OpBLEZ:
		return i(opBLEZ, Inst{Rs: in.Rs, Imm: in.Imm}), nil
	case OpBGTZ:
		return i(opBGTZ, Inst{Rs: in.Rs, Imm: in.Imm}), nil
	case OpADDI:
		return i(opADDI, in), nil
	case OpADDIU:
		return i(opADDIU, in), nil
	case OpSLTI:
		return i(opSLTI, in), nil
	case OpSLTIU:
		return i(opSLTIU, in), nil
	case OpANDI:
		return iu(opANDI, in), nil
	case OpORI:
		return iu(opORI, in), nil
	case OpXORI:
		return iu(opXORI, in), nil
	case OpLUI:
		return iu(opLUI, Inst{Rt: in.Rt, UImm: in.UImm}), nil
	case OpLB:
		return i(opLB, in), nil
	case OpLH:
		return i(opLH, in), nil
	case OpLW:
		return i(opLW, in), nil
	case OpLBU:
		return i(opLBU, in), nil
	case OpLHU:
		return i(opLHU, in), nil
	case OpSB:
		return i(opSB, in), nil
	case OpSH:
		return i(opSH, in), nil
	case OpSW:
		return i(opSW, in), nil
	case OpLWC1:
		return i(opLWC1, in), nil
	case OpSWC1:
		return i(opSWC1, in), nil
	case OpFADD, OpFSUB, OpFMUL, OpFDIV, OpFMOV, OpFNEG:
		var fn uint32
		switch in.Op {
		case OpFADD:
			fn = fpADD
		case OpFSUB:
			fn = fpSUB
		case OpFMUL:
			fn = fpMUL
		case OpFDIV:
			fn = fpDIV
		case OpFMOV:
			fn = fpMOV
		default:
			fn = fpNEG
		}
		// fs in the rd slot, ft in the rt slot, fd in the shamt slot.
		return opCOP1<<26 | uint32(in.Rt)<<16 | uint32(in.Rs)<<11 |
			uint32(in.Rd)<<6 | fn, nil
	}
	return 0, fmt.Errorf("isa: cannot encode op %v", in.Op)
}

// MustEncode is Encode, panicking on invalid input. It is intended for code
// generators whose input is statically known to be valid.
func MustEncode(in Inst) Word {
	w, err := Encode(in)
	if err != nil {
		panic(err)
	}
	return w
}

// IsControl reports whether op redirects the PC (branch or jump).
func IsControl(op Op) bool {
	c := ClassOf(op)
	return c == ClassBranch || c == ClassJump
}

// IsCondBranch reports whether op is a conditional branch.
func IsCondBranch(op Op) bool { return ClassOf(op) == ClassBranch }

// BranchTarget returns the byte target of a PC-relative branch located at pc.
func BranchTarget(pc uint32, in Inst) uint32 {
	return pc + 4 + uint32(in.Imm)<<2
}
