package core

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"codepack/internal/isa"
)

// The golden decoder corpus: small compressed images committed under
// testdata/, each pinned with the SHA-256 of its decoded text. Decoder
// refactors diff against these known-good bytes — a change to either
// decoder that alters a single output word fails here before any fuzz or
// simulation gets involved. Regenerate after an intentional encoding
// change with
//
//	go test ./internal/core -run TestGoldenCorpus -update-golden
//
// (the same convention as the harness golden tables).
var updateGolden = flag.Bool("update-golden", false, "rewrite the golden decoder corpus")

const goldenDigestFile = "decoder.digests"

// goldenPrograms returns the deterministic programs behind the corpus,
// chosen to pin every decoder path: all five tag classes, raw (stored
// uncompressed) blocks mixed with encoded ones, a padded tail block, a
// single-instruction image, and a block whose bitstream ends exactly on
// a byte boundary.
func goldenPrograms() map[string][]isa.Word {
	progs := map[string][]isa.Word{}

	// classes: frequency-engineered stream populating class 0 through
	// class 3 of both dictionaries plus raw escapes.
	rng := rand.New(rand.NewSource(1999))
	progs["classes"] = classText(rng, 640)

	// rawmix: mostly incompressible, so raw blocks sit next to encoded
	// ones and the group index exercises both Raw0/Raw1 combinations.
	progs["rawmix"] = rawishText(rand.New(rand.NewSource(77)), 512)

	// tail: 37 instructions — not a whole group, so the final block is
	// nop-padded and Decompress must truncate to NumInstr.
	progs["tail"] = synthText(rand.New(rand.NewSource(5)), 37)

	// tiny: a single instruction, the smallest legal image.
	progs["tiny"] = []isa.Word{0xDEADBEEF}

	// aligned: every instruction is one frequent high half (class 1
	// after slot 0 goes to the most frequent) and the zero low half —
	// engineered so codeword pairs keep blocks byte-dense, covering the
	// no-padding boundary case.
	aligned := make([]isa.Word, 64)
	for i := range aligned {
		aligned[i] = 0x1000_0000 // high 0x1000 (class 0), low zero (class 0)
	}
	progs["aligned"] = aligned
	return progs
}

func goldenPath(name string) string {
	return filepath.Join("testdata", name+".cpack")
}

func TestGoldenCorpus(t *testing.T) {
	progs := goldenPrograms()
	if *updateGolden {
		var lines []string
		for name, text := range progs {
			c, err := CompressWords(name, isa.TextBase, text)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if err := os.WriteFile(goldenPath(name), c.Marshal(), 0o644); err != nil {
				t.Fatal(err)
			}
			out, err := c.Decompress()
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			lines = append(lines, fmt.Sprintf("%s %s", name, digestWords(out)))
		}
		// Deterministic file order regardless of map iteration.
		sortLines(lines)
		content := "# <image> <sha256 of decoded text words, big-endian>\n" +
			strings.Join(lines, "\n") + "\n"
		if err := os.WriteFile(filepath.Join("testdata", goldenDigestFile), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %d golden images + %s", len(progs), goldenDigestFile)
		return
	}

	digests := readGoldenDigests(t)
	for name, text := range progs {
		blob, err := os.ReadFile(goldenPath(name))
		if err != nil {
			t.Fatalf("missing golden image %s (regenerate with -update-golden): %v", name, err)
		}
		c, err := UnmarshalCompressed(name, blob)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}

		// Both decoders must reproduce the pinned bytes.
		fast, err := c.Decompress()
		if err != nil {
			t.Fatalf("%s fast: %v", name, err)
		}
		ref := decompressReference(t, c)
		if len(fast) != len(ref) {
			t.Fatalf("%s: fast %d words, reference %d", name, len(fast), len(ref))
		}
		for i := range fast {
			if fast[i] != ref[i] {
				t.Fatalf("%s word %d: fast %#x, reference %#x", name, i, fast[i], ref[i])
			}
		}
		want, ok := digests[name]
		if !ok {
			t.Fatalf("%s missing from %s (regenerate with -update-golden)", name, goldenDigestFile)
		}
		if got := digestWords(fast); got != want {
			t.Fatalf("%s decode drifted:\n  got:  %s\n  want: %s\n(rerun with -update-golden if intentional)",
				name, got, want)
		}
		// The committed image must still decode to the generator's
		// program: the corpus pins bytes, not just self-consistency.
		if len(fast) != len(text) {
			t.Fatalf("%s: decoded %d words, generator has %d", name, len(fast), len(text))
		}
		for i := range fast {
			if fast[i] != text[i] {
				t.Fatalf("%s word %d: decoded %#x, generator %#x", name, i, fast[i], text[i])
			}
		}
	}
	// Every digest line must correspond to a generator, so stale corpus
	// entries are caught.
	for name := range digests {
		if _, ok := progs[name]; !ok {
			t.Fatalf("stale golden entry %q (regenerate with -update-golden)", name)
		}
	}
}

// TestGoldenCorpusCoversTagClasses guards the corpus's reason to exist:
// between them, the committed images must exercise every tag class and
// both block storage forms.
func TestGoldenCorpusCoversTagClasses(t *testing.T) {
	var classes [numClasses]int
	rawBlocks, encBlocks := 0, 0
	for name, text := range goldenPrograms() {
		// Unmarshal drops composition counters, so recompress the
		// generator program to read them.
		c, err := CompressWords(name, isa.TextBase, text)
		if err != nil {
			t.Fatal(err)
		}
		st := c.Stats()
		for cl, n := range st.ClassCounts {
			classes[cl] += n
		}
		if st.RawHalfwords > 0 {
			classes[classRaw] += st.RawHalfwords
		}
		for b := 0; b < c.NumBlocks(); b++ {
			_, _, raw, err := c.BlockExtent(b)
			if err != nil {
				t.Fatal(err)
			}
			if raw {
				rawBlocks++
			} else {
				encBlocks++
			}
		}
	}
	for cl := class0; cl <= classRaw; cl++ {
		if classes[cl] == 0 {
			t.Errorf("corpus never uses tag class %d", cl)
		}
	}
	if rawBlocks == 0 || encBlocks == 0 {
		t.Errorf("corpus blocks: %d raw / %d encoded, want both nonzero", rawBlocks, encBlocks)
	}
}

func digestWords(words []isa.Word) string {
	h := sha256.New()
	var b [4]byte
	for _, w := range words {
		b[0], b[1], b[2], b[3] = byte(w>>24), byte(w>>16), byte(w>>8), byte(w)
		h.Write(b[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

func readGoldenDigests(t *testing.T) map[string]string {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", goldenDigestFile))
	if err != nil {
		t.Fatalf("missing %s (regenerate with -update-golden): %v", goldenDigestFile, err)
	}
	defer f.Close()
	out := map[string]string{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("bad digest line %q", line)
		}
		out[fields[0]] = fields[1]
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func sortLines(lines []string) {
	for i := 1; i < len(lines); i++ {
		for j := i; j > 0 && lines[j] < lines[j-1]; j-- {
			lines[j], lines[j-1] = lines[j-1], lines[j]
		}
	}
}
