package asm

import (
	"fmt"
	"strings"

	"codepack/internal/isa"
)

func (a *assembler) instruction(m, rest string) error {
	ops := splitOperands(rest)
	switch m {
	// Pseudo-instructions first.
	case "nop":
		a.emitWord(0)
		return nil
	case "li":
		rt, err := reg(ops, 0)
		if err != nil {
			return err
		}
		v, err := a.value(op(ops, 1))
		if err != nil {
			return err
		}
		return a.loadImm(rt, uint32(v))
	case "la":
		rt, err := reg(ops, 0)
		if err != nil {
			return err
		}
		v, err := a.value(op(ops, 1))
		if err != nil {
			return err
		}
		// Always two words so pass-1 sizing never depends on symbol values.
		a.emit(isa.Inst{Op: isa.OpLUI, Rt: rt, UImm: uint32(v) >> 16})
		a.emit(isa.Inst{Op: isa.OpORI, Rt: rt, Rs: rt, UImm: uint32(v) & 0xFFFF})
		return nil
	case "move":
		rd, err1 := reg(ops, 0)
		rs, err2 := reg(ops, 1)
		if err := first(err1, err2); err != nil {
			return err
		}
		a.emit(isa.Inst{Op: isa.OpADDU, Rd: rd, Rs: rs})
		return nil
	case "not":
		rd, err1 := reg(ops, 0)
		rs, err2 := reg(ops, 1)
		if err := first(err1, err2); err != nil {
			return err
		}
		a.emit(isa.Inst{Op: isa.OpNOR, Rd: rd, Rs: rs})
		return nil
	case "neg":
		rd, err1 := reg(ops, 0)
		rs, err2 := reg(ops, 1)
		if err := first(err1, err2); err != nil {
			return err
		}
		a.emit(isa.Inst{Op: isa.OpSUBU, Rd: rd, Rt: rs})
		return nil
	case "b":
		return a.branch(isa.OpBEQ, 0, 0, op(ops, 0))
	case "beqz":
		rs, err := reg(ops, 0)
		if err != nil {
			return err
		}
		return a.branch(isa.OpBEQ, rs, 0, op(ops, 1))
	case "bnez":
		rs, err := reg(ops, 0)
		if err != nil {
			return err
		}
		return a.branch(isa.OpBNE, rs, 0, op(ops, 1))
	case "blt", "bge", "bgt", "ble":
		rs, err1 := reg(ops, 0)
		rt, err2 := reg(ops, 1)
		if err := first(err1, err2); err != nil {
			return err
		}
		if m == "bgt" || m == "ble" {
			rs, rt = rt, rs
		}
		a.emit(isa.Inst{Op: isa.OpSLT, Rd: isa.RegAT, Rs: rs, Rt: rt})
		br := isa.OpBNE // blt/bgt: taken when slt set
		if m == "bge" || m == "ble" {
			br = isa.OpBEQ
		}
		return a.branch(br, isa.RegAT, 0, op(ops, 2))
	}

	ins, ok := byName[m]
	if !ok {
		return fmt.Errorf("unknown mnemonic %q", m)
	}
	return a.real(ins, ops)
}

// loadImm expands "li" into the shortest correct sequence.
func (a *assembler) loadImm(rt uint8, v uint32) error {
	switch {
	case int32(v) >= -32768 && int32(v) <= 32767:
		a.emit(isa.Inst{Op: isa.OpADDIU, Rt: rt, Imm: int32(v)})
	case v <= 0xFFFF:
		a.emit(isa.Inst{Op: isa.OpORI, Rt: rt, UImm: v})
	default:
		a.emit(isa.Inst{Op: isa.OpLUI, Rt: rt, UImm: v >> 16})
		if v&0xFFFF != 0 {
			a.emit(isa.Inst{Op: isa.OpORI, Rt: rt, Rs: rt, UImm: v & 0xFFFF})
		}
	}
	return nil
}

func (a *assembler) emit(in isa.Inst) {
	if !a.pass2 {
		a.emitWord(0)
		return
	}
	a.emitWord(isa.MustEncode(in))
}

func (a *assembler) branch(opc isa.Op, rs, rt uint8, target string) error {
	v, err := a.value(target)
	if err != nil {
		return err
	}
	off := (int64(v) - int64(a.textAddr) - 4) >> 2
	if a.pass2 && (off < -32768 || off > 32767) {
		return fmt.Errorf("branch target out of range (%d words)", off)
	}
	a.emit(isa.Inst{Op: opc, Rs: rs, Rt: rt, Imm: int32(off)})
	return nil
}

// real assembles a non-pseudo instruction according to its operand pattern.
func (a *assembler) real(opc isa.Op, ops []string) error {
	switch opc {
	case isa.OpSLL, isa.OpSRL, isa.OpSRA:
		rd, e1 := reg(ops, 0)
		rt, e2 := reg(ops, 1)
		if err := first(e1, e2); err != nil {
			return err
		}
		sh, err := a.value(op(ops, 2))
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: opc, Rd: rd, Rt: rt, Shamt: uint8(sh) & 31})
	case isa.OpSLLV, isa.OpSRLV, isa.OpSRAV:
		rd, e1 := reg(ops, 0)
		rt, e2 := reg(ops, 1)
		rs, e3 := reg(ops, 2)
		if err := first(e1, e2, e3); err != nil {
			return err
		}
		a.emit(isa.Inst{Op: opc, Rd: rd, Rt: rt, Rs: rs})
	case isa.OpADD, isa.OpADDU, isa.OpSUB, isa.OpSUBU, isa.OpAND, isa.OpOR,
		isa.OpXOR, isa.OpNOR, isa.OpSLT, isa.OpSLTU:
		rd, e1 := reg(ops, 0)
		rs, e2 := reg(ops, 1)
		rt, e3 := reg(ops, 2)
		if err := first(e1, e2, e3); err != nil {
			return err
		}
		a.emit(isa.Inst{Op: opc, Rd: rd, Rs: rs, Rt: rt})
	case isa.OpMULT, isa.OpMULTU, isa.OpDIV, isa.OpDIVU:
		rs, e1 := reg(ops, 0)
		rt, e2 := reg(ops, 1)
		if err := first(e1, e2); err != nil {
			return err
		}
		a.emit(isa.Inst{Op: opc, Rs: rs, Rt: rt})
	case isa.OpMFHI, isa.OpMFLO:
		rd, err := reg(ops, 0)
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: opc, Rd: rd})
	case isa.OpJR:
		rs, err := reg(ops, 0)
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: opc, Rs: rs})
	case isa.OpJALR:
		// "jalr $rs" or "jalr $rd, $rs".
		rd, rs := uint8(isa.RegRA), uint8(0)
		var err error
		if len(ops) == 1 {
			rs, err = reg(ops, 0)
		} else {
			rd, err = reg(ops, 0)
			if err == nil {
				rs, err = reg(ops, 1)
			}
		}
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: opc, Rd: rd, Rs: rs})
	case isa.OpSYSCALL:
		a.emit(isa.Inst{Op: opc})
	case isa.OpJ, isa.OpJAL:
		v, err := a.value(op(ops, 0))
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: opc, Target: uint32(v)})
	case isa.OpBEQ, isa.OpBNE:
		rs, e1 := reg(ops, 0)
		rt, e2 := reg(ops, 1)
		if err := first(e1, e2); err != nil {
			return err
		}
		return a.branch(opc, rs, rt, op(ops, 2))
	case isa.OpBLEZ, isa.OpBGTZ, isa.OpBLTZ, isa.OpBGEZ:
		rs, err := reg(ops, 0)
		if err != nil {
			return err
		}
		return a.branch(opc, rs, 0, op(ops, 1))
	case isa.OpADDI, isa.OpADDIU, isa.OpSLTI, isa.OpSLTIU:
		rt, e1 := reg(ops, 0)
		rs, e2 := reg(ops, 1)
		if err := first(e1, e2); err != nil {
			return err
		}
		v, err := a.value(op(ops, 2))
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: opc, Rt: rt, Rs: rs, Imm: int32(v)})
	case isa.OpANDI, isa.OpORI, isa.OpXORI:
		rt, e1 := reg(ops, 0)
		rs, e2 := reg(ops, 1)
		if err := first(e1, e2); err != nil {
			return err
		}
		v, err := a.value(op(ops, 2))
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: opc, Rt: rt, Rs: rs, UImm: uint32(v) & 0xFFFF})
	case isa.OpLUI:
		rt, err := reg(ops, 0)
		if err != nil {
			return err
		}
		v, err := a.value(op(ops, 1))
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: opc, Rt: rt, UImm: uint32(v) & 0xFFFF})
	case isa.OpLB, isa.OpLH, isa.OpLW, isa.OpLBU, isa.OpLHU,
		isa.OpSB, isa.OpSH, isa.OpSW, isa.OpLWC1, isa.OpSWC1:
		var rt uint8
		var err error
		if opc == isa.OpLWC1 || opc == isa.OpSWC1 {
			rt, err = fpReg(op(ops, 0))
		} else {
			rt, err = reg(ops, 0)
		}
		if err != nil {
			return err
		}
		off, base, err := a.memOperand(op(ops, 1))
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: opc, Rt: rt, Rs: base, Imm: off})
	case isa.OpFADD, isa.OpFSUB, isa.OpFMUL, isa.OpFDIV:
		fd, e1 := fpReg(op(ops, 0))
		fs, e2 := fpReg(op(ops, 1))
		ft, e3 := fpReg(op(ops, 2))
		if err := first(e1, e2, e3); err != nil {
			return err
		}
		a.emit(isa.Inst{Op: opc, Rd: fd, Rs: fs, Rt: ft})
	case isa.OpFMOV, isa.OpFNEG:
		fd, e1 := fpReg(op(ops, 0))
		fs, e2 := fpReg(op(ops, 1))
		if err := first(e1, e2); err != nil {
			return err
		}
		a.emit(isa.Inst{Op: opc, Rd: fd, Rs: fs})
	default:
		return fmt.Errorf("unhandled op %v", opc)
	}
	return nil
}

// memOperand parses "offset(base)" where offset may be a literal or symbol.
func (a *assembler) memOperand(s string) (int32, uint8, error) {
	i := strings.IndexByte(s, '(')
	if i < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	off := int64(0)
	if strings.TrimSpace(s[:i]) != "" {
		var err error
		off, err = a.value(s[:i])
		if err != nil {
			return 0, 0, err
		}
	}
	base, err := regName(s[i+1 : len(s)-1])
	return int32(off), base, err
}

func op(ops []string, i int) string {
	if i >= len(ops) {
		return ""
	}
	return ops[i]
}

func reg(ops []string, i int) (uint8, error) { return regName(op(ops, i)) }

func regName(s string) (uint8, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "$") {
		return 0, fmt.Errorf("bad register %q", s)
	}
	r := isa.RegNumber(s[1:])
	if r < 0 {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return uint8(r), nil
}

func fpReg(s string) (uint8, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "$f") {
		return 0, fmt.Errorf("bad fp register %q", s)
	}
	r := isa.RegNumber(s[2:])
	if r < 0 {
		return 0, fmt.Errorf("bad fp register %q", s)
	}
	return uint8(r), nil
}

func first(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// byName maps mnemonics to ops for all non-pseudo instructions.
var byName = map[string]isa.Op{}

func init() {
	for op := isa.OpSLL; op < isa.Op(255); op++ {
		name := op.String()
		if name == "invalid" {
			break
		}
		byName[name] = op
	}
}
