package core

import (
	"math/rand"
	"strings"
	"testing"

	"codepack/internal/isa"
)

// classText builds a stream that exercises every tag class of both
// dictionaries: a handful of very frequent values (classes 0-2), a long
// tail of repeated-twice values (class 3 past the break-even policy), and
// unique singletons that must escape as raw halfwords.
func classText(rng *rand.Rand, n int) []isa.Word {
	text := make([]isa.Word, n)
	for i := range text {
		var hi, lo uint16
		switch rng.Intn(10) {
		case 0, 1, 2:
			hi, lo = 0x1000, 0 // class 0 contenders (low zero pinned)
		case 3, 4:
			hi, lo = uint16(0x2000+rng.Intn(8)), uint16(0x0010+rng.Intn(8))
		case 5, 6:
			hi, lo = uint16(0x3000+rng.Intn(64)), uint16(0x0100+rng.Intn(64))
		case 7, 8:
			// Repeated often enough to clear MinClass3Count, rare enough
			// to rank behind the small classes.
			hi, lo = uint16(0x4000+rng.Intn(200)), uint16(0x1000+rng.Intn(200))
		default:
			hi, lo = uint16(0x8000+i), uint16(0x8000+i) // raw escapes
		}
		text[i] = uint32(hi)<<16 | uint32(lo)
	}
	return text
}

// rawishText is mostly incompressible, so many blocks store raw.
func rawishText(rng *rand.Rand, n int) []isa.Word {
	text := make([]isa.Word, n)
	for i := range text {
		if rng.Intn(4) == 0 {
			text[i] = 0x24420004
		} else {
			text[i] = rng.Uint32()
		}
	}
	return text
}

// decompressReference decodes the whole image with the oracle walker.
func decompressReference(t *testing.T, c *Compressed) []isa.Word {
	t.Helper()
	out := make([]isa.Word, 0, c.NumBlocks()*BlockInstrs)
	var blk [BlockInstrs]isa.Word
	for b := 0; b < c.NumBlocks(); b++ {
		if err := c.DecodeBlockReference(b, &blk); err != nil {
			t.Fatalf("reference block %d: %v", b, err)
		}
		out = append(out, blk[:]...)
	}
	return out[:c.NumInstr]
}

// TestFastDecodeMatchesReference holds the fast decoder word-for-word
// identical to the oracle across program shapes that hit all five tag
// classes, raw blocks, and padded tail blocks.
func TestFastDecodeMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 15, 16, 17, 31, 32, 33, 100, 1000, 4096} {
		for gi, gen := range []func(*rand.Rand, int) []isa.Word{synthText, classText, rawishText} {
			text := gen(rng, n)
			c, err := CompressWords("diff", isa.TextBase, text)
			if err != nil {
				t.Fatalf("n=%d gen=%d: %v", n, gi, err)
			}
			want := decompressReference(t, c)
			got, err := c.Decompress() // fast by default
			if err != nil {
				t.Fatalf("n=%d gen=%d fast: %v", n, gi, err)
			}
			if len(got) != len(want) {
				t.Fatalf("n=%d gen=%d: fast %d words, reference %d", n, gi, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d gen=%d word %d: fast %#x, reference %#x",
						n, gi, i, got[i], want[i])
				}
			}
			var ref, fast [BlockInstrs]isa.Word
			for b := 0; b < c.NumBlocks(); b++ {
				if err := c.DecodeBlockReference(b, &ref); err != nil {
					t.Fatal(err)
				}
				if err := c.DecodeBlockFast(b, &fast); err != nil {
					t.Fatal(err)
				}
				if ref != fast {
					t.Fatalf("n=%d gen=%d block %d diverges:\n fast %x\n ref  %x", n, gi, b, fast, ref)
				}
			}
		}
	}
}

// TestFastDecodeConsumedBitsMatchInstrReadyBytes is the byte-arrival
// contract: the bit position the fast decoder has consumed after each
// instruction must equal the encoder-recorded cumulative bit count, so
// InstrReadyBytes — which drives the timing model's fetch/decode
// overlap — describes exactly what the fast decoder reads.
func TestFastDecodeConsumedBitsMatchInstrReadyBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{16, 33, 512, 2048} {
		for gi, gen := range []func(*rand.Rand, int) []isa.Word{synthText, classText, rawishText} {
			c, err := CompressWords("pos", isa.TextBase, gen(rng, n))
			if err != nil {
				t.Fatalf("n=%d gen=%d: %v", n, gi, err)
			}
			var out [BlockInstrs]isa.Word
			var pos [BlockInstrs]uint16
			for b := 0; b < c.NumBlocks(); b++ {
				if err := c.DecodeBlockPositions(b, &out, &pos); err != nil {
					t.Fatalf("block %d: %v", b, err)
				}
				for i := 0; i < BlockInstrs; i++ {
					if pos[i] != c.blocks[b].cumBits[i] {
						t.Fatalf("n=%d gen=%d block %d instr %d: fast consumed %d bits, encoder recorded %d",
							n, gi, b, i, pos[i], c.blocks[b].cumBits[i])
					}
					if want := int(pos[i]+7) / 8; c.InstrReadyBytes(b, i) != want {
						t.Fatalf("block %d instr %d: InstrReadyBytes %d, fast decoder needs %d",
							b, i, c.InstrReadyBytes(b, i), want)
					}
				}
			}
		}
	}
}

// TestDecodeModeEscapeHatch proves the mode switch reroutes the public
// entry points, and that both routes agree.
func TestDecodeModeEscapeHatch(t *testing.T) {
	if CurrentDecodeMode() != DecodeFast {
		t.Fatalf("default mode = %d, want DecodeFast", CurrentDecodeMode())
	}
	c, err := CompressWords("mode", isa.TextBase, classText(rand.New(rand.NewSource(3)), 500))
	if err != nil {
		t.Fatal(err)
	}
	fast, err := c.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	prev := SetDecodeMode(DecodeReference)
	defer SetDecodeMode(prev)
	if prev != DecodeFast {
		t.Fatalf("SetDecodeMode returned %d, want previous DecodeFast", prev)
	}
	ref, err := c.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if ref[i] != fast[i] {
			t.Fatalf("word %d: reference %#x, fast %#x", i, ref[i], fast[i])
		}
	}
	at, err := c.DecodeAt(isa.TextBase + 4)
	if err != nil {
		t.Fatal(err)
	}
	if at != ref[1] {
		t.Fatalf("DecodeAt under reference mode = %#x, want %#x", at, ref[1])
	}
}

// TestAppendDecompressReuse checks the pooled-buffer contract: a
// pre-sized destination is decoded into in place without reallocating,
// and appending starts after the existing contents.
func TestAppendDecompressReuse(t *testing.T) {
	c, err := CompressWords("app", isa.TextBase, classText(rand.New(rand.NewSource(5)), 300))
	if err != nil {
		t.Fatal(err)
	}
	first, err := c.AppendDecompress(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 300 {
		t.Fatalf("decoded %d words, want 300", len(first))
	}
	// Reuse: same backing array, no growth.
	again, err := c.AppendDecompress(first[:0])
	if err != nil {
		t.Fatal(err)
	}
	if &again[0] != &first[0] {
		t.Fatal("pre-sized buffer was reallocated")
	}
	// Append semantics: existing prefix preserved.
	prefixed, err := c.AppendDecompress(append([]isa.Word(nil), 0xDEAD, 0xBEEF))
	if err != nil {
		t.Fatal(err)
	}
	if prefixed[0] != 0xDEAD || prefixed[1] != 0xBEEF || len(prefixed) != 302 {
		t.Fatalf("prefix not preserved: len=%d head=%#x,%#x", len(prefixed), prefixed[0], prefixed[1])
	}
	for i, w := range first {
		if prefixed[2+i] != w {
			t.Fatalf("word %d: %#x want %#x", i, prefixed[2+i], w)
		}
	}
}

// TestFastDecodeTruncationAndMiss drives the fast decoder's failure
// paths: both decoders must reject a truncated or dictionary-missing
// stream (messages may differ, outcomes may not).
func TestFastDecodeTruncationAndMiss(t *testing.T) {
	c, err := CompressWords("trunc", isa.TextBase, classText(rand.New(rand.NewSource(9)), 256))
	if err != nil {
		t.Fatal(err)
	}
	// Truncate the region in place: some block now extends past it.
	full := c.Region
	c.Region = full[:len(full)/2]
	var out [BlockInstrs]isa.Word
	sawFastErr, sawRefErr := false, false
	for b := 0; b < c.NumBlocks(); b++ {
		errFast := c.DecodeBlockFast(b, &out)
		errRef := c.DecodeBlockReference(b, &out)
		if (errFast == nil) != (errRef == nil) {
			t.Fatalf("block %d: fast err=%v, reference err=%v", b, errFast, errRef)
		}
		sawFastErr = sawFastErr || errFast != nil
		sawRefErr = sawRefErr || errRef != nil
	}
	if !sawFastErr || !sawRefErr {
		t.Fatal("truncated region decoded cleanly by both decoders")
	}
	c.Region = full

	// Shrink the dictionaries: in-dictionary codewords now miss.
	small, err := NewDict(nil)
	if err != nil {
		t.Fatal(err)
	}
	missC, err := CompressWords("miss", isa.TextBase, classText(rand.New(rand.NewSource(9)), 256))
	if err != nil {
		t.Fatal(err)
	}
	missC.High, missC.Low = small, small
	for b := 0; b < missC.NumBlocks(); b++ {
		_, _, raw, err := missC.BlockExtent(b)
		if err != nil {
			t.Fatal(err)
		}
		if raw {
			continue
		}
		errFast := missC.DecodeBlockFast(b, &out)
		errRef := missC.DecodeBlockReference(b, &out)
		if (errFast == nil) != (errRef == nil) {
			t.Fatalf("block %d: fast err=%v, reference err=%v", b, errFast, errRef)
		}
		if errFast != nil && !strings.Contains(errFast.Error(), "miss") &&
			!strings.Contains(errFast.Error(), "truncated") {
			t.Fatalf("unexpected fast error: %v", errFast)
		}
	}
}

// TestFastTablesConcurrentBuild races first decodes; run with -race.
func TestFastTablesConcurrentBuild(t *testing.T) {
	c, err := CompressWords("race", isa.TextBase, synthText(rand.New(rand.NewSource(2)), 1024))
	if err != nil {
		t.Fatal(err)
	}
	want := decompressReference(t, c)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			got, err := c.Decompress()
			if err == nil {
				for i := range got {
					if got[i] != want[i] {
						err = errFastRaceMismatch
						break
					}
				}
			}
			done <- err
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

var errFastRaceMismatch = errorString("concurrent fast decode diverged from reference")

type errorString string

func (e errorString) Error() string { return string(e) }
