// Package lefurgy implements the dictionary compression scheme of Lefurgy,
// Bird, Chen and Mudge (paper section 2.3): complete 32-bit instructions
// are the compression symbols, frequent instructions are replaced by short
// tagged codewords indexing a dictionary of up to a few thousand entries,
// and everything else is escaped verbatim.
//
// The paper notes this achieves compression ratios similar to CodePack but
// "requires a dictionary with several thousand entries which could
// increase access time and hinder high-speed implementations" — this
// package exists to reproduce that related-work comparison.
package lefurgy

import (
	"fmt"
	"sort"

	"codepack/internal/isa"
)

// Codeword classes: like CodePack, a short tag announces the size.
//
//	tag 00  + 8-bit index  -> 10 bits (256 entries)
//	tag 01  + 12-bit index -> 14 bits (4096 entries)
//	tag 1   + 32 raw bits  -> 33 bits (escaped instruction)
const (
	class0Entries = 256
	class1Entries = 4096
	// DictCapacity is the maximum dictionary size ("several thousand").
	DictCapacity = class0Entries + class1Entries
)

// Compressed is a dictionary-compressed text section. The encoding is a
// sequential bitstream; random access requires block structure which this
// baseline (like the original proposal) achieves by patching branches
// rather than an index table, so only whole-text decompression is modeled.
type Compressed struct {
	TextBase uint32
	NumInstr int
	Dict     []isa.Word
	Stream   []byte
	bits     int

	// Composition counters.
	Class0, Class1, Escaped int
}

// Compress encodes text against a frequency-ranked instruction dictionary.
func Compress(textBase uint32, text []isa.Word) (*Compressed, error) {
	if len(text) == 0 {
		return nil, fmt.Errorf("lefurgy: empty text")
	}
	freq := make(map[isa.Word]int)
	for _, w := range text {
		freq[w]++
	}
	type wf struct {
		w isa.Word
		n int
	}
	ranked := make([]wf, 0, len(freq))
	for w, n := range freq {
		ranked = append(ranked, wf{w, n})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].n != ranked[j].n {
			return ranked[i].n > ranked[j].n
		}
		return ranked[i].w < ranked[j].w
	})

	c := &Compressed{TextBase: textBase, NumInstr: len(text)}
	slot := make(map[isa.Word]int)
	for _, e := range ranked {
		if len(c.Dict) >= DictCapacity {
			break
		}
		// Break-even: a class-1 entry saves 33-14=19 bits per use but
		// costs 32 bits of dictionary storage; singletons lose.
		if len(c.Dict) >= class0Entries && e.n < 2 {
			continue
		}
		slot[e.w] = len(c.Dict)
		c.Dict = append(c.Dict, e.w)
	}

	var acc uint64
	var nbits uint
	emit := func(v uint32, n uint) {
		acc = acc<<n | uint64(v)
		nbits += n
		for nbits >= 8 {
			c.Stream = append(c.Stream, byte(acc>>(nbits-8)))
			nbits -= 8
		}
		c.bits += int(n)
	}
	for _, w := range text {
		s, ok := slot[w]
		switch {
		case ok && s < class0Entries:
			emit(0b00, 2)
			emit(uint32(s), 8)
			c.Class0++
		case ok:
			emit(0b01, 2)
			emit(uint32(s-class0Entries), 12)
			c.Class1++
		default:
			emit(0b1, 1)
			emit(w, 32)
			c.Escaped++
		}
	}
	if nbits > 0 {
		c.Stream = append(c.Stream, byte(acc<<(8-nbits)))
	}
	return c, nil
}

// Decompress reconstructs the original instruction stream.
func (c *Compressed) Decompress() ([]isa.Word, error) {
	out := make([]isa.Word, 0, c.NumInstr)
	pos := 0
	read := func(n int) (uint32, error) {
		var v uint32
		for i := 0; i < n; i++ {
			if pos >= len(c.Stream)*8 {
				return 0, fmt.Errorf("lefurgy: truncated stream")
			}
			v = v<<1 | uint32(c.Stream[pos/8]>>(7-pos%8)&1)
			pos++
		}
		return v, nil
	}
	for len(out) < c.NumInstr {
		b, err := read(1)
		if err != nil {
			return nil, err
		}
		if b == 1 {
			w, err := read(32)
			if err != nil {
				return nil, err
			}
			out = append(out, w)
			continue
		}
		b2, err := read(1)
		if err != nil {
			return nil, err
		}
		if b2 == 0 {
			idx, err := read(8)
			if err != nil {
				return nil, err
			}
			if int(idx) >= len(c.Dict) {
				return nil, fmt.Errorf("lefurgy: class-0 index %d out of range", idx)
			}
			out = append(out, c.Dict[idx])
		} else {
			idx, err := read(12)
			if err != nil {
				return nil, err
			}
			s := class0Entries + int(idx)
			if s >= len(c.Dict) {
				return nil, fmt.Errorf("lefurgy: class-1 index %d out of range", idx)
			}
			out = append(out, c.Dict[s])
		}
	}
	return out, nil
}

// Ratio returns compressed size (stream + dictionary) over original size.
func (c *Compressed) Ratio() float64 {
	return float64(len(c.Stream)+4*len(c.Dict)) / float64(c.NumInstr*4)
}
