package vm

import (
	"testing"

	"codepack/internal/asm"
	"codepack/internal/isa"
)

func run(t *testing.T, src string) *Machine {
	t.Helper()
	im, err := asm.Assemble("test", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := New(im)
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !m.Halted() {
		t.Fatal("program did not halt")
	}
	return m
}

const exit = "\tli $v0, 10\n\tsyscall\n"

func TestArithmetic(t *testing.T) {
	m := run(t, `
main:
	li   $t0, 6
	li   $t1, 7
	mult $t0, $t1
	mflo $t2
	addiu $t2, $t2, -2   # 40
	sll  $t3, $t2, 2     # 160
	srl  $t4, $t3, 1     # 80
	li   $t5, -16
	sra  $t6, $t5, 2     # -4
	divu $t3, $t2        # 160/40 = 4
	mflo $t7
	sub  $s0, $t7, $t6   # 4 - (-4) = 8
`+exit)
	minus4 := int32(-4)
	checks := map[int]uint32{10: 40, 11: 160, 12: 80, 14: uint32(minus4), 15: 4, 16: 8}
	for r, want := range checks {
		if got := m.Reg(r); got != want {
			t.Errorf("r%d = %d, want %d", r, int32(got), int32(want))
		}
	}
}

func TestMemoryOps(t *testing.T) {
	m := run(t, `
main:
	li   $t0, 0x12345678
	sw   $t0, 0($gp)
	lw   $t1, 0($gp)
	lb   $t2, 0($gp)     # 0x78
	lbu  $t3, 3($gp)     # 0x12
	lh   $t4, 0($gp)     # 0x5678
	lhu  $t5, 2($gp)     # 0x1234
	li   $t6, -1
	sb   $t6, 4($gp)
	lbu  $t7, 4($gp)     # 0xff
	sh   $t6, 8($gp)
	lhu  $s0, 8($gp)     # 0xffff
	lw   $s1, 12($gp)    # untouched -> 0
`+exit)
	checks := map[int]uint32{
		9: 0x12345678, 10: 0x78, 11: 0x12, 12: 0x5678, 13: 0x1234,
		15: 0xff, 16: 0xffff, 17: 0,
	}
	for r, want := range checks {
		if got := m.Reg(r); got != want {
			t.Errorf("r%d = %#x, want %#x", r, got, want)
		}
	}
}

func TestSignExtension(t *testing.T) {
	m := run(t, `
main:
	li  $t0, -1
	sb  $t0, 0($gp)
	lb  $t1, 0($gp)      # -1 sign extended
	sh  $t0, 4($gp)
	lh  $t2, 4($gp)      # -1
`+exit)
	if got := int32(m.Reg(9)); got != -1 {
		t.Errorf("lb = %d, want -1", got)
	}
	if got := int32(m.Reg(10)); got != -1 {
		t.Errorf("lh = %d, want -1", got)
	}
}

func TestControlFlow(t *testing.T) {
	m := run(t, `
main:
	li   $t0, 0
	li   $t1, 10
loop:
	addiu $t0, $t0, 1
	bne  $t0, $t1, loop
	jal  double
	j    done
double:
	addu $t2, $t0, $t0
	jr   $ra
done:
`+exit)
	if m.Reg(8) != 10 || m.Reg(10) != 20 {
		t.Fatalf("t0=%d t2=%d, want 10 20", m.Reg(8), m.Reg(10))
	}
}

func TestBranchVariants(t *testing.T) {
	m := run(t, `
main:
	li   $t0, -5
	li   $s0, 0
	bltz $t0, a
	li   $s0, 99
a:	bgez $t0, bad
	blez $t0, b
	li   $s0, 98
b:	li   $t1, 5
	bgtz $t1, c
	li   $s0, 97
bad:	li   $s0, 96
c:
`+exit)
	if m.Reg(16) != 0 {
		t.Fatalf("s0 = %d, want 0 (all branch paths correct)", m.Reg(16))
	}
}

func TestFunctionCallsAndStack(t *testing.T) {
	m := run(t, `
main:
	li   $a0, 4
	jal  fact
	move $s0, $v0        # 24
`+exit+`
fact:
	addiu $sp, $sp, -8
	sw   $ra, 4($sp)
	sw   $a0, 0($sp)
	li   $v0, 1
	blez $a0, fdone
	addiu $a0, $a0, -1
	jal  fact
	lw   $a0, 0($sp)
	mult $v0, $a0
	mflo $v0
fdone:
	lw   $ra, 4($sp)
	addiu $sp, $sp, 8
	jr   $ra
`)
	if m.Reg(16) != 24 {
		t.Fatalf("fact(4) = %d, want 24", m.Reg(16))
	}
}

func TestSyscallOutput(t *testing.T) {
	m := run(t, `
main:
	li $a0, 42
	li $v0, 1
	syscall
	li $a0, 'x'
	li $v0, 11
	syscall
`+exit)
	if got := m.Output(); got != "42x" {
		t.Fatalf("output %q, want %q", got, "42x")
	}
}

func TestFloatingPoint(t *testing.T) {
	m := run(t, `
main:
	li   $t0, 3
	sw   $t0, 0($gp)
	li   $t1, 4
	sw   $t1, 4($gp)
	lwc1 $f0, 0($gp)
	lwc1 $f2, 4($gp)
	add.d $f4, $f0, $f2
	mul.d $f6, $f4, $f2   # 28
	swc1 $f6, 8($gp)
	lw   $s0, 8($gp)
`+exit)
	if m.Reg(16) != 28 {
		t.Fatalf("fp chain = %d, want 28", m.Reg(16))
	}
}

func TestTraceRecords(t *testing.T) {
	im, err := asm.Assemble("trace", `
main:
	addiu $t0, $zero, 1
	lw    $t1, 0($gp)
	addu  $t2, $t0, $t1
	beq   $t2, $zero, main
	jal   f
	li    $v0, 10
	syscall
f:	jr $ra
`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(im)
	var recs []Rec
	var r Rec
	for !m.Halted() {
		if err := m.Step(&r); err != nil {
			t.Fatal(err)
		}
		recs = append(recs, r)
	}
	if len(recs) != 8 {
		t.Fatalf("committed %d instructions, want 8", len(recs))
	}
	if recs[0].Dest != 8 || recs[0].Src1 != NoReg {
		t.Errorf("addiu from $zero: dest %d src %d", recs[0].Dest, recs[0].Src1)
	}
	if recs[1].Class != isa.ClassLoad || recs[1].MemAddr != isa.GlobalBase {
		t.Errorf("lw rec wrong: %+v", recs[1])
	}
	if recs[2].Src1 != 8 || recs[2].Src2 != 9 || recs[2].Dest != 10 {
		t.Errorf("addu deps wrong: %+v", recs[2])
	}
	if recs[3].Class != isa.ClassBranch || recs[3].Taken {
		t.Errorf("beq should be a not-taken branch: %+v", recs[3])
	}
	if recs[4].Op != isa.OpJAL || !recs[4].Taken || recs[4].Dest != 31 {
		t.Errorf("jal rec wrong: %+v", recs[4])
	}
	// jr $ra back to after the jal.
	jr := recs[len(recs)-3]
	if jr.Op != isa.OpJR || jr.NextPC != recs[4].PC+4 {
		t.Errorf("jr rec wrong: %+v", jr)
	}
}

func TestHaltedMachineRefusesStep(t *testing.T) {
	m := run(t, "main:\n"+exit)
	var r Rec
	if err := m.Step(&r); err == nil {
		t.Fatal("step after halt should error")
	}
}

func TestPCOutOfRange(t *testing.T) {
	im, err := asm.Assemble("fall", "main:\n\taddiu $t0, $zero, 1\n")
	if err != nil {
		t.Fatal(err)
	}
	m := New(im)
	if _, err := m.Run(100); err == nil {
		t.Fatal("falling off the end of text should error")
	}
}

func TestPrintString(t *testing.T) {
	m := run(t, `
main:
	la $a0, msg
	li $v0, 4
	syscall
`+exit+`
	.data
msg:	.asciiz "hello, codepack"
`)
	if got := m.Output(); got != "hello, codepack" {
		t.Fatalf("output %q", got)
	}
}

func TestShiftVariableOps(t *testing.T) {
	m := run(t, `
main:
	li   $t0, 0x80000000
	li   $t1, 4
	srlv $t2, $t0, $t1    # 0x08000000
	srav $t3, $t0, $t1    # 0xF8000000
	li   $t4, 3
	sllv $t5, $t1, $t4    # 32
	li   $t6, 36          # shift amounts use low 5 bits: 36 & 31 = 4
	sllv $t7, $t1, $t6    # 64
`+exit)
	checks := map[int]uint32{
		10: 0x08000000, 11: 0xF8000000, 13: 32, 15: 64,
	}
	for r, want := range checks {
		if got := m.Reg(r); got != want {
			t.Errorf("r%d = %#x, want %#x", r, got, want)
		}
	}
}

func TestLogicalAndCompareOps(t *testing.T) {
	m := run(t, `
main:
	li    $t0, 0x0F0F
	li    $t1, 0x00FF
	nor   $t2, $t0, $t1     # ^(0x0FFF)
	xori  $t3, $t0, 0xFFFF  # 0xF0F0
	andi  $t4, $t0, 0x00F0  # 0x0000? 0x0F0F & 0x00F0 = 0x0000... actually 0x0000
	slti  $t5, $t0, 0x1000  # 1
	sltiu $t6, $t0, 5       # 0
	li    $t7, -3
	sltiu $t8, $t7, -1      # unsigned: 0xFFFFFFFD < 0xFFFFFFFF -> 1
	slt   $s0, $t7, $zero   # 1
	sltu  $s1, $t7, $zero   # 0
`+exit)
	checks := map[int]uint32{
		10: ^uint32(0x0FFF), 11: 0xF0F0, 12: 0x0000,
		13: 1, 14: 0, 24: 1, 16: 1, 17: 0,
	}
	for r, want := range checks {
		if got := m.Reg(r); got != want {
			t.Errorf("r%d = %#x, want %#x", r, got, want)
		}
	}
}

func TestSignedMultiplyDivide(t *testing.T) {
	m := run(t, `
main:
	li   $t0, -6
	li   $t1, 7
	mult $t0, $t1
	mflo $t2              # -42
	mfhi $t3              # sign extension: 0xFFFFFFFF
	li   $t4, -45
	li   $t5, 7
	div  $t4, $t5
	mflo $t6              # -6 (Go semantics: trunc toward zero)
	mfhi $t7              # -3
	multu $t1, $t1
	mflo $s0              # 49
	div  $t4, $zero       # divide by zero leaves hi/lo unchanged
	mflo $s1              # still 49
`+exit)
	if got := int32(m.Reg(10)); got != -42 {
		t.Errorf("mult lo = %d", got)
	}
	if got := m.Reg(11); got != 0xFFFFFFFF {
		t.Errorf("mult hi = %#x", got)
	}
	if got := int32(m.Reg(14)); got != -6 {
		t.Errorf("div quotient = %d", got)
	}
	if got := int32(m.Reg(15)); got != -3 {
		t.Errorf("div remainder = %d", got)
	}
	if got := m.Reg(17); got != 49 {
		t.Errorf("after div-by-zero, lo = %d, want preserved 49", got)
	}
}

func TestFPFullSet(t *testing.T) {
	m := run(t, `
main:
	li   $t0, 9
	sw   $t0, 0($gp)
	li   $t1, 2
	sw   $t1, 4($gp)
	lwc1 $f0, 0($gp)
	lwc1 $f2, 4($gp)
	sub.d $f4, $f0, $f2   # 7
	div.d $f6, $f4, $f2   # 3.5 -> stored as 3
	neg.d $f8, $f4        # -7
	mov.d $f10, $f8
	swc1 $f6, 8($gp)
	swc1 $f10, 12($gp)
	lw   $s0, 8($gp)
	lw   $s1, 12($gp)
`+exit)
	if got := m.Reg(16); got != 3 {
		t.Errorf("div.d result %d, want 3", got)
	}
	if got := int32(m.Reg(17)); got != -7 {
		t.Errorf("neg/mov chain %d, want -7", got)
	}
}

func TestJALRIndirectCall(t *testing.T) {
	m := run(t, `
main:
	la   $t9, callee
	jalr $t9
	move $s0, $v0
`+exit+`
callee:
	li $v0, 77
	jr $ra
`)
	if m.Reg(16) != 77 {
		t.Fatalf("jalr call returned %d", m.Reg(16))
	}
}

func TestAddAndSubTrapVariants(t *testing.T) {
	// SS32 treats add/sub as their unsigned twins (no overflow traps).
	m := run(t, `
main:
	li  $t0, 0x7FFFFFFF
	li  $t1, 1
	add $t2, $t0, $t1
	sub $t3, $t2, $t1
	addi $t4, $t0, 1
`+exit)
	if m.Reg(10) != 0x80000000 || m.Reg(11) != 0x7FFFFFFF || m.Reg(12) != 0x80000000 {
		t.Fatalf("add/sub/addi wrap wrong: %#x %#x %#x", m.Reg(10), m.Reg(11), m.Reg(12))
	}
}

func TestZeroRegisterImmutable(t *testing.T) {
	m := run(t, `
main:
	li   $t0, 5
	addu $zero, $t0, $t0
	lw   $zero, 0($gp)
	addu $t1, $zero, $zero
`+exit)
	if m.Reg(0) != 0 || m.Reg(9) != 0 {
		t.Fatal("$zero was written")
	}
}

func TestRunReturnsCount(t *testing.T) {
	im, err := asm.Assemble("c", "main:\n\tnop\n\tnop\n\tli $v0, 10\n\tsyscall\n")
	if err != nil {
		t.Fatal(err)
	}
	m := New(im)
	n, err := m.Run(0)
	if err != nil || n != 4 {
		t.Fatalf("ran %d (%v), want 4", n, err)
	}
	if m.Executed() != 4 || m.PC() == 0 {
		t.Fatal("counters wrong")
	}
}

func TestUnalignedWordLoadAlignsDown(t *testing.T) {
	// SS32 word accesses ignore the low address bits (align-down), a
	// common simulator simplification in place of alignment traps.
	m := run(t, `
main:
	li $t0, 0x11223344
	sw $t0, 0($gp)
	lw $t1, 3($gp)        # aligns down to 0($gp)
`+exit)
	if got := m.Reg(9); got != 0x11223344 {
		t.Fatalf("unaligned lw = %#x, want aligned-down value", got)
	}
}

func TestLoadFromTextSegment(t *testing.T) {
	// Reading instruction memory as data works (the program reads its
	// own first instruction).
	m := run(t, `
main:
	lui  $t0, 0x40        # 0x00400000 text base
	lw   $t1, 0($t0)
	srl  $t2, $t1, 26     # opcode field of "lui" = 0x0F
`+exit)
	if got := m.Reg(10); got != 0x0F {
		t.Fatalf("opcode field %#x, want 0x0f", got)
	}
}
