package server

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
)

// diskStore persists the content-addressed compression cache across
// restarts. The layout under the cache directory is:
//
//	cache.snap  — a compacted snapshot: one record per live entry,
//	              written to a temp file, fsynced and atomically renamed
//	              into place, so it is always either the old or the new
//	              complete snapshot, never a partial one.
//	cache.log   — an append-only log of entries inserted since the last
//	              snapshot. Appends are buffered by the OS (a cache does
//	              not need fsync-per-put); the log is synced when a
//	              snapshot is cut and on graceful close.
//
// Both files share one record format:
//
//	[4] crc32    IEEE CRC32 of the body (everything after bodyLen)
//	[4] bodyLen  length of the body in bytes, little endian
//	[2]   keyLen   cache-key length
//	[32]  sum      SHA-256 of the payload
//	[...] key      the cache key (hex SHA-256 of the program image)
//	[...] payload  the marshalled compressed program
//
// preceded by an 8-byte file magic. Recovery is tolerant by
// construction: a torn or CRC-corrupt frame ends replay and the log is
// truncated back to the last good record (the snapshot is read-only and
// just stops); a frame whose CRC holds but whose payload fails its
// SHA-256 or does not parse is skipped individually. A bad record can
// therefore cost cached work, never the process, and a recovered entry
// is never returned unless its payload re-verifies against the record's
// SHA-256.
type diskStore struct {
	dir string
	log *slog.Logger

	// Compaction policy: cut a snapshot when the log exceeds both
	// compactMinBytes and compactRatio times the last snapshot's size.
	compactMinBytes int64
	compactRatio    float64

	mu        sync.Mutex
	logFile   *os.File
	logBytes  int64
	snapBytes int64
	closed    bool

	stats storeStats
}

// storeStats counts persistence activity; read it via (*diskStore).statsSnapshot.
type storeStats struct {
	RestoredEntries uint64 `json:"restored_entries"`
	BytesReplayed   uint64 `json:"bytes_replayed"`
	RecordsSkipped  uint64 `json:"records_skipped"`
	TailTruncations uint64 `json:"tail_truncations"`
	Appends         uint64 `json:"appends"`
	AppendErrors    uint64 `json:"append_errors"`
	Compactions     uint64 `json:"compactions"`
	LogBytes        int64  `json:"log_bytes"`
	SnapshotBytes   int64  `json:"snapshot_bytes"`
}

// storedEntry is one recovered cache entry: the payload has already been
// verified against sum (the record's SHA-256).
type storedEntry struct {
	key     string
	payload []byte
	sum     [sha256.Size]byte
}

const (
	storeMagic   = "CPKCACH1"
	logFileName  = "cache.log"
	snapFileName = "cache.snap"

	// recordOverhead is the fixed cost of a record: crc + bodyLen +
	// keyLen + sum.
	recordHeader   = 8
	recordFixed    = 2 + sha256.Size
	maxRecordKey   = 256
	maxRecordBytes = 64 << 20 // sanity cap on bodyLen before allocating

	defaultCompactMinBytes = 1 << 20
	defaultCompactRatio    = 4.0
)

// openStore opens (creating if needed) the persistence directory, replays
// the snapshot and log, truncates any torn log tail, and returns the store
// ready for appends plus the recovered entries in replay order (oldest
// first; a key's last record wins).
func openStore(dir string, logger *slog.Logger) (*diskStore, []storedEntry, error) {
	if logger == nil {
		logger = slog.Default()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("cache dir: %w", err)
	}
	st := &diskStore{
		dir:             dir,
		log:             logger,
		compactMinBytes: defaultCompactMinBytes,
		compactRatio:    defaultCompactRatio,
	}

	var entries []storedEntry
	seen := make(map[string]int) // key -> index in entries

	merge := func(e storedEntry) {
		if i, ok := seen[e.key]; ok {
			// Later record wins and counts as a fresh touch: drop the
			// old slot so replay order stays LRU order.
			entries = append(entries[:i], entries[i+1:]...)
			for k, j := range seen {
				if j > i {
					seen[k] = j - 1
				}
			}
		}
		seen[e.key] = len(entries)
		entries = append(entries, e)
	}

	// Snapshot first: it is the older state the log layers on top of.
	snapPath := filepath.Join(dir, snapFileName)
	if raw, err := os.ReadFile(snapPath); err == nil {
		st.snapBytes = int64(len(raw))
		st.replay(raw, snapFileName, merge)
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, nil, fmt.Errorf("read snapshot: %w", err)
	}

	logPath := filepath.Join(dir, logFileName)
	f, err := os.OpenFile(logPath, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("open log: %w", err)
	}
	raw, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("read log: %w", err)
	}
	good := st.replay(raw, logFileName, merge)
	if good < int64(len(raw)) {
		// Torn or corrupt tail: drop it so the next append starts a
		// clean frame at a known-good offset.
		st.stats.TailTruncations++
		st.log.Warn("cache log tail truncated",
			"file", logPath, "good_bytes", good, "dropped", int64(len(raw))-good)
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("truncate log tail: %w", err)
		}
	}
	if good == 0 {
		// New or fully-corrupt log: start from a fresh magic header.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("reset log: %w", err)
		}
		if _, err := f.WriteAt([]byte(storeMagic), 0); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("write log header: %w", err)
		}
		good = int64(len(storeMagic))
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("seek log: %w", err)
	}
	st.logFile = f
	st.logBytes = good
	st.stats.RestoredEntries = uint64(len(entries))
	return st, entries, nil
}

// replay decodes records from raw, calling merge for each verified entry,
// and returns the byte offset of the end of the last structurally good
// frame (0 if the magic is missing). Semantically bad records inside good
// frames are skipped; a framing failure stops replay.
func (st *diskStore) replay(raw []byte, name string, merge func(storedEntry)) int64 {
	if len(raw) < len(storeMagic) || string(raw[:len(storeMagic)]) != storeMagic {
		if len(raw) > 0 {
			st.log.Warn("cache file has bad magic, ignoring", "file", name)
		}
		return 0
	}
	off := int64(len(storeMagic))
	for {
		rest := raw[off:]
		if len(rest) == 0 {
			return off // clean end
		}
		if len(rest) < recordHeader {
			return off // torn header
		}
		crc := binary.LittleEndian.Uint32(rest)
		bodyLen := int64(binary.LittleEndian.Uint32(rest[4:]))
		if bodyLen < recordFixed || bodyLen > maxRecordBytes {
			return off // corrupt length field
		}
		if int64(len(rest)) < recordHeader+bodyLen {
			return off // torn body
		}
		body := rest[recordHeader : recordHeader+bodyLen]
		if crc32.ChecksumIEEE(body) != crc {
			return off // corrupt frame
		}
		off += recordHeader + bodyLen
		st.stats.BytesReplayed += uint64(recordHeader + bodyLen)

		keyLen := int64(binary.LittleEndian.Uint16(body))
		if keyLen == 0 || keyLen > maxRecordKey || recordFixed+keyLen > bodyLen {
			st.stats.RecordsSkipped++
			continue
		}
		var e storedEntry
		copy(e.sum[:], body[2:2+sha256.Size])
		e.key = string(body[recordFixed : recordFixed+keyLen])
		e.payload = append([]byte(nil), body[recordFixed+keyLen:]...)
		if sha256.Sum256(e.payload) != e.sum {
			st.stats.RecordsSkipped++
			st.log.Warn("cache record payload failed verification, skipping",
				"file", name, "key", e.key)
			continue
		}
		merge(e)
	}
}

// encodeRecord frames one entry.
func encodeRecord(key string, payload []byte) []byte {
	bodyLen := recordFixed + len(key) + len(payload)
	b := make([]byte, recordHeader+bodyLen)
	binary.LittleEndian.PutUint32(b[4:], uint32(bodyLen))
	body := b[recordHeader:]
	binary.LittleEndian.PutUint16(body, uint16(len(key)))
	sum := sha256.Sum256(payload)
	copy(body[2:], sum[:])
	copy(body[recordFixed:], key)
	copy(body[recordFixed+len(key):], payload)
	binary.LittleEndian.PutUint32(b, crc32.ChecksumIEEE(body))
	return b
}

// append logs one entry. Errors are recorded and reported but the cache
// keeps serving from memory: persistence is best-effort by design.
func (st *diskStore) append(key string, payload []byte) error {
	if len(key) == 0 || len(key) > maxRecordKey {
		return fmt.Errorf("store: bad key length %d", len(key))
	}
	rec := encodeRecord(key, payload)
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return errors.New("store: closed")
	}
	n, err := st.logFile.Write(rec)
	st.logBytes += int64(n)
	st.stats.Appends++
	if err != nil {
		st.stats.AppendErrors++
		return fmt.Errorf("store: append: %w", err)
	}
	return nil
}

// needCompact reports whether the log has outgrown the snapshot enough to
// justify cutting a new one.
func (st *diskStore) needCompact() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed || st.logBytes < st.compactMinBytes {
		return false
	}
	return float64(st.logBytes) >= st.compactRatio*float64(max(st.snapBytes, 1))
}

// compact atomically replaces the snapshot with the entries returned by
// collect and resets the log. collect runs under the store lock so no
// append can slip between the collection and the log reset; callers must
// not hold the cache lock when calling compact (collect may take it).
func (st *diskStore) compact(collect func() []storedEntry) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return errors.New("store: closed")
	}
	entries := collect()

	tmpPath := filepath.Join(st.dir, snapFileName+".tmp")
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: snapshot temp: %w", err)
	}
	written := int64(0)
	writeAll := func(b []byte) error {
		n, err := tmp.Write(b)
		written += int64(n)
		return err
	}
	err = writeAll([]byte(storeMagic))
	for _, e := range entries {
		if err != nil {
			break
		}
		err = writeAll(encodeRecord(e.key, e.payload))
	}
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("store: write snapshot: %w", err)
	}
	if err := os.Rename(tmpPath, filepath.Join(st.dir, snapFileName)); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("store: install snapshot: %w", err)
	}
	syncDir(st.dir)

	// The snapshot now covers everything; restart the log.
	if err := st.logFile.Truncate(int64(len(storeMagic))); err != nil {
		return fmt.Errorf("store: reset log: %w", err)
	}
	if _, err := st.logFile.Seek(int64(len(storeMagic)), io.SeekStart); err != nil {
		return fmt.Errorf("store: seek log: %w", err)
	}
	st.logBytes = int64(len(storeMagic))
	st.snapBytes = written
	st.stats.Compactions++
	return nil
}

// close syncs and closes the log. Call compact first to flush the final
// snapshot; close itself only makes the already-appended log durable.
func (st *diskStore) close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return nil
	}
	st.closed = true
	err := st.logFile.Sync()
	if cerr := st.logFile.Close(); err == nil {
		err = cerr
	}
	return err
}

func (st *diskStore) statsSnapshot() storeStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	s := st.stats
	s.LogBytes = st.logBytes
	s.SnapshotBytes = st.snapBytes
	return s
}

// syncDir fsyncs a directory so a rename within it is durable;
// best-effort because not every platform supports it.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
