package server

import (
	"encoding/json"
	"math"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"codepack/internal/obs"
	"codepack/internal/peer"
)

// counter is a monotonically increasing metric.
type counter struct{ v atomic.Uint64 }

func (c *counter) add(n uint64)  { c.v.Add(n) }
func (c *counter) value() uint64 { return c.v.Load() }

// latencyBuckets are the histogram upper bounds in seconds. The low end
// resolves cache-hit compress requests (tens of microseconds); the high
// end covers full-budget simulations.
var latencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// histogram is a fixed-bucket latency histogram. It is lock-free on
// the observe path — every request used to serialize on a mutex here —
// with per-bucket atomic counters, the running sum sharded across CAS'd
// float64 cells to spread contention, and one exemplar slot per bucket
// carrying the trace ID of the newest observation that landed there.
type histogram struct {
	counts    [numBuckets + 1]atomic.Uint64 // one per bucket, plus +Inf
	sums      [histSumShards]atomic.Uint64  // float64 bit patterns
	n         atomic.Uint64
	exemplars [numBuckets + 1]atomic.Pointer[exemplar]
}

// numBuckets must equal len(latencyBuckets); array-sized so histograms embed flat.
const numBuckets = 16

// histSumShards spreads the float sum across cells so concurrent
// observers rarely CAS the same word. Power of two; shard choice keys
// off the bucket index, which already varies with the observation.
const histSumShards = 8

// exemplar links one histogram bucket to the trace that most recently
// landed in it, surfaced as an OpenMetrics exemplar on /metrics.
type exemplar struct {
	TraceID string
	Value   float64 // seconds
	Time    time.Time
}

func (h *histogram) observe(sec float64) { h.observeTraced(sec, "") }

// observeTraced records one observation, tagging the bucket's exemplar
// slot with the trace it came from (empty traceID leaves exemplars
// untouched).
func (h *histogram) observeTraced(sec float64, traceID string) {
	i := sort.SearchFloat64s(latencyBuckets, sec)
	h.counts[i].Add(1)
	h.n.Add(1)
	shard := &h.sums[i&(histSumShards-1)]
	for {
		old := shard.Load()
		if shard.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+sec)) {
			break
		}
	}
	if traceID != "" {
		h.exemplars[i].Store(&exemplar{TraceID: traceID, Value: sec, Time: time.Now()})
	}
}

// histSnapshot is one view of a histogram. Reads are atomic per field:
// a snapshot taken mid-observation may momentarily show n one ahead of
// the bucket totals, but counts never tear and totals never decrease.
type histSnapshot struct {
	Counts [numBuckets + 1]uint64 `json:"counts"`
	Sum    float64                `json:"sum_seconds"`
	N      uint64                 `json:"count"`
}

func (h *histogram) snapshot() histSnapshot {
	var s histSnapshot
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	for i := range h.sums {
		s.Sum += math.Float64frombits(h.sums[i].Load())
	}
	s.N = h.n.Load()
	return s
}

// exemplarView returns the per-bucket exemplars (nil = none yet).
func (h *histogram) exemplarView() [numBuckets + 1]*exemplar {
	var out [numBuckets + 1]*exemplar
	for i := range h.exemplars {
		out[i] = h.exemplars[i].Load()
	}
	return out
}

// endpointStats aggregates one endpoint's request metrics.
type endpointStats struct {
	mu       sync.Mutex
	byCode   map[int]uint64
	latency  histogram
	bytesIn  counter
	bytesOut counter
}

func (e *endpointStats) record(code int, in, out int64, dur time.Duration, traceID string) {
	e.mu.Lock()
	e.byCode[code]++
	e.mu.Unlock()
	e.latency.observeTraced(dur.Seconds(), traceID)
	if in > 0 {
		e.bytesIn.add(uint64(in))
	}
	if out > 0 {
		e.bytesOut.add(uint64(out))
	}
}

func (e *endpointStats) codes() map[int]uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[int]uint64, len(e.byCode))
	for k, v := range e.byCode {
		out[k] = v
	}
	return out
}

// tenantStats aggregates one tenant's request metrics. Cardinality is
// bounded: tenant IDs come from the config file plus the reserved
// "anon" and "internal" labels.
type tenantStats struct {
	mu       sync.Mutex
	byCode   map[int]uint64
	limited  map[string]uint64 // denials by reason: rate, quota, queue
	bytesIn  counter
	bytesOut counter
}

func (t *tenantStats) record(code int, in, out int64) {
	t.mu.Lock()
	t.byCode[code]++
	t.mu.Unlock()
	if in > 0 {
		t.bytesIn.add(uint64(in))
	}
	if out > 0 {
		t.bytesOut.add(uint64(out))
	}
}

func (t *tenantStats) codes() map[int]uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[int]uint64, len(t.byCode))
	for k, v := range t.byCode {
		out[k] = v
	}
	return out
}

func (t *tenantStats) limitedByReason() map[string]uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]uint64, len(t.limited))
	for k, v := range t.limited {
		out[k] = v
	}
	return out
}

// metrics is the server's observability state, published at /metrics
// (Prometheus text format) and /debug/vars (expvar-style JSON).
type metrics struct {
	start time.Time

	mu        sync.Mutex
	endpoints map[string]*endpointStats
	tenants   map[string]*tenantStats

	shed     counter // 429s from saturated pools
	timeouts counter // requests that hit their deadline

	authFailures         counter // public requests rejected 401 (missing/unknown API key)
	internalAuthFailures counter // internal requests rejected 401 (unsigned/mis-signed)

	coalesced counter // compressions served by riding an in-flight fill

	// Warm-tier counters (only exported while a cluster is configured).
	peerHits    counter // peer-served payloads that verified and were used
	peerMisses  counter // owner definitively lacked the digest
	peerErrors  counter // fetch failures, breaker skips, failed verifications
	ringChanges counter // ring rebuilds driven by membership changes
	aePasses    counter // anti-entropy passes completed (startup + ring changes)

	// Stage histograms: one per span name, fed by the tracer's OnSpanEnd
	// hook, so every traced pipeline stage gets a duration distribution.
	// peerFetch duplicates the "peer-fetch" stage under its own metric
	// name — the warm tier's headline latency.
	stageMu   sync.Mutex
	stages    map[string]*histogram
	peerFetch histogram
}

func newMetrics() *metrics {
	return &metrics{
		start:     time.Now(),
		endpoints: make(map[string]*endpointStats),
		tenants:   make(map[string]*tenantStats),
		stages:    make(map[string]*histogram),
	}
}

// observeStage records one completed span into its stage histogram;
// it is the tracer's OnSpanEnd hook and runs on every span, so the
// slow path is only the first sighting of a new stage name. The span's
// trace ID becomes the bucket's exemplar, linking every histogram
// spike back to a span tree in /debug/trace/recent.
func (m *metrics) observeStage(name string, d time.Duration, traceID string) {
	m.stageMu.Lock()
	h, ok := m.stages[name]
	if !ok {
		h = &histogram{}
		m.stages[name] = h
	}
	m.stageMu.Unlock()
	h.observeTraced(d.Seconds(), traceID)
	if name == "peer-fetch" {
		m.peerFetch.observeTraced(d.Seconds(), traceID)
	}
}

// stageNames returns the observed stage names, sorted.
func (m *metrics) stageNames() []string {
	m.stageMu.Lock()
	defer m.stageMu.Unlock()
	names := make([]string, 0, len(m.stages))
	for n := range m.stages {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// stage returns the histogram for name (nil if never observed).
func (m *metrics) stage(name string) *histogram {
	m.stageMu.Lock()
	defer m.stageMu.Unlock()
	return m.stages[name]
}

func (m *metrics) endpoint(name string) *endpointStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.endpoints[name]
	if !ok {
		e = &endpointStats{byCode: make(map[int]uint64)}
		m.endpoints[name] = e
	}
	return e
}

func (m *metrics) tenant(id string) *tenantStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.tenants[id]
	if !ok {
		t = &tenantStats{byCode: make(map[int]uint64), limited: make(map[string]uint64)}
		m.tenants[id] = t
	}
	return t
}

// tenantLimited counts one denied request for the tenant, by reason
// ("rate", "quota" or "queue").
func (m *metrics) tenantLimited(id, reason string) {
	t := m.tenant(id)
	t.mu.Lock()
	t.limited[reason]++
	t.mu.Unlock()
}

func (m *metrics) tenantNames() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.tenants))
	for n := range m.tenants {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (m *metrics) endpointNames() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.endpoints))
	for n := range m.endpoints {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// varsSnapshot is the /debug/vars document: the expvar JSON shape
// (cmdline + memstats) plus the cpackd application metrics, rendered
// without touching the process-global expvar registry so multiple servers
// can coexist in one process (tests spin several up).
type varsSnapshot struct {
	Cmdline  []string         `json:"cmdline"`
	MemStats runtime.MemStats `json:"memstats"`
	Cpackd   appVars          `json:"cpackd"`
}

type appVars struct {
	UptimeSeconds float64                 `json:"uptime_seconds"`
	Endpoints     map[string]endpointVars `json:"endpoints"`
	Cache         cacheStats              `json:"cache"`
	CacheStore    *storeStats             `json:"cache_store,omitempty"`
	Queues        map[string]int          `json:"queue_depth"`
	Shed          uint64                  `json:"requests_shed"`
	Timeouts      uint64                  `json:"request_timeouts"`
	Coalesced     uint64                  `json:"compress_coalesced"`
	Stages        map[string]histSnapshot `json:"stages,omitempty"`
	Traces        uint64                  `json:"traces_recorded"`
	TracesEvicted uint64                  `json:"traces_evicted"`
	TraceRingCap  int                     `json:"trace_ring_capacity"`
	SLOState      string                  `json:"slo_state,omitempty"`
	Profiler      *obs.ProfilerStats      `json:"profiler,omitempty"`
	Peer          *peerVars               `json:"peer,omitempty"`
	Tenants       map[string]tenantVars   `json:"tenants,omitempty"`
	AuthFail      map[string]uint64       `json:"auth_failures,omitempty"`
}

// tenantVars is the per-tenant section of /debug/vars.
type tenantVars struct {
	ByCode      map[string]uint64 `json:"requests_by_code"`
	Limited     map[string]uint64 `json:"limited_by_reason,omitempty"`
	BytesIn     uint64            `json:"bytes_in"`
	BytesOut    uint64            `json:"bytes_out"`
	WindowBytes int64             `json:"quota_window_bytes"`
}

// peerVars is the warm-tier section of /debug/vars.
type peerVars struct {
	Self       string            `json:"self"`
	Members    []string          `json:"members"`
	RingEpoch  uint64            `json:"ring_epoch"`
	Membership []peer.MemberInfo `json:"membership"`
	Hits       uint64            `json:"hits"`
	Misses     uint64            `json:"misses"`
	Errors     uint64            `json:"errors"`
	AEPasses   uint64            `json:"antientropy_passes"`
	ReplQueue  int               `json:"repl_queue_depth"`
	ReplOldest float64           `json:"repl_queue_age_seconds"`
	Cluster    peer.Stats        `json:"cluster"`
	Breakers   []peer.PeerHealth `json:"breakers"`
}

type endpointVars struct {
	ByCode   map[string]uint64 `json:"requests_by_code"`
	Latency  histSnapshot      `json:"latency"`
	BytesIn  uint64            `json:"bytes_in"`
	BytesOut uint64            `json:"bytes_out"`
}

func (s *Server) handleVars(w http.ResponseWriter, r *http.Request) {
	snap := varsSnapshot{
		Cmdline: os.Args,
		Cpackd: appVars{
			UptimeSeconds: time.Since(s.metrics.start).Seconds(),
			Endpoints:     make(map[string]endpointVars),
			Cache:         s.cache.stats(),
			Queues:        map[string]int{"light": s.light.depth(), "heavy": s.heavy.depth()},
			Shed:          s.metrics.shed.value(),
			Timeouts:      s.metrics.timeouts.value(),
			Coalesced:     s.metrics.coalesced.value(),
		},
	}
	if st := s.cache.store; st != nil {
		ss := st.statsSnapshot()
		snap.Cpackd.CacheStore = &ss
	}
	if c := s.cluster; c != nil {
		snap.Cpackd.Peer = &peerVars{
			Self:       c.Self(),
			Members:    c.Members(),
			RingEpoch:  c.RingEpoch(),
			Membership: c.MembershipView(),
			Hits:       s.metrics.peerHits.value(),
			Misses:     s.metrics.peerMisses.value(),
			Errors:     s.metrics.peerErrors.value(),
			AEPasses:   s.metrics.aePasses.value(),
			ReplQueue:  c.ReplQueueDepth(),
			ReplOldest: c.ReplQueueOldestAge().Seconds(),
			Cluster:    c.Stats(),
			Breakers:   c.Health(),
		}
	}
	if names := s.metrics.stageNames(); len(names) > 0 {
		snap.Cpackd.Stages = make(map[string]histSnapshot, len(names))
		for _, n := range names {
			snap.Cpackd.Stages[n] = s.metrics.stage(n).snapshot()
		}
	}
	if names := s.metrics.tenantNames(); len(names) > 0 {
		snap.Cpackd.Tenants = make(map[string]tenantVars, len(names))
		now := time.Now()
		for _, id := range names {
			t := s.metrics.tenant(id)
			codes := make(map[string]uint64)
			for c, n := range t.codes() {
				codes[strconv.Itoa(c)] = n
			}
			snap.Cpackd.Tenants[id] = tenantVars{
				ByCode:      codes,
				Limited:     t.limitedByReason(),
				BytesIn:     t.bytesIn.value(),
				BytesOut:    t.bytesOut.value(),
				WindowBytes: s.tenants.WindowBytes(id, now),
			}
		}
	}
	snap.Cpackd.AuthFail = map[string]uint64{
		"api":      s.metrics.authFailures.value(),
		"internal": s.metrics.internalAuthFailures.value(),
	}
	snap.Cpackd.Traces = s.tracer.Total()
	snap.Cpackd.TracesEvicted = s.tracer.Evicted()
	snap.Cpackd.TraceRingCap = s.tracer.Capacity()
	if s.slo != nil {
		snap.Cpackd.SLOState = s.slo.WorstState().String()
	}
	if s.profiler != nil {
		ps := s.profiler.Stats()
		snap.Cpackd.Profiler = &ps
	}
	runtime.ReadMemStats(&snap.MemStats)
	for _, name := range s.metrics.endpointNames() {
		e := s.metrics.endpoint(name)
		codes := make(map[string]uint64)
		for c, n := range e.codes() {
			codes[strconv.Itoa(c)] = n
		}
		snap.Cpackd.Endpoints[name] = endpointVars{
			ByCode:   codes,
			Latency:  e.latency.snapshot(),
			BytesIn:  e.bytesIn.value(),
			BytesOut: e.bytesOut.value(),
		}
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(snap)
}
