package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsJobs(t *testing.T) {
	p := newPool("test", 4, 16)
	defer p.close()
	var n atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := p.do(context.Background(), func() { n.Add(1) }); err != nil {
				// Saturation is legal under this load; anything else is not.
				if !errors.Is(err, errSaturated) {
					t.Errorf("do: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	if n.Load() == 0 {
		t.Fatal("no jobs ran")
	}
}

func TestPoolSaturation(t *testing.T) {
	p := newPool("test", 1, 1)
	defer p.close()
	block := make(chan struct{})
	var once sync.Once
	defer once.Do(func() { close(block) })

	running := make(chan struct{})
	go p.do(context.Background(), func() { close(running); <-block })
	<-running
	// Fill the single queue slot.
	done2 := make(chan error, 1)
	go func() { done2 <- p.do(context.Background(), func() {}) }()
	waitForCond(t, func() bool { return p.depth() == 1 })

	if err := p.do(context.Background(), func() {}); !errors.Is(err, errSaturated) {
		t.Fatalf("expected errSaturated, got %v", err)
	}
	once.Do(func() { close(block) })
	if err := <-done2; err != nil {
		t.Fatalf("queued job failed: %v", err)
	}
}

func TestPoolSkipsCancelledQueuedJobs(t *testing.T) {
	p := newPool("test", 1, 4)
	defer p.close()
	block := make(chan struct{})
	running := make(chan struct{})
	go p.do(context.Background(), func() { close(running); <-block })
	<-running

	ctx, cancel := context.WithCancel(context.Background())
	ran := false
	errCh := make(chan error, 1)
	go func() { errCh <- p.do(ctx, func() { ran = true }) }()
	waitForCond(t, func() bool { return p.depth() == 1 })
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
	close(block)
	p.close() // drains: the cancelled job is discarded, not run
	if ran {
		t.Error("cancelled queued job was executed")
	}
}

func TestPoolCloseDrains(t *testing.T) {
	p := newPool("test", 1, 4)
	block := make(chan struct{})
	running := make(chan struct{})
	var done atomic.Int64
	go p.do(context.Background(), func() { close(running); <-block; done.Add(1) })
	<-running
	// One more admitted behind it.
	go p.do(context.Background(), func() { done.Add(1) })
	waitForCond(t, func() bool { return p.depth() == 1 })

	closed := make(chan struct{})
	go func() { p.close(); close(closed) }()
	select {
	case <-closed:
		t.Fatal("close returned with a job still running")
	case <-time.After(20 * time.Millisecond):
	}
	close(block)
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("close never returned")
	}
	if done.Load() != 2 {
		t.Fatalf("drained %d jobs, want 2", done.Load())
	}
	if err := p.do(context.Background(), func() {}); !errors.Is(err, errClosed) {
		t.Fatalf("expected errClosed after close, got %v", err)
	}
}

// TestPoolWeightedFairness backlogs two tenants behind one worker and
// checks the drain order honours the 3:1 weight ratio: start-time fair
// queuing serves all six weight-3 jobs within the first eight slots.
func TestPoolWeightedFairness(t *testing.T) {
	p := newPool("test", 1, 16)
	defer p.close()
	block := make(chan struct{})
	running := make(chan struct{})
	go p.doAs(context.Background(), "starter", 1, func() { close(running); <-block })
	<-running

	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	enqueue := func(id string, weight, n int) {
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				p.doAs(context.Background(), id, weight, func() {
					mu.Lock()
					order = append(order, id)
					mu.Unlock()
				})
			}()
			// Enqueue strictly in order so per-tenant FIFO tags are
			// deterministic.
			waitForCond(t, func() bool { return p.depthFor(id) == i+1 })
		}
	}
	enqueue("heavy", 3, 6)
	enqueue("light", 1, 6)
	close(block)
	wg.Wait()

	if len(order) != 12 {
		t.Fatalf("ran %d jobs, want 12", len(order))
	}
	heavyInFirst8 := 0
	for _, id := range order[:8] {
		if id == "heavy" {
			heavyInFirst8++
		}
	}
	// Virtual-time tags: heavy advances 1/3 per job, light 1 per job, so
	// heavy's six tags (0..5/3) all land before light's third (2.0).
	if heavyInFirst8 != 6 {
		t.Fatalf("weight-3 tenant got %d of the first 8 slots, want 6 (order %v)", heavyInFirst8, order)
	}
}

// TestPoolPerTenantSaturation proves saturation is per tenant: one
// tenant filling its queue sheds only itself.
func TestPoolPerTenantSaturation(t *testing.T) {
	p := newPool("test", 1, 1)
	defer p.close()
	block := make(chan struct{})
	defer close(block)
	running := make(chan struct{})
	go p.doAs(context.Background(), "hog", 1, func() { close(running); <-block })
	<-running

	go p.doAs(context.Background(), "hog", 1, func() {})
	waitForCond(t, func() bool { return p.depthFor("hog") == 1 })
	if err := p.doAs(context.Background(), "hog", 1, func() {}); !errors.Is(err, errSaturated) {
		t.Fatalf("hog third job: %v, want errSaturated", err)
	}
	// The other tenant still has a free queue slot.
	ok := make(chan error, 1)
	go func() { ok <- p.doAs(context.Background(), "bystander", 1, func() {}) }()
	waitForCond(t, func() bool { return p.depthFor("bystander") == 1 })
}

// TestPoolRetryAfterPerTenant is the satellite fix: Retry-After derives
// from the shed tenant's own backlog and fair share, so an idle tenant
// shed by a no-queue admission race is told 1s while the hog that built
// the backlog is told to back off proportionally.
func TestPoolRetryAfterPerTenant(t *testing.T) {
	p := newPool("test", 2, 100)
	defer p.close()
	block := make(chan struct{})
	defer close(block)
	var started sync.WaitGroup
	started.Add(2)
	for i := 0; i < 2; i++ {
		go p.doAs(context.Background(), "hog", 1, func() { started.Done(); <-block })
	}
	started.Wait()
	for i := 0; i < 40; i++ {
		go p.doAs(context.Background(), "hog", 1, func() {})
	}
	waitForCond(t, func() bool { return p.depthFor("hog") == 40 })

	if got := p.retryAfterFor("idle"); got != 1 {
		t.Errorf("idle tenant Retry-After = %d, want 1", got)
	}
	// Hog: backlog 40, sole active queue, share = 2 workers -> 1+20=21.
	if got := p.retryAfterFor("hog"); got != 21 {
		t.Errorf("hog Retry-After = %d, want 21", got)
	}
}

func waitForCond(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}
