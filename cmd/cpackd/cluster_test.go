package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"codepack"
	"codepack/internal/peer"
)

// freeURL reserves a kernel-assigned loopback port and releases it so a
// daemon can bind it. The address must be known before either daemon
// starts: both appear in each other's -peers flag.
func freeURL(t *testing.T) (addr, url string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr = ln.Addr().String()
	ln.Close()
	return addr, "http://" + addr
}

// asmOwnedBy generates assembly variants until one's image digest lands
// on the wanted ring member. The server assembles inline asm under the
// fixed name "request", but the digest covers only the marshalled image
// (entry, bases, text, data), so the test can predict it with any name.
func asmOwnedBy(t *testing.T, ring *peer.Ring, owner string, salt int) string {
	t.Helper()
	for i := 0; i < 10_000; i++ {
		asm := strings.Replace(testAsm, "li   $s0, 50",
			fmt.Sprintf("li   $s0, %d", 50+salt*10_000+i), 1)
		im, err := codepack.Assemble("request", asm)
		if err != nil {
			t.Fatal(err)
		}
		if ring.Owner(codepack.ImageDigest(im)) == owner {
			return asm
		}
	}
	t.Fatalf("no generated program hashed to owner %s", owner)
	return ""
}

// compressAsm is daemon.compress for an arbitrary program.
func (d *daemon) compressAsm(t *testing.T, asm string) compressReply {
	t.Helper()
	body, err := json.Marshal(map[string]string{"asm": asm})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(d.url+"/v1/compress", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("compress: %v; stderr:\n%s", err, d.stderr.String())
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compress status %d: %s", resp.StatusCode, raw)
	}
	var out compressReply
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	return out
}

func metricNumber(t *testing.T, body, name string) float64 {
	t.Helper()
	re := regexp.MustCompile("(?m)^" + regexp.QuoteMeta(name) + ` ([0-9.e+-]+)$`)
	m := re.FindStringSubmatch(body)
	if m == nil {
		t.Fatalf("metric %q not found in scrape:\n%s", name, body)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("metric %q: %v", name, err)
	}
	return v
}

// TestPeerFlagErrors exercises run()'s cluster-flag validation.
func TestPeerFlagErrors(t *testing.T) {
	if err := run([]string{"-peers", "http://127.0.0.1:1"}); err == nil {
		t.Error("-peers without -peer-self accepted")
	}
	if err := run([]string{"-peer-self", "http://127.0.0.1:1"}); err == nil {
		t.Error("-peer-self without -peers accepted")
	}
	if err := run([]string{"-addr", "127.0.0.1:0",
		"-peer-self", "http://127.0.0.1:1", "-peers", "not a url"}); err == nil {
		t.Error("malformed peer URL accepted")
	}
	if err := run([]string{"-addr", "127.0.0.1:0", "-cache", "-1",
		"-peer-self", "http://127.0.0.1:1", "-peers", "http://127.0.0.1:2"}); err == nil {
		t.Error("clustering with a disabled cache accepted")
	}
}

// TestTwoInstanceCluster is the cluster acceptance test: two real
// cpackd processes form a warm tier — a digest compressed on its owner
// is served by the other instance with zero recompression — and
// SIGKILLing one degrades the survivor to local compression with no
// failed requests and an opened breaker.
func TestTwoInstanceCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess round trip")
	}

	addrA, urlA := freeURL(t)
	addrB, urlB := freeURL(t)
	ring := peer.NewRing([]string{urlA, urlB}, peer.DefaultReplicas)

	dA := startDaemon(t, "-addr", addrA, "-peer-self", urlA, "-peers", urlB,
		"-peer-timeout", "500ms")
	dB := startDaemon(t, "-addr", addrB, "-peer-self", urlB, "-peers", urlA,
		"-peer-timeout", "500ms")

	// Warm tier: compress on the owner, read from the peer.
	warmAsm := asmOwnedBy(t, ring, urlA, 0)
	first := dA.compressAsm(t, warmAsm)
	if first.Cached {
		t.Fatal("first compression on the owner reported cached")
	}
	second := dB.compressAsm(t, warmAsm)
	if !second.Cached {
		t.Error("peer-served compression did not report cached (recompressed?)")
	}
	if second.Digest != first.Digest || second.CompressedB64 != first.CompressedB64 {
		t.Error("peer-served payload differs from the owner's compression")
	}
	mB := dB.metrics(t)
	if got := metricNumber(t, mB, "cpackd_peer_hits_total"); got != 1 {
		t.Errorf("cpackd_peer_hits_total on B = %v, want 1", got)
	}

	// Kill the owner mid-run: the survivor must keep answering every
	// request by compressing locally, and its breaker must open.
	if err := dA.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	dA.cmd.Wait()

	for i := 1; i <= 4; i++ {
		reply := dB.compressAsm(t, asmOwnedBy(t, ring, urlA, i))
		if reply.Cached {
			t.Errorf("request %d reported cached with its owner dead", i)
		}
	}
	mB = dB.metrics(t)
	if got := metricNumber(t, mB, "cpackd_peer_errors_total"); got < 1 {
		t.Errorf("cpackd_peer_errors_total on B = %v, want >= 1", got)
	}
	opens := fmt.Sprintf("cpackd_peer_breaker_opens_total{peer=%q}", urlA)
	if got := metricNumber(t, mB, opens); got < 1 {
		t.Errorf("%s = %v, want >= 1", opens, got)
	}

	// The survivor still drains cleanly.
	if err := dB.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- dB.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("graceful shutdown exited with %v; stderr:\n%s", err, dB.stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("surviving instance did not exit after SIGTERM")
	}
}
