package asm

import (
	"testing"

	"codepack/internal/isa"
	"codepack/internal/vm"
)

// FuzzAssemble throws arbitrary source at the assembler: it must return an
// error or a valid image, never panic; valid images must disassemble.
func FuzzAssemble(f *testing.F) {
	f.Add("main:\n\taddu $t0, $t1, $t2\n")
	f.Add("main:\n\tlw $t0, 8($sp)\n\tj main\n")
	f.Add(".data\nx: .word 1\n")
	f.Add("main:\n\tli $t0, 0x12345678\n\tbeq $t0, $zero, main\n")
	f.Add("a:b:c:\tnop # x\n")
	f.Add("main:\n\t.asciiz \"x\"\n")
	f.Fuzz(func(t *testing.T, src string) {
		im, err := Assemble("fuzz", src)
		if err != nil {
			return
		}
		for i, w := range im.Text {
			_ = isa.Disasm(im.TextBase+uint32(4*i), w)
		}
	})
}

// FuzzExecute runs arbitrary assembled programs briefly: the VM must stop
// with a clean error or keep executing, never panic.
func FuzzExecute(f *testing.F) {
	f.Add("main:\n\tli $v0, 10\n\tsyscall\n")
	f.Add("main:\n\tlw $t0, 0($gp)\n\tsw $t0, 4($gp)\n\tli $v0, 10\n\tsyscall\n")
	f.Add("main:\n\tjr $zero\n")
	f.Fuzz(func(t *testing.T, src string) {
		im, err := Assemble("fuzz", src)
		if err != nil {
			return
		}
		m := vm.New(im)
		_, _ = m.Run(10_000)
	})
}
