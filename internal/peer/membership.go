package peer

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"
)

// MemberState is one member's position in the failure-detection
// lifecycle. Alive and Suspect members stay in the ring (a suspect is
// probably a network blip); Dead and Left members are out of the ring
// but remembered as tombstones so the verdict keeps gossiping.
type MemberState uint8

const (
	StateAlive MemberState = iota
	StateSuspect
	StateDead
	StateLeft
)

func (s MemberState) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	case StateLeft:
		return "left"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// MarshalJSON renders the state as its name; the wire format stays
// debuggable and an unknown numeric state can never enter via JSON.
func (s MemberState) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

func (s *MemberState) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	switch name {
	case "alive":
		*s = StateAlive
	case "suspect":
		*s = StateSuspect
	case "dead":
		*s = StateDead
	case "left":
		*s = StateLeft
	default:
		return fmt.Errorf("peer: unknown member state %q", name)
	}
	return nil
}

// inRing reports whether a member in this state owns ring arcs.
func (s MemberState) inRing() bool { return s == StateAlive || s == StateSuspect }

// MemberInfo is one member's gossiped record: who, which incarnation,
// and what the sender believes about it. Comparable across instances:
// higher Generation always wins; at equal Generation the more final
// state wins (left > dead > suspect > alive), so a verdict cannot be
// un-decided except by a fresh incarnation.
type MemberInfo struct {
	URL        string      `json:"url"`
	Generation uint64      `json:"generation"`
	State      MemberState `json:"state"`
}

// supersedes reports whether record a beats record b under the
// generation/state ordering.
func (a MemberInfo) supersedes(b MemberInfo) bool {
	if a.Generation != b.Generation {
		return a.Generation > b.Generation
	}
	return a.State > b.State
}

// Membership defaults, shared by the live Cluster and the simulator.
const (
	DefaultHeartbeatInterval = 1 * time.Second
	DefaultSuspectAfter      = 3 * time.Second
	DefaultDeadAfter         = 10 * time.Second
	DefaultReapAfter         = 10 * time.Minute
	DefaultGossipFanout      = 3
)

// MembershipConfig parameterizes the failure-detection timeouts. The
// zero value picks the defaults above; Now is injectable so the
// simulation harness can drive the state machine on a virtual clock.
type MembershipConfig struct {
	// SuspectAfter is how long a member may go unheard before it is
	// suspected; DeadAfter (measured from the same last contact) is when
	// a suspect is declared dead and leaves the ring.
	SuspectAfter time.Duration
	DeadAfter    time.Duration
	// ReapAfter is how long a dead or left tombstone is remembered
	// (long enough to gossip the verdict everywhere; a rejoining member
	// supersedes its tombstone by incarnation, not by reaping).
	ReapAfter time.Duration
	// Now is the clock (nil = time.Now).
	Now func() time.Time
	// OnStateChange, when set, is called after a member (never self)
	// transitions to a new lifecycle state — including first sight of a
	// member. It fires outside the membership lock, so callbacks may call
	// back into Membership; ordering across concurrent transitions is not
	// guaranteed. The cluster uses it to drain or reassign hinted
	// handoffs.
	OnStateChange func(url string, to MemberState)
}

func (c MembershipConfig) withDefaults() MembershipConfig {
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = DefaultSuspectAfter
	}
	if c.DeadAfter <= c.SuspectAfter {
		c.DeadAfter = c.SuspectAfter + DefaultDeadAfter - DefaultSuspectAfter
	}
	if c.ReapAfter <= 0 {
		c.ReapAfter = DefaultReapAfter
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// stateChange is one member transition collected under the lock and
// delivered to OnStateChange after unlock.
type stateChange struct {
	url string
	to  MemberState
}

// notify delivers collected transitions; call with the lock released.
func (m *Membership) notify(changes []stateChange) {
	if m.cfg.OnStateChange == nil {
		return
	}
	for _, c := range changes {
		m.cfg.OnStateChange(c.url, c.to)
	}
}

// memberRecord is one member's live state plus failure-detector
// bookkeeping.
type memberRecord struct {
	info      MemberInfo
	lastHeard time.Time // last direct or gossiped evidence of life
	since     time.Time // when the record entered its current state
}

// Membership is the cluster membership state machine: the set of known
// members, their incarnation numbers and lifecycle states, and the
// suspect/dead timeouts that turn silence into ring changes. It is the
// deterministic core of dynamic membership — the live Cluster drives it
// from HTTP heartbeats and real time, the simulation harness from an
// in-memory transport and a virtual clock.
//
// Version() is the ring epoch: it increments exactly when the set of
// ring members (alive + suspect) changes, so callers can cheaply detect
// when to rebuild the ring and re-run anti-entropy.
type Membership struct {
	cfg MembershipConfig

	mu      sync.Mutex
	self    string
	selfGen uint64
	left    bool
	members map[string]*memberRecord // excluding self
	version uint64                   // ring epoch: bumped on ring-set changes
}

// NewMembership builds a membership view containing only self, alive at
// generation 1.
func NewMembership(self string, cfg MembershipConfig) *Membership {
	return &Membership{
		cfg:     cfg.withDefaults(),
		self:    self,
		selfGen: 1,
		members: make(map[string]*memberRecord),
		version: 1,
	}
}

// AddSeed registers a configured seed as an alive member at generation
// zero: any real gossip about it supersedes, and if it never answers it
// ages through suspect to dead like anyone else.
func (m *Membership) AddSeed(url string) {
	if url == m.self {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.members[url]; ok {
		return
	}
	now := m.cfg.Now()
	m.members[url] = &memberRecord{
		info:      MemberInfo{URL: url, Generation: 0, State: StateAlive},
		lastHeard: now,
		since:     now,
	}
	m.version++
}

// Self returns this member's URL.
func (m *Membership) Self() string { return m.self }

// SelfInfo returns this member's own gossip record.
func (m *Membership) SelfInfo() MemberInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.selfInfoLocked()
}

func (m *Membership) selfInfoLocked() MemberInfo {
	st := StateAlive
	if m.left {
		st = StateLeft
	}
	return MemberInfo{URL: m.self, Generation: m.selfGen, State: st}
}

// Version is the ring epoch: it changes exactly when Live() changes.
func (m *Membership) Version() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.version
}

// Live returns the sorted ring-member URLs: self (unless left) plus
// every member currently alive or suspect.
func (m *Membership) Live() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.members)+1)
	if !m.left {
		out = append(out, m.self)
	}
	for url, rec := range m.members {
		if rec.info.State.inRing() {
			out = append(out, url)
		}
	}
	sort.Strings(out)
	return out
}

// Snapshot returns the full gossip view — self plus every known member
// including tombstones — sorted by URL.
func (m *Membership) Snapshot() []MemberInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]MemberInfo, 0, len(m.members)+1)
	out = append(out, m.selfInfoLocked())
	for _, rec := range m.members {
		out = append(out, rec.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

// State reports a member's current state (self included).
func (m *Membership) State(url string) (MemberState, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if url == m.self {
		return m.selfInfoLocked().State, true
	}
	rec, ok := m.members[url]
	if !ok {
		return 0, false
	}
	return rec.info.State, true
}

// Merge folds a gossiped view into the local one under the
// generation/state ordering and reports whether the ring membership
// changed. Gossip about self that is not "alive at my incarnation or
// older" is refuted by bumping the local generation past it — a
// rejoining member supersedes its own tombstone this way.
func (m *Membership) Merge(infos []MemberInfo) (changed bool) {
	var transitions []stateChange
	m.mu.Lock()
	for _, in := range infos {
		if in.URL == "" {
			continue
		}
		if in.URL == m.self {
			if m.left {
				continue // we said left and mean it
			}
			if in.Generation > m.selfGen ||
				(in.Generation == m.selfGen && in.State != StateAlive) {
				// Someone is spreading stale or damning news about us;
				// out-bid it with a fresh incarnation.
				m.selfGen = in.Generation + 1
			}
			continue
		}
		if m.applyLocked(in, &transitions) {
			changed = true
		}
	}
	if changed {
		m.version++
	}
	m.mu.Unlock()
	m.notify(transitions)
	return changed
}

// applyLocked merges one remote record; reports a ring-set change and
// appends any lifecycle transition to transitions.
func (m *Membership) applyLocked(in MemberInfo, transitions *[]stateChange) bool {
	now := m.cfg.Now()
	rec, ok := m.members[in.URL]
	if !ok {
		m.members[in.URL] = &memberRecord{info: in, lastHeard: now, since: now}
		*transitions = append(*transitions, stateChange{in.URL, in.State})
		return in.State.inRing()
	}
	if !in.supersedes(rec.info) {
		// Old news, alive-at-current-incarnation included: relayed alive
		// records are NOT evidence of life, or partitioned nodes would
		// keep vouching for each other's stale views and nothing would
		// ever age out. Only direct contact (ObserveAlive) resets the
		// detector; only a fresh incarnation refutes suspicion.
		return false
	}
	wasRing := rec.info.State.inRing()
	if rec.info.State != in.State {
		*transitions = append(*transitions, stateChange{in.URL, in.State})
	}
	rec.info = in
	rec.since = now
	if in.State == StateAlive {
		rec.lastHeard = now
	}
	return wasRing != in.State.inRing()
}

// ObserveAlive records direct evidence of life (a request to the member
// answered) — the failure detector's last-heard clock resets, and a
// suspect is re-admitted as alive.
func (m *Membership) ObserveAlive(url string) {
	var transitions []stateChange
	m.mu.Lock()
	rec, ok := m.members[url]
	if !ok || !rec.info.State.inRing() {
		m.mu.Unlock()
		return // dead members only come back by incarnation, via Merge
	}
	rec.lastHeard = m.cfg.Now()
	if rec.info.State == StateSuspect {
		rec.info.State = StateAlive
		rec.since = rec.lastHeard
		transitions = append(transitions, stateChange{url, StateAlive})
	}
	m.mu.Unlock()
	m.notify(transitions)
}

// ObserveSuspect accelerates suspicion on direct evidence of trouble —
// the peer's circuit breaker opening. The member keeps its ring arcs
// (it may just be slow); only the dead timeout removes it.
func (m *Membership) ObserveSuspect(url string) {
	m.mu.Lock()
	rec, ok := m.members[url]
	if !ok || rec.info.State != StateAlive {
		m.mu.Unlock()
		return
	}
	now := m.cfg.Now()
	// Backdate lastHeard so the dead timeout runs from the breaker
	// opening, not from whenever gossip last vouched for the member.
	if cutoff := now.Add(-m.cfg.SuspectAfter); rec.lastHeard.After(cutoff) {
		rec.lastHeard = cutoff
	}
	rec.info.State = StateSuspect
	rec.since = now
	m.mu.Unlock()
	m.notify([]stateChange{{url, StateSuspect}})
}

// Tick advances the failure detector: unheard alives become suspect,
// overdue suspects become dead (a ring change), and stale tombstones
// are reaped. Returns whether the ring membership changed.
func (m *Membership) Tick() (changed bool) {
	var transitions []stateChange
	m.mu.Lock()
	now := m.cfg.Now()
	for url, rec := range m.members {
		silent := now.Sub(rec.lastHeard)
		switch rec.info.State {
		case StateAlive:
			if silent >= m.cfg.SuspectAfter {
				rec.info.State = StateSuspect
				rec.since = now
				transitions = append(transitions, stateChange{url, StateSuspect})
			}
		case StateSuspect:
			if silent >= m.cfg.DeadAfter {
				// Dead at generation g beats alive at g by state
				// precedence; only a fresh incarnation revives the member.
				rec.info.State = StateDead
				rec.since = now
				transitions = append(transitions, stateChange{url, StateDead})
				changed = true
			}
		case StateDead, StateLeft:
			if now.Sub(rec.since) >= m.cfg.ReapAfter {
				delete(m.members, url)
			}
		}
	}
	if changed {
		m.version++
	}
	m.mu.Unlock()
	m.notify(transitions)
	return changed
}

// Leave marks self as departed at a fresh incarnation and returns the
// final view to announce. Live() no longer includes self.
func (m *Membership) Leave() []MemberInfo {
	m.mu.Lock()
	if !m.left {
		m.left = true
		m.selfGen++
		m.version++
	}
	m.mu.Unlock()
	return m.Snapshot()
}

// NonRing returns known members currently outside the ring (dead or
// left tombstones), sorted — reconnection probes pick from these so a
// healed partition can be rediscovered.
func (m *Membership) NonRing() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for url, rec := range m.members {
		if !rec.info.State.inRing() {
			out = append(out, url)
		}
	}
	sort.Strings(out)
	return out
}
