package tenant

import (
	"testing"
	"time"
)

// FuzzTenantConfig throws arbitrary bytes at the tenants config parser.
// The contract under fuzz: never panic, and every successfully parsed
// snapshot satisfies the invariants the server relies on — valid IDs,
// positive weights, well-formed keys, consistent indexes — and survives
// a registry admit/account cycle.
func FuzzTenantConfig(f *testing.F) {
	f.Add(validSeed)
	f.Add("tenant a key=aaaaaaaa weight=0")
	f.Add("tenant a key=aaaaaaaa\ntenant a key=bbbbbbbb")
	f.Add("tenant a key=samekey1\ntenant b key=samekey1")
	f.Add("cluster-key short")
	f.Add("anon rate=abc")
	f.Add("tenant \x00 key=aaaaaaaa")
	f.Add("tenant a key=aaaaaaaa quota=9999999999999GiB")
	f.Add("tenant a key=aaaaaaaa rate=1e308 burst=-0")
	f.Add("# only comments\n\n")
	f.Fuzz(func(t *testing.T, src string) {
		snap, err := ParseConfig(src, "fuzz")
		if err != nil {
			return
		}
		for id, tn := range snap.ByID {
			if id != tn.ID {
				t.Fatalf("ByID[%q].ID = %q", id, tn.ID)
			}
			if id != AnonID && !ValidID(id) {
				t.Fatalf("accepted invalid id %q", id)
			}
			if tn.Weight < 1 {
				t.Fatalf("accepted weight %d for %q", tn.Weight, id)
			}
			if tn.RateRPS < 0 || tn.Burst < 0 || tn.QuotaBytes < 0 {
				t.Fatalf("negative limits for %q: %+v", id, tn)
			}
			if tn.RateRPS > 0 && tn.Burst < 1 {
				t.Fatalf("rate without burst for %q: %+v", id, tn)
			}
			if id == AnonID {
				if tn.Key != "" {
					t.Fatalf("anon has a key")
				}
				continue
			}
			if err := validateKey(tn.Key); err != nil {
				t.Fatalf("accepted bad key for %q: %v", id, err)
			}
			if snap.ByKey[tn.Key] != tn {
				t.Fatalf("ByKey index inconsistent for %q", id)
			}
		}
		if len(snap.ClusterKey) > 0 {
			if err := validateKey(string(snap.ClusterKey)); err != nil {
				t.Fatalf("accepted bad cluster key: %v", err)
			}
		}
		// A parsed snapshot must be usable: run one admit/account cycle
		// through a registry without panicking.
		r := NewRegistry(snap)
		now := time.Unix(1_000_000, 0)
		for id, tn := range snap.ByID {
			r.Admit(tn, now)
			r.AccountBytes(id, 123, now)
			r.WindowBytes(id, now)
		}
		r.Reload(snap)
	})
}

const validSeed = `cluster-key s3cret-cluster-key
tenant acme key=acme-key-123 weight=3 rate=100 burst=20 quota=10MiB
anon weight=1 rate=5
`
