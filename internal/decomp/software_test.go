package decomp

import (
	"testing"

	"codepack/internal/isa"
	"codepack/internal/mem"
)

func newSoftware(t *testing.T, cfg SoftwareConfig) *Software {
	t.Helper()
	e, err := NewSoftware(paperComp(t), newBus(t, mem.Baseline()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestSoftwareConfigValidate(t *testing.T) {
	if err := DefaultSoftware().Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	if err := (SoftwareConfig{TrapOverhead: -1, CyclesPerInstr: 1}).Validate(); err == nil {
		t.Error("negative trap accepted")
	}
	if err := (SoftwareConfig{TrapOverhead: 10, CyclesPerInstr: 0}).Validate(); err == nil {
		t.Error("zero decode cost accepted")
	}
}

func TestSoftwareSlowerThanHardware(t *testing.T) {
	hw, err := NewCodePack(paperComp(t), newBus(t, mem.Baseline()), BaselineCodePack())
	if err != nil {
		t.Fatal(err)
	}
	sw := newSoftware(t, DefaultSoftware())
	hf := hw.FetchLine(0, isa.TextBase, 4)
	sf := sw.FetchLine(0, isa.TextBase, 4)
	if sf.Ready[4] <= hf.Ready[4] {
		t.Fatalf("software critical at %d not slower than hardware %d",
			sf.Ready[4], hf.Ready[4])
	}
	// The trap overhead alone puts the first instruction past the
	// hardware index fetch time.
	if sf.Ready[0] < uint64(DefaultSoftware().TrapOverhead) {
		t.Fatalf("first instruction at %d, before the trap completes", sf.Ready[0])
	}
}

func TestSoftwareBufferHit(t *testing.T) {
	sw := newSoftware(t, DefaultSoftware())
	first := sw.FetchLine(0, isa.TextBase, 0)
	second := sw.FetchLine(first.Done+10, isa.TextBase+32, 0)
	if sw.Stats().BufferHits != 1 {
		t.Fatalf("buffer hits = %d, want 1", sw.Stats().BufferHits)
	}
	if second.Ready[0] != first.Done+11 {
		t.Fatalf("buffered line at %d, want now+1", second.Ready[0])
	}
}

func TestSoftwarePartialDecodeIsFasterButNoPrefetch(t *testing.T) {
	full := newSoftware(t, DefaultSoftware())
	partial := DefaultSoftware()
	partial.DecodeWholeBlock = false
	part := newSoftware(t, partial)

	// Request the FIRST line of a block: the partial handler decodes 8
	// instead of 16 instructions, so the line completes earlier.
	ff := full.FetchLine(0, isa.TextBase, 0)
	pf := part.FetchLine(0, isa.TextBase, 0)
	if pf.Done >= ff.Done {
		t.Fatalf("partial decode done at %d, full at %d", pf.Done, ff.Done)
	}

	// But the second line of the block is not buffered.
	full.FetchLine(1000, isa.TextBase+32, 0)
	part.FetchLine(1000, isa.TextBase+32, 0)
	if full.Stats().BufferHits != 1 {
		t.Error("full decode should have buffered the second line")
	}
	if part.Stats().BufferHits != 0 {
		t.Error("partial decode has no prefetch to hit")
	}
}

func TestSoftwareIndexRegister(t *testing.T) {
	sw := newSoftware(t, DefaultSoftware())
	sw.FetchLine(0, isa.TextBase, 0)      // block 0, group 0: index load
	sw.FetchLine(500, isa.TextBase+64, 0) // block 1, same group: register hit
	s := sw.Stats()
	if s.IndexLookups != 2 || s.IndexMisses != 1 {
		t.Fatalf("index lookups/misses = %d/%d, want 2/1", s.IndexLookups, s.IndexMisses)
	}
}

func TestSoftwareDecodeCostScales(t *testing.T) {
	fast := DefaultSoftware()
	fast.CyclesPerInstr = 2
	slow := DefaultSoftware()
	slow.CyclesPerInstr = 20
	f := newSoftware(t, fast).FetchLine(0, isa.TextBase, 7)
	s := newSoftware(t, slow).FetchLine(0, isa.TextBase, 7)
	if s.Ready[7] <= f.Ready[7] {
		t.Fatalf("10x decode cost did not slow the miss (%d vs %d)", s.Ready[7], f.Ready[7])
	}
}
