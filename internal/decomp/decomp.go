// Package decomp models the L1 instruction-miss path: the native fill with
// critical-word-first, and the CodePack decompression pipeline of Figure 1
// of the paper (index-table fetch, compressed-block burst, N-wide
// decompressor, 16-instruction output buffer with prefetch, instruction
// forwarding). The timing reproduces the paper's Figure 2 worked example
// exactly: the critical instruction is ready at t=10 for native code, t=25
// for baseline CodePack, and t=14 for the optimized decompressor.
package decomp

import (
	"fmt"

	"codepack/internal/core"
	"codepack/internal/mem"
)

// LineInstrs is the number of instructions per L1 I-cache line (32-byte
// lines throughout the paper).
const LineInstrs = 8

// LineBytes is the I-cache line size in bytes.
const LineBytes = LineInstrs * 4

// LineFill reports when each instruction of a missed line becomes available
// to the core (instruction forwarding) and when the fill completes.
type LineFill struct {
	Ready [LineInstrs]uint64
	Done  uint64
}

// Engine services L1 instruction-cache misses.
type Engine interface {
	// FetchLine handles a miss at cycle now for the line at lineAddr;
	// critical is the index within the line of the instruction that
	// caused the miss.
	FetchLine(now uint64, lineAddr uint32, critical int) LineFill
}

// Native fills lines from uncompressed memory, optionally returning the
// critical word first (the paper's modified SimpleScalar behaviour).
type Native struct {
	Bus *mem.Bus
	// CriticalWordFirst enables the wrap-around fill order. The paper
	// calls this "a significant advantage for native code"; disabling it
	// is an ablation.
	CriticalWordFirst bool
}

// FetchLine implements Engine.
func (n *Native) FetchLine(now uint64, lineAddr uint32, critical int) LineFill {
	burst := n.Bus.Request(now, lineAddr, LineBytes)
	w := n.Bus.Config().WidthBytes
	var fill LineFill
	for pos := 0; pos < LineInstrs; pos++ {
		word := pos
		if n.CriticalWordFirst {
			word = (critical + pos) % LineInstrs
		}
		// Cumulative bytes needed for the pos-th transferred word.
		need := (pos + 1) * 4
		beat := (need + w - 1) / w
		fill.Ready[word] = burst.BeatTime(beat - 1)
	}
	fill.Done = burst.Done()
	return fill
}

// CodePackConfig selects the decompressor variant.
type CodePackConfig struct {
	// DecodeRate is the number of instructions decompressed per cycle
	// (1 in the baseline; 2 and 16 in the paper's optimization study).
	DecodeRate int
	// IndexCacheLines and IndexEntriesPerLine configure the fully
	// associative index cache. 1x1 is the baseline ("the last used index
	// table entry is cached"); the optimized model uses 64x4.
	IndexCacheLines     int
	IndexEntriesPerLine int
	// IndexCacheAssoc restricts the index cache to N-way set-associative
	// lookup; 0 keeps the paper's fully associative organization.
	IndexCacheAssoc int
	// PerfectIndex makes every index lookup hit (the Table 7 "Perfect"
	// column: an on-chip ROM for the whole table).
	PerfectIndex bool
	// DisablePrefetch turns off the 16-instruction output buffer reuse
	// (ablation; real CodePack always fills the whole buffer).
	DisablePrefetch bool
}

// BaselineCodePack is the unoptimized decompressor of the paper.
func BaselineCodePack() CodePackConfig {
	return CodePackConfig{DecodeRate: 1, IndexCacheLines: 1, IndexEntriesPerLine: 1}
}

// OptimizedCodePack is the paper's optimized model: a 64-line, 4-entry
// index cache plus two decompressors per cycle.
func OptimizedCodePack() CodePackConfig {
	return CodePackConfig{DecodeRate: 2, IndexCacheLines: 64, IndexEntriesPerLine: 4}
}

// Validate checks the configuration.
func (c CodePackConfig) Validate() error {
	if c.DecodeRate < 1 || c.DecodeRate > core.BlockInstrs {
		return fmt.Errorf("decomp: decode rate %d out of range", c.DecodeRate)
	}
	if !c.PerfectIndex && (c.IndexCacheLines < 1 || c.IndexEntriesPerLine < 1) {
		return fmt.Errorf("decomp: bad index cache geometry %dx%d",
			c.IndexCacheLines, c.IndexEntriesPerLine)
	}
	return nil
}

// CodePackStats counts decompressor events.
type CodePackStats struct {
	Misses       uint64 // line misses handled
	BufferHits   uint64 // satisfied by the 16-instruction output buffer
	BlockReads   uint64 // compressed blocks fetched from memory
	IndexLookups uint64
	IndexMisses  uint64 // index fetches that went to main memory
}

// IndexMissRate is the Table 6 metric: index-cache misses per L1 miss that
// consulted the index.
func (s CodePackStats) IndexMissRate() float64 {
	if s.IndexLookups == 0 {
		return 0
	}
	return float64(s.IndexMisses) / float64(s.IndexLookups)
}

// CodePack is the decompression engine.
type CodePack struct {
	comp *core.Compressed
	bus  *mem.Bus
	cfg  CodePackConfig

	indexBase  uint32 // memory address of the index table
	regionBase uint32 // memory address of the compressed region

	idx   *indexCache
	stats CodePackStats

	// Output buffer: the last decompressed block and the cycle each of
	// its instructions became available.
	bufBlock int
	bufReady [core.BlockInstrs]uint64
	bufValid bool
	// decoderFree is when the decompressor finishes the current block;
	// it always fills the whole output buffer, so a new miss cannot
	// start decoding before then.
	decoderFree uint64
}

// NewCodePack builds a decompression engine for comp over bus.
func NewCodePack(comp *core.Compressed, bus *mem.Bus, cfg CodePackConfig) (*CodePack, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &CodePack{
		comp: comp,
		bus:  bus,
		cfg:  cfg,
		// The compressed image lives in main memory after the native
		// text region: index table first, then compressed bytes.
		indexBase: comp.TextBase + 0x0100_0000,
		bufBlock:  -1,
	}
	e.regionBase = e.indexBase + uint32(len(comp.Index)*core.IndexEntryBytes)
	if !cfg.PerfectIndex {
		e.idx = newIndexCacheAssoc(cfg.IndexCacheLines, cfg.IndexEntriesPerLine,
			cfg.IndexCacheAssoc)
	}
	return e, nil
}

// Stats returns the event counters.
func (e *CodePack) Stats() CodePackStats { return e.stats }

// FetchLine implements Engine.
func (e *CodePack) FetchLine(now uint64, lineAddr uint32, critical int) LineFill {
	e.stats.Misses++
	instr := int(lineAddr-e.comp.TextBase) / 4
	block := instr / core.BlockInstrs
	lineOff := instr % core.BlockInstrs // 0 or 8: which half of the block

	var fill LineFill
	if e.bufValid && e.bufBlock == block {
		// The whole block was decompressed on an earlier miss; this is
		// the prefetch behaviour that lets CodePack beat native code.
		e.stats.BufferHits++
		for i := 0; i < LineInstrs; i++ {
			fill.Ready[i] = maxU64(now+1, e.bufReady[lineOff+i])
			fill.Done = maxU64(fill.Done, fill.Ready[i])
		}
		return fill
	}

	// Step A of Figure 1: map the native address through the index table.
	t := now
	group := block / core.GroupBlocks
	if !e.cfg.PerfectIndex {
		e.stats.IndexLookups++
		if !e.idx.access(group) {
			e.stats.IndexMisses++
			// Burst-fill one index-cache line worth of entries.
			firstEntry := group / e.idx.entriesPerLine * e.idx.entriesPerLine
			addr := e.indexBase + uint32(firstEntry*core.IndexEntryBytes)
			burst := e.bus.Request(t, addr, e.idx.entriesPerLine*core.IndexEntryBytes)
			// The needed entry may arrive before the burst completes.
			off := (group-firstEntry)*core.IndexEntryBytes + core.IndexEntryBytes
			beat := (int(addr%uint32(e.bus.Config().WidthBytes)) + off +
				e.bus.Config().WidthBytes - 1) / e.bus.Config().WidthBytes
			t = burst.BeatTime(beat - 1)
		}
	}

	// Step B: fetch the compressed block. Step C: decompress as the bytes
	// stream in, DecodeRate instructions per cycle.
	start, size, _, err := e.comp.BlockExtent(block)
	if err != nil {
		// Out-of-range fetch (e.g. speculative); treat as an empty fill.
		fill.Done = t
		return fill
	}
	e.stats.BlockReads++
	addr := e.regionBase + start
	burst := e.bus.Request(t, addr, int(size))
	w := e.bus.Config().WidthBytes
	slack := int(addr % uint32(w))

	var done [core.BlockInstrs]uint64
	for i := 0; i < core.BlockInstrs; i++ {
		need := e.comp.InstrReadyBytes(block, i)
		beat := (slack + need + w - 1) / w
		arrive := burst.BeatTime(beat - 1)
		c := arrive + 1
		if j := i - e.cfg.DecodeRate; j >= 0 {
			if done[j]+1 > c {
				c = done[j] + 1
			}
		} else if e.decoderFree+1 > c {
			c = e.decoderFree + 1
		}
		done[i] = c
	}
	e.decoderFree = done[core.BlockInstrs-1]

	if !e.cfg.DisablePrefetch {
		e.bufBlock = block
		e.bufReady = done
		e.bufValid = true
	}
	for i := 0; i < LineInstrs; i++ {
		fill.Ready[i] = done[lineOff+i]
		fill.Done = maxU64(fill.Done, fill.Ready[i])
	}
	return fill
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
