package decomp

// indexCache is the cache of index-table entries studied in Table 6 of the
// paper. Each line holds entriesPerLine consecutive 32-bit index entries,
// filled with one burst. The paper evaluates fully associative
// organizations; an optional set-associative mode (assoc > 0) models the
// cheaper hardware a real implementation might choose.
type indexCache struct {
	entriesPerLine int
	assoc          int // ways per set; 0 = fully associative
	sets           int
	keys           []int // line key = group / entriesPerLine; -1 invalid
	stamp          []uint64
	clock          uint64
}

func newIndexCache(lines, entriesPerLine int) *indexCache {
	return newIndexCacheAssoc(lines, entriesPerLine, 0)
}

// newIndexCacheAssoc builds an index cache with the given associativity
// (0 or >= lines means fully associative).
func newIndexCacheAssoc(lines, entriesPerLine, assoc int) *indexCache {
	if assoc <= 0 || assoc >= lines {
		assoc = lines
	}
	c := &indexCache{
		entriesPerLine: entriesPerLine,
		assoc:          assoc,
		sets:           lines / assoc,
		keys:           make([]int, lines),
		stamp:          make([]uint64, lines),
	}
	for i := range c.keys {
		c.keys[i] = -1
	}
	return c
}

// access looks up the line holding the index entry for group, filling it on
// a miss, and reports whether it hit.
func (c *indexCache) access(group int) bool {
	c.clock++
	key := group / c.entriesPerLine
	base := key % c.sets * c.assoc
	ways := c.keys[base : base+c.assoc]
	victim := 0
	for i, k := range ways {
		if k == key {
			c.stamp[base+i] = c.clock
			return true
		}
		if ways[victim] != -1 && (k == -1 || c.stamp[base+i] < c.stamp[base+victim]) {
			victim = i
		}
	}
	ways[victim] = key
	c.stamp[base+victim] = c.clock
	return false
}
