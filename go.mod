module codepack

go 1.22
