// Package isa defines SS32, a 32-bit MIPS-IV-style instruction set used as
// the substrate for the CodePack reproduction.
//
// SS32 plays the role of the paper's re-encoded SimpleScalar instruction set:
// fixed 32-bit instructions with R/I/J formats whose 16-bit halves carry the
// skewed value distributions (opcode and registers in the high half,
// immediates in the low half) that CodePack exploits.
package isa

// Word is one encoded SS32 instruction.
type Word = uint32

// Architectural constants.
const (
	// NumRegs is the number of general-purpose integer registers.
	NumRegs = 32
	// NumFPRegs is the number of floating-point registers.
	NumFPRegs = 32
	// InstBytes is the size of every encoded instruction.
	InstBytes = 4
	// TextBase is the load address of the text segment.
	TextBase = 0x0040_0000
	// DataBase is the load address of the data segment.
	DataBase = 0x1000_0000
	// StackTop is the initial stack pointer.
	StackTop = 0x7FFF_F000
	// GlobalBase is the initial value of $gp.
	GlobalBase = DataBase + 0x8000
)

// Primary opcode field values (bits 31..26).
const (
	opSpecial = 0x00
	opRegImm  = 0x01
	opJ       = 0x02
	opJAL     = 0x03
	opBEQ     = 0x04
	opBNE     = 0x05
	opBLEZ    = 0x06
	opBGTZ    = 0x07
	opADDI    = 0x08
	opADDIU   = 0x09
	opSLTI    = 0x0A
	opSLTIU   = 0x0B
	opANDI    = 0x0C
	opORI     = 0x0D
	opXORI    = 0x0E
	opLUI     = 0x0F
	opCOP1    = 0x11
	opLB      = 0x20
	opLH      = 0x21
	opLW      = 0x23
	opLBU     = 0x24
	opLHU     = 0x25
	opSB      = 0x28
	opSH      = 0x29
	opSW      = 0x2B
	opLWC1    = 0x31
	opSWC1    = 0x39
)

// SPECIAL funct field values (bits 5..0 when op == 0).
const (
	fnSLL     = 0x00
	fnSRL     = 0x02
	fnSRA     = 0x03
	fnSLLV    = 0x04
	fnSRLV    = 0x06
	fnSRAV    = 0x07
	fnJR      = 0x08
	fnJALR    = 0x09
	fnSYSCALL = 0x0C
	fnMFHI    = 0x10
	fnMFLO    = 0x12
	fnMULT    = 0x18
	fnMULTU   = 0x19
	fnDIV     = 0x1A
	fnDIVU    = 0x1B
	fnADD     = 0x20
	fnADDU    = 0x21
	fnSUB     = 0x22
	fnSUBU    = 0x23
	fnAND     = 0x24
	fnOR      = 0x25
	fnXOR     = 0x26
	fnNOR     = 0x27
	fnSLT     = 0x2A
	fnSLTU    = 0x2B
)

// REGIMM rt field values.
const (
	riBLTZ = 0x00
	riBGEZ = 0x01
)

// COP1 funct field values (fmt field fixed to double).
const (
	fpADD = 0x00
	fpSUB = 0x01
	fpMUL = 0x02
	fpDIV = 0x03
	fpMOV = 0x06
	fpNEG = 0x07
)

// Op identifies a decoded SS32 operation.
type Op uint8

// All SS32 operations.
const (
	OpInvalid Op = iota
	OpSLL
	OpSRL
	OpSRA
	OpSLLV
	OpSRLV
	OpSRAV
	OpJR
	OpJALR
	OpSYSCALL
	OpMFHI
	OpMFLO
	OpMULT
	OpMULTU
	OpDIV
	OpDIVU
	OpADD
	OpADDU
	OpSUB
	OpSUBU
	OpAND
	OpOR
	OpXOR
	OpNOR
	OpSLT
	OpSLTU
	OpBLTZ
	OpBGEZ
	OpJ
	OpJAL
	OpBEQ
	OpBNE
	OpBLEZ
	OpBGTZ
	OpADDI
	OpADDIU
	OpSLTI
	OpSLTIU
	OpANDI
	OpORI
	OpXORI
	OpLUI
	OpLB
	OpLH
	OpLW
	OpLBU
	OpLHU
	OpSB
	OpSH
	OpSW
	OpLWC1
	OpSWC1
	OpFADD
	OpFSUB
	OpFMUL
	OpFDIV
	OpFMOV
	OpFNEG
	numOps
)

var opNames = [numOps]string{
	OpInvalid: "invalid",
	OpSLL:     "sll", OpSRL: "srl", OpSRA: "sra",
	OpSLLV: "sllv", OpSRLV: "srlv", OpSRAV: "srav",
	OpJR: "jr", OpJALR: "jalr", OpSYSCALL: "syscall",
	OpMFHI: "mfhi", OpMFLO: "mflo",
	OpMULT: "mult", OpMULTU: "multu", OpDIV: "div", OpDIVU: "divu",
	OpADD: "add", OpADDU: "addu", OpSUB: "sub", OpSUBU: "subu",
	OpAND: "and", OpOR: "or", OpXOR: "xor", OpNOR: "nor",
	OpSLT: "slt", OpSLTU: "sltu",
	OpBLTZ: "bltz", OpBGEZ: "bgez",
	OpJ: "j", OpJAL: "jal",
	OpBEQ: "beq", OpBNE: "bne", OpBLEZ: "blez", OpBGTZ: "bgtz",
	OpADDI: "addi", OpADDIU: "addiu", OpSLTI: "slti", OpSLTIU: "sltiu",
	OpANDI: "andi", OpORI: "ori", OpXORI: "xori", OpLUI: "lui",
	OpLB: "lb", OpLH: "lh", OpLW: "lw", OpLBU: "lbu", OpLHU: "lhu",
	OpSB: "sb", OpSH: "sh", OpSW: "sw",
	OpLWC1: "lwc1", OpSWC1: "swc1",
	OpFADD: "add.d", OpFSUB: "sub.d", OpFMUL: "mul.d", OpFDIV: "div.d",
	OpFMOV: "mov.d", OpFNEG: "neg.d",
}

// String returns the assembler mnemonic for op.
func (op Op) String() string {
	if op >= numOps {
		return "invalid"
	}
	return opNames[op]
}

// Class groups operations by the functional unit and hazard behaviour they
// exhibit in the timing models.
type Class uint8

// Operation classes.
const (
	ClassNop     Class = iota // architectural no-op (sll $0,$0,0)
	ClassIntALU               // single-cycle integer ops
	ClassIntMult              // integer multiply
	ClassIntDiv               // integer divide
	ClassLoad                 // memory loads
	ClassStore                // memory stores
	ClassBranch               // conditional branches
	ClassJump                 // unconditional jumps, calls, returns
	ClassSyscall              // system call (serializing)
	ClassFPALU                // FP add/sub/mov/neg
	ClassFPMult               // FP multiply/divide
)

var classNames = []string{
	ClassNop: "nop", ClassIntALU: "intalu", ClassIntMult: "intmult",
	ClassIntDiv: "intdiv", ClassLoad: "load", ClassStore: "store",
	ClassBranch: "branch", ClassJump: "jump", ClassSyscall: "syscall",
	ClassFPALU: "fpalu", ClassFPMult: "fpmult",
}

// String returns a short lower-case name for the class.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return "unknown"
}

// ClassOf returns the functional class of op.
func ClassOf(op Op) Class {
	switch op {
	case OpMULT, OpMULTU:
		return ClassIntMult
	case OpDIV, OpDIVU:
		return ClassIntDiv
	case OpLB, OpLH, OpLW, OpLBU, OpLHU, OpLWC1:
		return ClassLoad
	case OpSB, OpSH, OpSW, OpSWC1:
		return ClassStore
	case OpBEQ, OpBNE, OpBLEZ, OpBGTZ, OpBLTZ, OpBGEZ:
		return ClassBranch
	case OpJ, OpJAL, OpJR, OpJALR:
		return ClassJump
	case OpSYSCALL:
		return ClassSyscall
	case OpFADD, OpFSUB, OpFMOV, OpFNEG:
		return ClassFPALU
	case OpFMUL, OpFDIV:
		return ClassFPMult
	default:
		return ClassIntALU
	}
}

// Latency returns the execution latency in cycles for op, loosely following
// SimpleScalar's defaults. Loads add cache access time on top of this.
func Latency(op Op) int {
	switch ClassOf(op) {
	case ClassIntMult:
		return 3
	case ClassIntDiv:
		return 20
	case ClassFPALU:
		return 2
	case ClassFPMult:
		if op == OpFDIV {
			return 12
		}
		return 4
	default:
		return 1
	}
}

// Conventional ABI register numbers.
const (
	RegZero = 0
	RegAT   = 1
	RegV0   = 2
	RegV1   = 3
	RegA0   = 4
	RegA1   = 5
	RegA2   = 6
	RegA3   = 7
	RegT0   = 8
	RegS0   = 16
	RegT8   = 24
	RegK0   = 26
	RegGP   = 28
	RegSP   = 29
	RegFP   = 30
	RegRA   = 31
)

// RegName returns the ABI name for integer register r (for disassembly).
func RegName(r int) string {
	if r < 0 || r > 31 {
		return "$?"
	}
	return regNames[r]
}

var regNames = [32]string{
	"$zero", "$at", "$v0", "$v1", "$a0", "$a1", "$a2", "$a3",
	"$t0", "$t1", "$t2", "$t3", "$t4", "$t5", "$t6", "$t7",
	"$s0", "$s1", "$s2", "$s3", "$s4", "$s5", "$s6", "$s7",
	"$t8", "$t9", "$k0", "$k1", "$gp", "$sp", "$fp", "$ra",
}

// RegNumber maps an ABI or numeric register name (without the '$') to its
// register number, returning -1 if the name is unknown.
func RegNumber(name string) int {
	for i, n := range regNames {
		if n[1:] == name {
			return i
		}
	}
	// Numeric form: 0..31.
	r := 0
	for _, c := range name {
		if c < '0' || c > '9' {
			return -1
		}
		r = r*10 + int(c-'0')
	}
	if name == "" || r > 31 {
		return -1
	}
	return r
}

// Syscall service numbers (in $v0 at the syscall).
const (
	SysPrintInt    = 1  // print integer in $a0
	SysPrintString = 4  // print NUL-terminated string at address $a0
	SysPrintChar   = 11 // print character in $a0
	SysExit        = 10 // halt the machine
)
