// Package workload generates the synthetic benchmark programs that stand in
// for the paper's SPEC CINT95 and MediaBench binaries (Table 1).
//
// Each profile is calibrated on two axes the experiments depend on:
//
//   - Static: the text-section size matches the paper's Table 3 within a few
//     percent, and instruction halfwords follow realistic skewed
//     distributions (common opcode/register patterns, mostly-small
//     immediates, occasional unique constants) so CodePack's compression
//     ratio lands in the paper's 54-62% band.
//
//   - Dynamic: the L1 instruction miss rate approximates Table 1. The
//     CINT95-like profiles (cc1, go, perl, vortex) repeatedly walk a pool
//     of functions far larger than the cache; the MediaBench-like profiles
//     (mpeg2enc, pegwit) touch their text once and then run hot loop
//     kernels. The inner-loop trip count of pool functions sets the miss
//     rate (roughly 1/(8*L) on the walked fraction).
//
// Generation is deterministic for a given profile.
package workload

// Profile parameterizes one synthetic benchmark.
type Profile struct {
	Name string
	// TextKB is the target static text size (paper Table 3).
	TextKB int
	// TargetDynamic is the nominal dynamic instruction count; the
	// generated driver loop runs just past it.
	TargetDynamic uint64

	// FuncBody is the straight-line body size (instructions) of each
	// pool function; InnerLoop is how many times a call re-executes the
	// body before returning (higher = more reuse = fewer misses).
	FuncBody  int
	InnerLoop int

	// WalkEvery controls how often the driver walks the whole function
	// pool: 1 = every iteration (cache-thrashing CINT95 behaviour),
	// N>1 = every Nth iteration (must be a power of two), 0 = only once
	// at startup (MediaBench behaviour).
	WalkEvery int
	// WalkOnceFraction limits a startup-only walk (WalkEvery==0) to the
	// leading fraction of the pool; 0 means 1.0.
	WalkOnceFraction float64

	// KernelIters and KernelBody shape the hot loop kernel executed every
	// driver iteration; KernelIters==0 omits the kernel.
	KernelIters int
	KernelBody  int

	// Instruction-mix knobs for pool and kernel bodies.
	LoadFrac   float64 // fraction of body slots that are loads
	StoreFrac  float64
	BranchFrac float64 // intra-body branch density
	FPFrac     float64 // floating-point density
	RareFrac   float64 // unique large constants (raw halfwords for CodePack)

	// HotSegs selects scheduled-walk mode: each driver iteration calls
	// SchedLen segments sampled so the HotSegs hottest segments receive
	// HotShare of the calls. This two-tier popularity reproduces real
	// programs' working-set hierarchy: the hot set (HotSegs x ~13KB)
	// fits large caches but thrashes small ones, while the cold tail
	// spreads over the whole text. HotSegs==0 walks every segment in
	// order (the original behaviour, used by the media profiles).
	HotSegs  int
	HotShare float64
	SchedLen int
	// RepeatProb is the chance a scheduled segment call repeats the
	// previous one (a one-segment reuse distance).
	RepeatProb float64

	// RunLen and SkipLen break bodies into short straight-line runs
	// separated by forward jumps over SkipLen words of never-executed
	// code, mimicking real control flow: misses land mid-line and
	// mid-block, and sequential prefetch is only partially useful.
	// RunLen 0 keeps bodies fully straight-line.
	RunLen  int
	SkipLen int

	// DataKB sizes the global data working set (bounded by the 64KB
	// $gp-relative window).
	DataKB int

	Seed int64
}

// Profiles returns the six benchmark stand-ins in the paper's Table 1
// order (alphabetical).
func Profiles() []Profile {
	return []Profile{CC1(), Go(), Mpeg2enc(), Pegwit(), Perl(), Vortex()}
}

// ByName returns the named profile.
func ByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// CC1 models the GCC compiler: the largest text, a huge instruction working
// set, and the worst I-cache behaviour (paper: 6.7% misses at 16KB).
func CC1() Profile {
	return Profile{
		Name: "cc1", TextKB: 1058, TargetDynamic: 3_000_000,
		FuncBody: 96, InnerLoop: 1, WalkEvery: 1, RunLen: 10, SkipLen: 12,
		HotSegs: 4, HotShare: 0.85, SchedLen: 128, RepeatProb: 0.24,
		LoadFrac: 0.21, StoreFrac: 0.10, BranchFrac: 0.15,
		FPFrac: 0.01, RareFrac: 0.04, DataKB: 48, Seed: 101,
	}
}

// Go models the go-playing program: branchy integer code over a large text
// (paper: 6.2% misses).
func Go() Profile {
	return Profile{
		Name: "go", TextKB: 303, TargetDynamic: 3_000_000,
		FuncBody: 96, InnerLoop: 1, WalkEvery: 1, RunLen: 10, SkipLen: 12,
		HotSegs: 3, HotShare: 0.85, SchedLen: 128, RepeatProb: 0.35,
		LoadFrac: 0.20, StoreFrac: 0.08, BranchFrac: 0.19,
		FPFrac: 0, RareFrac: 0.05, DataKB: 24, Seed: 102,
	}
}

// Mpeg2enc models the MPEG-2 encoder: loop-dominated media code whose hot
// kernels fit in cache (paper: 0.0% misses).
func Mpeg2enc() Profile {
	return Profile{
		Name: "mpeg2enc", TextKB: 116, TargetDynamic: 3_000_000,
		FuncBody: 96, InnerLoop: 2, WalkEvery: 0, WalkOnceFraction: 0.30,
		KernelIters: 48, KernelBody: 180, RunLen: 32, SkipLen: 4,
		LoadFrac: 0.24, StoreFrac: 0.11, BranchFrac: 0.08,
		FPFrac: 0.12, RareFrac: 0.04, DataKB: 8, Seed: 103,
	}
}

// Pegwit models the public-key encryption benchmark: small hot loops over a
// small text (paper: 0.1% misses).
func Pegwit() Profile {
	return Profile{
		Name: "pegwit", TextKB: 86, TargetDynamic: 3_000_000,
		FuncBody: 96, InnerLoop: 2, WalkEvery: 0, WalkOnceFraction: 1.0,
		KernelIters: 48, KernelBody: 150, RunLen: 32, SkipLen: 4,
		LoadFrac: 0.22, StoreFrac: 0.10, BranchFrac: 0.10,
		FPFrac: 0, RareFrac: 0.04, DataKB: 8, Seed: 104,
	}
}

// Perl models the Perl interpreter: a large dispatch-heavy working set with
// somewhat more reuse than cc1 (paper: 4.4% misses).
func Perl() Profile {
	return Profile{
		Name: "perl", TextKB: 261, TargetDynamic: 3_000_000,
		FuncBody: 96, InnerLoop: 2, WalkEvery: 1, RunLen: 10, SkipLen: 12,
		HotSegs: 4, HotShare: 0.88, SchedLen: 128, RepeatProb: 0.30,
		LoadFrac: 0.22, StoreFrac: 0.11, BranchFrac: 0.16,
		FPFrac: 0, RareFrac: 0.04, DataKB: 32, Seed: 105,
	}
}

// Vortex models the object-oriented database: a large text with heavy
// load/store traffic and moderate instruction reuse.
func Vortex() Profile {
	return Profile{
		Name: "vortex", TextKB: 484, TargetDynamic: 3_000_000,
		FuncBody: 96, InnerLoop: 1, WalkEvery: 1, RunLen: 10, SkipLen: 12,
		HotSegs: 4, HotShare: 0.84, SchedLen: 128, RepeatProb: 0.42,
		KernelIters: 12, KernelBody: 120,
		LoadFrac: 0.26, StoreFrac: 0.14, BranchFrac: 0.13,
		FPFrac: 0, RareFrac: 0.04, DataKB: 56, Seed: 106,
	}
}
