package peer

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func TestHandoffRecordRoundTrip(t *testing.T) {
	recs := []HandoffRecord{
		{Target: "http://a:1", Digest: testDigestOf([]byte("x")), Payload: []byte("payload")},
		{Target: "https://node-7.internal:8321", Digest: testDigestOf([]byte("y")), Payload: nil},
		{Target: "http://b:1", Digest: testDigestOf([]byte("z")), Payload: bytes.Repeat([]byte{0}, 4096)},
	}
	for _, want := range recs {
		got, err := DecodeHandoffRecord(EncodeHandoffRecord(want))
		if err != nil {
			t.Fatalf("round trip of %+v: %v", want, err)
		}
		if got.Target != want.Target || got.Digest != want.Digest || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("round trip mangled record: got %+v, want %+v", got, want)
		}
	}
}

func TestHandoffRecordRejectsMalformed(t *testing.T) {
	good := EncodeHandoffRecord(HandoffRecord{
		Target: "http://a:1", Digest: testDigestOf([]byte("x")), Payload: []byte("p"),
	})
	cases := map[string][]byte{
		"empty":          nil,
		"magic only":     {handoffMagic},
		"bad magic":      append([]byte{'X'}, good[1:]...),
		"bad version":    append([]byte{handoffMagic, 99}, good[2:]...),
		"truncated":      good[:len(good)-1],
		"trailing bytes": append(append([]byte{}, good...), 0xFF),
	}
	for name, b := range cases {
		if _, err := DecodeHandoffRecord(b); err == nil {
			t.Errorf("%s: decoder accepted malformed record", name)
		}
	}
	// A structurally valid record with an invalid target or digest must
	// also be refused.
	if _, err := DecodeHandoffRecord(EncodeHandoffRecord(HandoffRecord{
		Target: "not a url", Digest: testDigestOf([]byte("x")),
	})); err == nil {
		t.Error("decoder accepted an invalid target URL")
	}
	if _, err := DecodeHandoffRecord(EncodeHandoffRecord(HandoffRecord{
		Target: "http://a:1", Digest: "nothex",
	})); err == nil {
		t.Error("decoder accepted a malformed digest")
	}
}

func TestHintBufferBoundsAndTake(t *testing.T) {
	h := newHintBuffer(3, 1<<20)
	d := func(i int) string { return testDigestOf([]byte(fmt.Sprintf("d%d", i))) }
	for i := 0; i < 3; i++ {
		if ev := h.add(HandoffRecord{Target: "http://a:1", Digest: d(i), Payload: []byte("p")}); ev != 0 {
			t.Fatalf("add %d evicted %d records under the cap", i, ev)
		}
	}
	// The fourth hint evicts the oldest.
	if ev := h.add(HandoffRecord{Target: "http://b:1", Digest: d(3), Payload: []byte("p")}); ev != 1 {
		t.Fatalf("over-cap add evicted %d, want 1", ev)
	}
	if n, _ := h.pending(); n != 3 {
		t.Fatalf("pending = %d, want 3", n)
	}
	gotA := h.take("http://a:1")
	if len(gotA) != 2 || gotA[0].Digest != d(1) || gotA[1].Digest != d(2) {
		t.Fatalf("take(a) = %+v, want digests 1,2 oldest-first", gotA)
	}
	if tg := h.targets(); len(tg) != 1 || tg[0] != "http://b:1" {
		t.Fatalf("targets after take = %v, want [http://b:1]", tg)
	}
	h.take("http://b:1")
	if n, b := h.pending(); n != 0 || b != 0 {
		t.Fatalf("pending after draining everything = (%d, %d), want zeros", n, b)
	}

	// The byte cap evicts too.
	hb := newHintBuffer(100, 64)
	hb.add(HandoffRecord{Target: "http://a:1", Digest: d(0), Payload: bytes.Repeat([]byte{1}, 48)})
	if ev := hb.add(HandoffRecord{Target: "http://a:1", Digest: d(1), Payload: bytes.Repeat([]byte{1}, 48)}); ev != 1 {
		t.Fatalf("byte-cap add evicted %d, want 1", ev)
	}
}

// FuzzHandoffRecord feeds arbitrary bytes through the handoff decoder:
// it must never panic, anything it accepts must satisfy the validation
// contract, and re-encoding an accepted record must reproduce the
// canonical bytes.
func FuzzHandoffRecord(f *testing.F) {
	f.Add(EncodeHandoffRecord(HandoffRecord{
		Target: "http://a:1", Digest: testDigestOf([]byte("x")), Payload: []byte("payload"),
	}))
	f.Add(EncodeHandoffRecord(HandoffRecord{
		Target: "https://node:8321", Digest: testDigestOf([]byte("y")),
	}))
	f.Add([]byte{})
	f.Add([]byte{handoffMagic})
	f.Add([]byte{handoffMagic, handoffVersion})
	f.Add([]byte{handoffMagic, handoffVersion, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	f.Add([]byte(strings.Repeat("\x80", 64)))

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := DecodeHandoffRecord(data)
		if err != nil {
			return
		}
		if verr := validMemberURL(rec.Target); verr != nil {
			t.Fatalf("decoder accepted invalid target %q: %v", rec.Target, verr)
		}
		if !validDigest(rec.Digest) {
			t.Fatalf("decoder accepted malformed digest %q", rec.Digest)
		}
		if len(rec.Payload) > maxPayloadBytes {
			t.Fatalf("decoder accepted %d-byte payload", len(rec.Payload))
		}
		// The format has no redundancy, so an accepted input must BE the
		// canonical encoding of the record it decodes to.
		if enc := EncodeHandoffRecord(rec); !bytes.Equal(enc, data) {
			t.Fatalf("accepted input is not canonical:\n in: %x\nout: %x", data, enc)
		}
	})
}
