package server

import (
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"codepack"
)

// TestRestartRecoversCache is the end-to-end restart round trip: populate
// a persistent cache over HTTP, shut the server down, start a fresh one
// on the same directory and assert the second run serves pure cache hits
// — zero recompressions — with the hit visible in /metrics.
func TestRestartRecoversCache(t *testing.T) {
	dir := t.TempDir()
	imgB64 := testImageB64(t)
	req := CompressRequest{ProgramRef: ProgramRef{ImageB64: imgB64}}

	// First life: populate and shut down gracefully.
	s1, ts1 := newTestServer(t, Config{CacheDir: dir})
	first := decodeBody[CompressResponse](t, postJSON(t, ts1.URL+"/v1/compress", req), http.StatusOK)
	if first.Cached {
		t.Fatal("first compression reported cached")
	}
	ts1.Close()
	s1.Close()

	// Second life: same directory, fresh process state.
	s2, ts2 := newTestServer(t, Config{CacheDir: dir})
	second := decodeBody[CompressResponse](t, postJSON(t, ts2.URL+"/v1/compress", req), http.StatusOK)
	if !second.Cached {
		t.Fatal("restarted server recompressed a persisted entry")
	}
	if second.Digest != first.Digest || second.CompressedB64 != first.CompressedB64 {
		t.Error("restored entry differs from the original compression")
	}
	cs := s2.cache.stats()
	if cs.Misses != 0 {
		t.Errorf("restarted server recorded %d cache misses, want 0 (zero recompression)", cs.Misses)
	}
	if cs.Hits != 1 {
		t.Errorf("restarted server recorded %d cache hits, want 1", cs.Hits)
	}
	if got := scrapeMetric(t, ts2, "cpackd_cache_hits_total"); got != 1 {
		t.Errorf("cpackd_cache_hits_total = %v, want 1", got)
	}
	if got := scrapeMetric(t, ts2, "cpackd_cache_persist_restored_entries"); got != 1 {
		t.Errorf("cpackd_cache_persist_restored_entries = %v, want 1", got)
	}
	if got := scrapeMetric(t, ts2, "cpackd_cache_persist_replayed_bytes"); got <= 0 {
		t.Errorf("cpackd_cache_persist_replayed_bytes = %v, want > 0", got)
	}
}

// TestRestartAfterTornTail is the kill -9 shape at the package level: the
// log ends mid-record (as after a SIGKILL during an append) and the next
// boot must still recover every complete entry.
func TestRestartAfterTornTail(t *testing.T) {
	dir := t.TempDir()
	req := CompressRequest{ProgramRef: ProgramRef{ImageB64: testImageB64(t)}}

	s1, ts1 := newTestServer(t, Config{CacheDir: dir})
	decodeBody[CompressResponse](t, postJSON(t, ts1.URL+"/v1/compress", req), http.StatusOK)
	ts1.Close()
	s1.Close()

	// Append half a record to the log: a torn tail.
	logPath := filepath.Join(dir, logFileName)
	torn := encodeRecord("torn-key", make([]byte, 512))
	f, err := os.OpenFile(logPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn[:len(torn)/3]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, ts2 := newTestServer(t, Config{CacheDir: dir})
	resp := decodeBody[CompressResponse](t, postJSON(t, ts2.URL+"/v1/compress", req), http.StatusOK)
	if !resp.Cached {
		t.Error("entry before the torn tail was not recovered")
	}
	if got := scrapeMetric(t, ts2, "cpackd_cache_persist_tail_truncations_total"); got < 1 {
		t.Errorf("cpackd_cache_persist_tail_truncations_total = %v, want >= 1", got)
	}
}

// TestPersistedCacheRespectsCapacity: restoring more entries than the
// cache holds must evict oldest-first, not grow past the cap.
func TestPersistedCacheRespectsCapacity(t *testing.T) {
	dir := t.TempDir()
	st, _ := openTestStore(t, dir)
	var keys []string
	for i := 0; i < 6; i++ {
		comp := makeComp(t, uint32(i+1))
		key := fmt.Sprintf("key-%d", i)
		keys = append(keys, key)
		if err := st.append(key, comp.Marshal()); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.close(); err != nil {
		t.Fatal(err)
	}

	st2, recovered := openTestStore(t, dir)
	c := newCompCache(4)
	if restored := c.attachStore(st2, recovered, quietLogger()); restored != 6 {
		t.Fatalf("attachStore restored %d, want 6 (cap applies inside the cache)", restored)
	}
	defer c.close()
	if s := c.stats(); s.Entries != 4 || s.Evictions != 2 {
		t.Fatalf("stats %+v, want 4 entries after 2 evictions", s)
	}
	// The two oldest records are the evicted ones.
	for _, k := range keys[:2] {
		if _, ok := c.get(k); ok {
			t.Errorf("oldest key %s survived past capacity", k)
		}
	}
	for _, k := range keys[2:] {
		if _, ok := c.get(k); !ok {
			t.Errorf("recent key %s missing after restore", k)
		}
	}
}

// TestCompCacheStressRace hammers a persistent cache from many goroutines
// — put, get, stats and explicit compactions racing — then reopens the
// store and checks every surviving record still verifies. Run under
// -race this is the load-bearing ordering check on the LRU + store pair.
func TestCompCacheStressRace(t *testing.T) {
	dir := t.TempDir()
	st, recovered := openTestStore(t, dir)
	st.compactMinBytes = 1 // compact eagerly to maximize interleaving
	st.compactRatio = 1

	// Prebuild the working set: compression is too slow for the hot loop.
	const distinct = 24
	pool := make([]compEntrySeed, distinct)
	for i := range pool {
		pool[i] = compEntrySeed{
			key:  fmt.Sprintf("stress-%02d", i),
			comp: makeComp(t, uint32(i+1)),
		}
	}

	c := newCompCache(8)
	c.attachStore(st, recovered, quietLogger())

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 200; i++ {
				e := pool[rng.Intn(distinct)]
				switch i % 3 {
				case 0:
					c.put(e.key, e.comp)
				case 1:
					c.get(e.key)
				default:
					c.stats()
				}
			}
		}(g)
	}
	// Compactions racing with puts and gets.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if err := c.compactNow(); err != nil {
				t.Errorf("compact under load: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	if s := c.stats(); s.Entries > 8 {
		t.Errorf("cache exceeded capacity under load: %d entries", s.Entries)
	}
	c.close()

	// Everything on disk must still parse and verify.
	st2, entries := openTestStore(t, dir)
	if len(entries) == 0 {
		t.Fatal("no entries survived the stress run")
	}
	if len(entries) > 8 {
		t.Errorf("final snapshot holds %d entries, cap is 8", len(entries))
	}
	if ss := st2.statsSnapshot(); ss.RecordsSkipped != 0 || ss.TailTruncations != 0 {
		t.Errorf("clean shutdown left corruption: %+v", ss)
	}
}

// compEntrySeed pairs a key with a prebuilt compressed program for the
// stress test.
type compEntrySeed struct {
	key  string
	comp *codepack.Compressed
}
