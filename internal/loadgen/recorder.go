package loadgen

import (
	"math"
	"sort"
	"sync"
	"time"
)

// Recorder is an HDR-style latency histogram: log-spaced buckets covering
// 1µs..2min at ~5% relative precision, so quantiles up to p99.9 come out
// of a few hundred counters instead of a per-sample slice. The true
// maximum is tracked exactly.
type Recorder struct {
	mu     sync.Mutex
	counts []uint64
	n      uint64
	sum    time.Duration
	max    time.Duration
}

const (
	recorderMin    = time.Microsecond
	recorderMax    = 2 * time.Minute
	recorderGrowth = 1.05
)

// recorderBounds[i] is the inclusive upper bound of bucket i.
var recorderBounds = func() []time.Duration {
	var bounds []time.Duration
	for b := float64(recorderMin); b < float64(recorderMax); b *= recorderGrowth {
		bounds = append(bounds, time.Duration(b))
	}
	return append(bounds, recorderMax)
}()

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{counts: make([]uint64, len(recorderBounds)+1)}
}

// Observe records one latency. Negative values clamp to zero (bucket 0);
// values beyond the range land in the overflow bucket but still shape the
// exact max.
func (r *Recorder) Observe(d time.Duration) {
	i := sort.Search(len(recorderBounds), func(i int) bool { return recorderBounds[i] >= d })
	r.mu.Lock()
	r.counts[i]++
	r.n++
	if d > 0 {
		r.sum += d
	}
	if d > r.max {
		r.max = d
	}
	r.mu.Unlock()
}

// Quantile returns the latency at quantile q in [0,1]. The answer is the
// geometric midpoint of the bucket holding the q-th sample (its ~5% width
// bounds the error); q high enough to select the last recorded sample
// returns the exact maximum.
func (r *Recorder) Quantile(q float64) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.quantileLocked(q)
}

func (r *Recorder) quantileLocked(q float64) time.Duration {
	if r.n == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(r.n)))
	if target < 1 {
		target = 1
	}
	if target >= r.n {
		return r.max
	}
	var cum uint64
	for i, c := range r.counts {
		cum += c
		if cum >= target {
			hi := recorderBounds[len(recorderBounds)-1]
			if i < len(recorderBounds) {
				hi = recorderBounds[i]
			}
			lo := time.Duration(float64(hi) / recorderGrowth)
			if i == 0 {
				lo = 0
			}
			mid := time.Duration(math.Sqrt(float64(lo+1) * float64(hi)))
			if mid > r.max {
				mid = r.max
			}
			return mid
		}
	}
	return r.max
}

// LatencyStats is the quantile summary of a recorder, in milliseconds
// (the report's wire unit).
type LatencyStats struct {
	P50  float64 `json:"p50_ms"`
	P90  float64 `json:"p90_ms"`
	P99  float64 `json:"p99_ms"`
	P999 float64 `json:"p999_ms"`
	Max  float64 `json:"max_ms"`
	Mean float64 `json:"mean_ms"`
	N    uint64  `json:"count"`
}

// Snapshot returns one consistent quantile summary.
func (r *Recorder) Snapshot() LatencyStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	st := LatencyStats{
		P50:  ms(r.quantileLocked(0.50)),
		P90:  ms(r.quantileLocked(0.90)),
		P99:  ms(r.quantileLocked(0.99)),
		P999: ms(r.quantileLocked(0.999)),
		Max:  ms(r.max),
		N:    r.n,
	}
	if r.n > 0 {
		st.Mean = ms(r.sum) / float64(r.n)
	}
	return st
}
