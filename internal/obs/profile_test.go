package obs

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func waitFor(t *testing.T, what string, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if ok() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestProfilerCaptureAndEvict(t *testing.T) {
	dir := t.TempDir()
	p, err := NewProfiler(ProfilerConfig{
		Dir:         dir,
		MaxCaptures: 2,
		CPUDuration: 50 * time.Millisecond,
		Cooldown:    time.Nanosecond,
	})
	if err != nil {
		t.Fatalf("NewProfiler: %v", err)
	}
	defer p.Close()

	for i := 0; i < 4; i++ {
		p.Trigger("slo_page")
		want := uint64(i + 1)
		waitFor(t, "capture", func() bool { return p.Stats().Captured == want })
	}

	st := p.Stats()
	if st.Captured != 4 || st.Retained != 2 || st.Evicted != 2 {
		t.Fatalf("stats = %+v, want 4 captured / 2 retained / 2 evicted", st)
	}
	caps := p.Captures()
	if len(caps) != 2 {
		t.Fatalf("got %d capture sets, want 2", len(caps))
	}
	// Each retained set has cpu+heap+goroutine files, present on disk;
	// evicted sets are gone from disk.
	entries, _ := os.ReadDir(dir)
	if len(entries) != 6 {
		t.Fatalf("dir has %d files, want 6 (2 sets x 3 profiles)", len(entries))
	}
	for _, c := range caps {
		if len(c.Files) != 3 || c.Reason != "slo_page" {
			t.Fatalf("capture set = %+v, want 3 files reason slo_page", c)
		}
		for _, f := range c.Files {
			if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
				t.Fatalf("retained file %s missing: %v", f, err)
			}
		}
	}
}

func TestProfilerCooldownDrops(t *testing.T) {
	p, err := NewProfiler(ProfilerConfig{
		Dir:         t.TempDir(),
		CPUDuration: 20 * time.Millisecond,
		Cooldown:    time.Hour,
	})
	if err != nil {
		t.Fatalf("NewProfiler: %v", err)
	}
	defer p.Close()

	p.Trigger("first")
	waitFor(t, "first capture", func() bool { return p.Stats().Captured == 1 })
	p.Trigger("second")
	waitFor(t, "cooldown drop", func() bool { return p.Stats().Dropped == 1 })
	if st := p.Stats(); st.Captured != 1 {
		t.Fatalf("cooldown did not hold: %+v", st)
	}
}

func TestProfilerAdoptsExisting(t *testing.T) {
	dir := t.TempDir()
	p, err := NewProfiler(ProfilerConfig{Dir: dir, CPUDuration: 20 * time.Millisecond, Cooldown: time.Nanosecond})
	if err != nil {
		t.Fatalf("NewProfiler: %v", err)
	}
	p.Trigger("before_restart")
	waitFor(t, "capture", func() bool { return p.Stats().Captured == 1 })
	p.Close()

	p2, err := NewProfiler(ProfilerConfig{Dir: dir})
	if err != nil {
		t.Fatalf("restart NewProfiler: %v", err)
	}
	defer p2.Close()
	caps := p2.Captures()
	if len(caps) != 1 || caps[0].Reason != "before_restart" || len(caps[0].Files) != 3 {
		t.Fatalf("restart did not adopt prior captures: %+v", caps)
	}
}

func TestProfilerHandler(t *testing.T) {
	p, err := NewProfiler(ProfilerConfig{Dir: t.TempDir(), CPUDuration: 20 * time.Millisecond, Cooldown: time.Nanosecond})
	if err != nil {
		t.Fatalf("NewProfiler: %v", err)
	}
	defer p.Close()
	p.Trigger("smoke")
	waitFor(t, "capture", func() bool { return p.Stats().Captured == 1 })

	h := p.Handler("/debug/profiles")

	// Listing.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/profiles/", nil))
	var listing struct {
		Stats    ProfilerStats `json:"stats"`
		Captures []Capture     `json:"captures"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &listing); err != nil {
		t.Fatalf("listing not JSON: %v\n%s", err, rec.Body.String())
	}
	if len(listing.Captures) != 1 || listing.Stats.Captured != 1 {
		t.Fatalf("listing = %+v", listing)
	}

	// Fetch each profile file.
	for _, f := range listing.Captures[0].Files {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/profiles/"+f, nil))
		if rec.Code != 200 || rec.Body.Len() == 0 {
			t.Fatalf("fetch %s: code=%d len=%d", f, rec.Code, rec.Body.Len())
		}
	}

	// Unknown and traversal-shaped names 404.
	for _, bad := range []string{"nope.pprof", "..%2f..%2fetc%2fpasswd", "../secret"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/profiles/"+bad, nil))
		if rec.Code != 404 {
			t.Fatalf("fetch %q: code=%d, want 404", bad, rec.Code)
		}
	}
}

func TestSanitizeReason(t *testing.T) {
	if got := sanitizeReason("SLO page: p99!"); got != "slo_page__p99_" {
		t.Fatalf("sanitizeReason = %q", got)
	}
	if got := sanitizeReason(""); got != "manual" {
		t.Fatalf("empty reason = %q", got)
	}
	if got := sanitizeReason(strings.Repeat("x", 100)); len(got) != 32 {
		t.Fatalf("long reason not bounded: %d bytes", len(got))
	}
}
