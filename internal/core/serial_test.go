package core

import (
	"math/rand"
	"testing"

	"codepack/internal/isa"
)

func TestCompressedMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	text := synthText(rng, 2048)
	c, err := CompressWords("m", isa.TextBase, text)
	if err != nil {
		t.Fatal(err)
	}
	out, err := UnmarshalCompressed("m", c.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if out.TextBase != c.TextBase || out.NumInstr != c.NumInstr {
		t.Fatal("header lost")
	}
	dec, err := out.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	for i := range dec {
		if dec[i] != text[i] {
			t.Fatalf("word %d corrupted after marshal round trip", i)
		}
	}
	// The rebuilt block metadata must match the original exactly: the
	// timing model depends on it.
	for b := 0; b < c.NumBlocks(); b++ {
		s1, z1, r1, _ := c.BlockExtent(b)
		s2, z2, r2, _ := out.BlockExtent(b)
		if s1 != s2 || z1 != z2 || r1 != r2 {
			t.Fatalf("block %d extent differs: (%d,%d,%v) vs (%d,%d,%v)",
				b, s1, z1, r1, s2, z2, r2)
		}
		for i := 0; i < BlockInstrs; i++ {
			if c.InstrReadyBytes(b, i) != out.InstrReadyBytes(b, i) {
				t.Fatalf("block %d instr %d ready bytes differ", b, i)
			}
		}
	}
	// Size statistics needed for the ratio survive the round trip.
	if out.Stats().CompressedBytes() != c.Stats().CompressedBytes() {
		t.Fatalf("compressed size %d vs %d",
			out.Stats().CompressedBytes(), c.Stats().CompressedBytes())
	}
}

func TestCompressedMarshalWithRawBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	text := make([]isa.Word, 512)
	for i := range text {
		text[i] = isa.Word(rng.Uint32()) // incompressible -> raw blocks
	}
	c, err := CompressWords("raw", isa.TextBase, text)
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats().RawBlockInstrs == 0 {
		t.Skip("no raw blocks generated")
	}
	out, err := UnmarshalCompressed("raw", c.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	dec, err := out.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	for i := range dec {
		if dec[i] != text[i] {
			t.Fatalf("raw word %d corrupted", i)
		}
	}
}

func TestUnmarshalCompressedRejectsGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	good, err := CompressWords("g", isa.TextBase, synthText(rng, 64))
	if err != nil {
		t.Fatal(err)
	}
	blob := good.Marshal()
	cases := [][]byte{
		nil,
		blob[:20],
		blob[:len(blob)-3],
		append(append([]byte(nil), blob...), 1, 2, 3),
	}
	for i, b := range cases {
		if _, err := UnmarshalCompressed("bad", b); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
	// Corrupt the magic.
	bad := append([]byte(nil), blob...)
	bad[0] ^= 0xFF
	if _, err := UnmarshalCompressed("bad", bad); err == nil {
		t.Error("bad magic accepted")
	}
}
