package server

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"

	"codepack"
	"codepack/internal/isa"
)

// jsonBody and readBody are goroutine-safe counterparts of postJSON and
// decodeBody: they report errors instead of calling t.Fatal.
func jsonBody(v any) io.Reader {
	b, _ := json.Marshal(v)
	return bytes.NewReader(b)
}

func readBody(resp *http.Response, v any) error {
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d (body: %s)", resp.StatusCode, raw)
	}
	return json.Unmarshal(raw, v)
}

// poolProgram builds a deterministic program of n words whose content is
// keyed by seed, so any cross-request buffer bleed shows up as a word
// mismatch rather than a flake.
func poolProgram(seed, n int) *codepack.Image {
	text := make([]isa.Word, n)
	for i := range text {
		text[i] = isa.Word(seed*0o_1000_003+i*2654435761) | 1<<28
	}
	return &codepack.Image{
		Name:     fmt.Sprintf("pool-%d", seed),
		Entry:    isa.TextBase,
		TextBase: isa.TextBase,
		Text:     text,
	}
}

// TestDecodeBufReuse pins the pool contract directly: a released buffer
// comes back grown, and AppendDecompress into it does not reallocate.
func TestDecodeBufReuse(t *testing.T) {
	im := poolProgram(1, 600)
	comp, err := codepack.Compress(im)
	if err != nil {
		t.Fatal(err)
	}
	bp := getDecodeBuf()
	text, err := comp.AppendDecompress((*bp)[:0])
	if err != nil {
		t.Fatal(err)
	}
	*bp = text
	putDecodeBuf(bp)

	bp2 := getDecodeBuf()
	if cap(*bp2) < 600 {
		// Pool contents are technically best-effort, but with no GC in
		// between a single-goroutine put/get must round-trip.
		t.Fatalf("pooled capacity %d, want >= 600", cap(*bp2))
	}
	before := &(*bp2)[:1][0]
	again, err := comp.AppendDecompress((*bp2)[:0])
	if err != nil {
		t.Fatal(err)
	}
	if &again[0] != before {
		t.Fatal("decode into pooled buffer reallocated")
	}
	for i, w := range again {
		if w != im.Text[i] {
			t.Fatalf("word %d: %#x, want %#x", i, w, im.Text[i])
		}
	}
	*bp2 = again
	putDecodeBuf(bp2)
}

// TestPooledDecodeConcurrent hammers the decompress and verify endpoints
// from many goroutines with programs of different sizes. Every response
// must reproduce its own program exactly: a buffer handed back to the
// pool while still referenced, or a stale length after reuse, shows up
// here as cross-request word bleed.
func TestPooledDecodeConcurrent(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	type prog struct {
		im  *codepack.Image
		b64 string // compressed form for /v1/decompress
		img string // image form for /v1/verify
	}
	var progs []prog
	for seed, n := range []int{17, 400, 1500, 64, 900, 33, 2300, 250} {
		im := poolProgram(seed, n)
		comp, err := codepack.Compress(im)
		if err != nil {
			t.Fatal(err)
		}
		progs = append(progs, prog{
			im:  im,
			b64: base64.StdEncoding.EncodeToString(comp.Marshal()),
			img: base64.StdEncoding.EncodeToString(im.Marshal()),
		})
	}

	var wg sync.WaitGroup
	errs := make(chan error, len(progs))
	for g := range progs {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p := progs[g]
			for iter := 0; iter < 15; iter++ {
				resp, err := http.Post(ts.URL+"/v1/decompress", "application/json",
					jsonBody(DecompressRequest{CompressedB64: p.b64}))
				if err != nil {
					errs <- err
					return
				}
				var dr DecompressResponse
				if err := readBody(resp, &dr); err != nil {
					errs <- fmt.Errorf("prog %d: %w", g, err)
					return
				}
				if dr.Instructions != len(p.im.Text) {
					errs <- fmt.Errorf("prog %d: %d instructions, want %d",
						g, dr.Instructions, len(p.im.Text))
					return
				}
				raw, err := base64.StdEncoding.DecodeString(dr.ImageB64)
				if err != nil {
					errs <- err
					return
				}
				got, err := codepack.UnmarshalImage(raw)
				if err != nil {
					errs <- err
					return
				}
				for i, w := range got.Text {
					if w != p.im.Text[i] {
						errs <- fmt.Errorf("prog %d iter %d word %d: %#x, want %#x",
							g, iter, i, w, p.im.Text[i])
						return
					}
				}

				resp, err = http.Post(ts.URL+"/v1/verify", "application/json",
					jsonBody(VerifyRequest{ProgramRef: ProgramRef{ImageB64: p.img}}))
				if err != nil {
					errs <- err
					return
				}
				var vr VerifyResponse
				if err := readBody(resp, &vr); err != nil {
					errs <- fmt.Errorf("prog %d verify: %w", g, err)
					return
				}
				if !vr.OK {
					errs <- fmt.Errorf("prog %d: verify not OK", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
