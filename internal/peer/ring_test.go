package peer

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"slices"
	"sort"
	"testing"
)

// testKeys returns n digest-shaped keys (hex SHA-256 strings, like the
// real cache keys).
func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		sum := sha256.Sum256([]byte(fmt.Sprintf("key-%d", i)))
		keys[i] = hex.EncodeToString(sum[:])
	}
	return keys
}

func TestRingDeterministicAcrossMemberOrder(t *testing.T) {
	a := NewRing([]string{"http://a:1", "http://b:1", "http://c:1"}, 0)
	b := NewRing([]string{"http://c:1", "http://a:1", "http://b:1", "http://a:1"}, 0)
	for _, k := range testKeys(500) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("owner of %s disagrees across member orderings: %s vs %s",
				k, a.Owner(k), b.Owner(k))
		}
	}
	if got, want := len(b.Members()), 3; got != want {
		t.Errorf("Members() = %d entries after dedup, want %d", got, want)
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	if owner := NewRing(nil, 0).Owner("x"); owner != "" {
		t.Errorf("empty ring owner = %q, want \"\"", owner)
	}
	r := NewRing([]string{"http://solo:1"}, 0)
	for _, k := range testKeys(50) {
		if r.Owner(k) != "http://solo:1" {
			t.Fatal("single-member ring must own everything")
		}
	}
}

// TestRingOwnershipStability is the table-driven add/remove suite: when
// the member set changes by one node, only keys entering or leaving
// that node's arcs may change owner, and the moved fraction is near the
// ideal 1/n.
func TestRingOwnershipStability(t *testing.T) {
	base := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	keys := testKeys(8000)

	cases := []struct {
		name    string
		before  []string
		after   []string
		added   string // non-empty: every moved key must land here
		removed string // non-empty: every moved key must come from here
		ideal   float64
	}{
		{
			name:   "add e to 4",
			before: base,
			after:  append(append([]string{}, base...), "http://e:1"),
			added:  "http://e:1",
			ideal:  1.0 / 5,
		},
		{
			name:    "remove d from 4",
			before:  base,
			after:   base[:3],
			removed: "http://d:1",
			ideal:   1.0 / 4,
		},
		{
			name:   "add b to 1",
			before: base[:1],
			after:  base[:2],
			added:  "http://b:1",
			ideal:  1.0 / 2,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rb, ra := NewRing(tc.before, 0), NewRing(tc.after, 0)
			moved := 0
			for _, k := range keys {
				ob, oa := rb.Owner(k), ra.Owner(k)
				if ob == oa {
					continue
				}
				moved++
				if tc.added != "" && oa != tc.added {
					t.Fatalf("key moved %s -> %s, but only the new member %s may gain keys",
						ob, oa, tc.added)
				}
				if tc.removed != "" && ob != tc.removed {
					t.Fatalf("key moved %s -> %s, but only the removed member %s may lose keys",
						ob, oa, tc.removed)
				}
			}
			frac := float64(moved) / float64(len(keys))
			// 128 virtual nodes put the moved fraction within a factor
			// of ~1.6 of ideal with plenty of margin for hash noise.
			if frac < tc.ideal/1.6 || frac > tc.ideal*1.6 {
				t.Errorf("moved fraction %.3f, want near %.3f", frac, tc.ideal)
			}
		})
	}
}

// TestRingOwnersProperties drives the successor-list contract over
// random member sets and digests: the R owners are distinct live
// members, the first owner is Owner(), and R larger than the member
// count degrades to every member in successor order.
func TestRingOwnersProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(8)
		members := make([]string, n)
		for i := range members {
			members[i] = fmt.Sprintf("http://m%d-%d:1", trial, i)
		}
		r := NewRing(members, 0)
		for _, k := range testKeys(100) {
			R := 1 + rng.Intn(n+2) // deliberately up to members+2
			owners := r.Owners(k, R)
			want := R
			if want > n {
				want = n
			}
			if len(owners) != want {
				t.Fatalf("Owners(%q, %d) on %d members returned %d owners, want %d",
					k, R, n, len(owners), want)
			}
			seen := make(map[string]bool, len(owners))
			for _, o := range owners {
				if seen[o] {
					t.Fatalf("Owners(%q, %d) repeated member %s", k, R, o)
				}
				seen[o] = true
			}
			if owners[0] != r.Owner(k) {
				t.Fatalf("Owners()[0] = %s, Owner() = %s", owners[0], r.Owner(k))
			}
		}
	}
}

// TestRingOwnersStableUnderUnrelatedRemoval pins the replica-placement
// stability property: removing a member that is not in a key's owner
// list must not change that list — its vnodes are only reached after
// the successor walk already collected R distinct members.
func TestRingOwnersStableUnderUnrelatedRemoval(t *testing.T) {
	members := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1", "http://e:1"}
	full := NewRing(members, 0)
	const R = 2
	for _, k := range testKeys(2000) {
		owners := full.Owners(k, R)
		inList := make(map[string]bool, len(owners))
		for _, o := range owners {
			inList[o] = true
		}
		for _, victim := range members {
			if inList[victim] {
				continue
			}
			survivors := make([]string, 0, len(members)-1)
			for _, m := range members {
				if m != victim {
					survivors = append(survivors, m)
				}
			}
			after := NewRing(survivors, 0).Owners(k, R)
			if !slices.Equal(owners, after) {
				t.Fatalf("removing non-owner %s changed Owners(%q, %d): %v -> %v",
					victim, k, R, owners, after)
			}
		}
	}
}

// TestRingOwnersDegradesToAllMembers: when R exceeds the live member
// count, every member is an owner exactly once.
func TestRingOwnersDegradesToAllMembers(t *testing.T) {
	members := []string{"http://a:1", "http://b:1", "http://c:1"}
	r := NewRing(members, 0)
	for _, k := range testKeys(200) {
		owners := r.Owners(k, 10)
		if len(owners) != len(members) {
			t.Fatalf("Owners(%q, 10) = %v, want all %d members", k, owners, len(members))
		}
		sorted := append([]string{}, owners...)
		sort.Strings(sorted)
		if !slices.Equal(sorted, members) {
			t.Fatalf("Owners(%q, 10) = %v is not a permutation of the member set", k, owners)
		}
	}
	if NewRing(nil, 0).Owners("x", 3) != nil {
		t.Error("empty ring must return no owners")
	}
}

// TestRingBalance guards against gross imbalance: no member of a
// 4-member ring should own more than twice its fair share.
func TestRingBalance(t *testing.T) {
	members := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	r := NewRing(members, 0)
	counts := make(map[string]int)
	keys := testKeys(8000)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	fair := len(keys) / len(members)
	for m, n := range counts {
		if n > 2*fair || n < fair/3 {
			t.Errorf("member %s owns %d of %d keys (fair share %d)", m, n, len(keys), fair)
		}
	}
}
